package videoplat_test

import (
	"testing"

	"videoplat"
	"videoplat/internal/tracegen"
)

func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	ds, err := videoplat.GenerateLabDataset(1, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Flows) == 0 {
		t.Fatal("empty dataset")
	}
	bank, err := videoplat.Train(ds, videoplat.ForestConfig{NumTrees: 10, MaxDepth: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	g := tracegen.New(1234)
	ft, err := g.Flow("windows_firefox", videoplat.Netflix, videoplat.TCP, tracegen.FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	p := videoplat.NewPipeline(bank)
	var got *videoplat.FlowRecord
	for _, fr := range ft.Frames {
		rec, err := p.HandlePacket(ft.Start.Add(fr.Offset), fr.Data)
		if err != nil {
			t.Fatal(err)
		}
		if rec != nil {
			got = rec
		}
	}
	if got == nil {
		t.Fatal("flow never classified")
	}
	if got.Provider != videoplat.Netflix {
		t.Errorf("provider = %v", got.Provider)
	}
	if got.Prediction.Status == videoplat.Composite && got.Prediction.Platform != "windows_firefox" {
		t.Errorf("platform = %q", got.Prediction.Platform)
	}

	agg := videoplat.NewAggregator(1)
	for _, rec := range p.Flows() {
		agg.Add(rec)
	}
	if agg.Len() != 1 {
		t.Errorf("aggregator records = %d", agg.Len())
	}
}

func TestFacadePlatforms(t *testing.T) {
	if got := len(videoplat.Platforms()); got != 17 {
		t.Errorf("platforms = %d, want 17", got)
	}
}

func TestFacadeOpenSet(t *testing.T) {
	ds, err := videoplat.GenerateOpenSetDataset(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Flows) < 40 {
		t.Errorf("open-set flows = %d", len(ds.Flows))
	}
}
