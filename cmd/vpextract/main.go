// Command vpextract parses a PCAP and writes one CSV row of the 62 Table 2
// handshake attributes per video flow — the reproduction of the paper's
// published chlo_extract tool.
//
// Usage:
//
//	vpextract capture.pcap > attributes.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"videoplat/internal/features"
	"videoplat/internal/packet"
	"videoplat/internal/pcap"
	"videoplat/internal/pipeline"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vpextract capture.pcap")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer f.Close()
	r, err := pcap.OpenReader(f) // accepts classic pcap and pcapng
	exitOn(err)

	// Group client frames per canonical flow.
	type flowBuf struct {
		frames [][]byte
		key    packet.FlowKey
	}
	flows := map[packet.FlowKey]*flowBuf{}
	var order []*flowBuf
	var parser packet.Parser
	var parsed packet.Parsed
	for {
		pkt, err := r.Next()
		if err == io.EOF {
			break
		}
		exitOn(err)
		if parser.Parse(pkt.Data, &parsed) != nil {
			continue
		}
		key, ok := parsed.Flow()
		if !ok {
			continue
		}
		canon := key.Canonical()
		fb := flows[canon]
		if fb == nil {
			fb = &flowBuf{key: key}
			flows[canon] = fb
			order = append(order, fb)
		}
		if key == fb.key { // client-to-server direction
			fb.frames = append(fb.frames, pkt.Data)
		}
	}

	w := csv.NewWriter(os.Stdout)
	header := []string{"flow", "sni", "provider", "transport"}
	for _, a := range features.Table2 {
		header = append(header, a.Label)
	}
	exitOn(w.Write(header))

	for _, fb := range order {
		info, err := pipeline.ExtractFrames(fb.frames)
		if err != nil {
			continue // no ClientHello in this flow
		}
		sni := info.Hello.ServerName()
		prov, _, ok := pipeline.MatchProvider(sni)
		provName := ""
		if ok {
			provName = prov.String()
		}
		transport := "tcp"
		if info.QUIC {
			transport = "quic"
		}
		v := features.Extract(info)
		row := []string{fb.key.String(), sni, provName, transport}
		for _, a := range features.Table2 {
			row = append(row, renderValue(v, a))
		}
		exitOn(w.Write(row))
	}
	w.Flush()
	exitOn(w.Error())
}

func renderValue(v *features.FieldValues, a features.Attribute) string {
	switch a.Kind {
	case features.Categorical:
		return v.Cats[a.Label]
	case features.List:
		return strings.Join(v.Lists[a.Label], "|")
	default:
		if val, ok := v.Nums[a.Label]; ok {
			return fmt.Sprintf("%g", val)
		}
		return ""
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpextract:", err)
		os.Exit(1)
	}
}
