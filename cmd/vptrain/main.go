// Command vptrain generates the lab training dataset (or reads flows from a
// PCAP with ground-truth labels) and trains the per-provider classifier
// bank, writing the serialized models for cmd/vpclassify.
//
// Usage:
//
//	vptrain -scale 0.3 -out bank.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/pipeline"
	"videoplat/internal/tracegen"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.3, "lab dataset scale in (0,1]")
		seed  = flag.Uint64("seed", 1, "deterministic seed")
		trees = flag.Int("trees", 40, "random forest size")
		depth = flag.Int("depth", 20, "maximum tree depth")
		attrs = flag.Int("attrs", 34, "candidate attributes per split")
		out   = flag.String("out", "bank.gob", "output model file")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "rendering lab dataset (scale %.2f)...\n", *scale)
	ds, err := tracegen.New(*seed).LabDataset(*scale, fingerprint.Options{})
	exitOn(err)
	fmt.Fprintf(os.Stderr, "rendered %d flows; training bank...\n", len(ds.Flows))

	bank, err := pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: *trees, MaxDepth: *depth, MaxFeatures: *attrs, Seed: *seed}})
	exitOn(err)

	blob, err := bank.MarshalBinary()
	exitOn(err)
	exitOn(os.WriteFile(*out, blob, 0o644))
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(blob))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vptrain:", err)
		os.Exit(1)
	}
}
