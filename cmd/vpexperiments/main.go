// Command vpexperiments regenerates the tables and figures of the paper's
// evaluation on the synthetic substrate.
//
// Usage:
//
//	vpexperiments [flags] <experiment>...
//	vpexperiments -scale 0.3 all
//
// Experiments: table1 fig3 fig5 fig6a fig6bcd algocmp table3 table4 table5
// table6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 ablations all
package main

import (
	"flag"
	"fmt"
	"os"

	"videoplat/internal/experiments"
)

func main() {
	ctx := experiments.DefaultContext()
	flag.Float64Var(&ctx.Scale, "scale", ctx.Scale, "lab dataset scale in (0,1]; 1.0 = full Table 1")
	flag.Uint64Var(&ctx.Seed, "seed", ctx.Seed, "deterministic seed")
	flag.IntVar(&ctx.Trees, "trees", ctx.Trees, "random forest size")
	flag.IntVar(&ctx.Folds, "folds", ctx.Folds, "cross-validation folds")
	flag.IntVar(&ctx.OpenSetPerCombo, "openset", ctx.OpenSetPerCombo, "open-set flows per combination")
	flag.IntVar(&ctx.CampusDays, "days", ctx.CampusDays, "campus simulation days")
	flag.IntVar(&ctx.CampusSessionsPerDay, "sessions", ctx.CampusSessionsPerDay, "campus sessions per day")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: vpexperiments [flags] <experiment>|all")
		fmt.Fprintln(os.Stderr, "experiments: table1 fig3 fig5 fig6a fig6bcd algocmp table3 table4")
		fmt.Fprintln(os.Stderr, "             table5 table6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 ablations")
		os.Exit(2)
	}

	single := map[string]func(*experiments.Context) (*experiments.Report, error){
		"table1":  experiments.Table1,
		"fig3":    experiments.Fig3,
		"fig6a":   experiments.Fig6a,
		"algocmp": experiments.AlgoComparison,
		"table3":  experiments.Table3,
		"table4":  experiments.Table4,
		"table5":  experiments.Table5,
		"table6":  experiments.Table6,
		"fig7":    experiments.Fig7,
		"fig8":    experiments.Fig8,
		"fig9":    experiments.Fig9,
		"fig10":   experiments.Fig10,
		"fig11":   experiments.Fig11,
	}
	multi := map[string]func(*experiments.Context) ([]*experiments.Report, error){
		"fig5":    experiments.Fig5,
		"fig6bcd": experiments.Fig6bcd,
		"fig12":   experiments.Fig12,
		"fig13":   experiments.Fig13,
		"fig14":   experiments.Fig14,
	}
	ablations := []func(*experiments.Context) (*experiments.Report, error){
		experiments.AblationListEncoding,
		experiments.AblationGrease,
		experiments.AblationConfidenceSelector,
		experiments.AblationGlobalClassifier,
	}

	order := []string{"table1", "fig3", "fig5", "fig6a", "fig6bcd", "algocmp",
		"table3", "table4", "table5", "table6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "ablations"}

	var todo []string
	for _, a := range args {
		if a == "all" {
			todo = order
			break
		}
		todo = append(todo, a)
	}

	for _, name := range todo {
		switch {
		case single[name] != nil:
			r, err := single[name](ctx)
			exitOn(err)
			fmt.Println(r)
		case multi[name] != nil:
			rs, err := multi[name](ctx)
			exitOn(err)
			for _, r := range rs {
				fmt.Println(r)
			}
		case name == "ablations":
			for _, fn := range ablations {
				r, err := fn(ctx)
				exitOn(err)
				fmt.Println(r)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpexperiments:", err)
		os.Exit(1)
	}
}
