// Command vpgen renders synthetic labeled video-streaming traffic to a PCAP
// file, for feeding vpextract and vpclassify or for inspection in Wireshark.
//
// Usage:
//
//	vpgen -sessions 20 -out traffic.pcap
//	vpgen -platform iOS_nativeApp -provider disney -out ios-disney.pcap
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/tracegen"
)

func main() {
	var (
		out      = flag.String("out", "traffic.pcap", "output PCAP file")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		sessions = flag.Int("sessions", 10, "number of video sessions")
		platform = flag.String("platform", "", "restrict to one platform label (default: random mix)")
		provider = flag.String("provider", "", "restrict to one provider (youtube/netflix/disney/amazon)")
	)
	flag.Parse()

	g := tracegen.New(*seed)
	rng := rand.New(rand.NewPCG(*seed, 2))

	provs := fingerprint.AllProviders()
	if *provider != "" {
		provs = nil
		for _, p := range fingerprint.AllProviders() {
			if p.String() == *provider {
				provs = []fingerprint.Provider{p}
			}
		}
		if provs == nil {
			fmt.Fprintf(os.Stderr, "unknown provider %q\n", *provider)
			os.Exit(2)
		}
	}

	start := time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC)
	var traces []*tracegen.FlowTrace
	for i := 0; i < *sessions; i++ {
		prov := provs[rng.IntN(len(provs))]
		label := *platform
		if label == "" {
			labels := supported(prov)
			label = labels[rng.IntN(len(labels))]
		} else if !fingerprint.SupportMatrix(label, prov) {
			fmt.Fprintf(os.Stderr, "%s does not support %s\n", label, prov)
			os.Exit(2)
		}
		flows, err := g.Session(label, prov, fingerprint.Options{})
		exitOn(err)
		for _, ft := range flows {
			ft.Start = start.Add(time.Duration(i) * 30 * time.Second)
			traces = append(traces, ft)
		}
	}

	f, err := os.Create(*out)
	exitOn(err)
	defer f.Close()
	exitOn(tracegen.WritePCAP(f, traces))
	var packets int
	for _, ft := range traces {
		packets += len(ft.Frames)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d sessions, %d flows, %d packets\n",
		*out, *sessions, len(traces), packets)
}

func supported(prov fingerprint.Provider) []string {
	var out []string
	for _, l := range fingerprint.AllPlatformLabels() {
		if fingerprint.SupportMatrix(l, prov) {
			out = append(out, l)
		}
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpgen:", err)
		os.Exit(1)
	}
}
