// Command vpclassify replays a PCAP through the streaming classification
// pipeline and prints one labeled telemetry row per detected video flow.
//
// Usage:
//
//	vpclassify -model bank.gob capture.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"videoplat/internal/pcap"
	"videoplat/internal/pipeline"
)

func main() {
	model := flag.String("model", "bank.gob", "trained model from vptrain")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vpclassify -model bank.gob capture.pcap")
		os.Exit(2)
	}

	blob, err := os.ReadFile(*model)
	exitOn(err)
	var bank pipeline.Bank
	exitOn(bank.UnmarshalBinary(blob))

	f, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer f.Close()
	r, err := pcap.OpenReader(f) // accepts classic pcap and pcapng
	exitOn(err)

	p := pipeline.New(&bank)
	for {
		pkt, err := r.Next()
		if err == io.EOF {
			break
		}
		exitOn(err)
		rec, err := p.HandlePacket(pkt.Timestamp, pkt.Data)
		exitOn(err)
		if rec != nil {
			printRecord(rec)
		}
	}
	fmt.Printf("\npackets: %d  classified flows: %d  unknown: %d\n",
		p.Packets, p.ClassifiedFlows, p.UnknownFlows)

	fmt.Println("\nfinal flow telemetry:")
	for _, rec := range p.Flows() {
		if !rec.Classified {
			continue
		}
		fmt.Printf("  %-46s %8s %6.1fs %8.2f Mbps\n",
			rec.SNI, rec.Provider, rec.Duration().Seconds(), rec.MbpsDown())
	}
}

func printRecord(rec *pipeline.FlowRecord) {
	pred := rec.Prediction
	switch pred.Status {
	case pipeline.Composite:
		fmt.Printf("%-10s %-5s %-46s -> %s (%.0f%%)\n",
			rec.Provider, rec.Transport, rec.SNI, pred.Platform, pred.PlatformConf*100)
	case pipeline.Partial:
		fmt.Printf("%-10s %-5s %-46s -> partial device=%q agent=%q\n",
			rec.Provider, rec.Transport, rec.SNI, pred.Device, pred.Agent)
	default:
		fmt.Printf("%-10s %-5s %-46s -> unknown platform\n",
			rec.Provider, rec.Transport, rec.SNI)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpclassify:", err)
		os.Exit(1)
	}
}
