// Command vpvet is the repo's contract linter: a go vet -vettool
// multichecker bundling the four analyzers that enforce the serving spine's
// hot-path contracts statically (see docs/ANALYZERS.md):
//
//   - borrowck:      //vp:borrowed parameters must not escape the call
//   - hotpath:       //vp:hotpath functions (and their module callees)
//     must not allocate
//   - nilguard:      exported methods on //vp:nilsafe types must begin
//     with a nil-receiver guard
//   - metriccatalog: emitted videoplat_* series and the metricsCatalog
//     table must agree
//
// Build and run it through the vet driver so packages are analyzed in
// dependency order with facts flowing between them:
//
//	go build -o vpvet ./cmd/vpvet
//	go vet -vettool=./vpvet ./...
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"videoplat/internal/analysis/borrowck"
	"videoplat/internal/analysis/hotpath"
	"videoplat/internal/analysis/metriccatalog"
	"videoplat/internal/analysis/nilguard"
)

func main() {
	unitchecker.Main(
		borrowck.Analyzer,
		hotpath.Analyzer,
		nilguard.Analyzer,
		metriccatalog.Analyzer,
	)
}
