// Command vpserve is the streaming ingest daemon: it replays a pcap/pcapng
// capture (or generates synthetic traffic) through the sharded
// classification pipeline with bounded per-shard flow tables, rolls
// finalized flows into tumbling telemetry windows written as JSONL, and
// serves an operations API (/stats, /flows, /windows, /query, /healthz,
// /metrics) while it runs. SIGINT/SIGTERM trigger a graceful shutdown that
// drains the shards and flushes the final partial window.
//
// Sealed windows are retained in a queryable in-memory store, so
// longitudinal questions — per-provider traffic over the last day,
// per-platform bandwidth by the hour — are answered live from /query
// instead of post-processing rollup files. -telemetry-retain bounds the
// store (count or age), -telemetry-tiers adds coarser downsampling
// resolutions so long ranges stay cheap, and -telemetry-persist keeps the
// history in a JSONL file that is reloaded on restart.
//
// With -registry-dir the daemon keeps its banks in a versioned model
// registry: /models lists the version history, /models/promote and
// /models/rollback hot-swap the serving bank without dropping a packet,
// and /models/export captures the active bank as a vptrain-style gob.
// -auto-retrain closes the paper's §5.3 loop: a drift monitor watches
// every classification, a flagged classifier triggers a background
// retrain, and the candidate is promoted only after shadow evaluation on
// live traffic clears the gate.
//
// Usage:
//
//	vpserve -model bank.gob -pcap capture.pcap -rate 5000 -rollup windows.jsonl
//	vpserve -synth 500 -addr :8080            # self-train a demo bank, synthetic load
//	vpserve -pcap capture.pcap -exit-when-done
//	vpserve -synth 400 -telemetry-tiers 10m,1h -telemetry-persist history.jsonl
//	vpserve -registry-dir ./models -auto-retrain -synth 400 -synth-drift-after 150
//
// See docs/OPERATIONS.md for the full flag, endpoint and metrics reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"videoplat/internal/drift"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/obs"
	"videoplat/internal/pipeline"
	"videoplat/internal/registry"
	"videoplat/internal/server"
	"videoplat/internal/telemetry"
	"videoplat/internal/tracegen"
)

// options holds every parsed vpserve flag.
type options struct {
	addr         string
	model        string
	pcapPath     string
	synth        int
	seed         uint64
	rate         float64
	shards       int
	batchSize    int
	shardQueue   int
	resultsBuf   int
	maxHello     int
	maxFlows     int
	idleTimeout  time.Duration
	window       time.Duration
	rollupOut    string
	trainScale   float64
	exitWhenDone bool

	telemetryRetain  string
	telemetryTiers   string
	telemetryPersist string

	pprof        bool
	traceSample  int
	traceRing    int
	traceSlowest int

	registryDir string
	autoRetrain bool
	driftWindow int
	driftDrop   float64
	cooldown    time.Duration
	shadowRate  float64
	shadowFlows int
	shadowAgree float64
	saveOnExit  string
	driftAfter  int

	adversarial    float64
	earlyMinMargin float64
	noProviderHint bool

	logFormat string
	version   bool
}

// registerFlags binds the complete vpserve flag set onto fs. The
// documentation drift test enumerates fs to verify docs/OPERATIONS.md
// covers every flag, so a flag cannot be added without it.
func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "operations API listen address")
	fs.StringVar(&o.model, "model", "", "trained model from vptrain (default: self-train a small demo bank)")
	fs.StringVar(&o.pcapPath, "pcap", "", "pcap/pcapng file to replay")
	fs.IntVar(&o.synth, "synth", 0, "generate N synthetic video sessions instead of replaying a file (0 with no -pcap: unlimited)")
	fs.Uint64Var(&o.seed, "seed", 1, "seed for synthetic traffic and self-training")
	fs.Float64Var(&o.rate, "rate", 0, "replay pace in packets/sec (0 = as fast as possible)")
	fs.IntVar(&o.shards, "shards", 0, "pipeline shards (0 = GOMAXPROCS)")
	fs.IntVar(&o.batchSize, "batch-size", 0, "frames read and dispatched per ingest batch (0 = default 64)")
	fs.IntVar(&o.shardQueue, "shard-queue", 0, "per-shard ingest inbox depth in batches (0 = default 64)")
	fs.IntVar(&o.resultsBuf, "results-buffer", 0, "classified-results channel capacity (0 = 64 per shard)")
	fs.IntVar(&o.maxHello, "max-hello-bytes", 0, "per-flow buffered handshake byte cap (0 = default 64KiB, <0 = unbounded); oversized flows are abandoned and counted")
	fs.IntVar(&o.maxFlows, "max-flows", 65536, "flow-table cap across shards (<0 = unbounded)")
	fs.DurationVar(&o.idleTimeout, "idle-timeout", 90*time.Second, "evict flows idle for this long, in trace time (<0 = never)")
	fs.DurationVar(&o.window, "window", time.Minute, "rollup window width")
	fs.StringVar(&o.rollupOut, "rollup", "", "JSONL file receiving sealed rollup windows (default: discard)")
	fs.Float64Var(&o.trainScale, "train-scale", 0.04, "lab-dataset scale for self-trained and retrained banks")
	fs.BoolVar(&o.exitWhenDone, "exit-when-done", false, "shut down once the replay source is exhausted")

	fs.StringVar(&o.telemetryRetain, "telemetry-retain", "1440", "telemetry store retention per tier: a window count (e.g. 1440) or a trace-time age (e.g. 24h)")
	fs.StringVar(&o.telemetryTiers, "telemetry-tiers", "auto", "comma-separated downsampling widths for /query over long ranges (auto = 10x and 60x -window; none = raw only)")
	fs.StringVar(&o.telemetryPersist, "telemetry-persist", "", "JSONL file persisting the telemetry store across restarts (reloaded at startup, appended while serving)")

	fs.BoolVar(&o.pprof, "pprof", false, "serve Go runtime profiling under /debug/pprof/ (off by default)")
	fs.IntVar(&o.traceSample, "trace-sample", 0, "trace every Nth flow's lifecycle for /trace (0 = default 256, 1 = every flow, <0 = disable tracing)")
	fs.IntVar(&o.traceRing, "trace-ring", 0, "finished spans retained for /trace (0 = default 256)")
	fs.IntVar(&o.traceSlowest, "trace-slowest", 0, "slowest-flow exemplars retained for /trace (0 = default 16)")

	fs.StringVar(&o.registryDir, "registry-dir", "", "versioned model registry directory (enables /models, promote/rollback hot-swap)")
	fs.BoolVar(&o.autoRetrain, "auto-retrain", false, "retrain and shadow-promote a new bank when drift is detected (requires -registry-dir)")
	fs.IntVar(&o.driftWindow, "drift-window", 0, "recent predictions per classifier for drift detection (0 = monitor default 500; size to your traffic)")
	fs.Float64Var(&o.driftDrop, "drift-drop", 0, "median-confidence drop that flags a classifier (0 = monitor default 0.10)")
	fs.DurationVar(&o.cooldown, "retrain-cooldown", time.Minute, "minimum gap between retrain attempts")
	fs.Float64Var(&o.shadowRate, "shadow-sample", 0.25, "fraction of live classifications shadow-evaluated by a candidate bank")
	fs.IntVar(&o.shadowFlows, "shadow-flows", 200, "shadow classifications required before a promote/reject verdict")
	fs.Float64Var(&o.shadowAgree, "shadow-agreement", 0.5, "minimum candidate/active agreement on flows both predict confidently (0 = gate default 0.5, negative disables)")
	fs.StringVar(&o.saveOnExit, "save-on-exit", "", "write the bank active at shutdown to this file (captures retrained banks)")
	fs.IntVar(&o.driftAfter, "synth-drift-after", 0, "inject open-set platform drift after N synthetic sessions (0 = never)")
	fs.Float64Var(&o.adversarial, "synth-adversarial", 0, "fraction of synthetic sessions rendered with an adversarial handshake scenario: ECH, QUIC 0-RTT or connection migration (0 = none)")
	fs.Float64Var(&o.earlyMinMargin, "early-min-margin", 0, "platform-margin floor for degraded classification of ECH/0-RTT flows (0 = default 0.10, negative = accept any margin)")
	fs.BoolVar(&o.noProviderHint, "no-provider-hint", false, "disable the synthetic IP-to-provider hint; ECH and 0-RTT flows then always abstain")

	fs.StringVar(&o.logFormat, "log-format", "text", "structured log output format: text or json")
	fs.BoolVar(&o.version, "version", false, "print build identification and exit")
	return o
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()

	if o.version {
		printVersion()
		return
	}

	// Structured logging first: everything after this line — including the
	// ops event journal's mirrored events — speaks slog.
	var handler slog.Handler
	switch o.logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "vpserve: -log-format %q: want text or json\n", o.logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler).With("app", "vpserve")
	slog.SetDefault(logger)

	// One journal serves every subsystem: the retrainer records the model
	// lifecycle into it, the server records swaps/drift/health into it and
	// serves it at GET /events, and each event mirrors as a slog line above.
	journal := obs.NewJournal(0, logger)

	bank := loadOrTrainBank(o.model, o.seed, o.trainScale)

	// Model lifecycle: registry, drift monitor, retrainer.
	var (
		reg *registry.Registry
		mon *drift.Monitor
		rt  *registry.Retrainer
	)
	if o.registryDir != "" {
		var err error
		reg, err = registry.New(registry.Config{Dir: o.registryDir})
		exitOn(err)
		if cur := reg.Current(); cur != nil && o.model == "" {
			// A previous run left an active version; prefer it over
			// self-training from scratch.
			bank = cur.Bank
			slog.Info("serving registry version",
				"version", cur.Manifest.ID, "dir", o.registryDir)
		} else {
			reason := "initial (self-trained)"
			if o.model != "" {
				reason = fmt.Sprintf("operator import: %s", o.model)
			}
			m, err := reg.Add(bank, reason, o.seed)
			exitOn(err)
			v, err := reg.Promote(m.ID)
			exitOn(err)
			bank = v.Bank // serve the registry's copy, not the Add argument
			slog.Info("registered bank", "version", m.ID, "dir", o.registryDir)
		}
		mon = drift.NewMonitor(drift.Config{
			Window:         o.driftWindow,
			ConfidenceDrop: o.driftDrop,
		})
	}
	if o.autoRetrain {
		if reg == nil {
			exitOn(fmt.Errorf("-auto-retrain requires -registry-dir"))
		}
		var err error
		rt, err = registry.NewRetrainer(reg, registry.RetrainerConfig{
			Train:    retrainFunc(o.trainScale, o.driftAfter > 0),
			Seed:     o.seed + 1000,
			Cooldown: o.cooldown,
			Events:   journal,
			Gate: registry.Gate{
				SampleRate:   o.shadowRate,
				MinFlows:     o.shadowFlows,
				MinAgreement: o.shadowAgree,
			},
		})
		exitOn(err)
		rt.BindMonitor(mon)
	}

	var src server.Source
	switch {
	case o.pcapPath != "":
		var err error
		src, err = server.OpenFileSource(o.pcapPath)
		exitOn(err)
		slog.Info("replaying capture", "pcap", o.pcapPath)
	default:
		synth := server.NewDriftingSynthSource(o.seed, o.synth, o.driftAfter)
		synth.SetAdversarial(o.adversarial)
		src = synth
		slog.Info("generating synthetic traffic",
			"sessions", sessionsDesc(o.synth), "drift_after", o.driftAfter,
			"adversarial", o.adversarial)
	}

	var sink telemetry.Sink
	if o.rollupOut != "" {
		f, err := os.Create(o.rollupOut)
		exitOn(err)
		defer f.Close()
		sink = telemetry.NewJSONLSink(f)
	}

	store, closeStore, err := buildStore(o.window, o.telemetryRetain, o.telemetryTiers, o.telemetryPersist)
	exitOn(err)
	defer closeStore()

	// The synthetic stand-in for the deployment's IP-to-CDN knowledge: the
	// generator's provider address plan is the hint. A real tap would plug
	// in its prefix database here.
	providerHint := tracegen.ProviderOfAddr
	if o.noProviderHint {
		providerHint = nil
	}

	srv, err := server.New(bank, src, server.Config{
		Addr:            o.addr,
		Shards:          o.shards,
		MaxFlows:        o.maxFlows,
		IdleTimeout:     o.idleTimeout,
		WindowWidth:     o.window,
		Rate:            o.rate,
		BatchSize:       o.batchSize,
		ShardQueueDepth: o.shardQueue,
		ResultsBuffer:   o.resultsBuf,
		MaxHelloBytes:   o.maxHello,
		EarlyMinMargin:  o.earlyMinMargin,
		ProviderHint:    providerHint,
		Sink:            sink,
		Store:           store,
		Registry:        reg,
		Drift:           mon,
		Retrainer:       rt,
		Journal:         journal,

		EnablePprof:      o.pprof,
		TraceSampleEvery: o.traceSample,
		TraceRing:        o.traceRing,
		TraceSlowest:     o.traceSlowest,
	})
	exitOn(err)
	slog.Info("operations API listening",
		"addr", "http://"+srv.Addr(),
		"endpoints", "/stats /flows /windows /query /events /models /trace /healthz /readyz /metrics")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if o.exitWhenDone {
		inner := ctx
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			select {
			case <-srv.ReplayDone():
				slog.Info("replay finished, shutting down")
				cancel()
			case <-inner.Done():
			}
		}()
	}

	exitOn(srv.Run(ctx))

	st := srv.Snapshot()
	slog.Info("done",
		"packets", st.Replay.Packets,
		"batches", st.Ingest.Batches,
		"ignored_frames", st.Ingest.IgnoredFrames,
		"stalls", st.Ingest.Stalls,
		"flows_tracked", st.FlowTable.Inserted,
		"evicted_idle", st.FlowTable.EvictedIdle,
		"evicted_cap", st.FlowTable.EvictedCap,
		"classified", st.ClassifiedFlows,
		"rollup_windows", st.Rollup.Sealed,
		"store_windows", st.Rollup.Store.Tiers[0].Windows,
		"store_evicted", st.Rollup.Store.EvictedCount+st.Rollup.Store.EvictedAge,
		"model", st.Models.ActiveVersion,
		"swaps", st.Models.Swaps,
		"events", st.Events.Total)

	if o.saveOnExit != "" {
		active := bank
		if reg != nil {
			if cur := reg.Current(); cur != nil {
				active = cur.Bank
			}
		}
		blob, err := active.MarshalBinary()
		exitOn(err)
		exitOn(os.WriteFile(o.saveOnExit, blob, 0o644))
		slog.Info("saved active bank",
			"version", st.Models.ActiveVersion, "bytes", len(blob), "path", o.saveOnExit)
	}
}

// printVersion writes the binary's build identification — the same
// internal/obs data /stats serves, available without a running daemon.
func printVersion() {
	bi := obs.ReadBuildInfo()
	fmt.Printf("vpserve %s\n", bi.Version)
	fmt.Printf("  module:   %s\n", bi.Module)
	fmt.Printf("  go:       %s\n", bi.GoVersion)
	if bi.VCSRevision != "" {
		dirty := ""
		if bi.VCSModified {
			dirty = " (modified)"
		}
		fmt.Printf("  revision: %s%s\n", bi.VCSRevision, dirty)
	}
	if bi.VCSTime != "" {
		fmt.Printf("  built:    %s\n", bi.VCSTime)
	}
}

// buildStore assembles the daemon's telemetry window store from the
// -telemetry-* flags: retention (a count or an age), downsampling tiers
// relative to the rollup width, and optional JSONL persistence whose
// existing history is reloaded before the daemon starts.
func buildStore(window time.Duration, retain, tiers, persist string) (*telemetry.Store, func(), error) {
	cfg := telemetry.StoreConfig{}
	if n, err := strconv.Atoi(retain); err == nil {
		if n <= 0 {
			return nil, nil, fmt.Errorf("-telemetry-retain %q: count must be positive", retain)
		}
		cfg.MaxWindows = n
	} else if age, err := time.ParseDuration(retain); err == nil {
		if age <= 0 {
			return nil, nil, fmt.Errorf("-telemetry-retain %q: age must be positive", retain)
		}
		cfg.MaxAge = age
		cfg.MaxWindows = -1 // the age horizon is the sole bound
	} else {
		return nil, nil, fmt.Errorf("-telemetry-retain %q: want a window count (1440) or an age (24h)", retain)
	}

	switch tiers {
	case "auto":
		cfg.Tiers = []time.Duration{10 * window, 60 * window}
	case "none":
	default:
		for _, part := range strings.Split(tiers, ",") {
			d, err := time.ParseDuration(strings.TrimSpace(part))
			if err != nil || d <= 0 {
				return nil, nil, fmt.Errorf("-telemetry-tiers %q: bad width %q (want durations like 10m,1h)", tiers, part)
			}
			// A tier no coarser than the window duplicates raw windows for
			// zero resolution gain; a non-multiple mis-aligns buckets so
			// whole windows land in ranges their flows don't occupy.
			if d <= window || d%window != 0 {
				return nil, nil, fmt.Errorf("-telemetry-tiers %q: width %s must be a multiple of -window %s, coarser than it", tiers, d, window)
			}
			cfg.Tiers = append(cfg.Tiers, d)
		}
	}

	if persist == "" {
		return telemetry.NewStore(cfg), func() {}, nil
	}
	f, err := os.OpenFile(persist, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("-telemetry-persist: %w", err)
	}
	cfg.Persist = telemetry.NewJSONLSink(f)
	store := telemetry.NewStore(cfg)
	// Reload leaves the file position at EOF, so the sink appends after
	// the restored history.
	n, err := store.Reload(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("-telemetry-persist %s: %v (repair or remove the file)", persist, err)
	}
	if n > 0 {
		slog.Info("reloaded telemetry windows", "windows", n, "path", persist)
	}
	return store, func() { f.Close() }, nil
}

// retrainFunc regenerates "fresh ground truth" for a replacement bank. The
// synthetic stand-in for the paper's recollect-and-retrain: a lab dataset
// at the configured scale, plus — when the deployment's fleet is known to
// have updated (withDrift) — the open-set perturbed profiles, so the
// candidate covers both current and drifted handshakes.
func retrainFunc(scale float64, withDrift bool) registry.TrainFunc {
	return func(reason string, seed uint64) (*pipeline.Bank, error) {
		ds, err := tracegen.New(seed).LabDataset(scale, fingerprint.Options{})
		if err != nil {
			return nil, err
		}
		if withDrift {
			drifted, err := tracegen.New(seed^0xd81f7).LabDataset(scale, fingerprint.Options{OpenSet: true})
			if err != nil {
				return nil, err
			}
			ds.Flows = append(ds.Flows, drifted.Flows...)
		}
		return pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: ml.ForestConfig{
			NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: seed}})
	}
}

func loadOrTrainBank(path string, seed uint64, scale float64) *pipeline.Bank {
	if path != "" {
		blob, err := os.ReadFile(path)
		if err != nil {
			exitOn(fmt.Errorf("loading -model: %w", err))
		}
		var bank pipeline.Bank
		if err := bank.UnmarshalBinary(blob); err != nil {
			// Name the file: the gob error alone ("unexpected EOF", format
			// mismatch) doesn't say which of several banks was bad.
			exitOn(fmt.Errorf("loading -model %s: %w", path, err))
		}
		if bank.Version != "" {
			slog.Info("loaded model", "path", path, "version", bank.Version)
		}
		return &bank
	}
	slog.Info("no -model given, self-training a demo bank", "scale", scale)
	ds, err := tracegen.New(seed^0x5eed).LabDataset(scale, fingerprint.Options{})
	exitOn(err)
	bank, err := pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: seed}})
	exitOn(err)
	return bank
}

func sessionsDesc(n int) string {
	if n <= 0 {
		return "unlimited"
	}
	return fmt.Sprint(n)
}

func driftDesc(after int) string {
	if after <= 0 {
		return ""
	}
	return fmt.Sprintf(", open-set drift after %d", after)
}

func exitOn(err error) {
	if err != nil {
		slog.Error("fatal", "error", err)
		os.Exit(1)
	}
}
