// Command vpserve is the streaming ingest daemon: it replays a pcap/pcapng
// capture (or generates synthetic traffic) through the sharded
// classification pipeline with bounded per-shard flow tables, rolls
// finalized flows into tumbling telemetry windows written as JSONL, and
// serves an operations API (/stats, /flows, /healthz, /metrics) while it
// runs. SIGINT/SIGTERM trigger a graceful shutdown that drains the shards
// and flushes the final partial window.
//
// With -registry-dir the daemon keeps its banks in a versioned model
// registry: /models lists the version history, /models/promote and
// /models/rollback hot-swap the serving bank without dropping a packet,
// and /models/export captures the active bank as a vptrain-style gob.
// -auto-retrain closes the paper's §5.3 loop: a drift monitor watches
// every classification, a flagged classifier triggers a background
// retrain, and the candidate is promoted only after shadow evaluation on
// live traffic clears the gate.
//
// Usage:
//
//	vpserve -model bank.gob -pcap capture.pcap -rate 5000 -rollup windows.jsonl
//	vpserve -synth 500 -addr :8080            # self-train a demo bank, synthetic load
//	vpserve -pcap capture.pcap -exit-when-done
//	vpserve -registry-dir ./models -auto-retrain -synth 400 -synth-drift-after 150
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"videoplat/internal/drift"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/pipeline"
	"videoplat/internal/registry"
	"videoplat/internal/server"
	"videoplat/internal/telemetry"
	"videoplat/internal/tracegen"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "operations API listen address")
		model        = flag.String("model", "", "trained model from vptrain (default: self-train a small demo bank)")
		pcapPath     = flag.String("pcap", "", "pcap/pcapng file to replay")
		synth        = flag.Int("synth", 0, "generate N synthetic video sessions instead of replaying a file (0 with no -pcap: unlimited)")
		seed         = flag.Uint64("seed", 1, "seed for synthetic traffic and self-training")
		rate         = flag.Float64("rate", 0, "replay pace in packets/sec (0 = as fast as possible)")
		shards       = flag.Int("shards", 0, "pipeline shards (0 = GOMAXPROCS)")
		batchSize    = flag.Int("batch-size", 0, "frames read and dispatched per ingest batch (0 = default 64)")
		shardQueue   = flag.Int("shard-queue", 0, "per-shard ingest inbox depth in batches (0 = default 64)")
		resultsBuf   = flag.Int("results-buffer", 0, "classified-results channel capacity (0 = 64 per shard)")
		maxHello     = flag.Int("max-hello-bytes", 0, "per-flow buffered handshake byte cap (0 = default 64KiB, <0 = unbounded); oversized flows are abandoned and counted")
		maxFlows     = flag.Int("max-flows", 65536, "flow-table cap across shards (<0 = unbounded)")
		idleTimeout  = flag.Duration("idle-timeout", 90*time.Second, "evict flows idle for this long, in trace time (<0 = never)")
		window       = flag.Duration("window", time.Minute, "rollup window width")
		rollupOut    = flag.String("rollup", "", "JSONL file receiving sealed rollup windows (default: discard)")
		trainScale   = flag.Float64("train-scale", 0.04, "lab-dataset scale for self-trained and retrained banks")
		exitWhenDone = flag.Bool("exit-when-done", false, "shut down once the replay source is exhausted")

		registryDir = flag.String("registry-dir", "", "versioned model registry directory (enables /models, promote/rollback hot-swap)")
		autoRetrain = flag.Bool("auto-retrain", false, "retrain and shadow-promote a new bank when drift is detected (requires -registry-dir)")
		driftWindow = flag.Int("drift-window", 0, "recent predictions per classifier for drift detection (0 = monitor default 500; size to your traffic)")
		driftDrop   = flag.Float64("drift-drop", 0, "median-confidence drop that flags a classifier (0 = monitor default 0.10)")
		cooldown    = flag.Duration("retrain-cooldown", time.Minute, "minimum gap between retrain attempts")
		shadowRate  = flag.Float64("shadow-sample", 0.25, "fraction of live classifications shadow-evaluated by a candidate bank")
		shadowFlows = flag.Int("shadow-flows", 200, "shadow classifications required before a promote/reject verdict")
		shadowAgree = flag.Float64("shadow-agreement", 0.5, "minimum candidate/active agreement on flows both predict confidently (0 = gate default 0.5, negative disables)")
		saveOnExit  = flag.String("save-on-exit", "", "write the bank active at shutdown to this file (captures retrained banks)")
		driftAfter  = flag.Int("synth-drift-after", 0, "inject open-set platform drift after N synthetic sessions (0 = never)")
	)
	flag.Parse()

	bank := loadOrTrainBank(*model, *seed, *trainScale)

	// Model lifecycle: registry, drift monitor, retrainer.
	var (
		reg *registry.Registry
		mon *drift.Monitor
		rt  *registry.Retrainer
	)
	if *registryDir != "" {
		var err error
		reg, err = registry.New(registry.Config{Dir: *registryDir})
		exitOn(err)
		if cur := reg.Current(); cur != nil && *model == "" {
			// A previous run left an active version; prefer it over
			// self-training from scratch.
			bank = cur.Bank
			fmt.Fprintf(os.Stderr, "vpserve: serving registry version %s from %s\n",
				cur.Manifest.ID, *registryDir)
		} else {
			reason := "initial (self-trained)"
			if *model != "" {
				reason = fmt.Sprintf("operator import: %s", *model)
			}
			m, err := reg.Add(bank, reason, *seed)
			exitOn(err)
			v, err := reg.Promote(m.ID)
			exitOn(err)
			bank = v.Bank // serve the registry's copy, not the Add argument
			fmt.Fprintf(os.Stderr, "vpserve: registered bank as %s in %s\n", m.ID, *registryDir)
		}
		mon = drift.NewMonitor(drift.Config{
			Window:         *driftWindow,
			ConfidenceDrop: *driftDrop,
		})
	}
	if *autoRetrain {
		if reg == nil {
			exitOn(fmt.Errorf("-auto-retrain requires -registry-dir"))
		}
		var err error
		rt, err = registry.NewRetrainer(reg, registry.RetrainerConfig{
			Train:    retrainFunc(*trainScale, *driftAfter > 0),
			Seed:     *seed + 1000,
			Cooldown: *cooldown,
			Gate: registry.Gate{
				SampleRate:   *shadowRate,
				MinFlows:     *shadowFlows,
				MinAgreement: *shadowAgree,
			},
		})
		exitOn(err)
		rt.BindMonitor(mon)
	}

	var src server.Source
	switch {
	case *pcapPath != "":
		var err error
		src, err = server.OpenFileSource(*pcapPath)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "vpserve: replaying %s\n", *pcapPath)
	default:
		src = server.NewDriftingSynthSource(*seed, *synth, *driftAfter)
		fmt.Fprintf(os.Stderr, "vpserve: generating synthetic traffic (%v sessions%s)\n",
			sessionsDesc(*synth), driftDesc(*driftAfter))
	}

	var sink telemetry.Sink
	if *rollupOut != "" {
		f, err := os.Create(*rollupOut)
		exitOn(err)
		defer f.Close()
		sink = telemetry.NewJSONLSink(f)
	}

	srv, err := server.New(bank, src, server.Config{
		Addr:            *addr,
		Shards:          *shards,
		MaxFlows:        *maxFlows,
		IdleTimeout:     *idleTimeout,
		WindowWidth:     *window,
		Rate:            *rate,
		BatchSize:       *batchSize,
		ShardQueueDepth: *shardQueue,
		ResultsBuffer:   *resultsBuf,
		MaxHelloBytes:   *maxHello,
		Sink:            sink,
		Registry:        reg,
		Drift:           mon,
		Retrainer:       rt,
	})
	exitOn(err)
	fmt.Fprintf(os.Stderr, "vpserve: operations API on http://%s (/stats /flows /models /healthz /metrics)\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *exitWhenDone {
		inner := ctx
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			select {
			case <-srv.ReplayDone():
				fmt.Fprintln(os.Stderr, "vpserve: replay finished, shutting down")
				cancel()
			case <-inner.Done():
			}
		}()
	}

	exitOn(srv.Run(ctx))

	st := srv.Snapshot()
	fmt.Fprintf(os.Stderr,
		"vpserve: done — %d packets in %d batches (%d ignored, %d stalls), %d flows tracked (%d evicted idle, %d evicted cap), %d classified, %d rollup windows, model %s (%d swaps)\n",
		st.Replay.Packets, st.Ingest.Batches, st.Ingest.IgnoredFrames, st.Ingest.Stalls,
		st.FlowTable.Inserted,
		st.FlowTable.EvictedIdle, st.FlowTable.EvictedCap,
		st.ClassifiedFlows, st.Rollup.Sealed,
		st.Models.ActiveVersion, st.Models.Swaps)

	if *saveOnExit != "" {
		active := bank
		if reg != nil {
			if cur := reg.Current(); cur != nil {
				active = cur.Bank
			}
		}
		blob, err := active.MarshalBinary()
		exitOn(err)
		exitOn(os.WriteFile(*saveOnExit, blob, 0o644))
		fmt.Fprintf(os.Stderr, "vpserve: saved active bank (%s, %d bytes) to %s\n",
			st.Models.ActiveVersion, len(blob), *saveOnExit)
	}
}

// retrainFunc regenerates "fresh ground truth" for a replacement bank. The
// synthetic stand-in for the paper's recollect-and-retrain: a lab dataset
// at the configured scale, plus — when the deployment's fleet is known to
// have updated (withDrift) — the open-set perturbed profiles, so the
// candidate covers both current and drifted handshakes.
func retrainFunc(scale float64, withDrift bool) registry.TrainFunc {
	return func(reason string, seed uint64) (*pipeline.Bank, error) {
		ds, err := tracegen.New(seed).LabDataset(scale, fingerprint.Options{})
		if err != nil {
			return nil, err
		}
		if withDrift {
			drifted, err := tracegen.New(seed^0xd81f7).LabDataset(scale, fingerprint.Options{OpenSet: true})
			if err != nil {
				return nil, err
			}
			ds.Flows = append(ds.Flows, drifted.Flows...)
		}
		return pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: ml.ForestConfig{
			NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: seed}})
	}
}

func loadOrTrainBank(path string, seed uint64, scale float64) *pipeline.Bank {
	if path != "" {
		blob, err := os.ReadFile(path)
		if err != nil {
			exitOn(fmt.Errorf("loading -model: %w", err))
		}
		var bank pipeline.Bank
		if err := bank.UnmarshalBinary(blob); err != nil {
			// Name the file: the gob error alone ("unexpected EOF", format
			// mismatch) doesn't say which of several banks was bad.
			exitOn(fmt.Errorf("loading -model %s: %w", path, err))
		}
		if bank.Version != "" {
			fmt.Fprintf(os.Stderr, "vpserve: loaded %s (version %s)\n", path, bank.Version)
		}
		return &bank
	}
	fmt.Fprintf(os.Stderr, "vpserve: no -model given, self-training a demo bank (scale %.2f)...\n", scale)
	ds, err := tracegen.New(seed^0x5eed).LabDataset(scale, fingerprint.Options{})
	exitOn(err)
	bank, err := pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: seed}})
	exitOn(err)
	return bank
}

func sessionsDesc(n int) string {
	if n <= 0 {
		return "unlimited"
	}
	return fmt.Sprint(n)
}

func driftDesc(after int) string {
	if after <= 0 {
		return ""
	}
	return fmt.Sprintf(", open-set drift after %d", after)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpserve:", err)
		os.Exit(1)
	}
}
