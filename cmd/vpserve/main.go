// Command vpserve is the streaming ingest daemon: it replays a pcap/pcapng
// capture (or generates synthetic traffic) through the sharded
// classification pipeline with bounded per-shard flow tables, rolls
// finalized flows into tumbling telemetry windows written as JSONL, and
// serves an operations API (/stats, /flows, /healthz, /metrics) while it
// runs. SIGINT/SIGTERM trigger a graceful shutdown that drains the shards
// and flushes the final partial window.
//
// Usage:
//
//	vpserve -model bank.gob -pcap capture.pcap -rate 5000 -rollup windows.jsonl
//	vpserve -synth 500 -addr :8080            # self-train a demo bank, synthetic load
//	vpserve -pcap capture.pcap -exit-when-done
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/pipeline"
	"videoplat/internal/server"
	"videoplat/internal/telemetry"
	"videoplat/internal/tracegen"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "operations API listen address")
		model        = flag.String("model", "", "trained model from vptrain (default: self-train a small demo bank)")
		pcapPath     = flag.String("pcap", "", "pcap/pcapng file to replay")
		synth        = flag.Int("synth", 0, "generate N synthetic video sessions instead of replaying a file (0 with no -pcap: unlimited)")
		seed         = flag.Uint64("seed", 1, "seed for synthetic traffic and self-training")
		rate         = flag.Float64("rate", 0, "replay pace in packets/sec (0 = as fast as possible)")
		shards       = flag.Int("shards", 0, "pipeline shards (0 = GOMAXPROCS)")
		maxFlows     = flag.Int("max-flows", 65536, "flow-table cap across shards (<0 = unbounded)")
		idleTimeout  = flag.Duration("idle-timeout", 90*time.Second, "evict flows idle for this long, in trace time (<0 = never)")
		window       = flag.Duration("window", time.Minute, "rollup window width")
		rollupOut    = flag.String("rollup", "", "JSONL file receiving sealed rollup windows (default: discard)")
		trainScale   = flag.Float64("train-scale", 0.04, "lab-dataset scale for the self-trained bank")
		exitWhenDone = flag.Bool("exit-when-done", false, "shut down once the replay source is exhausted")
	)
	flag.Parse()

	bank := loadOrTrainBank(*model, *seed, *trainScale)

	var src server.Source
	switch {
	case *pcapPath != "":
		var err error
		src, err = server.OpenFileSource(*pcapPath)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "vpserve: replaying %s\n", *pcapPath)
	default:
		src = server.NewSynthSource(*seed, *synth)
		fmt.Fprintf(os.Stderr, "vpserve: generating synthetic traffic (%v sessions)\n", sessionsDesc(*synth))
	}

	var sink telemetry.Sink
	if *rollupOut != "" {
		f, err := os.Create(*rollupOut)
		exitOn(err)
		defer f.Close()
		sink = telemetry.NewJSONLSink(f)
	}

	srv, err := server.New(bank, src, server.Config{
		Addr:        *addr,
		Shards:      *shards,
		MaxFlows:    *maxFlows,
		IdleTimeout: *idleTimeout,
		WindowWidth: *window,
		Rate:        *rate,
		Sink:        sink,
	})
	exitOn(err)
	fmt.Fprintf(os.Stderr, "vpserve: operations API on http://%s (/stats /flows /healthz /metrics)\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *exitWhenDone {
		inner := ctx
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			select {
			case <-srv.ReplayDone():
				fmt.Fprintln(os.Stderr, "vpserve: replay finished, shutting down")
				cancel()
			case <-inner.Done():
			}
		}()
	}

	exitOn(srv.Run(ctx))

	st := srv.Snapshot()
	fmt.Fprintf(os.Stderr,
		"vpserve: done — %d packets, %d flows tracked (%d evicted idle, %d evicted cap), %d classified, %d rollup windows\n",
		st.Replay.Packets, st.FlowTable.Inserted,
		st.FlowTable.EvictedIdle, st.FlowTable.EvictedCap,
		st.ClassifiedFlows, st.Rollup.Sealed)
}

func loadOrTrainBank(path string, seed uint64, scale float64) *pipeline.Bank {
	if path != "" {
		blob, err := os.ReadFile(path)
		exitOn(err)
		var bank pipeline.Bank
		exitOn(bank.UnmarshalBinary(blob))
		return &bank
	}
	fmt.Fprintf(os.Stderr, "vpserve: no -model given, self-training a demo bank (scale %.2f)...\n", scale)
	ds, err := tracegen.New(seed^0x5eed).LabDataset(scale, fingerprint.Options{})
	exitOn(err)
	bank, err := pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: seed}})
	exitOn(err)
	return bank
}

func sessionsDesc(n int) string {
	if n <= 0 {
		return "unlimited"
	}
	return fmt.Sprint(n)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpserve:", err)
		os.Exit(1)
	}
}
