package main

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"

	"videoplat/internal/pipeline"
	"videoplat/internal/server"
)

// These tests pin docs/OPERATIONS.md to the code it documents: the
// registered vpserve flag set, the operations API route table and the
// /metrics catalog. Adding a flag, endpoint or metric without documenting
// it — or documenting one that no longer exists — fails CI.

func operationsDoc(t *testing.T) string {
	t.Helper()
	doc, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading runbook: %v", err)
	}
	return string(doc)
}

func TestOperationsDocCoversFlags(t *testing.T) {
	fs := flag.NewFlagSet("vpserve", flag.ContinueOnError)
	registerFlags(fs)
	doc := operationsDoc(t)

	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		registered[f.Name] = true
		if !regexp.MustCompile("`-" + regexp.QuoteMeta(f.Name) + "`").MatchString(doc) {
			t.Errorf("flag -%s is not documented in docs/OPERATIONS.md (add a `-%s` table row)", f.Name, f.Name)
		}
	})
	if len(registered) == 0 {
		t.Fatal("no flags registered")
	}

	// The reverse direction: every `-flag` the runbook mentions must still
	// exist, so renames and removals can't leave stale documentation.
	for _, m := range regexp.MustCompile("`-([a-z][a-z0-9-]*)`").FindAllStringSubmatch(doc, -1) {
		if !registered[m[1]] {
			t.Errorf("docs/OPERATIONS.md documents `-%s`, which is not a registered vpserve flag", m[1])
		}
	}
}

func TestOperationsDocCoversEndpoints(t *testing.T) {
	doc := operationsDoc(t)
	endpoints := server.Endpoints()
	if len(endpoints) == 0 {
		t.Fatal("no endpoints registered")
	}
	for _, pattern := range endpoints {
		if !regexp.MustCompile("`" + regexp.QuoteMeta(pattern) + "`").MatchString(doc) {
			t.Errorf("endpoint %q is not documented in docs/OPERATIONS.md (add a `%s` section)", pattern, pattern)
		}
	}
}

func TestOperationsDocCoversVerdicts(t *testing.T) {
	doc := operationsDoc(t)
	start := strings.Index(doc, "## Flow verdicts")
	if start < 0 {
		t.Fatal("docs/OPERATIONS.md has no \"## Flow verdicts\" section")
	}
	section := doc[start:]
	if end := strings.Index(section[2:], "\n## "); end >= 0 {
		section = section[:end+2]
	}

	taxonomy := map[string]bool{}
	for _, name := range pipeline.VerdictNames() {
		taxonomy[name] = true
		if !regexp.MustCompile("(?m)^\\| `" + regexp.QuoteMeta(name) + "` \\|").MatchString(section) {
			t.Errorf("verdict %q is not documented in the Flow verdicts table (add a `%s` row)", name, name)
		}
	}

	// Reverse: every row in the table must name a live verdict, so renames
	// and removals can't leave stale documentation.
	for _, m := range regexp.MustCompile("(?m)^\\| `([a-z0-9-]+)` \\|").FindAllStringSubmatch(section, -1) {
		if !taxonomy[m[1]] {
			t.Errorf("Flow verdicts table documents %q, which is not in pipeline.VerdictNames()", m[1])
		}
	}
}

func TestOperationsDocCoversMetrics(t *testing.T) {
	doc := operationsDoc(t)
	names := server.MetricNames()
	if len(names) == 0 {
		t.Fatal("no metrics in catalog")
	}
	catalog := map[string]bool{}
	for _, name := range names {
		catalog[name] = true
		if !regexp.MustCompile("`" + regexp.QuoteMeta(name) + "`").MatchString(doc) {
			t.Errorf("metric %s is not documented in docs/OPERATIONS.md (add a `%s` table row)", name, name)
		}
	}
	// Reverse: every series the runbook names must still be emitted.
	for _, m := range regexp.MustCompile(`videoplat_[a-z_]+`).FindAllString(doc, -1) {
		if !catalog[m] {
			t.Errorf("docs/OPERATIONS.md documents %s, which is not in the /metrics catalog", m)
		}
	}
}
