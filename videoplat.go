// Package videoplat identifies the user platform — device type (Windows,
// macOS, Android, iOS, smart TV/console) and software agent (native app,
// Chrome, Firefox, Safari, Edge, Samsung Internet) — of video-streaming
// flows from YouTube, Netflix, Disney+ and Amazon Prime Video by analyzing
// only their TCP/QUIC and TLS handshake packets, as described in
// "Characterizing User Platforms for Video Streaming in Broadband Networks"
// (IMC 2024).
//
// The package is a facade over the implementation packages:
//
//   - GenerateLabDataset / GenerateOpenSetDataset render labeled synthetic
//     packet traces with the composition of the paper's Table 1;
//   - Train fits the per-provider classifier bank (3 objectives × 4
//     providers, with separate TCP and QUIC models for YouTube);
//   - NewPipeline wires a trained bank into a streaming packet processor
//     that detects video flows by SNI, extracts the 62 Table 2 attributes
//     from handshake packets, classifies the user platform with an 80%
//     confidence selector, and accumulates per-flow telemetry;
//   - NewAggregator summarizes classified flows into the watch-time,
//     bandwidth and temporal-usage statistics of the paper's §5.
//
// Beyond the batch workflow, the package exposes the building blocks of the
// paper's continuous deployment (the always-on tap of §4.3.3):
//
//   - NewBoundedPipeline bounds the pipeline's flow table (LRU + idle
//     eviction with eviction counters) so per-flow state stays flat under
//     sustained traffic, delivering evicted flows' final telemetry to a
//     callback instead of dropping it;
//   - NewRollup / NewJSONLSink maintain tumbling time windows of
//     per-provider and per-platform watch-time, bandwidth and
//     classification-rate aggregates, retiring sealed windows to a
//     pluggable sink;
//   - NewTelemetryStore retains sealed windows in a bounded, queryable
//     in-memory ring — count/age retention, coarser downsampling tiers
//     compacted by merging window aggregates so long ranges stay cheap,
//     and optional JSONL persistence reloaded on restart — and answers
//     time-range queries (since/until/step, grouped by provider, platform
//     or model version) live instead of via offline JSONL post-processing;
//   - NewServer assembles it all into a streaming ingest daemon that
//     replays capture files or synthetic traffic through the sharded
//     pipeline at a configurable packet rate and serves live operations
//     endpoints (/stats, /flows, /windows, /query, /events, /healthz,
//     /readyz, /metrics) with graceful shutdown.
//
// The §5.3 concept-drift story is closed by the model lifecycle subsystem,
// which evolves the classifier bank under live traffic:
//
//   - NewRegistry opens a versioned, disk-backed store of serialized banks
//     (manifest per version: id, training config, seed, creation time,
//     shadow-evaluation metrics). The active version sits behind an atomic
//     pointer, so Promote and Rollback are zero-downtime hot-swaps: a flow
//     classifying when the swap lands completes against the bank it
//     loaded, the next flow sees the new one, and every record carries the
//     ModelVersion that produced it (rollup windows aggregate these, so
//     sealed telemetry stays attributable across swaps);
//   - NewDriftMonitor watches per-classifier confidence and unknown-rate
//     windows, with pollable verdicts and push Subscribe notifications,
//     rebaselining itself whenever the serving bank's version changes;
//   - NewRetrainer ties them together: a flagged classifier triggers a
//     background retrain, the candidate bank shadow-classifies a sample of
//     live flows alongside the active bank, and is promoted only when its
//     confidence/agreement clears the ShadowGate — the paper's detect →
//     retrain → redeploy loop with no serving interruption. The Server
//     exposes it all over /models, /models/promote, /models/rollback and
//     /models/export.
//
// The serving spine is built for line rate: ingest parses each frame
// exactly once, per-flow handshakes are assembled incrementally (state-
// machine reassembly in O(client bytes), bounded by
// PipelineConfig.MaxHelloBytes), and classification runs a compiled
// zero-allocation path — the bank's three objectives share one encode pass
// over interned raw-wire-value tables (Bank.ClassifyHandshake), writing
// into per-shard scratch instead of building per-flow maps and strings.
// The fast path is byte-identical to the reference extraction path, pinned
// by golden-equivalence tests.
//
// See examples/quickstart for an end-to-end batch walkthrough,
// examples/serve-replay for the streaming daemon, examples/telemetry-query
// for live time-range queries (and restart-surviving history) against the
// daemon, examples/drift-retrain for the forced-drift auto-promotion
// walkthrough, cmd/vpserve for the daemon binary, and cmd/vpexperiments
// for the harness that regenerates every table and figure in the paper.
package videoplat

import (
	"io"
	"log/slog"
	"time"

	"videoplat/internal/drift"
	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/flowtable"
	"videoplat/internal/ml"
	"videoplat/internal/obs"
	"videoplat/internal/pipeline"
	"videoplat/internal/registry"
	"videoplat/internal/server"
	"videoplat/internal/telemetry"
	"videoplat/internal/tracegen"
)

// Re-exported core types. The aliases give downstream users a single import
// while keeping the implementation split into focused packages.
type (
	// Provider is a video content provider (YouTube, Netflix, Disney,
	// Amazon).
	Provider = fingerprint.Provider
	// Transport is a flow's transport protocol (TCP or QUIC).
	Transport = fingerprint.Transport
	// Dataset is a labeled collection of rendered video-flow traces.
	Dataset = tracegen.Dataset
	// FlowTrace is one rendered, labeled video flow.
	FlowTrace = tracegen.FlowTrace
	// Bank is the trained classifier bank of Fig 4.
	Bank = pipeline.Bank
	// Pipeline is the streaming packet processor.
	Pipeline = pipeline.Pipeline
	// FlowRecord is a classified flow with telemetry.
	FlowRecord = pipeline.FlowRecord
	// Prediction is a confidence-selected platform prediction.
	Prediction = pipeline.Prediction
	// Aggregator accumulates classified flows into §5-style statistics.
	Aggregator = telemetry.Aggregator
	// BoxStats is a five-number bandwidth summary.
	BoxStats = telemetry.BoxStats
	// ForestConfig holds the random-forest hyperparameters.
	ForestConfig = ml.ForestConfig

	// PipelineConfig bounds a pipeline's flow table for long-running use,
	// sizes a sharded pipeline's queues (ShardQueueDepth, ResultsBuffer)
	// and caps per-flow buffered handshake bytes (MaxHelloBytes).
	PipelineConfig = pipeline.Config
	// HandshakeInfo is a flow's assembled handshake state — what
	// PipelineConfig.OnClassify receives and Bank.ClassifyHandshake
	// consumes.
	HandshakeInfo = features.HandshakeInfo
	// ClassifyScratch holds a worker's reusable classification buffers for
	// the zero-allocation Bank.ClassifyHandshake fast path.
	ClassifyScratch = pipeline.ClassifyScratch
	// ShardedPipeline fans packets across per-shard Pipelines by flow
	// hash, parsing each frame exactly once at ingest — the multi-queue
	// deployment shape of the paper's §4.3.3 prototype.
	ShardedPipeline = pipeline.Sharded
	// IngestPacket is one timestamped frame for the batched ingest path
	// (ShardedPipeline.HandlePacketBatch).
	IngestPacket = pipeline.IngestPacket
	// IngestStats are the ingest-path counters: frames ignored at ingest,
	// best-effort results dropped, and backpressure stalls.
	IngestStats = pipeline.IngestStats
	// FlowTableStats are a bounded flow table's occupancy/eviction counters.
	FlowTableStats = flowtable.Stats
	// Rollup maintains tumbling telemetry windows over finalized flows.
	Rollup = telemetry.Rollup
	// RollupWindow is one sealed tumbling window of flow aggregates.
	RollupWindow = telemetry.Window
	// RollupCell aggregates one provider's or platform's flows within a
	// window.
	RollupCell = telemetry.Cell
	// RollupSink receives sealed rollup windows.
	RollupSink = telemetry.Sink
	// TelemetryStore retains sealed windows in bounded, queryable,
	// optionally persistent multi-resolution rings.
	TelemetryStore = telemetry.Store
	// TelemetryStoreConfig tunes store retention, downsampling tiers and
	// persistence.
	TelemetryStoreConfig = telemetry.StoreConfig
	// TelemetryStoreStats are the store's occupancy/eviction/compaction
	// counters.
	TelemetryStoreStats = telemetry.StoreStats
	// QueryResult is a TelemetryStore.Query response: re-aggregated series
	// over a time range.
	QueryResult = telemetry.QueryResult
	// QuerySeries is one group's series within a QueryResult.
	QuerySeries = telemetry.QuerySeries
	// QueryPoint is one re-aggregated time bucket of a QuerySeries.
	QueryPoint = telemetry.QueryPoint
	// Server is the streaming ingest daemon with the operations HTTP API.
	Server = server.Server
	// ServeConfig tunes the streaming ingest daemon.
	ServeConfig = server.Config
	// ReplaySource streams timestamped frames into the daemon.
	ReplaySource = server.Source

	// Registry is the versioned model-bank store with atomic hot-swap.
	Registry = registry.Registry
	// RegistryConfig tunes a model registry (directory, retention).
	RegistryConfig = registry.Config
	// ModelManifest describes one stored bank version.
	ModelManifest = registry.Manifest
	// ModelVersion pairs a loaded bank with its manifest.
	ModelVersion = registry.Version
	// ShadowGate is the promotion bar for shadow-evaluated candidates.
	ShadowGate = registry.Gate
	// Retrainer runs the drift-triggered retrain/shadow/promote loop.
	Retrainer = registry.Retrainer
	// RetrainerConfig tunes the retrain loop (train func, gate, cooldown).
	RetrainerConfig = registry.RetrainerConfig
	// DriftMonitor flags classifiers whose predictions decay (§5.3).
	DriftMonitor = drift.Monitor
	// DriftConfig tunes drift detection windows and thresholds.
	DriftConfig = drift.Config

	// PipelineObserver collects zero-allocation per-stage latency
	// histograms; attach one via PipelineConfig.Observer and read digests
	// with StageStats.
	PipelineObserver = obs.PipelineObserver
	// StageStats is one stage's latency digest (count, mean, p50/p90/p99,
	// max).
	StageStats = obs.StageStats
	// LatencyHistogram is the underlying wait-free log-linear histogram.
	LatencyHistogram = obs.Histogram
	// LatencySummary is a sparse, mergeable, JSON-serializable latency
	// digest — the form rollup windows carry so downsampled telemetry
	// reports the same quantiles.
	LatencySummary = obs.Summary
	// FlowTracer samples flow lifecycles (1-in-N) into pooled spans;
	// attach one via PipelineConfig.Tracer.
	FlowTracer = obs.Tracer
	// FlowTracerConfig tunes sampling rate and span retention.
	FlowTracerConfig = obs.TracerConfig
	// FlowSpan is one sampled flow's lifecycle record: per-stage timings,
	// shard, queue depth at admission, model version and verdict.
	FlowSpan = obs.Span
	// TraceSnapshot is a tracer's state: counters, recent spans and
	// slowest-flow exemplars (GET /trace).
	TraceSnapshot = obs.TraceSnapshot
	// RuntimeStats are Go runtime gauges (goroutines, heap, GC pauses).
	RuntimeStats = obs.RuntimeStats
	// BuildInfo identifies the running binary.
	BuildInfo = obs.BuildInfo

	// Verdict is a flow's decision outcome: how (or why not) the pipeline
	// classified it. Every finalized FlowRecord carries one.
	Verdict = pipeline.Verdict
	// ConfidenceHist is a mergeable fixed-width histogram over [0, 1]
	// probabilities; quantiles stay exact under any merge order.
	ConfidenceHist = telemetry.ConfidenceHist
	// QualitySummary is a rollup window's decision-quality digest: verdict
	// counts, confidence/margin histograms, drift score and shadow
	// agreement — every field merges exactly across downsampling.
	QualitySummary = telemetry.QualitySummary
	// OpsEventType classifies an ops journal entry (model_promote,
	// drift_trigger, shadow_verdict, ...).
	OpsEventType = obs.EventType
	// OpsEvent is one typed, timestamped ops journal entry.
	OpsEvent = obs.Event
	// OpsJournal is a bounded ring of typed ops events with slog mirroring
	// (GET /events); pass one via ServeConfig.Journal.
	OpsJournal = obs.Journal
	// OpsJournalStats summarizes a journal's counters.
	OpsJournalStats = obs.JournalStats
)

// Providers.
const (
	YouTube = fingerprint.YouTube
	Netflix = fingerprint.Netflix
	Disney  = fingerprint.Disney
	Amazon  = fingerprint.Amazon
)

// Transports.
const (
	TCP  = fingerprint.TCP
	QUIC = fingerprint.QUIC
)

// Prediction statuses of the §4.1 confidence selector.
const (
	Composite = pipeline.Composite
	Partial   = pipeline.Partial
	Unknown   = pipeline.Unknown
)

// Telemetry query group-by dimensions (TelemetryStore.Query, GET /query).
const (
	GroupTotal    = telemetry.GroupTotal
	GroupProvider = telemetry.GroupProvider
	GroupPlatform = telemetry.GroupPlatform
	GroupModel    = telemetry.GroupModel
)

// Flow decision verdicts.
const (
	VerdictPending      = pipeline.VerdictPending
	VerdictClassified   = pipeline.VerdictClassified
	VerdictAbstained    = pipeline.VerdictAbstained
	VerdictBaselineOnly = pipeline.VerdictBaselineOnly
	VerdictNoHandshake  = pipeline.VerdictNoHandshake
	VerdictOversized    = pipeline.VerdictOversized
	VerdictNotVideo     = pipeline.VerdictNotVideo
	VerdictError        = pipeline.VerdictError
)

// Ops journal event types (the GET /events vocabulary).
const (
	EventModelPromote     = obs.EventModelPromote
	EventModelRollback    = obs.EventModelRollback
	EventModelSwap        = obs.EventModelSwap
	EventDriftTrigger     = obs.EventDriftTrigger
	EventDriftRearm       = obs.EventDriftRearm
	EventShadowStart      = obs.EventShadowStart
	EventShadowVerdict    = obs.EventShadowVerdict
	EventRetrainError     = obs.EventRetrainError
	EventEvictionPressure = obs.EventEvictionPressure
	EventSinkError        = obs.EventSinkError
	EventStoreCompaction  = obs.EventStoreCompaction
)

// Platforms lists the 17 user-platform labels of Table 1
// (e.g. "windows_chrome", "iOS_nativeApp", "ps5_nativeApp").
func Platforms() []string { return fingerprint.AllPlatformLabels() }

// GenerateLabDataset renders the paper's Table 1 lab dataset at the given
// scale in (0, 1]; scale 1.0 produces the full ~10,000 flows.
func GenerateLabDataset(seed uint64, scale float64) (*Dataset, error) {
	return tracegen.New(seed).LabDataset(scale, fingerprint.Options{})
}

// GenerateOpenSetDataset renders the §4.3.2 open-set dataset with
// version-drifted platform profiles, n flows per (platform, provider,
// transport) combination.
func GenerateOpenSetDataset(seed uint64, n int) (*Dataset, error) {
	return tracegen.New(seed).OpenSetDataset(n)
}

// Train fits the classifier bank on a labeled dataset. A zero ForestConfig
// selects the paper's tuned hyperparameters (depth 20, 34 candidate
// attributes per split).
func Train(ds *Dataset, cfg ForestConfig) (*Bank, error) {
	return pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: cfg})
}

// NewPipeline returns a streaming packet processor over a trained bank.
// Feed it raw Ethernet frames via HandlePacket.
func NewPipeline(bank *Bank) *Pipeline { return pipeline.New(bank) }

// NewAggregator returns a telemetry aggregator normalizing watch time over
// the given number of days.
func NewAggregator(days float64) *Aggregator { return &Aggregator{Days: days} }

// NewBoundedPipeline returns a streaming packet processor whose flow table
// is bounded by cfg (max flows, idle timeout, eviction callback) — the
// configuration for long-running deployments where flow state must not grow
// with traffic.
func NewBoundedPipeline(bank *Bank, cfg PipelineConfig) *Pipeline {
	return pipeline.NewWithConfig(bank, cfg)
}

// NewShardedPipeline starts n shard workers over a trained bank, each with
// its own cfg-bounded flow table. Feed frames from one ingest goroutine
// with HandlePacket or, for high rates, HandlePacketBatch — each frame is
// parsed exactly once at ingest, buffers are pooled, and a batch costs at
// most one channel send per shard. Classified flows arrive on Results()
// (best-effort; see the Sharded type docs), and Close drains the workers.
func NewShardedPipeline(bank *Bank, n int, cfg PipelineConfig) *ShardedPipeline {
	return pipeline.NewShardedWithConfig(bank, n, cfg)
}

// NewRollup returns a windowed rollup engine retiring sealed windows of the
// given width to sink (nil discards).
func NewRollup(width time.Duration, sink RollupSink) *Rollup {
	return telemetry.NewRollup(width, sink)
}

// NewJSONLSink returns a rollup sink writing one JSON object per sealed
// window to w.
func NewJSONLSink(w io.Writer) RollupSink { return telemetry.NewJSONLSink(w) }

// NewTelemetryStore returns a queryable window store: a bounded in-memory
// ring of sealed rollup windows with count/age retention, multi-resolution
// downsampling tiers and optional JSONL persistence. It implements
// RollupSink, so it sits directly behind a Rollup — or behind the Server,
// which serves it over GET /windows and GET /query (pass it via
// ServeConfig.Store to tune retention; the Server builds a default one
// otherwise). Query re-aggregates retained windows into per-step series
// grouped by provider, platform or model version.
func NewTelemetryStore(cfg TelemetryStoreConfig) *TelemetryStore { return telemetry.NewStore(cfg) }

// MultiSink fans sealed windows out to several sinks, e.g. a queryable
// TelemetryStore plus a JSONL archive.
func MultiSink(sinks ...RollupSink) RollupSink { return telemetry.MultiSink(sinks...) }

// NewServer assembles the streaming ingest daemon: src replayed through a
// sharded, flow-table-bounded pipeline, with windowed rollups and the
// /stats, /flows, /events, /healthz, /readyz and /metrics operations API.
// Start it with Run.
func NewServer(bank *Bank, src ReplaySource, cfg ServeConfig) (*Server, error) {
	return server.New(bank, src, cfg)
}

// OpenReplaySource opens a pcap or pcapng capture file as a ReplaySource.
func OpenReplaySource(path string) (ReplaySource, error) { return server.OpenFileSource(path) }

// NewSynthSource returns a ReplaySource generating n synthetic video
// sessions (n <= 0: unlimited) — a built-in load generator for the daemon.
func NewSynthSource(seed uint64, n int) ReplaySource { return server.NewSynthSource(seed, n) }

// NewDriftingSynthSource is NewSynthSource with an injected fleet update:
// from session driftAfter on, flows render with the open-set profile
// perturbation — the §5.3 concept-drift scenario under live load.
func NewDriftingSynthSource(seed uint64, n, driftAfter int) ReplaySource {
	return server.NewDriftingSynthSource(seed, n, driftAfter)
}

// NewRegistry opens (or initializes) a versioned model registry. Store
// banks with Add, activate them with Promote/Rollback — each activation is
// a zero-downtime hot-swap for every serving pipeline subscribed via
// OnSwap (the Server subscribes automatically when given the registry).
func NewRegistry(cfg RegistryConfig) (*Registry, error) { return registry.New(cfg) }

// NewDriftMonitor returns a concept-drift monitor; feed it classified flow
// records with Observe and subscribe to flag events for retraining.
func NewDriftMonitor(cfg DriftConfig) *DriftMonitor { return drift.NewMonitor(cfg) }

// NewRetrainer returns the drift-triggered retrain loop over a registry
// with an active version. Bind it to a monitor, start it with Start, and
// feed live classifications to ObserveClassified (the Server does both
// when given the retrainer).
func NewRetrainer(reg *Registry, cfg RetrainerConfig) (*Retrainer, error) {
	return registry.NewRetrainer(reg, cfg)
}

// NewPipelineObserver returns a per-stage latency collector. Recording is
// wait-free and allocation-free; attach it to any pipeline via
// PipelineConfig.Observer (the Server wires one automatically and serves
// its digests in /stats and /metrics).
func NewPipelineObserver() *PipelineObserver { return obs.NewPipelineObserver() }

// NewFlowTracer returns a deterministic 1-in-N flow-lifecycle sampler.
// Attach it via PipelineConfig.Tracer; read spans with Snapshot (the Server
// serves its tracer over GET /trace).
func NewFlowTracer(cfg FlowTracerConfig) *FlowTracer { return obs.NewTracer(cfg) }

// ReadRuntimeStats snapshots the Go runtime's health gauges.
func ReadRuntimeStats() RuntimeStats { return obs.ReadRuntimeStats() }

// NewOpsJournal returns a bounded ops event journal (capacity <= 0 selects
// the default). A non-nil logger mirrors every event as a structured slog
// line. Wire it to a daemon via ServeConfig.Journal and, for the retrain
// lifecycle, RetrainerConfig.Events; the Server serves it over GET /events.
func NewOpsJournal(capacity int, logger *slog.Logger) *OpsJournal {
	return obs.NewJournal(capacity, logger)
}

// ReadBuildInfo reports the running binary's build identification (module,
// Go version, VCS revision) — what vpserve -version prints and /stats and
// videoplat_build_info expose.
func ReadBuildInfo() BuildInfo { return obs.ReadBuildInfo() }
