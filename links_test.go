package videoplat_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinksResolve walks every markdown file in the repository and
// checks that intra-repo links point at files that exist, so documentation
// references can't silently rot as the tree moves.
func TestMarkdownLinksResolve(t *testing.T) {
	linkRe := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue // external links and in-page anchors
			}
			target, _, _ = strings.Cut(target, "#") // drop the anchor
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", path, m[1], resolved)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
