// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment, reporting the headline metric), plus the microbenchmarks
// behind the §4.3.3 real-time deployment claims and the ablation studies
// listed in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Experiment benches use the quick context (small dataset scale); the
// cmd/vpexperiments tool runs the same code at full scale.
package videoplat_test

import (
	"fmt"
	"testing"
	"time"

	"videoplat"
	"videoplat/internal/experiments"
	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
	"videoplat/internal/tracegen"
)

func quick() *experiments.Context { return experiments.QuickContext() }

func reportMetric(b *testing.B, r *experiments.Report, key, unit string) {
	b.Helper()
	if v, ok := r.Metrics[key]; ok {
		b.ReportMetric(v, unit)
	}
}

// --- One benchmark per paper table/figure ---

func BenchmarkTable1Dataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "total_flows", "flows")
	}
}

func BenchmarkFig3FieldDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "constant_fields", "constant-fields")
	}
}

func BenchmarkFig5InfoGain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig5(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, rs[0], "high_all", "high-importance-attrs")
	}
}

func BenchmarkFig6aGridSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6a(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "best_accuracy", "accuracy")
	}
}

func BenchmarkFig6bcdConfusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig6bcd(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, rs[0], "accuracy", "accuracy")
	}
}

func BenchmarkAlgoComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AlgoComparison(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "random forest", "rf-accuracy")
	}
}

func BenchmarkTable3OpenSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "YT (QUIC)/user platform", "yt-quic-accuracy")
	}
}

func BenchmarkTable4Confidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "YT (QUIC)/user platform/correct", "median-correct-conf")
	}
}

func BenchmarkTable5Subsets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "full attribute set/platform", "full-set-accuracy")
	}
}

func BenchmarkTable6Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table6(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "Ours/YT (QUIC)", "ours-yt-quic")
	}
}

func BenchmarkFig7WatchTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "youtube/total_hours_per_day", "yt-hours-per-day")
	}
}

func BenchmarkFig8AgentWatchTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "amazon/macOS/median", "ap-mac-median-mbps")
	}
}

func BenchmarkFig10AgentBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Temporal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "netflix/peak_hour", "nf-peak-hour")
	}
}

func BenchmarkFig12Heatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Diversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14Importance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

func BenchmarkAblationListEncoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationListEncoding(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "positional", "positional-accuracy")
	}
}

func BenchmarkAblationGrease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationGrease(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "normalized", "normalized-accuracy")
	}
}

func BenchmarkAblationConfidenceSelector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationConfidenceSelector(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "composite_rate", "composite-rate")
	}
}

func BenchmarkAblationGlobalClassifier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationGlobalClassifier(quick())
		if err != nil {
			b.Fatal(err)
		}
		reportMetric(b, r, "global", "global-accuracy")
	}
}

// --- Real-time deployment microbenchmarks (§4.3.3: 20 Gbps, 1000+
// concurrent flows on a commodity server) ---

func trainedBank(b *testing.B) *videoplat.Bank {
	b.Helper()
	ds, err := videoplat.GenerateLabDataset(1, 0.04)
	if err != nil {
		b.Fatal(err)
	}
	bank, err := videoplat.Train(ds, videoplat.ForestConfig{NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return bank
}

// BenchmarkPipelineThroughput measures full-pipeline packet handling over a
// mixed workload, reporting bytes/s toward the 20 Gbps budget.
func BenchmarkPipelineThroughput(b *testing.B) {
	bank := trainedBank(b)
	g := tracegen.New(123)
	var frames []tracegen.Frame
	var total int64
	start := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		label := fingerprint.AllPlatformLabels()[i%17]
		prov := fingerprint.AllProviders()[i%4]
		if !fingerprint.SupportMatrix(label, prov) {
			prov = fingerprint.YouTube
		}
		if !fingerprint.SupportMatrix(label, prov) {
			continue
		}
		tr := fingerprint.TCP
		if !fingerprint.SupportsTCP(label, prov) {
			tr = fingerprint.QUIC
		}
		ft, err := g.Flow(label, prov, tr, tracegen.FlowSpec{Start: start, PayloadFrames: 8})
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, ft.Frames...)
		for _, fr := range ft.Frames {
			total += int64(len(fr.Data))
		}
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := videoplat.NewPipeline(bank)
		for _, fr := range frames {
			if _, err := p.HandlePacket(start, fr.Data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAttributeExtraction measures the Table 2 attribute generator on
// a decrypted QUIC handshake (the green box of Fig 4).
func BenchmarkAttributeExtraction(b *testing.B) {
	g := tracegen.New(5)
	ft, err := g.Flow("windows_chrome", fingerprint.YouTube, fingerprint.QUIC,
		tracegen.FlowSpec{PayloadFrames: 1})
	if err != nil {
		b.Fatal(err)
	}
	info, err := pipeline.ExtractTrace(ft)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.Extract(info)
	}
}

// BenchmarkClassifyFlow measures one classifier-bank invocation (12-model
// bank, three objectives with confidence selection).
func BenchmarkClassifyFlow(b *testing.B) {
	bank := trainedBank(b)
	g := tracegen.New(7)
	ft, err := g.Flow("macOS_safari", fingerprint.Netflix, fingerprint.TCP,
		tracegen.FlowSpec{PayloadFrames: 1})
	if err != nil {
		b.Fatal(err)
	}
	info, err := pipeline.ExtractTrace(ft)
	if err != nil {
		b.Fatal(err)
	}
	v := features.Extract(info)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bank.Classify(fingerprint.Netflix, fingerprint.TCP, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassify measures the steady-state per-flow classification path
// (assemble -> extract -> encode -> predict): the "flow" variants run a
// complete flow through the streaming pipeline per iteration, so allocs/op
// is the allocation cost of classifying one flow; the "encode-predict"
// variants isolate the compiled fast path over an assembled handshake,
// which must stay at 0 allocs/op.
func BenchmarkClassify(b *testing.B) {
	bank := trainedBank(b)
	// The predict tier gets its own production-scale bank (40 depth-20 trees
	// per model over a larger lab dataset, the §4.3.1 serving shape): the
	// compiled layout's advantage is cache behavior, which only shows once
	// the ensembles outgrow L1 — the quick 15-tree bank above stays
	// cache-resident and would understate the gap.
	predictDS, err := videoplat.GenerateLabDataset(1, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	predictBank, err := videoplat.Train(predictDS, videoplat.ForestConfig{NumTrees: 40, MaxDepth: 20, MaxFeatures: 34, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		name string
		tr   fingerprint.Transport
	}{
		{"tcp", fingerprint.TCP},
		{"quic", fingerprint.QUIC},
	} {
		ft, err := tracegen.New(7).Flow("windows_chrome", fingerprint.YouTube, tc.tr,
			tracegen.FlowSpec{Start: start, PayloadFrames: 1})
		if err != nil {
			b.Fatal(err)
		}
		info, err := pipeline.ExtractTrace(ft)
		if err != nil {
			b.Fatal(err)
		}

		b.Run("flow/"+tc.name, func(b *testing.B) {
			p := videoplat.NewPipeline(bank)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, fr := range ft.Frames {
					if _, err := p.HandlePacket(start, fr.Data); err != nil {
						b.Fatal(err)
					}
				}
				p.Reset()
			}
		})
		b.Run("encode-predict/"+tc.name, func(b *testing.B) {
			var sc pipeline.ClassifyScratch
			// Warm the lazily built model index and scratch capacities so
			// the timed region is pure steady state (0 allocs/op).
			if _, err := bank.ClassifyHandshake(fingerprint.YouTube, tc.tr, info, &sc); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bank.ClassifyHandshake(fingerprint.YouTube, tc.tr, info, &sc); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The predict tier isolates the forest pass this PR compiles: the
		// same fitted bank's three objective ensembles over 64 distinct
		// pre-encoded flows, as the reference pointer walk, the compiled
		// flat-array walk, and the lane-interleaved batch sweep. All three
		// must hold 0 allocs/op; compiled+batch must beat the pointer walk
		// by ≥2× ns/flow.
		b.Run("predict/"+tc.name, func(b *testing.B) {
			const batch = 64
			models := [3]*pipeline.Model{
				predictBank.Model(fingerprint.YouTube, tc.tr, pipeline.PlatformObjective),
				predictBank.Model(fingerprint.YouTube, tc.tr, pipeline.DeviceObjective),
				predictBank.Model(fingerprint.YouTube, tc.tr, pipeline.AgentObjective),
			}
			var rows []float64
			stride := 0
			g := tracegen.New(77)
			labels := fingerprint.AllPlatformLabels()
			for i := 0; len(rows)/max(stride, 1) < batch; i++ {
				label := labels[i%len(labels)]
				if !fingerprint.SupportMatrix(label, fingerprint.YouTube) {
					continue
				}
				if tc.tr == fingerprint.TCP && !fingerprint.SupportsTCP(label, fingerprint.YouTube) {
					continue
				}
				if tc.tr == fingerprint.QUIC && !fingerprint.SupportsQUIC(label, fingerprint.YouTube) {
					continue
				}
				bft, err := g.Flow(label, fingerprint.YouTube, tc.tr, tracegen.FlowSpec{Start: start, PayloadFrames: 1})
				if err != nil {
					b.Fatal(err)
				}
				binfo, err := pipeline.ExtractTrace(bft)
				if err != nil {
					b.Fatal(err)
				}
				vec := models[0].Encoder.Transform(features.Extract(binfo))
				stride = len(vec)
				rows = append(rows, vec...)
			}
			var proba []float64

			b.Run("pointer-walk", func(b *testing.B) {
				models[0].Forest.PredictInto(rows[:stride], &proba)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for r := 0; r < batch; r++ {
						row := rows[r*stride : (r+1)*stride]
						for _, m := range models {
							m.Forest.PredictInto(row, &proba)
						}
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/flow")
			})
			b.Run("compiled", func(b *testing.B) {
				for _, m := range models {
					if m.CompiledForest() == nil {
						b.Fatal("forest did not compile")
					}
				}
				models[0].CompiledForest().PredictInto(rows[:stride], &proba)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for r := 0; r < batch; r++ {
						row := rows[r*stride : (r+1)*stride]
						for _, m := range models {
							m.CompiledForest().PredictInto(row, &proba)
						}
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/flow")
			})
			b.Run("batch", func(b *testing.B) {
				var outs [3][]float64
				for oi, m := range models {
					cf := m.CompiledForest()
					if cf == nil {
						b.Fatal("forest did not compile")
					}
					outs[oi] = cf.PredictBatchInto(rows, stride, nil)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for oi, m := range models {
						outs[oi] = m.CompiledForest().PredictBatchInto(rows, stride, outs[oi])
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/flow")
			})
		})
	}
}

// BenchmarkConcurrentFlows models the paper's 1000-concurrent-flow load:
// interleaved handshakes across many simultaneous flows.
func BenchmarkConcurrentFlows(b *testing.B) {
	bank := trainedBank(b)
	g := tracegen.New(11)
	const concurrent = 200
	var flows []*tracegen.FlowTrace
	start := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	for i := 0; i < concurrent; i++ {
		ft, err := g.Flow("windows_chrome", fingerprint.Netflix, fingerprint.TCP,
			tracegen.FlowSpec{Start: start, PayloadFrames: 1})
		if err != nil {
			b.Fatal(err)
		}
		flows = append(flows, ft)
	}
	// Interleave: packet j of every flow, then packet j+1...
	var schedule [][]byte
	for j := 0; ; j++ {
		any := false
		for _, ft := range flows {
			if j < len(ft.Frames) {
				schedule = append(schedule, ft.Frames[j].Data)
				any = true
			}
		}
		if !any {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := videoplat.NewPipeline(bank)
		for _, data := range schedule {
			if _, err := p.HandlePacket(start, data); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(concurrent, "concurrent-flows")
}

// BenchmarkShardedThroughput measures the multi-core fan-out pipeline on
// the same mixed workload as BenchmarkPipelineThroughput.
func BenchmarkShardedThroughput(b *testing.B) {
	bank := trainedBank(b)
	g := tracegen.New(321)
	var frames []tracegen.Frame
	var total int64
	start := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		label := fingerprint.AllPlatformLabels()[i%17]
		prov := fingerprint.AllProviders()[i%4]
		if !fingerprint.SupportMatrix(label, prov) {
			prov = fingerprint.YouTube
		}
		if !fingerprint.SupportMatrix(label, prov) {
			continue
		}
		tr := fingerprint.TCP
		if !fingerprint.SupportsTCP(label, prov) {
			tr = fingerprint.QUIC
		}
		ft, err := g.Flow(label, prov, tr, tracegen.FlowSpec{Start: start, PayloadFrames: 8})
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, ft.Frames...)
		for _, fr := range ft.Frames {
			total += int64(len(fr.Data))
		}
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := pipeline.NewSharded(bank, 4)
		go func() {
			for range s.Results() {
			}
		}()
		for _, fr := range frames {
			s.HandlePacket(start, fr.Data)
		}
		s.Close()
	}
}

// BenchmarkShardedPacketRate sweeps shard counts on a fixed mixed workload
// and reports packets/sec — the scaling baseline future PRs (wider sharding,
// live capture) are measured against. One pipeline serves the whole
// sub-benchmark and the workload is replayed through it: the untimed first
// pass classifies every flow, so timed passes measure the steady-state hot
// path — established-flow packets at line rate, which is what a sustained
// 20 Gbps tap overwhelmingly carries. The /batch variants drive the same
// workload through the parse-once batched ingest path (HandlePacketBatch,
// 64 frames per batch) so the batched-vs-single pps gap is tracked per
// shard count; the /bounded variants run with production flow-table limits
// to show the eviction machinery's overhead.
func BenchmarkShardedPacketRate(b *testing.B) {
	bank := trainedBank(b)
	g := tracegen.New(653)
	var frames []tracegen.Frame
	start := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	labels := fingerprint.AllPlatformLabels()
	for i := 0; i < 50; i++ {
		label := labels[i%len(labels)]
		prov := fingerprint.AllProviders()[i%4]
		if !fingerprint.SupportMatrix(label, prov) {
			prov = fingerprint.YouTube
		}
		if !fingerprint.SupportMatrix(label, prov) {
			continue
		}
		tr := fingerprint.TCP
		if !fingerprint.SupportsTCP(label, prov) {
			tr = fingerprint.QUIC
		}
		ft, err := g.Flow(label, prov, tr, tracegen.FlowSpec{Start: start, PayloadFrames: 8})
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, ft.Frames...)
	}

	// batchSize 0 = per-packet ingest; otherwise the batched parse-once
	// path (one decode per frame, one channel send per shard per batch).
	run := func(b *testing.B, shards, batchSize int, cfg pipeline.Config) {
		var batches [][]pipeline.IngestPacket
		if batchSize > 0 {
			pkts := make([]pipeline.IngestPacket, len(frames))
			for i, fr := range frames {
				pkts[i] = pipeline.IngestPacket{TS: start, Data: fr.Data}
			}
			for off := 0; off < len(pkts); off += batchSize {
				batches = append(batches, pkts[off:min(off+batchSize, len(pkts))])
			}
		}
		s := pipeline.NewShardedWithConfig(bank, shards, cfg)
		go func() {
			for range s.Results() {
			}
		}()
		feed := func() {
			if batchSize > 0 {
				for _, batch := range batches {
					s.HandlePacketBatch(batch)
				}
			} else {
				for _, fr := range frames {
					s.HandlePacket(start, fr.Data)
				}
			}
		}
		feed() // untimed: classify the flows, warm the pools
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			feed()
		}
		b.StopTimer()
		s.Close()
		b.ReportMetric(float64(b.N*len(frames))/b.Elapsed().Seconds(), "pkts/s")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			run(b, shards, 0, pipeline.Config{})
		})
		b.Run(fmt.Sprintf("shards=%d/batch", shards), func(b *testing.B) {
			run(b, shards, 64, pipeline.Config{})
		})
		b.Run(fmt.Sprintf("shards=%d/bounded", shards), func(b *testing.B) {
			run(b, shards, 0, pipeline.Config{MaxFlows: 1024, IdleTimeout: 90 * time.Second})
		})
		b.Run(fmt.Sprintf("shards=%d/bounded/batch", shards), func(b *testing.B) {
			run(b, shards, 64, pipeline.Config{MaxFlows: 1024, IdleTimeout: 90 * time.Second})
		})
	}
}

// BenchmarkSwapUnderLoad measures classification throughput while the bank
// is being hot-swapped continuously, against the steady-state baseline —
// quantifying the cost of the registry's zero-downtime swap path (an atomic
// pointer load per packet; a swap storm should not dent packet rate).
func BenchmarkSwapUnderLoad(b *testing.B) {
	bankA := trainedBank(b)
	dsB, err := videoplat.GenerateLabDataset(2, 0.04)
	if err != nil {
		b.Fatal(err)
	}
	bankB, err := videoplat.Train(dsB, videoplat.ForestConfig{NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}

	g := tracegen.New(653)
	var frames []tracegen.Frame
	start := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	labels := fingerprint.AllPlatformLabels()
	for i := 0; i < 50; i++ {
		label := labels[i%len(labels)]
		prov := fingerprint.AllProviders()[i%4]
		if !fingerprint.SupportMatrix(label, prov) {
			prov = fingerprint.YouTube
		}
		if !fingerprint.SupportMatrix(label, prov) {
			continue
		}
		tr := fingerprint.TCP
		if !fingerprint.SupportsTCP(label, prov) {
			tr = fingerprint.QUIC
		}
		ft, err := g.Flow(label, prov, tr, tracegen.FlowSpec{Start: start, PayloadFrames: 8})
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, ft.Frames...)
	}

	run := func(b *testing.B, swapping bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := pipeline.NewSharded(bankA, 4)
			go func() {
				for range s.Results() {
				}
			}()
			stop := make(chan struct{})
			done := make(chan struct{})
			if swapping {
				go func() {
					defer close(done)
					banks := [2]*videoplat.Bank{bankA, bankB}
					for j := 0; ; j++ {
						select {
						case <-stop:
							return
						default:
						}
						s.SwapBank(banks[j%2])
					}
				}()
			} else {
				close(done)
			}
			for _, fr := range frames {
				s.HandlePacket(start, fr.Data)
			}
			close(stop)
			<-done
			s.Close()
		}
		b.ReportMetric(float64(b.N*len(frames))/b.Elapsed().Seconds(), "pkts/s")
	}
	b.Run("steady", func(b *testing.B) { run(b, false) })
	b.Run("swap-storm", func(b *testing.B) { run(b, true) })
}
