module videoplat

go 1.24
