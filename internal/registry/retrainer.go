package registry

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"videoplat/internal/drift"
	"videoplat/internal/features"
	"videoplat/internal/obs"
	"videoplat/internal/pipeline"
)

// TrainFunc produces a replacement bank — in production, train on freshly
// collected ground truth from the drifted fleet; in the synthetic
// reproduction, regenerate a lab dataset (optionally with the open-set
// profile perturbation) and fit a new forest. It runs on the retrainer's
// background goroutine, never on the serving path. reason is the drift
// verdict that triggered it; seed varies per attempt so repeated retrains
// explore different draws.
type TrainFunc func(reason string, seed uint64) (*pipeline.Bank, error)

// RetrainerConfig tunes the drift → retrain → shadow → promote loop.
type RetrainerConfig struct {
	// Train builds candidate banks. Required.
	Train TrainFunc
	// Gate is the shadow-evaluation promotion bar.
	Gate Gate
	// Seed is the base RNG seed; attempt i trains with Seed+i.
	Seed uint64
	// Cooldown is the minimum wall-clock gap between training attempts
	// (default 1 minute), so a flapping drift signal cannot melt the CPU.
	Cooldown time.Duration
	// Events, if non-nil, receives the retrain lifecycle as typed ops
	// events: shadow_start when a candidate enters evaluation,
	// shadow_verdict when it resolves, drift_rearm after a rejection, and
	// retrain_error on training failures.
	Events *obs.Journal
}

// shadowEval pairs a running Shadow with the candidate version under test.
type shadowEval struct {
	sh *Shadow
	id string
}

// triggerReq is a timestamped retrain request; requests raised before the
// most recent swap are stale (they described the bank that was just
// replaced) and are dropped.
type triggerReq struct {
	reason string
	at     time.Time
}

// Retrainer closes the paper's §5.3 loop: a drift.Monitor flags a decaying
// classifier (BindMonitor), a candidate bank is trained off the hot path,
// stored in the registry, shadow-evaluated on live traffic, and promoted —
// hot-swapping every subscriber via Registry.OnSwap — only when it clears
// the gate. Rejected candidates are recorded and the monitor re-armed so
// persistent drift triggers another attempt with a fresh seed.
type Retrainer struct {
	reg *Registry
	cfg RetrainerConfig
	mon *drift.Monitor // optional; set by BindMonitor

	shadow  atomic.Pointer[shadowEval]
	trigger chan triggerReq

	retrains   atomic.Uint64
	promotions atomic.Uint64
	rejections atomic.Uint64

	// shadowAgreed/shadowDisagreed accumulate the agreement tallies of
	// resolved shadow evaluations; ShadowCounts adds the live one on top.
	shadowAgreed    atomic.Uint64
	shadowDisagreed atomic.Uint64

	mu          sync.Mutex
	lastAttempt time.Time
	lastSwap    time.Time
	lastErr     error
}

// NewRetrainer returns a Retrainer over a registry with at least one
// promoted version (the shadow needs an active bank to compare against).
func NewRetrainer(reg *Registry, cfg RetrainerConfig) (*Retrainer, error) {
	if cfg.Train == nil {
		return nil, fmt.Errorf("registry: RetrainerConfig.Train is required")
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Minute
	}
	cfg.Gate.defaults()
	rt := &Retrainer{reg: reg, cfg: cfg, trigger: make(chan triggerReq, 1)}
	reg.OnSwap(func(*Version) {
		rt.mu.Lock()
		rt.lastSwap = time.Now()
		rt.mu.Unlock()
	})
	return rt, nil
}

// BindMonitor subscribes the retrainer to a drift monitor's flag events and
// arranges for the monitor to rebaseline whenever the registry activates a
// new version, so the swapped-in bank is judged against its own reference
// distribution.
func (rt *Retrainer) BindMonitor(mon *drift.Monitor) {
	rt.mon = mon
	mon.Subscribe(func(st drift.Status) {
		rt.Trigger(fmt.Sprintf("drift: %s/%s %s", st.Provider, st.Transport, st.Reason))
	})
	rt.reg.OnSwap(func(*Version) { mon.Rebaseline() })
}

// Trigger requests a retrain (non-blocking; duplicate requests while one is
// pending or a shadow is running are coalesced/dropped).
func (rt *Retrainer) Trigger(reason string) {
	select {
	case rt.trigger <- triggerReq{reason: reason, at: time.Now()}:
	default:
	}
}

// Start runs the retrain loop until ctx is cancelled. Call from its own
// goroutine (`go rt.Start(ctx)`); training happens here, never on the
// serving path.
func (rt *Retrainer) Start(ctx context.Context) {
	attempt := uint64(0)
	for {
		var req triggerReq
		select {
		case <-ctx.Done():
			return
		case req = <-rt.trigger:
		}
		if rt.shadow.Load() != nil {
			continue // already evaluating a candidate
		}
		rt.mu.Lock()
		stale := !rt.lastSwap.IsZero() && req.at.Before(rt.lastSwap)
		rt.mu.Unlock()
		if stale {
			continue // verdict described the bank that was just replaced
		}
		if !rt.waitCooldown(ctx) {
			return
		}

		seed := rt.cfg.Seed + attempt
		attempt++
		rt.mu.Lock()
		rt.lastAttempt = time.Now()
		rt.mu.Unlock()

		bank, err := rt.cfg.Train(req.reason, seed)
		if err != nil {
			rt.setErr(fmt.Errorf("registry: retraining: %w", err))
			rt.cfg.Events.Record(obs.EventRetrainError, "background retraining failed",
				"reason", req.reason, "error", err.Error())
			continue
		}
		man, err := rt.reg.Add(bank, req.reason, seed)
		if err != nil {
			rt.setErr(err)
			rt.cfg.Events.Record(obs.EventRetrainError, "storing retrained bank failed",
				"reason", req.reason, "error", err.Error())
			continue
		}
		rt.retrains.Add(1)
		rt.shadow.Store(&shadowEval{sh: NewShadow(bank, rt.cfg.Gate), id: man.ID})
		rt.cfg.Events.Record(obs.EventShadowStart, "candidate bank entering shadow evaluation",
			"version", man.ID, "reason", req.reason)
	}
}

// ObserveClassified feeds one live classification to the running shadow
// evaluation, if any — wire it to pipeline Config.OnClassify. When the
// shadow reaches its verdict the candidate is promoted or rejected on a
// separate goroutine, so the serving path never waits on registry disk IO.
// Safe for concurrent use from shard goroutines. The HandshakeInfo is only
// borrowed for the duration of the call (the OnClassify contract).
//
//vp:borrowed hs
func (rt *Retrainer) ObserveClassified(rec *pipeline.FlowRecord, hs *features.HandshakeInfo) {
	se := rt.shadow.Load()
	if se == nil {
		return
	}
	if !se.sh.Observe(rec, hs) {
		return
	}
	// Verdict is ready; exactly one observer claims the resolution.
	if rt.shadow.CompareAndSwap(se, nil) {
		go rt.resolve(se)
	}
}

func (rt *Retrainer) resolve(se *shadowEval) {
	metrics, ok := se.sh.Verdict()
	if !ok {
		return // unreachable: Observe reported readiness
	}
	agreed, disagreed := se.sh.Counts()
	rt.shadowAgreed.Add(agreed)
	rt.shadowDisagreed.Add(disagreed)
	rt.cfg.Events.Record(obs.EventShadowVerdict, metrics.Reason,
		"version", se.id,
		"promoted", fmt.Sprintf("%t", metrics.Promoted),
		"flows", fmt.Sprintf("%d", metrics.Flows))
	if err := rt.reg.SetShadowMetrics(se.id, metrics, metrics.Promoted); err != nil {
		rt.setErr(err)
	}
	if metrics.Promoted {
		if _, err := rt.reg.Promote(se.id); err != nil {
			rt.setErr(err)
			return
		}
		rt.promotions.Add(1)
		return
	}
	rt.rejections.Add(1)
	if rt.mon != nil {
		// The drift is still real; let the monitor flag it again so the
		// next attempt trains with a different seed.
		rt.mon.Rearm()
		rt.cfg.Events.Record(obs.EventDriftRearm, "drift monitor re-armed after rejected candidate",
			"version", se.id)
	}
}

// ShadowCounts reports cumulative shadow agreement/disagreement across every
// shadow evaluation this retrainer ran — resolved ones plus the live one, if
// any. Counts may transiently dip while an evaluation hands off from live to
// resolved; consumers tracking deltas should clamp. Safe from any goroutine.
func (rt *Retrainer) ShadowCounts() (agreed, disagreed uint64) {
	agreed, disagreed = rt.shadowAgreed.Load(), rt.shadowDisagreed.Load()
	if se := rt.shadow.Load(); se != nil {
		a, d := se.sh.Counts()
		agreed += a
		disagreed += d
	}
	return agreed, disagreed
}

func (rt *Retrainer) waitCooldown(ctx context.Context) bool {
	rt.mu.Lock()
	wait := rt.cfg.Cooldown - time.Since(rt.lastAttempt)
	last := rt.lastAttempt
	rt.mu.Unlock()
	if last.IsZero() || wait <= 0 {
		return true
	}
	select {
	case <-ctx.Done():
		return false
	case <-time.After(wait):
		return true
	}
}

func (rt *Retrainer) setErr(err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.lastErr = err
}

// Status is the retrainer's live state for the operations API.
type Status struct {
	Retrains     uint64 `json:"retrains"`
	Promotions   uint64 `json:"promotions"`
	Rejections   uint64 `json:"rejections"`
	ShadowActive bool   `json:"shadow_active"`
	// ShadowCandidate is the version id under shadow evaluation, if any.
	ShadowCandidate string `json:"shadow_candidate,omitempty"`
	ShadowFlows     int    `json:"shadow_flows,omitempty"`
	LastError       string `json:"last_error,omitempty"`
}

// Status reports the retrainer's counters and any running shadow
// evaluation. Safe from any goroutine.
func (rt *Retrainer) Status() Status {
	st := Status{
		Retrains:   rt.retrains.Load(),
		Promotions: rt.promotions.Load(),
		Rejections: rt.rejections.Load(),
	}
	if se := rt.shadow.Load(); se != nil {
		st.ShadowActive = true
		st.ShadowCandidate = se.id
		m, _ := se.sh.Verdict()
		st.ShadowFlows = m.Flows
	}
	rt.mu.Lock()
	if rt.lastErr != nil {
		st.LastError = rt.lastErr.Error()
	}
	rt.mu.Unlock()
	return st
}
