package registry

import (
	"fmt"
	"sync"

	"videoplat/internal/features"
	"videoplat/internal/pipeline"
)

// Gate is the promotion bar a candidate bank must clear in shadow
// evaluation before it may replace the active bank. Zero values select the
// defaults noted per field.
type Gate struct {
	// SampleRate is the fraction of classified live flows that are also
	// classified by the candidate (default 0.25). Sampling is deterministic
	// (every round(1/rate)-th flow), so shadow cost is bounded and runs are
	// reproducible.
	SampleRate float64
	// MinFlows is how many shadow classifications are required before a
	// verdict (default 200).
	MinFlows int
	// MinAgreement is the minimum fraction of flows, among those where both
	// banks predicted a composite platform, on which the candidate must
	// agree with the active bank (default 0.5). A candidate that
	// confidently contradicts the incumbent everywhere is suspect even if
	// its own confidence is high. Skipped when no flow had both banks
	// confident. An exact 0 selects the default; negative disables the
	// check.
	MinAgreement float64
	// ConfidenceSlack is how far the candidate's mean platform confidence
	// may sit below the active bank's and still pass (default 0.02). An
	// exact 0 selects the default; negative demands the candidate strictly
	// beat the active bank.
	ConfidenceSlack float64
	// UnknownSlack is how far the candidate's unknown-rate may exceed the
	// active bank's and still pass (default 0.05). An exact 0 selects the
	// default; negative demands strict improvement.
	UnknownSlack float64
}

func (g *Gate) defaults() {
	if g.SampleRate <= 0 || g.SampleRate > 1 {
		g.SampleRate = 0.25
	}
	if g.MinFlows <= 0 {
		g.MinFlows = 200
	}
	if g.MinAgreement == 0 {
		g.MinAgreement = 0.5
	}
	if g.ConfidenceSlack == 0 {
		g.ConfidenceSlack = 0.02
	}
	if g.UnknownSlack == 0 {
		g.UnknownSlack = 0.05
	}
}

// ShadowMetrics summarizes one shadow evaluation — stored in the
// candidate's manifest whether it was promoted or rejected.
type ShadowMetrics struct {
	Flows                int     `json:"flows"`
	CandidateMeanConf    float64 `json:"candidate_mean_conf"`
	ActiveMeanConf       float64 `json:"active_mean_conf"`
	CandidateUnknownRate float64 `json:"candidate_unknown_rate"`
	ActiveUnknownRate    float64 `json:"active_unknown_rate"`
	// Agreement is measured over AgreementFlows: the sampled flows where
	// both banks predicted a composite platform.
	Agreement      float64 `json:"agreement"`
	AgreementFlows int     `json:"agreement_flows"`
	Promoted       bool    `json:"promoted"`
	Reason         string  `json:"reason"`
}

// Shadow runs a candidate bank alongside the active one on a sample of live
// flows. Feed it from the pipeline's OnClassify hook; once MinFlows samples
// accumulate, Verdict reports whether the candidate clears the Gate. Safe
// for concurrent use from shard goroutines.
type Shadow struct {
	gate      Gate
	candidate *pipeline.Bank

	mu          sync.Mutex
	seen        uint64 // classified flows offered (sampled or not)
	every       uint64
	flows       int
	candConfSum float64
	actConfSum  float64
	candUnknown int
	actUnknown  int
	bothComp    int
	agree       int
}

// NewShadow starts a shadow evaluation of candidate under gate.
func NewShadow(candidate *pipeline.Bank, gate Gate) *Shadow {
	gate.defaults()
	every := uint64(1.0/gate.SampleRate + 0.5)
	if every < 1 {
		every = 1
	}
	return &Shadow{gate: gate, candidate: candidate, every: every}
}

// Candidate returns the bank under evaluation.
func (sh *Shadow) Candidate() *pipeline.Bank { return sh.candidate }

// Observe offers one live classification (the active bank's record plus the
// assembled handshake) to the sampler. When the flow is sampled, the
// candidate classifies the same handshake and the outcomes are accumulated.
// The HandshakeInfo is only borrowed for the duration of the call, matching
// the pipeline's OnClassify contract. Returns true once enough samples
// exist for a verdict.
//
//vp:borrowed hs
func (sh *Shadow) Observe(rec *pipeline.FlowRecord, hs *features.HandshakeInfo) bool {
	sh.mu.Lock()
	sh.seen++
	if sh.seen%sh.every != 0 {
		ready := sh.flows >= sh.gate.MinFlows
		sh.mu.Unlock()
		return ready
	}
	sh.mu.Unlock()

	// Classify outside the lock: forest prediction is read-only and this
	// runs on the serving path's shard goroutines. The nil scratch keeps
	// Shadow concurrency-safe; sampling bounds the allocation cost.
	pred, err := sh.candidate.ClassifyHandshake(rec.Provider, rec.Transport, hs, nil)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.flows++
	if err != nil {
		// The candidate cannot classify a (provider, transport) the active
		// bank handles: count it as a zero-confidence unknown for the
		// candidate while still crediting the active bank's outcome —
		// otherwise a deficient candidate would deflate ActiveMeanConf
		// (the divisor counts all sampled flows) and weaken its own gate.
		sh.candUnknown++
		sh.actConfSum += rec.Prediction.PlatformConf
		if rec.Prediction.Status == pipeline.Unknown {
			sh.actUnknown++
		}
		return sh.flows >= sh.gate.MinFlows
	}
	sh.candConfSum += pred.PlatformConf
	sh.actConfSum += rec.Prediction.PlatformConf
	if pred.Status == pipeline.Unknown {
		sh.candUnknown++
	}
	if rec.Prediction.Status == pipeline.Unknown {
		sh.actUnknown++
	}
	if pred.Status == pipeline.Composite && rec.Prediction.Status == pipeline.Composite {
		sh.bothComp++
		if pred.Platform == rec.Prediction.Platform {
			sh.agree++
		}
	}
	return sh.flows >= sh.gate.MinFlows
}

// Counts reports the agreement tallies so far: among sampled flows where
// both banks predicted a composite platform, how many agreed on the platform
// and how many did not. Safe for concurrent use; telemetry stamps these into
// sealed windows as shadow agreement/disagreement.
func (sh *Shadow) Counts() (agreed, disagreed uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return uint64(sh.agree), uint64(sh.bothComp - sh.agree)
}

// Verdict reports whether the candidate clears the gate. ok is false until
// MinFlows samples have accumulated.
func (sh *Shadow) Verdict() (m ShadowMetrics, ok bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m = sh.metricsLocked()
	if sh.flows < sh.gate.MinFlows {
		return m, false
	}
	switch {
	case m.CandidateMeanConf < m.ActiveMeanConf-sh.gate.ConfidenceSlack:
		m.Reason = fmt.Sprintf("candidate mean confidence %.2f below active %.2f (slack %.2f)",
			m.CandidateMeanConf, m.ActiveMeanConf, sh.gate.ConfidenceSlack)
	case m.CandidateUnknownRate > m.ActiveUnknownRate+sh.gate.UnknownSlack:
		m.Reason = fmt.Sprintf("candidate unknown rate %.2f exceeds active %.2f (slack %.2f)",
			m.CandidateUnknownRate, m.ActiveUnknownRate, sh.gate.UnknownSlack)
	case m.AgreementFlows > 0 && m.Agreement < sh.gate.MinAgreement:
		m.Reason = fmt.Sprintf("agreement %.2f below %.2f over %d confident flows",
			m.Agreement, sh.gate.MinAgreement, m.AgreementFlows)
	default:
		m.Promoted = true
		m.Reason = fmt.Sprintf("cleared gate: confidence %.2f vs %.2f, unknown %.2f vs %.2f, agreement %.2f",
			m.CandidateMeanConf, m.ActiveMeanConf,
			m.CandidateUnknownRate, m.ActiveUnknownRate, m.Agreement)
	}
	return m, true
}

func (sh *Shadow) metricsLocked() ShadowMetrics {
	m := ShadowMetrics{Flows: sh.flows, AgreementFlows: sh.bothComp}
	if sh.flows > 0 {
		n := float64(sh.flows)
		m.CandidateMeanConf = sh.candConfSum / n
		m.ActiveMeanConf = sh.actConfSum / n
		m.CandidateUnknownRate = float64(sh.candUnknown) / n
		m.ActiveUnknownRate = float64(sh.actUnknown) / n
	}
	if sh.bothComp > 0 {
		m.Agreement = float64(sh.agree) / float64(sh.bothComp)
	}
	return m
}
