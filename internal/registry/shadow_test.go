package registry

import (
	"testing"

	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/tracegen"
)

func TestShadowGateRejectsBadCandidate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains banks")
	}
	active := trainBank(t, 1, ml.ForestConfig{})
	// Deliberately bad candidate: depth-1 stumps scatter their votes, so
	// platform confidence collapses.
	bad := trainBank(t, 2, ml.ForestConfig{NumTrees: 12, MaxDepth: 1, MaxFeatures: 34, Seed: 2})

	live, err := tracegen.New(5).LabDataset(0.03, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs, vals := classifyAll(t, active, live)
	if len(recs) < 60 {
		t.Fatalf("only %d live flows", len(recs))
	}

	sh := NewShadow(bad, Gate{SampleRate: 1, MinFlows: 50})
	for i := range recs {
		sh.Observe(recs[i], vals[i])
	}
	m, ok := sh.Verdict()
	if !ok {
		t.Fatalf("verdict not ready after %d flows", len(recs))
	}
	if m.Promoted {
		t.Fatalf("bad candidate cleared the gate: %+v", m)
	}
	if m.CandidateMeanConf >= m.ActiveMeanConf {
		t.Errorf("test premise broken: bad candidate conf %.2f >= active %.2f",
			m.CandidateMeanConf, m.ActiveMeanConf)
	}
}

func TestShadowGateAcceptsEquivalentCandidate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains banks")
	}
	active := trainBank(t, 1, ml.ForestConfig{})
	// A retrain of the same quality on fresh data should pass.
	cand := trainBank(t, 7, ml.ForestConfig{})

	live, err := tracegen.New(5).LabDataset(0.03, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs, vals := classifyAll(t, active, live)

	sh := NewShadow(cand, Gate{SampleRate: 1, MinFlows: 50})
	ready := false
	for i := range recs {
		ready = sh.Observe(recs[i], vals[i])
	}
	if !ready {
		t.Fatalf("shadow not ready after %d flows", len(recs))
	}
	m, ok := sh.Verdict()
	if !ok || !m.Promoted {
		t.Fatalf("equivalent candidate rejected: %+v", m)
	}
	if m.AgreementFlows == 0 {
		t.Error("no flows had both banks confident; agreement gate untested")
	}
}

func TestShadowSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("trains banks")
	}
	active := trainBank(t, 1, ml.ForestConfig{})
	cand := trainBank(t, 7, ml.ForestConfig{})
	live, err := tracegen.New(5).LabDataset(0.03, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs, vals := classifyAll(t, active, live)

	sh := NewShadow(cand, Gate{SampleRate: 0.25, MinFlows: 10})
	for i := range recs {
		sh.Observe(recs[i], vals[i])
	}
	m, _ := sh.Verdict()
	want := len(recs) / 4
	if m.Flows != want {
		t.Errorf("sampled %d of %d flows, want %d", m.Flows, len(recs), want)
	}
}
