// Package registry is the model lifecycle subsystem the paper's
// continuous-deployment story (§4.3.3, §5.3) implies: detect drift →
// retrain → redeploy, under live traffic. It closes the loop that
// internal/drift only opens.
//
// A Registry is a disk-backed, versioned store of serialized classifier
// banks. Every stored bank gets a manifest (version id, training config,
// seed, creation time, evaluation metrics) and the active version sits
// behind an atomic pointer, so the serving path reads Current() lock-free
// and a Promote or Rollback is a zero-downtime hot-swap: classification in
// flight completes against the bank it loaded, the next flow sees the new
// one.
//
// A Shadow evaluates a candidate bank against the active one on a sampled
// stream of live flows, and a Retrainer ties the pieces together: a
// drift.Monitor flags a decaying classifier, a replacement bank is trained
// off the hot path, shadow-evaluated, and promoted only when it clears the
// gate.
package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"videoplat/internal/ml"
	"videoplat/internal/pipeline"
)

// Manifest states. A version is a candidate until promoted; promotion
// retires the previously active version; a candidate that fails its shadow
// evaluation is rejected (kept on disk for post-mortem, never auto-promoted
// again).
const (
	StateCandidate = "candidate"
	StateActive    = "active"
	StateRetired   = "retired"
	StateRejected  = "rejected"
)

// Manifest describes one stored bank version.
type Manifest struct {
	ID        string          `json:"id"`
	CreatedAt time.Time       `json:"created_at"`
	Seed      uint64          `json:"seed"`
	Forest    ml.ForestConfig `json:"forest"`
	// Reason records why the version exists ("initial", "operator import",
	// "drift: youtube/QUIC median confidence dropped ...").
	Reason string `json:"reason"`
	State  string `json:"state"`
	// Shadow holds the shadow-evaluation metrics that admitted (or
	// rejected) the version, when it went through the gate.
	Shadow *ShadowMetrics `json:"shadow,omitempty"`
}

// Version pairs a loaded bank with its manifest — what Current() serves.
type Version struct {
	Manifest Manifest
	Bank     *pipeline.Bank
}

// Config tunes a Registry.
type Config struct {
	// Dir is the on-disk store. Created if missing.
	Dir string
	// Keep bounds how many non-active versions are retained on disk; the
	// oldest are pruned after each Add. 0 keeps everything.
	Keep int
}

// Registry is a versioned bank store with an atomically swappable active
// version. Safe for concurrent use; Current is lock-free.
type Registry struct {
	cfg Config
	cur atomic.Pointer[Version]

	// swapMu serializes whole activations (state change + OnSwap fan-out):
	// without it two concurrent Promotes could run their subscriber
	// callbacks out of order, leaving serving pipelines on a bank that is
	// not the registry's active version. Held around mu, never inside it.
	swapMu sync.Mutex

	mu        sync.Mutex
	manifests map[string]*Manifest
	history   []string // promotion order, last entry = active
	onSwap    []func(*Version)
}

// New opens (or initializes) a registry at cfg.Dir, loading manifests and
// the active bank recorded by a previous run.
func New(cfg Config) (*Registry, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("registry: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating %s: %w", cfg.Dir, err)
	}
	r := &Registry{cfg: cfg, manifests: map[string]*Manifest{}}

	ents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("registry: reading %s: %w", cfg.Dir, err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(cfg.Dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("registry: reading manifest %s: %w", e.Name(), err)
		}
		var m Manifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return nil, fmt.Errorf("registry: manifest %s: %w", e.Name(), err)
		}
		r.manifests[m.ID] = &m
	}

	if err := r.loadHistory(); err != nil {
		return nil, err
	}
	if active := r.activeIDLocked(); active != "" {
		bank, err := r.loadBank(active)
		if err != nil {
			return nil, fmt.Errorf("registry: loading active version %s: %w", active, err)
		}
		r.cur.Store(&Version{Manifest: *r.manifests[active], Bank: bank})
	}
	return r, nil
}

// Dir returns the registry's on-disk store.
func (r *Registry) Dir() string { return r.cfg.Dir }

// Current returns the active version, or nil if none has been promoted.
// Lock-free: safe to call per packet.
func (r *Registry) Current() *Version { return r.cur.Load() }

// OnSwap registers fn to run after every activation (Promote or Rollback)
// with the newly active version — how a serving pipeline hot-swaps its bank
// and a drift monitor rebaselines. Callbacks run synchronously from the
// promoting goroutine, in registration order.
func (r *Registry) OnSwap(fn func(*Version)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onSwap = append(r.onSwap, fn)
}

// Add stores a bank as a new candidate version and returns its manifest.
// The bank's Version field is stamped with the assigned id, so serialized
// copies and every flow it later classifies carry the identity. Because of
// that write, do not Add a bank that is concurrently serving
// classifications — register first, then serve (a serving pipeline reads
// Version per flow). Add does not activate the version; see Promote.
func (r *Registry) Add(bank *pipeline.Bank, reason string, seed uint64) (Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	id := fmt.Sprintf("v%04d", r.nextOrdinalLocked())
	bank.Version = id
	blob, err := bank.MarshalBinary()
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: serializing %s: %w", id, err)
	}
	m := &Manifest{
		ID:        id,
		CreatedAt: time.Now().UTC(),
		Seed:      seed,
		Forest:    bank.Config,
		Reason:    reason,
		State:     StateCandidate,
	}
	if err := writeFileAtomic(r.bankPath(id), blob); err != nil {
		return Manifest{}, err
	}
	if err := r.writeManifestLocked(m); err != nil {
		return Manifest{}, err
	}
	r.manifests[id] = m
	r.pruneLocked()
	return *m, nil
}

// Promote activates a stored version: the bank is loaded from disk, the
// active pointer swaps, the previous active version is retired, and OnSwap
// subscribers run. The swap itself is a single atomic store — readers
// never block — and activations (including their subscriber fan-out) are
// serialized, so subscribers always observe promotions in activation
// order.
func (r *Registry) Promote(id string) (*Version, error) {
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	r.mu.Lock()
	m, ok := r.manifests[id]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: unknown version %q", id)
	}
	cur := r.cur.Load()
	if cur != nil && cur.Manifest.ID == id {
		r.mu.Unlock()
		return cur, nil // already active
	}
	bank, err := r.loadBank(id)
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	v, err := r.activateLocked(m, bank)
	subs := append([]func(*Version){}, r.onSwap...)
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	for _, fn := range subs {
		fn(v)
	}
	return v, nil
}

// Rollback re-activates the version that was active before the current one
// — the operator's escape hatch when a promotion turns out bad in
// production. It walks promotion history past consecutive duplicates, so
// repeated rollbacks alternate no further back than the previous distinct
// version.
func (r *Registry) Rollback() (*Version, error) {
	r.mu.Lock()
	var prev string
	cur := r.activeIDLocked()
	for i := len(r.history) - 2; i >= 0; i-- {
		if r.history[i] != cur {
			prev = r.history[i]
			break
		}
	}
	r.mu.Unlock()
	if prev == "" {
		return nil, fmt.Errorf("registry: no previous version to roll back to")
	}
	return r.Promote(prev)
}

// List returns every stored manifest, sorted by version id.
func (r *Registry) List() []Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Manifest, 0, len(r.manifests))
	for _, m := range r.manifests {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// History returns the promotion order, oldest first; the last entry is the
// active version.
func (r *Registry) History() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string{}, r.history...)
}

// Load reads a stored version's bank from disk.
func (r *Registry) Load(id string) (*pipeline.Bank, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.manifests[id]; !ok {
		return nil, fmt.Errorf("registry: unknown version %q", id)
	}
	return r.loadBank(id)
}

// SetShadowMetrics records a candidate's shadow-evaluation outcome in its
// manifest; rejected candidates flip to StateRejected.
func (r *Registry) SetShadowMetrics(id string, metrics ShadowMetrics, promoted bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.manifests[id]
	if !ok {
		return fmt.Errorf("registry: unknown version %q", id)
	}
	m.Shadow = &metrics
	if !promoted && m.State == StateCandidate {
		m.State = StateRejected
	}
	return r.writeManifestLocked(m)
}

// activateLocked swaps the active pointer to (m, bank), persists the
// promotion, and returns the new Version. Callers hold mu.
func (r *Registry) activateLocked(m *Manifest, bank *pipeline.Bank) (*Version, error) {
	if prev := r.cur.Load(); prev != nil && prev.Manifest.ID != m.ID {
		if pm, ok := r.manifests[prev.Manifest.ID]; ok && pm.State == StateActive {
			pm.State = StateRetired
			if err := r.writeManifestLocked(pm); err != nil {
				return nil, err
			}
		}
	}
	m.State = StateActive
	if err := r.writeManifestLocked(m); err != nil {
		return nil, err
	}
	r.history = append(r.history, m.ID)
	if err := r.writeHistoryLocked(); err != nil {
		return nil, err
	}
	v := &Version{Manifest: *m, Bank: bank}
	r.cur.Store(v)
	return v, nil
}

func (r *Registry) bankPath(id string) string {
	return filepath.Join(r.cfg.Dir, id+".bank")
}

func (r *Registry) manifestPath(id string) string {
	return filepath.Join(r.cfg.Dir, id+".json")
}

func (r *Registry) loadBank(id string) (*pipeline.Bank, error) {
	blob, err := os.ReadFile(r.bankPath(id))
	if err != nil {
		return nil, fmt.Errorf("registry: reading bank %s: %w", id, err)
	}
	bank := &pipeline.Bank{}
	if err := bank.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("registry: bank %s: %w", id, err)
	}
	bank.Version = id // trust the store over the blob (operator imports)
	return bank, nil
}

func (r *Registry) writeManifestLocked(m *Manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: encoding manifest %s: %w", m.ID, err)
	}
	return writeFileAtomic(r.manifestPath(m.ID), append(blob, '\n'))
}

// historyPath holds the promotion log, one version id per line; the last
// line names the active version across restarts.
func (r *Registry) historyPath() string { return filepath.Join(r.cfg.Dir, "HISTORY") }

func (r *Registry) loadHistory() error {
	blob, err := os.ReadFile(r.historyPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("registry: reading history: %w", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(blob)), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if _, ok := r.manifests[line]; !ok {
			continue // pruned version; keep history consistent with the store
		}
		r.history = append(r.history, line)
	}
	return nil
}

func (r *Registry) writeHistoryLocked() error {
	return writeFileAtomic(r.historyPath(), []byte(strings.Join(r.history, "\n")+"\n"))
}

func (r *Registry) activeIDLocked() string {
	if len(r.history) == 0 {
		return ""
	}
	return r.history[len(r.history)-1]
}

// nextOrdinalLocked returns one past the highest stored version ordinal.
func (r *Registry) nextOrdinalLocked() int {
	max := 0
	for id := range r.manifests {
		var n int
		if _, err := fmt.Sscanf(id, "v%d", &n); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

// pruneLocked removes the oldest non-active, non-candidate versions beyond
// cfg.Keep. The active version and un-evaluated candidates are never
// pruned.
func (r *Registry) pruneLocked() {
	if r.cfg.Keep <= 0 {
		return
	}
	active := r.activeIDLocked()
	var prunable []string
	for id, m := range r.manifests {
		if id == active || m.State == StateCandidate || m.State == StateActive {
			continue
		}
		prunable = append(prunable, id)
	}
	sort.Strings(prunable)
	removed := map[string]bool{}
	for len(prunable) > r.cfg.Keep {
		id := prunable[0]
		prunable = prunable[1:]
		os.Remove(r.bankPath(id))
		os.Remove(r.manifestPath(id))
		delete(r.manifests, id)
		removed[id] = true
	}
	if len(removed) == 0 {
		return
	}
	// Drop pruned ids from the promotion history so Rollback never resolves
	// to a version whose files are gone.
	kept := r.history[:0]
	for _, id := range r.history {
		if !removed[id] {
			kept = append(kept, id)
		}
	}
	r.history = kept
	r.writeHistoryLocked() // best-effort: pruning is advisory
}

// writeFileAtomic writes via a temp file + rename so a crash mid-write
// never leaves a torn bank or manifest.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("registry: writing %s: %w", path, err)
	}
	return nil
}
