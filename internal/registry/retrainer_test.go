package registry

import (
	"context"

	"testing"
	"time"
	"videoplat/internal/fingerprint"

	"videoplat/internal/drift"
	"videoplat/internal/ml"
	"videoplat/internal/pipeline"
	"videoplat/internal/tracegen"
)

// TestRetrainerClosesTheDriftLoop drives the full §5.3 lifecycle without a
// server: in-distribution traffic establishes the drift baseline, open-set
// (platform-update) traffic degrades confidence, the monitor's subscription
// triggers a retrain, the candidate is shadow-evaluated on the same drifted
// stream, and promotion hot-swaps the active version in the registry.
func TestRetrainerClosesTheDriftLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("trains banks")
	}
	reg, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	initial := trainBank(t, 1, ml.ForestConfig{})
	m0, err := reg.Add(initial, "initial", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Promote(m0.ID); err != nil {
		t.Fatal(err)
	}

	// The "fresh ground truth from the updated fleet": a bank trained on
	// open-set (drifted) profiles, returned by the injected TrainFunc.
	driftedDS, err := tracegen.New(31).OpenSetDataset(6)
	if err != nil {
		t.Fatal(err)
	}
	replacement, err := pipeline.TrainBank(driftedDS, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 12, MaxDepth: 20, MaxFeatures: 34, Seed: 31}})
	if err != nil {
		t.Fatal(err)
	}

	mon := drift.NewMonitor(drift.Config{Window: 40, Baseline: 40, ConfidenceDrop: 0.05})
	trained := make(chan string, 1)
	rt, err := NewRetrainer(reg, RetrainerConfig{
		Train: func(reason string, seed uint64) (*pipeline.Bank, error) {
			select {
			case trained <- reason:
			default:
			}
			return replacement, nil
		},
		Gate:     Gate{SampleRate: 1, MinFlows: 30, MinAgreement: 0.05},
		Cooldown: time.Millisecond,
		Seed:     99,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.BindMonitor(mon)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.Start(ctx)

	closed, err := tracegen.New(22).LabDataset(0.03, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	open, err := tracegen.New(23).OpenSetDataset(6)
	if err != nil {
		t.Fatal(err)
	}

	// feed classifies every flow against whatever bank is currently active
	// — exactly what the serving pipeline does — and wires the monitor and
	// shadow hooks the way internal/server does.
	feed := func(ds *tracegen.Dataset) {
		cur := reg.Current()
		recs, vals := classifyAll(t, cur.Bank, ds)
		for i := range recs {
			mon.Observe(recs[i])
			rt.ObserveClassified(recs[i], vals[i])
		}
	}

	// Phase 1: baseline on in-distribution traffic.
	for i := 0; i < 3; i++ {
		feed(closed)
	}
	if got := reg.Current().Manifest.ID; got != "v0001" {
		t.Fatalf("premature swap to %s", got)
	}

	// Phase 2: the fleet updates. Keep streaming drifted traffic until the
	// loop completes: flag → retrain → shadow → promote.
	deadline := time.After(60 * time.Second)
	for reg.Current().Manifest.ID == "v0001" {
		select {
		case <-deadline:
			t.Fatalf("no promotion; retrainer=%+v drift=%+v registry=%+v",
				rt.Status(), mon.Statuses(), reg.List())
		default:
		}
		feed(open)
	}
	// One full cycle is what this test pins down; stop the loop so the
	// hair-trigger config (1ms cooldown, tiny windows) cannot start a
	// second one while we assert.
	cancel()

	cur := reg.Current()
	if cur.Manifest.ID == "v0001" || cur.Bank.Version != cur.Manifest.ID {
		t.Fatalf("active after loop = %+v", cur.Manifest)
	}
	select {
	case reason := <-trained:
		if reason == "" {
			t.Error("retrain reason empty")
		}
	default:
		t.Error("TrainFunc never invoked")
	}

	// The promotion must be recorded on disk with its shadow metrics.
	activeID := cur.Manifest.ID
	waitFor(t, 5*time.Second, func() bool {
		for _, m := range reg.List() {
			if m.ID == activeID && m.State == StateActive && m.Shadow != nil && m.Shadow.Promoted {
				return true
			}
		}
		return false
	})

	// And the monitor was rebaselined: the new bank on drifted traffic is
	// healthy against its own reference. Feed the monitor only — the
	// retrainer is stopped, and a live shadow must not resolve mid-assert.
	for i := 0; i < 3; i++ {
		recs, _ := classifyAll(t, reg.Current().Bank, open)
		for _, rec := range recs {
			mon.Observe(rec)
		}
	}
	for _, st := range mon.Statuses() {
		if st.Drifting {
			t.Errorf("post-swap classifier judged against old baseline: %+v", st)
		}
	}
	if st := rt.Status(); st.Promotions < 1 || st.LastError != "" {
		t.Errorf("retrainer status = %+v", st)
	}
}

// TestRetrainerRejectionRearmsMonitor: a candidate that fails the gate is
// recorded as rejected and the monitor re-arms so the next flag can fire.
func TestRetrainerRejectionRearmsMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("trains banks")
	}
	reg, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	initial := trainBank(t, 1, ml.ForestConfig{})
	m0, err := reg.Add(initial, "initial", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Promote(m0.ID); err != nil {
		t.Fatal(err)
	}
	bad := trainBank(t, 2, ml.ForestConfig{NumTrees: 12, MaxDepth: 1, MaxFeatures: 34, Seed: 2})

	mon := drift.NewMonitor(drift.Config{Window: 40, Baseline: 40, ConfidenceDrop: 0.05})
	rt, err := NewRetrainer(reg, RetrainerConfig{
		Train:    func(string, uint64) (*pipeline.Bank, error) { return bad, nil },
		Gate:     Gate{SampleRate: 1, MinFlows: 30},
		Cooldown: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.BindMonitor(mon)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.Start(ctx)

	closed, err := tracegen.New(22).LabDataset(0.03, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	open, err := tracegen.New(23).OpenSetDataset(6)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(ds *tracegen.Dataset) {
		recs, vals := classifyAll(t, reg.Current().Bank, ds)
		for i := range recs {
			mon.Observe(recs[i])
			rt.ObserveClassified(recs[i], vals[i])
		}
	}
	for i := 0; i < 3; i++ {
		feed(closed)
	}
	deadline := time.After(60 * time.Second)
	for rt.Status().Rejections == 0 {
		select {
		case <-deadline:
			t.Fatalf("no rejection; retrainer=%+v registry=%+v", rt.Status(), reg.List())
		default:
		}
		feed(open)
	}
	if got := reg.Current().Manifest.ID; got != "v0001" {
		t.Fatalf("bad candidate was promoted: %s", got)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, m := range reg.List() {
			if m.State == StateRejected && m.Shadow != nil && !m.Shadow.Promoted {
				return true
			}
		}
		return false
	})
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
