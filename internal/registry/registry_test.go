package registry

import (
	"os"
	"path/filepath"
	"testing"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/pipeline"
	"videoplat/internal/tracegen"
)

// trainBank fits a small bank on a lab dataset drawn with seed.
func trainBank(t testing.TB, seed uint64, cfg ml.ForestConfig) *pipeline.Bank {
	t.Helper()
	ds, err := tracegen.New(seed).LabDataset(0.03, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumTrees == 0 {
		cfg = ml.ForestConfig{NumTrees: 12, MaxDepth: 20, MaxFeatures: 34, Seed: seed}
	}
	bank, err := pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return bank
}

// classifyAll runs every flow of ds through bank, returning the records and
// extracted features the serving pipeline would hand to OnClassify.
func classifyAll(t testing.TB, bank *pipeline.Bank, ds *tracegen.Dataset) ([]*pipeline.FlowRecord, []*features.HandshakeInfo) {
	t.Helper()
	var recs []*pipeline.FlowRecord
	var infos []*features.HandshakeInfo
	for _, ft := range ds.Flows {
		info, err := pipeline.ExtractTrace(ft)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := bank.ClassifyHandshake(ft.Provider, ft.Transport, info, nil)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, &pipeline.FlowRecord{
			Classified: true, Provider: ft.Provider, Transport: ft.Transport,
			Prediction: pred, ModelVersion: bank.Version,
		})
		infos = append(infos, info)
	}
	return recs, infos
}

func TestPromoteRollbackRoundTripThroughDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("trains banks")
	}
	dir := t.TempDir()
	reg, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Current() != nil {
		t.Fatal("fresh registry has an active version")
	}

	swaps := 0
	reg.OnSwap(func(*Version) { swaps++ })

	bankA := trainBank(t, 1, ml.ForestConfig{})
	mA, err := reg.Add(bankA, "initial", 1)
	if err != nil {
		t.Fatal(err)
	}
	if mA.ID != "v0001" || mA.State != StateCandidate {
		t.Fatalf("first manifest = %+v", mA)
	}
	if bankA.Version != "v0001" {
		t.Errorf("Add did not stamp bank version: %q", bankA.Version)
	}
	if _, err := reg.Promote("v0001"); err != nil {
		t.Fatal(err)
	}

	bankB := trainBank(t, 2, ml.ForestConfig{})
	if _, err := reg.Add(bankB, "drift: test", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Promote("v0002"); err != nil {
		t.Fatal(err)
	}
	if swaps != 2 {
		t.Errorf("swap callbacks = %d, want 2", swaps)
	}
	if cur := reg.Current(); cur.Manifest.ID != "v0002" || cur.Bank.Version != "v0002" {
		t.Fatalf("current = %+v", reg.Current().Manifest)
	}

	// A new process opens the same directory: full state round-trips.
	reg2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cur := reg2.Current()
	if cur == nil || cur.Manifest.ID != "v0002" {
		t.Fatalf("reopened active = %+v", cur)
	}
	// The reloaded bank must actually classify.
	ds, err := tracegen.New(3).LabDataset(0.01, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := classifyAll(t, cur.Bank, ds)
	if len(recs) == 0 {
		t.Fatal("reloaded bank classified nothing")
	}
	list := reg2.List()
	if len(list) != 2 {
		t.Fatalf("list = %+v", list)
	}
	if list[0].State != StateRetired || list[1].State != StateActive {
		t.Errorf("states = %s/%s, want retired/active", list[0].State, list[1].State)
	}

	// Rollback returns to the previous distinct version and survives reopen.
	v, err := reg2.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if v.Manifest.ID != "v0001" {
		t.Fatalf("rollback landed on %s", v.Manifest.ID)
	}
	reg3, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if cur := reg3.Current(); cur.Manifest.ID != "v0001" {
		t.Fatalf("reopened after rollback = %+v", cur.Manifest)
	}
	hist := reg3.History()
	if len(hist) != 3 || hist[2] != "v0001" {
		t.Fatalf("history = %v", hist)
	}
}

func TestRollbackWithoutPredecessorFails(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	reg, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Rollback(); err == nil {
		t.Fatal("rollback on empty registry succeeded")
	}
	bank := trainBank(t, 1, ml.ForestConfig{})
	if _, err := reg.Add(bank, "initial", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Promote("v0001"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Rollback(); err == nil {
		t.Fatal("rollback with a single version succeeded")
	}
}

func TestKeepPrunesOldRetiredVersions(t *testing.T) {
	if testing.Short() {
		t.Skip("trains banks")
	}
	dir := t.TempDir()
	reg, err := New(Config{Dir: dir, Keep: 1})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		bank := trainBank(t, seed, ml.ForestConfig{NumTrees: 3, MaxDepth: 5, MaxFeatures: 10, Seed: seed})
		m, err := reg.Add(bank, "cycle", seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Promote(m.ID); err != nil {
			t.Fatal(err)
		}
	}
	// v0003 active, v0002 retired (kept), v0001 pruned on the next Add.
	bank := trainBank(t, 4, ml.ForestConfig{NumTrees: 3, MaxDepth: 5, MaxFeatures: 10, Seed: 4})
	if _, err := reg.Add(bank, "cycle", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "v0001.bank")); !os.IsNotExist(err) {
		t.Errorf("v0001 bank not pruned (err=%v)", err)
	}
	if cur := reg.Current(); cur.Manifest.ID != "v0003" {
		t.Errorf("pruning touched the active version: %+v", cur.Manifest)
	}
	// Pruned versions must also leave the promotion history, so rollback
	// resolves to the surviving predecessor, never a deleted version.
	v, err := reg.Rollback()
	if err != nil {
		t.Fatalf("rollback after prune: %v", err)
	}
	if v.Manifest.ID != "v0002" {
		t.Errorf("rollback after prune landed on %s, want v0002", v.Manifest.ID)
	}
}
