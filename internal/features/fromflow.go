package features

import "videoplat/internal/fingerprint"

// FromFlow assembles a HandshakeInfo directly from a fingerprint flow
// description, bypassing packet rendering. hops is the number of routers
// between the client and the tap (the trace generator draws 1–3), which
// decrements the observed TTL. The campus-scale simulator uses this fast
// path; the packet path (pipeline.ExtractFrames) is exercised by the lab
// experiments and produces identical values for equal hop counts.
func FromFlow(f *fingerprint.Flow, hops uint8) *HandshakeInfo {
	info := &HandshakeInfo{
		QUIC:  f.Transport == fingerprint.QUIC,
		TTL:   f.TTL - hops,
		Hello: f.Hello,
	}
	if info.QUIC {
		info.InitPacketSize = f.QUICTargetSize
		info.TCPWScale = -1
	} else {
		// IP packet size of the SYN: 20 IP + 20 TCP + options. The options
		// block mirrors tracegen's SYN rendering (MSS 4, SACK 2+2 NOPs,
		// timestamps 10, wscale 3+1 NOP, padded to 4).
		opt := 4
		if f.SACK {
			opt += 4
		}
		if f.Timestamps {
			opt += 10
		}
		if f.WScale >= 0 {
			opt += 4
		}
		opt = (opt + 3) / 4 * 4
		info.InitPacketSize = 40 + opt
		info.TCPFlags = 0x02
		if f.ECN {
			info.TCPFlags |= 0xc0
		}
		info.TCPWindow = f.Window
		info.TCPMSS = f.MSS
		info.TCPWScale = f.WScale
		info.TCPSACK = f.SACK
	}
	return info
}
