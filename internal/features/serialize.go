package features

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

type encoderDTO struct {
	Labels []string
	Vocabs map[string]map[string]int
	QUIC   bool
}

// MarshalBinary serializes the fitted encoder (attribute subset and
// vocabularies) with encoding/gob.
func (e *Encoder) MarshalBinary() ([]byte, error) {
	dto := encoderDTO{Vocabs: e.vocabs}
	for _, a := range e.Attrs {
		dto.Labels = append(dto.Labels, a.Label)
	}
	// Recover transport from the attribute set: QUIC sets carry q-labels,
	// TCP sets carry t3+.
	for _, a := range e.Attrs {
		if a.Scope == QUICOnly {
			dto.QUIC = true
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return nil, fmt.Errorf("features: encoding encoder: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores an encoder serialized by MarshalBinary.
func (e *Encoder) UnmarshalBinary(data []byte) error {
	var dto encoderDTO
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dto); err != nil {
		return fmt.Errorf("features: decoding encoder: %w", err)
	}
	ne, err := NewEncoder(dto.QUIC, dto.Labels)
	if err != nil {
		return err
	}
	*e = *ne
	if dto.Vocabs != nil {
		e.vocabs = dto.Vocabs
	}
	return nil
}
