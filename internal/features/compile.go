package features

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"videoplat/internal/quicproto"
	"videoplat/internal/tlsproto"
	"videoplat/internal/wire"
)

// CompiledEncoder is a fitted Encoder lowered into a dense slot table for
// the serving path. Where Extract+Transform materialize every Table 2 field
// as string tokens in three maps and then resolve them through per-attribute
// string vocabularies, the compiled form resolves raw wire values —
// cipher-suite uint16s, extension ids, QUIC transport-parameter ids, raw
// extension bytes — through interned lookup tables built once at compile
// time, and writes the encoded vector straight into a caller-owned
// []float64. EncodeInto(dst, info, sc) is element-identical to
// Transform(ExtractWithOptions(info, opts)) for every handshake (pinned by
// the golden-equivalence tests).
//
// A CompiledEncoder is immutable after Compile and safe for concurrent use;
// per-call mutable state lives in the caller's EncodeScratch.
type CompiledEncoder struct {
	opts  Options
	width int
	attrs []compiledAttr
	// quicAttrs reports whether any attribute reads QUIC transport
	// parameters, so TCP-schema encoders never resolve them.
	quicAttrs bool
}

// EncodeScratch holds the per-caller mutable state EncodeInto needs to run
// allocation-free: reusable buffers for extension-list walking and token
// rendering. One scratch per goroutine; the zero value is ready to use.
type EncodeScratch struct {
	u16  []uint16
	alpn [][]byte
	tok  []byte
}

// slot-writer opcodes; one per distinct extraction routine.
type compiledOp uint8

const (
	opInitPacketSize compiledOp = iota
	opTTL
	opTCPFlag
	opTCPWindow
	opTCPMSS
	opTCPWScale
	opTCPSACK
	opHandshakeLength
	opLegacyVersion
	opCipherSuites
	opCompressionLen
	opExtensionsLength
	opExtTypes
	opExtLen
	opStatusRequest
	opU16List
	opU8BytesCat
	opALPN
	opPresence
	opCompressCert
	opRecordSizeLimit
	opSupportedVersions
	opKeyShare
	opQParamIDs
	opQUint
	opQPresence
	opQLen
	opQCat
)

// compiledAttr is one Table 2 attribute lowered to an opcode plus the
// interned lookup tables its tokens resolve through.
type compiledAttr struct {
	op    compiledOp
	col   int // first output column
	width int // expanded columns (list width, else 1)
	bit   uint8
	ext   uint16 // TLS extension type, for ext-sourced ops
	param uint64 // QUIC transport-parameter id, for q-ops

	u16        map[uint16]int // raw uint16 -> 1-based vocab id
	u64        map[uint64]int // raw param id -> vocab id (q1)
	u8         map[uint8]int  // status_request type -> vocab id
	str        map[string]int // raw bytes or rendered token -> vocab id
	grease     int            // vocab id of the collapsed GREASE token (0 if unseen)
	keepGrease bool           // the ablation: raw GREASE values resolve like any other
}

// Compile lowers a fitted encoder into its serving-path form with default
// extraction options (the paper's configuration, and what the pipeline's
// Extract uses). It fails only for attribute labels this build does not know
// how to lower, so callers can fall back to Extract+Transform.
func Compile(e *Encoder) (*CompiledEncoder, error) {
	return CompileWithOptions(e, Options{})
}

// CompileWithOptions is Compile for a non-default extraction configuration
// (e.g. the KeepGrease ablation). The compiled encoder is equivalent to
// Transform∘ExtractWithOptions for the same Options value.
func CompileWithOptions(e *Encoder, o Options) (*CompiledEncoder, error) {
	ce := &CompiledEncoder{opts: o}
	col := 0
	for _, a := range e.Attrs {
		ca := compiledAttr{col: col, width: 1, keepGrease: o.KeepGrease}
		if a.Kind == List {
			ca.width = a.Width
		}
		col += ca.width
		if err := lowerAttr(&ca, a); err != nil {
			return nil, err
		}
		buildTables(&ca, a, e.vocabs[a.Label])
		switch ca.op {
		case opQParamIDs, opQUint, opQPresence, opQLen, opQCat:
			ce.quicAttrs = true
		}
		ce.attrs = append(ce.attrs, ca)
	}
	ce.width = col
	return ce, nil
}

// lowerAttr maps a Table 2 label to its opcode and wire source.
func lowerAttr(ca *compiledAttr, a Attribute) error {
	switch a.Label {
	case "t1":
		ca.op = opInitPacketSize
	case "t2":
		ca.op = opTTL
	case "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10":
		ca.op = opTCPFlag
		n, _ := strconv.Atoi(a.Label[1:])
		ca.bit = 1 << (10 - n) // t3 = bit 7 (CWR) ... t10 = bit 0 (FIN)
	case "t11":
		ca.op = opTCPWindow
	case "t12":
		ca.op = opTCPMSS
	case "t13":
		ca.op = opTCPWScale
	case "t14":
		ca.op = opTCPSACK
	case "m1":
		ca.op = opHandshakeLength
	case "m2":
		ca.op = opLegacyVersion
	case "m3":
		ca.op = opCipherSuites
	case "m4":
		ca.op = opCompressionLen
	case "m5":
		ca.op = opExtensionsLength
	case "o1":
		ca.op = opExtTypes
	case "o2":
		ca.op, ca.ext = opExtLen, tlsproto.ExtServerName
	case "o3":
		ca.op = opStatusRequest
	case "o4":
		ca.op, ca.ext = opU16List, tlsproto.ExtSupportedGroups
	case "o5":
		ca.op, ca.ext = opU8BytesCat, tlsproto.ExtECPointFormats
	case "o6":
		ca.op, ca.ext = opU16List, tlsproto.ExtSignatureAlgorithms
	case "o7":
		ca.op, ca.ext = opALPN, tlsproto.ExtALPN
	case "o8":
		ca.op, ca.ext = opExtLen, tlsproto.ExtSCT
	case "o9":
		ca.op, ca.ext = opExtLen, tlsproto.ExtPadding
	case "o10":
		ca.op, ca.ext = opPresence, tlsproto.ExtEncryptThenMac
	case "o11":
		ca.op, ca.ext = opPresence, tlsproto.ExtExtendedMasterSecret
	case "o12":
		ca.op = opCompressCert
	case "o13":
		ca.op = opRecordSizeLimit
	case "o14":
		ca.op, ca.ext = opU16List, tlsproto.ExtDelegatedCredentials
	case "o15":
		ca.op, ca.ext = opExtLen, tlsproto.ExtSessionTicket
	case "o16":
		ca.op, ca.ext = opPresence, tlsproto.ExtPreSharedKey
	case "o17":
		ca.op, ca.ext = opExtLen, tlsproto.ExtEarlyData
	case "o18":
		ca.op = opSupportedVersions
	case "o19":
		ca.op, ca.ext = opU8BytesCat, tlsproto.ExtPSKKeyExchangeModes
	case "o20":
		ca.op, ca.ext = opPresence, tlsproto.ExtPostHandshakeAuth
	case "o21":
		ca.op = opKeyShare
	case "o22":
		ca.op, ca.ext = opALPN, tlsproto.ExtApplicationSettings
	case "o23":
		ca.op, ca.ext = opPresence, tlsproto.ExtRenegotiationInfo
	case "q1":
		ca.op = opQParamIDs
	case "q2":
		ca.op, ca.param = opQUint, quicproto.ParamMaxIdleTimeout
	case "q3":
		ca.op, ca.param = opQUint, quicproto.ParamMaxUDPPayloadSize
	case "q4":
		ca.op, ca.param = opQUint, quicproto.ParamInitialMaxData
	case "q5":
		ca.op, ca.param = opQUint, quicproto.ParamInitialMaxStreamDataBidiLocal
	case "q6":
		ca.op, ca.param = opQUint, quicproto.ParamInitialMaxStreamDataBidiRemote
	case "q7":
		ca.op, ca.param = opQUint, quicproto.ParamInitialMaxStreamDataUni
	case "q8":
		ca.op, ca.param = opQUint, quicproto.ParamInitialMaxStreamsBidi
	case "q9":
		ca.op, ca.param = opQUint, quicproto.ParamInitialMaxStreamsUni
	case "q10":
		ca.op, ca.param = opQUint, quicproto.ParamMaxAckDelay
	case "q11":
		ca.op, ca.param = opQPresence, quicproto.ParamDisableActiveMigration
	case "q12":
		ca.op, ca.param = opQUint, quicproto.ParamActiveConnectionIDLimit
	case "q13":
		ca.op, ca.param = opQLen, quicproto.ParamInitialSourceConnectionID
	case "q14":
		ca.op, ca.param = opQUint, quicproto.ParamMaxDatagramFrameSize
	case "q15":
		ca.op, ca.param = opQPresence, quicproto.ParamGreaseQuicBit
	case "q16":
		ca.op, ca.param = opQPresence, quicproto.ParamInitialRTT
	case "q17":
		ca.op, ca.param = opQCat, quicproto.ParamGoogleConnectionOptions
	case "q18":
		ca.op, ca.param = opQCat, quicproto.ParamUserAgent
	case "q19":
		ca.op, ca.param = opQCat, quicproto.ParamGoogleVersion
	case "q20":
		ca.op, ca.param = opQCat, quicproto.ParamVersionInformation
	default:
		return fmt.Errorf("features: cannot compile attribute %q", a.Label)
	}
	return nil
}

// buildTables interns an attribute's fitted vocabulary as raw-wire-value
// lookup tables. Tokens that no serving-side extraction could ever produce
// (non-canonical hex spellings, odd-length hex) are dropped: Transform
// could never match them either, so the miss-to-zero behaviour is identical.
func buildTables(ca *compiledAttr, a Attribute, vocab map[string]int) {
	switch ca.op {
	case opLegacyVersion, opCipherSuites, opExtTypes, opU16List,
		opSupportedVersions, opKeyShare:
		ca.u16 = make(map[uint16]int, len(vocab))
		for tok, id := range vocab {
			if tok == greaseToken {
				ca.grease = id
				continue
			}
			if v, ok := parseHexToken(tok, 16); ok {
				ca.u16[uint16(v)] = id
			}
		}
	case opQParamIDs:
		ca.u64 = make(map[uint64]int, len(vocab))
		for tok, id := range vocab {
			if tok == greaseToken {
				ca.grease = id
				continue
			}
			if v, ok := parseHexToken(tok, 64); ok {
				ca.u64[v] = id
			}
		}
	case opStatusRequest:
		ca.u8 = make(map[uint8]int, len(vocab))
		for tok, id := range vocab {
			n, err := strconv.Atoi(tok)
			if err == nil && n >= 0 && n <= 255 && strconv.Itoa(n) == tok {
				ca.u8[uint8(n)] = id
			}
		}
	case opU8BytesCat, opQCat:
		ca.str = make(map[string]int, len(vocab))
		hexKeyed := ca.op == opU8BytesCat || ca.param == quicproto.ParamVersionInformation
		for tok, id := range vocab {
			if hexKeyed {
				// bytesToken renders raw bytes as lowercase hex; key the
				// table on the decoded bytes so lookups skip the render.
				raw, err := hex.DecodeString(tok)
				if err == nil && hex.EncodeToString(raw) == tok {
					ca.str[string(raw)] = id
				}
				continue
			}
			ca.str[tok] = id
		}
	case opALPN, opCompressCert:
		ca.str = make(map[string]int, len(vocab))
		for tok, id := range vocab {
			ca.str[tok] = id
		}
	}
}

// parseHexToken inverts the "0x%x" token rendering, rejecting spellings the
// renderer could never emit (uppercase, leading zeros, overflow).
func parseHexToken(tok string, bits int) (uint64, bool) {
	if !strings.HasPrefix(tok, "0x") {
		return 0, false
	}
	v, err := strconv.ParseUint(tok[2:], 16, bits)
	if err != nil || strconv.FormatUint(v, 16) != tok[2:] {
		return 0, false
	}
	return v, true
}

// Width returns the encoded vector width.
func (ce *CompiledEncoder) Width() int { return ce.width }

// Encode is EncodeInto with a freshly allocated vector and scratch, for
// callers off the hot path.
func (ce *CompiledEncoder) Encode(info *HandshakeInfo) []float64 {
	var sc EncodeScratch
	return ce.EncodeInto(nil, info, &sc)
}

// EncodeInto encodes a handshake directly into dst, reusing its capacity,
// and returns the width-long vector. The result is element-identical to
// Transform(ExtractWithOptions(info, opts)) on the encoder this was compiled
// from. sc provides the per-caller buffers that keep the steady state
// allocation-free; nil sc allocates a temporary one. Zero-allocation in the
// steady state, pinned by TestEncodeIntoZeroAlloc.
//
//vp:hotpath
func (ce *CompiledEncoder) EncodeInto(dst []float64, info *HandshakeInfo, sc *EncodeScratch) []float64 {
	if sc == nil {
		sc = &EncodeScratch{} //vp:allocok cold nil-scratch path for off-path callers
	}
	if cap(dst) < ce.width {
		dst = make([]float64, ce.width) //vp:allocok cold first-call growth; steady state reuses dst
	} else {
		dst = dst[:ce.width]
		clear(dst)
	}

	ch := info.Hello
	var tp *quicproto.TransportParameters
	if info.QUIC && ce.quicAttrs {
		// Mirrors extractQUIC's lazy parse; the pipeline's assembler
		// pre-populates Params so this branch never allocates when serving.
		tp = info.Params
		if tp == nil && ch != nil {
			if e, ok := ch.Extension(tlsproto.ExtQUICTransportParams); ok {
				tp, _ = quicproto.ParseTransportParameters(e.Data) //vp:allocok cold lazy parse; assembler pre-populates Params when serving
			}
		}
	}

	for i := range ce.attrs {
		ca := &ce.attrs[i]
		switch ca.op {
		case opInitPacketSize:
			dst[ca.col] = float64(info.InitPacketSize)
		case opTTL:
			dst[ca.col] = float64(info.TTL)
		case opTCPFlag:
			if !info.QUIC && info.TCPFlags&ca.bit != 0 {
				dst[ca.col] = 1
			}
		case opTCPWindow:
			if !info.QUIC {
				dst[ca.col] = float64(info.TCPWindow)
			}
		case opTCPMSS:
			if !info.QUIC {
				dst[ca.col] = float64(info.TCPMSS)
			}
		case opTCPWScale:
			if !info.QUIC && info.TCPWScale >= 0 {
				dst[ca.col] = float64(info.TCPWScale)
			}
		case opTCPSACK:
			if !info.QUIC && info.TCPSACK {
				dst[ca.col] = 1
			}
		}
		if ch == nil {
			continue // hello-sourced slots stay zero, as in Extract
		}
		switch ca.op {
		case opHandshakeLength:
			dst[ca.col] = float64(ch.HandshakeLength)
		case opLegacyVersion:
			dst[ca.col] = float64(ca.u16[ch.LegacyVersion])
		case opCipherSuites:
			for i, s := range ch.CipherSuites {
				if i >= ca.width {
					break
				}
				dst[ca.col+i] = float64(ca.u16ID(s))
			}
		case opCompressionLen:
			dst[ca.col] = lengthValue(len(ch.CompressionMethods))
		case opExtensionsLength:
			dst[ca.col] = float64(ch.ExtensionsLength)
		case opExtTypes:
			for i := range ch.Extensions {
				if i >= ca.width {
					break
				}
				dst[ca.col+i] = float64(ca.u16ID(ch.Extensions[i].Type))
			}
		case opExtLen:
			dst[ca.col] = lengthValue(ch.ExtensionLen(ca.ext))
		case opStatusRequest:
			if t := ch.StatusRequestType(); t != 0 {
				dst[ca.col] = float64(ca.u8[t])
			}
		case opU16List:
			sc.u16 = ch.AppendUint16List(ca.ext, sc.u16[:0])
			ca.writeU16List(dst, sc.u16)
		case opSupportedVersions:
			sc.u16 = ch.AppendSupportedVersions(sc.u16[:0])
			ca.writeU16List(dst, sc.u16)
		case opKeyShare:
			sc.u16 = ch.AppendKeyShareGroups(sc.u16[:0])
			ca.writeU16List(dst, sc.u16)
		case opU8BytesCat:
			if b := ch.U8PrefixedBytes(ca.ext); b != nil {
				dst[ca.col] = float64(ca.str[string(b)]) //vp:allocok map-index string conversion is not materialized
			}
		case opALPN:
			// The map index converts the aliased wire bytes in place — no
			// string is materialized.
			sc.alpn = ch.AppendALPN(ca.ext, sc.alpn[:0])
			for i, name := range sc.alpn {
				if i >= ca.width {
					break
				}
				dst[ca.col+i] = float64(ca.str[string(name)]) //vp:allocok map-index string conversion is not materialized
			}
		case opPresence:
			if ch.HasExtension(ca.ext) {
				dst[ca.col] = 1
			}
		case opCompressCert:
			sc.u16 = ch.AppendCompressCertAlgorithms(sc.u16[:0])
			if len(sc.u16) > 0 {
				sc.tok = appendCompressToken(sc.tok[:0], sc.u16)
				dst[ca.col] = float64(ca.str[string(sc.tok)]) //vp:allocok map-index string conversion is not materialized
			}
		case opRecordSizeLimit:
			if lim := ch.RecordSizeLimit(); lim > 0 {
				dst[ca.col] = float64(lim)
			}
		case opQParamIDs:
			if tp == nil {
				break
			}
			for i := range tp.Params {
				if i >= ca.width {
					break
				}
				id := tp.Params[i].ID
				if !ce.opts.KeepGrease && wire.GreaseTransportParam(id) {
					dst[ca.col+i] = float64(ca.grease)
				} else {
					dst[ca.col+i] = float64(ca.u64[id])
				}
			}
		case opQUint:
			if tp == nil {
				break
			}
			if v, ok := tp.Uint(ca.param); ok {
				dst[ca.col] = float64(v)
			}
		case opQPresence:
			if tp != nil && tp.Has(ca.param) {
				dst[ca.col] = 1
			}
		case opQLen:
			if tp != nil {
				dst[ca.col] = lengthValue(tp.ValueLen(ca.param))
			}
		case opQCat:
			if tp == nil {
				break
			}
			if p, ok := tp.Get(ca.param); ok {
				dst[ca.col] = float64(ca.str[string(p.Value)]) //vp:allocok map-index string conversion is not materialized
			}
		}
	}
	return dst
}

// u16ID resolves one uint16 wire value through the interned vocabulary,
// collapsing GREASE exactly as Options.suiteToken does.
func (ca *compiledAttr) u16ID(v uint16) int {
	if !ca.keepGrease && wire.IsGrease(v) {
		return ca.grease
	}
	return ca.u16[v]
}

func (ca *compiledAttr) writeU16List(dst []float64, vals []uint16) {
	for i, v := range vals {
		if i >= ca.width {
			return
		}
		dst[ca.col+i] = float64(ca.u16ID(v))
	}
}

// appendCompressToken renders the o12 certificate-compression token exactly
// as compressToken does, into a reusable buffer.
func appendCompressToken(tok []byte, algs []uint16) []byte {
	for i, a := range algs {
		if i > 0 {
			tok = append(tok, ',')
		}
		switch a {
		case 1:
			tok = append(tok, "zlib"...)
		case 2:
			tok = append(tok, "brotli"...)
		case 3:
			tok = append(tok, "zstd"...)
		default:
			tok = append(tok, "0x"...)
			tok = strconv.AppendUint(tok, uint64(a), 16) //vp:allocok amortized growth of reused scratch, pinned by TestEncodeIntoZeroAlloc
		}
	}
	return tok
}
