package features

import (
	"math/rand/v2"
	"testing"

	"videoplat/internal/fingerprint"
	"videoplat/internal/tlsproto"
)

func newRng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 99)) }

// infoFromFingerprint builds a HandshakeInfo directly from a generated flow.
func infoFromFingerprint(f *fingerprint.Flow) *HandshakeInfo {
	info := &HandshakeInfo{
		QUIC:  f.Transport == fingerprint.QUIC,
		TTL:   f.TTL,
		Hello: f.Hello,
	}
	if info.QUIC {
		info.InitPacketSize = f.QUICTargetSize
	} else {
		info.InitPacketSize = 66
		info.TCPFlags = 0x02
		if f.ECN {
			info.TCPFlags |= 0xc0
		}
		info.TCPWindow = f.Window
		info.TCPMSS = f.MSS
		info.TCPWScale = f.WScale
		info.TCPSACK = f.SACK
	}
	return info
}

func TestTable2Counts(t *testing.T) {
	if len(Table2) != 62 {
		t.Fatalf("Table2 has %d attributes, want 62", len(Table2))
	}
	kinds := map[Kind]int{}
	for _, a := range Table2 {
		kinds[a.Kind]++
	}
	// Table 2's attribute-type column gives 19 numerical, 9 categorical,
	// 10 list, 17 presence and 7 length attributes. (§4.2's prose says
	// "20 numerical, 31 categorical, 11 list", but §4.2.2's authoritative
	// cost accounting — 43 low-cost, 9 categorical medium-cost, 10 list
	// high-cost — matches the table, so we follow the table.)
	if kinds[List] != 10 {
		t.Errorf("list attributes = %d, want 10 (§4.2.2)", kinds[List])
	}
	if kinds[Categorical] != 9 {
		t.Errorf("categorical attributes = %d, want 9 (§4.2.2)", kinds[Categorical])
	}
	if kinds[Numerical] != 19 {
		t.Errorf("numerical attributes = %d, want 19", kinds[Numerical])
	}
	if kinds[Presence] != 17 {
		t.Errorf("presence attributes = %d, want 17 (§4.2.1)", kinds[Presence])
	}
	if kinds[Length] != 7 {
		t.Errorf("length attributes = %d, want 7 (§4.2.1)", kinds[Length])
	}
	if got := len(ForTransport(true)); got != 50 {
		t.Errorf("QUIC-applicable = %d, want 50 (§4.3.1)", got)
	}
	if got := len(ForTransport(false)); got != 42 {
		t.Errorf("TCP-applicable = %d, want 42", got)
	}
	// Low-cost count: paper §4.2.2 says 43 numerical/length/presence
	// attributes are low-cost.
	low := 0
	for _, a := range Table2 {
		if a.Cost == Low {
			low++
		}
	}
	if low != 43 {
		t.Errorf("low-cost attributes = %d, want 43", low)
	}
}

func TestAttributeByLabel(t *testing.T) {
	a := AttributeByLabel("o13")
	if a == nil || a.Name != "record_size_limit" {
		t.Fatalf("o13 = %+v", a)
	}
	if AttributeByLabel("zz9") != nil {
		t.Error("bogus label found")
	}
}

func TestExtractTCPFlow(t *testing.T) {
	rng := newRng(1)
	f, err := fingerprint.Generate(rng, "windows_firefox", fingerprint.Netflix, fingerprint.TCP, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := Extract(infoFromFingerprint(f))
	if v.Nums["t2"] != float64(f.TTL) {
		t.Errorf("t2 = %v", v.Nums["t2"])
	}
	if v.Nums["t9"] != 1 {
		t.Errorf("t9 (syn) = %v", v.Nums["t9"])
	}
	if v.Nums["o13"] != 16385 {
		t.Errorf("o13 record_size_limit = %v, want 16385", v.Nums["o13"])
	}
	if len(v.Lists["m3"]) != len(f.Hello.CipherSuites) {
		t.Errorf("m3 len = %d", len(v.Lists["m3"]))
	}
	if len(v.Lists["o14"]) == 0 {
		t.Error("firefox delegated_credentials missing")
	}
	if _, ok := v.Nums["q2"]; ok {
		t.Error("QUIC attribute extracted from TCP flow")
	}
	if v.Nums["m1"] != float64(f.Hello.HandshakeLength) {
		t.Errorf("m1 = %v, want %d", v.Nums["m1"], f.Hello.HandshakeLength)
	}
}

func TestExtractQUICFlow(t *testing.T) {
	rng := newRng(2)
	f, err := fingerprint.Generate(rng, "windows_chrome", fingerprint.YouTube, fingerprint.QUIC, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := Extract(infoFromFingerprint(f))
	if v.Nums["q2"] != 30000 {
		t.Errorf("q2 max_idle_timeout = %v", v.Nums["q2"])
	}
	if v.Cats["q18"] == "" {
		t.Error("q18 user_agent missing")
	}
	if v.Cats["q19"] != "Q050" {
		t.Errorf("q19 = %q", v.Cats["q19"])
	}
	if len(v.Lists["q1"]) == 0 {
		t.Error("q1 quic_parameters missing")
	}
	// GREASE transport params must be collapsed.
	for _, tok := range v.Lists["q1"] {
		if tok == greaseToken {
			return
		}
	}
	t.Error("no GREASE token in q1 for a Chromium flow")
}

func TestGreaseNormalization(t *testing.T) {
	rngs := []*rand.Rand{newRng(10), newRng(11)}
	var tokens [2]string
	for i, rng := range rngs {
		f, err := fingerprint.Generate(rng, "macOS_chrome", fingerprint.YouTube, fingerprint.TCP, fingerprint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		v := Extract(infoFromFingerprint(f))
		tokens[i] = v.Lists["m3"][0] // Chromium puts GREASE first
	}
	if tokens[0] != greaseToken || tokens[1] != greaseToken {
		t.Errorf("GREASE suites not normalized: %q %q", tokens[0], tokens[1])
	}
}

func TestLengthValueDistinguishesAbsentFromEmpty(t *testing.T) {
	ch := &tlsproto.ClientHello{LegacyVersion: tlsproto.VersionTLS12,
		CipherSuites: []uint16{0x1301}, CompressionMethods: []byte{0},
		Extensions: []tlsproto.Extension{{Type: tlsproto.ExtSessionTicket, Data: nil}}}
	ch.Marshal()
	withTicket := Extract(&HandshakeInfo{Hello: ch})
	ch2 := &tlsproto.ClientHello{LegacyVersion: tlsproto.VersionTLS12,
		CipherSuites: []uint16{0x1301}, CompressionMethods: []byte{0}}
	ch2.Marshal()
	without := Extract(&HandshakeInfo{Hello: ch2})
	if withTicket.Nums["o15"] == without.Nums["o15"] {
		t.Errorf("empty-present (%v) vs absent (%v) session_ticket indistinguishable",
			withTicket.Nums["o15"], without.Nums["o15"])
	}
}

func TestEncoderFitTransform(t *testing.T) {
	rng := newRng(3)
	var samples []*FieldValues
	for i := 0; i < 40; i++ {
		label := "windows_chrome"
		if i%2 == 1 {
			label = "windows_firefox"
		}
		f, err := fingerprint.Generate(rng, label, fingerprint.YouTube, fingerprint.QUIC, fingerprint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Extract(infoFromFingerprint(f)))
	}
	enc, err := NewEncoder(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc.Fit(samples)
	if enc.Width() < 50 {
		t.Fatalf("width = %d", enc.Width())
	}
	vecs := enc.TransformAll(samples)
	for i, v := range vecs {
		if len(v) != enc.Width() {
			t.Fatalf("sample %d width %d", i, len(v))
		}
	}
	// Chrome and Firefox must differ on record_size_limit column.
	cols := enc.AttrColumns("o13")
	if len(cols) != 1 {
		t.Fatalf("o13 columns = %v", cols)
	}
	if vecs[0][cols[0]] == vecs[1][cols[0]] {
		t.Error("o13 identical between chrome and firefox")
	}
	if enc.VocabSize("m3") == 0 {
		t.Error("m3 vocab empty")
	}
}

func TestEncoderSubsetAndErrors(t *testing.T) {
	enc, err := NewEncoder(false, []string{"t1", "t2", "t11"})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Width() != 3 {
		t.Errorf("width = %d", enc.Width())
	}
	if _, err := NewEncoder(false, []string{"q2"}); err == nil {
		t.Error("QUIC attribute accepted for TCP encoder")
	}
	if _, err := NewEncoder(true, []string{"t3"}); err == nil {
		t.Error("TCP-only attribute accepted for QUIC encoder")
	}
}

func TestEncoderUnseenTokenMapsToZero(t *testing.T) {
	enc, err := NewEncoder(false, []string{"m2"})
	if err != nil {
		t.Fatal(err)
	}
	train := NewFieldValues()
	train.Cats["m2"] = "0x303"
	enc.Fit([]*FieldValues{train})
	test := NewFieldValues()
	test.Cats["m2"] = "0x9999"
	if v := enc.Transform(test); v[0] != 0 {
		t.Errorf("unseen token encoded as %v", v[0])
	}
	if v := enc.Transform(train); v[0] != 1 {
		t.Errorf("seen token encoded as %v", v[0])
	}
}

func TestSummarize(t *testing.T) {
	rng := newRng(4)
	var samples []*FieldValues
	var labels []string
	for _, label := range []string{"windows_chrome", "windows_firefox", "macOS_safari", "android_nativeApp"} {
		for i := 0; i < 20; i++ {
			f, err := fingerprint.Generate(rng, label, fingerprint.YouTube, fingerprint.QUIC, fingerprint.Options{})
			if err != nil {
				t.Fatal(err)
			}
			samples = append(samples, Extract(infoFromFingerprint(f)))
			labels = append(labels, label)
		}
	}
	sums := Summarize(samples, labels, ForTransport(true))
	byLabel := map[string]FieldSummary{}
	for _, s := range sums {
		byLabel[s.Attr.Label] = s
	}
	// record_size_limit (o13): 0 for chrome/safari, 16385 for firefox ->
	// 2 unique values and firefox has a unique distribution.
	o13 := byLabel["o13"]
	if o13.UniqueValues != 2 {
		t.Errorf("o13 unique values = %d, want 2", o13.UniqueValues)
	}
	if o13.UniquePlatforms != 1 {
		t.Errorf("o13 unique platforms = %d, want 1 (firefox)", o13.UniquePlatforms)
	}
	// user_agent (q18) differs on every platform that sends it.
	q18 := byLabel["q18"]
	if q18.UniqueValues < 2 {
		t.Errorf("q18 unique values = %d", q18.UniqueValues)
	}
	// Medians are normalized.
	for _, s := range sums {
		for pl, m := range s.MedianByPlatform {
			if m < 0 || m > 1 {
				t.Errorf("%s median for %s = %v out of [0,1]", s.Attr.Label, pl, m)
			}
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	rng := newRng(5)
	f, err := fingerprint.Generate(rng, "windows_chrome", fingerprint.YouTube, fingerprint.QUIC, fingerprint.Options{})
	if err != nil {
		b.Fatal(err)
	}
	info := infoFromFingerprint(f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Extract(info)
	}
}

func BenchmarkEncoderTransform(b *testing.B) {
	rng := newRng(6)
	f, err := fingerprint.Generate(rng, "windows_chrome", fingerprint.YouTube, fingerprint.QUIC, fingerprint.Options{})
	if err != nil {
		b.Fatal(err)
	}
	v := Extract(infoFromFingerprint(f))
	enc, err := NewEncoder(true, nil)
	if err != nil {
		b.Fatal(err)
	}
	enc.Fit([]*FieldValues{v})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Transform(v)
	}
}
