package features

import (
	"fmt"
	"sort"
	"strings"
)

// FieldSummary aggregates one handshake field across a labeled dataset, the
// statistic behind Fig 3 (value diversity), Fig 12 (median heatmaps) and
// Fig 13: how many distinct whole-field values exist, how many platforms
// exhibit a value distribution no other platform shares, and the normalized
// median value per platform.
type FieldSummary struct {
	Attr Attribute
	// UniqueValues counts distinct whole-field values across all samples
	// (a list field's value is the entire ordered list).
	UniqueValues int
	// UniquePlatforms counts platforms whose value distribution for this
	// field differs from every other platform's.
	UniquePlatforms int
	// MedianByPlatform maps platform label to the median field value,
	// normalized to [0,1] over the field's observed value ids.
	MedianByPlatform map[string]float64
	// UniqueByPlatform maps platform label to its distinct value count.
	UniqueByPlatform map[string]int
}

// fieldValueString renders the whole-field value of one sample, or
// ("", false) if absent.
func fieldValueString(s *FieldValues, a Attribute) (string, bool) {
	switch a.Kind {
	case Categorical:
		v, ok := s.Cats[a.Label]
		return v, ok
	case List:
		l, ok := s.Lists[a.Label]
		if !ok || len(l) == 0 {
			return "", false
		}
		return strings.Join(l, "|"), true
	default:
		v, ok := s.Nums[a.Label]
		if !ok {
			return "", false
		}
		return fmt.Sprintf("%g", v), true
	}
}

// Summarize computes per-field summaries over a labeled sample set.
// samples[i] has platform labels[i].
func Summarize(samples []*FieldValues, labels []string, attrs []Attribute) []FieldSummary {
	if len(samples) != len(labels) {
		panic("features: samples/labels length mismatch")
	}
	out := make([]FieldSummary, 0, len(attrs))
	for _, a := range attrs {
		sum := FieldSummary{Attr: a,
			MedianByPlatform: map[string]float64{},
			UniqueByPlatform: map[string]int{}}

		// Whole-value vocabulary (sorted for stable ids).
		valueSet := map[string]bool{}
		perPlatform := map[string][]string{}
		for i, s := range samples {
			v, ok := fieldValueString(s, a)
			if !ok {
				v = "" // absent is itself a value ("0" in the paper)
			}
			valueSet[v] = true
			perPlatform[labels[i]] = append(perPlatform[labels[i]], v)
		}
		vocab := make([]string, 0, len(valueSet))
		for v := range valueSet {
			vocab = append(vocab, v)
		}
		sort.Strings(vocab)
		id := make(map[string]int, len(vocab))
		for i, v := range vocab {
			id[v] = i + 1
		}
		nonEmpty := len(valueSet)
		if valueSet[""] {
			nonEmpty--
		}
		if nonEmpty == 0 {
			nonEmpty = 1 // field absent everywhere: one "value"
		}
		sum.UniqueValues = nonEmpty

		// Distribution signature per platform: sorted value ids with
		// frequencies rounded to 10% buckets.
		sig := map[string]string{}
		for label, vals := range perPlatform {
			counts := map[string]int{}
			uniq := map[string]bool{}
			for _, v := range vals {
				counts[v]++
				if v != "" {
					uniq[v] = true
				}
			}
			keys := make([]string, 0, len(counts))
			for v := range counts {
				keys = append(keys, v)
			}
			sort.Strings(keys)
			var b strings.Builder
			for _, v := range keys {
				freq := float64(counts[v]) / float64(len(vals))
				fmt.Fprintf(&b, "%d@%.1f;", id[v], freq)
			}
			sig[label] = b.String()
			sum.UniqueByPlatform[label] = max(1, len(uniq))

			// Median of value ids, normalized by vocabulary size.
			ids := make([]int, 0, len(vals))
			for _, v := range vals {
				ids = append(ids, id[v])
			}
			sort.Ints(ids)
			med := float64(ids[len(ids)/2])
			sum.MedianByPlatform[label] = med / float64(len(vocab))
		}

		// Count platforms with globally unique signatures.
		sigCount := map[string]int{}
		for _, s := range sig {
			sigCount[s]++
		}
		for _, s := range sig {
			if sigCount[s] == 1 {
				sum.UniquePlatforms++
			}
		}
		out = append(out, sum)
	}
	return out
}
