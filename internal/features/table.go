// Package features formalizes the TCP/QUIC and TLS handshake fields of a
// video flow into the 62 machine-learning attributes of the paper's Table 2.
//
// Extraction happens in two stages, mirroring Fig 4's "handshake attribute
// generator":
//
//  1. Extract pulls typed field values out of a flow's handshake messages
//     (numbers, presence bits, byte lengths, categorical tokens and ordered
//     token lists), normalizing GREASE values so Chromium's per-flow random
//     draws do not pollute the value space.
//  2. Encoder fits per-attribute vocabularies on a training set and
//     transforms field values into fixed-width numeric vectors: categorical
//     tokens become dictionary indices and list attributes become
//     fixed-length positional vectors with zero padding, exactly as §4.2.1
//     describes.
//
// # Two representations: training FieldValues vs the compiled serving path
//
// FieldValues — string tokens in three maps keyed by Table 2 label — is the
// training and experiments representation: human-readable, diffable, what
// Encoder.Fit consumes and what cmd/vpextract prints. It allocates freely
// (every token is a formatted string) and that is fine off the hot path.
//
// The serving path never builds it. CompiledEncoder (see Compile) lowers a
// fitted Encoder into a dense slot table: numeric/presence/length slots are
// written straight from parsed header fields, and categorical/list tokens
// resolve through interned lookup tables keyed on raw wire values
// (cipher-suite uint16s, extension ids, QUIC transport-parameter ids, raw
// extension bytes) instead of formatting strings. EncodeInto writes into a
// caller-owned []float64 with an EncodeScratch for its temporary buffers,
// making the steady state allocation-free. The two paths are element-
// identical by contract — EncodeInto(dst, info, sc) equals
// Transform(ExtractWithOptions(info, opts)) — pinned by the golden-
// equivalence tests here and at the bank level.
//
// Reuse rules: a CompiledEncoder is immutable and safe to share across
// goroutines; an EncodeScratch and the dst vector are per-goroutine. Only
// serialization-facing state lives in the Encoder (attribute labels plus
// vocabularies, gob-encoded by MarshalBinary); compiled tables are derived
// on load, so serialized encoders — and therefore serialized pipeline banks
// — are bit-compatible with builds that predate compilation.
package features

// Kind is the attribute's encoding type (the "Attribute type" column of
// Table 2).
type Kind uint8

// Attribute kinds.
const (
	Numerical Kind = iota
	Categorical
	List
	Presence
	Length
)

// String names the kind as in the paper.
func (k Kind) String() string {
	switch k {
	case Numerical:
		return "numerical"
	case Categorical:
		return "categorical"
	case List:
		return "list"
	case Presence:
		return "presence"
	default:
		return "length"
	}
}

// Cost is the preprocessing cost tier (the "Attribute cost" column).
type Cost uint8

// Preprocessing cost tiers of §4.2.1: numerical/presence/length attributes
// are taken directly from header fields (low); categorical attributes need
// one dictionary lookup (medium); list attributes need a lookup per item
// (high).
const (
	Low Cost = iota
	Medium
	High
)

// String names the cost tier.
func (c Cost) String() string {
	switch c {
	case Low:
		return "low"
	case Medium:
		return "medium"
	default:
		return "high"
	}
}

// Scope restricts an attribute to a transport.
type Scope uint8

// Attribute scopes (the "Transport protocol" column).
const (
	Both Scope = iota
	TCPOnly
	QUICOnly
)

// Attribute is one row of Table 2.
type Attribute struct {
	Label string // t1..t14, m1..m5, o1..o23, q1..q20
	Name  string // handshake field name
	Kind  Kind
	Cost  Cost
	Scope Scope
	// Width is the expanded vector width: 1 except for list attributes,
	// which become fixed-length positional vectors.
	Width int
}

// Table2 lists all 62 attributes in paper order.
var Table2 = []Attribute{
	{"t1", "init_packet_size", Numerical, Low, Both, 1},
	{"t2", "ttl", Numerical, Low, Both, 1},
	{"t3", "tcp_cwr", Presence, Low, TCPOnly, 1},
	{"t4", "tcp_ece", Presence, Low, TCPOnly, 1},
	{"t5", "tcp_urg", Presence, Low, TCPOnly, 1},
	{"t6", "tcp_ack", Presence, Low, TCPOnly, 1},
	{"t7", "tcp_psh", Presence, Low, TCPOnly, 1},
	{"t8", "tcp_rst", Presence, Low, TCPOnly, 1},
	{"t9", "tcp_syn", Presence, Low, TCPOnly, 1},
	{"t10", "tcp_fin", Presence, Low, TCPOnly, 1},
	{"t11", "tcp_window_size", Numerical, Low, TCPOnly, 1},
	{"t12", "tcp_mss", Numerical, Low, TCPOnly, 1},
	{"t13", "tcp_window_scale", Numerical, Low, TCPOnly, 1},
	{"t14", "tcp_sack_permitted", Presence, Low, TCPOnly, 1},

	{"m1", "handshake_length", Numerical, Low, Both, 1},
	{"m2", "tls_version", Categorical, Medium, Both, 1},
	{"m3", "cipher_suites", List, High, Both, 24},
	{"m4", "compression_methods", Length, Low, Both, 1},
	{"m5", "extensions_length", Numerical, Low, Both, 1},

	{"o1", "tls_extensions", List, High, Both, 24},
	{"o2", "server_name", Length, Low, Both, 1},
	{"o3", "status_request", Categorical, Medium, Both, 1},
	{"o4", "supported_groups", List, High, Both, 8},
	{"o5", "ec_point_formats", Categorical, Medium, Both, 1},
	{"o6", "signature_algorithms", List, High, Both, 16},
	{"o7", "application_layer_protocol_negotiation", List, High, Both, 4},
	{"o8", "signed_certificate_timestamp", Length, Low, Both, 1},
	{"o9", "padding", Length, Low, Both, 1},
	{"o10", "encrypt_then_mac", Presence, Low, Both, 1},
	{"o11", "extended_master_secret", Presence, Low, Both, 1},
	{"o12", "compress_certificate", Categorical, Medium, Both, 1},
	{"o13", "record_size_limit", Numerical, Low, Both, 1},
	{"o14", "delegated_credentials", List, High, Both, 8},
	{"o15", "session_ticket", Length, Low, Both, 1},
	{"o16", "pre_shared_key", Presence, Low, Both, 1},
	{"o17", "early_data", Length, Low, Both, 1},
	{"o18", "supported_versions", List, High, Both, 4},
	{"o19", "psk_key_exchange_modes", Categorical, Medium, Both, 1},
	{"o20", "post_handshake_auth", Presence, Low, Both, 1},
	{"o21", "key_share", List, High, Both, 4},
	{"o22", "application_settings", List, High, Both, 2},
	{"o23", "renegotiation_info", Presence, Low, Both, 1},

	{"q1", "quic_parameters", List, High, QUICOnly, 20},
	{"q2", "max_idle_timeout", Numerical, Low, QUICOnly, 1},
	{"q3", "max_udp_payload_size", Numerical, Low, QUICOnly, 1},
	{"q4", "initial_max_data", Numerical, Low, QUICOnly, 1},
	{"q5", "initial_max_stream_data_bidi_local", Numerical, Low, QUICOnly, 1},
	{"q6", "initial_max_stream_data_bidi_remote", Numerical, Low, QUICOnly, 1},
	{"q7", "initial_max_stream_data_uni", Numerical, Low, QUICOnly, 1},
	{"q8", "initial_max_streams_bidi", Numerical, Low, QUICOnly, 1},
	{"q9", "initial_max_streams_uni", Numerical, Low, QUICOnly, 1},
	{"q10", "max_ack_delay", Numerical, Low, QUICOnly, 1},
	{"q11", "disable_active_migration", Presence, Low, QUICOnly, 1},
	{"q12", "active_connection_id_limit", Numerical, Low, QUICOnly, 1},
	{"q13", "initial_source_connection_id", Length, Low, QUICOnly, 1},
	{"q14", "max_datagram_frame_size", Numerical, Low, QUICOnly, 1},
	{"q15", "grease_quic_bit", Presence, Low, QUICOnly, 1},
	{"q16", "initial_rtt", Presence, Low, QUICOnly, 1},
	{"q17", "google_connection_options", Categorical, Medium, QUICOnly, 1},
	{"q18", "user_agent", Categorical, Medium, QUICOnly, 1},
	{"q19", "google_version", Categorical, Medium, QUICOnly, 1},
	{"q20", "version_information", Categorical, Medium, QUICOnly, 1},
}

// AttributeByLabel returns the Table 2 row with the given label, or nil.
func AttributeByLabel(label string) *Attribute {
	for i := range Table2 {
		if Table2[i].Label == label {
			return &Table2[i]
		}
	}
	return nil
}

// ForTransport returns the attributes applicable to the given transport:
// 42 for TCP, 50 for QUIC (the paper's "only 50 are applicable to QUIC").
func ForTransport(quic bool) []Attribute {
	var out []Attribute
	for _, a := range Table2 {
		switch a.Scope {
		case Both:
			out = append(out, a)
		case TCPOnly:
			if !quic {
				out = append(out, a)
			}
		case QUICOnly:
			if quic {
				out = append(out, a)
			}
		}
	}
	return out
}
