package features

import (
	"fmt"
	"strconv"

	"videoplat/internal/quicproto"
	"videoplat/internal/tlsproto"
	"videoplat/internal/wire"
)

// HandshakeInfo is the assembled handshake state of one video flow, the
// input to attribute extraction. The pipeline builds it from the first few
// packets of a flow (SYN + ClientHello for TCP, the Initial for QUIC).
type HandshakeInfo struct {
	QUIC           bool
	InitPacketSize int
	TTL            uint8

	// TCP SYN fields.
	TCPFlags  uint8
	TCPWindow uint16
	TCPMSS    uint16
	TCPWScale int // -1 absent
	TCPSACK   bool

	Hello *tlsproto.ClientHello
	// Params is parsed lazily from Hello's extension 57 when nil.
	Params *quicproto.TransportParameters
}

// FieldValues holds extracted, typed attribute values keyed by Table 2
// label. Absent attributes simply have no entry.
type FieldValues struct {
	Nums  map[string]float64
	Cats  map[string]string
	Lists map[string][]string
}

// NewFieldValues returns an empty value set.
func NewFieldValues() *FieldValues {
	return &FieldValues{
		Nums:  map[string]float64{},
		Cats:  map[string]string{},
		Lists: map[string][]string{},
	}
}

// greaseToken is the canonical token for any GREASE code point; collapsing
// them keeps Chromium's per-flow random draws out of the vocabularies.
const greaseToken = "GREASE"

// Options tunes extraction; the zero value is the paper's configuration.
type Options struct {
	// KeepGrease disables GREASE normalization, leaving raw RFC 8701 code
	// points in the token space (the ablation of DESIGN.md).
	KeepGrease bool
}

func (o Options) suiteToken(v uint16) string {
	if !o.KeepGrease && wire.IsGrease(v) {
		return greaseToken
	}
	return "0x" + strconv.FormatUint(uint64(v), 16)
}

func (o Options) paramToken(id uint64) string {
	if !o.KeepGrease && wire.GreaseTransportParam(id) {
		return greaseToken
	}
	return "0x" + strconv.FormatUint(id, 16)
}

func bytesToken(b []byte) string { return fmt.Sprintf("%x", b) }

// lengthValue encodes a length-typed attribute: 0 when the extension is
// absent, 1+len(body) when present, so zero-length-but-present extensions
// (session_ticket, SCT) remain distinguishable from absent ones.
func lengthValue(n int) float64 {
	if n < 0 {
		return 0
	}
	return float64(1 + n)
}

// Extract derives the Table 2 field values from a handshake with default
// options.
func Extract(info *HandshakeInfo) *FieldValues {
	return ExtractWithOptions(info, Options{})
}

// ExtractWithOptions derives the Table 2 field values from a handshake.
func ExtractWithOptions(info *HandshakeInfo, o Options) *FieldValues {
	v := NewFieldValues()
	v.Nums["t1"] = float64(info.InitPacketSize)
	v.Nums["t2"] = float64(info.TTL)

	if !info.QUIC {
		flagBits := []struct {
			label string
			bit   uint8
		}{
			{"t3", 1 << 7}, {"t4", 1 << 6}, {"t5", 1 << 5}, {"t6", 1 << 4},
			{"t7", 1 << 3}, {"t8", 1 << 2}, {"t9", 1 << 1}, {"t10", 1 << 0},
		}
		for _, f := range flagBits {
			if info.TCPFlags&f.bit != 0 {
				v.Nums[f.label] = 1
			} else {
				v.Nums[f.label] = 0
			}
		}
		v.Nums["t11"] = float64(info.TCPWindow)
		v.Nums["t12"] = float64(info.TCPMSS)
		if info.TCPWScale >= 0 {
			v.Nums["t13"] = float64(info.TCPWScale)
		} else {
			v.Nums["t13"] = 0
		}
		if info.TCPSACK {
			v.Nums["t14"] = 1
		} else {
			v.Nums["t14"] = 0
		}
	}

	ch := info.Hello
	if ch == nil {
		return v
	}
	v.Nums["m1"] = float64(ch.HandshakeLength)
	v.Cats["m2"] = "0x" + strconv.FormatUint(uint64(ch.LegacyVersion), 16)
	suites := make([]string, 0, len(ch.CipherSuites))
	for _, s := range ch.CipherSuites {
		suites = append(suites, o.suiteToken(s))
	}
	v.Lists["m3"] = suites
	v.Nums["m4"] = lengthValue(len(ch.CompressionMethods))
	v.Nums["m5"] = float64(ch.ExtensionsLength)

	exts := make([]string, 0, len(ch.Extensions))
	for _, e := range ch.Extensions {
		exts = append(exts, o.suiteToken(e.Type))
	}
	v.Lists["o1"] = exts
	v.Nums["o2"] = lengthValue(extLenOrAbsent(ch, tlsproto.ExtServerName))
	if t := ch.StatusRequestType(); t != 0 {
		v.Cats["o3"] = strconv.Itoa(int(t))
	}
	v.Lists["o4"] = o.uint16Tokens(ch.SupportedGroups())
	if pf := ch.ECPointFormats(); pf != nil {
		v.Cats["o5"] = bytesToken(pf)
	}
	v.Lists["o6"] = o.uint16Tokens(ch.SignatureAlgorithms())
	v.Lists["o7"] = ch.ALPNProtocols()
	v.Nums["o8"] = lengthValue(extLenOrAbsent(ch, tlsproto.ExtSCT))
	v.Nums["o9"] = lengthValue(extLenOrAbsent(ch, tlsproto.ExtPadding))
	v.Nums["o10"] = presence(ch, tlsproto.ExtEncryptThenMac)
	v.Nums["o11"] = presence(ch, tlsproto.ExtExtendedMasterSecret)
	if algs := ch.CompressCertificateAlgorithms(); len(algs) > 0 {
		v.Cats["o12"] = compressToken(algs)
	}
	if lim := ch.RecordSizeLimit(); lim > 0 {
		v.Nums["o13"] = float64(lim)
	} else {
		v.Nums["o13"] = 0
	}
	v.Lists["o14"] = o.uint16Tokens(ch.DelegatedCredentials())
	v.Nums["o15"] = lengthValue(extLenOrAbsent(ch, tlsproto.ExtSessionTicket))
	v.Nums["o16"] = presence(ch, tlsproto.ExtPreSharedKey)
	v.Nums["o17"] = lengthValue(extLenOrAbsent(ch, tlsproto.ExtEarlyData))
	v.Lists["o18"] = o.uint16Tokens(ch.SupportedVersions())
	if m := ch.PSKKeyExchangeModes(); m != nil {
		v.Cats["o19"] = bytesToken(m)
	}
	v.Nums["o20"] = presence(ch, tlsproto.ExtPostHandshakeAuth)
	v.Lists["o21"] = o.uint16Tokens(ch.KeyShareGroups())
	v.Lists["o22"] = ch.ApplicationSettings()
	v.Nums["o23"] = presence(ch, tlsproto.ExtRenegotiationInfo)

	if info.QUIC {
		extractQUIC(info, v, o)
	}
	return v
}

func extractQUIC(info *HandshakeInfo, v *FieldValues, o Options) {
	tp := info.Params
	if tp == nil && info.Hello != nil {
		if e, ok := info.Hello.Extension(tlsproto.ExtQUICTransportParams); ok {
			tp, _ = quicproto.ParseTransportParameters(e.Data)
		}
	}
	if tp == nil {
		return
	}
	ids := make([]string, 0, len(tp.Params))
	for _, id := range tp.IDs() {
		ids = append(ids, o.paramToken(id))
	}
	v.Lists["q1"] = ids

	numeric := []struct {
		label string
		id    uint64
	}{
		{"q2", quicproto.ParamMaxIdleTimeout},
		{"q3", quicproto.ParamMaxUDPPayloadSize},
		{"q4", quicproto.ParamInitialMaxData},
		{"q5", quicproto.ParamInitialMaxStreamDataBidiLocal},
		{"q6", quicproto.ParamInitialMaxStreamDataBidiRemote},
		{"q7", quicproto.ParamInitialMaxStreamDataUni},
		{"q8", quicproto.ParamInitialMaxStreamsBidi},
		{"q9", quicproto.ParamInitialMaxStreamsUni},
		{"q10", quicproto.ParamMaxAckDelay},
		{"q12", quicproto.ParamActiveConnectionIDLimit},
		{"q14", quicproto.ParamMaxDatagramFrameSize},
	}
	for _, n := range numeric {
		if val, ok := tp.Uint(n.id); ok {
			v.Nums[n.label] = float64(val)
		} else {
			v.Nums[n.label] = 0
		}
	}
	v.Nums["q11"] = presenceTP(tp, quicproto.ParamDisableActiveMigration)
	v.Nums["q13"] = lengthValue(tp.ValueLen(quicproto.ParamInitialSourceConnectionID))
	v.Nums["q15"] = presenceTP(tp, quicproto.ParamGreaseQuicBit)
	v.Nums["q16"] = presenceTP(tp, quicproto.ParamInitialRTT)
	if p, ok := tp.Get(quicproto.ParamGoogleConnectionOptions); ok {
		v.Cats["q17"] = string(p.Value)
	}
	if p, ok := tp.Get(quicproto.ParamUserAgent); ok {
		v.Cats["q18"] = string(p.Value)
	}
	if p, ok := tp.Get(quicproto.ParamGoogleVersion); ok {
		v.Cats["q19"] = string(p.Value)
	}
	if p, ok := tp.Get(quicproto.ParamVersionInformation); ok {
		v.Cats["q20"] = bytesToken(p.Value)
	}
}

func extLenOrAbsent(ch *tlsproto.ClientHello, typ uint16) int { return ch.ExtensionLen(typ) }

func presence(ch *tlsproto.ClientHello, typ uint16) float64 {
	if ch.HasExtension(typ) {
		return 1
	}
	return 0
}

func presenceTP(tp *quicproto.TransportParameters, id uint64) float64 {
	if tp.Has(id) {
		return 1
	}
	return 0
}

func (o Options) uint16Tokens(vals []uint16) []string {
	if vals == nil {
		return nil
	}
	out := make([]string, 0, len(vals))
	for _, v := range vals {
		out = append(out, o.suiteToken(v))
	}
	return out
}

// compressToken maps certificate-compression algorithm lists to readable
// tokens (the paper's zlib/brotli example of §3.3.2). It delegates to the
// append-style renderer the compiled serving path uses, so the two can
// never drift.
func compressToken(algs []uint16) string {
	return string(appendCompressToken(nil, algs))
}
