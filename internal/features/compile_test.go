package features

import (
	"fmt"
	"testing"

	"videoplat/internal/fingerprint"
	"videoplat/internal/quicproto"
	"videoplat/internal/tlsproto"
)

// genInfos renders a spread of handshakes across platforms, providers and
// transports, several random draws each — GREASE draws, per-platform
// extension sets, QUIC transport parameters all vary.
func genInfos(t *testing.T, tr fingerprint.Transport, seeds ...uint64) []*HandshakeInfo {
	t.Helper()
	var infos []*HandshakeInfo
	for _, seed := range seeds {
		rng := newRng(seed)
		for _, label := range fingerprint.AllPlatformLabels() {
			for _, prov := range fingerprint.AllProviders() {
				if !fingerprint.SupportMatrix(label, prov) {
					continue
				}
				if tr == fingerprint.TCP && !fingerprint.SupportsTCP(label, prov) {
					continue
				}
				if tr == fingerprint.QUIC && !fingerprint.SupportsQUIC(label, prov) {
					continue
				}
				f, err := fingerprint.Generate(rng, label, prov, tr, fingerprint.Options{})
				if err != nil {
					t.Fatal(err)
				}
				infos = append(infos, infoFromFingerprint(f))
			}
		}
	}
	return infos
}

// edgeInfos are the hand-built corner cases: no hello at all, a minimal
// hello with every optional extension absent, and a hello stuffed with
// values no vocabulary has seen.
func edgeInfos() []*HandshakeInfo {
	minimal := &tlsproto.ClientHello{LegacyVersion: tlsproto.VersionTLS12,
		CipherSuites: []uint16{0x1301}, CompressionMethods: []byte{0}}
	minimal.Marshal()

	odd := &tlsproto.ClientHello{LegacyVersion: 0x0399, // unseen version token
		CipherSuites:       []uint16{0x8a8a, 0xbeef, 0x1302}, // GREASE + unseen
		CompressionMethods: []byte{0},
		Extensions: []tlsproto.Extension{
			{Type: tlsproto.ExtSessionTicket, Data: nil},       // empty-present length attr
			{Type: tlsproto.ExtStatusRequest, Data: []byte{7}}, // unseen status type
			{Type: tlsproto.ExtECPointFormats, Data: []byte{2, 0, 1}},
			{Type: tlsproto.ExtCompressCertificate, Data: []byte{4, 0, 2, 0, 99}}, // brotli + unknown algo
			{Type: tlsproto.ExtRecordSizeLimit, Data: []byte{0x3f, 0xff}},
			{Type: tlsproto.ExtALPN, Data: []byte{0, 6, 2, 'h', '2', 2, 'x', 'y'}},
			{Type: tlsproto.ExtSupportedGroups, Data: []byte{0, 4, 0xfa, 0xfa, 0x00, 0x1d}}, // GREASE group
			{Type: 0xdada, Data: nil},                                                       // GREASE extension type
		}}
	odd.Marshal()

	truncated := &tlsproto.ClientHello{LegacyVersion: tlsproto.VersionTLS12,
		CipherSuites: []uint16{0x1301}, CompressionMethods: []byte{0},
		Extensions: []tlsproto.Extension{
			// Malformed list bodies: length prefix larger than the data.
			{Type: tlsproto.ExtSupportedGroups, Data: []byte{0xff, 0xff, 0x00}},
			{Type: tlsproto.ExtALPN, Data: []byte{0xff}},
		}}
	truncated.Marshal()

	return []*HandshakeInfo{
		{InitPacketSize: 60, TTL: 64, TCPFlags: 0x02, TCPWindow: 1024, TCPMSS: 1460, TCPWScale: -1},
		{InitPacketSize: 66, TTL: 57, TCPFlags: 0xc2, TCPWindow: 65535, TCPMSS: 1400, TCPWScale: 8, TCPSACK: true, Hello: minimal},
		{InitPacketSize: 80, TTL: 128, TCPWScale: -1, Hello: odd},
		{InitPacketSize: 81, TTL: 128, TCPWScale: -1, Hello: truncated},
	}
}

func checkEqual(t *testing.T, enc *Encoder, ce *CompiledEncoder, info *HandshakeInfo, o Options, tag string) {
	t.Helper()
	want := enc.Transform(ExtractWithOptions(info, o))
	got := ce.EncodeInto(nil, info, nil)
	if len(want) != len(got) {
		t.Fatalf("%s: width %d vs %d", tag, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: column %d (%s): compiled %v, reference %v",
				tag, i, enc.Columns()[i].Name, got[i], want[i])
		}
	}
}

func TestCompiledEncoderMatchesTransform(t *testing.T) {
	tcpTrain := genInfos(t, fingerprint.TCP, 1, 2)
	quicTrain := genInfos(t, fingerprint.QUIC, 3, 4)
	// Evaluation handshakes deliberately include draws the vocabularies
	// never saw (fresh seeds) plus the hand-built corner cases.
	tcpEval := append(genInfos(t, fingerprint.TCP, 77), edgeInfos()...)
	quicEval := append(genInfos(t, fingerprint.QUIC, 78), edgeInfos()...)

	fit := func(quic bool, train []*HandshakeInfo, subset []string, o Options) (*Encoder, *CompiledEncoder) {
		t.Helper()
		enc, err := NewEncoder(quic, subset)
		if err != nil {
			t.Fatal(err)
		}
		var samples []*FieldValues
		for _, info := range train {
			samples = append(samples, ExtractWithOptions(info, o))
		}
		enc.Fit(samples)
		ce, err := CompileWithOptions(enc, o)
		if err != nil {
			t.Fatal(err)
		}
		if ce.Width() != enc.Width() {
			t.Fatalf("compiled width %d != encoder width %d", ce.Width(), enc.Width())
		}
		return enc, ce
	}

	for _, tc := range []struct {
		name   string
		quic   bool
		train  []*HandshakeInfo
		eval   []*HandshakeInfo
		subset []string
		opts   Options
	}{
		{name: "tcp", train: tcpTrain, eval: tcpEval},
		{name: "quic", quic: true, train: quicTrain, eval: quicEval},
		// Cross-transport inputs: a QUIC handshake through the TCP schema
		// (and vice versa) must still match the reference path's zeros.
		{name: "tcp-schema-quic-input", train: tcpTrain, eval: quicEval},
		{name: "quic-schema-tcp-input", quic: true, train: quicTrain, eval: tcpEval},
		{name: "tcp-subset", train: tcpTrain, eval: tcpEval,
			subset: []string{"t1", "t11", "m2", "m3", "o3", "o5", "o7", "o12", "o13", "o19"}},
		{name: "quic-subset", quic: true, train: quicTrain, eval: quicEval,
			subset: []string{"t1", "m3", "q1", "q2", "q13", "q17", "q18", "q20"}},
		{name: "tcp-keepgrease", train: tcpTrain, eval: tcpEval, opts: Options{KeepGrease: true}},
		{name: "quic-keepgrease", quic: true, train: quicTrain, eval: quicEval, opts: Options{KeepGrease: true}},
	} {
		enc, ce := fit(tc.quic, tc.train, tc.subset, tc.opts)
		for i, info := range tc.eval {
			checkEqual(t, enc, ce, info, tc.opts, fmt.Sprintf("%s[%d]", tc.name, i))
		}
	}
}

// TestCompiledEncoderSurvivesSerialization pins that compiling a gob
// round-tripped encoder yields the same vectors (the bank-deploy scenario).
func TestCompiledEncoderSurvivesSerialization(t *testing.T) {
	train := genInfos(t, fingerprint.QUIC, 5)
	eval := genInfos(t, fingerprint.QUIC, 79)
	enc, err := NewEncoder(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var samples []*FieldValues
	for _, info := range train {
		samples = append(samples, Extract(info))
	}
	enc.Fit(samples)

	blob, err := enc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Encoder{}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !enc.EquivalentTo(restored) {
		t.Fatal("round-tripped encoder not equivalent")
	}
	ce, err := Compile(restored)
	if err != nil {
		t.Fatal(err)
	}
	for i, info := range eval {
		checkEqual(t, enc, ce, info, Options{}, fmt.Sprintf("roundtrip[%d]", i))
	}
}

// TestEncodeIntoZeroAlloc pins the serving-path contract: with a reused
// vector, a scratch, and pre-parsed QUIC transport parameters, EncodeInto
// performs no allocations.
func TestEncodeIntoZeroAlloc(t *testing.T) {
	for _, quic := range []bool{false, true} {
		tr := fingerprint.TCP
		if quic {
			tr = fingerprint.QUIC
		}
		infos := genInfos(t, tr, 6)
		enc, err := NewEncoder(quic, nil)
		if err != nil {
			t.Fatal(err)
		}
		var samples []*FieldValues
		for _, info := range infos {
			samples = append(samples, Extract(info))
		}
		enc.Fit(samples)
		ce, err := Compile(enc)
		if err != nil {
			t.Fatal(err)
		}

		info := infos[0]
		if quic {
			// The pipeline's assembler pre-parses transport parameters; do
			// the same so the encode stage is measured as deployed.
			e, ok := info.Hello.Extension(tlsproto.ExtQUICTransportParams)
			if !ok {
				t.Fatal("no transport parameters in QUIC hello")
			}
			info.Params, err = quicproto.ParseTransportParameters(e.Data)
			if err != nil {
				t.Fatal(err)
			}
		}
		var sc EncodeScratch
		dst := ce.EncodeInto(nil, info, &sc) // warm scratch capacities
		allocs := testing.AllocsPerRun(200, func() {
			dst = ce.EncodeInto(dst, info, &sc)
		})
		if allocs != 0 {
			t.Errorf("quic=%v: EncodeInto allocates %.1f per call, want 0", quic, allocs)
		}
	}
}
