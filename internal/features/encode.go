package features

import (
	"fmt"
	"sort"
)

// Encoder turns FieldValues into fixed-width numeric vectors for a given
// transport and attribute subset. Fit builds the per-attribute token
// vocabularies from training data (the §4.2.1 "value mapping" dictionaries);
// Transform applies them, mapping unseen tokens to 0.
type Encoder struct {
	Attrs  []Attribute
	vocabs map[string]map[string]int // attribute label -> token -> id (1-based)

	cols []Column
}

// Column describes one expanded vector column.
type Column struct {
	Attr  int    // index into Attrs
	Name  string // e.g. "m3[2]" or "t11"
	Index int    // position within a list attribute, 0 for scalars
}

// NewEncoder builds an encoder over the attributes applicable to the
// transport. Pass a nil subset to use all applicable attributes, or a list
// of Table 2 labels to restrict (for the §4.3.3 cost-subset models).
func NewEncoder(quic bool, subset []string) (*Encoder, error) {
	avail := ForTransport(quic)
	var attrs []Attribute
	if subset == nil {
		attrs = avail
	} else {
		byLabel := map[string]Attribute{}
		for _, a := range avail {
			byLabel[a.Label] = a
		}
		for _, l := range subset {
			a, ok := byLabel[l]
			if !ok {
				return nil, fmt.Errorf("features: attribute %q not applicable", l)
			}
			attrs = append(attrs, a)
		}
	}
	e := &Encoder{Attrs: attrs, vocabs: map[string]map[string]int{}}
	for ai, a := range attrs {
		if a.Kind == List {
			for i := 0; i < a.Width; i++ {
				e.cols = append(e.cols, Column{Attr: ai, Name: fmt.Sprintf("%s[%d]", a.Label, i), Index: i})
			}
		} else {
			e.cols = append(e.cols, Column{Attr: ai, Name: a.Label})
		}
	}
	return e, nil
}

// Columns returns the expanded column metadata.
func (e *Encoder) Columns() []Column { return e.cols }

// Width returns the vector width.
func (e *Encoder) Width() int { return len(e.cols) }

// Fit builds vocabularies from training samples. Tokens are assigned ids in
// sorted order for determinism.
func (e *Encoder) Fit(samples []*FieldValues) {
	tokens := map[string]map[string]bool{}
	add := func(label, tok string) {
		m := tokens[label]
		if m == nil {
			m = map[string]bool{}
			tokens[label] = m
		}
		m[tok] = true
	}
	for _, s := range samples {
		for _, a := range e.Attrs {
			switch a.Kind {
			case Categorical:
				if t, ok := s.Cats[a.Label]; ok {
					add(a.Label, t)
				}
			case List:
				for _, t := range s.Lists[a.Label] {
					add(a.Label, t)
				}
			}
		}
	}
	e.vocabs = map[string]map[string]int{}
	for label, set := range tokens {
		sorted := make([]string, 0, len(set))
		for t := range set {
			sorted = append(sorted, t)
		}
		sort.Strings(sorted)
		vocab := make(map[string]int, len(sorted))
		for i, t := range sorted {
			vocab[t] = i + 1
		}
		e.vocabs[label] = vocab
	}
}

// Transform encodes one sample. Unseen categorical/list tokens map to 0, as
// do absent attributes.
func (e *Encoder) Transform(s *FieldValues) []float64 {
	out := make([]float64, len(e.cols))
	for ci, col := range e.cols {
		a := e.Attrs[col.Attr]
		switch a.Kind {
		case Numerical, Presence, Length:
			out[ci] = s.Nums[a.Label]
		case Categorical:
			if t, ok := s.Cats[a.Label]; ok {
				out[ci] = float64(e.vocabs[a.Label][t])
			}
		case List:
			list := s.Lists[a.Label]
			if col.Index < len(list) {
				out[ci] = float64(e.vocabs[a.Label][list[col.Index]])
			}
		}
	}
	return out
}

// TransformAll encodes a batch.
func (e *Encoder) TransformAll(samples []*FieldValues) [][]float64 {
	out := make([][]float64, len(samples))
	for i, s := range samples {
		out[i] = e.Transform(s)
	}
	return out
}

// EquivalentTo reports whether two fitted encoders produce identical
// vectors for every input: same attribute sequence and identical
// vocabularies. The pipeline uses this to share one compiled encode pass
// across the three per-objective models, which are fitted on the same
// samples and therefore (deterministically) grow the same vocabularies.
func (e *Encoder) EquivalentTo(o *Encoder) bool {
	if o == nil || len(e.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range e.Attrs {
		if e.Attrs[i].Label != o.Attrs[i].Label {
			return false
		}
	}
	if len(e.vocabs) != len(o.vocabs) {
		return false
	}
	for label, v := range e.vocabs {
		ov, ok := o.vocabs[label]
		if !ok || len(v) != len(ov) {
			return false
		}
		for tok, id := range v {
			if ov[tok] != id {
				return false
			}
		}
	}
	return true
}

// VocabSize returns the fitted vocabulary size for an attribute label.
func (e *Encoder) VocabSize(label string) int { return len(e.vocabs[label]) }

// AttrColumns returns the expanded column indices belonging to the given
// attribute label. Used to aggregate per-column importances back to Table 2
// attributes.
func (e *Encoder) AttrColumns(label string) []int {
	var out []int
	for ci, col := range e.cols {
		if e.Attrs[col.Attr].Label == label {
			out = append(out, ci)
		}
	}
	return out
}
