package flowtable

import (
	"testing"
	"time"

	"videoplat/internal/packet"
)

// TestRekeyMovesStateAndCounts pins the basic contract: the value moves to
// the new key, the old key is gone, and only the rekeyed counter moves —
// a migration is not an insert and not an eviction.
func TestRekeyMovesStateAndCounts(t *testing.T) {
	tb := New[int](Config{}, nil)
	tb.Put(key(1), 11, t0)
	if !tb.Rekey(key(1), key(2)) {
		t.Fatal("Rekey failed on a live flow")
	}
	if _, ok := tb.Touch(key(1), t0); ok {
		t.Error("old key still present after Rekey")
	}
	if v, ok := tb.Touch(key(2), t0); !ok || v != 11 {
		t.Errorf("new key = (%d, %v), want (11, true)", v, ok)
	}
	st := tb.Stats()
	if st.Rekeyed != 1 || st.Inserted != 1 || st.Active != 1 || st.Evicted() != 0 {
		t.Errorf("stats = %+v, want 1 rekey, 1 insert, 1 active, 0 evictions", st)
	}
}

// TestRekeyRefusals pins the failure modes: a missing old key and a
// colliding new key both leave the table untouched.
func TestRekeyRefusals(t *testing.T) {
	tb := New[int](Config{}, nil)
	tb.Put(key(1), 1, t0)
	tb.Put(key(2), 2, t0)
	if tb.Rekey(key(9), key(3)) {
		t.Error("Rekey of an absent flow succeeded")
	}
	if tb.Rekey(key(1), key(2)) {
		t.Error("Rekey onto a tracked key succeeded")
	}
	if v, ok := tb.Touch(key(1), t0); !ok || v != 1 {
		t.Errorf("flow 1 disturbed by refused Rekey: (%d, %v)", v, ok)
	}
	if v, ok := tb.Touch(key(2), t0); !ok || v != 2 {
		t.Errorf("flow 2 disturbed by refused Rekey: (%d, %v)", v, ok)
	}
	if st := tb.Stats(); st.Rekeyed != 0 {
		t.Errorf("rekeyed = %d, want 0", st.Rekeyed)
	}
}

// TestRekeyPreservesLRUPosition pins that migration does not refresh a
// flow's LRU slot: flow 1 is the LRU when rekeyed, and must still be the
// cap victim afterwards — Touch refreshes, Rekey must not.
func TestRekeyPreservesLRUPosition(t *testing.T) {
	var victims []packet.FlowKey
	tb := New[int](Config{MaxFlows: 2}, func(k packet.FlowKey, _ int, r Reason) {
		if r != ReasonCap {
			t.Errorf("eviction reason = %s, want cap", r)
		}
		victims = append(victims, k)
	})
	tb.Put(key(1), 1, t0)
	tb.Put(key(2), 2, t0.Add(time.Second)) // MRU: 2, LRU: 1
	if !tb.Rekey(key(1), key(3)) {
		t.Fatal("Rekey failed")
	}
	tb.Put(key(4), 4, t0.Add(2*time.Second)) // cap: must evict the rekeyed LRU
	if len(victims) != 1 || victims[0] != key(3) {
		t.Fatalf("victims = %v, want [%v] (the rekeyed flow, still LRU)", victims, key(3))
	}
}

// TestRekeyPreservesIdleClock pins that migration does not reset the idle
// timeout: the rekeyed flow expires exactly when the original would have.
func TestRekeyPreservesIdleClock(t *testing.T) {
	var victims []packet.FlowKey
	tb := New[int](Config{IdleTimeout: time.Minute}, func(k packet.FlowKey, _ int, r Reason) {
		if r != ReasonIdle {
			t.Errorf("eviction reason = %s, want idle", r)
		}
		victims = append(victims, k)
	})
	tb.Put(key(1), 1, t0)
	if !tb.Rekey(key(1), key(2)) {
		t.Fatal("Rekey failed")
	}
	if n := tb.ExpireIdle(t0.Add(59 * time.Second)); n != 0 {
		t.Fatalf("expired %d flows before the deadline", n)
	}
	if n := tb.ExpireIdle(t0.Add(time.Minute)); n != 1 {
		t.Fatalf("expired %d flows at the deadline, want 1", n)
	}
	if len(victims) != 1 || victims[0] != key(2) {
		t.Fatalf("victims = %v, want [%v] (evicted under the migrated key)", victims, key(2))
	}
}

// TestRekeyChain pins repeated migration: a flow can re-key more than once
// (a mobile client hopping networks), with each hop counted.
func TestRekeyChain(t *testing.T) {
	tb := New[int](Config{}, nil)
	tb.Put(key(1), 7, t0)
	for i := 2; i <= 5; i++ {
		if !tb.Rekey(key(i-1), key(i)) {
			t.Fatalf("hop %d failed", i)
		}
	}
	if v, ok := tb.Touch(key(5), t0); !ok || v != 7 {
		t.Errorf("final key = (%d, %v), want (7, true)", v, ok)
	}
	st := tb.Stats()
	if st.Rekeyed != 4 || st.Inserted != 1 || st.Active != 1 {
		t.Errorf("stats = %+v, want 4 rekeys of 1 inserted flow", st)
	}
}
