// Package flowtable provides a bounded flow-state table for long-running
// packet processors. The batch pipeline can let its flow map grow for the
// lifetime of a finite trace, but a daemon tapping live traffic must bound
// per-flow state: this table caps the number of tracked flows (LRU eviction
// on overflow, the strategy of conntrack-style flow tables) and retires
// flows that have gone idle (no packets for a configurable timeout).
//
// Time is caller-supplied — the table never reads the wall clock — so replay
// of historical traces evicts on trace time exactly as live capture evicts
// on wall time.
//
// The table itself is not safe for concurrent mutation (each pipeline shard
// owns one), but the eviction/occupancy counters in Stats are atomics, so an
// operations endpoint may read them from any goroutine while a shard is
// writing.
package flowtable

import (
	"sync/atomic"
	"time"

	"videoplat/internal/packet"
)

// Reason says why a flow was evicted.
type Reason uint8

// Eviction reasons.
const (
	// ReasonIdle: no packet for at least the idle timeout.
	ReasonIdle Reason = iota
	// ReasonCap: the table was full and this was the least recently used
	// flow.
	ReasonCap
)

// String names the reason.
func (r Reason) String() string {
	if r == ReasonIdle {
		return "idle"
	}
	return "cap"
}

// Config bounds a Table. Zero values mean unbounded/never, which reproduces
// the batch pipeline's accumulate-everything behaviour.
type Config struct {
	// MaxFlows caps the number of tracked flows; inserting into a full
	// table evicts the least recently used flow first. 0 = unbounded.
	MaxFlows int
	// IdleTimeout retires flows that have not seen a packet for at least
	// this long, measured against caller-supplied timestamps. 0 = never.
	IdleTimeout time.Duration
}

// Stats are the table's occupancy and eviction counters. All fields are
// monotonic except Active. Safe to read concurrently via Table.Stats.
type Stats struct {
	Active      uint64 `json:"active"`       // flows currently tracked
	Inserted    uint64 `json:"inserted"`     // total flows ever inserted
	EvictedIdle uint64 `json:"evicted_idle"` // flows evicted by idle timeout
	EvictedCap  uint64 `json:"evicted_cap"`  // flows evicted by the MaxFlows cap
	Rekeyed     uint64 `json:"rekeyed"`      // flows re-keyed by connection migration
}

// Evicted returns the total number of evictions.
func (s Stats) Evicted() uint64 { return s.EvictedIdle + s.EvictedCap }

type entry[V any] struct {
	key        packet.FlowKey
	value      V
	lastSeen   time.Time
	prev, next *entry[V] // LRU list: head = most recent
}

// Table maps canonical flow keys to per-flow state with LRU + idle-timeout
// eviction. The zero value is not usable; create with New.
type Table[V any] struct {
	cfg     Config
	onEvict func(packet.FlowKey, V, Reason)

	entries    map[packet.FlowKey]*entry[V]
	head, tail *entry[V]

	active      atomic.Uint64
	inserted    atomic.Uint64
	evictedIdle atomic.Uint64
	evictedCap  atomic.Uint64
	rekeyed     atomic.Uint64
}

// New returns a Table bounded by cfg. onEvict, if non-nil, is called
// synchronously with each evicted flow's key, state and eviction reason —
// the hook through which final flow telemetry reaches a sink. It is not
// called for entries removed by Delete or dropped by Clear.
func New[V any](cfg Config, onEvict func(packet.FlowKey, V, Reason)) *Table[V] {
	return &Table[V]{
		cfg:     cfg,
		onEvict: onEvict,
		entries: map[packet.FlowKey]*entry[V]{},
	}
}

// Len reports the number of tracked flows.
func (t *Table[V]) Len() int { return len(t.entries) }

// Stats returns a snapshot of the counters. Safe from any goroutine.
func (t *Table[V]) Stats() Stats {
	return Stats{
		Active:      t.active.Load(),
		Inserted:    t.inserted.Load(),
		EvictedIdle: t.evictedIdle.Load(),
		EvictedCap:  t.evictedCap.Load(),
		Rekeyed:     t.rekeyed.Load(),
	}
}

// Rekey moves a flow's state from old to new without disturbing its LRU
// position, idle clock or the eviction counters — the flow is the same
// logical connection observed on a new 5-tuple (QUIC connection migration).
// It fails (returning false, touching nothing) when old is absent or new is
// already tracked; the caller decides whether a colliding new key means a
// ghost flow to merge or a true conflict.
func (t *Table[V]) Rekey(old, new packet.FlowKey) bool {
	e, ok := t.entries[old]
	if !ok {
		return false
	}
	if _, exists := t.entries[new]; exists {
		return false
	}
	delete(t.entries, old)
	e.key = new
	t.entries[new] = e
	t.rekeyed.Add(1)
	return true
}

// Touch looks up a flow and, when present, marks it used at ts (refreshing
// both the LRU position and the idle clock).
func (t *Table[V]) Touch(key packet.FlowKey, ts time.Time) (V, bool) {
	e, ok := t.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	if ts.After(e.lastSeen) {
		e.lastSeen = ts
	}
	t.moveToFront(e)
	return e.value, true
}

// Put inserts a flow seen at ts. If the table is at its MaxFlows cap, the
// least recently used flow is evicted first (with ReasonCap). Inserting an
// existing key overwrites its state and touches it.
func (t *Table[V]) Put(key packet.FlowKey, value V, ts time.Time) {
	if e, ok := t.entries[key]; ok {
		e.value = value
		if ts.After(e.lastSeen) {
			e.lastSeen = ts
		}
		t.moveToFront(e)
		return
	}
	if t.cfg.MaxFlows > 0 {
		for len(t.entries) >= t.cfg.MaxFlows {
			t.evict(t.tail, ReasonCap)
		}
	}
	e := &entry[V]{key: key, value: value, lastSeen: ts}
	t.entries[key] = e
	t.pushFront(e)
	t.inserted.Add(1)
	t.active.Store(uint64(len(t.entries)))
}

// ExpireIdle evicts every flow whose last packet is at least IdleTimeout
// before now, returning how many were evicted. Because the LRU list is
// ordered by last-seen time, the scan stops at the first live flow; a sweep
// costs O(evicted + 1).
func (t *Table[V]) ExpireIdle(now time.Time) int {
	if t.cfg.IdleTimeout <= 0 {
		return 0
	}
	deadline := now.Add(-t.cfg.IdleTimeout)
	n := 0
	for t.tail != nil && !t.tail.lastSeen.After(deadline) {
		t.evict(t.tail, ReasonIdle)
		n++
	}
	return n
}

// Delete removes a flow without invoking the eviction hook, reporting
// whether it was present.
func (t *Table[V]) Delete(key packet.FlowKey) bool {
	e, ok := t.entries[key]
	if !ok {
		return false
	}
	t.unlink(e)
	delete(t.entries, key)
	t.active.Store(uint64(len(t.entries)))
	return true
}

// Clear drops every flow without invoking the eviction hook.
func (t *Table[V]) Clear() {
	t.entries = map[packet.FlowKey]*entry[V]{}
	t.head, t.tail = nil, nil
	t.active.Store(0)
}

// Range calls f for each tracked flow, most recently used first, stopping
// early if f returns false. f must not mutate the table.
func (t *Table[V]) Range(f func(key packet.FlowKey, value V) bool) {
	for e := t.head; e != nil; e = e.next {
		if !f(e.key, e.value) {
			return
		}
	}
}

func (t *Table[V]) evict(e *entry[V], reason Reason) {
	t.unlink(e)
	delete(t.entries, e.key)
	t.active.Store(uint64(len(t.entries)))
	if reason == ReasonIdle {
		t.evictedIdle.Add(1)
	} else {
		t.evictedCap.Add(1)
	}
	if t.onEvict != nil {
		t.onEvict(e.key, e.value, reason)
	}
}

func (t *Table[V]) pushFront(e *entry[V]) {
	e.prev, e.next = nil, t.head
	if t.head != nil {
		t.head.prev = e
	}
	t.head = e
	if t.tail == nil {
		t.tail = e
	}
}

func (t *Table[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		t.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		t.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (t *Table[V]) moveToFront(e *entry[V]) {
	if t.head == e {
		return
	}
	t.unlink(e)
	t.pushFront(e)
}
