package flowtable

import (
	"net/netip"
	"testing"
	"time"

	"videoplat/internal/packet"
)

func key(i int) packet.FlowKey {
	return packet.FlowKey{
		Src:     netip.AddrFrom4([4]byte{192, 168, 1, byte(i)}),
		Dst:     netip.MustParseAddr("203.0.113.10"),
		SrcPort: uint16(50000 + i),
		DstPort: 443,
		Proto:   packet.ProtoTCP,
	}
}

var t0 = time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC)

func TestCapEvictsLRU(t *testing.T) {
	type ev struct {
		k packet.FlowKey
		r Reason
	}
	var evs []ev
	tb := New[int](Config{MaxFlows: 2}, func(k packet.FlowKey, v int, r Reason) {
		evs = append(evs, ev{k, r})
	})
	tb.Put(key(1), 1, t0)
	tb.Put(key(2), 2, t0.Add(time.Second))
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := tb.Touch(key(1), t0.Add(2*time.Second)); !ok {
		t.Fatal("flow 1 missing")
	}
	tb.Put(key(3), 3, t0.Add(3*time.Second))

	if tb.Len() != 2 {
		t.Fatalf("len = %d, want 2", tb.Len())
	}
	if len(evs) != 1 || evs[0].k != key(2) || evs[0].r != ReasonCap {
		t.Fatalf("evictions = %+v, want flow 2 by cap", evs)
	}
	if _, ok := tb.Touch(key(2), t0); ok {
		t.Error("evicted flow 2 still present")
	}
	st := tb.Stats()
	if st.Active != 2 || st.Inserted != 3 || st.EvictedCap != 1 || st.EvictedIdle != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIdleExpiry(t *testing.T) {
	var evicted []packet.FlowKey
	tb := New[string](Config{IdleTimeout: time.Minute}, func(k packet.FlowKey, v string, r Reason) {
		if r != ReasonIdle {
			t.Errorf("reason = %v, want idle", r)
		}
		evicted = append(evicted, k)
	})
	tb.Put(key(1), "a", t0)
	tb.Put(key(2), "b", t0.Add(30*time.Second))

	if n := tb.ExpireIdle(t0.Add(45 * time.Second)); n != 0 {
		t.Fatalf("premature expiry of %d flows", n)
	}
	// 1 is 70s idle, 2 only 40s.
	if n := tb.ExpireIdle(t0.Add(70 * time.Second)); n != 1 {
		t.Fatalf("expired %d flows, want 1", n)
	}
	if len(evicted) != 1 || evicted[0] != key(1) {
		t.Fatalf("evicted = %v, want flow 1", evicted)
	}
	// Touching refreshes the idle clock.
	tb.Touch(key(2), t0.Add(80*time.Second))
	if n := tb.ExpireIdle(t0.Add(100 * time.Second)); n != 0 {
		t.Fatalf("touched flow expired (%d)", n)
	}
	if n := tb.ExpireIdle(t0.Add(141 * time.Second)); n != 1 {
		t.Fatalf("expired %d flows, want 1", n)
	}
	st := tb.Stats()
	if st.EvictedIdle != 2 || st.Evicted() != 2 || st.Active != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	tb := New[int](Config{}, func(packet.FlowKey, int, Reason) {
		t.Error("eviction from unbounded table")
	})
	for i := 0; i < 1000; i++ {
		tb.Put(key(i), i, t0)
	}
	if tb.ExpireIdle(t0.Add(24*time.Hour)) != 0 {
		t.Error("idle expiry with zero timeout")
	}
	if tb.Len() != 1000 {
		t.Errorf("len = %d", tb.Len())
	}
}

func TestRangeMRUOrderAndDelete(t *testing.T) {
	tb := New[int](Config{}, nil)
	for i := 1; i <= 3; i++ {
		tb.Put(key(i), i, t0.Add(time.Duration(i)*time.Second))
	}
	var got []int
	tb.Range(func(k packet.FlowKey, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 3 || got[0] != 3 || got[2] != 1 {
		t.Errorf("range order = %v, want [3 2 1]", got)
	}
	if !tb.Delete(key(2)) || tb.Delete(key(2)) {
		t.Error("delete bookkeeping wrong")
	}
	if tb.Len() != 2 || tb.Stats().Active != 2 {
		t.Errorf("len = %d after delete", tb.Len())
	}
	tb.Clear()
	if tb.Len() != 0 || tb.Stats().Active != 0 {
		t.Error("clear left entries")
	}
	if st := tb.Stats(); st.Evicted() != 0 {
		t.Errorf("delete/clear counted as eviction: %+v", st)
	}
}

func TestPutExistingOverwritesAndTouches(t *testing.T) {
	tb := New[int](Config{MaxFlows: 2, IdleTimeout: time.Minute}, nil)
	tb.Put(key(1), 1, t0)
	tb.Put(key(2), 2, t0.Add(time.Second))
	tb.Put(key(1), 11, t0.Add(2*time.Second)) // refresh, no eviction
	if st := tb.Stats(); st.Inserted != 2 || st.EvictedCap != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if v, ok := tb.Touch(key(1), t0.Add(2*time.Second)); !ok || v != 11 {
		t.Fatalf("value = %d, want 11", v)
	}
	// After the refresh at +2s, flow 1 outlives flow 2.
	tb.ExpireIdle(t0.Add(61*time.Second + 500*time.Millisecond))
	if _, ok := tb.Touch(key(1), t0); !ok {
		t.Error("refreshed flow expired")
	}
	if _, ok := tb.Touch(key(2), t0); ok {
		t.Error("stale flow survived")
	}
}
