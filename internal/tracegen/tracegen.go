// Package tracegen renders fingerprint flow descriptions into packet-level
// traces following the session anatomy of the paper's Fig 2: a management
// flow to the provider's management server followed by one or more content
// flows that carry the video, each opened by a TCP or QUIC + TLS handshake.
//
// It also assembles labeled datasets: the lab dataset with the exact flow
// composition of Table 1 and the open-set dataset of §4.3.2 with
// version-drifted platform behaviour.
package tracegen

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/packet"
	"videoplat/internal/pcap"
	"videoplat/internal/quicproto"
	"videoplat/internal/tlsproto"
)

// Frame is one rendered packet with its offset from the flow start.
type Frame struct {
	Offset         time.Duration
	Data           []byte
	ClientToServer bool
}

// FlowTrace is a rendered video flow: handshake frames plus representative
// payload frames, together with flow-level telemetry totals used by the
// campus workload model.
type FlowTrace struct {
	Label     string
	Provider  fingerprint.Provider
	Transport fingerprint.Transport
	SNI       string
	Frames    []Frame

	// Telemetry ground truth.
	Start      time.Time
	Duration   time.Duration
	TotalBytes int64 // downstream payload volume

	// Flow endpoints (client side first).
	ClientAddr, ServerAddr netip.Addr
	ClientPort, ServerPort uint16

	// Migration ground truth: when Migrated is set the client switched to
	// MigratedAddr:MigratedPort partway through the flow (QUIC connection
	// migration) and every frame after the switch rides the new 5-tuple.
	Migrated     bool
	MigratedAddr netip.Addr
	MigratedPort uint16
}

// MigratedKey returns the post-migration flow key. Only meaningful when
// Migrated is set.
func (ft *FlowTrace) MigratedKey() packet.FlowKey {
	return packet.FlowKey{
		Src: ft.MigratedAddr, Dst: ft.ServerAddr,
		SrcPort: ft.MigratedPort, DstPort: ft.ServerPort,
		Proto: packet.ProtoUDP,
	}
}

// Key returns the canonical flow key of the trace.
func (ft *FlowTrace) Key() packet.FlowKey {
	proto := packet.ProtoTCP
	if ft.Transport == fingerprint.QUIC {
		proto = packet.ProtoUDP
	}
	return packet.FlowKey{
		Src: ft.ClientAddr, Dst: ft.ServerAddr,
		SrcPort: ft.ClientPort, DstPort: ft.ServerPort,
		Proto: proto,
	}
}

// Generator renders flows and datasets deterministically from a seed.
type Generator struct {
	rng *rand.Rand
}

// New returns a Generator seeded deterministically.
func New(seed uint64) *Generator {
	return &Generator{rng: rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))}
}

// serverAddrFor gives each provider a stable, documentation-range server
// address so flows are visually attributable in PCAPs.
func serverAddrFor(prov fingerprint.Provider) netip.Addr {
	switch prov {
	case fingerprint.YouTube:
		return netip.MustParseAddr("203.0.113.10")
	case fingerprint.Netflix:
		return netip.MustParseAddr("203.0.113.20")
	case fingerprint.Disney:
		return netip.MustParseAddr("203.0.113.30")
	default:
		return netip.MustParseAddr("203.0.113.40")
	}
}

// ProviderOfAddr is the inverse of the synthetic address plan: given a
// server address it returns the provider hosted there. It stands in for the
// IP-to-AS hint an ISP deployment would derive from BGP or CDN prefix lists,
// and feeds degraded classification when the hello is encrypted or absent.
func ProviderOfAddr(addr netip.Addr) (fingerprint.Provider, bool) {
	for _, prov := range fingerprint.AllProviders() {
		if serverAddrFor(prov) == addr {
			return prov, true
		}
	}
	return 0, false
}

// FlowSpec controls payload shape; zero values draw lab-like defaults.
type FlowSpec struct {
	Start      time.Time
	Duration   time.Duration
	TotalBytes int64
	Options    fingerprint.Options
	// PayloadFrames caps how many representative payload packets are
	// rendered (handshake frames are always complete). Default 4.
	PayloadFrames int
	// MigrateMidHandshake splits the ClientHello across two Initial
	// packets and migrates the client tuple between them, so the tap sees
	// the handshake finish on a different 5-tuple than it started on.
	// Only meaningful with Options.Migration on a QUIC flow; the default
	// migrates mid-stream, after the handshake completed.
	MigrateMidHandshake bool
}

// Flow renders one labeled video flow.
func (g *Generator) Flow(label string, prov fingerprint.Provider, tr fingerprint.Transport, spec FlowSpec) (*FlowTrace, error) {
	fp, err := fingerprint.Generate(g.rng, label, prov, tr, spec.Options)
	if err != nil {
		return nil, err
	}
	if spec.Duration == 0 {
		spec.Duration = time.Duration(60+g.rng.IntN(120)) * time.Second
	}
	if spec.TotalBytes == 0 {
		// ~1-8 Mbps for the drawn duration
		mbps := 1 + g.rng.Float64()*7
		spec.TotalBytes = int64(mbps * 1e6 / 8 * spec.Duration.Seconds())
	}
	if spec.PayloadFrames == 0 {
		spec.PayloadFrames = 4
	}
	if spec.Start.IsZero() {
		spec.Start = time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	}

	ft := &FlowTrace{
		Label: label, Provider: prov, Transport: tr, SNI: fp.SNI,
		Start: spec.Start, Duration: spec.Duration, TotalBytes: spec.TotalBytes,
		ClientAddr: netip.AddrFrom4([4]byte{192, 168, 1, byte(2 + g.rng.IntN(250))}),
		ServerAddr: serverAddrFor(prov),
		ClientPort: uint16(49152 + g.rng.IntN(16000)),
		ServerPort: 443,
	}

	// The ISP observes TTLs after a few campus/home hops.
	hops := uint8(1 + g.rng.IntN(3))
	obsTTL := fp.TTL - hops

	if tr == fingerprint.TCP {
		g.renderTCP(ft, fp, obsTTL, spec)
	} else {
		if err := g.renderQUIC(ft, fp, obsTTL, spec); err != nil {
			return nil, err
		}
	}
	return ft, nil
}

func (g *Generator) ipTemplate(ft *FlowTrace, ttl uint8, c2s bool) (packet.IPv4, packet.Ethernet) {
	ip := packet.IPv4{TTL: ttl, Protocol: packet.ProtoTCP,
		Src: ft.ClientAddr, Dst: ft.ServerAddr, ID: uint16(g.rng.UintN(65536))}
	if !c2s {
		ip.Src, ip.Dst = ft.ServerAddr, ft.ClientAddr
		ip.TTL = 57 // server-side TTL as seen at the tap
	}
	return ip, packet.Ethernet{EtherType: packet.EtherTypeIPv4}
}

func (g *Generator) appendFrame(ft *FlowTrace, off time.Duration, c2s bool, ttl uint8, proto uint8, segment []byte) {
	ip, eth := g.ipTemplate(ft, ttl, c2s)
	ip.Protocol = proto
	frame := eth.Append(nil, ip.Append(nil, segment))
	ft.Frames = append(ft.Frames, Frame{Offset: off, Data: frame, ClientToServer: c2s})
}

// renderTCP renders SYN, SYN-ACK, ACK, ClientHello, a server flight and a
// few payload frames.
func (g *Generator) renderTCP(ft *FlowTrace, fp *fingerprint.Flow, ttl uint8, spec FlowSpec) {
	mkOpts := func(syn bool) []packet.TCPOption {
		var opts []packet.TCPOption
		if !syn {
			if fp.Timestamps {
				tsVal := make([]byte, 8)
				opts = append(opts, packet.TCPOption{Kind: packet.OptNOP},
					packet.TCPOption{Kind: packet.OptNOP},
					packet.TCPOption{Kind: packet.OptTimestamps, Data: tsVal})
			}
			return opts
		}
		opts = append(opts, packet.TCPOption{Kind: packet.OptMSS,
			Data: []byte{byte(fp.MSS >> 8), byte(fp.MSS)}})
		if fp.SACK {
			opts = append(opts, packet.TCPOption{Kind: packet.OptNOP},
				packet.TCPOption{Kind: packet.OptNOP},
				packet.TCPOption{Kind: packet.OptSACKPermitted})
		}
		if fp.Timestamps {
			tsVal := make([]byte, 8)
			opts = append(opts, packet.TCPOption{Kind: packet.OptTimestamps, Data: tsVal})
		}
		if fp.WScale >= 0 {
			opts = append(opts, packet.TCPOption{Kind: packet.OptNOP},
				packet.TCPOption{Kind: packet.OptWindowScale, Data: []byte{byte(fp.WScale)}})
		}
		return opts
	}

	clientSeq := g.rng.Uint32()
	serverSeq := g.rng.Uint32()

	synFlags := packet.FlagSYN
	if fp.ECN {
		synFlags |= packet.FlagECE | packet.FlagCWR
	}
	syn := packet.TCP{SrcPort: ft.ClientPort, DstPort: ft.ServerPort,
		Seq: clientSeq, Flags: synFlags, Window: fp.Window, Options: mkOpts(true)}
	g.appendFrame(ft, 0, true, ttl, packet.ProtoTCP,
		syn.Append(nil, nil, ft.ClientAddr, ft.ServerAddr))

	synAck := packet.TCP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort,
		Seq: serverSeq, Ack: clientSeq + 1, Flags: packet.FlagSYN | packet.FlagACK,
		Window: 65160, Options: mkOpts(true)}
	g.appendFrame(ft, 12*time.Millisecond, false, 0, packet.ProtoTCP,
		synAck.Append(nil, nil, ft.ServerAddr, ft.ClientAddr))

	ack := packet.TCP{SrcPort: ft.ClientPort, DstPort: ft.ServerPort,
		Seq: clientSeq + 1, Ack: serverSeq + 1, Flags: packet.FlagACK,
		Window: fp.Window, Options: mkOpts(false)}
	g.appendFrame(ft, 13*time.Millisecond, true, ttl, packet.ProtoTCP,
		ack.Append(nil, nil, ft.ClientAddr, ft.ServerAddr))

	chloRecord := fp.Hello.MarshalRecord()
	chlo := packet.TCP{SrcPort: ft.ClientPort, DstPort: ft.ServerPort,
		Seq: clientSeq + 1, Ack: serverSeq + 1, Flags: packet.FlagACK | packet.FlagPSH,
		Window: fp.Window, Options: mkOpts(false)}
	g.appendFrame(ft, 14*time.Millisecond, true, ttl, packet.ProtoTCP,
		chlo.Append(nil, chloRecord, ft.ClientAddr, ft.ServerAddr))

	// Server flight (ServerHello + encrypted extensions, abstracted).
	sh := packet.TCP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort,
		Seq: serverSeq + 1, Ack: clientSeq + 1 + uint32(len(chloRecord)),
		Flags: packet.FlagACK | packet.FlagPSH, Window: 65160, Options: mkOpts(false)}
	g.appendFrame(ft, 26*time.Millisecond, false, 0, packet.ProtoTCP,
		sh.Append(nil, make([]byte, 1200), ft.ServerAddr, ft.ClientAddr))

	g.renderPayload(ft, spec, packet.ProtoTCP, ttl)
}

// randomCID draws an n-byte connection ID.
func (g *Generator) randomCID(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(g.rng.UintN(256))
	}
	return b
}

// longHeaderPacket builds a structurally valid long-header packet of the
// given type: readable first byte, version and connection IDs, followed by
// an opaque (random) body. This is exactly what an on-path observer can and
// cannot see of a server flight, a 0-RTT packet or a Handshake packet.
func (g *Generator) longHeaderPacket(typ uint8, dcid, scid []byte, size int) []byte {
	buf := make([]byte, 0, size)
	buf = append(buf, 0xc0|typ<<4|byte(g.rng.UintN(16)))
	buf = append(buf, 0, 0, 0, 1) // version 1
	buf = append(buf, byte(len(dcid)))
	buf = append(buf, dcid...)
	buf = append(buf, byte(len(scid)))
	buf = append(buf, scid...)
	for len(buf) < size {
		buf = append(buf, byte(g.rng.UintN(256)))
	}
	return buf
}

// shortHeaderPacket builds a 1-RTT short-header packet: fixed bit, random
// spin/key bits, the destination CID (whose length is not on the wire), and
// an opaque body.
func (g *Generator) shortHeaderPacket(dcid []byte, size int) []byte {
	buf := make([]byte, 0, size)
	buf = append(buf, 0x40|byte(g.rng.UintN(0x40)))
	buf = append(buf, dcid...)
	for len(buf) < size {
		buf = append(buf, byte(g.rng.UintN(256)))
	}
	return buf
}

// appendMigratedFrame renders a frame on the post-migration client tuple.
func (g *Generator) appendMigratedFrame(ft *FlowTrace, off time.Duration, c2s bool, ttl uint8, segment []byte) {
	ip := packet.IPv4{TTL: ttl, Protocol: packet.ProtoUDP,
		Src: ft.MigratedAddr, Dst: ft.ServerAddr, ID: uint16(g.rng.UintN(65536))}
	if !c2s {
		ip.Src, ip.Dst = ft.ServerAddr, ft.MigratedAddr
		ip.TTL = 57
	}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	frame := eth.Append(nil, ip.Append(nil, segment))
	ft.Frames = append(ft.Frames, Frame{Offset: off, Data: frame, ClientToServer: c2s})
}

// renderQUIC renders the client Initial (carrying the ClientHello in a
// CRYPTO frame), a server response datagram and payload frames. The
// adversarial Options knobs reshape the handshake: ZeroRTT replaces the
// Initial with opaque early-data packets, and Migration moves the client to
// a new 5-tuple either between the two halves of a split hello
// (MigrateMidHandshake) or after the handshake completed.
func (g *Generator) renderQUIC(ft *FlowTrace, fp *fingerprint.Flow, ttl uint8, spec FlowSpec) error {
	// The server's chosen CID, which post-handshake client packets carry as
	// their destination. Observable in the server's long-header flight.
	serverCID := g.randomCID(8)
	if spec.Options.Migration {
		ft.Migrated = true
		// A path change typically lands the client on a different access
		// network (say WiFi to cellular), so draw a fresh address block.
		ft.MigratedAddr = netip.AddrFrom4([4]byte{10, 20, 0, byte(2 + g.rng.IntN(250))})
		ft.MigratedPort = uint16(49152 + g.rng.IntN(16000))
	}
	if spec.Options.ZeroRTT {
		return g.renderQUICZeroRTT(ft, fp, serverCID, ttl, spec)
	}

	hello := fp.Hello.Marshal()
	udp := packet.UDP{SrcPort: ft.ClientPort, DstPort: ft.ServerPort}
	splitHandshake := ft.Migrated && spec.MigrateMidHandshake
	if splitHandshake {
		// Hello split across two Initials; the path changes between them,
		// so the second CRYPTO fragment arrives from the migrated tuple and
		// only the connection IDs tie the halves together.
		k := len(hello) / 2
		first := &quicproto.Initial{Version: quicproto.Version1,
			DCID: fp.DCID, SCID: fp.SCID, CryptoData: hello[:k]}
		dg1, err := first.Seal(0)
		if err != nil {
			return fmt.Errorf("tracegen: sealing split initial: %w", err)
		}
		g.appendFrame(ft, 0, true, ttl, packet.ProtoUDP,
			udp.Append(nil, dg1, ft.ClientAddr, ft.ServerAddr))

		second := &quicproto.Initial{Version: quicproto.Version1,
			DCID: fp.DCID, SCID: fp.SCID, PacketNumber: 1,
			CryptoOffset: uint64(k), CryptoData: hello[k:]}
		dg2, err := second.Seal(0)
		if err != nil {
			return fmt.Errorf("tracegen: sealing split initial: %w", err)
		}
		migUDP := packet.UDP{SrcPort: ft.MigratedPort, DstPort: ft.ServerPort}
		g.appendMigratedFrame(ft, 2*time.Millisecond, true, ttl,
			migUDP.Append(nil, dg2, ft.MigratedAddr, ft.ServerAddr))
	} else {
		initial := &quicproto.Initial{
			Version:    quicproto.Version1,
			DCID:       fp.DCID,
			SCID:       fp.SCID,
			CryptoData: hello,
		}
		datagram, err := initial.Seal(fp.QUICTargetSize)
		if err != nil {
			return fmt.Errorf("tracegen: sealing initial: %w", err)
		}
		g.appendFrame(ft, 0, true, ttl, packet.ProtoUDP,
			udp.Append(nil, datagram, ft.ClientAddr, ft.ServerAddr))
	}

	// Server Initial+Handshake flight: opaque body behind a readable
	// long-header prefix that echoes the client's SCID and announces the
	// server's CID.
	resp := g.longHeaderPacket(quicproto.TypeHandshake, fp.SCID, serverCID, 1200)
	respUDP := packet.UDP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort}
	if splitHandshake {
		// The server replies to wherever the handshake finished — the
		// migrated tuple, port included.
		respUDP.DstPort = ft.MigratedPort
		g.appendMigratedFrame(ft, 14*time.Millisecond, false, 0,
			respUDP.Append(nil, resp, ft.ServerAddr, ft.MigratedAddr))
	} else {
		g.appendFrame(ft, 14*time.Millisecond, false, 0, packet.ProtoUDP,
			respUDP.Append(nil, resp, ft.ServerAddr, ft.ClientAddr))
	}

	if ft.Migrated && !splitHandshake {
		// Mid-stream migration: the first packet on the new path is a
		// client short header carrying the server's CID — the only wire
		// evidence linking the tuples.
		seg := g.shortHeaderPacket(serverCID, 160)
		migUDP := packet.UDP{SrcPort: ft.MigratedPort, DstPort: ft.ServerPort}
		g.appendMigratedFrame(ft, 40*time.Millisecond, true, ttl,
			migUDP.Append(nil, seg, ft.MigratedAddr, ft.ServerAddr))
	}

	g.renderPayloadQUIC(ft, fp.SCID, spec)
	return nil
}

// renderQUICZeroRTT renders a session-resumption flow: the client sends
// 0-RTT early-data packets under keys from a previous session, so no
// ClientHello ever crosses the tap. Everything past the long-header CIDs is
// opaque.
func (g *Generator) renderQUICZeroRTT(ft *FlowTrace, fp *fingerprint.Flow, serverCID []byte, ttl uint8, spec FlowSpec) error {
	udp := packet.UDP{SrcPort: ft.ClientPort, DstPort: ft.ServerPort}
	for i := 0; i < 2; i++ {
		early := g.longHeaderPacket(quicproto.Type0RTT, fp.DCID, fp.SCID, fp.QUICTargetSize)
		g.appendFrame(ft, time.Duration(i)*time.Millisecond, true, ttl, packet.ProtoUDP,
			udp.Append(nil, early, ft.ClientAddr, ft.ServerAddr))
	}

	resp := g.longHeaderPacket(quicproto.TypeHandshake, fp.SCID, serverCID, 1200)
	respUDP := packet.UDP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort}
	g.appendFrame(ft, 14*time.Millisecond, false, 0, packet.ProtoUDP,
		respUDP.Append(nil, resp, ft.ServerAddr, ft.ClientAddr))

	// The client's switch to short headers confirms no fresh handshake is
	// coming: the resumption either completed or was rejected, and either
	// way the tap never saw a hello.
	seg := g.shortHeaderPacket(serverCID, 160)
	if ft.Migrated {
		migUDP := packet.UDP{SrcPort: ft.MigratedPort, DstPort: ft.ServerPort}
		g.appendMigratedFrame(ft, 40*time.Millisecond, true, ttl,
			migUDP.Append(nil, seg, ft.MigratedAddr, ft.ServerAddr))
	} else {
		g.appendFrame(ft, 16*time.Millisecond, true, ttl, packet.ProtoUDP,
			udp.Append(nil, seg, ft.ClientAddr, ft.ServerAddr))
	}

	g.renderPayloadQUIC(ft, fp.SCID, spec)
	return nil
}

// renderPayload adds a few representative TCP application-data frames
// spread over the flow duration.
func (g *Generator) renderPayload(ft *FlowTrace, spec FlowSpec, proto uint8, ttl uint8) {
	n := spec.PayloadFrames
	for i := 0; i < n; i++ {
		off := 50*time.Millisecond + time.Duration(float64(spec.Duration)*float64(i+1)/float64(n+1))
		size := 1200 + g.rng.IntN(200)
		body := make([]byte, size)
		tcp := packet.TCP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort,
			Seq: g.rng.Uint32(), Ack: g.rng.Uint32(), Flags: packet.FlagACK,
			Window: 65160}
		g.appendFrame(ft, off, false, 0, proto,
			tcp.Append(nil, body, ft.ServerAddr, ft.ClientAddr))
	}
}

// renderPayloadQUIC adds representative server→client short-header frames
// carrying the client's CID as destination. On migrated flows the frames
// follow the client to its post-migration tuple.
func (g *Generator) renderPayloadQUIC(ft *FlowTrace, clientCID []byte, spec FlowSpec) {
	n := spec.PayloadFrames
	for i := 0; i < n; i++ {
		off := 50*time.Millisecond + time.Duration(float64(spec.Duration)*float64(i+1)/float64(n+1))
		size := 1200 + g.rng.IntN(200)
		body := g.shortHeaderPacket(clientCID, size)
		if ft.Migrated {
			udp := packet.UDP{SrcPort: ft.ServerPort, DstPort: ft.MigratedPort}
			g.appendMigratedFrame(ft, off, false, 0,
				udp.Append(nil, body, ft.ServerAddr, ft.MigratedAddr))
		} else {
			udp := packet.UDP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort}
			g.appendFrame(ft, off, false, 0, packet.ProtoUDP,
				udp.Append(nil, body, ft.ServerAddr, ft.ClientAddr))
		}
	}
}

// Session renders a full Fig 2 video session: one management flow to the
// provider's front-end plus 1–3 content flows.
func (g *Generator) Session(label string, prov fingerprint.Provider, opts fingerprint.Options) ([]*FlowTrace, error) {
	var flows []*FlowTrace
	mgmtOpts := opts
	mgmtOpts.ManagementFlow = true
	mgmt, err := g.Flow(label, prov, fingerprint.TCP, FlowSpec{
		Duration: 5 * time.Second, TotalBytes: 200 << 10, Options: mgmtOpts})
	if err != nil {
		return nil, err
	}
	flows = append(flows, mgmt)

	tr := fingerprint.TCP
	if fingerprint.SupportsQUIC(label, prov) && g.rng.Float64() < 0.5 {
		tr = fingerprint.QUIC
	}
	for i, n := 0, 1+g.rng.IntN(3); i < n; i++ {
		f, err := g.Flow(label, prov, tr, FlowSpec{Options: opts})
		if err != nil {
			return nil, err
		}
		flows = append(flows, f)
	}
	return flows, nil
}

// WritePCAP writes the traces' frames, merged in timestamp order, as a
// libpcap file.
func WritePCAP(w io.Writer, traces []*FlowTrace) error {
	pw, err := pcap.NewWriter(w, 0)
	if err != nil {
		return err
	}
	type ev struct {
		ts   time.Time
		data []byte
	}
	var evs []ev
	for _, ft := range traces {
		for _, fr := range ft.Frames {
			evs = append(evs, ev{ft.Start.Add(fr.Offset), fr.Data})
		}
	}
	// insertion sort by timestamp (trace lists are mostly ordered)
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].ts.Before(evs[j-1].ts); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	for _, e := range evs {
		if err := pw.WritePacket(e.ts, e.data); err != nil {
			return err
		}
	}
	return nil
}

// SNIOf extracts the ClientHello SNI from a trace's first client frame, for
// tests that validate rendering.
func SNIOf(ft *FlowTrace) (string, error) {
	var p packet.Parser
	var out packet.Parsed
	for _, fr := range ft.Frames {
		if !fr.ClientToServer {
			continue
		}
		if err := p.Parse(fr.Data, &out); err != nil {
			return "", err
		}
		switch {
		case out.Has(packet.LayerTCP) && len(out.Payload) > 0:
			ch, err := tlsproto.ParseRecord(out.Payload)
			if err != nil {
				continue
			}
			return ch.ServerName(), nil
		case out.Has(packet.LayerUDP) && quicproto.IsLongHeader(out.Payload):
			init, err := quicproto.ParseInitial(out.Payload)
			if err != nil {
				continue
			}
			ch, err := tlsproto.Parse(init.CryptoData)
			if err != nil {
				continue
			}
			return ch.ServerName(), nil
		}
	}
	return "", fmt.Errorf("tracegen: no ClientHello found")
}
