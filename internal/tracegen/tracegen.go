// Package tracegen renders fingerprint flow descriptions into packet-level
// traces following the session anatomy of the paper's Fig 2: a management
// flow to the provider's management server followed by one or more content
// flows that carry the video, each opened by a TCP or QUIC + TLS handshake.
//
// It also assembles labeled datasets: the lab dataset with the exact flow
// composition of Table 1 and the open-set dataset of §4.3.2 with
// version-drifted platform behaviour.
package tracegen

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/packet"
	"videoplat/internal/pcap"
	"videoplat/internal/quicproto"
	"videoplat/internal/tlsproto"
)

// Frame is one rendered packet with its offset from the flow start.
type Frame struct {
	Offset         time.Duration
	Data           []byte
	ClientToServer bool
}

// FlowTrace is a rendered video flow: handshake frames plus representative
// payload frames, together with flow-level telemetry totals used by the
// campus workload model.
type FlowTrace struct {
	Label     string
	Provider  fingerprint.Provider
	Transport fingerprint.Transport
	SNI       string
	Frames    []Frame

	// Telemetry ground truth.
	Start      time.Time
	Duration   time.Duration
	TotalBytes int64 // downstream payload volume

	// Flow endpoints (client side first).
	ClientAddr, ServerAddr netip.Addr
	ClientPort, ServerPort uint16
}

// Key returns the canonical flow key of the trace.
func (ft *FlowTrace) Key() packet.FlowKey {
	proto := packet.ProtoTCP
	if ft.Transport == fingerprint.QUIC {
		proto = packet.ProtoUDP
	}
	return packet.FlowKey{
		Src: ft.ClientAddr, Dst: ft.ServerAddr,
		SrcPort: ft.ClientPort, DstPort: ft.ServerPort,
		Proto: proto,
	}
}

// Generator renders flows and datasets deterministically from a seed.
type Generator struct {
	rng *rand.Rand
}

// New returns a Generator seeded deterministically.
func New(seed uint64) *Generator {
	return &Generator{rng: rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))}
}

// serverAddrFor gives each provider a stable, documentation-range server
// address so flows are visually attributable in PCAPs.
func serverAddrFor(prov fingerprint.Provider) netip.Addr {
	switch prov {
	case fingerprint.YouTube:
		return netip.MustParseAddr("203.0.113.10")
	case fingerprint.Netflix:
		return netip.MustParseAddr("203.0.113.20")
	case fingerprint.Disney:
		return netip.MustParseAddr("203.0.113.30")
	default:
		return netip.MustParseAddr("203.0.113.40")
	}
}

// FlowSpec controls payload shape; zero values draw lab-like defaults.
type FlowSpec struct {
	Start      time.Time
	Duration   time.Duration
	TotalBytes int64
	Options    fingerprint.Options
	// PayloadFrames caps how many representative payload packets are
	// rendered (handshake frames are always complete). Default 4.
	PayloadFrames int
}

// Flow renders one labeled video flow.
func (g *Generator) Flow(label string, prov fingerprint.Provider, tr fingerprint.Transport, spec FlowSpec) (*FlowTrace, error) {
	fp, err := fingerprint.Generate(g.rng, label, prov, tr, spec.Options)
	if err != nil {
		return nil, err
	}
	if spec.Duration == 0 {
		spec.Duration = time.Duration(60+g.rng.IntN(120)) * time.Second
	}
	if spec.TotalBytes == 0 {
		// ~1-8 Mbps for the drawn duration
		mbps := 1 + g.rng.Float64()*7
		spec.TotalBytes = int64(mbps * 1e6 / 8 * spec.Duration.Seconds())
	}
	if spec.PayloadFrames == 0 {
		spec.PayloadFrames = 4
	}
	if spec.Start.IsZero() {
		spec.Start = time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	}

	ft := &FlowTrace{
		Label: label, Provider: prov, Transport: tr, SNI: fp.SNI,
		Start: spec.Start, Duration: spec.Duration, TotalBytes: spec.TotalBytes,
		ClientAddr: netip.AddrFrom4([4]byte{192, 168, 1, byte(2 + g.rng.IntN(250))}),
		ServerAddr: serverAddrFor(prov),
		ClientPort: uint16(49152 + g.rng.IntN(16000)),
		ServerPort: 443,
	}

	// The ISP observes TTLs after a few campus/home hops.
	hops := uint8(1 + g.rng.IntN(3))
	obsTTL := fp.TTL - hops

	if tr == fingerprint.TCP {
		g.renderTCP(ft, fp, obsTTL, spec)
	} else {
		if err := g.renderQUIC(ft, fp, obsTTL, spec); err != nil {
			return nil, err
		}
	}
	return ft, nil
}

func (g *Generator) ipTemplate(ft *FlowTrace, ttl uint8, c2s bool) (packet.IPv4, packet.Ethernet) {
	ip := packet.IPv4{TTL: ttl, Protocol: packet.ProtoTCP,
		Src: ft.ClientAddr, Dst: ft.ServerAddr, ID: uint16(g.rng.UintN(65536))}
	if !c2s {
		ip.Src, ip.Dst = ft.ServerAddr, ft.ClientAddr
		ip.TTL = 57 // server-side TTL as seen at the tap
	}
	return ip, packet.Ethernet{EtherType: packet.EtherTypeIPv4}
}

func (g *Generator) appendFrame(ft *FlowTrace, off time.Duration, c2s bool, ttl uint8, proto uint8, segment []byte) {
	ip, eth := g.ipTemplate(ft, ttl, c2s)
	ip.Protocol = proto
	frame := eth.Append(nil, ip.Append(nil, segment))
	ft.Frames = append(ft.Frames, Frame{Offset: off, Data: frame, ClientToServer: c2s})
}

// renderTCP renders SYN, SYN-ACK, ACK, ClientHello, a server flight and a
// few payload frames.
func (g *Generator) renderTCP(ft *FlowTrace, fp *fingerprint.Flow, ttl uint8, spec FlowSpec) {
	mkOpts := func(syn bool) []packet.TCPOption {
		var opts []packet.TCPOption
		if !syn {
			if fp.Timestamps {
				tsVal := make([]byte, 8)
				opts = append(opts, packet.TCPOption{Kind: packet.OptNOP},
					packet.TCPOption{Kind: packet.OptNOP},
					packet.TCPOption{Kind: packet.OptTimestamps, Data: tsVal})
			}
			return opts
		}
		opts = append(opts, packet.TCPOption{Kind: packet.OptMSS,
			Data: []byte{byte(fp.MSS >> 8), byte(fp.MSS)}})
		if fp.SACK {
			opts = append(opts, packet.TCPOption{Kind: packet.OptNOP},
				packet.TCPOption{Kind: packet.OptNOP},
				packet.TCPOption{Kind: packet.OptSACKPermitted})
		}
		if fp.Timestamps {
			tsVal := make([]byte, 8)
			opts = append(opts, packet.TCPOption{Kind: packet.OptTimestamps, Data: tsVal})
		}
		if fp.WScale >= 0 {
			opts = append(opts, packet.TCPOption{Kind: packet.OptNOP},
				packet.TCPOption{Kind: packet.OptWindowScale, Data: []byte{byte(fp.WScale)}})
		}
		return opts
	}

	clientSeq := g.rng.Uint32()
	serverSeq := g.rng.Uint32()

	synFlags := packet.FlagSYN
	if fp.ECN {
		synFlags |= packet.FlagECE | packet.FlagCWR
	}
	syn := packet.TCP{SrcPort: ft.ClientPort, DstPort: ft.ServerPort,
		Seq: clientSeq, Flags: synFlags, Window: fp.Window, Options: mkOpts(true)}
	g.appendFrame(ft, 0, true, ttl, packet.ProtoTCP,
		syn.Append(nil, nil, ft.ClientAddr, ft.ServerAddr))

	synAck := packet.TCP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort,
		Seq: serverSeq, Ack: clientSeq + 1, Flags: packet.FlagSYN | packet.FlagACK,
		Window: 65160, Options: mkOpts(true)}
	g.appendFrame(ft, 12*time.Millisecond, false, 0, packet.ProtoTCP,
		synAck.Append(nil, nil, ft.ServerAddr, ft.ClientAddr))

	ack := packet.TCP{SrcPort: ft.ClientPort, DstPort: ft.ServerPort,
		Seq: clientSeq + 1, Ack: serverSeq + 1, Flags: packet.FlagACK,
		Window: fp.Window, Options: mkOpts(false)}
	g.appendFrame(ft, 13*time.Millisecond, true, ttl, packet.ProtoTCP,
		ack.Append(nil, nil, ft.ClientAddr, ft.ServerAddr))

	chloRecord := fp.Hello.MarshalRecord()
	chlo := packet.TCP{SrcPort: ft.ClientPort, DstPort: ft.ServerPort,
		Seq: clientSeq + 1, Ack: serverSeq + 1, Flags: packet.FlagACK | packet.FlagPSH,
		Window: fp.Window, Options: mkOpts(false)}
	g.appendFrame(ft, 14*time.Millisecond, true, ttl, packet.ProtoTCP,
		chlo.Append(nil, chloRecord, ft.ClientAddr, ft.ServerAddr))

	// Server flight (ServerHello + encrypted extensions, abstracted).
	sh := packet.TCP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort,
		Seq: serverSeq + 1, Ack: clientSeq + 1 + uint32(len(chloRecord)),
		Flags: packet.FlagACK | packet.FlagPSH, Window: 65160, Options: mkOpts(false)}
	g.appendFrame(ft, 26*time.Millisecond, false, 0, packet.ProtoTCP,
		sh.Append(nil, make([]byte, 1200), ft.ServerAddr, ft.ClientAddr))

	g.renderPayload(ft, spec, packet.ProtoTCP, ttl)
}

// renderQUIC renders the client Initial (carrying the ClientHello in a
// CRYPTO frame), a server response datagram and payload frames.
func (g *Generator) renderQUIC(ft *FlowTrace, fp *fingerprint.Flow, ttl uint8, spec FlowSpec) error {
	initial := &quicproto.Initial{
		Version:    quicproto.Version1,
		DCID:       fp.DCID,
		SCID:       fp.SCID,
		CryptoData: fp.Hello.Marshal(),
	}
	datagram, err := initial.Seal(fp.QUICTargetSize)
	if err != nil {
		return fmt.Errorf("tracegen: sealing initial: %w", err)
	}
	udp := packet.UDP{SrcPort: ft.ClientPort, DstPort: ft.ServerPort}
	g.appendFrame(ft, 0, true, ttl, packet.ProtoUDP,
		udp.Append(nil, datagram, ft.ClientAddr, ft.ServerAddr))

	// Server Initial+Handshake datagram (opaque to the tap; random bytes
	// with a long-header first byte).
	resp := make([]byte, 1200)
	for i := range resp {
		resp[i] = byte(g.rng.UintN(256))
	}
	resp[0] = 0xc0 | (resp[0] & 0x0f)
	respUDP := packet.UDP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort}
	g.appendFrame(ft, 14*time.Millisecond, false, 0, packet.ProtoUDP,
		respUDP.Append(nil, resp, ft.ServerAddr, ft.ClientAddr))

	g.renderPayload(ft, spec, packet.ProtoUDP, ttl)
	return nil
}

// renderPayload adds a few representative (short-header/application-data)
// payload frames spread over the flow duration.
func (g *Generator) renderPayload(ft *FlowTrace, spec FlowSpec, proto uint8, ttl uint8) {
	n := spec.PayloadFrames
	for i := 0; i < n; i++ {
		off := 50*time.Millisecond + time.Duration(float64(spec.Duration)*float64(i+1)/float64(n+1))
		size := 1200 + g.rng.IntN(200)
		body := make([]byte, size)
		if proto == packet.ProtoUDP {
			body[0] = 0x40 | byte(g.rng.UintN(0x30)) // QUIC short header
			udp := packet.UDP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort}
			g.appendFrame(ft, off, false, 0, proto,
				udp.Append(nil, body, ft.ServerAddr, ft.ClientAddr))
		} else {
			tcp := packet.TCP{SrcPort: ft.ServerPort, DstPort: ft.ClientPort,
				Seq: g.rng.Uint32(), Ack: g.rng.Uint32(), Flags: packet.FlagACK,
				Window: 65160}
			g.appendFrame(ft, off, false, 0, proto,
				tcp.Append(nil, body, ft.ServerAddr, ft.ClientAddr))
		}
	}
}

// Session renders a full Fig 2 video session: one management flow to the
// provider's front-end plus 1–3 content flows.
func (g *Generator) Session(label string, prov fingerprint.Provider, opts fingerprint.Options) ([]*FlowTrace, error) {
	var flows []*FlowTrace
	mgmtOpts := opts
	mgmtOpts.ManagementFlow = true
	mgmt, err := g.Flow(label, prov, fingerprint.TCP, FlowSpec{
		Duration: 5 * time.Second, TotalBytes: 200 << 10, Options: mgmtOpts})
	if err != nil {
		return nil, err
	}
	flows = append(flows, mgmt)

	tr := fingerprint.TCP
	if fingerprint.SupportsQUIC(label, prov) && g.rng.Float64() < 0.5 {
		tr = fingerprint.QUIC
	}
	for i, n := 0, 1+g.rng.IntN(3); i < n; i++ {
		f, err := g.Flow(label, prov, tr, FlowSpec{Options: opts})
		if err != nil {
			return nil, err
		}
		flows = append(flows, f)
	}
	return flows, nil
}

// WritePCAP writes the traces' frames, merged in timestamp order, as a
// libpcap file.
func WritePCAP(w io.Writer, traces []*FlowTrace) error {
	pw, err := pcap.NewWriter(w, 0)
	if err != nil {
		return err
	}
	type ev struct {
		ts   time.Time
		data []byte
	}
	var evs []ev
	for _, ft := range traces {
		for _, fr := range ft.Frames {
			evs = append(evs, ev{ft.Start.Add(fr.Offset), fr.Data})
		}
	}
	// insertion sort by timestamp (trace lists are mostly ordered)
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].ts.Before(evs[j-1].ts); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	for _, e := range evs {
		if err := pw.WritePacket(e.ts, e.data); err != nil {
			return err
		}
	}
	return nil
}

// SNIOf extracts the ClientHello SNI from a trace's first client frame, for
// tests that validate rendering.
func SNIOf(ft *FlowTrace) (string, error) {
	var p packet.Parser
	var out packet.Parsed
	for _, fr := range ft.Frames {
		if !fr.ClientToServer {
			continue
		}
		if err := p.Parse(fr.Data, &out); err != nil {
			return "", err
		}
		switch {
		case out.Has(packet.LayerTCP) && len(out.Payload) > 0:
			ch, err := tlsproto.ParseRecord(out.Payload)
			if err != nil {
				continue
			}
			return ch.ServerName(), nil
		case out.Has(packet.LayerUDP) && quicproto.IsLongHeader(out.Payload):
			init, err := quicproto.ParseInitial(out.Payload)
			if err != nil {
				continue
			}
			ch, err := tlsproto.Parse(init.CryptoData)
			if err != nil {
				continue
			}
			return ch.ServerName(), nil
		}
	}
	return "", fmt.Errorf("tracegen: no ClientHello found")
}
