package tracegen

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/packet"
	"videoplat/internal/pcap"
	"videoplat/internal/quicproto"
	"videoplat/internal/tlsproto"
)

func TestTCPFlowRendersParseableHandshake(t *testing.T) {
	g := New(1)
	ft, err := g.Flow("windows_firefox", fingerprint.Netflix, fingerprint.TCP, FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Frames) < 5 {
		t.Fatalf("frames = %d", len(ft.Frames))
	}
	var p packet.Parser
	var out packet.Parsed
	// Frame 0 must be the SYN with Firefox/Windows stack parameters.
	if err := p.Parse(ft.Frames[0].Data, &out); err != nil {
		t.Fatal(err)
	}
	if out.TCP.Flags&packet.FlagSYN == 0 {
		t.Error("first frame not SYN")
	}
	if out.IP4.TTL >= 128 || out.IP4.TTL < 120 {
		t.Errorf("observed TTL = %d, want 128 minus a few hops", out.IP4.TTL)
	}
	if out.TCP.MSS() != 1460 {
		t.Errorf("MSS = %d", out.TCP.MSS())
	}
	sni, err := SNIOf(ft)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sni, "nflxvideo.net") {
		t.Errorf("SNI = %q", sni)
	}
}

func TestQUICFlowRendersDecryptableInitial(t *testing.T) {
	g := New(2)
	ft, err := g.Flow("macOS_chrome", fingerprint.YouTube, fingerprint.QUIC, FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Parser
	var out packet.Parsed
	if err := p.Parse(ft.Frames[0].Data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Has(packet.LayerUDP) {
		t.Fatal("first frame not UDP")
	}
	init, err := quicproto.ParseInitial(out.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if init.WireSize < 1200 {
		t.Errorf("initial size = %d", init.WireSize)
	}
	ch, err := tlsproto.Parse(init.CryptoData)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ch.ServerName(), "googlevideo.com") {
		t.Errorf("SNI = %q", ch.ServerName())
	}
	ext, ok := ch.Extension(tlsproto.ExtQUICTransportParams)
	if !ok {
		t.Fatal("no transport params in rendered CHLO")
	}
	if _, err := quicproto.ParseTransportParameters(ext.Data); err != nil {
		t.Fatal(err)
	}
}

func TestSessionAnatomy(t *testing.T) {
	g := New(3)
	flows, err := g.Session("iOS_nativeApp", fingerprint.Disney, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) < 2 {
		t.Fatalf("session has %d flows, want >= 2", len(flows))
	}
	if flows[0].SNI != "www.disneyplus.com" {
		t.Errorf("management SNI = %q", flows[0].SNI)
	}
	for _, f := range flows[1:] {
		if !strings.Contains(f.SNI, "dssott.com") {
			t.Errorf("content SNI = %q", f.SNI)
		}
	}
}

func TestLabDatasetComposition(t *testing.T) {
	g := New(4)
	d, err := g.LabDataset(0.05, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Flows) == 0 {
		t.Fatal("empty dataset")
	}
	// Every non-empty Table 1 cell must be represented.
	type cell struct {
		label string
		prov  fingerprint.Provider
	}
	got := map[cell]int{}
	quicFlows := 0
	for _, f := range d.Flows {
		got[cell{f.Label, f.Provider}]++
		if f.Transport == fingerprint.QUIC {
			quicFlows++
			if f.Provider != fingerprint.YouTube {
				t.Errorf("QUIC flow for %s", f.Provider)
			}
		}
	}
	for label, counts := range Table1Counts {
		for pi, prov := range fingerprint.AllProviders() {
			c := cell{label, prov}
			if counts[pi] == 0 && got[c] > 0 {
				t.Errorf("unsupported cell %s/%s has %d flows", label, prov, got[c])
			}
			if counts[pi] > 0 && got[c] < 8 {
				t.Errorf("cell %s/%s has %d flows, want >= 8", label, prov, got[c])
			}
		}
	}
	if quicFlows == 0 {
		t.Error("no QUIC flows in lab dataset")
	}
	if got := len(d.Labels()); got != 17 {
		t.Errorf("distinct labels = %d, want 17", got)
	}
}

func TestOpenSetDataset(t *testing.T) {
	g := New(5)
	d, err := g.OpenSetDataset(2)
	if err != nil {
		t.Fatal(err)
	}
	// 17 platforms × supported providers, ≥2 flows each.
	if len(d.Flows) < 60 {
		t.Fatalf("open-set flows = %d", len(d.Flows))
	}
	ytQUIC := d.Filter(fingerprint.YouTube, fingerprint.QUIC)
	if len(ytQUIC) != 12*2 {
		t.Errorf("YT QUIC flows = %d, want 24", len(ytQUIC))
	}
}

func TestWritePCAPRoundTrip(t *testing.T) {
	g := New(6)
	ft, err := g.Flow("android_nativeApp", fingerprint.YouTube, fingerprint.QUIC, FlowSpec{
		Start: time.Date(2023, 8, 1, 10, 0, 0, 0, time.UTC)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePCAP(&buf, []*FlowTrace{ft}); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var last time.Time
	for {
		pkt, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Timestamp.Before(last) {
			t.Error("packets not in timestamp order")
		}
		last = pkt.Timestamp
		n++
	}
	if n != len(ft.Frames) {
		t.Errorf("pcap packets = %d, want %d", n, len(ft.Frames))
	}
}

func TestFlowKeyProto(t *testing.T) {
	g := New(7)
	tcp, err := g.Flow("ps5_nativeApp", fingerprint.Amazon, fingerprint.TCP, FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if tcp.Key().Proto != packet.ProtoTCP {
		t.Error("TCP flow key proto wrong")
	}
	quic, err := g.Flow("windows_chrome", fingerprint.YouTube, fingerprint.QUIC, FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if quic.Key().Proto != packet.ProtoUDP {
		t.Error("QUIC flow key proto wrong")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := New(42).Flow("macOS_safari", fingerprint.YouTube, fingerprint.TCP, FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(42).Flow("macOS_safari", fingerprint.YouTube, fingerprint.TCP, FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		if !bytes.Equal(a.Frames[i].Data, b.Frames[i].Data) {
			t.Fatalf("frame %d differs across identical seeds", i)
		}
	}
}

func BenchmarkRenderTCPFlow(b *testing.B) {
	g := New(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Flow("windows_chrome", fingerprint.Netflix, fingerprint.TCP, FlowSpec{PayloadFrames: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderQUICFlow(b *testing.B) {
	g := New(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Flow("windows_chrome", fingerprint.YouTube, fingerprint.QUIC, FlowSpec{PayloadFrames: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestScenarioDeterminism pins byte-identical regeneration across the
// adversarial scenario families: two generators with the same seed rendering
// the same (label, provider, transport, spec) sequence must agree on every
// frame byte, every offset and all migration ground truth — the contract
// that makes a rendered dataset reproducible from (seed, Options) alone.
func TestScenarioDeterminism(t *testing.T) {
	specs := []struct {
		label string
		prov  fingerprint.Provider
		tr    fingerprint.Transport
		spec  FlowSpec
	}{
		{"windows_chrome", fingerprint.Netflix, fingerprint.TCP,
			FlowSpec{Options: fingerprint.Options{ECH: true}, PayloadFrames: 2}},
		{"android_chrome", fingerprint.YouTube, fingerprint.QUIC,
			FlowSpec{Options: fingerprint.Options{ECH: true}, PayloadFrames: 1}},
		{"android_chrome", fingerprint.YouTube, fingerprint.QUIC,
			FlowSpec{Options: fingerprint.Options{ZeroRTT: true}, PayloadFrames: 2}},
		{"iOS_chrome", fingerprint.YouTube, fingerprint.QUIC,
			FlowSpec{Options: fingerprint.Options{Migration: true}, PayloadFrames: 3}},
		{"macOS_chrome", fingerprint.YouTube, fingerprint.QUIC,
			FlowSpec{Options: fingerprint.Options{Migration: true}, MigrateMidHandshake: true, PayloadFrames: 2}},
		{"android_chrome", fingerprint.YouTube, fingerprint.QUIC,
			FlowSpec{Options: fingerprint.Options{ZeroRTT: true, Migration: true}, PayloadFrames: 1}},
	}
	ga, gb := New(97), New(97)
	for _, sc := range specs {
		a, err := ga.Flow(sc.label, sc.prov, sc.tr, sc.spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := gb.Flow(sc.label, sc.prov, sc.tr, sc.spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Key() != b.Key() || a.SNI != b.SNI || a.Migrated != b.Migrated {
			t.Fatalf("%s/%s ground truth diverged across identical seeds", sc.label, sc.prov)
		}
		if a.Migrated && a.MigratedKey() != b.MigratedKey() {
			t.Fatalf("%s/%s migrated tuple diverged", sc.label, sc.prov)
		}
		if len(a.Frames) != len(b.Frames) {
			t.Fatalf("%s/%s frame counts differ: %d vs %d", sc.label, sc.prov, len(a.Frames), len(b.Frames))
		}
		for i := range a.Frames {
			if a.Frames[i].Offset != b.Frames[i].Offset {
				t.Fatalf("%s/%s frame %d offset differs", sc.label, sc.prov, i)
			}
			if !bytes.Equal(a.Frames[i].Data, b.Frames[i].Data) {
				t.Fatalf("%s/%s frame %d differs across identical seeds", sc.label, sc.prov, i)
			}
		}
	}
}

// TestScenarioDatasetDeterminism pins the same contract one level up: a full
// LabDataset rendered twice from the same seed with adversarial Options is
// byte-identical flow for flow.
func TestScenarioDatasetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders two datasets")
	}
	opts := fingerprint.Options{ECH: true}
	da, err := New(98).LabDataset(0.01, opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(98).LabDataset(0.01, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(da.Flows) != len(db.Flows) {
		t.Fatalf("dataset sizes differ: %d vs %d", len(da.Flows), len(db.Flows))
	}
	for i := range da.Flows {
		a, b := da.Flows[i], db.Flows[i]
		if a.Label != b.Label || a.Provider != b.Provider || a.Transport != b.Transport {
			t.Fatalf("flow %d identity diverged", i)
		}
		if len(a.Frames) != len(b.Frames) {
			t.Fatalf("flow %d frame counts differ", i)
		}
		for j := range a.Frames {
			if !bytes.Equal(a.Frames[j].Data, b.Frames[j].Data) {
				t.Fatalf("flow %d frame %d differs across identical seeds", i, j)
			}
		}
	}
}
