package tracegen

import (
	"fmt"

	"videoplat/internal/fingerprint"
)

// Table1Counts is the exact dataset composition of the paper's Table 1:
// video flows per (platform, provider). Dashes are zeros.
var Table1Counts = map[string][4]int{
	//                        YT   NF   DN   AP
	"windows_chrome":          {411, 202, 199, 215},
	"windows_edge":            {406, 208, 200, 200},
	"windows_firefox":         {466, 207, 204, 195},
	"windows_nativeApp":       {0, 204, 211, 186},
	"macOS_safari":            {200, 204, 200, 201},
	"macOS_chrome":            {407, 213, 202, 208},
	"macOS_edge":              {402, 204, 202, 210},
	"macOS_firefox":           {467, 212, 202, 199},
	"macOS_nativeApp":         {0, 0, 0, 200},
	"android_chrome":          {107, 0, 0, 0},
	"android_samsungInternet": {103, 0, 0, 0},
	"android_nativeApp":       {100, 102, 106, 111},
	"iOS_safari":              {203, 0, 0, 0},
	"iOS_chrome":              {213, 0, 0, 0},
	"iOS_nativeApp":           {203, 215, 306, 372},
	"androidTV_nativeApp":     {200, 116, 107, 113},
	"ps5_nativeApp":           {105, 100, 100, 103},
}

// Dataset is a labeled collection of rendered flows.
type Dataset struct {
	Flows []*FlowTrace
}

// Filter returns the subset matching provider and transport.
func (d *Dataset) Filter(prov fingerprint.Provider, tr fingerprint.Transport) []*FlowTrace {
	var out []*FlowTrace
	for _, f := range d.Flows {
		if f.Provider == prov && f.Transport == tr {
			out = append(out, f)
		}
	}
	return out
}

// Labels returns the distinct platform labels present, in first-seen order.
func (d *Dataset) Labels() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range d.Flows {
		if !seen[f.Label] {
			seen[f.Label] = true
			out = append(out, f.Label)
		}
	}
	return out
}

// LabDataset renders the full Table 1 dataset. scale in (0,1] shrinks every
// cell proportionally (minimum 8 flows per non-empty cell) to keep tests
// fast; use 1.0 for the full ~10k flows. For YouTube on QUIC-capable
// platforms, flows are split roughly evenly between TCP and QUIC, matching
// the paper's "comprehensive coverage across configuration options".
func (g *Generator) LabDataset(scale float64, opts fingerprint.Options) (*Dataset, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("tracegen: scale %v out of (0,1]", scale)
	}
	d := &Dataset{}
	for _, label := range fingerprint.AllPlatformLabels() {
		counts := Table1Counts[label]
		for pi, prov := range fingerprint.AllProviders() {
			n := counts[pi]
			if n == 0 {
				continue
			}
			n = int(float64(n) * scale)
			if n < 8 {
				n = 8
			}
			quicShare := 0
			if fingerprint.SupportsQUIC(label, prov) {
				quicShare = n / 2
				if !fingerprint.SupportsTCP(label, prov) {
					quicShare = n // e.g. the QUIC-only YouTube Android app
				}
			}
			for i := 0; i < n; i++ {
				tr := fingerprint.TCP
				if i < quicShare {
					tr = fingerprint.QUIC
				}
				f, err := g.Flow(label, prov, tr, FlowSpec{Options: opts, PayloadFrames: 1})
				if err != nil {
					return nil, fmt.Errorf("tracegen: %s/%s/%s: %w", label, prov, tr, err)
				}
				d.Flows = append(d.Flows, f)
			}
		}
	}
	return d, nil
}

// OpenSetDataset renders the §4.3.2 evaluation set: every supported
// (platform, provider, transport) combination with version-drifted profiles,
// n flows per combination (the paper used "over 2000 flows spread evenly").
func (g *Generator) OpenSetDataset(n int) (*Dataset, error) {
	d := &Dataset{}
	opts := fingerprint.Options{OpenSet: true}
	for _, label := range fingerprint.AllPlatformLabels() {
		for _, prov := range fingerprint.AllProviders() {
			if !fingerprint.SupportMatrix(label, prov) {
				continue
			}
			var transports []fingerprint.Transport
			if fingerprint.SupportsTCP(label, prov) {
				transports = append(transports, fingerprint.TCP)
			}
			if fingerprint.SupportsQUIC(label, prov) {
				transports = append(transports, fingerprint.QUIC)
			}
			for _, tr := range transports {
				for i := 0; i < n; i++ {
					f, err := g.Flow(label, prov, tr, FlowSpec{Options: opts, PayloadFrames: 1})
					if err != nil {
						return nil, err
					}
					d.Flows = append(d.Flows, f)
				}
			}
		}
	}
	return d, nil
}
