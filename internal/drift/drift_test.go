package drift

import (
	"testing"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
)

func obs(prov fingerprint.Provider, conf float64, status pipeline.Status) *pipeline.FlowRecord {
	return &pipeline.FlowRecord{
		Classified: true, Provider: prov, Transport: fingerprint.TCP,
		Prediction: pipeline.Prediction{Status: status, PlatformConf: conf},
	}
}

func TestHealthyClassifierNotFlagged(t *testing.T) {
	m := NewMonitor(Config{Window: 50, Baseline: 50})
	for i := 0; i < 200; i++ {
		m.Observe(obs(fingerprint.Netflix, 0.95, pipeline.Composite))
	}
	sts := m.Statuses()
	if len(sts) != 1 {
		t.Fatalf("statuses = %d", len(sts))
	}
	if sts[0].Drifting {
		t.Errorf("healthy classifier flagged: %s", sts[0].Reason)
	}
	if len(m.NeedsRetraining()) != 0 {
		t.Error("retraining recommended for healthy classifier")
	}
}

func TestConfidenceDropFlagged(t *testing.T) {
	m := NewMonitor(Config{Window: 50, Baseline: 50, ConfidenceDrop: 0.1})
	for i := 0; i < 50; i++ {
		m.Observe(obs(fingerprint.YouTube, 0.95, pipeline.Composite))
	}
	// Traffic drifts: confidence decays.
	for i := 0; i < 60; i++ {
		m.Observe(obs(fingerprint.YouTube, 0.70, pipeline.Composite))
	}
	need := m.NeedsRetraining()
	if len(need) != 1 {
		t.Fatalf("retraining list = %v", need)
	}
	if need[0].RecentMedian > 0.75 || need[0].BaselineMedian < 0.9 {
		t.Errorf("medians = %+v", need[0])
	}
}

func TestUnknownRateFlagged(t *testing.T) {
	m := NewMonitor(Config{Window: 40, Baseline: 40, MaxUnknownRate: 0.3})
	for i := 0; i < 40; i++ {
		m.Observe(obs(fingerprint.Disney, 0.9, pipeline.Composite))
	}
	for i := 0; i < 40; i++ {
		st := pipeline.Composite
		conf := 0.9
		if i%2 == 0 { // 50% unknowns
			st = pipeline.Unknown
			conf = 0.85 // confidence itself stays high
		}
		m.Observe(obs(fingerprint.Disney, conf, st))
	}
	need := m.NeedsRetraining()
	if len(need) != 1 {
		t.Fatalf("unknown-rate drift not flagged: %+v", m.Statuses())
	}
	if need[0].UnknownRate < 0.3 {
		t.Errorf("unknown rate = %v", need[0].UnknownRate)
	}
}

func TestWarmup(t *testing.T) {
	m := NewMonitor(Config{Window: 100, Baseline: 100})
	for i := 0; i < 10; i++ {
		m.Observe(obs(fingerprint.Amazon, 0.5, pipeline.Unknown))
	}
	sts := m.Statuses()
	if sts[0].Drifting || sts[0].Reason != "warming up" {
		t.Errorf("warming-up classifier misjudged: %+v", sts[0])
	}
}

func TestUnclassifiedIgnored(t *testing.T) {
	m := NewMonitor(Config{})
	m.Observe(&pipeline.FlowRecord{Classified: false})
	if len(m.Statuses()) != 0 {
		t.Error("unclassified record created a series")
	}
}

func TestSubscribeFiresOnceOnDriftTransition(t *testing.T) {
	m := NewMonitor(Config{Window: 50, Baseline: 50, ConfidenceDrop: 0.1})
	var fired []Status
	m.Subscribe(func(st Status) { fired = append(fired, st) })

	for i := 0; i < 50; i++ {
		m.Observe(obs(fingerprint.YouTube, 0.95, pipeline.Composite))
	}
	if len(fired) != 0 {
		t.Fatalf("subscriber fired during healthy baseline: %+v", fired)
	}
	// Decay well past the eval period: exactly one notification.
	for i := 0; i < 200; i++ {
		m.Observe(obs(fingerprint.YouTube, 0.60, pipeline.Composite))
	}
	if len(fired) != 1 {
		t.Fatalf("subscriber fired %d times, want 1", len(fired))
	}
	if !fired[0].Drifting || fired[0].Provider != fingerprint.YouTube {
		t.Errorf("notification = %+v", fired[0])
	}
}

func TestRebaselineResetsReferenceAndRearmsSubscribers(t *testing.T) {
	m := NewMonitor(Config{Window: 50, Baseline: 50, ConfidenceDrop: 0.1})
	fired := 0
	m.Subscribe(func(Status) { fired++ })

	for i := 0; i < 50; i++ {
		m.Observe(obs(fingerprint.Netflix, 0.95, pipeline.Composite))
	}
	for i := 0; i < 100; i++ {
		m.Observe(obs(fingerprint.Netflix, 0.60, pipeline.Composite))
	}
	if fired != 1 {
		t.Fatalf("fired = %d before rebaseline, want 1", fired)
	}

	// The bank was swapped: the new model's steady 0.60 confidence is its
	// own baseline, not a drop from the old model's 0.95.
	m.Rebaseline()
	if len(m.Statuses()) != 0 {
		t.Fatal("rebaseline kept old series")
	}
	for i := 0; i < 200; i++ {
		m.Observe(obs(fingerprint.Netflix, 0.60, pipeline.Composite))
	}
	for _, st := range m.Statuses() {
		if st.Drifting {
			t.Errorf("new model judged against old baseline: %+v", st)
		}
	}
	if fired != 1 {
		t.Fatalf("fired = %d after rebaseline on steady traffic, want still 1", fired)
	}

	// But a genuine new drop after the swap is detected and re-notified.
	for i := 0; i < 200; i++ {
		m.Observe(obs(fingerprint.Netflix, 0.30, pipeline.Composite))
	}
	if fired != 2 {
		t.Fatalf("fired = %d after post-swap drift, want 2", fired)
	}
}

func TestEndToEndWithOpenSetDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	// Train on lab traffic, then feed open-set (drifted) flows: the monitor
	// should see lower confidence than the closed-set baseline.
	g := newGen(t)
	bank := g.bank
	m := NewMonitor(Config{Window: 60, Baseline: 60, ConfidenceDrop: 0.03})

	feed := func(ds dataset) {
		for _, ft := range ds.flows {
			info, err := pipeline.ExtractTrace(ft)
			if err != nil {
				t.Fatal(err)
			}
			pred, err := bank.Classify(ft.Provider, ft.Transport, extract(info))
			if err != nil {
				t.Fatal(err)
			}
			m.Observe(&pipeline.FlowRecord{Classified: true, Provider: ft.Provider,
				Transport: ft.Transport, Prediction: pred})
		}
	}
	feed(g.closed)
	closedSts := m.Statuses()
	feed(g.open)
	openSts := m.Statuses()

	var closedMed, openMed float64
	for _, st := range closedSts {
		closedMed += st.RecentMedian
	}
	closedMed /= float64(len(closedSts))
	for _, st := range openSts {
		openMed += st.RecentMedian
	}
	openMed /= float64(len(openSts))
	if openMed > closedMed {
		t.Errorf("drifted traffic should not raise confidence: closed %.3f open %.3f",
			closedMed, openMed)
	}
}
