package drift

import (
	"testing"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/pipeline"
	"videoplat/internal/tracegen"
)

type dataset struct{ flows []*tracegen.FlowTrace }

type gen struct {
	bank   *pipeline.Bank
	closed dataset
	open   dataset
}

func newGen(t testing.TB) *gen {
	t.Helper()
	g := tracegen.New(21)
	lab, err := g.LabDataset(0.03, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bank, err := pipeline.TrainBank(lab, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 12, MaxDepth: 20, MaxFeatures: 34, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := tracegen.New(22).LabDataset(0.02, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	open, err := tracegen.New(23).OpenSetDataset(3)
	if err != nil {
		t.Fatal(err)
	}
	return &gen{bank: bank, closed: dataset{closed.Flows}, open: dataset{open.Flows}}
}

func extract(info *features.HandshakeInfo) *features.FieldValues {
	return features.Extract(info)
}
