// Package drift implements the concept-drift monitoring the paper's §5.3
// calls for in production deployments: prediction accuracy and confidence
// decay as user platforms update ("concept drift"), so the deployment team
// must detect under-performing classifiers and retrain them.
//
// The Monitor keeps per-(provider, transport) rolling windows of prediction
// confidence and unknown-rates. A classifier is flagged when its recent
// median confidence falls a configurable margin below its baseline, or when
// the share of rejected (unknown) flows exceeds a threshold — both symptoms
// the paper associates with drifting traffic.
package drift

import (
	"fmt"
	"sort"
	"sync"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
)

// Config tunes detection.
type Config struct {
	// Window is the number of recent predictions per classifier considered
	// "current" (default 500).
	Window int
	// Baseline is the number of initial predictions that form the
	// reference distribution (default: same as Window).
	Baseline int
	// ConfidenceDrop flags a classifier when the current median confidence
	// is below baseline median minus this margin (default 0.10).
	ConfidenceDrop float64
	// MaxUnknownRate flags a classifier when the current unknown-rate
	// exceeds this value (default 0.35).
	MaxUnknownRate float64
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 500
	}
	if c.Baseline <= 0 {
		c.Baseline = c.Window
	}
	if c.ConfidenceDrop == 0 {
		c.ConfidenceDrop = 0.10
	}
	if c.MaxUnknownRate == 0 {
		c.MaxUnknownRate = 0.35
	}
}

// key identifies one monitored classifier.
type key struct {
	Provider  fingerprint.Provider
	Transport fingerprint.Transport
}

type series struct {
	baseline     []float64 // first Baseline confidences
	recent       []float64 // ring of last Window confidences
	recentIdx    int
	recentFull   bool
	unknownRing  []bool
	unknownIdx   int
	unknownFull  bool
	observations int
}

// Status is the monitor's verdict for one classifier.
type Status struct {
	Provider  fingerprint.Provider
	Transport fingerprint.Transport

	Observations   int
	BaselineMedian float64
	RecentMedian   float64
	UnknownRate    float64
	// Drifting reports whether retraining is recommended.
	Drifting bool
	Reason   string
}

// Monitor accumulates prediction outcomes. Safe for concurrent use.
type Monitor struct {
	cfg Config

	mu     sync.Mutex
	series map[key]*series
}

// NewMonitor returns a Monitor with the given configuration.
func NewMonitor(cfg Config) *Monitor {
	cfg.defaults()
	return &Monitor{cfg: cfg, series: map[key]*series{}}
}

// Observe records one classified flow.
func (m *Monitor) Observe(rec *pipeline.FlowRecord) {
	if !rec.Classified {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := key{rec.Provider, rec.Transport}
	s := m.series[k]
	if s == nil {
		s = &series{
			recent:      make([]float64, m.cfg.Window),
			unknownRing: make([]bool, m.cfg.Window),
		}
		m.series[k] = s
	}
	s.observations++

	conf := rec.Prediction.PlatformConf
	unknown := rec.Prediction.Status == pipeline.Unknown
	if len(s.baseline) < m.cfg.Baseline {
		s.baseline = append(s.baseline, conf)
	}
	s.recent[s.recentIdx] = conf
	s.recentIdx = (s.recentIdx + 1) % m.cfg.Window
	if s.recentIdx == 0 {
		s.recentFull = true
	}
	s.unknownRing[s.unknownIdx] = unknown
	s.unknownIdx = (s.unknownIdx + 1) % m.cfg.Window
	if s.unknownIdx == 0 {
		s.unknownFull = true
	}
}

// Statuses reports per-classifier drift verdicts, sorted by provider then
// transport for stable output.
func (m *Monitor) Statuses() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Status
	for k, s := range m.series {
		st := Status{Provider: k.Provider, Transport: k.Transport, Observations: s.observations}
		st.BaselineMedian = median(s.baseline)
		st.RecentMedian = median(s.recentWindow())
		st.UnknownRate = s.unknownRate()
		switch {
		case s.observations < m.cfg.Baseline:
			st.Reason = "warming up"
		case st.RecentMedian < st.BaselineMedian-m.cfg.ConfidenceDrop:
			st.Drifting = true
			st.Reason = fmt.Sprintf("median confidence dropped %.0f%% -> %.0f%%",
				st.BaselineMedian*100, st.RecentMedian*100)
		case st.UnknownRate > m.cfg.MaxUnknownRate:
			st.Drifting = true
			st.Reason = fmt.Sprintf("unknown rate %.0f%% exceeds %.0f%%",
				st.UnknownRate*100, m.cfg.MaxUnknownRate*100)
		default:
			st.Reason = "healthy"
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Provider != out[j].Provider {
			return out[i].Provider < out[j].Provider
		}
		return out[i].Transport < out[j].Transport
	})
	return out
}

// NeedsRetraining lists the classifiers currently flagged.
func (m *Monitor) NeedsRetraining() []Status {
	var out []Status
	for _, st := range m.Statuses() {
		if st.Drifting {
			out = append(out, st)
		}
	}
	return out
}

func (s *series) recentWindow() []float64 {
	if s.recentFull {
		return s.recent
	}
	return s.recent[:s.recentIdx]
}

func (s *series) unknownRate() float64 {
	ring := s.unknownRing
	if !s.unknownFull {
		ring = s.unknownRing[:s.unknownIdx]
	}
	if len(ring) == 0 {
		return 0
	}
	n := 0
	for _, u := range ring {
		if u {
			n++
		}
	}
	return float64(n) / float64(len(ring))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
