// Package drift implements the concept-drift monitoring the paper's §5.3
// calls for in production deployments: prediction accuracy and confidence
// decay as user platforms update ("concept drift"), so the deployment team
// must detect under-performing classifiers and retrain them.
//
// The Monitor keeps per-(provider, transport) rolling windows of prediction
// confidence and unknown-rates. A classifier is flagged when its recent
// median confidence falls a configurable margin below its baseline, or when
// the share of rejected (unknown) flows exceeds a threshold — both symptoms
// the paper associates with drifting traffic. Verdicts are pollable
// (Statuses, NeedsRetraining) and pushed (Subscribe); after a bank
// hot-swap, Rebaseline starts fresh reference windows so the replacement
// model is never judged against its predecessor's distribution.
package drift

import (
	"fmt"
	"sort"
	"sync"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
)

// Config tunes detection.
type Config struct {
	// Window is the number of recent predictions per classifier considered
	// "current" (default 500).
	Window int
	// Baseline is the number of initial predictions that form the
	// reference distribution (default: same as Window).
	Baseline int
	// ConfidenceDrop flags a classifier when the current median confidence
	// is below baseline median minus this margin (default 0.10).
	ConfidenceDrop float64
	// MaxUnknownRate flags a classifier when the current unknown-rate
	// exceeds this value (default 0.35).
	MaxUnknownRate float64
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 500
	}
	if c.Baseline <= 0 {
		c.Baseline = c.Window
	}
	if c.ConfidenceDrop == 0 {
		c.ConfidenceDrop = 0.10
	}
	if c.MaxUnknownRate == 0 {
		c.MaxUnknownRate = 0.35
	}
}

// key identifies one monitored classifier.
type key struct {
	Provider  fingerprint.Provider
	Transport fingerprint.Transport
}

type series struct {
	baseline     []float64 // first Baseline confidences
	recent       []float64 // ring of last Window confidences
	recentIdx    int
	recentFull   bool
	unknownRing  []bool
	unknownIdx   int
	unknownFull  bool
	observations int
	notified     bool   // a drifting verdict was already delivered to subscribers
	version      string // ModelVersion of the bank whose predictions fill the windows
}

// Status is the monitor's verdict for one classifier.
type Status struct {
	Provider  fingerprint.Provider
	Transport fingerprint.Transport

	Observations   int
	BaselineMedian float64
	RecentMedian   float64
	UnknownRate    float64
	// Drifting reports whether retraining is recommended.
	Drifting bool
	Reason   string
}

// evalPeriod is how many observations pass between subscriber-facing drift
// evaluations of a series. Computing medians costs a sort over the window,
// so Observe amortizes it instead of re-evaluating per flow; subscribers
// learn of a drifting classifier at most evalPeriod observations late.
const evalPeriod = 25

// Monitor accumulates prediction outcomes. Safe for concurrent use.
type Monitor struct {
	cfg Config

	mu     sync.Mutex
	series map[key]*series
	subs   []func(Status)
}

// NewMonitor returns a Monitor with the given configuration.
func NewMonitor(cfg Config) *Monitor {
	cfg.defaults()
	return &Monitor{cfg: cfg, series: map[key]*series{}}
}

// Subscribe registers fn to be called when a classifier transitions to
// drifting — the push counterpart of polling NeedsRetraining, used by
// registry.Retrainer to kick off retraining the moment decay is detected.
// Each classifier fires at most once until Rebaseline resets it. Callbacks
// run synchronously from the Observe caller's goroutine (without the
// monitor's lock held) and must be quick or hand off to their own
// goroutine.
func (m *Monitor) Subscribe(fn func(Status)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, fn)
}

// Rebaseline drops every classifier's reference and recent windows. Call
// after a bank hot-swap: the new bank must build its own baseline from its
// own predictions rather than being judged against the distribution of the
// model it replaced. Also re-arms Subscribe notifications. (With versioned
// banks each series additionally resets itself whenever the observed
// ModelVersion changes, so old-bank stragglers around a swap cannot
// contaminate the new baseline even before Rebaseline runs.)
func (m *Monitor) Rebaseline() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.series = map[key]*series{}
}

// Rearm clears the once-per-drift notification latch without touching the
// windows, so a still-drifting classifier notifies subscribers again — used
// after a rejected retrain candidate, where the drift is real but the first
// remedy failed and another attempt should be triggered.
func (m *Monitor) Rearm() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.series {
		s.notified = false
	}
}

// Observe records one classified flow.
func (m *Monitor) Observe(rec *pipeline.FlowRecord) {
	if !rec.Classified {
		return
	}
	m.mu.Lock()
	k := key{rec.Provider, rec.Transport}
	s := m.series[k]
	if s != nil && s.version != rec.ModelVersion {
		// The serving bank changed under this series (records classified by
		// a replaced bank can straggle in around a hot-swap): never mix two
		// models' confidence distributions in one reference window.
		s = nil
	}
	if s == nil {
		s = &series{
			recent:      make([]float64, m.cfg.Window),
			unknownRing: make([]bool, m.cfg.Window),
			version:     rec.ModelVersion,
		}
		m.series[k] = s
	}
	s.observations++

	conf := rec.Prediction.PlatformConf
	unknown := rec.Prediction.Status == pipeline.Unknown
	if len(s.baseline) < m.cfg.Baseline {
		s.baseline = append(s.baseline, conf)
	}
	s.recent[s.recentIdx] = conf
	s.recentIdx = (s.recentIdx + 1) % m.cfg.Window
	if s.recentIdx == 0 {
		s.recentFull = true
	}
	s.unknownRing[s.unknownIdx] = unknown
	s.unknownIdx = (s.unknownIdx + 1) % m.cfg.Window
	if s.unknownIdx == 0 {
		s.unknownFull = true
	}

	// Amortized drift check for subscribers.
	var fire []func(Status)
	var st Status
	if len(m.subs) > 0 && !s.notified &&
		s.observations >= m.cfg.Baseline && s.observations%evalPeriod == 0 {
		st = m.statusLocked(k, s)
		if st.Drifting {
			s.notified = true
			fire = append(fire, m.subs...)
		}
	}
	m.mu.Unlock()
	for _, fn := range fire {
		fn(st)
	}
}

// Statuses reports per-classifier drift verdicts, sorted by provider then
// transport for stable output.
func (m *Monitor) Statuses() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Status
	for k, s := range m.series {
		out = append(out, m.statusLocked(k, s))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Provider != out[j].Provider {
			return out[i].Provider < out[j].Provider
		}
		return out[i].Transport < out[j].Transport
	})
	return out
}

// NeedsRetraining lists the classifiers currently flagged.
func (m *Monitor) NeedsRetraining() []Status {
	var out []Status
	for _, st := range m.Statuses() {
		if st.Drifting {
			out = append(out, st)
		}
	}
	return out
}

// statusLocked computes one classifier's verdict; callers must hold mu.
func (m *Monitor) statusLocked(k key, s *series) Status {
	st := Status{Provider: k.Provider, Transport: k.Transport, Observations: s.observations}
	st.BaselineMedian = median(s.baseline)
	st.RecentMedian = median(s.recentWindow())
	st.UnknownRate = s.unknownRate()
	switch {
	case s.observations < m.cfg.Baseline:
		st.Reason = "warming up"
	case st.RecentMedian < st.BaselineMedian-m.cfg.ConfidenceDrop:
		st.Drifting = true
		st.Reason = fmt.Sprintf("median confidence dropped %.0f%% -> %.0f%%",
			st.BaselineMedian*100, st.RecentMedian*100)
	case st.UnknownRate > m.cfg.MaxUnknownRate:
		st.Drifting = true
		st.Reason = fmt.Sprintf("unknown rate %.0f%% exceeds %.0f%%",
			st.UnknownRate*100, m.cfg.MaxUnknownRate*100)
	default:
		st.Reason = "healthy"
	}
	return st
}

func (s *series) recentWindow() []float64 {
	if s.recentFull {
		return s.recent
	}
	return s.recent[:s.recentIdx]
}

func (s *series) unknownRate() float64 {
	ring := s.unknownRing
	if !s.unknownFull {
		ring = s.unknownRing[:s.unknownIdx]
	}
	if len(ring) == 0 {
		return 0
	}
	n := 0
	for _, u := range ring {
		if u {
			n++
		}
	}
	return float64(n) / float64(len(ring))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
