package telemetry

import (
	"bytes"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
)

// qualRec is rollRec with a verdict and confidence stamp, as the pipeline
// produces for a flow whose classification succeeded.
func qualRec(prov fingerprint.Provider, platform string, start time.Time, conf, margin float64) *pipeline.FlowRecord {
	r := rollRec(prov, platform, start, 10*time.Second, 10<<20)
	r.Verdict = pipeline.VerdictClassified
	r.Prediction.PlatformConf = conf
	r.Prediction.PlatformMargin = margin
	return r
}

// abstainRec is a flow the classifier saw but rejected below the confidence
// floor: Classified is set (the model ran) but the prediction is Unknown.
func abstainRec(prov fingerprint.Provider, start time.Time, conf float64) *pipeline.FlowRecord {
	r := rollRec(prov, "", start, 10*time.Second, 1<<20)
	r.Classified = true
	r.Verdict = pipeline.VerdictAbstained
	r.Prediction = pipeline.Prediction{Status: pipeline.Unknown, PlatformConf: conf, PlatformMargin: conf}
	return r
}

// TestConfidenceHistBuckets pins the half-open-left bucket boundaries and
// that quantiles are exact under any merge order.
func TestConfidenceHistBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-0.5, 0}, {0, 0}, {0.01, 0}, {0.05, 0}, {0.051, 1},
		{0.3, 5}, {0.7, 13}, {0.9, 17}, {0.951, 19}, {1.0, 19}, {1.5, 19},
	}
	for _, c := range cases {
		if got := confBucket(c.v); got != c.want {
			t.Errorf("confBucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}

	// Quantile invariance: one histogram over all samples must equal the
	// merge of per-part histograms, bucket for bucket and quantile for
	// quantile.
	samples := []float64{0.3, 0.7, 0.9, 0.3, 0.55, 0.95, 0.1, 0.7}
	whole := &ConfidenceHist{}
	a, b := &ConfidenceHist{}, &ConfidenceHist{}
	for i, v := range samples {
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if a.Count != whole.Count || a.Sum != whole.Sum {
		t.Fatalf("merged hist = %d/%v, want %d/%v", a.Count, a.Sum, whole.Count, whole.Sum)
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%v: merged %v != whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	if got := whole.Quantile(0.5); got != 0.7 {
		t.Errorf("p50 = %v, want 0.7 (bucket upper bound)", got)
	}
}

// TestQualitySummaryMergeClone checks exact verdict counts and bucket totals
// across Merge and Clone — the arithmetic every downsampled tier depends on.
func TestQualitySummaryMergeClone(t *testing.T) {
	a := &QualitySummary{}
	a.add(qualRec(fingerprint.YouTube, "windows_chrome", w0, 0.9, 0.5))
	a.add(abstainRec(fingerprint.Netflix, w0, 0.3))
	a.DriftScore = 0.08
	a.ShadowAgreed = 4

	b := &QualitySummary{}
	b.add(qualRec(fingerprint.YouTube, "iOS_nativeApp", w0, 0.7, 0.2))
	nh := rollRec(fingerprint.Netflix, "", w0, time.Second, 1<<10)
	nh.Verdict = pipeline.VerdictNoHandshake
	b.add(nh)
	b.DriftScore = 0.03
	b.ShadowAgreed = 1
	b.ShadowDisagreed = 2

	m := a.Clone()
	m.Merge(b)
	wantVerdicts := map[string]uint64{"classified": 2, "abstained": 1, "no-handshake": 1}
	for k, want := range wantVerdicts {
		if m.Verdicts[k] != want {
			t.Errorf("merged verdicts[%s] = %d, want %d", k, m.Verdicts[k], want)
		}
	}
	if len(m.Verdicts) != len(wantVerdicts) {
		t.Errorf("merged verdicts = %v, want %v", m.Verdicts, wantVerdicts)
	}
	if m.Confidence.Count != 3 {
		t.Errorf("merged confidence count = %d, want 3", m.Confidence.Count)
	}
	// 0.9→bucket 17, 0.3→5, 0.7→13; margins 0.5→9, 0.3→5, 0.2→3.
	for b, want := range map[int]uint64{17: 1, 5: 1, 13: 1} {
		if m.Confidence.Buckets[b] != want {
			t.Errorf("confidence bucket %d = %d, want %d", b, m.Confidence.Buckets[b], want)
		}
	}
	if m.Margin.Count != 3 {
		t.Errorf("merged margin count = %d, want 3", m.Margin.Count)
	}
	if m.DriftScore != 0.08 {
		t.Errorf("merged drift score = %v, want max 0.08", m.DriftScore)
	}
	if m.ShadowAgreed != 5 || m.ShadowDisagreed != 2 {
		t.Errorf("merged shadow = %d/%d, want 5/2", m.ShadowAgreed, m.ShadowDisagreed)
	}

	// Clone must be deep: mutating the merge result cannot reach a. (a holds
	// two classification attempts — the classified flow and the abstention.)
	if a.Verdicts["classified"] != 1 || a.Confidence.Count != 2 {
		t.Fatalf("Merge mutated the Clone source: %+v", a)
	}
	m.Verdicts["classified"] = 99
	m.Confidence.Observe(0.5)
	if a.Verdicts["classified"] != 1 || a.Confidence.Count != 2 {
		t.Error("Clone aliases maps or histograms")
	}
}

// TestWindowQualityFold checks the rollup folds verdicts and confidence into
// the window's quality summary and per-cell abstain counters, and that
// Current/Clone deep-copy them.
func TestWindowQualityFold(t *testing.T) {
	cap := &captureSink{}
	r := NewRollup(time.Minute, cap)
	r.Add(qualRec(fingerprint.YouTube, "windows_chrome", w0, 0.9, 0.5))
	r.Add(qualRec(fingerprint.YouTube, "windows_chrome", w0.Add(time.Second), 0.7, 0.3))
	r.Add(abstainRec(fingerprint.YouTube, w0.Add(2*time.Second), 0.3))
	nh := rollRec(fingerprint.Netflix, "", w0.Add(3*time.Second), time.Second, 1<<10)
	nh.SNI = "nflxvideo.net" // provider matched, but the handshake never assembled
	nh.Verdict = pipeline.VerdictNoHandshake
	r.Add(nh)

	cur := r.Current()
	if cur.Quality == nil || cur.Quality.Verdicts["classified"] != 2 {
		t.Fatalf("current quality = %+v", cur.Quality)
	}
	cur.Quality.Verdicts["classified"] = 99
	cur.Quality.Confidence.Observe(0.1)
	if live := r.Current(); live.Quality.Verdicts["classified"] != 2 || live.Quality.Confidence.Count != 3 {
		t.Fatal("Current aliases the live quality summary")
	}

	r.Flush()
	if len(cap.wins) != 1 {
		t.Fatalf("sealed %d windows, want 1", len(cap.wins))
	}
	w := cap.wins[0]
	if w.Quality.Verdicts["classified"] != 2 || w.Quality.Verdicts["abstained"] != 1 ||
		w.Quality.Verdicts["no-handshake"] != 1 {
		t.Fatalf("sealed verdicts = %v", w.Quality.Verdicts)
	}
	if w.Quality.Confidence.Count != 3 || w.Quality.Margin.Count != 3 {
		t.Fatalf("sealed quality hists = %d conf / %d margin, want 3/3",
			w.Quality.Confidence.Count, w.Quality.Margin.Count)
	}
	yt := w.ByProvider[fingerprint.YouTube.String()]
	if yt.ClassifiedFlows != 2 || yt.AbstainedFlows != 1 || yt.Confidence.Count != 3 {
		t.Fatalf("youtube cell = %+v", yt)
	}
	nf := w.ByProvider[fingerprint.Netflix.String()]
	if nf.AbstainedFlows != 0 || nf.Confidence != nil {
		t.Fatalf("netflix cell should have no classification attempts: %+v", nf)
	}

	c := w.Clone()
	c.Quality.Verdicts["classified"] = 99
	c.ByProvider[fingerprint.YouTube.String()].Confidence.Observe(0.1)
	if w.Quality.Verdicts["classified"] != 2 || yt.Confidence.Count != 3 {
		t.Error("Window.Clone aliases quality state")
	}
}

// TestQueryQualitySeries is the acceptance-criteria path: verdict-count,
// abstain-rate, and confidence-quantile series by provider that stay EXACT
// across 1m→10m downsampling and a persistence restart.
func TestQueryQualitySeries(t *testing.T) {
	var persisted bytes.Buffer
	store := NewStore(StoreConfig{
		Tiers:   []time.Duration{10 * time.Minute},
		Persist: NewJSONLSink(&persisted),
	})

	// 30 one-minute windows, each with two confident YouTube classifications
	// and one Netflix abstention — fixed values so the expected histogram
	// buckets (0.9→17, 0.7→13, 0.3→5) and quantiles are known exactly.
	var recs []*pipeline.FlowRecord
	for i := 0; i < 30; i++ {
		base := w0.Add(time.Duration(i) * time.Minute)
		recs = append(recs,
			qualRec(fingerprint.YouTube, "windows_chrome", base, 0.9, 0.5),
			qualRec(fingerprint.YouTube, "iOS_nativeApp", base.Add(10*time.Second), 0.7, 0.3),
			abstainRec(fingerprint.Netflix, base.Add(20*time.Second), 0.3))
	}
	feed(t, store, sealWindows(t, time.Minute, recs...)...)

	// Raw-resolution totals: every 1m bucket carries its verdict counts,
	// abstain rate, and exact confidence quantiles.
	res, err := store.Query(time.Time{}, time.Time{}, time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 30 {
		t.Fatalf("raw query: %d series / %d points", len(res.Series), len(res.Series[0].Points))
	}
	for i, p := range res.Series[0].Points {
		if p.Verdicts["classified"] != 2 || p.Verdicts["abstained"] != 1 {
			t.Fatalf("point %d verdicts = %v", i, p.Verdicts)
		}
		if p.AbstainedFlows != 1 || p.AbstainRate != 1.0/3 {
			t.Errorf("point %d abstain = %d flows rate %v, want 1 flows rate 1/3", i, p.AbstainedFlows, p.AbstainRate)
		}
		if p.ConfidenceCount != 3 || p.ConfidenceP10 != 0.3 || p.ConfidenceP50 != 0.7 {
			t.Errorf("point %d confidence = %d samples p10 %v p50 %v, want 3/0.3/0.7",
				i, p.ConfidenceCount, p.ConfidenceP10, p.ConfidenceP50)
		}
	}

	// 10-minute step: counts scale by 10, rates and quantiles are unchanged —
	// the fixed-width buckets make the merged quantile identical to the
	// quantile over the union of samples.
	res10, err := store.Query(time.Time{}, time.Time{}, 10*time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	pts := res10.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("10m query: %d points, want 3", len(pts))
	}
	for i, p := range pts {
		if p.Verdicts["classified"] != 20 || p.Verdicts["abstained"] != 10 {
			t.Fatalf("10m point %d verdicts = %v", i, p.Verdicts)
		}
		if p.AbstainRate != 1.0/3 || p.ConfidenceCount != 30 ||
			p.ConfidenceP10 != 0.3 || p.ConfidenceP50 != 0.7 {
			t.Errorf("10m point %d = rate %v count %d p10 %v p50 %v",
				i, p.AbstainRate, p.ConfidenceCount, p.ConfidenceP10, p.ConfidenceP50)
		}
	}

	// By provider: the abstaining provider and the confident one must not
	// bleed into each other's series.
	resProv, err := store.Query(time.Time{}, time.Time{}, 10*time.Minute, GroupProvider)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string][]QueryPoint{}
	for _, s := range resProv.Series {
		byKey[s.Key] = s.Points
	}
	yt, nf := byKey[fingerprint.YouTube.String()], byKey[fingerprint.Netflix.String()]
	if yt == nil || nf == nil {
		t.Fatalf("provider series missing: have %v", len(byKey))
	}
	for i := range yt {
		if yt[i].AbstainRate != 0 || yt[i].ConfidenceCount != 20 || yt[i].ConfidenceP10 != 0.7 {
			t.Errorf("youtube point %d = %+v, want no abstains, p10 0.7", i, yt[i])
		}
		if nf[i].AbstainRate != 1 || nf[i].AbstainedFlows != 10 || nf[i].ConfidenceP50 != 0.3 {
			t.Errorf("netflix point %d = %+v, want all abstained at 0.3", i, nf[i])
		}
	}

	// Restart: reload the persisted JSONL into a fresh store; the quality
	// series must survive exactly.
	fresh := NewStore(StoreConfig{Tiers: []time.Duration{10 * time.Minute}})
	if n, err := fresh.Reload(bytes.NewReader(persisted.Bytes())); err != nil || n != 30 {
		t.Fatalf("Reload = %d, %v; want 30, nil", n, err)
	}
	resBack, err := fresh.Query(time.Time{}, time.Time{}, 10*time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	back := resBack.Series[0].Points
	if len(back) != len(pts) {
		t.Fatalf("reloaded points = %d, want %d", len(back), len(pts))
	}
	for i := range pts {
		if back[i].AbstainRate != pts[i].AbstainRate || back[i].ConfidenceP10 != pts[i].ConfidenceP10 ||
			back[i].ConfidenceP50 != pts[i].ConfidenceP50 || back[i].Verdicts["classified"] != pts[i].Verdicts["classified"] ||
			back[i].Verdicts["abstained"] != pts[i].Verdicts["abstained"] {
			t.Errorf("point %d changed across restart: %+v vs %+v", i, back[i], pts[i])
		}
	}

	// Evict the raw ring so the downsampled 10m tier serves the query; the
	// tier's merged quality must agree with raw re-aggregation.
	small := NewStore(StoreConfig{MaxWindows: 5, Tiers: []time.Duration{10 * time.Minute}})
	feed(t, small, sealWindows(t, time.Minute, recs...)...)
	resTier, err := small.Query(w0, time.Time{}, 10*time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	if resTier.TierSeconds != 600 {
		t.Fatalf("query served from %vs tier, want 600 (raw evicted)", resTier.TierSeconds)
	}
	tierPts := resTier.Series[0].Points
	if len(tierPts) != 3 {
		t.Fatalf("tier query: %d points, want 3", len(tierPts))
	}
	for i := range tierPts {
		if tierPts[i].AbstainRate != pts[i].AbstainRate || tierPts[i].ConfidenceP10 != pts[i].ConfidenceP10 ||
			tierPts[i].Verdicts["classified"] != pts[i].Verdicts["classified"] {
			t.Errorf("downsampled point %d diverges: %+v vs raw %+v", i, tierPts[i], pts[i])
		}
	}
}

// TestQualityFoldZeroAlloc pins that folding a flow's quality signals into a
// warm window allocates nothing — the recording path runs once per finalized
// flow on the aggregate goroutine.
func TestQualityFoldZeroAlloc(t *testing.T) {
	q := &QualitySummary{}
	rec := qualRec(fingerprint.YouTube, "windows_chrome", w0, 0.9, 0.5)
	q.add(rec) // warm: maps and histograms exist after the first fold
	if allocs := testing.AllocsPerRun(100, func() { q.add(rec) }); allocs != 0 {
		t.Errorf("quality fold allocates %v times per record, want 0", allocs)
	}
	c := &Cell{}
	c.add(rec)
	if allocs := testing.AllocsPerRun(100, func() { c.add(rec) }); allocs != 0 {
		t.Errorf("cell fold allocates %v times per record, want 0", allocs)
	}
}

// BenchmarkQualityFold measures the per-flow quality recording cost; CI pins
// its allocation count at zero.
func BenchmarkQualityFold(b *testing.B) {
	q := &QualitySummary{}
	c := &Cell{}
	rec := qualRec(fingerprint.YouTube, "windows_chrome", w0, 0.9, 0.5)
	q.add(rec)
	c.add(rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.add(rec)
		c.add(rec)
	}
}
