package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"videoplat/internal/obs"
	"videoplat/internal/pipeline"
)

// Cell aggregates the flows of one rollup dimension value (a provider or a
// predicted platform) within one window.
type Cell struct {
	Flows           int `json:"flows"`
	ClassifiedFlows int `json:"classified_flows"`
	// AbstainedFlows counts flows the classifier ran on but rejected below
	// the confidence threshold (§4.1 open-set abstention), so per-provider
	// abstain rates survive re-aggregation: rate = abstained / (classified +
	// abstained).
	AbstainedFlows int     `json:"abstained_flows,omitempty"`
	WatchSeconds   float64 `json:"watch_seconds"`
	BytesDown      int64   `json:"bytes_down"`
	BytesUp        int64   `json:"bytes_up"`
	// MeanMbpsDown is the mean downstream bandwidth over the cell's watch
	// time; filled when the window is sealed.
	MeanMbpsDown float64 `json:"mean_mbps_down"`
	// PeakMbpsDown is the highest per-flow mean bandwidth seen.
	PeakMbpsDown float64 `json:"peak_mbps_down"`
	// Confidence digests the platform-model top probability of this cell's
	// classification attempts; nil when the classifier never ran here.
	Confidence *ConfidenceHist `json:"confidence,omitempty"`
}

// add folds one finalized flow into the cell. On the window-fold path,
// pinned allocation-free (modulo lazy one-time inits) by TestFoldZeroAlloc.
//
//vp:hotpath
func (c *Cell) add(rec *pipeline.FlowRecord) {
	c.Flows++
	if rec.Classified {
		if rec.Prediction.Status != pipeline.Unknown {
			c.ClassifiedFlows++
		} else {
			c.AbstainedFlows++
		}
		if c.Confidence == nil {
			c.Confidence = &ConfidenceHist{} //vp:allocok lazy one-time init per window cell
		}
		c.Confidence.Observe(rec.Prediction.PlatformConf)
	}
	c.WatchSeconds += rec.Duration().Seconds()
	c.BytesDown += rec.BytesDown
	c.BytesUp += rec.BytesUp
	if m := rec.MbpsDown(); m > c.PeakMbpsDown {
		c.PeakMbpsDown = m
	}
}

func (c *Cell) seal() {
	if c.WatchSeconds > 0 {
		c.MeanMbpsDown = float64(c.BytesDown) * 8 / 1e6 / c.WatchSeconds
	}
}

// Merge folds src into c. Additive fields sum, PeakMbpsDown takes the max,
// and MeanMbpsDown is recomputed from the merged totals — the watch-time-
// weighted mean, not an average of the two means.
func (c *Cell) Merge(src *Cell) {
	c.Flows += src.Flows
	c.ClassifiedFlows += src.ClassifiedFlows
	c.AbstainedFlows += src.AbstainedFlows
	if src.Confidence != nil {
		if c.Confidence == nil {
			c.Confidence = &ConfidenceHist{}
		}
		c.Confidence.Merge(src.Confidence)
	}
	c.WatchSeconds += src.WatchSeconds
	c.BytesDown += src.BytesDown
	c.BytesUp += src.BytesUp
	if src.PeakMbpsDown > c.PeakMbpsDown {
		c.PeakMbpsDown = src.PeakMbpsDown
	}
	c.seal()
}

// Window is one sealed tumbling window of flow aggregates: the unit the
// rollup engine retires to its sink. Flows are assigned to windows by their
// LastSeen timestamp (the moment the flow finalized).
type Window struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`

	Flows           int `json:"flows"`
	ClassifiedFlows int `json:"classified_flows"`
	// LateFlows counts records whose LastSeen predated the window (e.g.
	// idle evictions surfacing after their window closed); they are folded
	// into this window rather than reopening a sealed one.
	LateFlows int `json:"late_flows,omitempty"`
	// ClassificationRate is ClassifiedFlows/Flows; filled when sealed.
	ClassificationRate float64 `json:"classification_rate"`

	ByProvider map[string]*Cell `json:"by_provider,omitempty"`
	ByPlatform map[string]*Cell `json:"by_platform,omitempty"`

	// ModelVersions counts the window's classified flows by the registry
	// version of the bank that classified them ("unversioned" for ad-hoc
	// banks). During a hot-swap a window legitimately spans two versions;
	// this keeps every sealed rollup attributable to the models that
	// produced it.
	ModelVersions map[string]int `json:"model_versions,omitempty"`

	// Latency digests the classification latency (FlowRecord.ClassifyNanos)
	// of the window's flows. Mergeable bucket counts, so downsampled tiers
	// and Query re-aggregation report the same quantiles a single wider
	// window would have; nil when no timed classification landed (e.g. the
	// pipeline ran without an observer).
	Latency *obs.Summary `json:"latency,omitempty"`

	// Quality digests decision quality: verdict counts, confidence/margin
	// histograms, drift score and shadow agreement. Non-nil for any window
	// with at least one flow.
	Quality *QualitySummary `json:"quality,omitempty"`
}

func (w *Window) add(rec *pipeline.FlowRecord) {
	w.Flows++
	classified := rec.Classified && rec.Prediction.Status != pipeline.Unknown
	if classified {
		w.ClassifiedFlows++
	}
	prov := rec.Provider.String()
	if !rec.Classified && rec.SNI == "" {
		prov = "unmatched" // never got far enough to identify a provider
	}
	cell := w.ByProvider[prov]
	if cell == nil {
		cell = &Cell{}
		w.ByProvider[prov] = cell
	}
	cell.add(rec)

	platform := "unclassified"
	if classified && rec.Prediction.Platform != "" {
		platform = rec.Prediction.Platform
	}
	cell = w.ByPlatform[platform]
	if cell == nil {
		cell = &Cell{}
		w.ByPlatform[platform] = cell
	}
	cell.add(rec)

	if rec.Classified {
		ver := rec.ModelVersion
		if ver == "" {
			ver = "unversioned"
		}
		if w.ModelVersions == nil {
			w.ModelVersions = map[string]int{}
		}
		w.ModelVersions[ver]++
	}

	if rec.ClassifyNanos > 0 {
		if w.Latency == nil {
			w.Latency = &obs.Summary{}
		}
		w.Latency.Observe(time.Duration(rec.ClassifyNanos))
	}

	if w.Quality == nil {
		w.Quality = &QualitySummary{}
	}
	w.Quality.add(rec)
}

func (w *Window) seal() {
	if w.Flows > 0 {
		w.ClassificationRate = float64(w.ClassifiedFlows) / float64(w.Flows)
	}
	for _, c := range w.ByProvider {
		c.seal()
	}
	for _, c := range w.ByPlatform {
		c.seal()
	}
}

// Clone returns a deep copy of w that shares no state with the original.
func (w *Window) Clone() *Window {
	snap := *w
	snap.ByProvider = cloneCells(w.ByProvider)
	snap.ByPlatform = cloneCells(w.ByPlatform)
	if w.ModelVersions != nil {
		snap.ModelVersions = make(map[string]int, len(w.ModelVersions))
		for k, v := range w.ModelVersions {
			snap.ModelVersions[k] = v
		}
	}
	snap.Latency = w.Latency.Clone()
	snap.Quality = w.Quality.Clone()
	return &snap
}

// Merge folds src into w: the time range extends to cover both windows,
// counters sum, per-key cells merge (watch-time-weighted means, max peaks),
// ModelVersions counts add, and ClassificationRate is recomputed from the
// merged totals. Merging sealed windows this way keeps every derived field
// consistent with what a single wider rollup window over the same flows
// would have produced — the invariant the store's downsampling tiers and
// Query re-aggregation both rely on. src is not modified.
func (w *Window) Merge(src *Window) {
	if w.Start.IsZero() || src.Start.Before(w.Start) {
		w.Start = src.Start
	}
	if src.End.After(w.End) {
		w.End = src.End
	}
	w.Flows += src.Flows
	w.ClassifiedFlows += src.ClassifiedFlows
	w.LateFlows += src.LateFlows
	if w.Flows > 0 {
		w.ClassificationRate = float64(w.ClassifiedFlows) / float64(w.Flows)
	}
	w.ByProvider = mergeCells(w.ByProvider, src.ByProvider)
	w.ByPlatform = mergeCells(w.ByPlatform, src.ByPlatform)
	if len(src.ModelVersions) > 0 {
		if w.ModelVersions == nil {
			w.ModelVersions = make(map[string]int, len(src.ModelVersions))
		}
		for k, v := range src.ModelVersions {
			w.ModelVersions[k] += v
		}
	}
	if src.Latency != nil {
		if w.Latency == nil {
			w.Latency = &obs.Summary{}
		}
		w.Latency.Merge(src.Latency)
	}
	if src.Quality != nil {
		if w.Quality == nil {
			w.Quality = &QualitySummary{}
		}
		w.Quality.Merge(src.Quality)
	}
}

// mergeCells folds src's cells into dst by key, allocating dst (and copies
// of src's cells) as needed; src cells are never aliased.
func mergeCells(dst, src map[string]*Cell) map[string]*Cell {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]*Cell, len(src))
	}
	for k, c := range src {
		d := dst[k]
		if d == nil {
			d = &Cell{}
			dst[k] = d
		}
		d.Merge(c)
	}
	return dst
}

// Sink receives sealed windows. WriteWindow may be called from the
// goroutine driving Rollup.Add; implementations that share state with other
// goroutines must synchronize internally.
type Sink interface {
	WriteWindow(w *Window) error
}

// MultiSink fans each sealed window out to every sink in order, e.g. a
// queryable Store plus a JSONL archive. All sinks are offered every window
// even when an earlier one fails; the errors are joined. The window pointer
// is shared across sinks, so sinks that retain windows (the Store) must
// copy rather than mutate.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) WriteWindow(w *Window) error {
	var errs []error
	for _, s := range m {
		if err := s.WriteWindow(w); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// JSONLSink writes one JSON object per sealed window, newline-delimited —
// the flat-file stand-in for the paper deployment's PostgreSQL rollups.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
}

// NewJSONLSink returns a Sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{enc: json.NewEncoder(w)} }

// WriteWindow encodes one window as a JSON line.
func (s *JSONLSink) WriteWindow(w *Window) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(w); err != nil {
		return fmt.Errorf("telemetry: jsonl sink: %w", err)
	}
	s.n++
	return nil
}

// Windows reports how many windows have been written.
func (s *JSONLSink) Windows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Rollup maintains tumbling time windows of per-provider and per-platform
// aggregates over finalized flow records, sealing and retiring each window
// to the sink as flow time crosses the window boundary. Windows are aligned
// to multiples of the width. Time is record-supplied (LastSeen), so replay
// and live operation roll up identically.
//
// Rollup is safe for concurrent use.
type Rollup struct {
	mu       sync.Mutex
	width    time.Duration
	sink     Sink
	enrich   func(*Window)
	cur      *Window
	sealed   int
	sinkErr  error  // first failure, kept verbatim for /stats
	sinkErrs uint64 // every failure, for the sink-errors counter
}

// NewRollup returns a Rollup with the given window width (default 1 minute
// if non-positive) retiring sealed windows to sink (which may be nil to
// discard).
func NewRollup(width time.Duration, sink Sink) *Rollup {
	if width <= 0 {
		width = time.Minute
	}
	return &Rollup{width: width, sink: sink}
}

// Width returns the tumbling window width.
func (r *Rollup) Width() time.Duration { return r.width }

// SetEnrich installs a hook invoked with each window at seal time, just
// before the window is finalized and offered to the sink — the seam where
// the server stamps window-scoped gauges that no flow record carries (drift
// score, shadow agreement deltas). The hook runs with the rollup lock held:
// it must not call back into the Rollup (deadlock) and should be cheap.
// Call before the first Add; not synchronized against concurrent Adds.
func (r *Rollup) SetEnrich(fn func(*Window)) {
	r.mu.Lock()
	r.enrich = fn
	r.mu.Unlock()
}

// Add folds one finalized flow record into the rollup, sealing the current
// window first if rec.LastSeen has moved past its end. Records older than
// the current window are folded in as late flows.
func (r *Rollup) Add(rec *pipeline.FlowRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := rec.LastSeen
	if r.cur == nil {
		r.open(ts)
	}
	if !ts.Before(r.cur.End) {
		r.seal()
		r.open(ts) // skip empty gap windows rather than sealing them
	}
	if ts.Before(r.cur.Start) {
		r.cur.LateFlows++
	}
	r.cur.add(rec)
}

// Flush seals and retires the current window, if any. Call at shutdown so
// the trailing partial window reaches the sink.
func (r *Rollup) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil && r.cur.Flows > 0 {
		r.seal()
	}
	r.cur = nil
}

// Sealed reports how many windows have been sealed and offered to the sink.
func (r *Rollup) Sealed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sealed
}

// Err returns the first sink write error, if any.
func (r *Rollup) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// SinkErrors reports how many WriteWindow calls have failed — every
// failure, not just the first one Err keeps. A sink that recovers (e.g.
// disk full, then space freed) leaves Err set but stops incrementing this
// counter, so operators can tell a transient failure from an ongoing one.
func (r *Rollup) SinkErrors() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErrs
}

// Current returns a deep snapshot of the in-progress window, or nil if no
// record has arrived yet — the live view the /stats endpoint serves.
func (r *Rollup) Current() *Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return nil
	}
	snap := *r.cur
	snap.ByProvider = cloneCells(r.cur.ByProvider)
	snap.ByPlatform = cloneCells(r.cur.ByPlatform)
	if r.cur.ModelVersions != nil {
		snap.ModelVersions = make(map[string]int, len(r.cur.ModelVersions))
		for k, v := range r.cur.ModelVersions {
			snap.ModelVersions[k] = v
		}
	}
	snap.Latency = r.cur.Latency.Clone()
	snap.Quality = r.cur.Quality.Clone()
	snap.seal()
	return &snap
}

func cloneCells(m map[string]*Cell) map[string]*Cell {
	out := make(map[string]*Cell, len(m))
	for k, c := range m {
		cc := *c
		cc.Confidence = c.Confidence.Clone()
		out[k] = &cc
	}
	return out
}

func (r *Rollup) open(ts time.Time) {
	start := ts.Truncate(r.width)
	if ts.Before(start) { // Truncate rounds toward zero; guard pre-epoch times
		start = start.Add(-r.width)
	}
	r.cur = &Window{
		Start:      start,
		End:        start.Add(r.width),
		ByProvider: map[string]*Cell{},
		ByPlatform: map[string]*Cell{},
	}
}

// seal finalizes cur and hands it to the sink; callers must hold mu and
// replace cur afterwards.
func (r *Rollup) seal() {
	if r.enrich != nil {
		r.enrich(r.cur)
	}
	r.cur.seal()
	r.sealed++
	if r.sink != nil {
		if err := r.sink.WriteWindow(r.cur); err != nil {
			r.sinkErrs++
			if r.sinkErr == nil {
				r.sinkErr = err
			}
		}
	}
}
