// Package telemetry aggregates classified flow records into the usage
// statistics of the paper's §5: watch time per user platform (Figs 7–8),
// bandwidth distributions (Figs 9–10) and hourly data-usage patterns
// (Fig 11).
package telemetry

import (
	"math"
	"sort"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
)

// BoxStats are the five-number summary the paper's box plots show.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// NewBoxStats summarizes xs; it returns a zero value for empty input.
func NewBoxStats(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := p * float64(len(s)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		if lo == hi {
			return s[lo]
		}
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return BoxStats{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1], N: len(s)}
}

// IQR is the interquartile range.
func (b BoxStats) IQR() float64 { return b.Q3 - b.Q1 }

// Aggregator accumulates classified flow records. Only records whose
// prediction cleared the confidence selector contribute to platform
// breakdowns; the paper excludes the ~20% low-confidence sessions the same
// way.
type Aggregator struct {
	// Days is the measurement span used to normalize watch time to
	// hours/day. Set before reporting; defaults to 1.
	Days float64

	records []*pipeline.FlowRecord
}

// Add appends a record.
func (a *Aggregator) Add(rec *pipeline.FlowRecord) { a.records = append(a.records, rec) }

// Len reports the number of records.
func (a *Aggregator) Len() int { return len(a.records) }

// usable reports whether a record contributes to platform-level stats.
func usable(rec *pipeline.FlowRecord) bool {
	return rec.Classified && rec.Content && rec.Prediction.Status == pipeline.Composite
}

func (a *Aggregator) days() float64 {
	if a.Days <= 0 {
		return 1
	}
	return a.Days
}

// WatchTimeByDevice returns hours/day of watch time per (provider, device
// type) — Fig 7.
func (a *Aggregator) WatchTimeByDevice() map[fingerprint.Provider]map[string]float64 {
	out := map[fingerprint.Provider]map[string]float64{}
	for _, rec := range a.records {
		if !usable(rec) {
			continue
		}
		m := out[rec.Provider]
		if m == nil {
			m = map[string]float64{}
			out[rec.Provider] = m
		}
		m[rec.Prediction.Device] += rec.Duration().Hours() / a.days()
	}
	return out
}

// WatchTimeByAgent returns hours/day per (provider, device, agent) — Fig 8.
func (a *Aggregator) WatchTimeByAgent() map[fingerprint.Provider]map[string]map[string]float64 {
	out := map[fingerprint.Provider]map[string]map[string]float64{}
	for _, rec := range a.records {
		if !usable(rec) {
			continue
		}
		byDev := out[rec.Provider]
		if byDev == nil {
			byDev = map[string]map[string]float64{}
			out[rec.Provider] = byDev
		}
		byAgent := byDev[rec.Prediction.Device]
		if byAgent == nil {
			byAgent = map[string]float64{}
			byDev[rec.Prediction.Device] = byAgent
		}
		byAgent[rec.Prediction.Agent] += rec.Duration().Hours() / a.days()
	}
	return out
}

// BandwidthByDevice returns downstream-bandwidth box stats per
// (provider, device) — Fig 9.
func (a *Aggregator) BandwidthByDevice() map[fingerprint.Provider]map[string]BoxStats {
	samples := map[fingerprint.Provider]map[string][]float64{}
	for _, rec := range a.records {
		if !usable(rec) {
			continue
		}
		m := samples[rec.Provider]
		if m == nil {
			m = map[string][]float64{}
			samples[rec.Provider] = m
		}
		m[rec.Prediction.Device] = append(m[rec.Prediction.Device], rec.MbpsDown())
	}
	out := map[fingerprint.Provider]map[string]BoxStats{}
	for prov, m := range samples {
		out[prov] = map[string]BoxStats{}
		for dev, xs := range m {
			out[prov][dev] = NewBoxStats(xs)
		}
	}
	return out
}

// BandwidthByAgent returns bandwidth box stats per (provider, device,
// agent) — Fig 10.
func (a *Aggregator) BandwidthByAgent() map[fingerprint.Provider]map[string]map[string]BoxStats {
	samples := map[fingerprint.Provider]map[string]map[string][]float64{}
	for _, rec := range a.records {
		if !usable(rec) {
			continue
		}
		byDev := samples[rec.Provider]
		if byDev == nil {
			byDev = map[string]map[string][]float64{}
			samples[rec.Provider] = byDev
		}
		byAgent := byDev[rec.Prediction.Device]
		if byAgent == nil {
			byAgent = map[string][]float64{}
			byDev[rec.Prediction.Device] = byAgent
		}
		byAgent[rec.Prediction.Agent] = append(byAgent[rec.Prediction.Agent], rec.MbpsDown())
	}
	out := map[fingerprint.Provider]map[string]map[string]BoxStats{}
	for prov, byDev := range samples {
		out[prov] = map[string]map[string]BoxStats{}
		for dev, byAgent := range byDev {
			out[prov][dev] = map[string]BoxStats{}
			for agent, xs := range byAgent {
				out[prov][dev][agent] = NewBoxStats(xs)
			}
		}
	}
	return out
}

// HourlyUsage returns median GB/hour for each hour of day, split into the
// PC and Mobile device classes — Fig 11. Flows contribute their volume to
// the hour of their start time; per-day series are collected and the median
// across days is reported.
func (a *Aggregator) HourlyUsage(prov fingerprint.Provider) (pc, mobile [24]float64) {
	type dayHour struct {
		day  int
		hour int
	}
	pcAcc := map[dayHour]float64{}
	mobAcc := map[dayHour]float64{}
	var t0 time.Time
	for _, rec := range a.records {
		if usable(rec) && (t0.IsZero() || rec.FirstSeen.Before(t0)) {
			t0 = rec.FirstSeen
		}
	}
	for _, rec := range a.records {
		if !usable(rec) || rec.Provider != prov {
			continue
		}
		var class string
		switch rec.Prediction.Device {
		case "windows", "macOS":
			class = "PC"
		case "android", "iOS":
			class = "Mobile"
		default:
			continue
		}
		dh := dayHour{
			day:  int(rec.FirstSeen.Sub(t0).Hours() / 24),
			hour: rec.FirstSeen.Hour(),
		}
		gb := float64(rec.BytesDown) / 1e9
		if class == "PC" {
			pcAcc[dh] += gb
		} else {
			mobAcc[dh] += gb
		}
	}
	collect := func(acc map[dayHour]float64) [24]float64 {
		byHour := map[int][]float64{}
		for dh, v := range acc {
			byHour[dh.hour] = append(byHour[dh.hour], v)
		}
		var out [24]float64
		for h, xs := range byHour {
			out[h] = NewBoxStats(xs).Median
		}
		return out
	}
	return collect(pcAcc), collect(mobAcc)
}

// TotalWatchHours sums usable watch time (the "400k hours" headline).
func (a *Aggregator) TotalWatchHours() float64 {
	var total float64
	for _, rec := range a.records {
		if usable(rec) {
			total += rec.Duration().Hours()
		}
	}
	return total
}

// ExcludedFraction reports the share of classified content flows rejected by
// the confidence selector (the paper excluded ~20%).
func (a *Aggregator) ExcludedFraction() float64 {
	var excluded, total float64
	for _, rec := range a.records {
		if !rec.Classified || !rec.Content {
			continue
		}
		total++
		if rec.Prediction.Status != pipeline.Composite {
			excluded++
		}
	}
	if total == 0 {
		return 0
	}
	return excluded / total
}
