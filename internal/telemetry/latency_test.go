package telemetry

import (
	"bytes"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
)

// latRec is rollRec plus a classification latency stamp.
func latRec(start time.Time, classifyNanos int64) *pipeline.FlowRecord {
	r := rollRec(fingerprint.YouTube, "windows_chrome", start, 10*time.Second, 10<<20)
	r.ClassifyNanos = classifyNanos
	return r
}

// TestWindowLatencyFold checks the rollup folds ClassifyNanos into the
// window's latency summary and that seal/Current/Clone all carry it.
func TestWindowLatencyFold(t *testing.T) {
	cap := &captureSink{}
	r := NewRollup(time.Minute, cap)
	r.Add(latRec(w0, int64(2*time.Millisecond)))
	r.Add(latRec(w0.Add(time.Second), int64(4*time.Millisecond)))
	r.Add(rollRec(fingerprint.Netflix, "", w0.Add(2*time.Second), time.Second, 1<<20)) // no latency stamp

	cur := r.Current()
	if cur.Latency == nil || cur.Latency.Count != 2 {
		t.Fatalf("Current latency = %+v, want 2 samples", cur.Latency)
	}
	// Current must deep-copy: observing into the snapshot's summary must
	// not affect the live window.
	cur.Latency.Observe(time.Second)
	if got := r.Current().Latency.Count; got != 2 {
		t.Fatalf("live window latency count = %d after mutating snapshot, want 2", got)
	}

	r.Flush()
	if len(cap.wins) != 1 {
		t.Fatalf("sealed %d windows, want 1", len(cap.wins))
	}
	w := cap.wins[0]
	if w.Latency == nil || w.Latency.Count != 2 {
		t.Fatalf("sealed latency = %+v, want 2 samples", w.Latency)
	}
	if got := w.Latency.MaxNS; got != int64(4*time.Millisecond) {
		t.Errorf("sealed latency max = %d, want 4ms", got)
	}
	c := w.Clone()
	c.Latency.Observe(time.Second)
	if w.Latency.Count != 2 {
		t.Error("Clone aliases the latency summary")
	}
}

// TestQueryLatencySeries is the acceptance-criteria path: a step-aligned
// p99 classification-latency series that survives 1m→10m downsampling and
// a persistence round trip.
func TestQueryLatencySeries(t *testing.T) {
	var persisted bytes.Buffer
	store := NewStore(StoreConfig{
		Tiers:   []time.Duration{10 * time.Minute},
		Persist: NewJSONLSink(&persisted),
	})

	// 30 one-minute windows, two samples each, latency ramping by window so
	// buckets are distinguishable after merging.
	var recs []*pipeline.FlowRecord
	for i := 0; i < 30; i++ {
		base := w0.Add(time.Duration(i) * time.Minute)
		recs = append(recs,
			latRec(base, int64(time.Duration(i+1)*time.Millisecond)),
			latRec(base.Add(20*time.Second), int64(time.Duration(2*(i+1))*time.Millisecond)))
	}
	feed(t, store, sealWindows(t, time.Minute, recs...)...)

	// Raw-resolution query: every 1m bucket has its own p99.
	res, err := store.Query(time.Time{}, time.Time{}, time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 30 {
		t.Fatalf("raw query: %d series / %d points", len(res.Series), len(res.Series[0].Points))
	}
	for i, p := range res.Series[0].Points {
		if p.LatencyCount != 2 {
			t.Fatalf("point %d latency count = %d, want 2", i, p.LatencyCount)
		}
		wantMax := float64(2 * (i + 1))
		if p.LatencyMaxMs != wantMax {
			t.Errorf("point %d latency max = %vms, want %v", i, p.LatencyMaxMs, wantMax)
		}
		// p99 reports a bucket upper bound ≥ the true max, within the ~3%
		// log-linear resolution.
		if p.LatencyP99Ms < wantMax || p.LatencyP99Ms > wantMax*1.04 {
			t.Errorf("point %d p99 = %vms, want ~%vms", i, p.LatencyP99Ms, wantMax)
		}
		if p.LatencyP50Ms <= 0 || p.LatencyP50Ms > p.LatencyP99Ms {
			t.Errorf("point %d p50 = %vms out of order with p99 %vms", i, p.LatencyP50Ms, p.LatencyP99Ms)
		}
	}

	// 10-minute step: source windows merge; each bucket's digest must equal
	// the union of its windows' samples (count 20, max from the last window
	// in the bucket).
	res10, err := store.Query(time.Time{}, time.Time{}, 10*time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	pts := res10.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("10m query: %d points, want 3", len(pts))
	}
	for i, p := range pts {
		if p.LatencyCount != 20 {
			t.Errorf("10m point %d count = %d, want 20", i, p.LatencyCount)
		}
		wantMax := float64(2 * 10 * (i + 1)) // last window in the bucket
		if p.LatencyMaxMs != wantMax {
			t.Errorf("10m point %d max = %vms, want %v", i, p.LatencyMaxMs, wantMax)
		}
	}

	// Restart: reload the persisted JSONL into a fresh store and re-run the
	// 10m query — the latency series must survive byte-exact.
	fresh := NewStore(StoreConfig{Tiers: []time.Duration{10 * time.Minute}})
	if n, err := fresh.Reload(bytes.NewReader(persisted.Bytes())); err != nil || n != 30 {
		t.Fatalf("Reload = %d, %v; want 30, nil", n, err)
	}
	resBack, err := fresh.Query(time.Time{}, time.Time{}, 10*time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	back := resBack.Series[0].Points
	if len(back) != len(pts) {
		t.Fatalf("reloaded points = %d, want %d", len(back), len(pts))
	}
	for i := range pts {
		if back[i].LatencyP99Ms != pts[i].LatencyP99Ms || back[i].LatencyCount != pts[i].LatencyCount ||
			back[i].LatencyMaxMs != pts[i].LatencyMaxMs {
			t.Errorf("point %d changed across restart: %+v vs %+v", i, back[i], pts[i])
		}
	}

	// Evict the raw ring so the downsampled 10m tier serves the query; the
	// tier's merged summaries must agree with raw re-aggregation.
	small := NewStore(StoreConfig{MaxWindows: 5, Tiers: []time.Duration{10 * time.Minute}})
	feed(t, small, sealWindows(t, time.Minute, recs...)...)
	resTier, err := small.Query(w0, time.Time{}, 10*time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	if resTier.TierSeconds != 600 {
		t.Fatalf("query served from %vs tier, want 600 (raw evicted)", resTier.TierSeconds)
	}
	tierPts := resTier.Series[0].Points
	if len(tierPts) != 3 {
		t.Fatalf("tier query: %d points, want 3", len(tierPts))
	}
	for i := range tierPts {
		if tierPts[i].LatencyP99Ms != pts[i].LatencyP99Ms || tierPts[i].LatencyCount != pts[i].LatencyCount {
			t.Errorf("downsampled point %d diverges: %+v vs raw %+v", i, tierPts[i], pts[i])
		}
	}
}

// TestQueryNoLatency pins that windows without latency stamps leave the
// query fields zero rather than fabricating digests.
func TestQueryNoLatency(t *testing.T) {
	store := NewStore(StoreConfig{})
	feed(t, store, sealWindows(t, time.Minute,
		rollRec(fingerprint.YouTube, "windows_chrome", w0, 10*time.Second, 1<<20))...)
	res, err := store.Query(time.Time{}, time.Time{}, time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Series[0].Points[0]
	if p.LatencyCount != 0 || p.LatencyP99Ms != 0 {
		t.Errorf("latency fields populated without stamps: %+v", p)
	}
}
