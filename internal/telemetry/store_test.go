package telemetry

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
)

// captureSink retains sealed windows for assertions.
type captureSink struct{ wins []*Window }

func (c *captureSink) WriteWindow(w *Window) error {
	c.wins = append(c.wins, w)
	return nil
}

// sealWindows runs records through a real Rollup so the windows a test
// stores carry exactly the derived fields production windows do.
func sealWindows(t *testing.T, width time.Duration, recs ...*pipeline.FlowRecord) []*Window {
	t.Helper()
	cap := &captureSink{}
	r := NewRollup(width, cap)
	for _, rec := range recs {
		r.Add(rec)
	}
	r.Flush()
	return cap.wins
}

func feed(t *testing.T, s *Store, wins ...*Window) {
	t.Helper()
	for _, w := range wins {
		if err := s.WriteWindow(w); err != nil {
			t.Fatalf("WriteWindow: %v", err)
		}
	}
}

func TestStoreQueryStepReaggregation(t *testing.T) {
	// Two 1-minute windows re-aggregated into one 2-minute point: sums for
	// flows/bytes/watch, max for peak, and a watch-time-weighted mean —
	// NOT the average of the two windows' means.
	a := rollRec(fingerprint.YouTube, "windows_chrome", w0, 10*time.Second, 10<<20)
	b := rollRec(fingerprint.YouTube, "iOS_nativeApp", w0.Add(70*time.Second), 20*time.Second, 5<<20)
	wins := sealWindows(t, time.Minute, a, b)
	if len(wins) != 2 {
		t.Fatalf("sealed %d windows, want 2", len(wins))
	}

	s := NewStore(StoreConfig{})
	feed(t, s, wins...)

	res, err := s.Query(time.Time{}, time.Time{}, 2*time.Minute, GroupProvider)
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceWindows != 2 || len(res.Series) != 1 {
		t.Fatalf("result = %d source windows, %d series; want 2, 1", res.SourceWindows, len(res.Series))
	}
	sr := res.Series[0]
	if sr.Key != "youtube" || len(sr.Points) != 1 {
		t.Fatalf("series = %q with %d points", sr.Key, len(sr.Points))
	}
	p := sr.Points[0]
	if !p.Start.Equal(w0) || !p.End.Equal(w0.Add(2*time.Minute)) {
		t.Errorf("point bounds = %v..%v", p.Start, p.End)
	}
	if p.Windows != 2 || p.Flows != 2 || p.ClassifiedFlows != 2 {
		t.Errorf("point counts = %+v", p)
	}
	if p.BytesDown != 15<<20 || p.WatchSeconds != 30 {
		t.Errorf("bytes/watch = %d/%v", p.BytesDown, p.WatchSeconds)
	}
	wantMean := float64(15<<20) * 8 / 1e6 / 30
	if math.Abs(p.MeanMbpsDown-wantMean) > 1e-9 {
		t.Errorf("merged mean = %v, want weighted %v", p.MeanMbpsDown, wantMean)
	}
	// The naive average of the two window means would be wrong.
	m0 := wins[0].ByProvider["youtube"].MeanMbpsDown
	m1 := wins[1].ByProvider["youtube"].MeanMbpsDown
	if naive := (m0 + m1) / 2; math.Abs(p.MeanMbpsDown-naive) < 1e-9 {
		t.Errorf("merged mean %v equals naive average — not watch-time weighted", naive)
	}
	wantPeak := math.Max(wins[0].ByProvider["youtube"].PeakMbpsDown, wins[1].ByProvider["youtube"].PeakMbpsDown)
	if p.PeakMbpsDown != wantPeak {
		t.Errorf("merged peak = %v, want %v", p.PeakMbpsDown, wantPeak)
	}

	// Bucket alignment: a step equal to the window width returns the
	// original windows' buckets; a sub-width step is raised to the width.
	res, err = s.Query(time.Time{}, time.Time{}, time.Second, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepSeconds != 60 {
		t.Errorf("sub-width step not clamped: %v", res.StepSeconds)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 2 {
		t.Fatalf("total series = %+v", res.Series)
	}
	if got := res.Series[0].Points[0].Flows + res.Series[0].Points[1].Flows; got != 2 {
		t.Errorf("total flows across points = %d", got)
	}
}

func TestStoreQueryRangeAndGroups(t *testing.T) {
	recs := []*pipeline.FlowRecord{
		rollRec(fingerprint.YouTube, "windows_chrome", w0, 10*time.Second, 1<<20),
		rollRec(fingerprint.Netflix, "", w0.Add(time.Minute), 10*time.Second, 2<<20),
		rollRec(fingerprint.Disney, "macOS_safari", w0.Add(2*time.Minute), 10*time.Second, 3<<20),
	}
	recs[1].SNI = "nflxvideo.net" // provider identified but never classified
	s := NewStore(StoreConfig{})
	feed(t, s, sealWindows(t, time.Minute, recs...)...)

	// Half-open range [since, until) selects windows by Start.
	res, err := s.Query(w0.Add(time.Minute), w0.Add(2*time.Minute), 0, GroupProvider)
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceWindows != 1 || len(res.Series) != 1 || res.Series[0].Key != "netflix" {
		t.Fatalf("range query = %+v", res)
	}

	// Platform grouping separates classified platforms from "unclassified".
	res, err = s.Query(time.Time{}, time.Time{}, time.Hour, GroupPlatform)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, sr := range res.Series {
		keys[sr.Key] = true
	}
	for _, want := range []string{"windows_chrome", "macOS_safari", "unclassified"} {
		if !keys[want] {
			t.Errorf("platform series missing %q (have %v)", want, keys)
		}
	}

	if _, err := s.Query(time.Time{}, time.Time{}, 0, "device"); err == nil {
		t.Error("unknown group-by accepted")
	}
}

func TestStoreQueryLateFlowsAndModelVersions(t *testing.T) {
	// Window 1: one v0001 flow plus a late flow; window 2: two v0002 flows.
	// Merged into one bucket, late counts and per-version counts must sum.
	a := rollRec(fingerprint.YouTube, "windows_chrome", w0, 10*time.Second, 1<<20)
	a.ModelVersion = "v0001"
	late := rollRec(fingerprint.Netflix, "", w0.Add(-time.Hour), 10*time.Second, 1<<20)
	b := rollRec(fingerprint.Disney, "macOS_safari", w0.Add(time.Minute), 10*time.Second, 1<<20)
	b.ModelVersion = "v0002"
	c := rollRec(fingerprint.Amazon, "iOS_nativeApp", w0.Add(61*time.Second), 10*time.Second, 1<<20)
	c.ModelVersion = "v0002"

	cap := &captureSink{}
	r := NewRollup(time.Minute, cap)
	r.Add(a)
	r.Add(late) // folded into the open window as a late flow
	r.Add(b)
	r.Add(c)
	r.Flush()
	if len(cap.wins) != 2 || cap.wins[0].LateFlows != 1 {
		t.Fatalf("sealed = %d windows, late = %d", len(cap.wins), cap.wins[0].LateFlows)
	}

	s := NewStore(StoreConfig{})
	feed(t, s, cap.wins...)

	res, err := s.Query(time.Time{}, time.Time{}, time.Hour, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Series[0].Points[0]
	if p.Flows != 4 || p.LateFlows != 1 {
		t.Errorf("total point = flows %d late %d, want 4/1", p.Flows, p.LateFlows)
	}

	res, err = s.Query(time.Time{}, time.Time{}, time.Hour, GroupModel)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, sr := range res.Series {
		if len(sr.Points) != 1 {
			t.Fatalf("model series %q has %d points", sr.Key, len(sr.Points))
		}
		got[sr.Key] = sr.Points[0].Flows
	}
	want := map[string]int{"v0001": 1, "v0002": 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("model attribution = %v, want %v", got, want)
	}
}

func TestStoreRetentionEvictionOrder(t *testing.T) {
	var recs []*pipeline.FlowRecord
	for i := 0; i < 5; i++ {
		recs = append(recs, rollRec(fingerprint.YouTube, "", w0.Add(time.Duration(i)*time.Minute), time.Second, 1000))
	}
	wins := sealWindows(t, time.Minute, recs...)

	s := NewStore(StoreConfig{MaxWindows: 3})
	feed(t, s, wins...)

	kept, _, err := s.Windows(time.Time{}, time.Time{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 3 {
		t.Fatalf("retained %d windows, want 3", len(kept))
	}
	// Oldest evicted first: the survivors are the newest three, in order.
	for i, w := range kept {
		want := w0.Add(time.Duration(i+2) * time.Minute)
		if !w.Start.Equal(want) {
			t.Errorf("retained[%d].Start = %v, want %v", i, w.Start, want)
		}
	}
	st := s.Stats()
	if st.EvictedCount != 2 || st.EvictedAge != 0 {
		t.Errorf("evictions = count %d age %d, want 2/0", st.EvictedCount, st.EvictedAge)
	}
	if st.Tiers[0].Windows != 3 || !st.Tiers[0].OldestStart.Equal(w0.Add(2*time.Minute)) {
		t.Errorf("tier stats = %+v", st.Tiers[0])
	}

	// Age retention is anchored to the newest window's End, in trace time.
	s = NewStore(StoreConfig{MaxAge: 90 * time.Second})
	feed(t, s, wins...)
	kept, _, err = s.Windows(time.Time{}, time.Time{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Newest End is w0+5m; the horizon keeps windows ending after w0+3m30s.
	if len(kept) != 2 {
		t.Fatalf("age retention kept %d windows, want 2", len(kept))
	}
	if got := s.Stats().EvictedAge; got != 3 {
		t.Errorf("age evictions = %d, want 3", got)
	}
}

func TestStoreDownsampleTierBoundaries(t *testing.T) {
	// 1-minute windows into a 3-minute tier: minutes 0,1,2 share a bucket,
	// minute 3 opens the next and seals the first.
	var recs []*pipeline.FlowRecord
	for i := 0; i < 4; i++ {
		recs = append(recs, rollRec(fingerprint.YouTube, "windows_chrome", w0.Add(time.Duration(i)*time.Minute), time.Second, 1<<20))
	}
	wins := sealWindows(t, time.Minute, recs...)

	s := NewStore(StoreConfig{Tiers: []time.Duration{3 * time.Minute}})
	feed(t, s, wins[:3]...)
	st := s.Stats()
	if len(st.Tiers) != 2 {
		t.Fatalf("tiers = %+v", st.Tiers)
	}
	coarse := st.Tiers[1]
	if coarse.WidthSeconds != 180 || coarse.Windows != 0 || !coarse.OpenBucket {
		t.Fatalf("coarse tier before boundary = %+v", coarse)
	}

	feed(t, s, wins[3])
	st = s.Stats()
	coarse = st.Tiers[1]
	if coarse.Windows != 1 || !coarse.OpenBucket || coarse.Compactions != 1 || st.Compactions != 1 {
		t.Fatalf("coarse tier after boundary = %+v (store compactions %d)", coarse, st.Compactions)
	}
	sealed, _, err := s.Windows(time.Time{}, time.Time{}, 3*time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 2 { // sealed bucket + open partial
		t.Fatalf("coarse windows = %d, want sealed+open = 2", len(sealed))
	}
	first := sealed[0]
	if !first.Start.Equal(w0) || !first.End.Equal(w0.Add(3*time.Minute)) {
		t.Errorf("bucket bounds = %v..%v, want aligned 3m", first.Start, first.End)
	}
	if first.Flows != 3 || first.ByProvider["youtube"].BytesDown != 3<<20 {
		t.Errorf("bucket aggregates = %+v", first)
	}
	if _, _, err := s.Windows(time.Time{}, time.Time{}, 7*time.Minute, 0); err == nil {
		t.Error("unknown tier accepted")
	}
}

func TestStoreQueryFallsBackToCoarseTier(t *testing.T) {
	// Raw retention of 2 with a 3-minute tier: after 6 windows the raw ring
	// only reaches back 2 minutes, so a full-history query must be served
	// from the coarse tier — same totals, coarser resolution.
	var recs []*pipeline.FlowRecord
	for i := 0; i < 6; i++ {
		recs = append(recs, rollRec(fingerprint.YouTube, "windows_chrome", w0.Add(time.Duration(i)*time.Minute), time.Second, 1<<20))
	}
	wins := sealWindows(t, time.Minute, recs...)

	s := NewStore(StoreConfig{MaxWindows: 2, Tiers: []time.Duration{3 * time.Minute}})
	feed(t, s, wins...)

	res, err := s.Query(w0, time.Time{}, 3*time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	if res.TierSeconds != 180 {
		t.Fatalf("query served from tier %vs, want coarse 180", res.TierSeconds)
	}
	var flows int
	for _, p := range res.Series[0].Points {
		flows += p.Flows
	}
	if flows != 6 {
		t.Errorf("coarse-tier total flows = %d, want 6", flows)
	}

	// A recent range the raw ring still covers is served raw.
	res, err = s.Query(w0.Add(4*time.Minute), time.Time{}, 3*time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	if res.TierSeconds != 60 {
		t.Errorf("recent query served from tier %vs, want raw 60", res.TierSeconds)
	}
}

func TestStorePersistenceReloadRoundTrip(t *testing.T) {
	recs := []*pipeline.FlowRecord{
		rollRec(fingerprint.YouTube, "windows_chrome", w0, 10*time.Second, 10<<20),
		rollRec(fingerprint.Netflix, "iOS_nativeApp", w0.Add(time.Minute), 20*time.Second, 5<<20),
		rollRec(fingerprint.Disney, "", w0.Add(3*time.Minute), 30*time.Second, 7<<20),
	}
	recs[0].ModelVersion = "v0001"

	var jsonl bytes.Buffer
	src := NewStore(StoreConfig{Tiers: []time.Duration{2 * time.Minute}, Persist: NewJSONLSink(&jsonl)})
	feed(t, src, sealWindows(t, time.Minute, recs...)...)

	dst := NewStore(StoreConfig{Tiers: []time.Duration{2 * time.Minute}})
	n, err := dst.Reload(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("reloaded %d windows, want 3", n)
	}
	if st := dst.Stats(); st.LoadedWindows != 3 {
		t.Errorf("stats loaded = %d", st.LoadedWindows)
	}

	for _, group := range []string{GroupTotal, GroupProvider, GroupPlatform, GroupModel} {
		a, err := src.Query(time.Time{}, time.Time{}, 2*time.Minute, group)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.Query(time.Time{}, time.Time{}, 2*time.Minute, group)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("group %q: reloaded query differs\n live: %+v\n reloaded: %+v", group, a, b)
		}
	}
	if !dst.Latest().Equal(src.Latest()) {
		t.Errorf("latest = %v, want %v", dst.Latest(), src.Latest())
	}
}

func TestStoreWindowsLimitKeepsNewest(t *testing.T) {
	var recs []*pipeline.FlowRecord
	for i := 0; i < 5; i++ {
		recs = append(recs, rollRec(fingerprint.YouTube, "", w0.Add(time.Duration(i)*time.Minute), time.Second, 1000))
	}
	s := NewStore(StoreConfig{})
	feed(t, s, sealWindows(t, time.Minute, recs...)...)

	wins, total, err := s.Windows(time.Time{}, time.Time{}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 || len(wins) != 2 {
		t.Fatalf("limit listing = %d of %d, want 2 of 5", len(wins), total)
	}
	// The newest two survive, still in ascending order.
	if !wins[0].Start.Equal(w0.Add(3*time.Minute)) || !wins[1].Start.Equal(w0.Add(4*time.Minute)) {
		t.Errorf("limited windows start %v, %v", wins[0].Start, wins[1].Start)
	}
}

func TestStoreQueryCoarseTierAlignsSince(t *testing.T) {
	// Raw retention of 2 with a 3-minute tier: a since that lands inside a
	// coarse bucket must widen to its boundary, not drop the bucket — the
	// straddling bucket's flows stay in the response.
	var recs []*pipeline.FlowRecord
	for i := 0; i < 6; i++ {
		recs = append(recs, rollRec(fingerprint.YouTube, "windows_chrome", w0.Add(time.Duration(i)*time.Minute), time.Second, 1<<20))
	}
	s := NewStore(StoreConfig{MaxWindows: 2, Tiers: []time.Duration{3 * time.Minute}})
	feed(t, s, sealWindows(t, time.Minute, recs...)...)

	// since = w0+1m: raw is evicted back to w0+4m, so the coarse tier
	// serves; its first bucket [w0, w0+3m) straddles since.
	res, err := s.Query(w0.Add(time.Minute), time.Time{}, 3*time.Minute, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	if res.TierSeconds != 180 {
		t.Fatalf("served from tier %vs, want coarse 180", res.TierSeconds)
	}
	if !res.Since.Equal(w0) {
		t.Errorf("since not aligned to the serving tier: %v, want %v", res.Since, w0)
	}
	var flows int
	for _, p := range res.Series[0].Points {
		flows += p.Flows
	}
	if flows != 6 {
		t.Errorf("straddling bucket dropped: %d flows, want all 6", flows)
	}
}

func TestStoreQueryModelCountsAttempts(t *testing.T) {
	// Model attribution counts every classification attempt, including
	// confidence-rejected (Unknown) predictions — unlike classified_flows.
	ok := rollRec(fingerprint.YouTube, "windows_chrome", w0, 10*time.Second, 1<<20)
	ok.ModelVersion = "v0001"
	rejected := rollRec(fingerprint.Netflix, "", w0.Add(5*time.Second), 10*time.Second, 1<<20)
	rejected.Classified = true
	rejected.Prediction = pipeline.Prediction{Status: pipeline.Unknown}
	rejected.ModelVersion = "v0001"

	s := NewStore(StoreConfig{})
	feed(t, s, sealWindows(t, time.Minute, ok, rejected)...)

	model, err := s.Query(time.Time{}, time.Time{}, time.Hour, GroupModel)
	if err != nil {
		t.Fatal(err)
	}
	if n := model.Series[0].Points[0].Flows; n != 2 {
		t.Errorf("v0001 attempts = %d, want 2 (rejection included)", n)
	}
	if c := model.Series[0].Points[0].ClassifiedFlows; c != 0 {
		t.Errorf("model series sets classified_flows = %d; attempts must not masquerade as classifications", c)
	}
	total, err := s.Query(time.Time{}, time.Time{}, time.Hour, GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	if c := total.Series[0].Points[0].ClassifiedFlows; c != 1 {
		t.Errorf("total classified = %d, want 1 (Unknown excluded)", c)
	}
}

type failSink struct{ err error }

func (f *failSink) WriteWindow(*Window) error { return f.err }

func TestRollupCountsEverySinkError(t *testing.T) {
	sink := &failSink{err: errors.New("disk full")}
	r := NewRollup(time.Minute, sink)
	for i := 0; i < 3; i++ {
		r.Add(rollRec(fingerprint.YouTube, "", w0.Add(time.Duration(i)*time.Minute), time.Second, 1000))
	}
	r.Flush()
	// 3 sealed windows, all failed: the first error string is kept AND all
	// three failures are counted (the old behavior lost failures 2 and 3).
	if r.Sealed() != 3 {
		t.Fatalf("sealed = %d", r.Sealed())
	}
	if err := r.Err(); err == nil || err.Error() != "disk full" {
		t.Errorf("first error = %v", err)
	}
	if got := r.SinkErrors(); got != 3 {
		t.Errorf("sink errors = %d, want 3", got)
	}
}

func TestMultiSinkFanOut(t *testing.T) {
	good := &captureSink{}
	bad := &failSink{err: errors.New("down")}
	m := MultiSink(bad, good)
	w := &Window{Start: w0, End: w0.Add(time.Minute)}
	if err := m.WriteWindow(w); err == nil {
		t.Error("joined error lost")
	}
	// The failing sink must not starve later sinks.
	if len(good.wins) != 1 {
		t.Errorf("good sink got %d windows", len(good.wins))
	}
}
