package telemetry

import (
	"fmt"
	"sort"
	"time"

	"videoplat/internal/obs"
)

// Query group-by dimensions.
const (
	// GroupTotal aggregates every flow into one "total" series.
	GroupTotal = ""
	// GroupProvider returns one series per video provider (plus
	// "unmatched" for flows that never identified one).
	GroupProvider = "provider"
	// GroupPlatform returns one series per predicted user platform (plus
	// "unclassified").
	GroupPlatform = "platform"
	// GroupModel returns one series per model bank version, counting the
	// classification attempts attributed to each version. Unlike the other
	// groupings this includes confidence-rejected (Unknown) predictions —
	// a version rejecting heavily is exactly the drift signal the
	// attribution exists for — so its totals are NOT comparable to the
	// classified_flows of total/provider/platform series.
	GroupModel = "model"
)

// QueryPoint is one re-aggregated time bucket of a series: the merge of
// every source window (or, for grouped queries, the group's cell in every
// source window) whose Start falls inside [Start, End).
type QueryPoint struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Windows is how many source windows were merged into this bucket
	// (shared by all series of the result).
	Windows int `json:"windows"`

	Flows           int     `json:"flows"`
	ClassifiedFlows int     `json:"classified_flows,omitempty"`
	LateFlows       int     `json:"late_flows,omitempty"`
	WatchSeconds    float64 `json:"watch_seconds,omitempty"`
	BytesDown       int64   `json:"bytes_down,omitempty"`
	BytesUp         int64   `json:"bytes_up,omitempty"`
	// MeanMbpsDown is the watch-time-weighted mean downstream bandwidth
	// over the merged windows; PeakMbpsDown the highest per-flow mean.
	MeanMbpsDown float64 `json:"mean_mbps_down,omitempty"`
	PeakMbpsDown float64 `json:"peak_mbps_down,omitempty"`

	// LatencyCount and the latency quantiles digest the bucket's merged
	// classification-latency summary (total/ungrouped series only — cells
	// do not carry per-group latency). Zero when the windows carried no
	// latency summary.
	LatencyCount  uint64  `json:"latency_count,omitempty"`
	LatencyP50Ms  float64 `json:"latency_p50_ms,omitempty"`
	LatencyP90Ms  float64 `json:"latency_p90_ms,omitempty"`
	LatencyP99Ms  float64 `json:"latency_p99_ms,omitempty"`
	LatencyMaxMs  float64 `json:"latency_max_ms,omitempty"`
	LatencyMeanMs float64 `json:"latency_mean_ms,omitempty"`

	// AbstainedFlows counts confidence-rejected classification attempts in
	// the bucket; AbstainRate is abstained / (classified + abstained) — the
	// share of attempts the open-set selector rejected. Available for total,
	// provider and platform series.
	AbstainedFlows int     `json:"abstained_flows,omitempty"`
	AbstainRate    float64 `json:"abstain_rate,omitempty"`
	// Confidence quantiles/mean digest the bucket's merged confidence
	// histogram over classification attempts. Quantiles are histogram-bucket
	// upper bounds (resolution 1/NumConfidenceBuckets) and therefore exact
	// across downsampling and re-aggregation. Available for total, provider
	// and platform series.
	ConfidenceCount uint64  `json:"confidence_count,omitempty"`
	ConfidenceP10   float64 `json:"confidence_p10,omitempty"`
	ConfidenceP50   float64 `json:"confidence_p50,omitempty"`
	ConfidenceMean  float64 `json:"confidence_mean,omitempty"`

	// Verdicts, DriftScore and the shadow counters surface the bucket's
	// merged QualitySummary (total series only — the summary is
	// window-scoped, not per-cell).
	Verdicts        map[string]uint64 `json:"verdicts,omitempty"`
	DriftScore      float64           `json:"drift_score,omitempty"`
	ShadowAgreed    uint64            `json:"shadow_agreed,omitempty"`
	ShadowDisagreed uint64            `json:"shadow_disagreed,omitempty"`
}

// QuerySeries is one group's time series, points in ascending Start order.
// Empty buckets are omitted, not zero-filled.
type QuerySeries struct {
	// Key is the group value ("total", a provider, a platform label, or a
	// model version, per the query's GroupBy).
	Key    string       `json:"key"`
	Points []QueryPoint `json:"points"`
}

// QueryResult is a Store.Query response.
type QueryResult struct {
	// Since/Until echo the query range (zero = unbounded on that side).
	Since time.Time `json:"since,omitzero"`
	Until time.Time `json:"until,omitzero"`
	// StepSeconds is the bucket width actually used (the raw window width
	// when the query did not constrain it).
	StepSeconds float64 `json:"step_seconds"`
	// GroupBy echoes the grouping dimension ("" = total).
	GroupBy string `json:"group_by,omitempty"`
	// TierSeconds is the resolution of the retention tier that served the
	// query — the raw window width, or a coarser downsampling tier when
	// raw history no longer reaches back to Since.
	TierSeconds float64 `json:"tier_seconds"`
	// SourceWindows is how many stored windows the query scanned.
	SourceWindows int `json:"source_windows"`
	// Series are sorted by Key ("total" alone for ungrouped queries).
	Series []QuerySeries `json:"series"`
}

// Query re-aggregates retained windows into per-step buckets, optionally
// grouped by provider, platform or model version.
//
// Windows are assigned to buckets by their Start: a window contributes when
// since <= Start < until (a zero bound is unbounded), and buckets are
// aligned to multiples of step. A step below the serving tier's resolution
// is raised to it. The query is served from the finest tier — raw first,
// then ascending downsampling tiers no coarser than step — whose retained
// history still covers since; when none does, the tier reaching furthest
// back is used, so long ranges degrade to coarser resolution instead of
// silently missing their oldest buckets. When a coarse tier serves the
// query, since is aligned down to the tier's bucket boundary (and echoed
// in the result) so a straddling bucket is included rather than dropped.
//
// Merged buckets are derived exactly as a single wider rollup window over
// the same flows would be (sums, max peaks, watch-time-weighted means), so
// totals are invariant under step and tier choice.
func (s *Store) Query(since, until time.Time, step time.Duration, groupBy string) (*QueryResult, error) {
	switch groupBy {
	case GroupTotal, GroupProvider, GroupPlatform, GroupModel:
	default:
		return nil, fmt.Errorf("telemetry: query: unknown group-by %q (want provider, platform or model)", groupBy)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	res := &QueryResult{Since: since, Until: until, GroupBy: groupBy, Series: []QuerySeries{}}
	if s.rawWidth == 0 { // no window accepted yet
		if step > 0 {
			res.StepSeconds = step.Seconds()
		}
		return res, nil
	}
	t := s.pickTier(since, step)
	tierWidth := t.width
	if tierWidth == 0 {
		tierWidth = s.rawWidth
	}
	if step < tierWidth {
		step = tierWidth
	}
	if !since.IsZero() && tierWidth > s.rawWidth {
		// Served from a coarse tier: align since down to its bucket
		// boundary so a bucket straddling the requested start is included
		// (slightly over-inclusive) instead of silently dropped. The
		// response echoes the effective range.
		since = bucketStart(since, tierWidth)
		res.Since = since
	}
	res.StepSeconds = step.Seconds()
	res.TierSeconds = tierWidth.Seconds()

	// Merge qualifying windows into step-aligned buckets. Ring windows are
	// merge sources only (Merge never mutates src), so no copies are made
	// until the per-bucket aggregates themselves.
	type bucket struct {
		agg     *Window
		windows int
	}
	buckets := map[time.Time]*bucket{}
	scan := func(w *Window) {
		if !since.IsZero() && w.Start.Before(since) {
			return
		}
		if !until.IsZero() && !w.Start.Before(until) {
			return
		}
		res.SourceWindows++
		bs := bucketStart(w.Start, step)
		b := buckets[bs]
		if b == nil {
			b = &bucket{agg: &Window{Start: bs, End: bs.Add(step)}}
			buckets[bs] = b
		}
		b.agg.Merge(w)
		b.agg.Start, b.agg.End = bs, bs.Add(step)
		b.windows++
	}
	for _, w := range t.ring {
		scan(w)
	}
	if t.open != nil {
		scan(t.open)
	}

	starts := make([]time.Time, 0, len(buckets))
	for bs := range buckets {
		starts = append(starts, bs)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })

	series := map[string]*QuerySeries{}
	appendPoint := func(key string, p QueryPoint) {
		sr := series[key]
		if sr == nil {
			sr = &QuerySeries{Key: key}
			series[key] = sr
		}
		sr.Points = append(sr.Points, p)
	}
	for _, bs := range starts {
		b := buckets[bs]
		base := QueryPoint{Start: b.agg.Start, End: b.agg.End, Windows: b.windows}
		switch groupBy {
		case GroupTotal:
			total := &Cell{}
			for _, c := range b.agg.ByProvider {
				total.Merge(c)
			}
			p := base
			p.fromCell(total)
			p.Flows = b.agg.Flows // includes flows with no provider cell, if any
			p.ClassifiedFlows = b.agg.ClassifiedFlows
			p.LateFlows = b.agg.LateFlows
			p.fromLatency(b.agg.Latency)
			p.fromQuality(b.agg.Quality)
			appendPoint("total", p)
		case GroupProvider:
			for key, c := range b.agg.ByProvider {
				p := base
				p.fromCell(c)
				appendPoint(key, p)
			}
		case GroupPlatform:
			for key, c := range b.agg.ByPlatform {
				p := base
				p.fromCell(c)
				appendPoint(key, p)
			}
		case GroupModel:
			for key, n := range b.agg.ModelVersions {
				p := base
				p.Flows = n // attempts attributed to the version; see GroupModel
				appendPoint(key, p)
			}
		}
	}

	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		res.Series = append(res.Series, *series[k])
	}
	return res, nil
}

// fromLatency fills the point's latency digest from a merged window
// summary; a nil summary leaves the fields zero.
func (p *QueryPoint) fromLatency(l *obs.Summary) {
	if l == nil || l.Count == 0 {
		return
	}
	const ms = 1e6 // ns per ms
	p.LatencyCount = l.Count
	p.LatencyP50Ms = float64(l.Quantile(0.50)) / ms
	p.LatencyP90Ms = float64(l.Quantile(0.90)) / ms
	p.LatencyP99Ms = float64(l.Quantile(0.99)) / ms
	p.LatencyMaxMs = float64(l.MaxNS) / ms
	p.LatencyMeanMs = float64(l.Mean()) / ms
}

// fromCell copies a merged cell's aggregates into the point.
func (p *QueryPoint) fromCell(c *Cell) {
	p.Flows = c.Flows
	p.ClassifiedFlows = c.ClassifiedFlows
	p.WatchSeconds = c.WatchSeconds
	p.BytesDown = c.BytesDown
	p.BytesUp = c.BytesUp
	p.MeanMbpsDown = c.MeanMbpsDown
	p.PeakMbpsDown = c.PeakMbpsDown
	p.AbstainedFlows = c.AbstainedFlows
	if att := c.ClassifiedFlows + c.AbstainedFlows; att > 0 {
		p.AbstainRate = float64(c.AbstainedFlows) / float64(att)
	}
	if c.Confidence != nil && c.Confidence.Count > 0 {
		p.ConfidenceCount = c.Confidence.Count
		p.ConfidenceP10 = c.Confidence.Quantile(0.10)
		p.ConfidenceP50 = c.Confidence.Quantile(0.50)
		p.ConfidenceMean = c.Confidence.Mean()
	}
}

// fromQuality surfaces a merged window-level quality summary into the point
// (verdict counts, drift gauge, shadow counters). The per-cell confidence
// fields are filled by fromCell; a nil summary leaves everything zero.
func (p *QueryPoint) fromQuality(q *QualitySummary) {
	if q == nil {
		return
	}
	if len(q.Verdicts) > 0 {
		p.Verdicts = make(map[string]uint64, len(q.Verdicts))
		for k, v := range q.Verdicts {
			p.Verdicts[k] = v
		}
	}
	p.DriftScore = q.DriftScore
	p.ShadowAgreed = q.ShadowAgreed
	p.ShadowDisagreed = q.ShadowDisagreed
}

// pickTier selects the tier serving a query: the finest with resolution at
// most step whose history covers since, else the qualifying tier reaching
// furthest back. A tier that has never evicted covers everything it ever
// saw — preferring it by that, not by its oldest bucket start, matters
// because coarse buckets align below the first raw window and would
// otherwise spuriously "reach further back" than a complete raw ring.
// Callers hold mu.
func (s *Store) pickTier(since time.Time, step time.Duration) *tier {
	candidates := []*tier{s.raw}
	for _, t := range s.tiers {
		if step > 0 && t.width > step {
			break // ascending: nothing coarser qualifies either
		}
		candidates = append(candidates, t)
	}
	var best *tier
	var bestOldest time.Time
	for _, t := range candidates {
		oldest, ok := tierOldest(t)
		if !ok {
			continue
		}
		if t.evictions == 0 || (!since.IsZero() && !oldest.After(since)) {
			return t // finest tier with complete (or sufficient) history
		}
		if best == nil || oldest.Before(bestOldest) {
			best, bestOldest = t, oldest
		}
	}
	if best == nil {
		return candidates[0]
	}
	return best
}

// tierOldest reports the oldest Start the tier retains.
func tierOldest(t *tier) (time.Time, bool) {
	if len(t.ring) > 0 {
		return t.ring[0].Start, true
	}
	if t.open != nil {
		return t.open.Start, true
	}
	return time.Time{}, false
}

// Windows lists retained sealed windows with Start in [since, until) (zero
// bounds are unbounded) from the tier whose bucket width matches tierWidth
// (0 = the raw tier; a downsampled tier's in-progress bucket is included
// last). It returns deep copies in ascending Start order — at most limit
// of them, keeping the newest (limit <= 0 = all) — plus the total number
// of windows matching the range, so a truncated listing still reports how
// much history qualifies. Only the returned windows are cloned; the limit
// also bounds the copy work done under the store's lock.
func (s *Store) Windows(since, until time.Time, tierWidth time.Duration, limit int) ([]*Window, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.raw
	if tierWidth > 0 && tierWidth != s.rawWidth {
		t = nil
		for _, c := range s.tiers {
			if c.width == tierWidth {
				t = c
				break
			}
		}
		if t == nil {
			return nil, 0, fmt.Errorf("telemetry: no %v tier (configured: %v)", tierWidth, s.tierWidths())
		}
	}
	include := func(w *Window) bool {
		if !since.IsZero() && w.Start.Before(since) {
			return false
		}
		return until.IsZero() || w.Start.Before(until)
	}
	matching := make([]*Window, 0, len(t.ring)+1)
	for _, w := range t.ring {
		if include(w) {
			matching = append(matching, w)
		}
	}
	if t.open != nil && include(t.open) {
		matching = append(matching, t.open)
	}
	total := len(matching)
	if limit > 0 && len(matching) > limit {
		matching = matching[len(matching)-limit:]
	}
	out := make([]*Window, len(matching))
	for i, w := range matching {
		out[i] = w.Clone()
	}
	return out, total, nil
}

// tierWidths lists the configured downsampling widths. Callers hold mu.
func (s *Store) tierWidths() []time.Duration {
	ws := make([]time.Duration, len(s.tiers))
	for i, t := range s.tiers {
		ws[i] = t.width
	}
	return ws
}
