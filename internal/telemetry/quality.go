package telemetry

import "videoplat/internal/pipeline"

// NumConfidenceBuckets is the confidence histogram resolution: the [0, 1]
// probability range split into equal-width buckets of 1/NumConfidenceBuckets.
// Unlike the log-linear latency summary, the buckets are fixed-width over a
// bounded domain, so quantiles computed after any sequence of merges are
// exactly the quantiles a single window over the same flows would report —
// the invariant that lets downsampled tiers answer "p10 confidence by hour"
// without approximation.
const NumConfidenceBuckets = 20

// ConfidenceHist is a mergeable histogram over [0, 1] probability values
// (prediction confidences and margins). The zero value is ready to use.
// Buckets is sparse: bucket i counts observations in
// (i/NumConfidenceBuckets, (i+1)/NumConfidenceBuckets], with 0.0 landing in
// bucket 0. Not safe for concurrent use — windows are mutated under the
// rollup lock and immutable once sealed.
type ConfidenceHist struct {
	Count   uint64         `json:"count"`
	Sum     float64        `json:"sum"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// confBucket maps a probability to its bucket index, clamping out-of-domain
// values into the edge buckets.
func confBucket(v float64) int {
	if v <= 0 {
		return 0
	}
	// Values sitting exactly on a bucket boundary belong to the lower bucket
	// (half-open on the left), so 1.0 lands in the top bucket.
	b := int(v * NumConfidenceBuckets)
	if float64(b) == v*NumConfidenceBuckets {
		b--
	}
	if b >= NumConfidenceBuckets {
		b = NumConfidenceBuckets - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Observe folds one probability into the histogram.
func (h *ConfidenceHist) Observe(v float64) {
	h.Count++
	h.Sum += v
	if h.Buckets == nil {
		h.Buckets = make(map[int]uint64) //vp:allocok lazy one-time init, pinned by TestQualityFoldZeroAlloc
	}
	h.Buckets[confBucket(v)]++
}

// Merge folds src into h. nil src is a no-op.
func (h *ConfidenceHist) Merge(src *ConfidenceHist) {
	if src == nil || src.Count == 0 {
		return
	}
	h.Count += src.Count
	h.Sum += src.Sum
	if h.Buckets == nil {
		h.Buckets = make(map[int]uint64, len(src.Buckets))
	}
	for b, n := range src.Buckets {
		h.Buckets[b] += n
	}
}

// Clone returns an independent deep copy; nil-safe (returns nil).
func (h *ConfidenceHist) Clone() *ConfidenceHist {
	if h == nil {
		return nil
	}
	out := &ConfidenceHist{Count: h.Count, Sum: h.Sum}
	if h.Buckets != nil {
		out.Buckets = make(map[int]uint64, len(h.Buckets))
		for b, n := range h.Buckets {
			out.Buckets[b] = n
		}
	}
	return out
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// observation (q in [0, 1]), or 0 when empty. Reporting the bucket bound
// rather than interpolating keeps the answer identical no matter how the
// underlying windows were merged.
func (h *ConfidenceHist) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for b := 0; b < NumConfidenceBuckets; b++ {
		seen += h.Buckets[b]
		if seen > rank {
			return float64(b+1) / NumConfidenceBuckets
		}
	}
	return 1
}

// Mean returns the exact mean of observed probabilities (Sum/Count), or 0
// when empty.
func (h *ConfidenceHist) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// QualitySummary is a window's decision-quality digest: what the classifier
// decided (verdict counts), how sure it was (confidence and margin
// histograms over classification attempts), and the model-lifecycle signals
// in force while the window was open (drift score, shadow agreement). Every
// field merges exactly — counts and histogram buckets sum, the drift gauge
// takes the max — so downsampled tiers and Query re-aggregation report what
// a single wider window would have.
type QualitySummary struct {
	// Verdicts counts the window's flows by pipeline.Verdict string.
	Verdicts map[string]uint64 `json:"verdicts,omitempty"`
	// Confidence digests the platform-model top probability of every flow
	// that reached the classifier (classified and abstained alike — the
	// abstentions are exactly the low-confidence mass operators want to see).
	Confidence *ConfidenceHist `json:"confidence,omitempty"`
	// Margin digests the top-1/top-2 probability gap of the same flows.
	Margin *ConfidenceHist `json:"margin,omitempty"`
	// DriftScore is the worst classifier's baseline-minus-recent median
	// confidence drop observed when the window sealed; 0 when healthy or no
	// drift monitor is attached. A gauge: merging takes the max.
	DriftScore float64 `json:"drift_score,omitempty"`
	// ShadowAgreed / ShadowDisagreed count shadow-evaluation samples during
	// the window where the candidate and active banks both predicted a
	// composite platform and agreed (or not). Per-window deltas, so they sum
	// across merges like every other counter.
	ShadowAgreed    uint64 `json:"shadow_agreed,omitempty"`
	ShadowDisagreed uint64 `json:"shadow_disagreed,omitempty"`
}

// add folds one finalized flow into the summary.
//
//vp:hotpath
func (q *QualitySummary) add(rec *pipeline.FlowRecord) {
	if q.Verdicts == nil {
		q.Verdicts = make(map[string]uint64) //vp:allocok lazy one-time init, pinned by TestQualityFoldZeroAlloc
	}
	q.Verdicts[rec.Verdict.String()]++
	if rec.Classified {
		if q.Confidence == nil {
			q.Confidence = &ConfidenceHist{} //vp:allocok lazy one-time init, pinned by TestQualityFoldZeroAlloc
		}
		q.Confidence.Observe(rec.Prediction.PlatformConf)
		if q.Margin == nil {
			q.Margin = &ConfidenceHist{} //vp:allocok lazy one-time init, pinned by TestQualityFoldZeroAlloc
		}
		q.Margin.Observe(rec.Prediction.PlatformMargin)
	}
}

// Merge folds src into q. nil src is a no-op.
func (q *QualitySummary) Merge(src *QualitySummary) {
	if src == nil {
		return
	}
	if len(src.Verdicts) > 0 {
		if q.Verdicts == nil {
			q.Verdicts = make(map[string]uint64, len(src.Verdicts))
		}
		for k, v := range src.Verdicts {
			q.Verdicts[k] += v
		}
	}
	if src.Confidence != nil {
		if q.Confidence == nil {
			q.Confidence = &ConfidenceHist{}
		}
		q.Confidence.Merge(src.Confidence)
	}
	if src.Margin != nil {
		if q.Margin == nil {
			q.Margin = &ConfidenceHist{}
		}
		q.Margin.Merge(src.Margin)
	}
	if src.DriftScore > q.DriftScore {
		q.DriftScore = src.DriftScore
	}
	q.ShadowAgreed += src.ShadowAgreed
	q.ShadowDisagreed += src.ShadowDisagreed
}

// Clone returns an independent deep copy; nil-safe (returns nil).
func (q *QualitySummary) Clone() *QualitySummary {
	if q == nil {
		return nil
	}
	out := &QualitySummary{
		DriftScore:      q.DriftScore,
		ShadowAgreed:    q.ShadowAgreed,
		ShadowDisagreed: q.ShadowDisagreed,
	}
	if q.Verdicts != nil {
		out.Verdicts = make(map[string]uint64, len(q.Verdicts))
		for k, v := range q.Verdicts {
			out.Verdicts[k] = v
		}
	}
	out.Confidence = q.Confidence.Clone()
	out.Margin = q.Margin.Clone()
	return out
}
