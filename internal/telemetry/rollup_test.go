package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
)

func rollRec(prov fingerprint.Provider, platform string, start time.Time, dur time.Duration, bytesDown int64) *pipeline.FlowRecord {
	r := &pipeline.FlowRecord{
		Provider:  prov,
		FirstSeen: start,
		LastSeen:  start.Add(dur),
		BytesDown: bytesDown,
	}
	if platform != "" {
		r.Classified = true
		r.Content = true
		r.Prediction = pipeline.Prediction{Status: pipeline.Composite, Platform: platform}
	}
	return r
}

var w0 = time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC)

func TestRollupTumblingWindows(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := NewRollup(time.Minute, sink)

	// Two flows finalize in the 12:00 window, one in 12:02.
	r.Add(rollRec(fingerprint.YouTube, "windows_chrome", w0, 10*time.Second, 10<<20))
	r.Add(rollRec(fingerprint.Netflix, "", w0.Add(5*time.Second), 20*time.Second, 5<<20))
	if got := r.Sealed(); got != 0 {
		t.Fatalf("sealed = %d before boundary", got)
	}
	cur := r.Current()
	if cur == nil || cur.Flows != 2 || cur.ClassifiedFlows != 1 {
		t.Fatalf("current window = %+v", cur)
	}
	if cur.ClassificationRate != 0.5 {
		t.Errorf("live classification rate = %v, want 0.5", cur.ClassificationRate)
	}

	r.Add(rollRec(fingerprint.YouTube, "iOS_nativeApp", w0.Add(2*time.Minute), 15*time.Second, 1<<20))
	if got := r.Sealed(); got != 1 {
		t.Fatalf("sealed = %d after boundary, want 1", got)
	}
	r.Flush()
	if got, want := r.Sealed(), 2; got != want {
		t.Fatalf("sealed = %d after flush, want %d", got, want)
	}
	if sink.Windows() != 2 {
		t.Fatalf("sink windows = %d", sink.Windows())
	}

	var wins []Window
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var w Window
		if err := json.Unmarshal(sc.Bytes(), &w); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		wins = append(wins, w)
	}
	if len(wins) != 2 {
		t.Fatalf("parsed %d JSONL windows", len(wins))
	}

	first := wins[0]
	if !first.Start.Equal(w0) || !first.End.Equal(w0.Add(time.Minute)) {
		t.Errorf("window bounds = %v..%v", first.Start, first.End)
	}
	if first.Flows != 2 || first.ClassifiedFlows != 1 || first.ClassificationRate != 0.5 {
		t.Errorf("window totals = %+v", first)
	}
	yt := first.ByProvider["youtube"]
	if yt == nil || yt.Flows != 1 || yt.BytesDown != 10<<20 || yt.WatchSeconds != 10 {
		t.Errorf("youtube cell = %+v", yt)
	}
	if yt.MeanMbpsDown < 8 || yt.MeanMbpsDown > 9 {
		t.Errorf("youtube mean mbps = %v, want ~8.4", yt.MeanMbpsDown)
	}
	if c := first.ByPlatform["windows_chrome"]; c == nil || c.Flows != 1 {
		t.Errorf("platform cell = %+v", c)
	}
	if c := first.ByPlatform["unclassified"]; c == nil || c.Flows != 1 {
		t.Errorf("unclassified cell = %+v", c)
	}

	second := wins[1]
	if !second.Start.Equal(w0.Add(2 * time.Minute)) {
		t.Errorf("gap window not skipped: second starts %v", second.Start)
	}
	if second.Flows != 1 {
		t.Errorf("second window flows = %d", second.Flows)
	}
}

func TestRollupModelVersionAttribution(t *testing.T) {
	r := NewRollup(time.Minute, nil)
	// A hot-swap lands mid-window: flows split across two bank versions,
	// plus one classified by an ad-hoc (unversioned) bank.
	a := rollRec(fingerprint.YouTube, "windows_chrome", w0, 10*time.Second, 1<<20)
	a.ModelVersion = "v0001"
	b := rollRec(fingerprint.Netflix, "iOS_nativeApp", w0.Add(5*time.Second), 10*time.Second, 1<<20)
	b.ModelVersion = "v0002"
	c := rollRec(fingerprint.Disney, "macOS_safari", w0.Add(10*time.Second), 10*time.Second, 1<<20)
	unclassified := rollRec(fingerprint.Amazon, "", w0.Add(15*time.Second), 10*time.Second, 1<<20)
	for _, rec := range []*pipeline.FlowRecord{a, b, c, unclassified} {
		r.Add(rec)
	}
	cur := r.Current()
	want := map[string]int{"v0001": 1, "v0002": 1, "unversioned": 1}
	if len(cur.ModelVersions) != len(want) {
		t.Fatalf("model versions = %+v, want %+v", cur.ModelVersions, want)
	}
	for k, n := range want {
		if cur.ModelVersions[k] != n {
			t.Errorf("model version %s = %d, want %d", k, cur.ModelVersions[k], n)
		}
	}
}

func TestRollupLateRecords(t *testing.T) {
	r := NewRollup(time.Minute, nil)
	r.Add(rollRec(fingerprint.Disney, "", w0.Add(5*time.Minute), time.Second, 1000))
	// An idle eviction surfacing long after its flow ended.
	r.Add(rollRec(fingerprint.Disney, "", w0, 30*time.Second, 1000))
	cur := r.Current()
	if cur.Flows != 2 || cur.LateFlows != 1 {
		t.Errorf("window = flows %d late %d, want 2/1", cur.Flows, cur.LateFlows)
	}
	if r.Sealed() != 0 {
		t.Errorf("late record sealed a window")
	}
}

func TestRollupFlushEmpty(t *testing.T) {
	r := NewRollup(0, nil) // default width
	if r.Width() != time.Minute {
		t.Errorf("default width = %v", r.Width())
	}
	r.Flush() // no window yet: must not panic or seal
	if r.Sealed() != 0 || r.Current() != nil {
		t.Error("flush of empty rollup produced a window")
	}
}
