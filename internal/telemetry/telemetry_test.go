package telemetry

import (
	"math"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
)

func rec(prov fingerprint.Provider, device, agent string, start time.Time,
	dur time.Duration, mbps float64, status pipeline.Status) *pipeline.FlowRecord {
	bytes := int64(mbps * 1e6 / 8 * dur.Seconds())
	return &pipeline.FlowRecord{
		Provider: prov, Content: true, Classified: true,
		Prediction: pipeline.Prediction{Status: status, Device: device, Agent: agent,
			Platform: device + "_" + agent},
		FirstSeen: start, LastSeen: start.Add(dur), BytesDown: bytes,
	}
}

var t0 = time.Date(2023, 7, 7, 20, 0, 0, 0, time.UTC)

func TestBoxStats(t *testing.T) {
	b := NewBoxStats([]float64{1, 2, 3, 4, 5})
	if b.Median != 3 || b.Min != 1 || b.Max != 5 {
		t.Errorf("box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("quartiles = %v/%v", b.Q1, b.Q3)
	}
	if b.IQR() != 2 {
		t.Errorf("IQR = %v", b.IQR())
	}
	if z := NewBoxStats(nil); z.N != 0 || z.Median != 0 {
		t.Errorf("empty box = %+v", z)
	}
	one := NewBoxStats([]float64{7})
	if one.Median != 7 || one.Q1 != 7 || one.Q3 != 7 {
		t.Errorf("single box = %+v", one)
	}
}

func TestWatchTimeAggregation(t *testing.T) {
	a := &Aggregator{Days: 2}
	a.Add(rec(fingerprint.YouTube, "windows", "chrome", t0, 2*time.Hour, 3, pipeline.Composite))
	a.Add(rec(fingerprint.YouTube, "windows", "chrome", t0, 2*time.Hour, 3, pipeline.Composite))
	a.Add(rec(fingerprint.YouTube, "iOS", "nativeApp", t0, 1*time.Hour, 2, pipeline.Composite))
	// Low-confidence and management flows must not count.
	a.Add(rec(fingerprint.YouTube, "windows", "chrome", t0, 10*time.Hour, 3, pipeline.Unknown))
	mgmt := rec(fingerprint.YouTube, "windows", "chrome", t0, 10*time.Hour, 3, pipeline.Composite)
	mgmt.Content = false
	a.Add(mgmt)

	wt := a.WatchTimeByDevice()
	if got := wt[fingerprint.YouTube]["windows"]; math.Abs(got-2) > 1e-9 {
		t.Errorf("windows hours/day = %v, want 2", got)
	}
	if got := wt[fingerprint.YouTube]["iOS"]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("iOS hours/day = %v, want 0.5", got)
	}
	byAgent := a.WatchTimeByAgent()
	if got := byAgent[fingerprint.YouTube]["windows"]["chrome"]; math.Abs(got-2) > 1e-9 {
		t.Errorf("windows/chrome = %v", got)
	}
	if a.TotalWatchHours() != 5 {
		t.Errorf("total hours = %v", a.TotalWatchHours())
	}
}

func TestBandwidthAggregation(t *testing.T) {
	a := &Aggregator{Days: 1}
	for _, mbps := range []float64{2, 4, 6} {
		a.Add(rec(fingerprint.Amazon, "macOS", "safari", t0, time.Hour, mbps, pipeline.Composite))
	}
	bw := a.BandwidthByDevice()
	box := bw[fingerprint.Amazon]["macOS"]
	if box.N != 3 || math.Abs(box.Median-4) > 0.01 {
		t.Errorf("box = %+v", box)
	}
	byAgent := a.BandwidthByAgent()
	if byAgent[fingerprint.Amazon]["macOS"]["safari"].N != 3 {
		t.Error("agent-level box missing")
	}
}

func TestHourlyUsage(t *testing.T) {
	a := &Aggregator{Days: 2}
	// Two days with PC traffic at 20:00 and mobile at 21:00.
	for day := 0; day < 2; day++ {
		base := t0.Add(time.Duration(day) * 24 * time.Hour)
		a.Add(rec(fingerprint.Netflix, "windows", "chrome", base, time.Hour, 8, pipeline.Composite))
		a.Add(rec(fingerprint.Netflix, "iOS", "nativeApp", base.Add(time.Hour), time.Hour, 4, pipeline.Composite))
		// TV traffic is in neither class.
		a.Add(rec(fingerprint.Netflix, "TV", "nativeApp", base, time.Hour, 9, pipeline.Composite))
	}
	pc, mobile := a.HourlyUsage(fingerprint.Netflix)
	if pc[20] <= 0 {
		t.Errorf("pc[20] = %v", pc[20])
	}
	if mobile[21] <= 0 {
		t.Errorf("mobile[21] = %v", mobile[21])
	}
	if pc[3] != 0 || mobile[3] != 0 {
		t.Error("usage at 3am should be zero")
	}
	// 8 Mbps for 1h = 3.6 GB
	if math.Abs(pc[20]-3.6) > 0.1 {
		t.Errorf("pc[20] = %v GB, want ~3.6", pc[20])
	}
}

func TestExcludedFraction(t *testing.T) {
	a := &Aggregator{}
	a.Add(rec(fingerprint.YouTube, "windows", "chrome", t0, time.Hour, 3, pipeline.Composite))
	a.Add(rec(fingerprint.YouTube, "windows", "chrome", t0, time.Hour, 3, pipeline.Partial))
	a.Add(rec(fingerprint.YouTube, "windows", "chrome", t0, time.Hour, 3, pipeline.Unknown))
	a.Add(rec(fingerprint.YouTube, "windows", "chrome", t0, time.Hour, 3, pipeline.Composite))
	if f := a.ExcludedFraction(); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("excluded = %v", f)
	}
}
