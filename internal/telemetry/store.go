package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// StoreConfig tunes a Store's retention and downsampling.
type StoreConfig struct {
	// MaxWindows caps how many windows each tier retains (default 1024;
	// <0 = unbounded). The oldest windows are evicted first.
	MaxWindows int
	// MaxAge evicts windows whose End is older than the newest stored
	// window's End minus MaxAge (0 = no age limit). Age is measured in
	// trace time, so replays age out history exactly as live traffic would.
	MaxAge time.Duration
	// Tiers are the downsampling resolutions (e.g. 10m, 1h): every raw
	// window is folded into one bucket per tier, and a bucket seals into
	// the tier's ring once a window at or past its end arrives. Widths
	// should be ascending multiples of the rollup window width so bucket
	// boundaries align. Nil means no downsampling (raw tier only).
	Tiers []time.Duration
	// Persist, if non-nil, receives every raw sealed window the store
	// accepts (reloaded history is not re-written). Pair it with a
	// JSONLSink over an append-mode file and Reload at startup for
	// history that survives restarts.
	Persist Sink
}

// tier is one retention ring: sealed windows in ascending Start order plus,
// for downsampled tiers, the in-progress bucket.
type tier struct {
	width       time.Duration // 0 for the raw tier
	ring        []*Window
	open        *Window // current partial bucket (downsampled tiers only)
	compactions uint64  // buckets sealed into ring
	evictions   uint64  // windows dropped by retention: history is incomplete
}

// Store retains sealed rollup windows for live querying: a bounded
// in-memory ring of raw windows plus optional coarser downsampling tiers,
// with count- and age-based retention and optional persistence. It
// implements Sink, so it sits directly behind a Rollup (alone or fanned out
// with MultiSink alongside a JSONL archive).
//
// Every accepted window is deep-copied, folded into each downsampling
// tier's current bucket, and forwarded to the Persist sink; Query and
// Windows serve re-aggregated copies, so callers can never observe or
// corrupt shared state. Store is safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	cfg   StoreConfig
	raw   *tier
	tiers []*tier // downsampled, ascending width; excludes raw

	rawWidth    time.Duration // width of the first accepted window
	latest      time.Time     // newest End seen, the age-retention anchor
	evictCount  uint64
	evictAge    uint64
	loaded      int
	persistErrs uint64
}

// NewStore returns a Store with cfg's retention and tiers. Tier widths are
// sorted ascending and non-positive or duplicate widths are dropped.
func NewStore(cfg StoreConfig) *Store {
	if cfg.MaxWindows == 0 {
		cfg.MaxWindows = 1024
	}
	widths := append([]time.Duration(nil), cfg.Tiers...)
	sort.Slice(widths, func(i, j int) bool { return widths[i] < widths[j] })
	s := &Store{cfg: cfg, raw: &tier{}}
	var prev time.Duration
	for _, w := range widths {
		if w <= 0 || w == prev {
			continue
		}
		s.tiers = append(s.tiers, &tier{width: w})
		prev = w
	}
	return s
}

// WriteWindow accepts one sealed window: a deep copy enters the raw ring
// and every downsampling tier, retention is enforced, and the original is
// forwarded to the Persist sink. Implements Sink.
func (s *Store) WriteWindow(w *Window) error {
	s.mu.Lock()
	s.add(w)
	persist := s.cfg.Persist
	s.mu.Unlock()
	if persist != nil {
		if err := persist.WriteWindow(w); err != nil {
			s.mu.Lock()
			s.persistErrs++
			s.mu.Unlock()
			return fmt.Errorf("telemetry: store persist: %w", err)
		}
	}
	return nil
}

// add folds one window into every tier and applies retention. Callers must
// hold mu.
func (s *Store) add(w *Window) {
	if s.rawWidth == 0 {
		if d := w.End.Sub(w.Start); d > 0 {
			s.rawWidth = d
		}
	}
	if w.End.After(s.latest) {
		s.latest = w.End
	}
	s.raw.insert(w.Clone())
	for _, t := range s.tiers {
		t.fold(w)
	}
	s.retain()
}

// insert places w in the ring preserving ascending Start order. Windows
// almost always arrive in order (the rollup seals sequentially; reload then
// live can interleave), so this is an append in the common case.
func (t *tier) insert(w *Window) {
	n := len(t.ring)
	if n == 0 || !w.Start.Before(t.ring[n-1].Start) {
		t.ring = append(t.ring, w)
		return
	}
	i := sort.Search(n, func(i int) bool { return t.ring[i].Start.After(w.Start) })
	t.ring = append(t.ring, nil)
	copy(t.ring[i+1:], t.ring[i:])
	t.ring[i] = w
}

// fold merges w into the tier's bucket containing w.Start, sealing the
// previous bucket when w has moved past it (empty gap buckets are skipped,
// mirroring the rollup). A window arriving before the open bucket — reload
// interleaving with live windows — is folded into a fresh sealed bucket of
// its own rather than reopening history.
func (t *tier) fold(w *Window) {
	start := bucketStart(w.Start, t.width)
	bounds := func(b *Window) { b.Start, b.End = start, start.Add(t.width) }
	if t.open != nil && w.Start.Before(t.open.Start) {
		if i := sort.Search(len(t.ring), func(i int) bool {
			return !t.ring[i].Start.Before(start)
		}); i < len(t.ring) && t.ring[i].Start.Equal(start) {
			t.ring[i].Merge(w)
			bounds(t.ring[i])
			return
		}
		late := &Window{}
		late.Merge(w)
		bounds(late)
		t.insert(late)
		t.compactions++
		return
	}
	if t.open != nil && !start.Equal(t.open.Start) {
		t.insert(t.open)
		t.compactions++
		t.open = nil
	}
	if t.open == nil {
		t.open = &Window{}
		t.open.Merge(w)
		bounds(t.open)
		return
	}
	t.open.Merge(w)
	bounds(t.open)
}

// bucketStart aligns ts to a width boundary, guarding pre-epoch times the
// same way Rollup.open does.
func bucketStart(ts time.Time, width time.Duration) time.Time {
	start := ts.Truncate(width)
	if ts.Before(start) {
		start = start.Add(-width)
	}
	return start
}

// retain enforces count and age retention on every tier. Callers hold mu.
func (s *Store) retain() {
	cutoff := time.Time{}
	if s.cfg.MaxAge > 0 {
		cutoff = s.latest.Add(-s.cfg.MaxAge)
	}
	for _, t := range append([]*tier{s.raw}, s.tiers...) {
		if s.cfg.MaxWindows > 0 {
			for len(t.ring) > s.cfg.MaxWindows {
				t.ring[0] = nil
				t.ring = t.ring[1:]
				t.evictions++
				s.evictCount++
			}
		}
		if !cutoff.IsZero() {
			for len(t.ring) > 0 && !t.ring[0].End.After(cutoff) {
				t.ring[0] = nil
				t.ring = t.ring[1:]
				t.evictions++
				s.evictAge++
			}
		}
	}
}

// Reload replays JSONL-encoded windows (the JSONLSink format) into the
// store, returning how many were loaded. Call before serving traffic to
// restore a previous run's history; reloaded windows follow the normal
// downsampling and retention paths but are not re-written to Persist.
func (s *Store) Reload(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20) // windows with many cells exceed the default line cap
	n, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var w Window
		if err := json.Unmarshal(line, &w); err != nil {
			return n, fmt.Errorf("telemetry: store reload line %d: %w", lineNo, err)
		}
		s.mu.Lock()
		s.add(&w)
		s.loaded++
		s.mu.Unlock()
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("telemetry: store reload: %w", err)
	}
	return n, nil
}

// TierStats describes one retention tier's occupancy.
type TierStats struct {
	// WidthSeconds is the tier's bucket width (the rollup window width for
	// the raw tier).
	WidthSeconds float64 `json:"width_seconds"`
	// Windows is how many sealed windows the tier retains (the open
	// partial bucket of a downsampled tier is counted separately).
	Windows int `json:"windows"`
	// OpenBucket reports whether a partial downsampled bucket is in
	// progress (always false for the raw tier).
	OpenBucket bool `json:"open_bucket,omitempty"`
	// OldestStart/NewestEnd bound the tier's retained range.
	OldestStart time.Time `json:"oldest_start,omitzero"`
	NewestEnd   time.Time `json:"newest_end,omitzero"`
	// Compactions counts buckets sealed into this tier (0 for raw).
	Compactions uint64 `json:"compactions,omitempty"`
}

// StoreStats is the store's occupancy/eviction/compaction counter snapshot,
// surfaced through /stats and /metrics.
type StoreStats struct {
	// Tiers lists per-tier occupancy, raw tier first then ascending width.
	Tiers []TierStats `json:"tiers"`
	// EvictedCount / EvictedAge count windows evicted by the MaxWindows
	// cap and the MaxAge horizon respectively, across all tiers.
	EvictedCount uint64 `json:"evicted_count"`
	EvictedAge   uint64 `json:"evicted_age"`
	// Compactions counts downsampled buckets sealed, across all tiers.
	Compactions uint64 `json:"compactions"`
	// LoadedWindows is how many windows Reload restored at startup.
	LoadedWindows int `json:"loaded_windows,omitempty"`
	// PersistErrors counts failed writes to the Persist sink.
	PersistErrors uint64 `json:"persist_errors,omitempty"`
}

// Stats snapshots the store's occupancy and counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		EvictedCount:  s.evictCount,
		EvictedAge:    s.evictAge,
		LoadedWindows: s.loaded,
		PersistErrors: s.persistErrs,
	}
	for _, t := range append([]*tier{s.raw}, s.tiers...) {
		ts := TierStats{Windows: len(t.ring), OpenBucket: t.open != nil, Compactions: t.compactions}
		if t.width > 0 {
			ts.WidthSeconds = t.width.Seconds()
		} else {
			ts.WidthSeconds = s.rawWidth.Seconds()
		}
		if len(t.ring) > 0 {
			ts.OldestStart = t.ring[0].Start
			ts.NewestEnd = t.ring[len(t.ring)-1].End
		}
		if t.open != nil {
			if ts.OldestStart.IsZero() {
				ts.OldestStart = t.open.Start
			}
			if t.open.End.After(ts.NewestEnd) {
				ts.NewestEnd = t.open.End
			}
		}
		st.Compactions += t.compactions
		st.Tiers = append(st.Tiers, ts)
	}
	return st
}

// Latest returns the newest window End the store has seen (zero before any
// window arrives) — the reference point for relative ("last 30m") queries,
// in trace time.
func (s *Store) Latest() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest
}
