// Package packet decodes and serializes the link, network and transport
// layers needed to analyze video-streaming handshakes: Ethernet, IPv4, IPv6,
// TCP (with options) and UDP.
//
// The decoding style follows gopacket's DecodingLayerParser idiom: a Parser
// decodes into preallocated layer structs with no per-packet allocation, so a
// single Parser can sustain line-rate parsing on one goroutine. Parsers are
// not safe for concurrent use; create one per goroutine.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrUnsupported = errors.New("packet: unsupported layer")
)

// EtherType values used by this package.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86dd
)

// IP protocol numbers.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Src, Dst  [6]byte
	EtherType uint16
}

// Decode parses an Ethernet II frame and returns its payload.
func (e *Ethernet) Decode(b []byte) (payload []byte, err error) {
	if len(b) < 14 {
		return nil, ErrTruncated
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[14:], nil
}

// Append serializes the header followed by payload onto dst.
func (e *Ethernet) Append(dst, payload []byte) []byte {
	dst = append(dst, e.Dst[:]...)
	dst = append(dst, e.Src[:]...)
	dst = binary.BigEndian.AppendUint16(dst, e.EtherType)
	return append(dst, payload...)
}

// IPv4 is a decoded IPv4 header. Options are preserved verbatim.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment field
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr
	Options  []byte
}

// Decode parses an IPv4 header and returns its payload (respecting TotalLen).
func (ip *IPv4) Decode(b []byte) (payload []byte, err error) {
	if len(b) < 20 {
		return nil, ErrTruncated
	}
	if v := b[0] >> 4; v != 4 {
		return nil, fmt.Errorf("packet: IPv4 version %d: %w", v, ErrUnsupported) //vp:allocok cold malformed-header error path
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		return nil, ErrTruncated
	}
	ip.TOS = b[1]
	ip.TotalLen = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	frag := binary.BigEndian.Uint16(b[6:8])
	ip.Flags = uint8(frag >> 13)
	ip.FragOff = frag & 0x1fff
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	ip.Src = netip.AddrFrom4([4]byte(b[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	ip.Options = b[20:ihl]
	end := int(ip.TotalLen)
	if end < ihl || end > len(b) {
		end = len(b)
	}
	return b[ihl:end], nil
}

// Append serializes the header (with a correct checksum and TotalLen) followed
// by payload onto dst.
func (ip *IPv4) Append(dst, payload []byte) []byte {
	ihl := 20 + len(ip.Options)
	if ihl%4 != 0 {
		panic("packet: IPv4 options not 32-bit aligned")
	}
	total := ihl + len(payload)
	start := len(dst)
	dst = append(dst, byte(4<<4|ihl/4), ip.TOS)
	dst = binary.BigEndian.AppendUint16(dst, uint16(total))
	dst = binary.BigEndian.AppendUint16(dst, ip.ID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	dst = append(dst, ip.TTL, ip.Protocol, 0, 0)
	src, dstAddr := ip.Src.As4(), ip.Dst.As4()
	dst = append(dst, src[:]...)
	dst = append(dst, dstAddr[:]...)
	dst = append(dst, ip.Options...)
	ck := Checksum(dst[start : start+ihl])
	binary.BigEndian.PutUint16(dst[start+10:], ck)
	return append(dst, payload...)
}

// IPv6 is a decoded IPv6 header. Extension headers are not walked; Protocol
// is the NextHeader value.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	Protocol     uint8 // NextHeader
	HopLimit     uint8
	Src, Dst     netip.Addr
}

// Decode parses an IPv6 fixed header and returns its payload.
func (ip *IPv6) Decode(b []byte) (payload []byte, err error) {
	if len(b) < 40 {
		return nil, ErrTruncated
	}
	if v := b[0] >> 4; v != 6 {
		return nil, fmt.Errorf("packet: IPv6 version %d: %w", v, ErrUnsupported) //vp:allocok cold malformed-header error path
	}
	ip.TrafficClass = b[0]<<4 | b[1]>>4
	ip.FlowLabel = binary.BigEndian.Uint32(b[0:4]) & 0xfffff
	ip.PayloadLen = binary.BigEndian.Uint16(b[4:6])
	ip.Protocol = b[6]
	ip.HopLimit = b[7]
	ip.Src = netip.AddrFrom16([16]byte(b[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(b[24:40]))
	end := 40 + int(ip.PayloadLen)
	if end > len(b) {
		end = len(b)
	}
	return b[40:end], nil
}

// Append serializes the header followed by payload onto dst.
func (ip *IPv6) Append(dst, payload []byte) []byte {
	first := binary.BigEndian.AppendUint32(nil,
		6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xfffff)
	dst = append(dst, first...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(payload)))
	dst = append(dst, ip.Protocol, ip.HopLimit)
	src, dstAddr := ip.Src.As16(), ip.Dst.As16()
	dst = append(dst, src[:]...)
	dst = append(dst, dstAddr[:]...)
	return append(dst, payload...)
}

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
	FlagECE uint8 = 1 << 6
	FlagCWR uint8 = 1 << 7
)

// TCPOption kinds used in connection-establishment fingerprinting.
const (
	OptEnd           uint8 = 0
	OptNOP           uint8 = 1
	OptMSS           uint8 = 2
	OptWindowScale   uint8 = 3
	OptSACKPermitted uint8 = 4
	OptTimestamps    uint8 = 8
)

// TCPOption is a single decoded TCP option.
type TCPOption struct {
	Kind uint8
	Data []byte // option payload, excluding kind and length octets
}

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []TCPOption

	optStorage [8]TCPOption // backing array so decoding stays allocation-free
}

// Decode parses a TCP header and returns its payload.
func (t *TCP) Decode(b []byte) (payload []byte, err error) {
	if len(b) < 20 {
		return nil, ErrTruncated
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < 20 || len(b) < dataOff {
		return nil, ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	t.Urgent = binary.BigEndian.Uint16(b[18:20])
	t.Options = t.optStorage[:0]
	opts := b[20:dataOff]
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case OptEnd:
			opts = nil
		case OptNOP:
			t.Options = append(t.Options, TCPOption{Kind: OptNOP})
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return nil, ErrTruncated
			}
			olen := int(opts[1])
			if olen < 2 || olen > len(opts) {
				return nil, ErrTruncated
			}
			t.Options = append(t.Options, TCPOption{Kind: kind, Data: opts[2:olen]})
			opts = opts[olen:]
		}
	}
	return b[dataOff:], nil
}

// Option returns the first option with the given kind, or nil.
func (t *TCP) Option(kind uint8) *TCPOption {
	for i := range t.Options {
		if t.Options[i].Kind == kind {
			return &t.Options[i]
		}
	}
	return nil
}

// MSS returns the maximum segment size option value, or 0 if absent.
func (t *TCP) MSS() uint16 {
	if o := t.Option(OptMSS); o != nil && len(o.Data) == 2 {
		return binary.BigEndian.Uint16(o.Data)
	}
	return 0
}

// WindowScale returns the window scale shift, or -1 if absent.
func (t *TCP) WindowScale() int {
	if o := t.Option(OptWindowScale); o != nil && len(o.Data) == 1 {
		return int(o.Data[0])
	}
	return -1
}

// SACKPermitted reports whether the SACK-permitted option is present.
func (t *TCP) SACKPermitted() bool { return t.Option(OptSACKPermitted) != nil }

// Append serializes the header followed by payload onto dst. The checksum is
// computed over the IPv4 pseudo-header formed from src and dst addresses; for
// IPv6 use AppendWithPseudo.
func (t *TCP) Append(dst, payload []byte, src, dstAddr netip.Addr) []byte {
	optLen := 0
	for _, o := range t.Options {
		if o.Kind == OptNOP || o.Kind == OptEnd {
			optLen++
		} else {
			optLen += 2 + len(o.Data)
		}
	}
	pad := (4 - optLen%4) % 4
	dataOff := 20 + optLen + pad
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, t.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, t.DstPort)
	dst = binary.BigEndian.AppendUint32(dst, t.Seq)
	dst = binary.BigEndian.AppendUint32(dst, t.Ack)
	dst = append(dst, byte(dataOff/4)<<4, t.Flags)
	dst = binary.BigEndian.AppendUint16(dst, t.Window)
	dst = append(dst, 0, 0) // checksum placeholder
	dst = binary.BigEndian.AppendUint16(dst, t.Urgent)
	for _, o := range t.Options {
		if o.Kind == OptNOP || o.Kind == OptEnd {
			dst = append(dst, o.Kind)
			continue
		}
		dst = append(dst, o.Kind, byte(2+len(o.Data)))
		dst = append(dst, o.Data...)
	}
	for i := 0; i < pad; i++ {
		dst = append(dst, OptEnd)
	}
	dst = append(dst, payload...)
	seg := dst[start:]
	ck := pseudoChecksum(src, dstAddr, ProtoTCP, seg)
	binary.BigEndian.PutUint16(dst[start+16:], ck)
	return dst
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Decode parses a UDP header and returns its payload (respecting Length).
func (u *UDP) Decode(b []byte) (payload []byte, err error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	end := int(u.Length)
	if end < 8 || end > len(b) {
		end = len(b)
	}
	return b[8:end], nil
}

// Append serializes the header followed by payload onto dst, computing the
// checksum over the pseudo-header for src/dst.
func (u *UDP) Append(dst, payload []byte, src, dstAddr netip.Addr) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, u.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, u.DstPort)
	dst = binary.BigEndian.AppendUint16(dst, uint16(8+len(payload)))
	dst = append(dst, 0, 0)
	dst = append(dst, payload...)
	ck := pseudoChecksum(src, dstAddr, ProtoUDP, dst[start:])
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(dst[start+6:], ck)
	return dst
}

// Checksum computes the RFC 1071 Internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func pseudoChecksum(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	var pseudo []byte
	if src.Is4() && dst.Is4() {
		s, d := src.As4(), dst.As4()
		pseudo = make([]byte, 0, 12+len(segment))
		pseudo = append(pseudo, s[:]...)
		pseudo = append(pseudo, d[:]...)
		pseudo = append(pseudo, 0, proto)
		pseudo = binary.BigEndian.AppendUint16(pseudo, uint16(len(segment)))
	} else {
		s, d := src.As16(), dst.As16()
		pseudo = make([]byte, 0, 40+len(segment))
		pseudo = append(pseudo, s[:]...)
		pseudo = append(pseudo, d[:]...)
		pseudo = binary.BigEndian.AppendUint32(pseudo, uint32(len(segment)))
		pseudo = append(pseudo, 0, 0, 0, proto)
	}
	pseudo = append(pseudo, segment...)
	return Checksum(pseudo)
}
