package packet

import (
	"fmt"
	"net/netip"
)

// LayerType identifies which layers a Parser decoded.
type LayerType uint8

// Layer types reported by Parser.Parse.
const (
	LayerEthernet LayerType = iota
	LayerIPv4
	LayerIPv6
	LayerTCP
	LayerUDP
)

// Parsed is the zero-allocation decode result of one frame. The embedded
// layer structs are only valid for the layer types listed in Decoded, and
// alias the input buffer — copy anything retained past the next Parse call.
type Parsed struct {
	Decoded []LayerType
	Eth     Ethernet
	IP4     IPv4
	IP6     IPv6
	TCP     TCP
	UDP     UDP
	Payload []byte // transport payload

	decodedStorage [4]LayerType
}

// Has reports whether the given layer was decoded.
func (p *Parsed) Has(t LayerType) bool {
	for _, d := range p.Decoded {
		if d == t {
			return true
		}
	}
	return false
}

// SrcAddr returns the network-layer source address.
func (p *Parsed) SrcAddr() netip.Addr {
	if p.Has(LayerIPv4) {
		return p.IP4.Src
	}
	return p.IP6.Src
}

// DstAddr returns the network-layer destination address.
func (p *Parsed) DstAddr() netip.Addr {
	if p.Has(LayerIPv6) {
		return p.IP6.Dst
	}
	return p.IP4.Dst
}

// TTL returns the IPv4 TTL or IPv6 hop limit.
func (p *Parsed) TTL() uint8 {
	if p.Has(LayerIPv4) {
		return p.IP4.TTL
	}
	return p.IP6.HopLimit
}

// Flow returns the 5-tuple flow key of the packet, or ok=false for
// non-TCP/UDP traffic.
func (p *Parsed) Flow() (FlowKey, bool) {
	var k FlowKey
	switch {
	case p.Has(LayerTCP):
		k.Proto = ProtoTCP
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.Has(LayerUDP):
		k.Proto = ProtoUDP
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	default:
		return k, false
	}
	k.Src, k.Dst = p.SrcAddr(), p.DstAddr()
	return k, true
}

// Parser decodes Ethernet frames into a reusable Parsed value. Not safe for
// concurrent use.
type Parser struct{}

// Parse decodes frame into out. Layers that cannot be decoded terminate the
// walk; Decoded records how far it got. An unsupported EtherType or IP
// protocol is not an error — the payload is simply left at that layer.
// Zero-allocation on the decode path, pinned by TestParseAllocFree.
//
//vp:hotpath
func (ps *Parser) Parse(frame []byte, out *Parsed) error {
	out.Decoded = out.decodedStorage[:0]
	out.Payload = nil

	rest, err := out.Eth.Decode(frame)
	if err != nil {
		return fmt.Errorf("ethernet: %w", err) //vp:allocok cold malformed-frame error path
	}
	out.Decoded = append(out.Decoded, LayerEthernet)

	var proto uint8
	switch out.Eth.EtherType {
	case EtherTypeIPv4:
		if rest, err = out.IP4.Decode(rest); err != nil {
			return fmt.Errorf("ipv4: %w", err) //vp:allocok cold malformed-frame error path
		}
		out.Decoded = append(out.Decoded, LayerIPv4)
		proto = out.IP4.Protocol
	case EtherTypeIPv6:
		if rest, err = out.IP6.Decode(rest); err != nil {
			return fmt.Errorf("ipv6: %w", err) //vp:allocok cold malformed-frame error path
		}
		out.Decoded = append(out.Decoded, LayerIPv6)
		proto = out.IP6.Protocol
	default:
		out.Payload = rest
		return nil
	}

	switch proto {
	case ProtoTCP:
		if rest, err = out.TCP.Decode(rest); err != nil {
			return fmt.Errorf("tcp: %w", err) //vp:allocok cold malformed-frame error path
		}
		out.Decoded = append(out.Decoded, LayerTCP)
	case ProtoUDP:
		if rest, err = out.UDP.Decode(rest); err != nil {
			return fmt.Errorf("udp: %w", err) //vp:allocok cold malformed-frame error path
		}
		out.Decoded = append(out.Decoded, LayerUDP)
	}
	out.Payload = rest
	return nil
}

// FlowKey is a transport 5-tuple. It is comparable and usable as a map key.
type FlowKey struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Canonical returns a direction-independent key (the lexicographically
// smaller endpoint first), so both directions of a flow map to one entry.
func (k FlowKey) Canonical() FlowKey {
	if k.Src.Compare(k.Dst) > 0 || (k.Src == k.Dst && k.SrcPort > k.DstPort) {
		return k.Reverse()
	}
	return k
}

// String renders "src:port->dst:port/proto".
func (k FlowKey) String() string {
	proto := "?"
	switch k.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s:%d->%s:%d/%s", k.Src, k.SrcPort, k.Dst, k.DstPort, proto)
}
