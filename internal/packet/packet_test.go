package packet

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcIP = netip.MustParseAddr("192.168.1.10")
	dstIP = netip.MustParseAddr("142.250.70.78")
	src6  = netip.MustParseAddr("2001:db8::10")
	dst6  = netip.MustParseAddr("2607:f8b0::1")
)

func buildTCPSyn(t *testing.T, payload []byte) []byte {
	t.Helper()
	tcp := &TCP{
		SrcPort: 51000, DstPort: 443, Seq: 1000,
		Flags:  FlagSYN | FlagECE | FlagCWR,
		Window: 65535,
		Options: []TCPOption{
			{Kind: OptMSS, Data: []byte{0x05, 0xb4}},
			{Kind: OptNOP},
			{Kind: OptWindowScale, Data: []byte{8}},
			{Kind: OptSACKPermitted},
		},
	}
	seg := tcp.Append(nil, payload, srcIP, dstIP)
	ip := &IPv4{TTL: 64, Protocol: ProtoTCP, Src: srcIP, Dst: dstIP, ID: 7}
	pkt := ip.Append(nil, seg)
	eth := &Ethernet{EtherType: EtherTypeIPv4}
	return eth.Append(nil, pkt)
}

func TestParseTCPSynRoundTrip(t *testing.T) {
	frame := buildTCPSyn(t, nil)
	var p Parser
	var out Parsed
	if err := p.Parse(frame, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []LayerType{LayerEthernet, LayerIPv4, LayerTCP} {
		if !out.Has(want) {
			t.Fatalf("missing layer %v; decoded %v", want, out.Decoded)
		}
	}
	if out.TCP.SrcPort != 51000 || out.TCP.DstPort != 443 {
		t.Errorf("ports = %d->%d", out.TCP.SrcPort, out.TCP.DstPort)
	}
	if out.TCP.Flags&FlagSYN == 0 || out.TCP.Flags&FlagECE == 0 || out.TCP.Flags&FlagCWR == 0 {
		t.Errorf("flags = %#x", out.TCP.Flags)
	}
	if got := out.TCP.MSS(); got != 1460 {
		t.Errorf("MSS = %d, want 1460", got)
	}
	if got := out.TCP.WindowScale(); got != 8 {
		t.Errorf("WindowScale = %d, want 8", got)
	}
	if !out.TCP.SACKPermitted() {
		t.Error("SACKPermitted = false")
	}
	if out.IP4.TTL != 64 {
		t.Errorf("TTL = %d", out.IP4.TTL)
	}
	if out.IP4.Src != srcIP || out.IP4.Dst != dstIP {
		t.Errorf("addrs = %v -> %v", out.IP4.Src, out.IP4.Dst)
	}
	if len(out.Payload) != 0 {
		t.Errorf("payload = %d bytes, want 0", len(out.Payload))
	}
}

func TestParseUDPIPv6RoundTrip(t *testing.T) {
	payload := []byte("quic initial bytes")
	udp := &UDP{SrcPort: 55000, DstPort: 443}
	seg := udp.Append(nil, payload, src6, dst6)
	ip := &IPv6{HopLimit: 58, Protocol: ProtoUDP, Src: src6, Dst: dst6}
	pkt := ip.Append(nil, seg)
	eth := &Ethernet{EtherType: EtherTypeIPv6}
	frame := eth.Append(nil, pkt)

	var p Parser
	var out Parsed
	if err := p.Parse(frame, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Has(LayerIPv6) || !out.Has(LayerUDP) {
		t.Fatalf("decoded %v", out.Decoded)
	}
	if out.TTL() != 58 {
		t.Errorf("TTL = %d", out.TTL())
	}
	if !bytes.Equal(out.Payload, payload) {
		t.Errorf("payload mismatch: %q", out.Payload)
	}
	key, ok := out.Flow()
	if !ok {
		t.Fatal("Flow not ok")
	}
	if key.Proto != ProtoUDP || key.SrcPort != 55000 {
		t.Errorf("key = %v", key)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	frame := buildTCPSyn(t, []byte("x"))
	// Recompute the IPv4 header checksum over the serialized header; the
	// Internet checksum of a header containing its own checksum must be 0.
	hdr := frame[14 : 14+20]
	if got := Checksum(hdr); got != 0 {
		t.Errorf("IPv4 header checksum residue = %#x, want 0", got)
	}
}

func TestTCPChecksumValid(t *testing.T) {
	frame := buildTCPSyn(t, []byte("hello"))
	var p Parser
	var out Parsed
	if err := p.Parse(frame, &out); err != nil {
		t.Fatal(err)
	}
	// Verify by recomputing over pseudo-header + segment.
	ipPayloadLen := int(out.IP4.TotalLen) - 20
	seg := frame[14+20 : 14+20+ipPayloadLen]
	ck := pseudoChecksum(out.IP4.Src, out.IP4.Dst, ProtoTCP, seg)
	if ck != 0 {
		t.Errorf("TCP checksum residue = %#x, want 0", ck)
	}
}

func TestDecodeTruncated(t *testing.T) {
	frame := buildTCPSyn(t, nil)
	var p Parser
	var out Parsed
	for _, n := range []int{0, 5, 13, 14, 20, 33, 34, 40, len(frame) - 1} {
		if n >= len(frame) {
			continue
		}
		err := p.Parse(frame[:n], &out)
		if n < len(frame) && err == nil && n < 14+20+36 {
			// Anything shorter than eth+ip+full tcp header must error
			// unless it happens to end on a layer boundary with no
			// transport expected.
			if out.Has(LayerTCP) {
				t.Errorf("Parse(%d bytes): decoded TCP from truncated frame", n)
			}
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	var p Parser
	var out Parsed
	// Random-ish bytes with a valid ethertype but garbage IP version.
	frame := make([]byte, 64)
	frame[12], frame[13] = 0x08, 0x00
	frame[14] = 0x00 // IP version 0
	if err := p.Parse(frame, &out); err == nil {
		t.Error("expected error for IP version 0")
	}
}

func TestUnsupportedEtherTypePassthrough(t *testing.T) {
	eth := &Ethernet{EtherType: 0x0806} // ARP
	frame := eth.Append(nil, []byte{1, 2, 3, 4})
	var p Parser
	var out Parsed
	if err := p.Parse(frame, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Decoded) != 1 || !bytes.Equal(out.Payload, []byte{1, 2, 3, 4}) {
		t.Errorf("decoded = %v payload = %v", out.Decoded, out.Payload)
	}
}

func TestFlowKeyCanonicalSymmetry(t *testing.T) {
	k := FlowKey{Src: srcIP, Dst: dstIP, SrcPort: 51000, DstPort: 443, Proto: ProtoTCP}
	if k.Canonical() != k.Reverse().Canonical() {
		t.Error("Canonical not direction-independent")
	}
	if k.Reverse().Reverse() != k {
		t.Error("Reverse not involutive")
	}
	if s := k.String(); s == "" {
		t.Error("empty String")
	}
}

func TestChecksumProperties(t *testing.T) {
	// RFC 1071: the checksum of data with its checksum appended is zero.
	f := func(data []byte) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		ck := Checksum(data)
		withCk := append(append([]byte{}, data...), byte(ck>>8), byte(ck))
		return Checksum(withCk) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPOptionsPaddingAlignment(t *testing.T) {
	// Odd-length options must be padded so the data offset is a multiple of 4.
	tcp := &TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN,
		Options: []TCPOption{{Kind: OptWindowScale, Data: []byte{7}}}}
	seg := tcp.Append(nil, nil, srcIP, dstIP)
	if len(seg)%4 != 0 {
		t.Fatalf("segment length %d not 32-bit aligned", len(seg))
	}
	var dec TCP
	if _, err := dec.Decode(seg); err != nil {
		t.Fatal(err)
	}
	if dec.WindowScale() != 7 {
		t.Errorf("WindowScale = %d", dec.WindowScale())
	}
}

func TestTCPMalformedOptions(t *testing.T) {
	// Option with declared length running past the header must error.
	seg := make([]byte, 24)
	binary.BigEndian.PutUint16(seg[0:2], 80)
	seg[12] = 6 << 4 // data offset 24 => 4 option bytes
	seg[20] = OptMSS
	seg[21] = 40 // longer than remaining
	var dec TCP
	if _, err := dec.Decode(seg); err == nil {
		t.Error("expected error for malformed option length")
	}
	// Zero option length is also invalid.
	seg[21] = 0
	if _, err := dec.Decode(seg); err == nil {
		t.Error("expected error for zero option length")
	}
}

func TestParseAllocFree(t *testing.T) {
	frame := buildTCPSyn(t, []byte("payload"))
	var p Parser
	var out Parsed
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.Parse(frame, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Parse allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkParseTCPSyn(b *testing.B) {
	frame := buildTCPSyn(&testing.T{}, nil)
	var p Parser
	var out Parsed
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if err := p.Parse(frame, &out); err != nil {
			b.Fatal(err)
		}
	}
}
