package ml

import (
	"math"
	"math/rand/v2"
)

// Activation selects the hidden-layer nonlinearity, one of the MLP
// hyperparameters tuned in §4.3.1.
type Activation uint8

// Supported activations.
const (
	ReLU Activation = iota
	Tanh
	Logistic
)

// MLPConfig are the neural-network hyperparameters of §4.3.1: hidden layout,
// activation, plus the usual SGD knobs.
type MLPConfig struct {
	Hidden       []int // perceptrons per hidden layer
	Activation   Activation
	LearningRate float64 // default 0.01
	Epochs       int     // default 60
	BatchSize    int     // default 32
	Seed         uint64
}

// MLP is a feed-forward network with a softmax head trained by mini-batch
// SGD with momentum, standardizing inputs like the KNN.
type MLP struct {
	Config MLPConfig

	weights [][][]float64 // [layer][out][in]
	biases  [][]float64
	mean    []float64
	std     []float64
	classes int
}

func (m *MLP) act(v float64) float64 {
	switch m.Config.Activation {
	case Tanh:
		return math.Tanh(v)
	case Logistic:
		return 1 / (1 + math.Exp(-v))
	default:
		if v > 0 {
			return v
		}
		return 0
	}
}

func (m *MLP) actDeriv(activated float64) float64 {
	switch m.Config.Activation {
	case Tanh:
		return 1 - activated*activated
	case Logistic:
		return activated * (1 - activated)
	default:
		if activated > 0 {
			return 1
		}
		return 0
	}
}

// Fit trains the network.
func (m *MLP) Fit(d *Dataset) {
	cfg := m.Config
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.01
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 60
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{64}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6d6c70))

	nIn := d.NumFeatures()
	m.classes = len(d.Classes)
	m.mean, m.std = columnStats(d.X)

	sizes := append(append([]int{nIn}, cfg.Hidden...), m.classes)
	m.weights = make([][][]float64, len(sizes)-1)
	m.biases = make([][]float64, len(sizes)-1)
	for l := 0; l < len(sizes)-1; l++ {
		m.weights[l] = make([][]float64, sizes[l+1])
		m.biases[l] = make([]float64, sizes[l+1])
		scale := math.Sqrt(2.0 / float64(sizes[l]))
		for o := range m.weights[l] {
			m.weights[l][o] = make([]float64, sizes[l])
			for i := range m.weights[l][o] {
				m.weights[l][o][i] = rng.NormFloat64() * scale
			}
		}
	}

	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	momentum := 0.9
	velW := zerosLike(m.weights)
	velB := zerosLikeVec(m.biases)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			gradW := zerosLike(m.weights)
			gradB := zerosLikeVec(m.biases)
			for _, r := range order[start:end] {
				m.backprop(m.standardize(d.X[r]), d.Y[r], gradW, gradB)
			}
			lr := cfg.LearningRate / float64(end-start)
			for l := range m.weights {
				for o := range m.weights[l] {
					for i := range m.weights[l][o] {
						velW[l][o][i] = momentum*velW[l][o][i] - lr*gradW[l][o][i]
						m.weights[l][o][i] += velW[l][o][i]
					}
					velB[l][o] = momentum*velB[l][o] - lr*gradB[l][o]
					m.biases[l][o] += velB[l][o]
				}
			}
		}
	}
}

func (m *MLP) standardize(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - m.mean[j]) / m.std[j]
	}
	return out
}

// forward returns the activations of every layer (layer 0 = input).
func (m *MLP) forward(x []float64) [][]float64 {
	acts := [][]float64{x}
	cur := x
	for l := range m.weights {
		next := make([]float64, len(m.weights[l]))
		for o := range m.weights[l] {
			sum := m.biases[l][o]
			w := m.weights[l][o]
			for i, v := range cur {
				sum += w[i] * v
			}
			if l == len(m.weights)-1 {
				next[o] = sum // softmax applied by caller
			} else {
				next[o] = m.act(sum)
			}
		}
		acts = append(acts, next)
		cur = next
	}
	return acts
}

func softmax(logits []float64) []float64 {
	maxL := math.Inf(-1)
	for _, v := range logits {
		if v > maxL {
			maxL = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxL)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func (m *MLP) backprop(x []float64, y int, gradW [][][]float64, gradB [][]float64) {
	acts := m.forward(x)
	probs := softmax(acts[len(acts)-1])

	// delta at output: softmax + cross-entropy
	delta := make([]float64, len(probs))
	copy(delta, probs)
	delta[y] -= 1

	for l := len(m.weights) - 1; l >= 0; l-- {
		in := acts[l]
		for o := range m.weights[l] {
			gradB[l][o] += delta[o]
			for i := range m.weights[l][o] {
				gradW[l][o][i] += delta[o] * in[i]
			}
		}
		if l == 0 {
			break
		}
		prev := make([]float64, len(in))
		for i := range prev {
			var sum float64
			for o := range m.weights[l] {
				sum += m.weights[l][o][i] * delta[o]
			}
			prev[i] = sum * m.actDeriv(in[i])
		}
		delta = prev
	}
}

// PredictProba runs a forward pass.
func (m *MLP) PredictProba(x []float64) []float64 {
	acts := m.forward(m.standardize(x))
	return softmax(acts[len(acts)-1])
}

func columnStats(x [][]float64) (mean, std []float64) {
	if len(x) == 0 {
		return nil, nil
	}
	m := len(x[0])
	mean = make([]float64, m)
	std = make([]float64, m)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(x)))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	return mean, std
}

func zerosLike(w [][][]float64) [][][]float64 {
	out := make([][][]float64, len(w))
	for l := range w {
		out[l] = make([][]float64, len(w[l]))
		for o := range w[l] {
			out[l][o] = make([]float64, len(w[l][o]))
		}
	}
	return out
}

func zerosLikeVec(b [][]float64) [][]float64 {
	out := make([][]float64, len(b))
	for l := range b {
		out[l] = make([]float64, len(b[l]))
	}
	return out
}
