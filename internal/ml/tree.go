package ml

import (
	"math/rand/v2"
	"sort"
)

// TreeConfig are the CART hyperparameters tuned in Fig 6(a).
type TreeConfig struct {
	MaxDepth       int // 0 = unlimited
	MinSamplesLeaf int // default 1
	// MaxFeatures is the number of candidate features per split; 0 means
	// all features (plain decision tree), sqrt is typical for forests.
	MaxFeatures int
	Seed        uint64
}

// DecisionTree is a CART classifier with gini impurity.
type DecisionTree struct {
	Config  TreeConfig
	root    *node
	classes int
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	proba     []float64 // leaf class distribution
}

func (n *node) isLeaf() bool { return n.left == nil }

// Fit grows the tree on d.
func (t *DecisionTree) Fit(d *Dataset) {
	rows := make([]int, d.Len())
	for i := range rows {
		rows[i] = i
	}
	t.FitRows(d, rows)
}

// FitRows grows the tree on a row subset (used by the forest for bootstrap
// samples).
func (t *DecisionTree) FitRows(d *Dataset, rows []int) {
	t.classes = len(d.Classes)
	rng := rand.New(rand.NewPCG(t.Config.Seed, 0x5bf0_3635))
	minLeaf := t.Config.MinSamplesLeaf
	if minLeaf <= 0 {
		minLeaf = 1
	}
	t.root = t.grow(d, rows, 0, rng, minLeaf)
}

func (t *DecisionTree) grow(d *Dataset, rows []int, depth int, rng *rand.Rand, minLeaf int) *node {
	counts := make([]int, t.classes)
	for _, r := range rows {
		counts[d.Y[r]]++
	}
	pure := false
	for _, c := range counts {
		if c == len(rows) {
			pure = true
		}
	}
	if pure || len(rows) < 2*minLeaf || (t.Config.MaxDepth > 0 && depth >= t.Config.MaxDepth) {
		return leafNode(counts, len(rows))
	}

	feat, thresh, ok := t.bestSplit(d, rows, rng, minLeaf, counts)
	if !ok {
		return leafNode(counts, len(rows))
	}
	var left, right []int
	for _, r := range rows {
		if d.X[r][feat] <= thresh {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < minLeaf || len(right) < minLeaf {
		return leafNode(counts, len(rows))
	}
	return &node{
		feature:   feat,
		threshold: thresh,
		left:      t.grow(d, left, depth+1, rng, minLeaf),
		right:     t.grow(d, right, depth+1, rng, minLeaf),
	}
}

func leafNode(counts []int, total int) *node {
	proba := make([]float64, len(counts))
	if total > 0 {
		for i, c := range counts {
			proba[i] = float64(c) / float64(total)
		}
	}
	return &node{proba: proba}
}

// bestSplit searches candidate features for the gini-optimal threshold.
func (t *DecisionTree) bestSplit(d *Dataset, rows []int, rng *rand.Rand, minLeaf int, parentCounts []int) (int, float64, bool) {
	nFeat := d.NumFeatures()
	candidates := make([]int, nFeat)
	for i := range candidates {
		candidates[i] = i
	}
	if t.Config.MaxFeatures > 0 && t.Config.MaxFeatures < nFeat {
		rng.Shuffle(nFeat, func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		candidates = candidates[:t.Config.MaxFeatures]
	}

	type pair struct {
		v float64
		y int
	}
	bestGini := giniOf(parentCounts, len(rows))
	bestFeat, bestThresh, found := -1, 0.0, false
	pairs := make([]pair, len(rows))

	for _, f := range candidates {
		for i, r := range rows {
			pairs[i] = pair{d.X[r][f], d.Y[r]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue // constant feature
		}
		leftCounts := make([]int, t.classes)
		rightCounts := make([]int, t.classes)
		copy(rightCounts, parentCounts)
		nLeft := 0
		total := float64(len(rows))
		for i := 0; i < len(pairs)-1; i++ {
			leftCounts[pairs[i].y]++
			rightCounts[pairs[i].y]--
			nLeft++
			if pairs[i].v == pairs[i+1].v {
				continue // can only split between distinct values
			}
			if nLeft < minLeaf || len(rows)-nLeft < minLeaf {
				continue
			}
			g := (float64(nLeft)*giniOf(leftCounts, nLeft) +
				(total-float64(nLeft))*giniOf(rightCounts, len(rows)-nLeft)) / total
			if g < bestGini-1e-12 {
				bestGini = g
				bestFeat = f
				bestThresh = (pairs[i].v + pairs[i+1].v) / 2
				found = true
			}
		}
	}
	return bestFeat, bestThresh, found
}

func giniOf(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

// PredictProba returns the leaf class distribution for x.
func (t *DecisionTree) PredictProba(x []float64) []float64 {
	n := t.root
	for !n.isLeaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.proba
}

// Depth returns the tree's maximum depth (root = 0), for tests.
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.isLeaf() {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
