package ml

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// synthBlobs builds a well-separated 3-class dataset with some noise.
func synthBlobs(n int, seed uint64, noise float64) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 7))
	centers := [][]float64{{0, 0, 5}, {10, 0, 0}, {0, 10, 2}}
	labels := []string{"a", "b", "c"}
	var x [][]float64
	var y []string
	for i := 0; i < n; i++ {
		c := i % 3
		row := make([]float64, 3)
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()*noise
		}
		x = append(x, row)
		y = append(y, labels[c])
	}
	d, _ := NewDataset(x, y)
	return d
}

// xorDataset is not linearly separable; trees and MLPs must still learn it.
func xorDataset(n int, seed uint64) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 13))
	var x [][]float64
	var y []string
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		label := "same"
		if (a > 0.5) != (b > 0.5) {
			label = "diff"
		}
		x = append(x, []float64{a, b})
		y = append(y, label)
	}
	d, _ := NewDataset(x, y)
	return d
}

func TestNewDatasetErrors(t *testing.T) {
	if _, err := NewDataset([][]float64{{1}}, []string{"a", "b"}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDecisionTreeLearnsBlobs(t *testing.T) {
	d := synthBlobs(300, 1, 0.5)
	tree := &DecisionTree{Config: TreeConfig{MaxDepth: 8}}
	tree.Fit(d)
	res := Evaluate(tree, d)
	if res.Accuracy < 0.99 {
		t.Errorf("train accuracy = %.3f", res.Accuracy)
	}
}

func TestDecisionTreeXOR(t *testing.T) {
	train := xorDataset(400, 2)
	test := xorDataset(200, 3)
	tree := &DecisionTree{Config: TreeConfig{MaxDepth: 10}}
	tree.Fit(train)
	res := EvaluateTransfer(tree, train.Classes, test)
	if res.Accuracy < 0.9 {
		t.Errorf("XOR test accuracy = %.3f", res.Accuracy)
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	d := synthBlobs(300, 4, 2.0)
	tree := &DecisionTree{Config: TreeConfig{MaxDepth: 2}}
	tree.Fit(d)
	if got := tree.Depth(); got > 2 {
		t.Errorf("depth = %d, want <= 2", got)
	}
}

func TestDecisionTreeSingleClass(t *testing.T) {
	d, _ := NewDataset([][]float64{{1}, {2}, {3}}, []string{"x", "x", "x"})
	tree := &DecisionTree{}
	tree.Fit(d)
	p := tree.PredictProba([]float64{5})
	if p[0] != 1 {
		t.Errorf("proba = %v", p)
	}
}

func TestDecisionTreeConstantFeatures(t *testing.T) {
	// All features identical: must produce a leaf, not loop.
	d, _ := NewDataset([][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}},
		[]string{"a", "b", "a", "b"})
	tree := &DecisionTree{Config: TreeConfig{MaxDepth: 5}}
	tree.Fit(d)
	p := tree.PredictProba([]float64{1, 1})
	if math.Abs(p[0]-0.5) > 1e-9 || math.Abs(p[1]-0.5) > 1e-9 {
		t.Errorf("proba = %v, want [0.5 0.5]", p)
	}
}

func TestRandomForestBeatsNoise(t *testing.T) {
	train := synthBlobs(300, 5, 2.5)
	test := synthBlobs(150, 6, 2.5)
	f := &RandomForest{Config: ForestConfig{NumTrees: 30, MaxDepth: 10, Seed: 1}}
	f.Fit(train)
	if f.NumTrees() != 30 {
		t.Fatalf("trees = %d", f.NumTrees())
	}
	res := EvaluateTransfer(f, train.Classes, test)
	if res.Accuracy < 0.95 {
		t.Errorf("forest accuracy = %.3f", res.Accuracy)
	}
}

func TestForestProbaSumsToOne(t *testing.T) {
	d := synthBlobs(120, 7, 1.0)
	f := &RandomForest{Config: ForestConfig{NumTrees: 10, MaxDepth: 6, Seed: 2}}
	f.Fit(d)
	fn := func(a, b, c float64) bool {
		p := f.PredictProba([]float64{a * 10, b * 10, c * 10})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	d := synthBlobs(150, 8, 1.5)
	mk := func() []float64 {
		f := &RandomForest{Config: ForestConfig{NumTrees: 8, MaxDepth: 6, Seed: 42}}
		f.Fit(d)
		return f.PredictProba([]float64{5, 5, 2})
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded forests disagree: %v vs %v", a, b)
		}
	}
}

func TestKNNLearnsBlobs(t *testing.T) {
	train := synthBlobs(300, 9, 1.0)
	test := synthBlobs(150, 10, 1.0)
	k := &KNN{Config: KNNConfig{K: 5, DistanceWeight: true}}
	k.Fit(train)
	res := EvaluateTransfer(k, train.Classes, test)
	if res.Accuracy < 0.95 {
		t.Errorf("knn accuracy = %.3f", res.Accuracy)
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	d, _ := NewDataset([][]float64{{0}, {1}}, []string{"a", "b"})
	k := &KNN{Config: KNNConfig{K: 10}}
	k.Fit(d)
	p := k.PredictProba([]float64{0.1})
	if len(p) != 2 {
		t.Fatalf("proba = %v", p)
	}
}

func TestMLPLearnsBlobs(t *testing.T) {
	train := synthBlobs(300, 11, 1.0)
	test := synthBlobs(150, 12, 1.0)
	m := &MLP{Config: MLPConfig{Hidden: []int{16}, Epochs: 80, Seed: 3}}
	m.Fit(train)
	res := EvaluateTransfer(m, train.Classes, test)
	if res.Accuracy < 0.9 {
		t.Errorf("mlp accuracy = %.3f", res.Accuracy)
	}
}

func TestMLPActivations(t *testing.T) {
	train := xorDataset(500, 13)
	for _, act := range []Activation{ReLU, Tanh, Logistic} {
		m := &MLP{Config: MLPConfig{Hidden: []int{16, 8}, Activation: act,
			Epochs: 150, LearningRate: 0.05, Seed: 4}}
		m.Fit(train)
		res := Evaluate(m, train)
		if res.Accuracy < 0.85 {
			t.Errorf("activation %d: XOR train accuracy = %.3f", act, res.Accuracy)
		}
	}
}

func TestCrossValidate(t *testing.T) {
	d := synthBlobs(200, 14, 1.0)
	res := CrossValidate(func() Classifier {
		return &RandomForest{Config: ForestConfig{NumTrees: 10, MaxDepth: 8, Seed: 5}}
	}, d, 10, 99)
	if res.Accuracy < 0.95 {
		t.Errorf("10-fold accuracy = %.3f", res.Accuracy)
	}
	// Every sample appears exactly once in the confusion matrix.
	var total int
	for _, row := range res.Confusion.M {
		for _, v := range row {
			total += v
		}
	}
	if total != d.Len() {
		t.Errorf("confusion total = %d, want %d", total, d.Len())
	}
}

func TestStratifiedKFoldPartition(t *testing.T) {
	d := synthBlobs(101, 15, 1.0)
	rng := rand.New(rand.NewPCG(1, 2))
	folds := StratifiedKFold(d, 10, rng)
	seen := map[int]int{}
	for _, f := range folds {
		for _, r := range f {
			seen[r]++
		}
	}
	if len(seen) != d.Len() {
		t.Fatalf("folds cover %d samples, want %d", len(seen), d.Len())
	}
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("row %d appears %d times", r, c)
		}
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a", "b"})
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 1)
	cm.Add(1, 1)
	if acc := cm.Accuracy(); math.Abs(acc-0.75) > 1e-9 {
		t.Errorf("accuracy = %v", acc)
	}
	if r := cm.Recall(0); math.Abs(r-2.0/3) > 1e-9 {
		t.Errorf("recall(a) = %v", r)
	}
	norm := cm.RowNormalized()
	if math.Abs(norm[1][1]-1) > 1e-9 {
		t.Errorf("norm = %v", norm)
	}
	if cm.String() == "" {
		t.Error("empty String")
	}
}

func TestMedianConfidence(t *testing.T) {
	e := &EvalResult{CorrectConf: []float64{0.9, 0.8, 1.0}, IncorrectConf: []float64{0.4, 0.6}}
	c, i := e.MedianConfidence()
	if c != 0.9 || i != 0.5 {
		t.Errorf("medians = %v, %v", c, i)
	}
	empty := &EvalResult{}
	c, i = empty.MedianConfidence()
	if !math.IsNaN(c) || !math.IsNaN(i) {
		t.Errorf("empty medians = %v %v, want NaN", c, i)
	}
}

func TestInformationGain(t *testing.T) {
	// Column 0 fully determines the label, column 1 is pure noise, column 2
	// is partially informative.
	rng := rand.New(rand.NewPCG(16, 1))
	var x [][]float64
	var y []string
	for i := 0; i < 500; i++ {
		c := i % 2
		noisy := float64(c)
		if rng.Float64() < 0.3 {
			noisy = 1 - noisy
		}
		x = append(x, []float64{float64(c), rng.Float64(), noisy})
		y = append(y, []string{"a", "b"}[c])
	}
	d, _ := NewDataset(x, y)
	gains := InformationGain(d, 32)
	if gains[0] < 0.99 {
		t.Errorf("perfect column gain = %v", gains[0])
	}
	if gains[1] > 0.15 {
		t.Errorf("noise column gain = %v", gains[1])
	}
	if gains[2] < gains[1] || gains[2] > gains[0] {
		t.Errorf("partial column gain = %v not between noise %v and perfect %v",
			gains[2], gains[1], gains[0])
	}
}

func TestAttributeImportanceAggregation(t *testing.T) {
	gains := []float64{0.1, 0.9, 0.3}
	imp := AttributeImportance(gains, map[string][]int{"m3": {0, 1}, "t1": {2}})
	if imp["m3"] != 0.9 || imp["t1"] != 0.3 {
		t.Errorf("importance = %v", imp)
	}
}

func TestRelabelAndSelectColumns(t *testing.T) {
	d := synthBlobs(30, 17, 1.0)
	rl := d.Relabel(func(s string) string {
		if s == "a" || s == "b" {
			return "ab"
		}
		return s
	})
	if len(rl.Classes) != 2 {
		t.Errorf("relabel classes = %v", rl.Classes)
	}
	sel := d.SelectColumns([]int{2, 0})
	if sel.NumFeatures() != 2 {
		t.Errorf("selected features = %d", sel.NumFeatures())
	}
	if sel.X[0][0] != d.X[0][2] || sel.X[0][1] != d.X[0][0] {
		t.Error("column selection order wrong")
	}
}

func TestForestSerializationRoundTrip(t *testing.T) {
	d := synthBlobs(150, 18, 1.0)
	f := &RandomForest{Config: ForestConfig{NumTrees: 7, MaxDepth: 6, Seed: 6}}
	f.Fit(d)
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g RandomForest
	if err := g.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i), float64(20 - i), float64(i % 5)}
		pa := f.PredictProba(x)
		pb := g.PredictProba(x)
		for j := range pa {
			if math.Abs(pa[j]-pb[j]) > 1e-12 {
				t.Fatalf("prediction differs after round trip: %v vs %v", pa, pb)
			}
		}
	}
	if err := g.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func BenchmarkForestFit(b *testing.B) {
	d := synthBlobs(500, 19, 1.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := &RandomForest{Config: ForestConfig{NumTrees: 20, MaxDepth: 10, Seed: 7}}
		f.Fit(d)
	}
}

func BenchmarkForestPredict(b *testing.B) {
	d := synthBlobs(500, 20, 1.0)
	f := &RandomForest{Config: ForestConfig{NumTrees: 50, MaxDepth: 15, Seed: 8}}
	f.Fit(d)
	x := d.X[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.PredictProba(x)
	}
}
