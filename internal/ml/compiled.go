package ml

import (
	"encoding/binary"
	"errors"
	"math"
)

// cnode is one flattened tree node: 16 bytes, so a root-to-leaf walk touches
// one cache line per visited node instead of chasing *node pointers across
// the heap. Trees are laid out in preorder with the left subtree emitted
// immediately after its parent, so the left child is implicitly id+1 and
// only the right child needs storing.
//
// Leaves are self-loops: thresh is NaN (every `x <= NaN` is false) and right
// is the leaf's own id, so a walk that reaches a leaf parks there harmlessly.
// That lets the evaluators run a fixed number of branchless steps (the tree's
// compiled depth) instead of testing for leaf arrival on every level — the
// test would be an unpredictable branch precisely where walks diverge.
type cnode struct {
	// feat is the split feature for internal nodes; 0 for leaves (a safe
	// dummy load — the NaN compare discards it).
	feat int32
	// right is the right child's node id for internal nodes; for leaves,
	// the leaf's own id (the self-loop).
	right  int32
	thresh float64
}

// CompiledForest is a fitted RandomForest lowered into the serving
// representation: every tree's nodes flattened into one contiguous array of
// packed 16-byte records (split feature, threshold, right-child id — the
// left child is implicit in the preorder layout) with leaf distributions
// gathered into one shared probability table, evaluated with a tight loop
// over array indices instead of chasing *node pointers across the heap.
// Where the reference ensemble walks ~50 heap-scattered trees per
// prediction, the compiled form streams through one dense array whose hot
// prefix stays cache-resident across predictions.
//
// Accumulation happens in the same tree order and with the same float
// operations as RandomForest.PredictProbaInto, so compiled predictions are
// byte-identical to the reference path (pinned by the golden-equivalence
// tests). A CompiledForest is immutable after CompileForest and safe for
// concurrent use; probability scratch is caller-owned.
type CompiledForest struct {
	// nodes holds every tree's records back-to-back; roots[t] is tree t's
	// root id and depths[t] its edge depth (walks run exactly depths[t]
	// branchless steps; shallower paths park on their leaf's self-loop).
	// Within a tree the layout is preorder (parent, then the whole left
	// subtree, then the right), so a walk moves forward through memory.
	nodes  []cnode
	roots  []int32
	depths []int32
	// evalRoots/evalDepths are the batched walk order: within every chunk
	// of batchChunk trees, the roots and depths permuted so depths ascend,
	// so each lane group holds similar-depth trees and pads its fixed step
	// count (the group max) as little as possible. pos[t] is tree t's slot
	// within its chunk's walk scratch, used to read leaves back in original
	// tree order when accumulating — float accumulation order is what keeps
	// batched results byte-identical to the reference path.
	evalRoots  []int32
	evalDepths []int32
	pos        []int32
	// The shared leaf-distribution table, stored sparse: row r's entries are
	// probaIdx/probaVal[rowOff[r]:rowOff[r+1]] — only the nonzero class
	// probabilities, in ascending class order, values copied verbatim from
	// the reference trees. Skipping the exact-+0.0 entries is bitwise a
	// no-op (accumulators are non-negative, and x + 0.0 == x for any
	// non-negative x), so sparse accumulation stays byte-identical to the
	// reference dense loop while costing ~one add per tree: forest leaves
	// are overwhelmingly pure, so most rows hold a single entry.
	// leafRow[id] is the table row for leaf node id (0 for internal nodes)
	// — consulted once per walk, after the descent ends. Bitwise-identical
	// distributions share one row, keeping the table cache-resident.
	rowOff   []int32
	probaIdx []int32
	probaVal []float64
	leafRow  []int32

	classes int
	trees   int
	// realNodes is the node count before the power-of-two padding appended
	// so the evaluators can mask-index nodes without a bounds check.
	realNodes int
}

// errEmptyForest and errRaggedForest are the CompileForest failure modes;
// callers treat either as "serve through the reference pointer walk".
var (
	errEmptyForest  = errors.New("ml: cannot compile an empty forest")
	errRaggedForest = errors.New("ml: cannot compile a forest with mixed leaf-distribution widths")
)

// CompileForest lowers a fitted forest into its compiled serving form. It
// fails for ensembles the flat layout cannot represent faithfully — no
// trees, or leaf distributions of differing widths (impossible for forests
// trained by Fit, defensive for hand-assembled or corrupted ones) — so
// callers can fall back to the reference path.
func CompileForest(f *RandomForest) (*CompiledForest, error) {
	if f == nil || len(f.trees) == 0 {
		return nil, errEmptyForest
	}
	cf := &CompiledForest{classes: -1, trees: len(f.trees)}
	nodes := 0
	for _, t := range f.trees {
		nodes += countNodes(t.root)
	}
	cf.nodes = make([]cnode, 0, nodes)
	cf.leafRow = make([]int32, 0, nodes)
	cf.rowOff = []int32{0}
	cf.roots = make([]int32, 0, len(f.trees))
	cf.depths = make([]int32, 0, len(f.trees))
	// Identical leaf distributions (bitwise — overwhelmingly the pure
	// single-class leaves a forest bottoms out in) share one proba-table
	// row, which keeps the table small enough to stay cache-resident during
	// the accumulate pass. Sharing storage of equal values cannot change
	// any result.
	lc := compileCtx{cf: cf, dedup: make(map[string]int32)}
	for _, t := range f.trees {
		root, depth, err := lc.lower(t.root)
		if err != nil {
			return nil, err
		}
		cf.roots = append(cf.roots, root)
		cf.depths = append(cf.depths, depth)
	}
	// Pad the node array to a power of two with unreachable self-loops so
	// the evaluators can index it as nodes[id&mask] with mask = len-1: the
	// mask is a no-op for every real id, and it lets the compiler prove the
	// index in bounds, dropping the bounds check from the hottest loop.
	cf.realNodes = len(cf.nodes)
	for len(cf.nodes)&(len(cf.nodes)-1) != 0 {
		id := int32(len(cf.nodes))
		cf.nodes = append(cf.nodes, cnode{right: id, thresh: math.NaN()})
		cf.leafRow = append(cf.leafRow, 0)
	}
	cf.buildEvalOrder()
	return cf, nil
}

// compileCtx carries compile-only state (the leaf-distribution dedup index)
// that has no place in the immutable serving struct.
type compileCtx struct {
	cf    *CompiledForest
	dedup map[string]int32
	key   []byte
}

// probaRow interns one leaf distribution in the shared sparse table and
// returns its row index, reusing an existing row on a bitwise match. Only the
// entries whose bits differ from +0.0 are stored: exact positive zeros are
// the one value whose addition never changes a non-negative accumulator
// bitwise, so dropping them preserves byte-identity with the dense reference
// loop (a -0.0 — never produced by Fit, but cheap to honor — is kept).
func (lc *compileCtx) probaRow(proba []float64) int32 {
	lc.key = lc.key[:0]
	for _, v := range proba {
		lc.key = binary.LittleEndian.AppendUint64(lc.key, math.Float64bits(v))
	}
	if row, ok := lc.dedup[string(lc.key)]; ok {
		return row
	}
	cf := lc.cf
	row := int32(len(cf.rowOff) - 1)
	for i, v := range proba {
		if math.Float64bits(v) != 0 {
			cf.probaIdx = append(cf.probaIdx, int32(i))
			cf.probaVal = append(cf.probaVal, v)
		}
	}
	cf.rowOff = append(cf.rowOff, int32(len(cf.probaIdx)))
	lc.dedup[string(lc.key)] = row
	return row
}

// batchChunk is the batched evaluator's walk-scratch size: trees are
// depth-sorted within chunks of this many, walked a chunk at a time into a
// fixed stack array, and accumulated in original tree order.
const batchChunk = 64

// buildEvalOrder depth-sorts tree indices within each batchChunk-sized chunk
// (insertion sort: chunks are tiny and this runs once per compile) and
// records every tree's slot for the accumulate pass.
func (cf *CompiledForest) buildEvalOrder() {
	n := len(cf.roots)
	order := make([]int32, n)
	cf.pos = make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	for start := 0; start < n; start += batchChunk {
		end := min(start+batchChunk, n)
		ord := order[start:end]
		for i := 1; i < len(ord); i++ {
			for j := i; j > 0 && cf.depths[ord[j]] < cf.depths[ord[j-1]]; j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		for slot, t := range ord {
			cf.pos[t] = int32(slot)
		}
	}
	cf.evalRoots = make([]int32, n)
	cf.evalDepths = make([]int32, n)
	for k, t := range order {
		cf.evalRoots[k] = cf.roots[t]
		cf.evalDepths[k] = cf.depths[t]
	}
}

func countNodes(n *node) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// lower appends one subtree in preorder (parent, left subtree, right
// subtree — making every left child id+1) and returns its root's node id and
// edge depth.
func (lc *compileCtx) lower(n *node) (int32, int32, error) {
	if n == nil {
		return 0, 0, errors.New("ml: cannot compile a forest with nil nodes")
	}
	cf := lc.cf
	id := int32(len(cf.nodes))
	if n.isLeaf() {
		if cf.classes < 0 {
			cf.classes = len(n.proba)
		} else if len(n.proba) != cf.classes {
			return 0, 0, errRaggedForest
		}
		row := lc.probaRow(n.proba)
		cf.nodes = append(cf.nodes, cnode{feat: 0, right: id, thresh: math.NaN()})
		cf.leafRow = append(cf.leafRow, row)
		return id, 0, nil
	}
	if math.IsNaN(n.threshold) {
		// NaN marks leaves in the compiled form; an internal NaN split (never
		// produced by Fit) cannot be represented faithfully.
		return 0, 0, errors.New("ml: cannot compile a forest with NaN split thresholds")
	}
	cf.nodes = append(cf.nodes, cnode{feat: int32(n.feature), thresh: n.threshold})
	cf.leafRow = append(cf.leafRow, 0)
	_, dl, err := lc.lower(n.left) // lands at id+1: the implicit left child
	if err != nil {
		return 0, 0, err
	}
	r, dr, err := lc.lower(n.right)
	if err != nil {
		return 0, 0, err
	}
	cf.nodes[id].right = r
	return id, 1 + max(dl, dr), nil
}

// NumTrees reports the compiled ensemble size.
func (cf *CompiledForest) NumTrees() int { return cf.trees }

// NumClasses reports the width of every leaf distribution (and so of every
// probability vector the compiled forest produces).
func (cf *CompiledForest) NumClasses() int { return cf.classes }

// NumNodes reports the total flattened node count across all trees
// (excluding the power-of-two padding records; Bytes includes them).
func (cf *CompiledForest) NumNodes() int { return cf.realNodes }

// Bytes reports the resident size of the compiled arrays — the serving-index
// memory an operator pays per compiled model.
func (cf *CompiledForest) Bytes() int64 {
	return int64(len(cf.nodes))*16 + int64(len(cf.probaVal))*8 +
		int64(len(cf.probaIdx)+len(cf.rowOff)+len(cf.leafRow))*4 +
		int64(len(cf.roots)+len(cf.depths)+len(cf.evalRoots)+len(cf.evalDepths)+len(cf.pos))*4
}

// leafOf walks one tree for one row and returns the reached leaf's node id.
// The split select is branchless (CMOV — a split's direction is
// data-dependent and near 50/50, so a conditional jump there would
// mispredict on ~half the levels); the only branch is the exit test, which
// fires once per walk when the node steps onto a leaf's self-loop.
//
//vp:hotpath
func (cf *CompiledForest) leafOf(nodes []cnode, root int32, x []float64) int32 {
	// nodes is padded to a power of two, so the mask is a no-op for every
	// real id and proves the index in bounds (no per-step bounds check).
	if len(nodes) == 0 {
		return root
	}
	mask := len(nodes) - 1
	n := root
	for {
		nd := &nodes[int(n)&mask]
		next := nd.right
		if x[nd.feat] <= nd.thresh {
			next = n + 1 // left child: next record in the preorder layout
		}
		if next == n {
			return n // parked on a leaf self-loop
		}
		n = next
	}
}

// PredictProbaInto averages member probabilities into out's capacity,
// byte-identical to RandomForest.PredictProbaInto on the forest this was
// compiled from: per-tree leaf distributions are accumulated in tree order
// and divided by the tree count, in the same float operation order. The
// returned slice is the (possibly grown) buffer. Zero-allocation with a warm
// buffer, pinned by TestCompiledForestZeroAlloc.
//
//vp:hotpath
func (cf *CompiledForest) PredictProbaInto(x, out []float64) []float64 {
	if cap(out) < cf.classes {
		out = make([]float64, cf.classes) //vp:allocok cold first-call growth; steady state reuses out
	} else {
		out = out[:cf.classes]
		clear(out)
	}
	nodes := cf.nodes
	leafRow := cf.leafRow
	rowOff := cf.rowOff
	probaIdx := cf.probaIdx
	probaVal := cf.probaVal
	for _, root := range cf.roots {
		row := leafRow[cf.leafOf(nodes, root, x)]
		for k := rowOff[row]; k < rowOff[row+1]; k++ {
			out[probaIdx[k]] += probaVal[k]
		}
	}
	for i := range out {
		out[i] /= float64(cf.trees)
	}
	return out
}

// PredictInto returns the argmax class index and its probability, reusing
// *proba as the probability scratch — the compiled twin of
// RandomForest.PredictInto, with identical argmax tie-breaking.
//
//vp:hotpath
func (cf *CompiledForest) PredictInto(x []float64, proba *[]float64) (int, float64) {
	*proba = cf.PredictProbaInto(x, *proba)
	best, bestP := 0, -1.0
	for i, v := range *proba {
		if v > bestP {
			best, bestP = i, v
		}
	}
	return best, bestP
}

// PredictBatchInto evaluates n = len(rows)/stride flows in one call: row r's
// feature vector is rows[r*stride : r*stride+stride], and its averaged class
// distribution lands in the returned buffer at [r*NumClasses() :
// (r+1)*NumClasses()]. Trees are the outer loop, so each tree's packed nodes
// stay cache-resident while every row traverses them — the batch-over-arena
// shape that makes one call classify a whole ingest batch. Each row's
// accumulation still happens in tree order, so per-row results are
// byte-identical to PredictProbaInto. out is reused via its capacity.
// Zero-allocation with a warm buffer, pinned by TestCompiledForestZeroAlloc.
//
//vp:hotpath
func (cf *CompiledForest) PredictBatchInto(rows []float64, stride int, out []float64) []float64 {
	n := 0
	if stride > 0 {
		n = len(rows) / stride
	}
	need := n * cf.classes
	if cap(out) < need {
		out = make([]float64, need) //vp:allocok cold first-call growth; steady state reuses out
	} else {
		out = out[:need]
		clear(out)
	}
	nodes := cf.nodes
	classes := cf.classes
	roots := cf.roots
	leafRow := cf.leafRow
	rowOff := cf.rowOff
	probaIdx := cf.probaIdx
	probaVal := cf.probaVal
	evalRoots := cf.evalRoots
	evalDepths := cf.evalDepths
	pos := cf.pos
	// Each row descends a whole chunk of trees in interleaved lanes: a
	// single walk is a serial chain of data-dependent node loads (each
	// level's address depends on the previous), so one chain cannot go
	// faster than one memory latency per level. Dozens of trees descending
	// together give the CPU that many independent chains to overlap, while
	// every chain reads the same feature row, which stays L1-hot for the
	// whole forest. The inner loop carries no leaf-arrival test — a lane
	// that bottoms out early parks on its leaf's self-loop, so there is no
	// unpredictable branch exactly where walks diverge. Instead, trees walk
	// in the compile-time depth-sorted order (evalOrder): the lanes finished
	// by step d are always a prefix of the chunk, and advancing lo excludes
	// them, so no step is spent spinning a finished tree on its self-loop.
	// The accumulate pass reads leaves back in original tree order through
	// pos, so per-row results stay byte-identical to PredictProbaInto.
	if len(nodes) == 0 {
		return out
	}
	mask := len(nodes) - 1 // power-of-two padding: masking proves bounds
	var cur [batchChunk]int32
	for r := 0; r < n; r++ {
		x := rows[r*stride : r*stride+stride]
		acc := out[r*classes : (r+1)*classes]
		for start := 0; start < len(roots); start += batchChunk {
			cn := min(batchChunk, len(roots)-start)
			gd := evalDepths[start : start+cn]
			cs := cur[:cn]
			copy(cs, evalRoots[start:start+cn])
			// Eight lanes per group live in registers for the whole
			// descent — no per-level scratch traffic. The group runs to
			// its deepest member's depth (sorting keeps groupmates
			// similar, so the padding is small) with no leaf-arrival
			// test: a lane that bottoms out early parks on its leaf's
			// self-loop, since every x <= NaN is false.
			g := 0
			for ; g+8 <= len(cs); g += 8 {
				maxd := gd[g+7] // sorted: the group max is the last lane's depth
				c0, c1, c2, c3 := cs[g], cs[g+1], cs[g+2], cs[g+3]
				c4, c5, c6, c7 := cs[g+4], cs[g+5], cs[g+6], cs[g+7]
				for d := int32(0); d < maxd; d++ {
					nd := &nodes[int(c0)&mask]
					next := nd.right
					if x[nd.feat] <= nd.thresh {
						next = c0 + 1 // left child: next record in preorder
					}
					c0 = next
					nd = &nodes[int(c1)&mask]
					next = nd.right
					if x[nd.feat] <= nd.thresh {
						next = c1 + 1
					}
					c1 = next
					nd = &nodes[int(c2)&mask]
					next = nd.right
					if x[nd.feat] <= nd.thresh {
						next = c2 + 1
					}
					c2 = next
					nd = &nodes[int(c3)&mask]
					next = nd.right
					if x[nd.feat] <= nd.thresh {
						next = c3 + 1
					}
					c3 = next
					nd = &nodes[int(c4)&mask]
					next = nd.right
					if x[nd.feat] <= nd.thresh {
						next = c4 + 1
					}
					c4 = next
					nd = &nodes[int(c5)&mask]
					next = nd.right
					if x[nd.feat] <= nd.thresh {
						next = c5 + 1
					}
					c5 = next
					nd = &nodes[int(c6)&mask]
					next = nd.right
					if x[nd.feat] <= nd.thresh {
						next = c6 + 1
					}
					c6 = next
					nd = &nodes[int(c7)&mask]
					next = nd.right
					if x[nd.feat] <= nd.thresh {
						next = c7 + 1
					}
					c7 = next
				}
				cs[g], cs[g+1], cs[g+2], cs[g+3] = c0, c1, c2, c3
				cs[g+4], cs[g+5], cs[g+6], cs[g+7] = c4, c5, c6, c7
			}
			for ; g < len(cs); g++ { // remainder lanes walk solo
				cs[g] = cf.leafOf(nodes, cs[g], x)
			}
			for _, t := range pos[start : start+cn] {
				row := leafRow[cur[t]]
				for k := rowOff[row]; k < rowOff[row+1]; k++ {
					acc[probaIdx[k]] += probaVal[k]
				}
			}
		}
	}
	for i := range out {
		out[i] /= float64(cf.trees)
	}
	return out
}
