package ml

import (
	"math/rand/v2"
	"testing"
)

func TestPredictIntoMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var x [][]float64
	var labels []string
	names := []string{"a", "b", "c"}
	for i := 0; i < 240; i++ {
		c := i % 3
		row := make([]float64, 6)
		for j := range row {
			row[j] = float64(c)*3 + rng.Float64()
		}
		x = append(x, row)
		labels = append(labels, names[c])
	}
	d, err := NewDataset(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	f := &RandomForest{Config: ForestConfig{NumTrees: 9, MaxDepth: 6, Seed: 3}}
	f.Fit(d)

	var proba []float64
	for _, row := range d.X {
		wantC, wantP := Predict(f, row)
		gotC, gotP := f.PredictInto(row, &proba)
		if wantC != gotC || wantP != gotP {
			t.Fatalf("PredictInto (%d, %v) != Predict (%d, %v)", gotC, gotP, wantC, wantP)
		}
		wantProba := f.PredictProba(row)
		got := f.PredictProbaInto(row, proba)
		for i := range wantProba {
			if wantProba[i] != got[i] {
				t.Fatalf("proba[%d]: %v != %v", i, got[i], wantProba[i])
			}
		}
	}

	// The scratch path must be allocation-free once warm.
	allocs := testing.AllocsPerRun(100, func() {
		f.PredictInto(d.X[0], &proba)
	})
	if allocs != 0 {
		t.Errorf("PredictInto allocates %.1f per call, want 0", allocs)
	}
}
