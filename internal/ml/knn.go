package ml

import (
	"math"
	"sort"
)

// KNNConfig are the neighbour-classifier hyperparameters of §4.3.1.
type KNNConfig struct {
	K int // number of neighbours, default 5
	// DistanceWeight weights votes by inverse distance instead of uniformly.
	DistanceWeight bool
}

// KNN is a k-nearest-neighbours classifier with per-feature standardization
// (z-scores), which Euclidean distance requires on mixed-scale handshake
// attributes.
type KNN struct {
	Config KNNConfig

	x       [][]float64
	y       []int
	classes int
	mean    []float64
	std     []float64
}

// Fit memorizes the standardized training set.
func (k *KNN) Fit(d *Dataset) {
	n, m := d.Len(), d.NumFeatures()
	k.classes = len(d.Classes)
	k.mean = make([]float64, m)
	k.std = make([]float64, m)
	for _, row := range d.X {
		for j, v := range row {
			k.mean[j] += v
		}
	}
	for j := range k.mean {
		k.mean[j] /= float64(n)
	}
	for _, row := range d.X {
		for j, v := range row {
			dv := v - k.mean[j]
			k.std[j] += dv * dv
		}
	}
	for j := range k.std {
		k.std[j] = math.Sqrt(k.std[j] / float64(n))
		if k.std[j] == 0 {
			k.std[j] = 1
		}
	}
	k.x = make([][]float64, n)
	for i, row := range d.X {
		k.x[i] = k.standardize(row)
	}
	k.y = d.Y
}

func (k *KNN) standardize(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - k.mean[j]) / k.std[j]
	}
	return out
}

// PredictProba votes among the k nearest training samples.
func (k *KNN) PredictProba(x []float64) []float64 {
	kk := k.Config.K
	if kk <= 0 {
		kk = 5
	}
	if kk > len(k.x) {
		kk = len(k.x)
	}
	q := k.standardize(x)
	type nb struct {
		dist float64
		y    int
	}
	nbs := make([]nb, len(k.x))
	for i, row := range k.x {
		var d2 float64
		for j := range row {
			dv := row[j] - q[j]
			d2 += dv * dv
		}
		nbs[i] = nb{d2, k.y[i]}
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].dist < nbs[j].dist })

	proba := make([]float64, k.classes)
	var total float64
	for i := 0; i < kk; i++ {
		w := 1.0
		if k.Config.DistanceWeight {
			w = 1.0 / (math.Sqrt(nbs[i].dist) + 1e-9)
		}
		proba[nbs[i].y] += w
		total += w
	}
	for i := range proba {
		proba[i] /= total
	}
	return proba
}
