// Package ml implements the machine-learning stack of the paper's §4.3 from
// scratch on the standard library: CART decision trees and random forests
// (the deployed model), k-nearest-neighbours and a multilayer perceptron
// (the compared baselines), stratified k-fold cross-validation, confusion
// matrices, and the normalized information-gain attribute ranking of §4.2.2.
package ml

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Dataset is a labeled design matrix. Rows of X are feature vectors; Y holds
// class indices into Classes.
type Dataset struct {
	X       [][]float64
	Y       []int
	Classes []string
}

// NewDataset builds a dataset from string labels, assigning class indices in
// first-seen order.
func NewDataset(x [][]float64, labels []string) (*Dataset, error) {
	if len(x) != len(labels) {
		return nil, fmt.Errorf("ml: %d rows but %d labels", len(x), len(labels))
	}
	idx := map[string]int{}
	d := &Dataset{X: x, Y: make([]int, len(labels))}
	for i, l := range labels {
		ci, ok := idx[l]
		if !ok {
			ci = len(d.Classes)
			idx[l] = ci
			d.Classes = append(d.Classes, l)
		}
		d.Y[i] = ci
	}
	return d, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature-vector width (0 for an empty dataset).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Subset returns a view with the given row indices (shared backing vectors).
func (d *Dataset) Subset(rows []int) *Dataset {
	x := make([][]float64, len(rows))
	y := make([]int, len(rows))
	for i, r := range rows {
		x[i] = d.X[r]
		y[i] = d.Y[r]
	}
	return &Dataset{X: x, Y: y, Classes: d.Classes}
}

// SelectColumns returns a copy restricted to the given feature columns.
func (d *Dataset) SelectColumns(cols []int) *Dataset {
	x := make([][]float64, len(d.X))
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for j, c := range cols {
			nr[j] = row[c]
		}
		x[i] = nr
	}
	return &Dataset{X: x, Y: d.Y, Classes: d.Classes}
}

// Relabel returns a dataset with classes remapped through fn (e.g. composite
// platform labels down to device-type or software-agent labels).
func (d *Dataset) Relabel(fn func(string) string) *Dataset {
	labels := make([]string, len(d.Y))
	for i, y := range d.Y {
		labels[i] = fn(d.Classes[y])
	}
	nd, _ := NewDataset(d.X, labels)
	return nd
}

// Classifier is the common interface of the three model families.
type Classifier interface {
	Fit(d *Dataset)
	// PredictProba returns per-class probabilities for one feature vector,
	// aligned with the training dataset's Classes.
	PredictProba(x []float64) []float64
}

// Predict returns the argmax class index and its probability.
func Predict(c Classifier, x []float64) (int, float64) {
	p := c.PredictProba(x)
	best, bestP := 0, -1.0
	for i, v := range p {
		if v > bestP {
			best, bestP = i, v
		}
	}
	return best, bestP
}

// StratifiedKFold splits sample indices into k folds preserving class
// balance. The returned folds partition [0, n).
func StratifiedKFold(d *Dataset, k int, rng *rand.Rand) [][]int {
	byClass := map[int][]int{}
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	// Iterate classes in index order: ranging over the map would consume
	// the rng in per-process-random order and make fold composition (and
	// thus cross-validated accuracies) nondeterministic across runs.
	classes := make([]int, 0, len(byClass))
	for y := range byClass {
		classes = append(classes, y)
	}
	sort.Ints(classes)
	folds := make([][]int, k)
	for _, y := range classes {
		rows := byClass[y]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		for i, r := range rows {
			folds[i%k] = append(folds[i%k], r)
		}
	}
	return folds
}

// TrainTestFolds converts folds into (train, test) index pairs.
func TrainTestFolds(folds [][]int, n int) (trains, tests [][]int) {
	for fi := range folds {
		inTest := make([]bool, n)
		for _, r := range folds[fi] {
			inTest[r] = true
		}
		var train []int
		for i := 0; i < n; i++ {
			if !inTest[i] {
				train = append(train, i)
			}
		}
		trains = append(trains, train)
		tests = append(tests, folds[fi])
	}
	return trains, tests
}
