package ml

import (
	"math/rand/v2"
	"testing"
)

// compiledFixture trains a small forest plus its compiled form over a
// 3-class synthetic dataset.
func compiledFixture(t testing.TB) (*RandomForest, *CompiledForest, *Dataset) {
	t.Helper()
	rng := rand.New(rand.NewPCG(5, 7))
	var x [][]float64
	var labels []string
	names := []string{"a", "b", "c"}
	for i := 0; i < 300; i++ {
		c := i % 3
		row := make([]float64, 8)
		for j := range row {
			row[j] = float64(c)*2 + rng.Float64()*3
		}
		x = append(x, row)
		labels = append(labels, names[c])
	}
	d, err := NewDataset(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	f := &RandomForest{Config: ForestConfig{NumTrees: 11, MaxDepth: 7, Seed: 9}}
	f.Fit(d)
	cf, err := CompileForest(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, cf, d
}

// TestCompiledForestMatchesReference pins that the flat-array evaluation is
// byte-identical to the pointer walk: same probability vectors, same argmax,
// for both the per-row and the batched entry points.
func TestCompiledForestMatchesReference(t *testing.T) {
	f, cf, d := compiledFixture(t)
	if cf.NumTrees() != f.NumTrees() || cf.NumClasses() != f.NumClasses() {
		t.Fatalf("compiled shape (%d trees, %d classes) != reference (%d, %d)",
			cf.NumTrees(), cf.NumClasses(), f.NumTrees(), f.NumClasses())
	}

	var refP, cP []float64
	for ri, row := range d.X {
		refP = f.PredictProbaInto(row, refP)
		cP = cf.PredictProbaInto(row, cP)
		if len(refP) != len(cP) {
			t.Fatalf("row %d: proba widths differ: %d vs %d", ri, len(refP), len(cP))
		}
		for i := range refP {
			if refP[i] != cP[i] {
				t.Fatalf("row %d class %d: compiled %v != reference %v", ri, i, cP[i], refP[i])
			}
		}
		wantC, wantConf := f.PredictInto(row, &refP)
		gotC, gotConf := cf.PredictInto(row, &cP)
		if wantC != gotC || wantConf != gotConf {
			t.Fatalf("row %d: compiled argmax (%d, %v) != reference (%d, %v)",
				ri, gotC, gotConf, wantC, wantConf)
		}
	}

	// Batched evaluation over the whole dataset packed into one matrix must
	// reproduce the per-row results exactly.
	stride := len(d.X[0])
	rows := make([]float64, 0, len(d.X)*stride)
	for _, row := range d.X {
		rows = append(rows, row...)
	}
	out := cf.PredictBatchInto(rows, stride, nil)
	w := cf.NumClasses()
	if len(out) != len(d.X)*w {
		t.Fatalf("batch output has %d values, want %d", len(out), len(d.X)*w)
	}
	for ri, row := range d.X {
		refP = f.PredictProbaInto(row, refP)
		got := out[ri*w : (ri+1)*w]
		for i := range refP {
			if refP[i] != got[i] {
				t.Fatalf("batch row %d class %d: %v != %v", ri, i, got[i], refP[i])
			}
		}
	}
}

// TestCompiledForestSurvivesGobRoundTrip pins that compiling a deserialized
// forest (the vptrain -> registry -> vpserve path) yields the same
// predictions as compiling the original.
func TestCompiledForestSurvivesGobRoundTrip(t *testing.T) {
	f, cf, d := compiledFixture(t)
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &RandomForest{}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.NumClasses() != f.NumClasses() {
		t.Fatalf("round-trip lost the class count: %d != %d", restored.NumClasses(), f.NumClasses())
	}
	rcf, err := CompileForest(restored)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []float64
	for ri, row := range d.X {
		a = cf.PredictProbaInto(row, a)
		b = rcf.PredictProbaInto(row, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d class %d: restored-compiled %v != compiled %v", ri, i, b[i], a[i])
			}
		}
	}
}

// TestCompileForestErrors pins the two refusal modes: an empty ensemble and
// a hand-assembled one with mixed leaf widths must not compile (callers fall
// back to the pointer walk).
func TestCompileForestErrors(t *testing.T) {
	if _, err := CompileForest(nil); err == nil {
		t.Error("CompileForest(nil) did not fail")
	}
	if _, err := CompileForest(&RandomForest{}); err == nil {
		t.Error("CompileForest of an untrained forest did not fail")
	}
	ragged := &RandomForest{trees: []*DecisionTree{
		{root: &node{proba: []float64{1}}, classes: 1},
		{root: &node{proba: []float64{0.5, 0.5}}, classes: 2},
	}, classes: 2}
	if _, err := CompileForest(ragged); err == nil {
		t.Error("CompileForest of a ragged forest did not fail")
	}
}

// TestCompiledForestFootprint sanity-checks the ops-facing size accessors.
func TestCompiledForestFootprint(t *testing.T) {
	f, cf, _ := compiledFixture(t)
	if cf.NumNodes() < f.NumTrees() {
		t.Errorf("NumNodes() = %d, want at least one node per tree (%d)", cf.NumNodes(), f.NumTrees())
	}
	if cf.Bytes() <= 0 {
		t.Errorf("Bytes() = %d, want > 0", cf.Bytes())
	}
	// Every node costs at least its feat/left/right entries.
	if min := int64(cf.NumNodes()) * 12; cf.Bytes() < min {
		t.Errorf("Bytes() = %d, want >= %d for %d nodes", cf.Bytes(), min, cf.NumNodes())
	}
}

// TestCompiledForestZeroAlloc pins the serving budget: warm-scratch
// prediction — per-row and batched — allocates nothing.
func TestCompiledForestZeroAlloc(t *testing.T) {
	_, cf, d := compiledFixture(t)
	var proba []float64
	cf.PredictInto(d.X[0], &proba)
	allocs := testing.AllocsPerRun(100, func() {
		cf.PredictInto(d.X[0], &proba)
	})
	if allocs != 0 {
		t.Errorf("PredictInto allocates %.1f per call, want 0", allocs)
	}

	stride := len(d.X[0])
	rows := make([]float64, 0, 32*stride)
	for _, row := range d.X[:32] {
		rows = append(rows, row...)
	}
	out := cf.PredictBatchInto(rows, stride, nil)
	allocs = testing.AllocsPerRun(100, func() {
		out = cf.PredictBatchInto(rows, stride, out)
	})
	if allocs != 0 {
		t.Errorf("PredictBatchInto allocates %.1f per call, want 0", allocs)
	}
}

// TestEmptyForestPredicts pins the satellite fix: an untrained forest
// reports an explicit empty distribution and a zero-value prediction instead
// of dividing by a zero tree count.
func TestEmptyForestPredicts(t *testing.T) {
	f := &RandomForest{}
	x := []float64{1, 2, 3}
	if p := f.PredictProba(x); len(p) != 0 {
		t.Errorf("PredictProba on an empty forest = %v, want empty", p)
	}
	buf := make([]float64, 4)
	if p := f.PredictProbaInto(x, buf); len(p) != 0 {
		t.Errorf("PredictProbaInto on an empty forest = %v, want empty", p)
	}
	var proba []float64
	ci, conf := f.PredictInto(x, &proba)
	if ci != 0 || conf != 0 {
		t.Errorf("PredictInto on an empty forest = (%d, %v), want (0, 0)", ci, conf)
	}
}

// TestPredictProbaIntoSizesOnce pins that the output buffer is sized from
// the fitted class count up front: an undersized buffer is replaced by one
// of exactly NumClasses, and an oversized one is reused in place.
func TestPredictProbaIntoSizesOnce(t *testing.T) {
	f, _, d := compiledFixture(t)
	out := f.PredictProbaInto(d.X[0], nil)
	if len(out) != f.NumClasses() {
		t.Fatalf("grown buffer has len %d, want %d", len(out), f.NumClasses())
	}
	big := make([]float64, 16)
	reused := f.PredictProbaInto(d.X[0], big)
	if &reused[0] != &big[0] {
		t.Error("an oversized buffer was not reused in place")
	}
	if len(reused) != f.NumClasses() {
		t.Errorf("reused buffer has len %d, want %d", len(reused), f.NumClasses())
	}
}

// BenchmarkForestInference compares the serving inference forms on a
// production-shaped ensemble (the paper's depth-20 forests over a wide
// attribute vector, §4.3.1) — large enough that the pointer-walk's
// heap-scattered nodes fall out of cache, which is the regime the compiled
// flat layout exists for. The tests above pin byte-identity on a smaller
// fixture; this fixture is about ns/flow.
func BenchmarkForestInference(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 13))
	const (
		nFeat    = 60
		nClasses = 12
		nRows    = 3000
	)
	var x [][]float64
	var labels []string
	for i := 0; i < nRows; i++ {
		c := i % nClasses
		row := make([]float64, nFeat)
		for j := range row {
			row[j] = float64((c*j)%7) + rng.Float64()*4
		}
		x = append(x, row)
		labels = append(labels, string(rune('a'+c)))
	}
	d, err := NewDataset(x, labels)
	if err != nil {
		b.Fatal(err)
	}
	f := &RandomForest{Config: ForestConfig{NumTrees: 40, MaxDepth: 20, MaxFeatures: 34, Seed: 1}}
	f.Fit(d)
	cf, err := CompileForest(f)
	if err != nil {
		b.Fatal(err)
	}
	// All variants classify the same 64-flow working set per iteration —
	// distinct rows, so no variant gets an unrealistically learned branch
	// pattern — and report comparable ns/flow.
	const batch = 64
	work := d.X[:batch]
	stride := nFeat
	rows := make([]float64, 0, batch*stride)
	for _, row := range work {
		rows = append(rows, row...)
	}
	var proba []float64

	b.Run("pointer-walk", func(b *testing.B) {
		f.PredictInto(work[0], &proba)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, row := range work {
				f.PredictInto(row, &proba)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/flow")
	})
	b.Run("compiled", func(b *testing.B) {
		cf.PredictInto(work[0], &proba)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, row := range work {
				cf.PredictInto(row, &proba)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/flow")
	})
	b.Run("compiled-batch", func(b *testing.B) {
		out := cf.PredictBatchInto(rows, stride, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = cf.PredictBatchInto(rows, stride, out)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/flow")
	})
}
