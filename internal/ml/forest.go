package ml

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
)

// ForestConfig are the random-forest hyperparameters of §4.3.1: number of
// trees, maximum depth and the number of candidate attributes per split.
type ForestConfig struct {
	NumTrees       int
	MaxDepth       int
	MaxFeatures    int // 0 = sqrt(total features)
	MinSamplesLeaf int
	Seed           uint64
}

// RandomForest is a bagged ensemble of CART trees; PredictProba averages the
// member leaf distributions, giving the confidence score used by the
// pipeline's 80% selector.
type RandomForest struct {
	Config ForestConfig
	trees  []*DecisionTree
	// classes is the fitted class-universe size, set by Fit and
	// UnmarshalBinary, so prediction buffers are sized once instead of
	// being re-grown per member tree.
	classes int
}

// Fit trains the ensemble on bootstrap samples of d. Training is
// parallelized across trees.
func (f *RandomForest) Fit(d *Dataset) {
	cfg := f.Config
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 50
	}
	maxFeat := cfg.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = int(math.Sqrt(float64(d.NumFeatures())))
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	f.trees = make([]*DecisionTree, cfg.NumTrees)
	f.classes = len(d.Classes)

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.NumTrees {
		workers = cfg.NumTrees
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				rng := rand.New(rand.NewPCG(cfg.Seed, uint64(ti)*0x9e3779b97f4a7c15+1))
				rows := make([]int, d.Len())
				for i := range rows {
					rows[i] = rng.IntN(d.Len())
				}
				tree := &DecisionTree{Config: TreeConfig{
					MaxDepth:       cfg.MaxDepth,
					MinSamplesLeaf: cfg.MinSamplesLeaf,
					MaxFeatures:    maxFeat,
					Seed:           cfg.Seed ^ uint64(ti),
				}}
				tree.FitRows(d, rows)
				f.trees[ti] = tree
			}
		}()
	}
	for ti := 0; ti < cfg.NumTrees; ti++ {
		jobs <- ti
	}
	close(jobs)
	wg.Wait()
}

// PredictProba averages member probabilities.
func (f *RandomForest) PredictProba(x []float64) []float64 {
	return f.PredictProbaInto(x, nil)
}

// PredictProbaInto is PredictProba accumulating into out's capacity, so a
// serving loop can reuse one probability buffer per worker and predict
// without allocating. The returned slice is the (possibly grown) buffer;
// the float operations are performed in the same order as PredictProba, so
// the two are bitwise identical.
//
//vp:hotpath
func (f *RandomForest) PredictProbaInto(x, out []float64) []float64 {
	if len(f.trees) == 0 {
		// No members: an explicit empty distribution instead of reaching the
		// division with a zero tree count.
		return out[:0]
	}
	// Size the output from the fitted class count once, instead of re-growing
	// it leaf by leaf for every member tree.
	if cap(out) < f.classes {
		out = make([]float64, f.classes) //vp:allocok cold first-call growth; steady state reuses out
	} else {
		out = out[:f.classes]
		clear(out)
	}
	for _, t := range f.trees {
		p := t.PredictProba(x)
		for i, v := range p {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}

// PredictInto returns the argmax class index and its probability, reusing
// *proba as the probability scratch buffer (it is grown in place as
// needed). Equivalent to Predict(f, x) with zero steady-state allocations.
//
//vp:hotpath
func (f *RandomForest) PredictInto(x []float64, proba *[]float64) (int, float64) {
	*proba = f.PredictProbaInto(x, *proba)
	if len(*proba) == 0 {
		return 0, 0 // untrained forest: explicit zero-value prediction
	}
	best, bestP := 0, -1.0
	for i, v := range *proba {
		if v > bestP {
			best, bestP = i, v
		}
	}
	return best, bestP
}

// NumTrees reports the trained ensemble size.
func (f *RandomForest) NumTrees() int { return len(f.trees) }

// NumClasses reports the fitted class-universe size (the width of every
// probability vector the forest produces).
func (f *RandomForest) NumClasses() int { return f.classes }
