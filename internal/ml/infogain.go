package ml

import (
	"math"
	"sort"
)

// InformationGain computes the normalized mutual information between each
// feature column and the class labels, the attribute-importance metric of
// §4.2.2: I(X;Y) = H(X) + H(Y) − H(X,Y), normalized by H(Y) so a perfectly
// predictive attribute scores 1 and an irrelevant one scores 0.
//
// Columns with many distinct values are discretized into at most maxBins
// equal-frequency bins first (values here are mostly small discrete codes,
// so binning rarely triggers).
func InformationGain(d *Dataset, maxBins int) []float64 {
	if maxBins <= 0 {
		maxBins = 64
	}
	n := d.Len()
	hy := labelEntropy(d.Y, len(d.Classes))
	out := make([]float64, d.NumFeatures())
	if n == 0 || hy == 0 {
		return out
	}
	col := make([]float64, n)
	for j := range out {
		for i := range d.X {
			col[i] = d.X[i][j]
		}
		binned := discretize(col, maxBins)
		out[j] = mutualInformation(binned, d.Y, len(d.Classes)) / hy
		if out[j] < 0 {
			out[j] = 0
		}
		if out[j] > 1 {
			out[j] = 1
		}
	}
	return out
}

// AttributeImportance aggregates per-column gains back to attributes using
// the maximum over the attribute's expanded columns (a list attribute is as
// informative as its best position).
func AttributeImportance(gains []float64, attrColumns map[string][]int) map[string]float64 {
	out := make(map[string]float64, len(attrColumns))
	for label, cols := range attrColumns {
		best := 0.0
		for _, c := range cols {
			if c < len(gains) && gains[c] > best {
				best = gains[c]
			}
		}
		out[label] = best
	}
	return out
}

func labelEntropy(y []int, classes int) float64 {
	counts := make([]int, classes)
	for _, v := range y {
		counts[v]++
	}
	var h float64
	n := float64(len(y))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// discretize maps column values to integer bin ids. If the column has at
// most maxBins distinct values each value is its own bin; otherwise
// equal-frequency quantile bins are used.
func discretize(col []float64, maxBins int) []int {
	uniq := map[float64]int{}
	for _, v := range col {
		if _, ok := uniq[v]; !ok {
			uniq[v] = len(uniq)
			if len(uniq) > maxBins {
				break
			}
		}
	}
	out := make([]int, len(col))
	if len(uniq) <= maxBins {
		for i, v := range col {
			out[i] = uniq[v]
		}
		return out
	}
	sorted := append([]float64{}, col...)
	sort.Float64s(sorted)
	cuts := make([]float64, maxBins-1)
	for b := 1; b < maxBins; b++ {
		cuts[b-1] = sorted[len(sorted)*b/maxBins]
	}
	for i, v := range col {
		out[i] = sort.SearchFloat64s(cuts, v)
	}
	return out
}

func mutualInformation(x []int, y []int, classes int) float64 {
	n := float64(len(x))
	joint := map[[2]int]int{}
	xCounts := map[int]int{}
	yCounts := make([]int, classes)
	for i := range x {
		joint[[2]int{x[i], y[i]}]++
		xCounts[x[i]]++
		yCounts[y[i]]++
	}
	var mi float64
	for k, c := range joint {
		pxy := float64(c) / n
		px := float64(xCounts[k[0]]) / n
		py := float64(yCounts[k[1]]) / n
		mi += pxy * math.Log2(pxy/(px*py))
	}
	return mi
}
