package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// flatNode is the serialized form of a tree node; Left/Right index into the
// flattened node array, -1 for leaves.
type flatNode struct {
	Feature     int
	Threshold   float64
	Left, Right int
	Proba       []float64
}

type flatTree struct {
	Config TreeConfig
	Nodes  []flatNode
}

type flatForest struct {
	Config ForestConfig
	Trees  []flatTree
}

func flatten(n *node, nodes *[]flatNode) int {
	idx := len(*nodes)
	*nodes = append(*nodes, flatNode{Left: -1, Right: -1})
	if n.isLeaf() {
		(*nodes)[idx].Proba = n.proba
		return idx
	}
	(*nodes)[idx].Feature = n.feature
	(*nodes)[idx].Threshold = n.threshold
	l := flatten(n.left, nodes)
	r := flatten(n.right, nodes)
	(*nodes)[idx].Left = l
	(*nodes)[idx].Right = r
	return idx
}

func unflatten(nodes []flatNode, idx int) (*node, error) {
	if idx < 0 || idx >= len(nodes) {
		return nil, fmt.Errorf("ml: node index %d out of range", idx)
	}
	fn := nodes[idx]
	if fn.Left < 0 {
		return &node{proba: fn.Proba}, nil
	}
	left, err := unflatten(nodes, fn.Left)
	if err != nil {
		return nil, err
	}
	right, err := unflatten(nodes, fn.Right)
	if err != nil {
		return nil, err
	}
	return &node{feature: fn.Feature, threshold: fn.Threshold, left: left, right: right}, nil
}

// MarshalBinary serializes the trained forest with encoding/gob.
func (f *RandomForest) MarshalBinary() ([]byte, error) {
	ff := flatForest{Config: f.Config}
	for _, t := range f.trees {
		ft := flatTree{Config: t.Config}
		flatten(t.root, &ft.Nodes)
		ff.Trees = append(ff.Trees, ft)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ff); err != nil {
		return nil, fmt.Errorf("ml: encoding forest: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a forest serialized by MarshalBinary.
func (f *RandomForest) UnmarshalBinary(data []byte) error {
	var ff flatForest
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ff); err != nil {
		return fmt.Errorf("ml: decoding forest: %w", err)
	}
	f.Config = ff.Config
	f.trees = nil
	f.classes = 0
	for _, ft := range ff.Trees {
		root, err := unflatten(ft.Nodes, 0)
		if err != nil {
			return err
		}
		nClasses := 0
		if len(ft.Nodes) > 0 {
			for _, n := range ft.Nodes {
				if len(n.Proba) > nClasses {
					nClasses = len(n.Proba)
				}
			}
		}
		f.trees = append(f.trees, &DecisionTree{Config: ft.Config, root: root, classes: nClasses})
		if nClasses > f.classes {
			f.classes = nClasses
		}
	}
	return nil
}
