package ml

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
)

// ConfusionMatrix accumulates per-class prediction counts; M[i][j] counts
// samples of true class i predicted as class j (Fig 6(b–d)).
type ConfusionMatrix struct {
	Classes []string
	M       [][]int
}

// NewConfusionMatrix returns an empty matrix over classes.
func NewConfusionMatrix(classes []string) *ConfusionMatrix {
	m := make([][]int, len(classes))
	for i := range m {
		m[i] = make([]int, len(classes))
	}
	return &ConfusionMatrix{Classes: classes, M: m}
}

// Add records one prediction.
func (c *ConfusionMatrix) Add(trueClass, predClass int) { c.M[trueClass][predClass]++ }

// Accuracy is the trace over the total.
func (c *ConfusionMatrix) Accuracy() float64 {
	var correct, total int
	for i := range c.M {
		for j, v := range c.M[i] {
			total += v
			if i == j {
				correct += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Recall returns the per-class recall (the diagonal of the row-normalized
// matrix the paper plots).
func (c *ConfusionMatrix) Recall(class int) float64 {
	var rowTotal int
	for _, v := range c.M[class] {
		rowTotal += v
	}
	if rowTotal == 0 {
		return 0
	}
	return float64(c.M[class][class]) / float64(rowTotal)
}

// RowNormalized returns the matrix with rows normalized to 1.
func (c *ConfusionMatrix) RowNormalized() [][]float64 {
	out := make([][]float64, len(c.M))
	for i := range c.M {
		out[i] = make([]float64, len(c.M[i]))
		var total int
		for _, v := range c.M[i] {
			total += v
		}
		if total == 0 {
			continue
		}
		for j, v := range c.M[i] {
			out[i][j] = float64(v) / float64(total)
		}
	}
	return out
}

// String renders the row-normalized matrix compactly.
func (c *ConfusionMatrix) String() string {
	var b strings.Builder
	norm := c.RowNormalized()
	w := 0
	for _, cl := range c.Classes {
		if len(cl) > w {
			w = len(cl)
		}
	}
	for i, row := range norm {
		fmt.Fprintf(&b, "%-*s", w+1, c.Classes[i])
		for _, v := range row {
			fmt.Fprintf(&b, " %4.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// EvalResult is the outcome of one evaluation pass.
type EvalResult struct {
	Accuracy  float64
	Confusion *ConfusionMatrix
	// Confidences of correct and incorrect predictions, for Table 4.
	CorrectConf, IncorrectConf []float64
}

// MedianConfidence returns the medians of the correct and incorrect
// confidence populations (Table 4), or NaN for empty populations.
func (e *EvalResult) MedianConfidence() (correct, incorrect float64) {
	return median(e.CorrectConf), median(e.IncorrectConf)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Evaluate scores a trained classifier on test data whose class universe
// matches the training set.
func Evaluate(c Classifier, test *Dataset) *EvalResult {
	res := &EvalResult{Confusion: NewConfusionMatrix(test.Classes)}
	for i, x := range test.X {
		pred, conf := Predict(c, x)
		res.Confusion.Add(test.Y[i], pred)
		if pred == test.Y[i] {
			res.CorrectConf = append(res.CorrectConf, conf)
		} else {
			res.IncorrectConf = append(res.IncorrectConf, conf)
		}
	}
	res.Accuracy = res.Confusion.Accuracy()
	return res
}

// CrossValidate runs stratified k-fold cross-validation (10-fold in §4.3.1),
// training a fresh classifier per fold via factory, and aggregates the
// results over all folds.
func CrossValidate(factory func() Classifier, d *Dataset, k int, seed uint64) *EvalResult {
	rng := rand.New(rand.NewPCG(seed, 0xcf01d))
	folds := StratifiedKFold(d, k, rng)
	trains, tests := TrainTestFolds(folds, d.Len())
	res := &EvalResult{Confusion: NewConfusionMatrix(d.Classes)}
	for fi := range folds {
		c := factory()
		c.Fit(d.Subset(trains[fi]))
		for _, r := range tests[fi] {
			pred, conf := Predict(c, d.X[r])
			res.Confusion.Add(d.Y[r], pred)
			if pred == d.Y[r] {
				res.CorrectConf = append(res.CorrectConf, conf)
			} else {
				res.IncorrectConf = append(res.IncorrectConf, conf)
			}
		}
	}
	res.Accuracy = res.Confusion.Accuracy()
	return res
}

// EvaluateTransfer scores a classifier trained on one dataset against a test
// set that may use a different class ordering (e.g. the open-set dataset).
// Test labels absent from the training classes count as errors.
func EvaluateTransfer(c Classifier, trainClasses []string, test *Dataset) *EvalResult {
	res := &EvalResult{Confusion: NewConfusionMatrix(test.Classes)}
	trainIdx := map[string]int{}
	for i, cl := range trainClasses {
		trainIdx[cl] = i
	}
	// Map training class index -> test class index where possible.
	toTest := make([]int, len(trainClasses))
	testIdx := map[string]int{}
	for i, cl := range test.Classes {
		testIdx[cl] = i
	}
	for i, cl := range trainClasses {
		if j, ok := testIdx[cl]; ok {
			toTest[i] = j
		} else {
			toTest[i] = -1
		}
	}
	for i, x := range test.X {
		pred, conf := Predict(c, x)
		predTest := toTest[pred]
		if predTest < 0 {
			predTest = (test.Y[i] + 1) % len(test.Classes) // guaranteed wrong
		}
		res.Confusion.Add(test.Y[i], predTest)
		if predTest == test.Y[i] {
			res.CorrectConf = append(res.CorrectConf, conf)
		} else {
			res.IncorrectConf = append(res.IncorrectConf, conf)
		}
	}
	res.Accuracy = res.Confusion.Accuracy()
	return res
}
