package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

func TestNGRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewNGWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2023, 9, 1, 8, 30, 0, 250_000_000, time.UTC)
	pkts := [][]byte{{1}, {2, 3, 4}, make([]byte, 1500)}
	for i, p := range pkts {
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Minute), p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewNGReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got.Data, want) {
			t.Errorf("packet %d: %d bytes, want %d", i, len(got.Data), len(want))
		}
		wantTS := ts.Add(time.Duration(i) * time.Minute)
		if !got.Timestamp.Equal(wantTS) {
			t.Errorf("packet %d ts = %v, want %v", i, got.Timestamp, wantTS)
		}
		if got.OrigLen != len(want) {
			t.Errorf("packet %d origlen = %d", i, got.OrigLen)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestNGRejectsClassicPcap(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	_ = w.WritePacket(time.Unix(0, 0), []byte{1})
	if _, err := NewNGReader(bytes.NewReader(buf.Bytes())); err != ErrNotPcapNG {
		t.Errorf("err = %v, want ErrNotPcapNG", err)
	}
}

func TestNGSkipsUnknownBlocks(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewNGWriter(&buf, 0)
	// Inject an unknown block (e.g. name resolution, type 4) between header
	// and packet.
	le := binary.LittleEndian
	unknown := make([]byte, 16)
	le.PutUint32(unknown[0:], 0x00000004)
	le.PutUint32(unknown[4:], 16)
	le.PutUint32(unknown[12:], 16)
	buf.Write(unknown)
	_ = w.WritePacket(time.Unix(100, 0), []byte{9, 9})

	r, err := NewNGReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte{9, 9}) {
		t.Errorf("data = %v", got.Data)
	}
}

func TestNGNanosecondResolution(t *testing.T) {
	// Build an interface block advertising 10^-9 resolution and a packet
	// timestamped in nanoseconds.
	var buf bytes.Buffer
	le := binary.LittleEndian
	shb := make([]byte, 28)
	le.PutUint32(shb[0:], blockSectionHeader)
	le.PutUint32(shb[4:], 28)
	le.PutUint32(shb[8:], byteOrderMagic)
	le.PutUint16(shb[12:], 1)
	le.PutUint32(shb[24:], 28)
	buf.Write(shb)

	idb := make([]byte, 28)
	le.PutUint32(idb[0:], blockInterfaceDesc)
	le.PutUint32(idb[4:], 28)
	le.PutUint16(idb[8:], LinkTypeEthernet)
	le.PutUint32(idb[12:], 65535)
	// option: if_tsresol = 9 (10^-9)
	le.PutUint16(idb[16:], optIfTsResol)
	le.PutUint16(idb[18:], 1)
	idb[20] = 9
	le.PutUint32(idb[24:], 28)
	buf.Write(idb)

	epb := make([]byte, 36)
	le.PutUint32(epb[0:], blockEnhancedPacket)
	le.PutUint32(epb[4:], 36)
	le.PutUint32(epb[8:], 0)
	ns := uint64(1_700_000_000_123_456_789)
	le.PutUint32(epb[12:], uint32(ns>>32))
	le.PutUint32(epb[16:], uint32(ns))
	le.PutUint32(epb[20:], 2)
	le.PutUint32(epb[24:], 2)
	epb[28], epb[29] = 0xaa, 0xbb
	le.PutUint32(epb[32:], 36)
	buf.Write(epb)

	r, err := NewNGReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp.UnixNano() != int64(ns) {
		t.Errorf("ts = %d ns, want %d", got.Timestamp.UnixNano(), ns)
	}
}

func TestOpenReaderSniffsBothFormats(t *testing.T) {
	var classic bytes.Buffer
	cw, _ := NewWriter(&classic, 0)
	_ = cw.WritePacket(time.Unix(1, 0), []byte{1, 2})

	var ng bytes.Buffer
	nw, _ := NewNGWriter(&ng, 0)
	_ = nw.WritePacket(time.Unix(1, 0), []byte{3, 4})

	for name, raw := range map[string][]byte{"classic": classic.Bytes(), "ng": ng.Bytes()} {
		r, err := OpenReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pkt, err := r.Next()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pkt.Data) != 2 {
			t.Errorf("%s: data = %v", name, pkt.Data)
		}
	}
}

func TestNGTruncatedBlock(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewNGWriter(&buf, 0)
	_ = w.WritePacket(time.Unix(5, 0), []byte{1, 2, 3, 4, 5})
	raw := buf.Bytes()
	r, err := NewNGReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("err = %v, want decode error", err)
	}
}
