package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// pcapng block types (the subset needed to read Wireshark captures).
const (
	blockSectionHeader    = 0x0a0d0d0a
	blockInterfaceDesc    = 0x00000001
	blockEnhancedPacket   = 0x00000006
	blockSimplePacket     = 0x00000003
	byteOrderMagic        = 0x1a2b3c4d
	optEndOfOpt           = 0
	optIfTsResol          = 9
	defaultTsResolPower10 = 6 // microseconds
)

// ErrNotPcapNG is returned when the stream does not start with a pcapng
// section header.
var ErrNotPcapNG = errors.New("pcap: not a pcapng file")

// NGReader iterates over the packets of a pcapng (next-generation) capture,
// the default format written by modern Wireshark. Enhanced and simple packet
// blocks are returned; all other block types are skipped. Multiple sections
// and per-interface timestamp resolutions are handled.
type NGReader struct {
	r     io.Reader
	order binary.ByteOrder
	// per-interface timestamp denominator (ticks per second)
	ifaceTicks []uint64
	snapLen    uint32
}

// NewNGReader parses the section header and returns an NGReader.
func NewNGReader(r io.Reader) (*NGReader, error) {
	ng := &NGReader{r: r}
	if err := ng.readSectionHeader(); err != nil {
		return nil, err
	}
	return ng, nil
}

func (ng *NGReader) readSectionHeader() error {
	var hdr [12]byte
	if _, err := io.ReadFull(ng.r, hdr[:]); err != nil {
		return fmt.Errorf("pcap: reading pcapng header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != blockSectionHeader {
		return ErrNotPcapNG
	}
	switch {
	case binary.LittleEndian.Uint32(hdr[8:]) == byteOrderMagic:
		ng.order = binary.LittleEndian
	case binary.BigEndian.Uint32(hdr[8:]) == byteOrderMagic:
		ng.order = binary.BigEndian
	default:
		return ErrNotPcapNG
	}
	total := ng.order.Uint32(hdr[4:])
	if total < 28 || total%4 != 0 {
		return fmt.Errorf("pcap: bad section header length %d", total)
	}
	// Remaining: version (4) + section length (8) + options + trailing len.
	rest := make([]byte, total-12)
	if _, err := io.ReadFull(ng.r, rest); err != nil {
		return fmt.Errorf("pcap: section header body: %w", err)
	}
	ng.ifaceTicks = nil // new section resets interfaces
	return nil
}

// Next returns the next captured packet or io.EOF.
func (ng *NGReader) Next() (Packet, error) {
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(ng.r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return Packet{}, io.EOF
			}
			return Packet{}, err
		}
		blockType := ng.order.Uint32(hdr[0:])
		total := ng.order.Uint32(hdr[4:])
		if blockType == blockSectionHeader {
			// New section: re-read full header. We already consumed 8
			// bytes; emulate by handling inline.
			var rest [4]byte
			if _, err := io.ReadFull(ng.r, rest[:]); err != nil {
				return Packet{}, err
			}
			switch {
			case binary.LittleEndian.Uint32(rest[:]) == byteOrderMagic:
				ng.order = binary.LittleEndian
			case binary.BigEndian.Uint32(rest[:]) == byteOrderMagic:
				ng.order = binary.BigEndian
			default:
				return Packet{}, ErrNotPcapNG
			}
			total = ng.order.Uint32(hdr[4:])
			body := make([]byte, total-12)
			if _, err := io.ReadFull(ng.r, body); err != nil {
				return Packet{}, err
			}
			ng.ifaceTicks = nil
			continue
		}
		if total < 12 || total%4 != 0 || total > 1<<26 {
			return Packet{}, fmt.Errorf("pcap: bad block length %d", total)
		}
		body := make([]byte, total-12)
		if _, err := io.ReadFull(ng.r, body); err != nil {
			return Packet{}, fmt.Errorf("pcap: block body: %w", err)
		}
		var trailer [4]byte
		if _, err := io.ReadFull(ng.r, trailer[:]); err != nil {
			return Packet{}, fmt.Errorf("pcap: block trailer: %w", err)
		}
		if ng.order.Uint32(trailer[:]) != total {
			return Packet{}, fmt.Errorf("pcap: block length mismatch")
		}

		switch blockType {
		case blockInterfaceDesc:
			ng.handleInterface(body)
		case blockEnhancedPacket:
			pkt, ok, err := ng.handleEnhanced(body)
			if err != nil {
				return Packet{}, err
			}
			if ok {
				return pkt, nil
			}
		case blockSimplePacket:
			if len(body) < 4 {
				return Packet{}, fmt.Errorf("pcap: short simple packet block")
			}
			origLen := ng.order.Uint32(body[0:])
			data := body[4:]
			if uint32(len(data)) > origLen {
				data = data[:origLen]
			}
			return Packet{Data: append([]byte{}, data...), OrigLen: int(origLen)}, nil
		default:
			// skip unknown blocks (name resolution, statistics, ...)
		}
	}
}

func (ng *NGReader) handleInterface(body []byte) {
	ticks := uint64(1_000_000) // default microsecond resolution
	if len(body) >= 8 {
		// options start at offset 8 (linktype 2 + reserved 2 + snaplen 4)
		opts := body[8:]
		for len(opts) >= 4 {
			code := ng.order.Uint16(opts[0:])
			olen := int(ng.order.Uint16(opts[2:]))
			if 4+olen > len(opts) {
				break
			}
			val := opts[4 : 4+olen]
			if code == optEndOfOpt {
				break
			}
			if code == optIfTsResol && olen >= 1 {
				r := val[0]
				if r&0x80 != 0 { // power of two
					ticks = 1 << (r & 0x7f)
				} else {
					ticks = 1
					for i := byte(0); i < r; i++ {
						ticks *= 10
					}
				}
			}
			pad := (4 - olen%4) % 4
			opts = opts[4+olen+pad:]
		}
	}
	ng.ifaceTicks = append(ng.ifaceTicks, ticks)
}

func (ng *NGReader) handleEnhanced(body []byte) (Packet, bool, error) {
	if len(body) < 20 {
		return Packet{}, false, fmt.Errorf("pcap: short enhanced packet block")
	}
	ifaceID := ng.order.Uint32(body[0:])
	tsHigh := ng.order.Uint32(body[4:])
	tsLow := ng.order.Uint32(body[8:])
	capLen := ng.order.Uint32(body[12:])
	origLen := ng.order.Uint32(body[16:])
	if 20+int(capLen) > len(body) {
		return Packet{}, false, fmt.Errorf("pcap: enhanced packet capture length overflow")
	}
	ticks := uint64(1_000_000)
	if int(ifaceID) < len(ng.ifaceTicks) {
		ticks = ng.ifaceTicks[ifaceID]
	}
	raw := uint64(tsHigh)<<32 | uint64(tsLow)
	sec := raw / ticks
	frac := raw % ticks
	ns := frac * uint64(time.Second) / ticks
	return Packet{
		Timestamp: time.Unix(int64(sec), int64(ns)).UTC(),
		Data:      append([]byte{}, body[20:20+capLen]...),
		OrigLen:   int(origLen),
	}, true, nil
}

// NGWriter emits a minimal single-interface pcapng file (section header +
// Ethernet interface description, then one enhanced packet block per
// packet), with microsecond timestamps.
type NGWriter struct {
	w io.Writer
}

// NewNGWriter writes the section and interface headers.
func NewNGWriter(w io.Writer, snaplen uint32) (*NGWriter, error) {
	if snaplen == 0 {
		snaplen = 262144
	}
	le := binary.LittleEndian
	shb := make([]byte, 28)
	le.PutUint32(shb[0:], blockSectionHeader)
	le.PutUint32(shb[4:], 28)
	le.PutUint32(shb[8:], byteOrderMagic)
	le.PutUint16(shb[12:], 1) // major
	le.PutUint16(shb[14:], 0) // minor
	for i := 16; i < 24; i++ {
		shb[i] = 0xff // unknown section length
	}
	le.PutUint32(shb[24:], 28)
	idb := make([]byte, 20)
	le.PutUint32(idb[0:], blockInterfaceDesc)
	le.PutUint32(idb[4:], 20)
	le.PutUint16(idb[8:], LinkTypeEthernet)
	le.PutUint32(idb[12:], snaplen)
	le.PutUint32(idb[16:], 20)
	if _, err := w.Write(shb); err != nil {
		return nil, err
	}
	if _, err := w.Write(idb); err != nil {
		return nil, err
	}
	return &NGWriter{w: w}, nil
}

// WritePacket appends one enhanced packet block.
func (nw *NGWriter) WritePacket(ts time.Time, data []byte) error {
	le := binary.LittleEndian
	pad := (4 - len(data)%4) % 4
	total := uint32(32 + len(data) + pad)
	hdr := make([]byte, 28)
	le.PutUint32(hdr[0:], blockEnhancedPacket)
	le.PutUint32(hdr[4:], total)
	le.PutUint32(hdr[8:], 0) // interface 0
	usec := uint64(ts.UnixMicro())
	le.PutUint32(hdr[12:], uint32(usec>>32))
	le.PutUint32(hdr[16:], uint32(usec))
	le.PutUint32(hdr[20:], uint32(len(data)))
	le.PutUint32(hdr[24:], uint32(len(data)))
	if _, err := nw.w.Write(hdr); err != nil {
		return err
	}
	if _, err := nw.w.Write(data); err != nil {
		return err
	}
	if pad > 0 {
		if _, err := nw.w.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	var trailer [4]byte
	le.PutUint32(trailer[:], total)
	_, err := nw.w.Write(trailer[:])
	return err
}

// OpenReader sniffs the magic bytes and returns a unified packet iterator
// for either classic libpcap or pcapng input.
func OpenReader(r io.ReadSeeker) (interface{ Next() (Packet, error) }, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(magic[:]) == blockSectionHeader {
		return NewNGReader(r)
	}
	return NewReader(r)
}
