package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2023, 7, 7, 12, 0, 0, 123456000, time.UTC)
	pkts := [][]byte{{1, 2, 3}, {4, 5, 6, 7, 8}, make([]byte, 1500)}
	for i, p := range pkts {
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Second), p); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got.Data, want) {
			t.Errorf("packet %d data mismatch (%d vs %d bytes)", i, len(got.Data), len(want))
		}
		if got.OrigLen != len(want) {
			t.Errorf("packet %d OrigLen = %d", i, got.OrigLen)
		}
		wantTS := ts.Add(time.Duration(i) * time.Second)
		if !got.Timestamp.Equal(wantTS) {
			t.Errorf("packet %d ts = %v, want %v", i, got.Timestamp, wantTS)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last packet err = %v, want EOF", err)
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	if err := w.WritePacket(time.Unix(0, 0), data); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 64 || got.OrigLen != 200 {
		t.Errorf("capLen=%d origLen=%d, want 64/200", len(got.Data), got.OrigLen)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("expected error for short header")
	}
}

func TestBigEndianAndNanos(t *testing.T) {
	// Hand-craft a big-endian nanosecond file with one 2-byte packet.
	var buf bytes.Buffer
	be := binary.BigEndian
	hdr := make([]byte, 24)
	be.PutUint32(hdr[0:], magicNanos)
	be.PutUint16(hdr[4:], 2)
	be.PutUint16(hdr[6:], 4)
	be.PutUint32(hdr[16:], 65535)
	be.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	be.PutUint32(rec[0:], 1700000000)
	be.PutUint32(rec[4:], 42) // 42ns
	be.PutUint32(rec[8:], 2)
	be.PutUint32(rec[12:], 2)
	buf.Write(rec)
	buf.Write([]byte{0xaa, 0xbb})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Timestamp.Nanosecond() != 42 {
		t.Errorf("nanos = %d, want 42", p.Timestamp.Nanosecond())
	}
	if !bytes.Equal(p.Data, []byte{0xaa, 0xbb}) {
		t.Errorf("data = %x", p.Data)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	_ = w.WritePacket(time.Unix(0, 0), []byte{1, 2, 3, 4})
	full := buf.Bytes()
	// Cut mid-record.
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("err = %v, want a non-EOF error", err)
	}
}

func TestInsaneCaptureLength(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 100)
	_ = w.WritePacket(time.Unix(0, 0), []byte{1})
	raw := buf.Bytes()
	// Corrupt the capture length field far beyond snaplen.
	binary.LittleEndian.PutUint32(raw[24+8:], 1<<30)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("expected sanity-bound error")
	}
}
