// Package pcap reads and writes libpcap capture files (the classic
// tcpdump/Wireshark format, not pcapng). Both byte orders and both
// microsecond and nanosecond timestamp variants are supported on read;
// writes use little-endian microsecond files, the most widely compatible
// variant.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers identifying libpcap files.
const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
)

// LinkTypeEthernet is the DLT value for Ethernet frames.
const LinkTypeEthernet = 1

// ErrBadMagic is returned when the file header is not a libpcap header.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Packet is one captured record.
type Packet struct {
	Timestamp time.Time
	Data      []byte // captured bytes
	OrigLen   int    // original length on the wire (>= len(Data))
}

// Writer emits a libpcap file. Create with NewWriter, then call WritePacket
// for each frame.
type Writer struct {
	w       io.Writer
	snaplen uint32
}

// NewWriter writes a file header with the given snap length (0 means 262144)
// and Ethernet link type, returning a Writer for the records.
func NewWriter(w io.Writer, snaplen uint32) (*Writer, error) {
	if snaplen == 0 {
		snaplen = 262144
	}
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], magicMicros)
	le.PutUint16(hdr[4:], 2) // version major
	le.PutUint16(hdr[6:], 4) // version minor
	le.PutUint32(hdr[16:], snaplen)
	le.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing header: %w", err)
	}
	return &Writer{w: w, snaplen: snaplen}, nil
}

// WritePacket appends one record. Data longer than the snap length is
// truncated, with OrigLen preserved in the record header.
func (pw *Writer) WritePacket(ts time.Time, data []byte) error {
	capLen := len(data)
	if uint32(capLen) > pw.snaplen {
		capLen = int(pw.snaplen)
	}
	var hdr [16]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], uint32(ts.Unix()))
	le.PutUint32(hdr[4:], uint32(ts.Nanosecond()/1000))
	le.PutUint32(hdr[8:], uint32(capLen))
	le.PutUint32(hdr[12:], uint32(len(data)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := pw.w.Write(data[:capLen]); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	return nil
}

// Reader iterates over the records of a libpcap file.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nanos    bool
	snaplen  uint32
	linkType uint32
}

// NewReader parses the file header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading header: %w", err)
	}
	pr := &Reader{r: r}
	le, be := binary.LittleEndian, binary.BigEndian
	switch {
	case le.Uint32(hdr[0:]) == magicMicros:
		pr.order = le
	case be.Uint32(hdr[0:]) == magicMicros:
		pr.order = be
	case le.Uint32(hdr[0:]) == magicNanos:
		pr.order, pr.nanos = le, true
	case be.Uint32(hdr[0:]) == magicNanos:
		pr.order, pr.nanos = be, true
	default:
		return nil, ErrBadMagic
	}
	pr.snaplen = pr.order.Uint32(hdr[16:])
	pr.linkType = pr.order.Uint32(hdr[20:])
	return pr, nil
}

// LinkType returns the file's DLT value.
func (pr *Reader) LinkType() uint32 { return pr.linkType }

// Snaplen returns the file's snap length.
func (pr *Reader) Snaplen() uint32 { return pr.snaplen }

// Next returns the next record, or io.EOF at the end of the file. The
// returned data is freshly allocated and safe to retain.
func (pr *Reader) Next() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := pr.order.Uint32(hdr[0:])
	frac := pr.order.Uint32(hdr[4:])
	capLen := pr.order.Uint32(hdr[8:])
	origLen := pr.order.Uint32(hdr[12:])
	if capLen > pr.snaplen+65536 {
		return Packet{}, fmt.Errorf("pcap: record capture length %d exceeds sanity bound", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: reading record data: %w", err)
	}
	ns := int64(frac)
	if !pr.nanos {
		ns *= 1000
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), ns).UTC(),
		Data:      data,
		OrigLen:   int(origLen),
	}, nil
}
