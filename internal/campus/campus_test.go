package campus

import (
	"testing"

	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/pipeline"
	"videoplat/internal/tracegen"
)

func trainBank(t testing.TB) *pipeline.Bank {
	t.Helper()
	g := tracegen.New(11)
	ds, err := g.LabDataset(0.05, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bank, err := pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return bank
}

func TestSimulateProducesCalibratedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	bank := trainBank(t)
	res, err := Simulate(Config{Seed: 1, Days: 3, SessionsPerDay: 600}, bank)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows < 1000 {
		t.Fatalf("flows = %d", res.Flows)
	}

	wt := res.Agg.WatchTimeByDevice()
	// YouTube must dominate total watch time (Fig 7).
	totals := map[fingerprint.Provider]float64{}
	for prov, byDev := range wt {
		for _, h := range byDev {
			totals[prov] += h
		}
	}
	if totals[fingerprint.YouTube] <= totals[fingerprint.Netflix] {
		t.Errorf("YouTube hours (%v) not dominant over Netflix (%v)",
			totals[fingerprint.YouTube], totals[fingerprint.Netflix])
	}
	// Subscription providers: PC > mobile; YouTube mobile share is large.
	nf := wt[fingerprint.Netflix]
	if nf["windows"]+nf["macOS"] <= nf["android"]+nf["iOS"] {
		t.Error("Netflix should be PC-dominant")
	}
	yt := wt[fingerprint.YouTube]
	mobileShare := (yt["android"] + yt["iOS"]) / totals[fingerprint.YouTube]
	if mobileShare < 0.25 {
		t.Errorf("YouTube mobile share = %.2f, want >= 0.25 (paper: up to 40%%)", mobileShare)
	}

	// Amazon on macOS must show the highest median bandwidth (Fig 9).
	bw := res.Agg.BandwidthByDevice()
	apMac := bw[fingerprint.Amazon]["macOS"].Median
	if apMac < 4 {
		t.Errorf("Amazon/macOS median = %.2f Mbps, want > 4", apMac)
	}
	apTV := bw[fingerprint.Amazon]["TV"].Median
	if apMac <= apTV {
		t.Errorf("Amazon mac (%v) should exceed TV (%v) (the paper's 50%% gap)", apMac, apTV)
	}

	// Evening peak (Fig 11): Netflix PC usage at 21h exceeds 10h.
	pc, _ := res.Agg.HourlyUsage(fingerprint.Netflix)
	if pc[21] <= pc[10] {
		t.Errorf("Netflix pc usage 21h (%v) not above 10h (%v)", pc[21], pc[10])
	}

	// Classification exclusions stay moderate.
	if f := res.Agg.ExcludedFraction(); f > 0.5 {
		t.Errorf("excluded fraction = %.2f", f)
	}
}

func TestHourWeightShapes(t *testing.T) {
	// Netflix evening peak is sharper than YouTube's plateau.
	if hourWeight(fingerprint.Netflix, 21) != 1.0 {
		t.Error("netflix 21h should be peak")
	}
	if hourWeight(fingerprint.YouTube, 17) != 1.0 || hourWeight(fingerprint.YouTube, 23) != 1.0 {
		t.Error("youtube 16-24h should be plateau")
	}
	if hourWeight(fingerprint.Netflix, 17) >= 1.0 {
		t.Error("netflix 17h should be below peak")
	}
	if hourWeight(fingerprint.Amazon, 4) >= 0.3 {
		t.Error("amazon 4am should be low")
	}
}

func TestPlatformWeightsAreSupported(t *testing.T) {
	for prov, weights := range platformWeights {
		for label := range weights {
			if !fingerprint.SupportMatrix(label, prov) {
				t.Errorf("campus weight for unsupported combo %s/%s", label, prov)
			}
		}
	}
}
