// Package campus models the four-month university deployment of §5 as a
// discrete-event workload: session arrivals follow per-provider diurnal
// curves, user platforms are drawn from a mix calibrated to the paper's
// Figs 7–8 (YouTube mobile-heavy, subscription services PC-heavy), and
// per-flow bandwidth follows per-(provider, platform) lognormal
// distributions calibrated to Figs 9–10 (Amazon on Mac PCs the most
// demanding). Every generated flow is pushed through the trained classifier
// bank, so the §5 figures are computed from *predicted* platforms with the
// same confidence filtering the paper applies.
package campus

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/pipeline"
	"videoplat/internal/telemetry"
)

// Config sizes the simulation.
type Config struct {
	Seed           uint64
	Days           int       // paper: ~125 days (Jul 7 – Nov 9 2023)
	SessionsPerDay int       // scaled-down stand-in for campus volume
	Start          time.Time // defaults to 2023-07-07 00:00 UTC
}

// Result is the simulation outcome.
type Result struct {
	Agg *telemetry.Aggregator
	// TrueLabels counts ground-truth platform labels, for validating the
	// classified aggregates.
	TrueLabels map[string]int
	Flows      int
}

// providerShare is the share of sessions per provider (YouTube dominates
// engagement, Fig 7).
var providerShare = map[fingerprint.Provider]float64{
	fingerprint.YouTube: 0.55,
	fingerprint.Netflix: 0.20,
	fingerprint.Disney:  0.13,
	fingerprint.Amazon:  0.12,
}

// platformWeights is the user-platform mix per provider, calibrated to
// Fig 8: Chrome-on-Windows dominates YouTube PC viewing, the iOS native app
// dominates mobile viewing of every provider, and subscription services are
// watched mostly on PCs.
var platformWeights = map[fingerprint.Provider]map[string]float64{
	fingerprint.YouTube: {
		"windows_chrome": 677, "windows_edge": 138, "windows_firefox": 95,
		"macOS_safari": 160, "macOS_chrome": 120, "macOS_edge": 39, "macOS_firefox": 57,
		"android_nativeApp": 466, "android_chrome": 29, "android_samsungInternet": 16,
		"iOS_nativeApp": 529, "iOS_safari": 44, "iOS_chrome": 11,
		"androidTV_nativeApp": 98, "ps5_nativeApp": 44,
	},
	fingerprint.Netflix: {
		"windows_chrome": 180, "windows_edge": 90, "windows_firefox": 60, "windows_nativeApp": 70,
		"macOS_safari": 210, "macOS_chrome": 80, "macOS_edge": 25, "macOS_firefox": 35,
		"android_nativeApp": 70, "iOS_nativeApp": 110,
		"androidTV_nativeApp": 90, "ps5_nativeApp": 50,
	},
	fingerprint.Disney: {
		"windows_chrome": 120, "windows_edge": 60, "windows_firefox": 40, "windows_nativeApp": 50,
		"macOS_safari": 110, "macOS_chrome": 55, "macOS_edge": 18, "macOS_firefox": 22,
		"android_nativeApp": 40, "iOS_nativeApp": 160,
		"androidTV_nativeApp": 60, "ps5_nativeApp": 30,
	},
	fingerprint.Amazon: {
		"windows_chrome": 110, "windows_edge": 55, "windows_firefox": 35, "windows_nativeApp": 45,
		"macOS_safari": 150, "macOS_chrome": 60, "macOS_edge": 20, "macOS_firefox": 25,
		"macOS_nativeApp":   40,
		"android_nativeApp": 30, "iOS_nativeApp": 70,
		"androidTV_nativeApp": 50, "ps5_nativeApp": 25,
	},
}

// medianMbps is the downstream bandwidth median per (provider, platform),
// calibrated to Figs 9–10. Unlisted platforms fall back to deviceMbps.
var medianMbps = map[fingerprint.Provider]map[string]float64{
	fingerprint.Amazon: {
		"macOS_safari": 5.7, "macOS_chrome": 5.2, "macOS_edge": 5.0, "macOS_firefox": 5.1,
		"macOS_nativeApp": 5.4,
		"windows_chrome":  4.6, "windows_edge": 4.4, "windows_firefox": 4.5, "windows_nativeApp": 4.2,
		"android_nativeApp": 2.2, "iOS_nativeApp": 2.6,
		"androidTV_nativeApp": 3.8, "ps5_nativeApp": 3.7,
	},
	fingerprint.Disney: {
		"windows_chrome": 4.0, "windows_edge": 3.9, "windows_firefox": 3.9, "windows_nativeApp": 4.1,
		"macOS_safari": 4.6, "macOS_chrome": 4.2, "macOS_edge": 4.1, "macOS_firefox": 4.2,
		"android_nativeApp": 2.6, "iOS_nativeApp": 3.0,
		"androidTV_nativeApp": 3.6, "ps5_nativeApp": 3.5,
	},
	fingerprint.Netflix: {
		// Browser playback (except Safari) is capped at lower resolutions.
		"windows_chrome": 1.8, "windows_edge": 1.8, "windows_firefox": 1.7, "windows_nativeApp": 4.2,
		"macOS_safari": 3.6, "macOS_chrome": 1.9, "macOS_edge": 1.8, "macOS_firefox": 1.8,
		"android_nativeApp": 2.4, "iOS_nativeApp": 2.7,
		"androidTV_nativeApp": 4.1, "ps5_nativeApp": 4.0,
	},
	fingerprint.YouTube: {
		"windows_chrome": 2.4, "windows_edge": 2.3, "windows_firefox": 2.3,
		"macOS_safari": 2.6, "macOS_chrome": 2.5, "macOS_edge": 2.4, "macOS_firefox": 2.4,
		"android_nativeApp": 1.6, "android_chrome": 1.5, "android_samsungInternet": 1.5,
		"iOS_nativeApp": 1.8, "iOS_safari": 1.7, "iOS_chrome": 1.7,
		"androidTV_nativeApp": 3.0, "ps5_nativeApp": 2.8,
	},
}

// hourWeight shapes arrivals over the day per provider (Fig 11): YouTube
// sustains a long 4pm–midnight plateau, Netflix peaks sharply 8–10pm,
// Amazon and Disney+ share a 7–11pm window.
func hourWeight(prov fingerprint.Provider, hour int) float64 {
	switch prov {
	case fingerprint.YouTube:
		switch {
		case hour >= 16 && hour <= 23:
			return 1.0
		case hour >= 9 && hour < 16:
			return 0.55
		case hour < 2:
			return 0.5
		default:
			return 0.15
		}
	case fingerprint.Netflix:
		switch {
		case hour >= 20 && hour <= 22:
			return 1.0
		case hour >= 17 && hour < 20:
			return 0.5
		case hour == 23 || hour < 1:
			return 0.45
		case hour >= 10:
			return 0.25
		default:
			return 0.08
		}
	default: // Amazon, Disney+
		switch {
		case hour >= 19 && hour <= 23:
			return 1.0
		case hour >= 12 && hour < 19:
			return 0.3
		case hour < 1:
			return 0.3
		default:
			return 0.07
		}
	}
}

// pick draws a key from a weight map.
func pick(rng *rand.Rand, weights map[string]float64) string {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	// map iteration order is random; accumulate over a deterministic order
	for _, label := range fingerprint.AllPlatformLabels() {
		w, ok := weights[label]
		if !ok {
			continue
		}
		r -= w
		if r <= 0 {
			return label
		}
	}
	// numeric fallback: return any present label
	for _, label := range fingerprint.AllPlatformLabels() {
		if _, ok := weights[label]; ok {
			return label
		}
	}
	return ""
}

// Simulate runs the campus workload through the classifier bank.
func Simulate(cfg Config, bank *pipeline.Bank) (*Result, error) {
	if cfg.Days <= 0 {
		cfg.Days = 7
	}
	if cfg.SessionsPerDay <= 0 {
		cfg.SessionsPerDay = 2000
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xca3b05))

	res := &Result{
		Agg:        &telemetry.Aggregator{Days: float64(cfg.Days)},
		TrueLabels: map[string]int{},
	}

	for day := 0; day < cfg.Days; day++ {
		for _, prov := range fingerprint.AllProviders() {
			// Normalize hour weights into session counts for the day.
			var weightSum float64
			for h := 0; h < 24; h++ {
				weightSum += hourWeight(prov, h)
			}
			dayTotal := float64(cfg.SessionsPerDay) * providerShare[prov]
			for h := 0; h < 24; h++ {
				expect := dayTotal * hourWeight(prov, h) / weightSum
				n := int(expect)
				if rng.Float64() < expect-float64(n) {
					n++
				}
				for i := 0; i < n; i++ {
					if err := oneSession(rng, cfg, res, bank, prov, day, h); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return res, nil
}

func oneSession(rng *rand.Rand, cfg Config, res *Result, bank *pipeline.Bank, prov fingerprint.Provider, day, hour int) error {
	label := pick(rng, platformWeights[prov])
	if label == "" {
		return fmt.Errorf("campus: no platforms for %s", prov)
	}
	tr := fingerprint.TCP
	if fingerprint.SupportsQUIC(label, prov) && rng.Float64() < 0.5 {
		tr = fingerprint.QUIC
	}
	fp, err := fingerprint.Generate(rng, label, prov, tr, fingerprint.Options{})
	if err != nil {
		return err
	}
	info := features.FromFlow(fp, uint8(1+rng.IntN(3)))
	pred, err := bank.Classify(prov, tr, features.Extract(info))
	if err != nil {
		return err
	}

	// Session duration: lognormal around ~22 minutes.
	durMin := math.Exp(rng.NormFloat64()*0.8 + math.Log(22))
	if durMin < 0.5 {
		durMin = 0.5
	}
	dur := time.Duration(durMin * float64(time.Minute))

	// Bandwidth: lognormal around the calibrated per-platform median.
	med := medianMbps[prov][label]
	if med == 0 {
		med = 2.5
	}
	mbps := math.Exp(rng.NormFloat64()*0.45 + math.Log(med))
	bytesDown := int64(mbps * 1e6 / 8 * dur.Seconds())

	start := cfg.Start.Add(time.Duration(day)*24*time.Hour +
		time.Duration(hour)*time.Hour +
		time.Duration(rng.IntN(3600))*time.Second)

	rec := &pipeline.FlowRecord{
		Provider:   prov,
		Transport:  tr,
		SNI:        fp.SNI,
		Content:    true,
		Prediction: pred,
		Classified: true,
		FirstSeen:  start,
		LastSeen:   start.Add(dur),
		BytesDown:  bytesDown,
		BytesUp:    bytesDown / 40,
	}
	res.Agg.Add(rec)
	res.TrueLabels[label]++
	res.Flows++
	return nil
}
