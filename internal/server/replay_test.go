package server

import (
	"context"
	"io"
	"math/rand/v2"
	"sort"
	"testing"
	"time"

	"videoplat/internal/pcap"
	"videoplat/internal/pipeline"
)

// TestMergeByTimeMatchesStableSort pins the SynthSource bugfix contract:
// merging each session's (stably) sorted frames into the already-sorted
// queue must reproduce exactly what the former full-queue sort.SliceStable
// produced — queue-before-session on timestamp ties, session frames in
// append order — so Next() output stays byte-identical for a fixed seed.
func TestMergeByTimeMatchesStableSort(t *testing.T) {
	base := time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewPCG(42, 0))
	for trial := 0; trial < 50; trial++ {
		// Sorted queue with deliberate duplicate timestamps; OrigLen tags
		// each packet's identity so ordering of ties is observable.
		id := 0
		mk := func(sec int) pcap.Packet {
			id++
			return pcap.Packet{Timestamp: base.Add(time.Duration(sec) * time.Second), OrigLen: id}
		}
		var queue []pcap.Packet
		for sec := 0; len(queue) < trial%17; sec += rng.IntN(2) {
			queue = append(queue, mk(sec))
		}
		var session []pcap.Packet
		for n := 0; n < trial%13; n++ {
			session = append(session, mk(rng.IntN(10)))
		}

		before := func(s []pcap.Packet) func(i, j int) bool {
			return func(i, j int) bool { return s[i].Timestamp.Before(s[j].Timestamp) }
		}
		// Reference: the old implementation — append, then stable-sort all.
		want := append(append([]pcap.Packet{}, queue...), session...)
		sort.SliceStable(want, before(want))

		got := append([]pcap.Packet{}, session...)
		sort.SliceStable(got, before(got))
		got = mergeByTime(append([]pcap.Packet{}, queue...), got)

		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d packets, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].OrigLen != want[i].OrigLen {
				t.Fatalf("trial %d: order diverges at %d: packet %d, want %d",
					trial, i, got[i].OrigLen, want[i].OrigLen)
			}
		}
	}
}

// garbageSource yields frames that cannot carry a flow, then EOF — for
// exercising the ingest drop counters end to end.
type garbageSource struct{ n int }

func (g *garbageSource) Next() (pcap.Packet, error) {
	if g.n <= 0 {
		return pcap.Packet{}, io.EOF
	}
	g.n--
	return pcap.Packet{Timestamp: time.Now(), Data: []byte{0xde, 0xad}}, nil
}

// TestServerReportsIngestCounters runs a replay of undecodable frames and
// checks they surface as ignored_frames (not as shard traffic), with the
// batch counter advancing.
func TestServerReportsIngestCounters(t *testing.T) {
	srv, err := New(&pipeline.Bank{}, &garbageSource{n: 10}, Config{
		Addr: "127.0.0.1:0", Shards: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	select {
	case <-srv.ReplayDone():
	case <-time.After(10 * time.Second):
		t.Fatal("replay did not finish")
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}

	st := srv.Snapshot()
	if st.Ingest.IgnoredFrames != 10 {
		t.Errorf("ignored_frames = %d, want 10", st.Ingest.IgnoredFrames)
	}
	if st.Replay.Packets != 10 {
		t.Errorf("replay packets = %d, want 10", st.Replay.Packets)
	}
	if st.Ingest.Batches < 3 {
		t.Errorf("batches = %d, want >= 3 for 10 frames at batch size 4", st.Ingest.Batches)
	}
	if st.Ingest.BatchSize != 4 {
		t.Errorf("batch_size = %d, want 4", st.Ingest.BatchSize)
	}
	if st.FlowTable.Inserted != 0 {
		t.Errorf("flow table saw %d inserts from undecodable frames", st.FlowTable.Inserted)
	}
}
