package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"videoplat/internal/obs"
	"videoplat/internal/pipeline"
)

// startObservedServer runs a daemon over a finite synthetic replay with
// trace-everything sampling. An empty bank keeps it fast: classification
// errors still exercise every timed stage.
func startObservedServer(t *testing.T, cfg Config) (*Server, string, context.CancelFunc, chan error) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv, err := New(&pipeline.Bank{}, NewSynthSource(5, 40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	return srv, "http://" + srv.Addr(), cancel, runErr
}

// TestObservabilityEndpoints drives a replay through an instrumented daemon
// and checks the full latency-observability surface: stage digests, trace
// counters, runtime/build/config echo and the live queue gauges in /stats,
// span snapshots in /trace, and the new series in /metrics.
func TestObservabilityEndpoints(t *testing.T) {
	srv, base, cancel, runErr := startObservedServer(t, Config{
		Shards:           2,
		MaxFlows:         4, // force cap evictions so the rollup stage runs live
		TraceSampleEvery: 1,
		TraceRing:        64,
		TraceSlowest:     8,
		EnablePprof:      true,
	})
	defer cancel()
	<-srv.ReplayDone()

	// Poll until the async eviction path has committed rollup-stage samples.
	var st Stats
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, base+"/stats", &st)
		byStage := map[string]obs.StageStats{}
		for _, ls := range st.Latency {
			byStage[ls.Stage] = ls
		}
		if byStage["decode"].Count > 0 && byStage["queue_wait"].Count > 0 &&
			byStage["assembly"].Count > 0 && byStage["rollup"].Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stages never collected samples: %+v", st.Latency)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, ls := range st.Latency {
		if ls.Count > 0 && (ls.P50Ms < 0 || ls.P99Ms < ls.P50Ms || ls.MaxMs < ls.P99Ms/1.04) {
			t.Errorf("stage %s quantiles out of order: %+v", ls.Stage, ls)
		}
	}

	if st.Trace.SampleEvery != 1 || st.Trace.Admitted == 0 || st.Trace.Finished == 0 {
		t.Errorf("trace counters = %+v, want sample_every 1 and nonzero spans", st.Trace)
	}
	if st.Trace.Offered < st.Trace.Admitted {
		t.Errorf("offered %d < admitted %d", st.Trace.Offered, st.Trace.Admitted)
	}
	if st.Runtime.Goroutines <= 0 || st.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime gauges empty: %+v", st.Runtime)
	}
	if st.Build.GoVersion == "" {
		t.Error("build info missing go version")
	}
	if st.Config.Shards != 2 || !st.Config.PprofEnabled || st.Config.TraceSampleEvery != 1 {
		t.Errorf("config echo = %+v", st.Config)
	}
	if st.Config.WindowSeconds != 60 {
		t.Errorf("config window = %v, want default 60s", st.Config.WindowSeconds)
	}
	if len(st.Ingest.QueueDepths) != 2 || st.Ingest.QueueCapacity <= 0 {
		t.Errorf("queue gauges = depths %v cap %d", st.Ingest.QueueDepths, st.Ingest.QueueCapacity)
	}
	if st.Ingest.ResultsCapacity <= 0 {
		t.Errorf("results capacity = %d", st.Ingest.ResultsCapacity)
	}

	// /trace serves the span ring, newest first, with the limit honored.
	var snap obs.TraceSnapshot
	getJSON(t, base+"/trace?limit=5", &snap)
	if snap.Admitted == 0 || len(snap.Recent) == 0 {
		t.Fatalf("trace snapshot empty: admitted=%d recent=%d", snap.Admitted, len(snap.Recent))
	}
	if len(snap.Recent) > 5 {
		t.Errorf("limit ignored: %d recent spans", len(snap.Recent))
	}
	if len(snap.Slowest) == 0 {
		t.Error("no slowest-flow exemplars")
	}
	for i := 1; i < len(snap.Slowest); i++ {
		if snap.Slowest[i].TotalNS > snap.Slowest[i-1].TotalNS {
			t.Errorf("slowest not sorted: [%d]=%d > [%d]=%d",
				i, snap.Slowest[i].TotalNS, i-1, snap.Slowest[i-1].TotalNS)
		}
	}
	for _, sp := range snap.Recent {
		if sp.Verdict == "" {
			t.Errorf("span %d finished without a verdict", sp.ID)
		}
	}
	if resp, err := http.Get(base + "/trace?limit=0"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit not rejected: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}

	// /metrics exposes the new series.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(body)
	for _, want := range []string{
		`videoplat_stage_latency_seconds{stage="decode",quantile="0.99"}`,
		`videoplat_stage_latency_samples_total{stage="rollup"}`,
		`videoplat_shard_queue_depth{shard="0"}`,
		`videoplat_shard_queue_depth{shard="1"}`,
		"videoplat_results_capacity",
		`videoplat_trace_spans_total{event="finished"}`,
		"videoplat_goroutines",
		"videoplat_heap_alloc_bytes",
		"videoplat_gc_cycles_total",
		"videoplat_uptime_seconds",
		"videoplat_build_info{go_version=",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// pprof is enabled: the index and a named profile both serve.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %s with pprof enabled", path, resp.Status)
		}
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestPprofDisabledByDefault pins that the profiling surface 404s unless the
// operator opted in.
func TestPprofDisabledByDefault(t *testing.T) {
	srv, base, cancel, runErr := startObservedServer(t, Config{Shards: 1})
	defer cancel()
	<-srv.ReplayDone()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %s without -pprof, want 404", path, resp.Status)
		}
	}

	// Tracing still runs at its default rate and /trace still serves.
	var snap obs.TraceSnapshot
	getJSON(t, base+"/trace", &snap)
	if snap.SampleEvery != 256 {
		t.Errorf("default sample rate = %d, want 256", snap.SampleEvery)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}
