package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"videoplat/internal/telemetry"
)

// Store returns the telemetry window store backing /windows and /query —
// the same instance Config.Store supplied, or the server's default. It
// remains queryable after Run returns, so a caller can inspect a finished
// replay's history in-process.
func (s *Server) Store() *telemetry.Store { return s.store }

// handleWindows lists retained sealed windows: GET /windows with optional
// since/until (RFC 3339 or unix seconds, half-open on window Start),
// last (duration back from the newest stored window, trace time),
// tier (a downsampling width like 10m; default raw) and limit (newest
// windows win; default 100).
func (s *Server) handleWindows(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since, until, err := timeRange(q, s.store)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var tierWidth time.Duration
	if v := q.Get("tier"); v != "" {
		tierWidth, err = time.ParseDuration(v)
		if err != nil || tierWidth <= 0 {
			http.Error(w, fmt.Sprintf("bad tier %q (want a duration like 10m)", v), http.StatusBadRequest)
			return
		}
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
	}

	// The store applies the limit (keeping the newest windows) so only the
	// listed tail is deep-copied.
	wins, total, err := s.store.Windows(since, until, tierWidth, limit)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, struct {
		Count   int                 `json:"count"`
		Listed  int                 `json:"listed"`
		Windows []*telemetry.Window `json:"windows"`
	}{Count: total, Listed: len(wins), Windows: wins})
}

// handleQuery serves re-aggregated time series: GET /query with optional
// since/until/last (as in /windows), step (re-aggregation bucket width,
// default the rollup window width) and by (provider, platform or model;
// default one total series).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since, until, err := timeRange(q, s.store)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var step time.Duration
	if v := q.Get("step"); v != "" {
		step, err = time.ParseDuration(v)
		if err != nil || step <= 0 {
			http.Error(w, fmt.Sprintf("bad step %q (want a duration like 10m)", v), http.StatusBadRequest)
			return
		}
	}
	res, err := s.store.Query(since, until, step, q.Get("by"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

// timeRange resolves a request's since/until/last parameters. last is
// relative to the newest stored window's End — trace time, so it behaves
// identically for live traffic and historical replays — and is exclusive
// with since/until.
func timeRange(q url.Values, store *telemetry.Store) (since, until time.Time, err error) {
	if v := q.Get("last"); v != "" {
		if q.Get("since") != "" || q.Get("until") != "" {
			return since, until, fmt.Errorf("last is exclusive with since/until")
		}
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return since, until, fmt.Errorf("bad last %q (want a duration like 30m)", v)
		}
		if latest := store.Latest(); !latest.IsZero() {
			since = latest.Add(-d)
		}
		return since, until, nil
	}
	if since, err = parseTime(q.Get("since")); err != nil {
		return since, until, fmt.Errorf("bad since: %v", err)
	}
	if until, err = parseTime(q.Get("until")); err != nil {
		return since, until, fmt.Errorf("bad until: %v", err)
	}
	return since, until, nil
}

// parseTime accepts RFC 3339 timestamps or integer unix seconds ("" = zero
// time, i.e. unbounded).
func parseTime(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	if ts, err := time.Parse(time.RFC3339, v); err == nil {
		return ts, nil
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.Unix(secs, 0).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("%q is neither RFC 3339 nor unix seconds", v)
}
