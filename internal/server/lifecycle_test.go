package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"videoplat/internal/drift"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/obs"
	"videoplat/internal/pipeline"
	"videoplat/internal/registry"
	"videoplat/internal/tracegen"
)

func trainBankSeed(t *testing.T, seed uint64) *pipeline.Bank {
	t.Helper()
	ds, err := tracegen.New(seed).LabDataset(0.02, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bank, err := pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 12, MaxDepth: 20, MaxFeatures: 34, Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return bank
}

func postJSON(t *testing.T, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, body, err)
		}
	}
	return resp.StatusCode, string(body)
}

// modelsDoc mirrors the /models response shape.
type modelsDoc struct {
	Active   string              `json:"active"`
	Swaps    uint64              `json:"swaps"`
	History  []string            `json:"history"`
	Versions []registry.Manifest `json:"versions"`
}

// TestModelsEndpointsHotSwapRoundTrip drives the lifecycle API against a
// live daemon: list, operator promote (a zero-downtime swap under live
// replay), rollback, and export of the active bank.
func TestModelsEndpointsHotSwapRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	reg, err := registry.New(registry.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	bankA := trainBankSeed(t, 9)
	mA, err := reg.Add(bankA, "initial", 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Promote(mA.ID); err != nil {
		t.Fatal(err)
	}
	bankB := trainBankSeed(t, 10)
	if _, err := reg.Add(bankB, "operator candidate", 10); err != nil {
		t.Fatal(err)
	}

	journal := obs.NewJournal(64, nil)
	srv, err := New(reg.Current().Bank, NewSynthSource(3, 500), Config{
		Addr: "127.0.0.1:0", Shards: 2, Registry: reg, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	base := "http://" + srv.Addr()

	var doc modelsDoc
	getJSON(t, base+"/models", &doc)
	if doc.Active != "v0001" || len(doc.Versions) != 2 {
		t.Fatalf("models = %+v", doc)
	}

	// Promote the candidate while the replay classifies: a live hot-swap.
	code, body := postJSON(t, base+"/models/promote?version=v0002", nil)
	if code != http.StatusOK {
		t.Fatalf("promote: %d %s", code, body)
	}
	getJSON(t, base+"/models", &doc)
	if doc.Active != "v0002" || doc.Swaps != 1 {
		t.Fatalf("after promote: %+v", doc)
	}
	if got := srv.sharded.Bank().Version; got != "v0002" {
		t.Fatalf("pipeline bank after promote = %q", got)
	}
	var st Stats
	getJSON(t, base+"/stats", &st)
	if st.Models.ActiveVersion != "v0002" || st.Models.Versions != 2 {
		t.Fatalf("stats models = %+v", st.Models)
	}

	// Unknown version: a clean client error, no swap.
	if code, _ := postJSON(t, base+"/models/promote?version=v9999", nil); code != http.StatusBadRequest {
		t.Fatalf("bogus promote returned %d", code)
	}

	// Rollback returns to v0001.
	code, body = postJSON(t, base+"/models/rollback", nil)
	if code != http.StatusOK {
		t.Fatalf("rollback: %d %s", code, body)
	}
	if got := srv.sharded.Bank().Version; got != "v0001" {
		t.Fatalf("pipeline bank after rollback = %q", got)
	}

	// The journal replays the operator actions as typed events: each API
	// mutation plus the pipeline hot-swap it caused. (Pipeline-health events
	// from the live replay interleave freely, so filter by type.)
	promotes := journal.Events(0, obs.EventModelPromote, 0)
	if len(promotes) != 1 || promotes[0].Fields["version"] != "v0002" {
		t.Errorf("promote events = %+v, want one for v0002", promotes)
	}
	rollbacks := journal.Events(0, obs.EventModelRollback, 0)
	if len(rollbacks) != 1 || rollbacks[0].Fields["version"] != "v0001" {
		t.Errorf("rollback events = %+v, want one for v0001", rollbacks)
	}
	swaps := journal.Events(0, obs.EventModelSwap, 0)
	if len(swaps) != 2 || swaps[0].Fields["version"] != "v0002" || swaps[1].Fields["version"] != "v0001" {
		t.Errorf("swap events = %+v, want v0002 then v0001", swaps)
	}

	// Export captures the active bank as a loadable gob.
	resp, err := http.Get(base + "/models/export")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("export: %s, %d bytes", resp.Status, len(blob))
	}
	var exported pipeline.Bank
	if err := exported.UnmarshalBinary(blob); err != nil {
		t.Fatalf("exported bank does not load: %v", err)
	}
	if exported.Version != "v0001" {
		t.Errorf("exported version = %q, want v0001", exported.Version)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestModelsWithoutRegistry: the daemon still identifies and exports its
// ad-hoc bank; mutating endpoints refuse cleanly.
func TestModelsWithoutRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	srv, err := New(trainBank(t), NewSynthSource(3, 5), Config{Addr: "127.0.0.1:0", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	base := "http://" + srv.Addr()

	var doc modelsDoc
	getJSON(t, base+"/models", &doc)
	if doc.Active != "unversioned" || len(doc.Versions) != 0 {
		t.Fatalf("models without registry = %+v", doc)
	}
	if code, _ := postJSON(t, base+"/models/promote?version=v0001", nil); code != http.StatusConflict {
		t.Errorf("promote without registry returned %d, want 409", code)
	}
	if code, _ := postJSON(t, base+"/models/rollback", nil); code != http.StatusConflict {
		t.Errorf("rollback without registry returned %d, want 409", code)
	}
	resp, err := http.Get(base + "/models/export")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var exported pipeline.Bank
	if err := exported.UnmarshalBinary(blob); err != nil {
		t.Fatalf("ad-hoc export does not load: %v", err)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestAutoRetrainSwapsUnderInjectedDrift is the acceptance path: a daemon
// with -auto-retrain semantics, fed synthetic traffic whose profiles drift
// mid-replay, must detect the drift, shadow-evaluate a retrained bank on
// live flows, and hot-swap to it — with the version history visible in
// /models and per-window model attribution in the rollup.
func TestAutoRetrainSwapsUnderInjectedDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	reg, err := registry.New(registry.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	initial := trainBankSeed(t, 9)
	m0, err := reg.Add(initial, "initial", 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Promote(m0.ID); err != nil {
		t.Fatal(err)
	}

	// Prebuilt replacement covering drifted profiles, so the injected
	// TrainFunc is instant and the test exercises the loop, not training
	// wall-time.
	driftedDS, err := tracegen.New(31).OpenSetDataset(6)
	if err != nil {
		t.Fatal(err)
	}
	labDS, err := tracegen.New(32).LabDataset(0.02, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	driftedDS.Flows = append(driftedDS.Flows, labDS.Flows...)
	replacement, err := pipeline.TrainBank(driftedDS, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 12, MaxDepth: 20, MaxFeatures: 34, Seed: 31}})
	if err != nil {
		t.Fatal(err)
	}

	journal := obs.NewJournal(256, nil)
	mon := drift.NewMonitor(drift.Config{Window: 30, Baseline: 30, ConfidenceDrop: 0.05})
	rt, err := registry.NewRetrainer(reg, registry.RetrainerConfig{
		Train:    func(string, uint64) (*pipeline.Bank, error) { return replacement, nil },
		Gate:     registry.Gate{SampleRate: 1, MinFlows: 25, MinAgreement: 0.05},
		Cooldown: time.Millisecond,
		Events:   journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.BindMonitor(mon)

	srv, err := New(reg.Current().Bank, NewDriftingSynthSource(7, 400, 100), Config{
		Addr: "127.0.0.1:0", Shards: 2,
		Registry: reg, Drift: mon, Retrainer: rt, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	base := "http://" + srv.Addr()

	// Drift verdicts must surface in /stats while the monitor observes.
	driftSeen := false

	// The swap must land while traffic still flows.
	deadline := time.After(120 * time.Second)
	for srv.swaps.Load() == 0 {
		if !driftSeen {
			var st Stats
			getJSON(t, base+"/stats", &st)
			driftSeen = len(st.Drift) > 0
		}
		select {
		case <-deadline:
			t.Fatalf("no auto swap; retrainer=%+v drift=%+v models=%+v",
				rt.Status(), mon.Statuses(), reg.List())
		case <-srv.ReplayDone():
			// The last shadow verdict may resolve just after EOF; give the
			// async promotion a moment before declaring failure.
			grace := time.After(5 * time.Second)
			for srv.swaps.Load() == 0 {
				select {
				case <-grace:
					t.Fatalf("replay ended without a swap; retrainer=%+v drift=%+v",
						rt.Status(), mon.Statuses())
				case <-time.After(10 * time.Millisecond):
				}
			}
		case <-time.After(20 * time.Millisecond):
		}
	}

	// A fast replay can land the swap between two of the polls above, and
	// each promotion rebaselines the monitor (clearing its series), so keep
	// polling while post-swap traffic repopulates it — drift verdicts must
	// surface in /stats at some point while the monitor observes.
	for !driftSeen {
		var st Stats
		getJSON(t, base+"/stats", &st)
		driftSeen = len(st.Drift) > 0
		if driftSeen {
			break
		}
		select {
		case <-deadline:
			t.Fatal("drift statuses never surfaced in /stats")
		case <-srv.ReplayDone():
			// Final chance: residual classifications may have landed after
			// the last poll.
			getJSON(t, base+"/stats", &st)
			driftSeen = len(st.Drift) > 0
			if !driftSeen {
				t.Fatal("replay ended with no drift statuses in /stats")
			}
		case <-time.After(5 * time.Millisecond):
		}
	}

	// With a deliberately hair-trigger drift config the loop may fire more
	// than once (each equally good replacement re-flags on normal variance)
	// — what matters is that the daemon moved off v0001 via recorded,
	// gated promotions.
	var doc modelsDoc
	getJSON(t, base+"/models", &doc)
	if doc.Active == "v0001" || len(doc.History) < 2 || doc.History[0] != "v0001" {
		t.Fatalf("models after auto-promotion = %+v", doc)
	}
	for _, m := range doc.Versions {
		if m.ID == "v0001" {
			continue
		}
		if m.Reason == "" {
			t.Errorf("retrained version %s has no drift reason", m.ID)
		}
		if m.State == registry.StateActive && (m.Shadow == nil || !m.Shadow.Promoted) {
			t.Errorf("active version %s missing shadow metrics: %+v", m.ID, m)
		}
	}

	select {
	case <-srv.ReplayDone():
	case <-time.After(120 * time.Second):
		t.Fatal("replay did not finish")
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}

	st := srv.Snapshot()
	if st.Replay.Error != "" {
		t.Errorf("replay error during swap: %s", st.Replay.Error)
	}
	if st.ClassifiedFlows == 0 {
		t.Error("no flows classified")
	}
	if st.Models.ActiveVersion == "v0001" || st.Models.ActiveVersion == "unversioned" || st.Models.Swaps == 0 {
		t.Errorf("final models stats = %+v", st.Models)
	}
	if st.Models.Retrainer == nil || st.Models.Retrainer.Promotions == 0 {
		t.Errorf("retrainer stats = %+v", st.Models.Retrainer)
	}
	if !driftSeen {
		t.Error("drift statuses never surfaced in /stats during the run")
	}

	// The journal must replay the whole autonomous loop as typed events —
	// drift trigger, candidate entering shadow, the verdict, and the swap —
	// in causal order (by first occurrence; a hair-trigger config may run
	// the loop more than once).
	evs := journal.Events(0, "", 0)
	firstAt := map[obs.EventType]int{}
	for i, ev := range evs {
		if _, ok := firstAt[ev.Type]; !ok {
			firstAt[ev.Type] = i
		}
	}
	chain := []obs.EventType{
		obs.EventDriftTrigger, obs.EventShadowStart,
		obs.EventShadowVerdict, obs.EventModelSwap,
	}
	for i, typ := range chain {
		at, ok := firstAt[typ]
		if !ok {
			t.Fatalf("journal missing %s: %+v", typ, evs)
		}
		if i > 0 && at < firstAt[chain[i-1]] {
			t.Errorf("%s (index %d) precedes %s (index %d)", typ, at, chain[i-1], firstAt[chain[i-1]])
		}
	}
	for _, ev := range evs {
		if ev.Type == obs.EventShadowVerdict && ev.Fields["promoted"] == "true" {
			return
		}
	}
	t.Errorf("no promoted shadow verdict in journal: %+v", evs)
}
