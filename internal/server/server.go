// Package server turns the batch classification pipeline into a
// long-running streaming ingest daemon: a replay source streams frames at a
// configurable packet rate through the sharded pipeline, per-shard flow
// tables are bounded (LRU + idle eviction) so memory stays flat under
// sustained traffic, finalized flows roll up into tumbling telemetry
// windows retired to a pluggable sink, and an HTTP operations API exposes
// live counters (/stats), the active flow table (/flows), liveness
// (/healthz) and Prometheus-style gauges (/metrics).
//
// The replay loop reads and dispatches frames in batches
// (Config.BatchSize) through the pipeline's parse-once ingest path: each
// frame is decoded exactly once, on the replay goroutine, and shipped with
// its flow key in a pooled per-batch arena that shard workers recycle
// after the pipeline consumes it — no re-parse, no per-packet allocation,
// one channel send per shard per batch. Frames that don't decode to a
// TCP/UDP 5-tuple are dropped at ingest and surface as ignored_frames in
// /stats and /metrics, alongside the ingest stall (backpressure) and
// dropped-result counters.
//
// Sealed rollup windows are also retained in a queryable telemetry store
// (Config.Store, defaulted when nil): a bounded in-memory ring with
// downsampling tiers and optional JSONL persistence that /windows (range
// listing) and /query (time-range re-aggregation by provider, platform or
// model version) serve live — the paper's longitudinal per-provider /
// per-platform questions answered from the daemon instead of offline JSONL
// post-processing. Store occupancy, eviction, compaction and sink-error
// counters surface in /stats and /metrics.
//
// This is the service surface the paper's continuous broadband deployment
// implies but the batch tools lack; cmd/vpserve is the daemon entrypoint.
//
// With a model registry attached (Config.Registry), the daemon also serves
// the model lifecycle: /models lists stored bank versions and the active
// one, /models/promote and /models/rollback hot-swap the serving bank with
// zero downtime, /models/export captures the active bank as a vptrain-style
// gob, and a drift monitor plus retrainer (Config.Drift, Config.Retrainer)
// close the paper's §5.3 detect→retrain→redeploy loop automatically.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"net/netip"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"videoplat/internal/drift"
	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/flowtable"
	"videoplat/internal/obs"
	"videoplat/internal/pipeline"
	"videoplat/internal/registry"
	"videoplat/internal/telemetry"
)

// Config tunes the daemon. Zero values select production-ish defaults.
type Config struct {
	// Addr is the operations API listen address (default "127.0.0.1:8080";
	// use ":0" to let the kernel pick a free port, e.g. in tests).
	Addr string
	// Shards is the pipeline fan-out width (default GOMAXPROCS).
	Shards int
	// MaxFlows caps tracked flows across all shards (default 65536,
	// divided evenly per shard; <0 = unbounded).
	MaxFlows int
	// IdleTimeout retires flows with no packet for this long, in trace
	// time (default 90s; <0 = never).
	IdleTimeout time.Duration
	// WindowWidth is the tumbling rollup window width (default 1 minute).
	WindowWidth time.Duration
	// Rate paces the replay in packets per wall-clock second (0 = as fast
	// as possible). Pacing is applied per batch, so the burst granularity
	// is min(BatchSize, Rate/20) packets.
	Rate float64
	// BatchSize is how many frames the replay loop reads from the source
	// and dispatches per pipeline batch (default 64; 1 degenerates to
	// per-packet dispatch).
	BatchSize int
	// ShardQueueDepth is the per-shard ingest inbox depth in batch
	// messages (0 = pipeline default).
	ShardQueueDepth int
	// ResultsBuffer is the classified-results channel capacity
	// (0 = pipeline default, scaled by shard count).
	ResultsBuffer int
	// MaxHelloBytes caps per-flow buffered handshake bytes while waiting
	// for a complete ClientHello (0 = pipeline default; <0 = unbounded).
	// Flows over the cap are abandoned and counted as
	// oversized_handshakes in /stats and /metrics.
	MaxHelloBytes int
	// EarlyMinMargin is the PlatformMargin floor for degraded
	// classifications of flows whose hello is encrypted (ECH) or absent
	// (0-RTT) (0 = pipeline default of 0.10; <0 = any margin).
	EarlyMinMargin float64
	// ProviderHint maps a server address to its provider (the IP-to-CDN
	// knowledge of the tap). Nil disables degraded classification: ECH and
	// 0-RTT flows then abstain into the open-set bucket.
	ProviderHint func(addr netip.Addr) (fingerprint.Provider, bool)
	// Sink receives sealed rollup windows (nil = discard). Independent of
	// the Store: windows always reach both.
	Sink telemetry.Sink
	// Store retains sealed rollup windows for the /windows and /query
	// endpoints. Nil selects a default store (1024 windows per tier, with
	// 10x- and 60x-window downsampling tiers); supply one to tune
	// retention, downsampling or persistence (see telemetry.StoreConfig).
	Store *telemetry.Store

	// Registry, if non-nil, enables the model lifecycle API: /models,
	// /models/promote and /models/rollback, and every activation
	// (API-driven or retrainer-driven) hot-swaps the serving pipeline's
	// bank with zero downtime. The caller remains responsible for seeding
	// an empty registry and passing its active bank to New.
	Registry *registry.Registry
	// Drift, if non-nil, observes every classification (the complete
	// stream, not the best-effort Results channel) and surfaces per-
	// classifier verdicts in /stats. When Registry is also set and no
	// Retrainer owns the monitor, the server rebaselines it after each
	// swap so a new bank is judged against its own reference.
	Drift *drift.Monitor
	// Retrainer, if non-nil, runs the drift-triggered retrain loop for the
	// daemon's lifetime: shadow evaluations are fed from the serving
	// path's classifications and promotions hot-swap the bank. The caller
	// should have bound it to Drift via BindMonitor.
	Retrainer *registry.Retrainer

	// Journal receives the daemon's typed ops events (model lifecycle, drift
	// triggers, eviction pressure, sink errors…), served by GET /events and
	// counted in /metrics. Nil selects a private journal with
	// obs.DefaultJournalCapacity and no log mirroring; supply one to share
	// it across subsystems (cmd/vpserve passes the same journal to the
	// retrainer) or to mirror events into a slog logger.
	Journal *obs.Journal

	// EnablePprof serves Go's runtime profiling endpoints under
	// /debug/pprof/ (CPU/heap profiles, goroutine dumps, execution traces).
	// Off by default: profiles expose internals and CPU profiling costs a
	// few percent while running, so turning it on is an explicit operator
	// decision (-pprof).
	EnablePprof bool
	// TraceSampleEvery admits every Nth new flow to lifecycle tracing
	// (default 256; <0 disables tracing entirely). 1 traces every flow —
	// useful in tests, expensive at line rate.
	TraceSampleEvery int
	// TraceRing is how many finished spans /trace retains (default 256).
	TraceRing int
	// TraceSlowest is how many slowest-flow exemplars /trace retains
	// separately (default 16).
	TraceSlowest int
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8080"
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = 65536
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 90 * time.Second
	}
	if c.WindowWidth <= 0 {
		c.WindowWidth = time.Minute
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
}

// Server is the streaming ingest daemon. Create with New, start with Run.
type Server struct {
	cfg     Config
	src     Source
	sharded *pipeline.Sharded
	rollup  *telemetry.Rollup
	store   *telemetry.Store
	obsv    *obs.PipelineObserver
	tracer  *obs.Tracer
	lis     net.Listener
	httpSrv *http.Server

	journal *obs.Journal
	running atomic.Bool // ingest/replay loops started (readiness)

	startWall  time.Time
	packets    atomic.Uint64
	batches    atomic.Uint64
	bytes      atomic.Uint64
	classified atomic.Uint64
	unknown    atomic.Uint64
	finalized  atomic.Uint64 // records that reached the rollup
	swaps      atomic.Uint64 // bank hot-swaps applied to the pipeline

	// verdicts counts finalized flows by pipeline.Verdict, for /stats and
	// the videoplat_flow_verdicts_total metric.
	verdicts [pipeline.NumVerdicts]atomic.Uint64

	// Journal edge-detection state for window-seal health events and shadow
	// delta stamping. lastSealed/lastSinkErrs/lastCompactions/lastCapEvict
	// are touched only from the aggregate goroutine (and finishPipeline,
	// which runs after it exits); lastShadowAgreed/Disagreed only from the
	// rollup enrich hook, serialized under the rollup's lock.
	lastSealed         int
	lastSinkErrs       uint64
	lastCompactions    uint64
	lastCapEvict       uint64
	lastShadowAgreed   uint64
	lastShadowDisagree uint64

	evictions  chan *pipeline.FlowRecord
	replayDone chan struct{}
	aggDone    chan struct{}

	lastTS atomic.Int64 // latest packet timestamp (trace clock), unix nanos

	provMu     sync.Mutex // guards byProvider only (see aggregate)
	byProvider map[string]uint64

	mu         sync.RWMutex
	replayErr  error
	closed     bool
	finalFlows []*pipeline.FlowRecord
}

// New builds a Server over a trained bank and a replay source and binds the
// operations listener, so Addr() is valid before Run is called.
func New(bank *pipeline.Bank, src Source, cfg Config) (*Server, error) {
	cfg.fillDefaults()
	store := cfg.Store
	if store == nil {
		store = telemetry.NewStore(telemetry.StoreConfig{
			Tiers: []time.Duration{10 * cfg.WindowWidth, 60 * cfg.WindowWidth},
		})
	}
	// Every sealed window reaches the queryable store; the configured sink
	// (e.g. a JSONL archive) rides alongside.
	sink := telemetry.Sink(store)
	if cfg.Sink != nil {
		sink = telemetry.MultiSink(store, cfg.Sink)
	}
	s := &Server{
		cfg:    cfg,
		src:    src,
		rollup: telemetry.NewRollup(cfg.WindowWidth, sink),
		store:  store,
		obsv:   obs.NewPipelineObserver(),
		tracer: obs.NewTracer(obs.TracerConfig{
			SampleEvery: cfg.TraceSampleEvery,
			Ring:        cfg.TraceRing,
			Slowest:     cfg.TraceSlowest,
		}),
		journal:    cfg.Journal,
		evictions:  make(chan *pipeline.FlowRecord, 1024),
		replayDone: make(chan struct{}),
		aggDone:    make(chan struct{}),
		byProvider: map[string]uint64{},
	}
	if s.journal == nil {
		s.journal = obs.NewJournal(0, nil)
	}
	// Window-scoped quality gauges (drift score, shadow agreement deltas)
	// are stamped into each window as it seals; the hook runs under the
	// rollup lock and must not call back into the rollup.
	s.rollup.SetEnrich(s.enrichWindow)

	pcfg := pipeline.Config{
		ShardQueueDepth: cfg.ShardQueueDepth,
		ResultsBuffer:   cfg.ResultsBuffer,
		MaxHelloBytes:   cfg.MaxHelloBytes,
		EarlyMinMargin:  cfg.EarlyMinMargin,
		ProviderHint:    cfg.ProviderHint,
		Observer:        s.obsv,
		Tracer:          s.tracer,
		OnEvict: func(rec *pipeline.FlowRecord, _ flowtable.Reason) {
			s.evictions <- rec
		},
	}
	if cfg.Drift != nil || cfg.Retrainer != nil {
		// One hook covers both consumers: the drift monitor sees the
		// complete classification stream, and the retrainer's shadow
		// evaluation samples from it. Runs on shard goroutines; both
		// consumers are concurrency-safe and non-blocking.
		pcfg.OnClassify = func(rec *pipeline.FlowRecord, hs *features.HandshakeInfo) {
			if cfg.Drift != nil {
				cfg.Drift.Observe(rec)
			}
			if cfg.Retrainer != nil {
				cfg.Retrainer.ObserveClassified(rec, hs)
			}
		}
	}
	if cfg.MaxFlows > 0 {
		perShard := cfg.MaxFlows / cfg.Shards
		if perShard < 1 {
			perShard = 1
		}
		pcfg.MaxFlows = perShard
	}
	if cfg.IdleTimeout > 0 {
		pcfg.IdleTimeout = cfg.IdleTimeout
	}
	s.sharded = pipeline.NewShardedWithConfig(bank, cfg.Shards, pcfg)

	if cfg.Registry != nil {
		// Every activation — operator promote/rollback or retrainer
		// promotion — hot-swaps the serving bank. The swap is an atomic
		// pointer store per shard; classification never blocks on it.
		cfg.Registry.OnSwap(func(v *registry.Version) {
			s.sharded.SwapBank(v.Bank)
			s.swaps.Add(1)
			s.journal.Record(obs.EventModelSwap, "serving bank hot-swapped",
				"version", v.Manifest.ID)
			if cfg.Drift != nil && cfg.Retrainer == nil {
				// No retrainer owns the monitor: reset the reference
				// distribution here so the new bank is not judged against
				// the old model's baseline.
				cfg.Drift.Rebaseline()
			}
		})
	}
	if cfg.Drift != nil {
		cfg.Drift.Subscribe(func(st drift.Status) {
			s.journal.Record(obs.EventDriftTrigger, st.Reason,
				"provider", st.Provider.String(),
				"transport", st.Transport.String())
		})
	}

	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.sharded.Close()
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s.lis = lis

	mux := http.NewServeMux()
	for _, rt := range routes {
		mux.HandleFunc(rt.pattern, func(w http.ResponseWriter, r *http.Request) {
			rt.handler(s, w, r)
		})
	}
	s.httpSrv = &http.Server{Handler: mux}
	return s, nil
}

// routes is the complete operations API surface. Registration and the
// documented endpoint list both derive from this table, so a handler cannot
// be added without Endpoints (and the docs/OPERATIONS.md drift test that
// consumes it) seeing it.
var routes = []struct {
	pattern string
	handler func(*Server, http.ResponseWriter, *http.Request)
}{
	{"GET /healthz", (*Server).handleHealthz},
	{"GET /readyz", (*Server).handleReadyz},
	{"GET /events", (*Server).handleEvents},
	{"GET /stats", (*Server).handleStats},
	{"GET /flows", (*Server).handleFlows},
	{"GET /windows", (*Server).handleWindows},
	{"GET /query", (*Server).handleQuery},
	{"GET /metrics", (*Server).handleMetrics},
	{"GET /models", (*Server).handleModels},
	{"POST /models/promote", (*Server).handleModelsPromote},
	{"POST /models/rollback", (*Server).handleModelsRollback},
	{"GET /models/export", (*Server).handleModelsExport},
	{"GET /trace", (*Server).handleTrace},
	{"GET /debug/pprof/", (*Server).handlePprof},
}

// Endpoints lists every operations API route as "METHOD /path" patterns, in
// registration order.
func Endpoints() []string {
	out := make([]string, len(routes))
	for i, rt := range routes {
		out[i] = rt.pattern
	}
	return out
}

// Addr returns the bound operations API address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// ReplayDone is closed when the source is exhausted (or errored), letting a
// caller shut down once a finite replay completes.
func (s *Server) ReplayDone() <-chan struct{} { return s.replayDone }

// Run serves until ctx is cancelled, then shuts down gracefully: the replay
// stops, the shards drain, residual flows are rolled up, the final partial
// window is flushed to the sink, and the HTTP server closes. Run returns
// nil on a clean shutdown.
func (s *Server) Run(ctx context.Context) error {
	s.startWall = time.Now()

	go s.aggregate()
	replayCtx, cancelReplay := context.WithCancel(ctx)
	defer cancelReplay()
	go s.replay(replayCtx)
	s.running.Store(true) // ingest machinery is live: readiness can pass
	if s.cfg.Retrainer != nil {
		go s.cfg.Retrainer.Start(replayCtx) // training never runs on the serving path
	}

	httpErr := make(chan error, 1)
	go func() { httpErr <- s.httpSrv.Serve(s.lis) }()

	select {
	case <-ctx.Done():
	case err := <-httpErr:
		cancelReplay()
		<-s.replayDone
		s.finishPipeline()
		return fmt.Errorf("server: http: %w", err)
	}

	cancelReplay()
	<-s.replayDone
	s.finishPipeline()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("server: http: %w", err)
	}
	return nil
}

// finishPipeline drains the shards and rolls up whatever flow state
// remains, so a finite replay's telemetry is complete at exit.
func (s *Server) finishPipeline() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	s.sharded.Close()  // drains queued packets; evictions may still fire
	close(s.evictions) // shard workers are done: no more OnEvict calls
	<-s.aggDone

	if c, ok := s.src.(io.Closer); ok {
		c.Close() // replay goroutine has exited; release e.g. the capture fd
	}

	residual := s.sharded.Flows()
	if residual == nil {
		residual = []*pipeline.FlowRecord{} // non-nil: /flows treats nil as "draining"
	}
	for _, rec := range residual {
		if rec.Verdict == pipeline.VerdictPending {
			// Still open at shutdown with no completed handshake; this is
			// its finalization, so resolve the verdict.
			rec.Verdict = pipeline.VerdictNoHandshake
		}
		s.addToRollup(rec)
		s.finalized.Add(1)
	}
	s.rollup.Flush()
	if sealed := s.rollup.Sealed(); sealed != s.lastSealed {
		s.lastSealed = sealed
		s.sealHealthEvents()
	}

	s.mu.Lock()
	s.finalFlows = residual
	s.mu.Unlock()
}

// replay streams the source through the sharded pipeline in batches of up
// to cfg.BatchSize frames, pacing to cfg.Rate packets/sec when set. Each
// batch is one HandlePacketBatch call — one decode per frame on this
// goroutine and one channel send per shard, the parse-once ingest contract.
func (s *Server) replay(ctx context.Context) {
	defer close(s.replayDone)
	var interval time.Duration
	if s.cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / s.cfg.Rate)
	}
	size := s.effectiveBatchSize()
	batch := make([]pipeline.IngestPacket, 0, size)
	next := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		batch = batch[:0]
		var srcErr error
		for len(batch) < size {
			pkt, err := s.src.Next()
			if err != nil {
				srcErr = err
				break
			}
			batch = append(batch, pipeline.IngestPacket{TS: pkt.Timestamp, Data: pkt.Data})
			s.bytes.Add(uint64(len(pkt.Data)))
			if ns := pkt.Timestamp.UnixNano(); ns > s.lastTS.Load() {
				s.lastTS.Store(ns)
			}
		}
		if len(batch) > 0 {
			s.sharded.HandlePacketBatch(batch)
			s.packets.Add(uint64(len(batch)))
			s.batches.Add(1)
		}
		if srcErr != nil {
			if srcErr != io.EOF {
				s.mu.Lock()
				s.replayErr = srcErr
				s.mu.Unlock()
			}
			return
		}
		if interval > 0 {
			next = next.Add(interval * time.Duration(len(batch)))
			if wait := time.Until(next); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return
				}
			} else if wait < -time.Second {
				next = time.Now() // fell behind; don't burst to catch up
			}
		}
	}
}

// effectiveBatchSize is the frames-per-batch the replay loop actually uses:
// cfg.BatchSize, capped for rate-limited replays so a batch bursts at most
// ~50ms of the pacing budget at a time, keeping low rates smooth.
func (s *Server) effectiveBatchSize() int {
	size := s.cfg.BatchSize
	if s.cfg.Rate > 0 {
		if perTick := int(s.cfg.Rate / 20); perTick < size {
			size = max(perTick, 1)
		}
	}
	return size
}

// aggregate consumes classification results (live counters) and evicted
// flows (final telemetry → rollup) until both channels close.
func (s *Server) aggregate() {
	defer close(s.aggDone)
	results := s.sharded.Results()
	evictions := s.evictions
	for results != nil || evictions != nil {
		select {
		case rec, ok := <-results:
			if !ok {
				results = nil
				continue
			}
			if rec.Prediction.Status == pipeline.Unknown {
				s.unknown.Add(1)
				continue
			}
			s.classified.Add(1)
			// byProvider has its own mutex: aggregate must never wait on
			// s.mu, which /flows holds across a shard snapshot — a shard
			// blocked on a full evictions buffer would deadlock otherwise.
			s.provMu.Lock()
			s.byProvider[rec.Provider.String()]++
			s.provMu.Unlock()
		case rec, ok := <-evictions:
			if !ok {
				evictions = nil
				continue
			}
			s.addToRollup(rec)
			s.finalized.Add(1)
		}
	}
}

// addToRollup commits one finalized record to the rollup, timed as the
// pipeline's rollup stage, and counts its verdict. When the add seals a
// window, pipeline-health deltas (sink errors, store compactions, flow-table
// cap pressure) are checked and journaled — once per sealed window, not per
// flow, so the checks stay off the per-record path.
func (s *Server) addToRollup(rec *pipeline.FlowRecord) {
	t0 := time.Now()
	if v := int(rec.Verdict); v < len(s.verdicts) {
		s.verdicts[v].Add(1)
	}
	s.rollup.Add(rec)
	s.obsv.Record(obs.StageRollup, time.Since(t0))
	if sealed := s.rollup.Sealed(); sealed != s.lastSealed {
		s.lastSealed = sealed
		s.sealHealthEvents()
	}
}

// Stats is the /stats document.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Replay struct {
		Packets        uint64    `json:"packets"`
		Bytes          uint64    `json:"bytes"`
		PacketsPerSec  float64   `json:"packets_per_sec"`
		LastPacketTime time.Time `json:"last_packet_time"`
		Done           bool      `json:"done"`
		Error          string    `json:"error,omitempty"`
	} `json:"replay"`

	FlowTable      flowtable.Stats `json:"flow_table"`
	DroppedResults uint64          `json:"dropped_results"`

	// Ingest reports the batched parse-once ingest path's counters.
	Ingest struct {
		// BatchSize is the effective frames-per-batch of the replay loop
		// (the configured size, capped for rate-limited replays).
		BatchSize int `json:"batch_size"`
		// Batches counts dispatched ingest batches.
		Batches uint64 `json:"batches"`
		// IgnoredFrames counts frames dropped at ingest (failed to parse
		// or not TCP/UDP — no flow to route).
		IgnoredFrames uint64 `json:"ignored_frames"`
		// FilteredFrames counts decodable flows dropped at ingest by the
		// port-443 video filter.
		FilteredFrames uint64 `json:"filtered_frames"`
		// Stalls counts ingest submissions that blocked on a full shard
		// inbox (backpressure, not loss).
		Stalls uint64 `json:"stalls"`
		// OversizedHandshakes counts flows abandoned because their
		// buffered handshake bytes exceeded the MaxHelloBytes cap.
		OversizedHandshakes uint64 `json:"oversized_handshakes"`
		// Migrations counts QUIC connection migrations absorbed by CID
		// re-keying (each is a flow whose 5-tuple changed mid-connection).
		Migrations uint64 `json:"migrations"`
		// EarlyClassified counts flows classified from partial handshake
		// evidence (ECH or 0-RTT) via the provider hint + margin gate.
		EarlyClassified uint64 `json:"early_classified"`
		// QueueDepths is the live per-shard ingest inbox occupancy in batch
		// messages; QueueCapacity is each inbox's capacity. Sustained
		// near-capacity depths mean the shards can't keep up (see Stalls).
		QueueDepths   []int `json:"queue_depths"`
		QueueCapacity int   `json:"queue_capacity"`
		// ResultsBuffered/ResultsCapacity is the classified-results channel's
		// live occupancy; a full buffer is where DroppedResults come from.
		ResultsBuffered int `json:"results_buffered"`
		ResultsCapacity int `json:"results_capacity"`
	} `json:"ingest"`

	// Latency is the per-stage pipeline latency digest (count, mean and
	// p50/p90/p99/max per stage) since process start. GET /trace serves
	// per-flow exemplars behind the same stages.
	Latency []obs.StageStats `json:"latency"`

	// Trace reports the flow-lifecycle sampler's counters; the spans
	// themselves are served by GET /trace.
	Trace struct {
		// SampleEvery is the 1-in-N admission rate (<0 = tracing disabled).
		SampleEvery int `json:"sample_every"`
		// Offered counts flows seen by the sampler, Admitted spans started,
		// Finished spans completed.
		Offered  uint64 `json:"offered"`
		Admitted uint64 `json:"admitted"`
		Finished uint64 `json:"finished"`
	} `json:"trace"`

	// Runtime is the Go runtime's live gauges (goroutines, heap, GC pauses).
	Runtime obs.RuntimeStats `json:"runtime"`
	// Build identifies the running binary (Go version, module version, VCS
	// revision when stamped).
	Build obs.BuildInfo `json:"build"`

	// Config echoes the effective daemon configuration after defaulting, so
	// an operator can confirm what a running instance is actually doing.
	Config struct {
		Shards           int     `json:"shards"`
		MaxFlows         int     `json:"max_flows"`
		BatchSize        int     `json:"batch_size"`
		WindowSeconds    float64 `json:"window_seconds"`
		TraceSampleEvery int     `json:"trace_sample_every"`
		PprofEnabled     bool    `json:"pprof_enabled"`
	} `json:"config"`

	ClassifiedFlows uint64            `json:"classified_flows"`
	UnknownFlows    uint64            `json:"unknown_flows"`
	FinalizedFlows  uint64            `json:"finalized_flows"`
	ByProvider      map[string]uint64 `json:"classified_by_provider"`
	// FlowVerdicts counts finalized flows by terminal verdict (classified,
	// abstained, no-handshake, …) — the decision-quality taxonomy.
	FlowVerdicts map[string]uint64 `json:"flow_verdicts,omitempty"`

	// Events summarizes the ops event journal; the events themselves are
	// served by GET /events.
	Events obs.JournalStats `json:"events"`

	Rollup struct {
		WindowSeconds float64 `json:"window_seconds"`
		Sealed        int     `json:"sealed_windows"`
		// SinkError is the first sink write failure; SinkErrors counts
		// every failure, so later errors are no longer invisible.
		SinkError  string               `json:"sink_error,omitempty"`
		SinkErrors uint64               `json:"sink_errors,omitempty"`
		Current    *telemetry.Window    `json:"current_window,omitempty"`
		Store      telemetry.StoreStats `json:"store"`
	} `json:"rollup"`

	// Models reports the serving bank's identity and, with a registry
	// attached, the lifecycle state.
	Models ModelsStats `json:"models"`
	// Drift lists per-classifier drift verdicts when a monitor is attached.
	Drift []drift.Status `json:"drift,omitempty"`
}

// ModelsStats is the /stats models section.
type ModelsStats struct {
	// ActiveVersion is the registry version of the serving bank
	// ("unversioned" for ad-hoc banks).
	ActiveVersion string `json:"active_version"`
	// Swaps counts bank hot-swaps applied to the pipeline since start.
	Swaps uint64 `json:"swaps"`
	// Versions is how many versions the registry stores (0 without one).
	Versions int `json:"versions,omitempty"`
	// Retrainer is the auto-retrain loop's state, when one is running.
	Retrainer *registry.Status `json:"retrainer,omitempty"`
	// Compiled is the serving bank's compiled-forest footprint: how many
	// models lowered into flat node arrays, their flattened node count, and
	// the resident bytes the compiled serving index pins.
	Compiled pipeline.CompiledFootprint `json:"compiled"`
}

// Snapshot assembles the current Stats. Safe from any goroutine.
func (s *Server) Snapshot() Stats {
	var st Stats
	uptime := time.Since(s.startWall).Seconds()
	st.UptimeSeconds = uptime
	st.Replay.Packets = s.packets.Load()
	st.Replay.Bytes = s.bytes.Load()
	if uptime > 0 {
		st.Replay.PacketsPerSec = float64(st.Replay.Packets) / uptime
	}
	select {
	case <-s.replayDone:
		st.Replay.Done = true
	default:
	}
	st.FlowTable = s.sharded.TableStats()
	ing := s.sharded.IngestStats()
	st.DroppedResults = ing.DroppedResults
	st.Ingest.BatchSize = s.effectiveBatchSize()
	st.Ingest.Batches = s.batches.Load()
	st.Ingest.IgnoredFrames = ing.Ignored
	st.Ingest.FilteredFrames = ing.Filtered
	st.Ingest.Stalls = ing.Stalls
	st.Ingest.OversizedHandshakes = ing.OversizedHandshakes
	st.Ingest.Migrations = ing.Migrations
	st.Ingest.EarlyClassified = ing.EarlyClassified
	st.Ingest.QueueDepths = s.sharded.QueueDepths()
	st.Ingest.QueueCapacity = s.sharded.QueueCapacity()
	st.Ingest.ResultsBuffered = s.sharded.ResultsBuffered()
	st.Ingest.ResultsCapacity = s.sharded.ResultsCapacity()
	st.Latency = s.obsv.StageStats()
	tsnap := s.tracer.Snapshot(1) // counters only; spans served by /trace
	st.Trace.SampleEvery = tsnap.SampleEvery
	st.Trace.Offered = tsnap.Offered
	st.Trace.Admitted = tsnap.Admitted
	st.Trace.Finished = tsnap.Finished
	st.Runtime = obs.ReadRuntimeStats()
	st.Build = obs.ReadBuildInfo()
	st.Config.Shards = s.cfg.Shards
	st.Config.MaxFlows = s.cfg.MaxFlows
	st.Config.BatchSize = s.cfg.BatchSize
	st.Config.WindowSeconds = s.cfg.WindowWidth.Seconds()
	st.Config.TraceSampleEvery = tsnap.SampleEvery
	st.Config.PprofEnabled = s.cfg.EnablePprof
	st.ClassifiedFlows = s.classified.Load()
	st.UnknownFlows = s.unknown.Load()
	st.FinalizedFlows = s.finalized.Load()
	st.FlowVerdicts = s.verdictCounts()
	st.Events = s.journal.Stats()
	st.Rollup.WindowSeconds = s.rollup.Width().Seconds()
	st.Rollup.Sealed = s.rollup.Sealed()
	if err := s.rollup.Err(); err != nil {
		st.Rollup.SinkError = err.Error()
	}
	st.Rollup.SinkErrors = s.rollup.SinkErrors()
	st.Rollup.Current = s.rollup.Current()
	st.Rollup.Store = s.store.Stats()

	st.Models.ActiveVersion = s.activeVersion()
	st.Models.Swaps = s.swaps.Load()
	st.Models.Compiled = s.sharded.Bank().CompiledFootprint()
	if s.cfg.Registry != nil {
		st.Models.Versions = len(s.cfg.Registry.List())
	}
	if s.cfg.Retrainer != nil {
		rst := s.cfg.Retrainer.Status()
		st.Models.Retrainer = &rst
	}
	if s.cfg.Drift != nil {
		st.Drift = s.cfg.Drift.Statuses()
	}

	if ns := s.lastTS.Load(); ns != 0 {
		st.Replay.LastPacketTime = time.Unix(0, ns).UTC()
	}
	s.mu.RLock()
	if s.replayErr != nil {
		st.Replay.Error = s.replayErr.Error()
	}
	s.mu.RUnlock()
	s.provMu.Lock()
	st.ByProvider = make(map[string]uint64, len(s.byProvider))
	for k, v := range s.byProvider {
		st.ByProvider[k] = v
	}
	s.provMu.Unlock()
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.startWall).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Snapshot())
}

// flowSummary is one /flows row.
type flowSummary struct {
	Src        string  `json:"src"`
	Dst        string  `json:"dst"`
	Transport  string  `json:"transport"`
	Provider   string  `json:"provider,omitempty"`
	SNI        string  `json:"sni,omitempty"`
	Classified bool    `json:"classified"`
	Platform   string  `json:"platform,omitempty"`
	DurationS  float64 `json:"duration_seconds"`
	BytesDown  int64   `json:"bytes_down"`
	BytesUp    int64   `json:"bytes_up"`
	MbpsDown   float64 `json:"mbps_down"`
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}

	// The read lock is held across the live snapshot: finishPipeline flips
	// closed under the write lock before closing shard channels, so no
	// snapshot can race Close.
	s.mu.RLock()
	var recs []*pipeline.FlowRecord
	draining := false
	if s.closed {
		// finalFlows is nil only while finishPipeline is still draining
		// the shards; afterwards it is always non-nil (possibly empty).
		recs, draining = s.finalFlows, s.finalFlows == nil
	} else {
		recs = s.sharded.SnapshotFlows()
	}
	s.mu.RUnlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}

	out := struct {
		Active int           `json:"active_flows"`
		Flows  []flowSummary `json:"flows"`
	}{Active: len(recs), Flows: []flowSummary{}}
	for _, rec := range recs {
		if len(out.Flows) >= limit {
			break
		}
		fs := flowSummary{
			Src:        fmt.Sprintf("%s:%d", rec.Key.Src, rec.Key.SrcPort),
			Dst:        fmt.Sprintf("%s:%d", rec.Key.Dst, rec.Key.DstPort),
			Transport:  rec.Transport.String(),
			SNI:        rec.SNI,
			Classified: rec.Classified,
			DurationS:  rec.Duration().Seconds(),
			BytesDown:  rec.BytesDown,
			BytesUp:    rec.BytesUp,
			MbpsDown:   rec.MbpsDown(),
		}
		if rec.SNI != "" {
			fs.Provider = rec.Provider.String()
		}
		if rec.Classified {
			fs.Platform = rec.Prediction.Platform
		}
		out.Flows = append(out.Flows, fs)
	}
	writeJSON(w, out)
}

// activeVersion names the bank currently serving classifications.
func (s *Server) activeVersion() string {
	if v := s.sharded.Bank().Version; v != "" {
		return v
	}
	return "unversioned"
}

// handleModels lists stored versions and the active one. Without a registry
// it still reports the serving bank's identity, with an empty history.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Active   string                     `json:"active"`
		Swaps    uint64                     `json:"swaps"`
		Compiled pipeline.CompiledFootprint `json:"compiled"`
		History  []string                   `json:"history,omitempty"`
		Versions []registry.Manifest        `json:"versions"`
	}{
		Active:   s.activeVersion(),
		Swaps:    s.swaps.Load(),
		Compiled: s.sharded.Bank().CompiledFootprint(),
		Versions: []registry.Manifest{},
	}
	if s.cfg.Registry != nil {
		out.History = s.cfg.Registry.History()
		out.Versions = s.cfg.Registry.List()
	}
	writeJSON(w, out)
}

func (s *Server) handleModelsPromote(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Registry == nil {
		http.Error(w, "no model registry configured (-registry-dir)", http.StatusConflict)
		return
	}
	id := r.URL.Query().Get("version")
	if id == "" {
		http.Error(w, "missing ?version=", http.StatusBadRequest)
		return
	}
	v, err := s.cfg.Registry.Promote(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.journal.Record(obs.EventModelPromote, "operator promoted bank version",
		"version", v.Manifest.ID)
	writeJSON(w, v.Manifest)
}

func (s *Server) handleModelsRollback(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Registry == nil {
		http.Error(w, "no model registry configured (-registry-dir)", http.StatusConflict)
		return
	}
	v, err := s.cfg.Registry.Rollback()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.journal.Record(obs.EventModelRollback, "operator rolled back to prior bank version",
		"version", v.Manifest.ID)
	writeJSON(w, v.Manifest)
}

// handleModelsExport streams the active bank as the same gob format vptrain
// writes and -model loads, so an operator can capture a running system's
// model (e.g. a retrained version that exists only in the registry) for
// offline analysis or seeding another deployment.
func (s *Server) handleModelsExport(w http.ResponseWriter, _ *http.Request) {
	bank := s.sharded.Bank()
	blob, err := bank.MarshalBinary()
	if err != nil {
		http.Error(w, fmt.Sprintf("serializing bank: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", s.activeVersion()+".bank.gob"))
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.Write(blob)
}

// handleTrace serves the flow-lifecycle tracer's snapshot: sampler counters,
// the most recently finished spans (?limit= caps them, default 32) and the
// slowest-flow exemplars.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	limit := 32
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	writeJSON(w, s.tracer.Snapshot(limit))
}

// handlePprof dispatches /debug/pprof/* to Go's runtime profilers when the
// operator opted in with -pprof, and 404s otherwise so the profiling surface
// simply does not exist on un-flagged deployments.
func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnablePprof {
		http.NotFound(w, r)
		return
	}
	switch name := strings.TrimPrefix(r.URL.Path, "/debug/pprof/"); name {
	case "":
		netpprof.Index(w, r)
	case "cmdline":
		netpprof.Cmdline(w, r)
	case "profile":
		netpprof.Profile(w, r)
	case "symbol":
		netpprof.Symbol(w, r)
	case "trace":
		netpprof.Trace(w, r)
	default:
		netpprof.Handler(name).ServeHTTP(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
