package server

import (
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pcap"
	"videoplat/internal/tracegen"
)

// Source streams timestamped frames into the daemon: a pcap/pcapng replay
// or synthetic traffic. Next returns io.EOF when the source is exhausted.
// Sources need not be safe for concurrent use; the replay loop is the only
// reader. Each returned Packet's Data must stay valid across subsequent
// Next calls — the batched replay loop accumulates up to a batch of
// packets before the pipeline copies them — so sources must not reuse a
// read buffer between calls. A Source that also implements io.Closer is
// closed by the Server at shutdown, whether or not the replay reached EOF.
type Source interface {
	Next() (pcap.Packet, error)
}

// fileSource replays a capture file. The Server closes it at shutdown (see
// the io.Closer note on Source), covering replays cancelled before EOF.
type fileSource struct {
	f *os.File
	r interface{ Next() (pcap.Packet, error) }
}

// OpenFileSource opens a pcap or pcapng file as a Source.
func OpenFileSource(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := pcap.OpenReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("server: opening capture %s: %w", path, err)
	}
	return &fileSource{f: f, r: r}, nil
}

func (s *fileSource) Next() (pcap.Packet, error) { return s.r.Next() }

// Close releases the underlying capture file.
func (s *fileSource) Close() error { return s.f.Close() }

// SynthSource renders tracegen video sessions on the fly — a load generator
// for soak-testing the daemon without a capture file. Sessions start at
// 30-second intervals of trace time, mirroring cmd/vpgen.
type SynthSource struct {
	g           *tracegen.Generator
	rng         *rand.Rand
	start       time.Time
	sessions    int // remaining sessions to render
	rendered    int
	driftAfter  int     // sessions after which profiles drift (0 = never)
	adversarial float64 // fraction of sessions rendered with an adversarial scenario
	queue       []pcap.Packet
}

// SetAdversarial makes the given fraction of subsequent sessions render with
// one adversarial handshake scenario — ECH, QUIC 0-RTT resumption or
// connection migration, chosen uniformly — exercising the daemon's degraded
// classification and flow re-keying paths under load.
func (s *SynthSource) SetAdversarial(fraction float64) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	s.adversarial = fraction
}

// NewSynthSource returns a Source producing n synthetic video sessions
// (io.EOF afterwards; n <= 0 means unlimited).
func NewSynthSource(seed uint64, n int) *SynthSource {
	if n <= 0 {
		n = int(^uint(0) >> 1) // effectively unlimited
	}
	return &SynthSource{
		g:        tracegen.New(seed),
		rng:      rand.New(rand.NewPCG(seed, 2)),
		start:    time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC),
		sessions: n,
	}
}

// NewDriftingSynthSource is NewSynthSource with an injected fleet update:
// from session driftAfter on, flows are rendered with the open-set profile
// perturbation (same devices, newer OS/app versions), reproducing the
// concept drift of the paper's §5.3 under live load — the scenario the
// drift monitor and retrainer exist for.
func NewDriftingSynthSource(seed uint64, n, driftAfter int) *SynthSource {
	s := NewSynthSource(seed, n)
	s.driftAfter = driftAfter
	return s
}

func (s *SynthSource) Next() (pcap.Packet, error) {
	for {
		// Render the next session as soon as the queue head would pass its
		// start time, so concurrent sessions genuinely overlap and emitted
		// timestamps stay monotonic (a session's frames span minutes,
		// well past the next session's 30-second-later start).
		nextBase := s.start.Add(time.Duration(s.rendered) * 30 * time.Second)
		if s.sessions > 0 && (len(s.queue) == 0 || !s.queue[0].Timestamp.Before(nextBase)) {
			if err := s.renderSession(); err != nil {
				return pcap.Packet{}, err
			}
			continue
		}
		if len(s.queue) == 0 {
			return pcap.Packet{}, io.EOF
		}
		pkt := s.queue[0]
		s.queue = s.queue[1:]
		return pkt, nil
	}
}

func (s *SynthSource) renderSession() error {
	provs := fingerprint.AllProviders()
	prov := provs[s.rng.IntN(len(provs))]
	var labels []string
	for _, l := range fingerprint.AllPlatformLabels() {
		if fingerprint.SupportMatrix(l, prov) {
			labels = append(labels, l)
		}
	}
	label := labels[s.rng.IntN(len(labels))]
	opts := fingerprint.Options{OpenSet: s.driftAfter > 0 && s.rendered >= s.driftAfter}
	if s.adversarial > 0 && s.rng.Float64() < s.adversarial {
		switch s.rng.IntN(3) {
		case 0:
			opts.ECH = true
		case 1:
			opts.ZeroRTT = true
		default:
			opts.Migration = true
		}
	}
	flows, err := s.g.Session(label, prov, opts)
	if err != nil {
		return fmt.Errorf("server: rendering session: %w", err)
	}
	base := s.start.Add(time.Duration(s.rendered) * 30 * time.Second)
	n := 0
	for _, ft := range flows {
		n += len(ft.Frames)
	}
	session := make([]pcap.Packet, 0, n)
	for _, ft := range flows {
		for _, fr := range ft.Frames {
			session = append(session, pcap.Packet{
				Timestamp: base.Add(fr.Offset),
				Data:      fr.Data,
				OrigLen:   len(fr.Data),
			})
		}
	}
	// Sort only the new session, then merge it into the (always-sorted)
	// queue: a full-queue re-sort per session is quadratic over a long soak
	// replay. Ties keep queue-before-session and session append order —
	// exactly what the former sort.SliceStable over the concatenation
	// produced — so Next() output stays byte-identical for a fixed seed.
	sort.SliceStable(session, func(i, j int) bool {
		return session[i].Timestamp.Before(session[j].Timestamp)
	})
	s.queue = mergeByTime(s.queue, session)
	s.rendered++
	s.sessions--
	return nil
}

// mergeByTime merges two timestamp-sorted packet runs, preferring queue on
// ties so the merge is stable with queue first.
func mergeByTime(queue, session []pcap.Packet) []pcap.Packet {
	if len(queue) == 0 {
		return session
	}
	if len(session) == 0 {
		return queue
	}
	out := make([]pcap.Packet, 0, len(queue)+len(session))
	i, j := 0, 0
	for i < len(queue) && j < len(session) {
		if session[j].Timestamp.Before(queue[i].Timestamp) {
			out = append(out, session[j])
			j++
		} else {
			out = append(out, queue[i])
			i++
		}
	}
	out = append(out, queue[i:]...)
	return append(out, session[j:]...)
}
