package server

import (
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/pcap"
	"videoplat/internal/tracegen"
)

// Source streams timestamped frames into the daemon: a pcap/pcapng replay
// or synthetic traffic. Next returns io.EOF when the source is exhausted.
// Sources need not be safe for concurrent use; the replay loop is the only
// reader. A Source that also implements io.Closer is closed by the Server
// at shutdown, whether or not the replay reached EOF.
type Source interface {
	Next() (pcap.Packet, error)
}

// fileSource replays a capture file. The Server closes it at shutdown (see
// the io.Closer note on Source), covering replays cancelled before EOF.
type fileSource struct {
	f *os.File
	r interface{ Next() (pcap.Packet, error) }
}

// OpenFileSource opens a pcap or pcapng file as a Source.
func OpenFileSource(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := pcap.OpenReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("server: opening capture %s: %w", path, err)
	}
	return &fileSource{f: f, r: r}, nil
}

func (s *fileSource) Next() (pcap.Packet, error) { return s.r.Next() }

// Close releases the underlying capture file.
func (s *fileSource) Close() error { return s.f.Close() }

// SynthSource renders tracegen video sessions on the fly — a load generator
// for soak-testing the daemon without a capture file. Sessions start at
// 30-second intervals of trace time, mirroring cmd/vpgen.
type SynthSource struct {
	g          *tracegen.Generator
	rng        *rand.Rand
	start      time.Time
	sessions   int // remaining sessions to render
	rendered   int
	driftAfter int // sessions after which profiles drift (0 = never)
	queue      []pcap.Packet
}

// NewSynthSource returns a Source producing n synthetic video sessions
// (io.EOF afterwards; n <= 0 means unlimited).
func NewSynthSource(seed uint64, n int) *SynthSource {
	if n <= 0 {
		n = int(^uint(0) >> 1) // effectively unlimited
	}
	return &SynthSource{
		g:        tracegen.New(seed),
		rng:      rand.New(rand.NewPCG(seed, 2)),
		start:    time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC),
		sessions: n,
	}
}

// NewDriftingSynthSource is NewSynthSource with an injected fleet update:
// from session driftAfter on, flows are rendered with the open-set profile
// perturbation (same devices, newer OS/app versions), reproducing the
// concept drift of the paper's §5.3 under live load — the scenario the
// drift monitor and retrainer exist for.
func NewDriftingSynthSource(seed uint64, n, driftAfter int) *SynthSource {
	s := NewSynthSource(seed, n)
	s.driftAfter = driftAfter
	return s
}

func (s *SynthSource) Next() (pcap.Packet, error) {
	for {
		// Render the next session as soon as the queue head would pass its
		// start time, so concurrent sessions genuinely overlap and emitted
		// timestamps stay monotonic (a session's frames span minutes,
		// well past the next session's 30-second-later start).
		nextBase := s.start.Add(time.Duration(s.rendered) * 30 * time.Second)
		if s.sessions > 0 && (len(s.queue) == 0 || !s.queue[0].Timestamp.Before(nextBase)) {
			if err := s.renderSession(); err != nil {
				return pcap.Packet{}, err
			}
			continue
		}
		if len(s.queue) == 0 {
			return pcap.Packet{}, io.EOF
		}
		pkt := s.queue[0]
		s.queue = s.queue[1:]
		return pkt, nil
	}
}

func (s *SynthSource) renderSession() error {
	provs := fingerprint.AllProviders()
	prov := provs[s.rng.IntN(len(provs))]
	var labels []string
	for _, l := range fingerprint.AllPlatformLabels() {
		if fingerprint.SupportMatrix(l, prov) {
			labels = append(labels, l)
		}
	}
	label := labels[s.rng.IntN(len(labels))]
	opts := fingerprint.Options{OpenSet: s.driftAfter > 0 && s.rendered >= s.driftAfter}
	flows, err := s.g.Session(label, prov, opts)
	if err != nil {
		return fmt.Errorf("server: rendering session: %w", err)
	}
	base := s.start.Add(time.Duration(s.rendered) * 30 * time.Second)
	for _, ft := range flows {
		for _, fr := range ft.Frames {
			s.queue = append(s.queue, pcap.Packet{
				Timestamp: base.Add(fr.Offset),
				Data:      fr.Data,
				OrigLen:   len(fr.Data),
			})
		}
	}
	sort.SliceStable(s.queue, func(i, j int) bool {
		return s.queue[i].Timestamp.Before(s.queue[j].Timestamp)
	})
	s.rendered++
	s.sessions--
	return nil
}
