package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"videoplat/internal/telemetry"
)

// TestQueryConsistentWithSealedJSONL is the acceptance check for the
// queryable store: after a finite replay, /query totals must be exactly the
// totals of the sealed JSONL windows — same flow counts, same byte counts,
// per provider — and /windows must list every sealed window.
func TestQueryConsistentWithSealedJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	var sinkBuf bytes.Buffer
	srv, err := New(trainBank(t), NewSynthSource(3, 30), Config{
		Addr:        "127.0.0.1:0",
		Shards:      4,
		WindowWidth: time.Minute,
		Sink:        telemetry.NewJSONLSink(&sinkBuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	base := "http://" + srv.Addr()

	select {
	case <-srv.ReplayDone():
	case <-time.After(60 * time.Second):
		t.Fatal("replay did not finish")
	}
	// The HTTP surface serves the same store (exhaustively exercised in
	// TestWindowsAndQueryEndpoints); here just confirm it answers.
	var viaHTTP telemetry.QueryResult
	getJSON(t, base+"/query?by=provider", &viaHTTP)

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}

	// Ground truth: per-provider sums over every sealed JSONL window.
	type agg struct {
		flows, classified int
		bytesDown, up     int64
		watch             float64
	}
	want := map[string]*agg{}
	sealed := 0
	sc := bufio.NewScanner(&sinkBuf)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		var w telemetry.Window
		if err := json.Unmarshal(sc.Bytes(), &w); err != nil {
			t.Fatalf("bad sink line: %v", err)
		}
		sealed++
		for prov, c := range w.ByProvider {
			a := want[prov]
			if a == nil {
				a = &agg{}
				want[prov] = a
			}
			a.flows += c.Flows
			a.classified += c.ClassifiedFlows
			a.bytesDown += c.BytesDown
			a.up += c.BytesUp
			a.watch += c.WatchSeconds
		}
	}
	if sealed == 0 {
		t.Fatal("no sealed windows")
	}

	// The store saw the same windows the sink did (MultiSink fan-out), so
	// a full-history query must reproduce the sums exactly.
	res, err := srv.Store().Query(time.Time{}, time.Time{}, 0, telemetry.GroupProvider)
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceWindows != sealed {
		t.Fatalf("query scanned %d windows, sink sealed %d", res.SourceWindows, sealed)
	}
	got := map[string]*agg{}
	for _, sr := range res.Series {
		a := &agg{}
		for _, p := range sr.Points {
			a.flows += p.Flows
			a.classified += p.ClassifiedFlows
			a.bytesDown += p.BytesDown
			a.up += p.BytesUp
			a.watch += p.WatchSeconds
		}
		got[sr.Key] = a
	}
	if len(got) != len(want) {
		t.Fatalf("providers: query %v, sink %v", keysOf(got), keysOf(want))
	}
	for prov, w := range want {
		g := got[prov]
		if g == nil {
			t.Errorf("provider %s missing from query", prov)
			continue
		}
		if *g != *w {
			t.Errorf("provider %s: query %+v != sink %+v", prov, *g, *w)
		}
	}

	// Totals are invariant under step/group choice: a coarse total query
	// reports the same flow/byte sums.
	total, err := srv.Store().Query(time.Time{}, time.Time{}, time.Hour, telemetry.GroupTotal)
	if err != nil {
		t.Fatal(err)
	}
	var tf int
	var tb int64
	for _, p := range total.Series[0].Points {
		tf += p.Flows
		tb += p.BytesDown
	}
	var wf int
	var wb int64
	for _, a := range want {
		wf += a.flows
		wb += a.bytesDown
	}
	if tf != wf || tb != wb {
		t.Errorf("total query = %d flows / %d bytes, sink = %d / %d", tf, tb, wf, wb)
	}

}

func keysOf[V any](m map[string]*V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWindowsAndQueryEndpoints exercises the HTTP parameter surface:
// ranges, steps, tiers, limits and error paths.
func TestWindowsAndQueryEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	srv, err := New(trainBank(t), NewSynthSource(7, 20), Config{
		Addr:        "127.0.0.1:0",
		Shards:      2,
		WindowWidth: time.Minute,
		Store: telemetry.NewStore(telemetry.StoreConfig{
			Tiers: []time.Duration{5 * time.Minute},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	defer func() {
		cancel()
		if err := <-runErr; err != nil {
			t.Fatalf("run: %v", err)
		}
	}()
	base := "http://" + srv.Addr()

	select {
	case <-srv.ReplayDone():
	case <-time.After(60 * time.Second):
		t.Fatal("replay did not finish")
	}
	// The aggregate goroutine drains eviction-driven rollups shortly after
	// the source is exhausted; wait for the first sealed windows to land.
	deadline := time.After(30 * time.Second)
	for srv.Store().Stats().Tiers[0].Windows == 0 {
		select {
		case <-deadline:
			t.Fatal("no windows stored after replay")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}

	var wins struct {
		Count   int                 `json:"count"`
		Listed  int                 `json:"listed"`
		Windows []*telemetry.Window `json:"windows"`
	}
	getJSON(t, base+"/windows", &wins)
	if wins.Count == 0 || wins.Listed != len(wins.Windows) {
		t.Fatalf("windows = %+v", wins)
	}
	getJSON(t, base+"/windows?limit=1", &wins)
	if wins.Listed != 1 {
		t.Errorf("limit=1 listed %d", wins.Listed)
	}
	// The newest window wins under limit.
	newest := wins.Windows[0].Start
	getJSON(t, base+"/windows?limit=1000", &wins)
	if last := wins.Windows[len(wins.Windows)-1].Start; !last.Equal(newest) {
		t.Errorf("limit did not keep the newest window: %v vs %v", last, newest)
	}

	getJSON(t, base+"/windows?tier=5m", &wins)
	if wins.Count == 0 {
		t.Error("downsampled tier empty")
	}

	var res telemetry.QueryResult
	getJSON(t, base+"/query?by=platform&step=5m", &res)
	if res.StepSeconds != 300 || len(res.Series) == 0 {
		t.Errorf("platform query = %+v", res)
	}
	getJSON(t, base+"/query?last=5m", &res)
	// last= resolves against the newest stored window in trace time; the
	// store may still be absorbing late evictions, so pin the shape, not
	// the exact anchor.
	if res.Since.IsZero() {
		t.Error("last=5m did not resolve a since bound")
	}

	for _, bad := range []string{
		"/query?by=device",
		"/query?step=banana",
		"/query?since=notatime",
		"/query?last=5m&since=2023-07-07T12:00:00Z",
		"/windows?tier=7m",
		"/windows?limit=0",
	} {
		resp, err := http.Get(base + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %s, want 400", bad, resp.Status)
		}
	}
}

// TestMetricsMatchCatalog pins the /metrics exposition to the catalog that
// MetricNames (and the runbook drift test) is built on: every emitted
// series is in the catalog, and every unconditional catalog entry is
// emitted.
func TestMetricsMatchCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	srv, err := New(trainBank(t), NewSynthSource(5, 2), Config{Addr: "127.0.0.1:0", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	defer func() {
		cancel()
		<-runErr
	}()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	emitted := map[string]bool{}
	re := regexp.MustCompile(`^(videoplat_[a-z_]+)(?:\{|\s)`)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if m := re.FindStringSubmatch(line); m != nil {
			emitted[m[1]] = true
		}
	}
	catalog := map[string]bool{}
	for _, name := range MetricNames() {
		catalog[name] = true
	}
	for name := range emitted {
		if !catalog[name] {
			t.Errorf("emitted series %s not in catalog", name)
		}
	}
	for _, m := range metricsCatalog {
		if !m.conditional && !emitted[m.name] {
			t.Errorf("catalog series %s not emitted", m.name)
		}
	}
	// The conditional retrainer series must stay out without a retrainer.
	if emitted["videoplat_model_retrains_total"] {
		t.Error("retrainer series emitted without a retrainer")
	}
	for _, want := range []string{
		`videoplat_telemetry_store_windows{tier="raw"}`,
		`videoplat_telemetry_store_evicted_total{reason="count"}`,
		"videoplat_telemetry_sink_errors_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
