package server

import (
	"fmt"
	"net/http"
	"strconv"

	"videoplat/internal/obs"
	"videoplat/internal/pipeline"
)

// metricDef is one /metrics series: its Prometheus metadata plus a sampler
// producing the sample lines (with labels where applicable) for a stats
// snapshot. handleMetrics emits straight from this catalog and MetricNames
// exposes it, so a series cannot be added to the endpoint without the
// documentation drift test (docs/OPERATIONS.md) seeing it.
type metricDef struct {
	name, typ, help string
	// conditional marks series omitted in some configurations (e.g.
	// retrainer counters without -auto-retrain): the samplers return no
	// lines and the series disappears from the exposition entirely.
	conditional bool
	samples     func(st *Stats) []string
}

// gauge1 renders the common single-sample case.
func gauge1(name string, v float64) []string {
	return []string{fmt.Sprintf("%s %g", name, v)}
}

var metricsCatalog = []metricDef{
	{"videoplat_replay_packets_total", "counter", "Frames fed to the pipeline.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_replay_packets_total", float64(st.Replay.Packets))
		}},
	{"videoplat_replay_bytes_total", "counter", "Frame bytes fed to the pipeline.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_replay_bytes_total", float64(st.Replay.Bytes))
		}},
	{"videoplat_flows_active", "gauge", "Flows currently tracked across shards.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_flows_active", float64(st.FlowTable.Active))
		}},
	{"videoplat_flows_inserted_total", "counter", "Flows ever inserted into the tables.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_flows_inserted_total", float64(st.FlowTable.Inserted))
		}},
	{"videoplat_flows_evicted_total", "counter", "Flows evicted from the tables.", false,
		func(st *Stats) []string {
			return []string{
				fmt.Sprintf("videoplat_flows_evicted_total{reason=\"idle\"} %d", st.FlowTable.EvictedIdle),
				fmt.Sprintf("videoplat_flows_evicted_total{reason=\"cap\"} %d", st.FlowTable.EvictedCap),
			}
		}},
	{"videoplat_flows_rekeyed_total", "counter", "Flows re-keyed in place by QUIC connection migration.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_flows_rekeyed_total", float64(st.FlowTable.Rekeyed))
		}},
	{"videoplat_flow_migrations_total", "counter", "QUIC connection migrations absorbed by CID re-keying.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_flow_migrations_total", float64(st.Ingest.Migrations))
		}},
	{"videoplat_flows_early_classified_total", "counter", "Flows classified from partial handshake evidence (ECH or 0-RTT).", false,
		func(st *Stats) []string {
			return gauge1("videoplat_flows_early_classified_total", float64(st.Ingest.EarlyClassified))
		}},
	{"videoplat_flows_classified_total", "counter", "Flows classified with a platform prediction.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_flows_classified_total", float64(st.ClassifiedFlows))
		}},
	{"videoplat_flows_unknown_total", "counter", "Flows rejected by the confidence selector.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_flows_unknown_total", float64(st.UnknownFlows))
		}},
	{"videoplat_flows_finalized_total", "counter", "Flow records rolled up (evicted or drained).", false,
		func(st *Stats) []string {
			return gauge1("videoplat_flows_finalized_total", float64(st.FinalizedFlows))
		}},
	{"videoplat_flow_verdicts_total", "counter", "Finalized flows by terminal verdict (verdict label: classified, abstained, no-handshake, …).", false,
		func(st *Stats) []string {
			names := pipeline.VerdictNames()
			out := make([]string, 0, len(names))
			for _, name := range names {
				out = append(out, fmt.Sprintf("videoplat_flow_verdicts_total{verdict=%q} %d",
					name, st.FlowVerdicts[name]))
			}
			return out
		}},
	{"videoplat_events_total", "counter", "Ops journal events recorded by type.", false,
		func(st *Stats) []string {
			types := obs.EventTypes()
			out := make([]string, 0, len(types))
			for _, t := range types {
				out = append(out, fmt.Sprintf("videoplat_events_total{type=%q} %d",
					t, st.Events.ByType[string(t)]))
			}
			return out
		}},
	{"videoplat_events_dropped_total", "counter", "Ops journal events aged out of the bounded ring.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_events_dropped_total", float64(st.Events.Dropped))
		}},
	{"videoplat_results_dropped_total", "counter", "Results dropped because the consumer lagged.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_results_dropped_total", float64(st.DroppedResults))
		}},
	{"videoplat_ingest_batches_total", "counter", "Frame batches dispatched to the pipeline.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_ingest_batches_total", float64(st.Ingest.Batches))
		}},
	{"videoplat_ingest_frames_ignored_total", "counter", "Frames dropped at ingest (unparseable or non-TCP/UDP).", false,
		func(st *Stats) []string {
			return gauge1("videoplat_ingest_frames_ignored_total", float64(st.Ingest.IgnoredFrames))
		}},
	{"videoplat_ingest_frames_filtered_total", "counter", "Decodable flows dropped at ingest by the port-443 video filter.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_ingest_frames_filtered_total", float64(st.Ingest.FilteredFrames))
		}},
	{"videoplat_ingest_stalls_total", "counter", "Ingest submissions that blocked on a full shard inbox.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_ingest_stalls_total", float64(st.Ingest.Stalls))
		}},
	{"videoplat_ingest_oversized_handshakes_total", "counter", "Flows abandoned because buffered handshake bytes exceeded the cap.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_ingest_oversized_handshakes_total", float64(st.Ingest.OversizedHandshakes))
		}},
	{"videoplat_rollup_windows_sealed_total", "counter", "Rollup windows sealed and retired to the sink.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_rollup_windows_sealed_total", float64(st.Rollup.Sealed))
		}},
	{"videoplat_telemetry_sink_errors_total", "counter", "Rollup sink writes that failed (every failure, not just the first).", false,
		func(st *Stats) []string {
			return gauge1("videoplat_telemetry_sink_errors_total", float64(st.Rollup.SinkErrors))
		}},
	{"videoplat_telemetry_store_windows", "gauge", "Sealed windows retained per store tier (tier label: raw or the bucket width in seconds).", false,
		func(st *Stats) []string {
			out := make([]string, 0, len(st.Rollup.Store.Tiers))
			for i, t := range st.Rollup.Store.Tiers {
				label := "raw"
				if i > 0 {
					label = strconv.FormatFloat(t.WidthSeconds, 'g', -1, 64)
				}
				out = append(out, fmt.Sprintf("videoplat_telemetry_store_windows{tier=%q} %d", label, t.Windows))
			}
			return out
		}},
	{"videoplat_telemetry_store_evicted_total", "counter", "Windows evicted from the store by retention.", false,
		func(st *Stats) []string {
			return []string{
				fmt.Sprintf("videoplat_telemetry_store_evicted_total{reason=\"count\"} %d", st.Rollup.Store.EvictedCount),
				fmt.Sprintf("videoplat_telemetry_store_evicted_total{reason=\"age\"} %d", st.Rollup.Store.EvictedAge),
			}
		}},
	{"videoplat_telemetry_store_compactions_total", "counter", "Downsampled store buckets sealed.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_telemetry_store_compactions_total", float64(st.Rollup.Store.Compactions))
		}},
	{"videoplat_telemetry_store_loaded_windows", "gauge", "Windows reloaded from persistence at startup.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_telemetry_store_loaded_windows", float64(st.Rollup.Store.LoadedWindows))
		}},
	{"videoplat_telemetry_store_persist_errors_total", "counter", "Failed writes to the store's persistence sink.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_telemetry_store_persist_errors_total", float64(st.Rollup.Store.PersistErrors))
		}},
	{"videoplat_model_active_info", "gauge", "Active model bank version (value is always 1).", false,
		func(st *Stats) []string {
			return []string{fmt.Sprintf("videoplat_model_active_info{version=%q} 1", st.Models.ActiveVersion)}
		}},
	{"videoplat_model_swaps_total", "counter", "Bank hot-swaps applied to the pipeline.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_model_swaps_total", float64(st.Models.Swaps))
		}},
	{"videoplat_model_retrains_total", "counter", "Candidate banks trained by the retrainer.", true,
		func(st *Stats) []string {
			if st.Models.Retrainer == nil {
				return nil
			}
			return gauge1("videoplat_model_retrains_total", float64(st.Models.Retrainer.Retrains))
		}},
	{"videoplat_model_promotions_total", "counter", "Candidates promoted after shadow evaluation.", true,
		func(st *Stats) []string {
			if st.Models.Retrainer == nil {
				return nil
			}
			return gauge1("videoplat_model_promotions_total", float64(st.Models.Retrainer.Promotions))
		}},
	{"videoplat_model_rejections_total", "counter", "Candidates rejected by the shadow gate.", true,
		func(st *Stats) []string {
			if st.Models.Retrainer == nil {
				return nil
			}
			return gauge1("videoplat_model_rejections_total", float64(st.Models.Retrainer.Rejections))
		}},
	{"videoplat_replay_done", "gauge", "1 once the replay source is exhausted.", false,
		func(st *Stats) []string {
			done := 0.0
			if st.Replay.Done {
				done = 1
			}
			return gauge1("videoplat_replay_done", done)
		}},
	{"videoplat_stage_latency_seconds", "gauge", "Per-stage pipeline latency quantiles since start (stage and quantile labels; quantile is 0.5, 0.9 or 0.99).", false,
		func(st *Stats) []string {
			var out []string
			for _, ls := range st.Latency {
				if ls.Count == 0 {
					continue
				}
				for _, q := range []struct {
					label string
					ms    float64
				}{{"0.5", ls.P50Ms}, {"0.9", ls.P90Ms}, {"0.99", ls.P99Ms}} {
					out = append(out, fmt.Sprintf("videoplat_stage_latency_seconds{stage=%q,quantile=%q} %g",
						ls.Stage, q.label, q.ms/1e3))
				}
			}
			return out
		}},
	{"videoplat_stage_latency_max_seconds", "gauge", "Per-stage maximum observed latency since start.", false,
		func(st *Stats) []string {
			var out []string
			for _, ls := range st.Latency {
				if ls.Count == 0 {
					continue
				}
				out = append(out, fmt.Sprintf("videoplat_stage_latency_max_seconds{stage=%q} %g",
					ls.Stage, ls.MaxMs/1e3))
			}
			return out
		}},
	{"videoplat_stage_latency_samples_total", "counter", "Latency samples recorded per pipeline stage.", false,
		func(st *Stats) []string {
			out := make([]string, 0, len(st.Latency))
			for _, ls := range st.Latency {
				out = append(out, fmt.Sprintf("videoplat_stage_latency_samples_total{stage=%q} %d",
					ls.Stage, ls.Count))
			}
			return out
		}},
	{"videoplat_shard_queue_depth", "gauge", "Live per-shard ingest inbox occupancy in batch messages.", false,
		func(st *Stats) []string {
			out := make([]string, 0, len(st.Ingest.QueueDepths))
			for i, d := range st.Ingest.QueueDepths {
				out = append(out, fmt.Sprintf("videoplat_shard_queue_depth{shard=\"%d\"} %d", i, d))
			}
			return out
		}},
	{"videoplat_shard_queue_capacity", "gauge", "Per-shard ingest inbox capacity in batch messages.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_shard_queue_capacity", float64(st.Ingest.QueueCapacity))
		}},
	{"videoplat_results_buffered", "gauge", "Classified results waiting in the results channel.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_results_buffered", float64(st.Ingest.ResultsBuffered))
		}},
	{"videoplat_results_capacity", "gauge", "Results channel capacity.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_results_capacity", float64(st.Ingest.ResultsCapacity))
		}},
	{"videoplat_trace_spans_total", "counter", "Flow-lifecycle sampler activity (event label: offered, admitted or finished).", false,
		func(st *Stats) []string {
			return []string{
				fmt.Sprintf("videoplat_trace_spans_total{event=\"offered\"} %d", st.Trace.Offered),
				fmt.Sprintf("videoplat_trace_spans_total{event=\"admitted\"} %d", st.Trace.Admitted),
				fmt.Sprintf("videoplat_trace_spans_total{event=\"finished\"} %d", st.Trace.Finished),
			}
		}},
	{"videoplat_goroutines", "gauge", "Live goroutine count.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_goroutines", float64(st.Runtime.Goroutines))
		}},
	{"videoplat_heap_alloc_bytes", "gauge", "Live heap bytes in use.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_heap_alloc_bytes", float64(st.Runtime.HeapAllocBytes))
		}},
	{"videoplat_heap_objects", "gauge", "Live heap object count.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_heap_objects", float64(st.Runtime.HeapObjects))
		}},
	{"videoplat_gc_cycles_total", "counter", "Completed garbage-collection cycles.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_gc_cycles_total", float64(st.Runtime.NumGC))
		}},
	{"videoplat_gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause time.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_gc_pause_seconds_total", st.Runtime.PauseTotalMs/1e3)
		}},
	{"videoplat_uptime_seconds", "gauge", "Seconds since the daemon started.", false,
		func(st *Stats) []string {
			return gauge1("videoplat_uptime_seconds", st.UptimeSeconds)
		}},
	{"videoplat_build_info", "gauge", "Build identification (go_version, version, revision labels; value is always 1).", false,
		func(st *Stats) []string {
			return []string{fmt.Sprintf("videoplat_build_info{go_version=%q,version=%q,revision=%q} 1",
				st.Build.GoVersion, st.Build.Version, st.Build.VCSRevision)}
		}},
}

// MetricNames lists every videoplat_* series /metrics can emit, in
// exposition order — the source of truth the operator runbook is checked
// against. Series marked conditional in the catalog (the retrainer
// counters) appear here even when the running configuration omits them.
func MetricNames() []string {
	out := make([]string, len(metricsCatalog))
	for i, m := range metricsCatalog {
		out[i] = m.name
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b []byte
	for _, m := range metricsCatalog {
		lines := m.samples(&st)
		if len(lines) == 0 {
			continue // conditional series absent in this configuration
		}
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)...)
		for _, l := range lines {
			b = append(b, l...)
			b = append(b, '\n')
		}
	}
	w.Write(b)
}
