package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"videoplat/internal/obs"
	"videoplat/internal/pipeline"
	"videoplat/internal/telemetry"
)

// writeJSONBody encodes v without touching the status line, for handlers
// that already wrote a non-200 status.
func writeJSONBody(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleReadyz is the readiness probe complementing /healthz's liveness: 200
// once a classifier bank is loaded and the replay/ingest machinery is
// running, 503 with the blocking reasons otherwise. Load balancers and
// orchestration route on this; /healthz only says the process is up.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	var reasons []string
	if s.sharded.Bank() == nil {
		reasons = append(reasons, "no classifier bank loaded")
	}
	if s.src == nil {
		reasons = append(reasons, "no replay/ingest source attached")
	}
	if !s.running.Load() {
		reasons = append(reasons, "ingest loop not started")
	}
	if len(reasons) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSONBody(w, map[string]any{"status": "unready", "reasons": reasons})
		return
	}
	writeJSON(w, map[string]any{"status": "ready"})
}

// handleEvents serves the ops event journal: ?since=<seq> resumes after a
// previously seen sequence number, ?type= filters to one event type, and
// ?limit= caps the response to the newest N matches (default 100).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since (want an event seq)", http.StatusBadRequest)
			return
		}
		since = n
	}
	typ := obs.EventType(q.Get("type"))
	if typ != "" && !knownEventType(typ) {
		http.Error(w, fmt.Sprintf("unknown event type %q", typ), http.StatusBadRequest)
		return
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	events := s.journal.Events(since, typ, limit)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, struct {
		Stats  obs.JournalStats `json:"stats"`
		Events []obs.Event      `json:"events"`
	}{Stats: s.journal.Stats(), Events: events})
}

func knownEventType(typ obs.EventType) bool {
	for _, t := range obs.EventTypes() {
		if t == typ {
			return true
		}
	}
	return false
}

// verdictCounts snapshots the per-verdict flow counters, omitting
// never-seen verdicts.
func (s *Server) verdictCounts() map[string]uint64 {
	out := make(map[string]uint64, len(s.verdicts))
	for i := range s.verdicts {
		if n := s.verdicts[i].Load(); n > 0 {
			out[pipeline.Verdict(i).String()] = n
		}
	}
	return out
}

// enrichWindow stamps window-scoped quality gauges into a sealing window:
// the drift monitor's current worst confidence drop and the shadow
// evaluator's agreement deltas since the previous window. Runs under the
// rollup lock (see Rollup.SetEnrich), so it must not call back into the
// rollup; the drift and retrainer reads take only their own locks/atomics.
func (s *Server) enrichWindow(w *telemetry.Window) {
	if s.cfg.Drift == nil && s.cfg.Retrainer == nil {
		return
	}
	quality := func() *telemetry.QualitySummary {
		if w.Quality == nil {
			w.Quality = &telemetry.QualitySummary{}
		}
		return w.Quality
	}
	if s.cfg.Drift != nil {
		var score float64
		for _, st := range s.cfg.Drift.Statuses() {
			if drop := st.BaselineMedian - st.RecentMedian; drop > score {
				score = drop
			}
		}
		if score > 0 {
			quality().DriftScore = score
		}
	}
	if s.cfg.Retrainer != nil {
		agreed, disagreed := s.cfg.Retrainer.ShadowCounts()
		// Cumulative totals can transiently dip during a live→resolved
		// handoff; clamp so deltas stay monotone and nothing double-counts.
		if agreed > s.lastShadowAgreed {
			quality().ShadowAgreed += agreed - s.lastShadowAgreed
			s.lastShadowAgreed = agreed
		}
		if disagreed > s.lastShadowDisagree {
			quality().ShadowDisagreed += disagreed - s.lastShadowDisagree
			s.lastShadowDisagree = disagreed
		}
	}
}

// sealHealthEvents journals pipeline-health regressions observed since the
// previous sealed window: telemetry sink write failures, store compactions,
// and capacity-pressure flow evictions. Called from the aggregate goroutine
// (and finishPipeline's tail) right after a window seals, so each event
// describes roughly one window's worth of trouble.
func (s *Server) sealHealthEvents() {
	if errs := s.rollup.SinkErrors(); errs > s.lastSinkErrs {
		s.journal.Record(obs.EventSinkError, "telemetry sink writes failed",
			"failures", strconv.FormatUint(errs-s.lastSinkErrs, 10),
			"total", strconv.FormatUint(errs, 10))
		s.lastSinkErrs = errs
	}
	if comp := s.store.Stats().Compactions; comp > s.lastCompactions {
		s.journal.Record(obs.EventStoreCompaction, "telemetry store compacted windows into coarser tiers",
			"buckets", strconv.FormatUint(comp-s.lastCompactions, 10),
			"total", strconv.FormatUint(comp, 10))
		s.lastCompactions = comp
	}
	if capEv := s.sharded.TableStats().EvictedCap; capEv > s.lastCapEvict {
		s.journal.Record(obs.EventEvictionPressure, "flow table evicted flows at capacity",
			"evicted", strconv.FormatUint(capEv-s.lastCapEvict, 10),
			"total", strconv.FormatUint(capEv, 10))
		s.lastCapEvict = capEv
	}
}
