package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"videoplat/internal/obs"
)

// TestReadyzLifecycle: /readyz refuses before the ingest loop starts and
// flips to 200 once the daemon is serving; /healthz stays a pure liveness
// probe throughout.
func TestReadyzLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	srv, err := New(trainBank(t), NewSynthSource(3, 5), Config{Addr: "127.0.0.1:0", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Before Run the process is alive but not ready.
	rr := httptest.NewRecorder()
	srv.handleReadyz(rr, nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Run = %d, want 503", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "ingest loop not started") {
		t.Fatalf("readyz body missing reason: %s", rr.Body.String())
	}

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	base := "http://" + srv.Addr()

	deadline := time.After(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if !strings.Contains(string(body), `"ready"`) {
				t.Fatalf("ready body = %s", body)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("never became ready: %d %s", resp.StatusCode, body)
		case <-time.After(10 * time.Millisecond):
		}
	}

	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz = %+v", health)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// eventsDoc mirrors the /events response shape.
type eventsDoc struct {
	Stats  obs.JournalStats `json:"stats"`
	Events []obs.Event      `json:"events"`
}

// TestEventsEndpoint drives /events parameter handling and the journal's
// surfacing in /stats and /metrics against a live daemon.
func TestEventsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	journal := obs.NewJournal(64, nil)
	srv, err := New(trainBank(t), NewSynthSource(3, 5), Config{
		Addr: "127.0.0.1:0", Shards: 1, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	base := "http://" + srv.Addr()

	journal.Record(obs.EventDriftTrigger, "confidence drop", "provider", "youtube")
	journal.Record(obs.EventShadowStart, "candidate under evaluation", "version", "v0002")
	journal.Record(obs.EventShadowVerdict, "promoted", "version", "v0002")

	var doc eventsDoc
	getJSON(t, base+"/events", &doc)
	if len(doc.Events) != 3 || doc.Stats.Total != 3 {
		t.Fatalf("events = %d entries, stats %+v", len(doc.Events), doc.Stats)
	}
	if doc.Events[0].Type != obs.EventDriftTrigger || doc.Events[0].Fields["provider"] != "youtube" {
		t.Fatalf("first event = %+v", doc.Events[0])
	}

	// since resumes after a seq; type narrows; limit keeps the newest.
	getJSON(t, base+"/events?since="+strconv.FormatUint(doc.Events[0].Seq, 10), &doc)
	if len(doc.Events) != 2 || doc.Events[0].Type != obs.EventShadowStart {
		t.Fatalf("since filter: %+v", doc.Events)
	}
	getJSON(t, base+"/events?type=shadow_verdict", &doc)
	if len(doc.Events) != 1 || doc.Events[0].Fields["version"] != "v0002" {
		t.Fatalf("type filter: %+v", doc.Events)
	}
	getJSON(t, base+"/events?limit=1", &doc)
	if len(doc.Events) != 1 || doc.Events[0].Type != obs.EventShadowVerdict {
		t.Fatalf("limit filter: %+v", doc.Events)
	}

	// Bad parameters are clean client errors.
	for _, q := range []string{"?since=abc", "?type=nonsense", "?limit=0"} {
		resp, err := http.Get(base + "/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /events%s = %d, want 400", q, resp.StatusCode)
		}
	}

	// The journal and verdict counters surface in /stats and /metrics.
	var st Stats
	getJSON(t, base+"/stats", &st)
	if st.Events.Total != 3 || st.Events.ByType["drift_trigger"] != 1 {
		t.Fatalf("stats events = %+v", st.Events)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(body)
	for _, want := range []string{
		`videoplat_events_total{type="drift_trigger"} 1`,
		`videoplat_events_total{type="model_swap"} 0`,
		"videoplat_events_dropped_total 0",
		`videoplat_flow_verdicts_total{verdict="classified"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}
