package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/pipeline"
	"videoplat/internal/telemetry"
	"videoplat/internal/tracegen"
)

func trainBank(t *testing.T) *pipeline.Bank {
	t.Helper()
	g := tracegen.New(9)
	ds, err := g.LabDataset(0.02, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bank, err := pipeline.TrainBank(ds, pipeline.TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	return bank
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

// TestServeSynthReplayEndToEnd runs the daemon over a finite synthetic
// replay and exercises every operations endpoint while it runs and after a
// graceful shutdown.
func TestServeSynthReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	var sinkBuf bytes.Buffer
	sink := telemetry.NewJSONLSink(&sinkBuf)
	srv, err := New(trainBank(t), NewSynthSource(3, 30), Config{
		Addr:        "127.0.0.1:0",
		Shards:      4,
		MaxFlows:    16, // small cap: force cap evictions
		IdleTimeout: 45 * time.Second,
		WindowWidth: time.Minute,
		Sink:        sink,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	base := "http://" + srv.Addr()

	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz = %+v", health)
	}

	// /stats and /flows must be servable mid-replay.
	var sawLive bool
	deadline := time.After(30 * time.Second)
	for !sawLive {
		select {
		case <-deadline:
			t.Fatal("no live flows observed before replay finished")
		case <-srv.ReplayDone():
			sawLive = true // replay outran the poll loop; fine
		default:
			var st Stats
			getJSON(t, base+"/stats", &st)
			if st.Replay.Packets > 0 && st.FlowTable.Active > 0 {
				sawLive = true
				var fl struct {
					Active int `json:"active_flows"`
					Flows  []struct {
						SNI string `json:"sni"`
					} `json:"flows"`
				}
				getJSON(t, base+"/flows?limit=5", &fl)
				if fl.Active == 0 {
					t.Error("flows endpoint shows no active flows while stats does")
				}
				if len(fl.Flows) > 5 {
					t.Errorf("limit ignored: %d rows", len(fl.Flows))
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	select {
	case <-srv.ReplayDone():
	case <-time.After(60 * time.Second):
		t.Fatal("replay did not finish")
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}

	// Post-shutdown invariants.
	st := srv.Snapshot()
	if st.Replay.Packets == 0 || !st.Replay.Done {
		t.Errorf("replay state = %+v", st.Replay)
	}
	if st.Replay.Error != "" {
		t.Errorf("replay error: %s", st.Replay.Error)
	}
	if st.FlowTable.Active > 16 {
		t.Errorf("active flows %d exceed the cap", st.FlowTable.Active)
	}
	if st.FlowTable.EvictedCap == 0 {
		t.Error("no cap evictions despite tiny table: flow table is not bounded")
	}
	if st.ClassifiedFlows == 0 {
		t.Error("no flows classified")
	}
	// Every inserted flow is finalized exactly once: evicted during the
	// run or drained at close.
	if st.FinalizedFlows != st.FlowTable.Inserted {
		t.Errorf("finalized %d != inserted %d", st.FinalizedFlows, st.FlowTable.Inserted)
	}
	if st.Rollup.Sealed == 0 || sink.Windows() != st.Rollup.Sealed {
		t.Errorf("sealed windows = %d, sink got %d", st.Rollup.Sealed, sink.Windows())
	}

	// The JSONL sink holds parseable windows accounting for every flow.
	var flows int
	sc := bufio.NewScanner(&sinkBuf)
	for sc.Scan() {
		var w telemetry.Window
		if err := json.Unmarshal(sc.Bytes(), &w); err != nil {
			t.Fatalf("bad sink line: %v", err)
		}
		flows += w.Flows
	}
	if uint64(flows) != st.FinalizedFlows {
		t.Errorf("sink windows cover %d flows, finalized %d", flows, st.FinalizedFlows)
	}
}

// TestServePCAPReplay replays a tracegen-written pcap file — the vpserve
// acceptance path — and checks /metrics exposition plus bounded memory.
func TestServePCAPReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	g := tracegen.New(21)
	var traces []*tracegen.FlowTrace
	start := time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ {
		flows, err := g.Session("windows_chrome", fingerprint.YouTube, fingerprint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, ft := range flows {
			ft.Start = start.Add(time.Duration(i) * 20 * time.Second)
			traces = append(traces, ft)
		}
	}
	path := filepath.Join(t.TempDir(), "replay.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracegen.WritePCAP(f, traces); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(trainBank(t), src, Config{Addr: "127.0.0.1:0", Shards: 2, MaxFlows: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()

	select {
	case <-srv.ReplayDone():
	case <-time.After(60 * time.Second):
		t.Fatal("replay did not finish")
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"videoplat_replay_packets_total",
		"videoplat_flows_active",
		`videoplat_flows_evicted_total{reason="cap"}`,
		"videoplat_replay_done 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
	st := srv.Snapshot()
	var total int
	for _, ft := range traces {
		total += len(ft.Frames)
	}
	if st.Replay.Packets != uint64(total) {
		t.Errorf("replayed %d packets, pcap has %d", st.Replay.Packets, total)
	}
	if st.FlowTable.Active > 8 {
		t.Errorf("active flows %d exceed cap", st.FlowTable.Active)
	}
	if st.FlowTable.Inserted <= 8 && st.FlowTable.EvictedCap == 0 {
		t.Logf("note: only %d flows inserted", st.FlowTable.Inserted)
	}
}

// TestRatePacing checks the replay honours a packets/sec budget.
func TestRatePacing(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	srv, err := New(trainBank(t), NewSynthSource(5, 2), Config{
		Addr: "127.0.0.1:0", Shards: 1, Rate: 50})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	start := time.Now()
	go func() { runErr <- srv.Run(ctx) }()
	select {
	case <-srv.ReplayDone():
	case <-time.After(30 * time.Second):
		t.Fatal("replay did not finish")
	}
	elapsed := time.Since(start)
	pkts := srv.Snapshot().Replay.Packets
	minWall := time.Duration(float64(pkts-1)/50*float64(time.Second)) / 2 // generous slack
	if elapsed < minWall {
		t.Errorf("replayed %d packets in %v; pacing at 50 pps demands >= %v", pkts, elapsed, minWall)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestSynthSourceDeterministicAndFinite pins the synthetic source contract.
func TestSynthSourceDeterministicAndFinite(t *testing.T) {
	count := func() (int, string) {
		src := NewSynthSource(11, 3)
		n := 0
		var sig string
		var prev time.Time
		for {
			pkt, err := src.Next()
			if err == io.EOF {
				return n, sig
			}
			if err != nil {
				t.Fatal(err)
			}
			if pkt.Timestamp.Before(prev) {
				t.Fatalf("timestamp regression at packet %d: %s after %s", n, pkt.Timestamp, prev)
			}
			prev = pkt.Timestamp
			n++
			if n <= 3 {
				sig += fmt.Sprintf("%d@%s;", len(pkt.Data), pkt.Timestamp)
			}
		}
	}
	n1, sig1 := count()
	n2, sig2 := count()
	if n1 == 0 || n1 != n2 || sig1 != sig2 {
		t.Errorf("source not deterministic: %d/%d packets, %q vs %q", n1, n2, sig1, sig2)
	}
}
