// Package wire provides low-level byte-order encoding helpers shared by the
// packet, TLS and QUIC codecs: a bounds-checked big-endian reader, an
// append-style writer, QUIC variable-length integers (RFC 9000 §16) and
// GREASE value tables (RFC 8701).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a read runs past the end of the input.
var ErrShortBuffer = errors.New("wire: short buffer")

// ErrVarintRange is returned when a value does not fit the requested
// variable-length integer encoding.
var ErrVarintRange = errors.New("wire: varint out of range")

// Reader is a bounds-checked cursor over a byte slice. All multi-byte reads
// are big-endian (network order). Methods return ErrShortBuffer instead of
// panicking so that malformed packets are rejected, not fatal.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader positioned at the start of buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} } //vp:allocok inlined; non-escaping readers stay on the stack, pinned by TestEncodeIntoZeroAlloc

// Len reports the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Offset reports the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// Empty reports whether all bytes have been consumed.
func (r *Reader) Empty() bool { return r.off >= len(r.buf) }

// Uint8 reads one byte.
func (r *Reader) Uint8() (uint8, error) {
	if r.Len() < 1 {
		return 0, ErrShortBuffer
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

// Uint16 reads a big-endian 16-bit integer.
func (r *Reader) Uint16() (uint16, error) {
	if r.Len() < 2 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

// Uint24 reads a big-endian 24-bit integer (TLS handshake lengths).
func (r *Reader) Uint24() (uint32, error) {
	if r.Len() < 3 {
		return 0, ErrShortBuffer
	}
	b := r.buf[r.off:]
	r.off += 3
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2]), nil
}

// Uint32 reads a big-endian 32-bit integer.
func (r *Reader) Uint32() (uint32, error) {
	if r.Len() < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// Uint64 reads a big-endian 64-bit integer.
func (r *Reader) Uint64() (uint64, error) {
	if r.Len() < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// Bytes reads exactly n bytes. The returned slice aliases the input buffer.
func (r *Reader) Bytes(n int) ([]byte, error) {
	if n < 0 || r.Len() < n {
		return nil, ErrShortBuffer
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v, nil
}

// Skip advances the cursor by n bytes.
func (r *Reader) Skip(n int) error {
	if n < 0 || r.Len() < n {
		return ErrShortBuffer
	}
	r.off += n
	return nil
}

// Rest returns all unread bytes and consumes them.
func (r *Reader) Rest() []byte {
	v := r.buf[r.off:]
	r.off = len(r.buf)
	return v
}

// Varint reads a QUIC variable-length integer (RFC 9000 §16): the two most
// significant bits of the first byte encode the total length 1/2/4/8.
func (r *Reader) Varint() (uint64, error) {
	if r.Len() < 1 {
		return 0, ErrShortBuffer
	}
	first := r.buf[r.off]
	length := 1 << (first >> 6)
	if r.Len() < length {
		return 0, ErrShortBuffer
	}
	v := uint64(first & 0x3f)
	for i := 1; i < length; i++ {
		v = v<<8 | uint64(r.buf[r.off+i])
	}
	r.off += length
	return v, nil
}

// Writer accumulates bytes in network order. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer { return &Writer{buf: make([]byte, 0, capacity)} }

// Bytes returns the accumulated buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uint8 appends one byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Uint16 appends a big-endian 16-bit integer.
func (w *Writer) Uint16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// Uint24 appends a big-endian 24-bit integer.
func (w *Writer) Uint24(v uint32) {
	w.buf = append(w.buf, byte(v>>16), byte(v>>8), byte(v))
}

// Uint32 appends a big-endian 32-bit integer.
func (w *Writer) Uint32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// Uint64 appends a big-endian 64-bit integer.
func (w *Writer) Uint64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Write appends raw bytes.
func (w *Writer) Write(b []byte) { w.buf = append(w.buf, b...) }

// Varint appends a QUIC variable-length integer using the smallest encoding.
func (w *Writer) Varint(v uint64) error {
	switch {
	case v < 1<<6:
		w.buf = append(w.buf, byte(v))
	case v < 1<<14:
		w.buf = append(w.buf, 0x40|byte(v>>8), byte(v))
	case v < 1<<30:
		w.buf = append(w.buf, 0x80|byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case v < 1<<62:
		w.buf = append(w.buf, 0xc0|byte(v>>56), byte(v>>48), byte(v>>40),
			byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		return ErrVarintRange
	}
	return nil
}

// VarintLen reports the encoded size in bytes of v, or 0 if out of range.
func VarintLen(v uint64) int {
	switch {
	case v < 1<<6:
		return 1
	case v < 1<<14:
		return 2
	case v < 1<<30:
		return 4
	case v < 1<<62:
		return 8
	}
	return 0
}

// AppendVarint appends a QUIC varint to b using the smallest encoding.
// It panics if v is out of range; callers constructing protocol constants
// should validate with VarintLen first.
func AppendVarint(b []byte, v uint64) []byte {
	w := Writer{buf: b}
	if err := w.Varint(v); err != nil {
		panic(fmt.Sprintf("wire: varint %d out of range", v))
	}
	return w.buf
}

// GREASE values reserved by RFC 8701 for TLS cipher suites, extensions and
// named groups. Chromium-family clients inject one value from this table at
// randomized positions; fingerprinting code must normalize them.
var greaseValues = [...]uint16{
	0x0a0a, 0x1a1a, 0x2a2a, 0x3a3a, 0x4a4a, 0x5a5a, 0x6a6a, 0x7a7a,
	0x8a8a, 0x9a9a, 0xaaaa, 0xbaba, 0xcaca, 0xdada, 0xeaea, 0xfafa,
}

// IsGrease reports whether v is an RFC 8701 GREASE value
// (both bytes equal and low nibble 0xa).
func IsGrease(v uint16) bool {
	return byte(v)&0x0f == 0x0a && byte(v) == byte(v>>8)
}

// GreaseValue returns the i-th GREASE value (mod table size); use with a
// per-flow random index to mimic Chromium's draw.
func GreaseValue(i int) uint16 {
	return greaseValues[((i%len(greaseValues))+len(greaseValues))%len(greaseValues)]
}

// GreaseTransportParam reports whether a QUIC transport parameter ID is a
// reserved/GREASE identifier (id = 31*N+27, RFC 9000 §18.1).
func GreaseTransportParam(id uint64) bool {
	return id >= 27 && (id-27)%31 == 0
}
