package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestReaderBasics(t *testing.T) {
	w := NewWriter(32)
	w.Uint8(0xab)
	w.Uint16(0x1234)
	w.Uint24(0x00c0ffe)
	w.Uint32(0xdeadbeef)
	w.Uint64(0x0102030405060708)
	w.Write([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if v, err := r.Uint8(); err != nil || v != 0xab {
		t.Fatalf("Uint8 = %#x, %v", v, err)
	}
	if v, err := r.Uint16(); err != nil || v != 0x1234 {
		t.Fatalf("Uint16 = %#x, %v", v, err)
	}
	if v, err := r.Uint24(); err != nil || v != 0x00c0ffe {
		t.Fatalf("Uint24 = %#x, %v", v, err)
	}
	if v, err := r.Uint32(); err != nil || v != 0xdeadbeef {
		t.Fatalf("Uint32 = %#x, %v", v, err)
	}
	if v, err := r.Uint64(); err != nil || v != 0x0102030405060708 {
		t.Fatalf("Uint64 = %#x, %v", v, err)
	}
	b, err := r.Bytes(3)
	if err != nil || !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v, %v", b, err)
	}
	if !r.Empty() {
		t.Fatalf("reader not empty, %d left", r.Len())
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{1})
	if _, err := r.Uint16(); err != ErrShortBuffer {
		t.Fatalf("Uint16 on 1 byte: err = %v, want ErrShortBuffer", err)
	}
	if _, err := r.Uint8(); err != nil {
		t.Fatalf("Uint8 after failed Uint16 should still work: %v", err)
	}
	if _, err := r.Uint8(); err != ErrShortBuffer {
		t.Fatalf("Uint8 on empty: err = %v", err)
	}
	if _, err := r.Bytes(1); err != ErrShortBuffer {
		t.Fatalf("Bytes(1) on empty: err = %v", err)
	}
	if err := r.Skip(1); err != ErrShortBuffer {
		t.Fatalf("Skip(1) on empty: err = %v", err)
	}
	if _, err := NewReader(nil).Varint(); err != ErrShortBuffer {
		t.Fatalf("Varint on empty: err = %v", err)
	}
}

func TestReaderNegativeCounts(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if _, err := r.Bytes(-1); err != ErrShortBuffer {
		t.Fatalf("Bytes(-1): err = %v", err)
	}
	if err := r.Skip(-1); err != ErrShortBuffer {
		t.Fatalf("Skip(-1): err = %v", err)
	}
}

func TestVarintKnownEncodings(t *testing.T) {
	// Examples from RFC 9000 Appendix A.1.
	cases := []struct {
		val uint64
		enc []byte
	}{
		{0, []byte{0x00}},
		{37, []byte{0x25}},
		{15293, []byte{0x7b, 0xbd}},
		{494878333, []byte{0x9d, 0x7f, 0x3e, 0x7d}},
		{151288809941952652, []byte{0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c}},
	}
	for _, c := range cases {
		w := NewWriter(8)
		if err := w.Varint(c.val); err != nil {
			t.Fatalf("Varint(%d): %v", c.val, err)
		}
		if !bytes.Equal(w.Bytes(), c.enc) {
			t.Errorf("Varint(%d) = %x, want %x", c.val, w.Bytes(), c.enc)
		}
		got, err := NewReader(c.enc).Varint()
		if err != nil || got != c.val {
			t.Errorf("decode %x = %d, %v; want %d", c.enc, got, err, c.val)
		}
	}
}

func TestVarintRange(t *testing.T) {
	w := NewWriter(8)
	if err := w.Varint(1 << 62); err != ErrVarintRange {
		t.Fatalf("Varint(2^62): err = %v, want ErrVarintRange", err)
	}
	if n := VarintLen(1 << 62); n != 0 {
		t.Fatalf("VarintLen(2^62) = %d, want 0", n)
	}
	if n := VarintLen(math.MaxUint64); n != 0 {
		t.Fatalf("VarintLen(max) = %d, want 0", n)
	}
}

func TestVarintRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		v &= (1 << 62) - 1
		w := NewWriter(8)
		if err := w.Varint(v); err != nil {
			return false
		}
		if len(w.Bytes()) != VarintLen(v) {
			return false
		}
		got, err := NewReader(w.Bytes()).Varint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintRoundTripProperty(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64) bool {
		w := NewWriter(16)
		w.Uint8(a)
		w.Uint16(b)
		w.Uint32(c)
		w.Uint64(d)
		r := NewReader(w.Bytes())
		ga, _ := r.Uint8()
		gb, _ := r.Uint16()
		gc, _ := r.Uint32()
		gd, _ := r.Uint64()
		return ga == a && gb == b && gc == c && gd == d && r.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrease(t *testing.T) {
	for i := 0; i < 16; i++ {
		v := GreaseValue(i)
		if !IsGrease(v) {
			t.Errorf("GreaseValue(%d) = %#x not recognized as GREASE", i, v)
		}
	}
	if GreaseValue(-1) != GreaseValue(15) {
		t.Errorf("negative index should wrap")
	}
	for _, v := range []uint16{0x1301, 0x0000, 0xc02b, 0x0a1a, 0x1a0a} {
		if IsGrease(v) {
			t.Errorf("IsGrease(%#x) = true, want false", v)
		}
	}
}

func TestGreaseTransportParam(t *testing.T) {
	for _, id := range []uint64{27, 58, 89, 27 + 31*100} {
		if !GreaseTransportParam(id) {
			t.Errorf("GreaseTransportParam(%d) = false", id)
		}
	}
	for _, id := range []uint64{0, 1, 26, 28, 57} {
		if GreaseTransportParam(id) {
			t.Errorf("GreaseTransportParam(%d) = true", id)
		}
	}
}

func TestRestAndOffset(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4})
	if _, err := r.Uint8(); err != nil {
		t.Fatal(err)
	}
	if r.Offset() != 1 {
		t.Fatalf("Offset = %d", r.Offset())
	}
	rest := r.Rest()
	if !bytes.Equal(rest, []byte{2, 3, 4}) || !r.Empty() {
		t.Fatalf("Rest = %v, empty=%v", rest, r.Empty())
	}
}

func BenchmarkVarintDecode(b *testing.B) {
	buf := AppendVarint(nil, 494878333)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Reader{buf: buf}
		if _, err := r.Varint(); err != nil {
			b.Fatal(err)
		}
	}
}
