package baselines

import (
	"crypto/md5"
	"encoding/hex"
	"strconv"
	"strings"

	"videoplat/internal/tlsproto"
	"videoplat/internal/wire"
)

// JA3 computes the JA3 ClientHello fingerprint string and its MD5 digest
// (Althouse et al., the fingerprinting tool the paper's related work
// discusses). GREASE values are excluded, per the reference implementation.
func JA3(ch *tlsproto.ClientHello) (fullString, md5Hex string) {
	var b strings.Builder
	b.WriteString(strconv.Itoa(int(ch.LegacyVersion)))
	b.WriteByte(',')
	writeList := func(vals []uint16) {
		first := true
		for _, v := range vals {
			if wire.IsGrease(v) {
				continue
			}
			if !first {
				b.WriteByte('-')
			}
			first = false
			b.WriteString(strconv.Itoa(int(v)))
		}
	}
	writeList(ch.CipherSuites)
	b.WriteByte(',')
	writeList(ch.ExtensionTypes())
	b.WriteByte(',')
	writeList(ch.SupportedGroups())
	b.WriteByte(',')
	first := true
	for _, f := range ch.ECPointFormats() {
		if !first {
			b.WriteByte('-')
		}
		first = false
		b.WriteString(strconv.Itoa(int(f)))
	}
	s := b.String()
	sum := md5.Sum([]byte(s))
	return s, hex.EncodeToString(sum[:])
}
