package baselines

import (
	"math/rand/v2"
	"strings"
	"testing"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/tlsproto"
)

func genValues(t testing.TB, labels []string, prov fingerprint.Provider,
	tr fingerprint.Transport, n int, seed uint64) ([]*features.FieldValues, []string) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 5))
	var values []*features.FieldValues
	var y []string
	for _, label := range labels {
		for i := 0; i < n; i++ {
			f, err := fingerprint.Generate(rng, label, prov, tr, fingerprint.Options{})
			if err != nil {
				t.Fatal(err)
			}
			values = append(values, features.Extract(features.FromFlow(f, 2)))
			y = append(y, label)
		}
	}
	return values, y
}

func TestAllSixTechniques(t *testing.T) {
	ts := All()
	if len(ts) != 6 {
		t.Fatalf("techniques = %d, want 6", len(ts))
	}
	adaptable := 0
	for _, tech := range ts {
		if tech.Adaptable {
			adaptable++
		} else if _, err := tech.Build(nil, false); err == nil {
			t.Errorf("%s: Build should fail for non-adaptable", tech.Name)
		}
	}
	if adaptable != 4 {
		t.Errorf("adaptable = %d, want 4 (Table 6 shows two dashes)", adaptable)
	}
	if ByRef("[28]") == nil || ByRef("[99]") != nil {
		t.Error("ByRef lookup wrong")
	}
}

func TestAdaptableTechniquesTrainAndClassify(t *testing.T) {
	labels := []string{"windows_chrome", "windows_firefox", "macOS_safari", "ps5_nativeApp"}
	values, y := genValues(t, labels, fingerprint.Amazon, fingerprint.TCP, 25, 1)
	for _, tech := range All() {
		if !tech.Adaptable {
			continue
		}
		enc, err := tech.Build(values, false)
		if err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		x := make([][]float64, len(values))
		for i, v := range values {
			x[i] = enc.Transform(v)
			if len(x[i]) != enc.Width() {
				t.Fatalf("%s: width mismatch", tech.Name)
			}
		}
		d, err := ml.NewDataset(x, y)
		if err != nil {
			t.Fatal(err)
		}
		res := ml.CrossValidate(func() ml.Classifier {
			return &ml.RandomForest{Config: ml.ForestConfig{NumTrees: 10, MaxDepth: 12, Seed: 2}}
		}, d, 5, 3)
		// These four platforms differ strongly at the TCP/TLS level; every
		// adaptable technique should beat random (0.25) comfortably.
		if res.Accuracy < 0.5 {
			t.Errorf("%s: accuracy = %.3f", tech.Name, res.Accuracy)
		}
	}
}

func TestRenCollapsesOnQUIC(t *testing.T) {
	// [53] keeps only init_packet_size over QUIC; its accuracy on QUIC
	// platforms with similar initial sizes must be far below a richer
	// technique's, reproducing Table 6's 11.3% vs 90%+ gap in shape.
	labels := []string{"windows_chrome", "windows_firefox", "macOS_safari",
		"android_nativeApp", "iOS_nativeApp"}
	values, y := genValues(t, labels, fingerprint.YouTube, fingerprint.QUIC, 20, 4)

	evalTech := func(ref string) float64 {
		tech := ByRef(ref)
		enc, err := tech.Build(values, true)
		if err != nil {
			t.Fatal(err)
		}
		x := make([][]float64, len(values))
		for i, v := range values {
			x[i] = enc.Transform(v)
		}
		d, _ := ml.NewDataset(x, y)
		res := ml.CrossValidate(func() ml.Classifier {
			return &ml.RandomForest{Config: ml.ForestConfig{NumTrees: 10, MaxDepth: 12, Seed: 5}}
		}, d, 5, 6)
		return res.Accuracy
	}
	ren := evalTech("[53]")
	anderson := evalTech("[6]")
	if ren >= anderson {
		t.Errorf("[53] (%.3f) should collapse below [6] (%.3f) on QUIC", ren, anderson)
	}
	if ren > 0.7 {
		t.Errorf("[53] QUIC accuracy = %.3f, expected to collapse", ren)
	}
}

func TestJA3(t *testing.T) {
	ch := &tlsproto.ClientHello{
		LegacyVersion:      tlsproto.VersionTLS12,
		CipherSuites:       []uint16{0x0a0a, 0x1301, 0xc02b}, // leading GREASE
		CompressionMethods: []byte{0},
		Extensions: []tlsproto.Extension{
			{Type: tlsproto.ExtServerName, Data: tlsproto.ServerNameData("example.com")},
			{Type: tlsproto.ExtSupportedGroups, Data: tlsproto.Uint16ListData([]uint16{0x2a2a, 0x001d, 0x0017})},
			{Type: tlsproto.ExtECPointFormats, Data: tlsproto.ECPointFormatsData([]byte{0})},
		},
	}
	s, digest := JA3(ch)
	want := "771,4865-49195,0-10-11,29-23,0"
	if s != want {
		t.Errorf("JA3 = %q, want %q", s, want)
	}
	if len(digest) != 32 {
		t.Errorf("digest = %q", digest)
	}
	if strings.Contains(s, "2570") { // 0x0a0a must be stripped
		t.Error("GREASE leaked into JA3")
	}
}

func TestJA3StableAcrossGreaseDraws(t *testing.T) {
	// Two Chromium flows differing only in GREASE draw and extension order
	// have different JA3 (order matters) but GREASE never appears.
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 5; i++ {
		f, err := fingerprint.Generate(rng, "windows_chrome", fingerprint.Netflix, fingerprint.TCP, fingerprint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := JA3(f.Hello)
		for _, g := range []string{"2570", "6682", "10794", "19018", "31354", "39578", "47802", "64250"} {
			for _, part := range strings.Split(s, ",") {
				for _, item := range strings.Split(part, "-") {
					if item == g {
						t.Fatalf("GREASE value %s in JA3 %q", g, s)
					}
				}
			}
		}
	}
}
