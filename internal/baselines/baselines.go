// Package baselines re-implements the six state-of-the-art techniques the
// paper benchmarks against in Table 6, each with the "required specific
// adaptations" the paper lists: flow-level granularity, expanded inference
// objectives and a common random-forest classification protocol. Two
// techniques ([55] Richardson & Garcia, [40] Marzani et al.) operate on
// per-host flow aggregates and cannot be adapted to single flows behind
// NAT; they are present but report themselves not adaptable, as the paper's
// dashes do.
package baselines

import (
	"fmt"
	"sort"
	"strings"

	"videoplat/internal/features"
)

// Technique is one prior method under the common evaluation protocol: it
// turns extracted handshake fields into its own feature matrix.
type Technique struct {
	// Name and Ref identify the technique ([n] in the paper's Table 6).
	Name string
	Ref  string
	// Objective is the technique's original inference objective.
	Objective string
	// Adaptable reports whether a flow-level adaptation exists.
	Adaptable bool
	// Adaptations lists the paper's "required specific adaptations".
	Adaptations string

	// build constructs a fitted encoder from training values; nil for
	// non-adaptable techniques.
	build func(train []*features.FieldValues, quic bool) (Encoder, error)
}

// Encoder transforms extracted field values into the technique's feature
// vectors.
type Encoder interface {
	Transform(v *features.FieldValues) []float64
	Width() int
}

// Build fits the technique's encoder on training data.
func (t *Technique) Build(train []*features.FieldValues, quic bool) (Encoder, error) {
	if !t.Adaptable {
		return nil, fmt.Errorf("baselines: %s is not adaptable to flow-level inference", t.Name)
	}
	return t.build(train, quic)
}

// subsetEncoder adapts features.Encoder to the Encoder interface.
type subsetEncoder struct{ enc *features.Encoder }

func (s subsetEncoder) Transform(v *features.FieldValues) []float64 { return s.enc.Transform(v) }
func (s subsetEncoder) Width() int                                  { return s.enc.Width() }

func subsetBuilder(tcpLabels, quicLabels []string) func([]*features.FieldValues, bool) (Encoder, error) {
	return func(train []*features.FieldValues, quic bool) (Encoder, error) {
		labels := tcpLabels
		if quic {
			labels = quicLabels
		}
		enc, err := features.NewEncoder(quic, labels)
		if err != nil {
			return nil, err
		}
		enc.Fit(train)
		return subsetEncoder{enc}, nil
	}
}

// wholeValueEncoder encodes each configured attribute as a single
// categorical id of its *entire* value (a whole cipher-suite list is one
// token), the coarse representation used by Lastovicka et al. [28].
type wholeValueEncoder struct {
	labels []string
	vocab  []map[string]int
}

func newWholeValueEncoder(labels []string, train []*features.FieldValues) *wholeValueEncoder {
	w := &wholeValueEncoder{labels: labels, vocab: make([]map[string]int, len(labels))}
	for li, label := range labels {
		set := map[string]bool{}
		for _, v := range train {
			set[wholeToken(v, label)] = true
		}
		sorted := make([]string, 0, len(set))
		for t := range set {
			sorted = append(sorted, t)
		}
		sort.Strings(sorted)
		m := make(map[string]int, len(sorted))
		for i, t := range sorted {
			m[t] = i + 1
		}
		w.vocab[li] = m
	}
	return w
}

func wholeToken(v *features.FieldValues, label string) string {
	if t, ok := v.Cats[label]; ok {
		return t
	}
	if l, ok := v.Lists[label]; ok {
		return strings.Join(l, "|")
	}
	if n, ok := v.Nums[label]; ok {
		return fmt.Sprintf("%g", n)
	}
	return ""
}

func (w *wholeValueEncoder) Transform(v *features.FieldValues) []float64 {
	out := make([]float64, len(w.labels))
	for li, label := range w.labels {
		out[li] = float64(w.vocab[li][wholeToken(v, label)])
	}
	return out
}

func (w *wholeValueEncoder) Width() int { return len(w.labels) }

// All returns the six techniques in Table 6 order.
func All() []*Technique {
	return []*Technique{
		{
			Name: "Anderson & McGrew", Ref: "[6]",
			Objective: "Dev. type + Soft. agent", Adaptable: true,
			Adaptations: "feature construction from fingerprint strings; classification process",
			// TLS-fingerprint components: version, cipher suites, extension
			// types and their contents (groups, point formats, sigalgs,
			// ALPN, versions, key shares, compression). No transport-layer
			// or QUIC-parameter visibility — that is our method's edge.
			build: subsetBuilder(
				[]string{"m2", "m3", "o1", "o4", "o5", "o6", "o7", "o12",
					"o13", "o18", "o19", "o21", "o22"},
				[]string{"m2", "m3", "o1", "o4", "o5", "o6", "o7", "o12",
					"o13", "o18", "o19", "o21", "o22"}),
		},
		{
			Name: "Fan et al.", Ref: "[14]",
			Objective: "Dev. type", Adaptable: true,
			Adaptations: "flow granularity; inference objective",
			// TCP/IP stack fingerprinting: transport-layer fields plus the
			// visible handshake length. Over QUIC only packet size, TTL and
			// the (decrypted) handshake length survive.
			build: subsetBuilder(
				[]string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10",
					"t11", "t12", "t13", "t14", "m1"},
				[]string{"t1", "t2", "m1"}),
		},
		{
			Name: "Lastovicka et al.", Ref: "[28]",
			Objective: "Dev. type", Adaptable: true,
			Adaptations: "flow granularity; inference objective",
			// Seven whole-value TLS features (server name, TLS version,
			// cipher suites, compression, extensions, groups, point formats).
			build: func(train []*features.FieldValues, quic bool) (Encoder, error) {
				return newWholeValueEncoder(
					[]string{"o2", "m2", "m3", "m4", "o1", "o4", "o5"}, train), nil
			},
		},
		{
			Name: "Richardson & Garcia", Ref: "[55]",
			Objective: "Dev. type + Soft. agent", Adaptable: false,
			Adaptations: "not adaptable (requires all flows of a host)",
		},
		{
			Name: "Ren et al.", Ref: "[53]",
			Objective: "Soft. agent", Adaptable: true,
			Adaptations: "inference objective",
			// Flow metadata plus the TLS record/message type & lengths; in
			// QUIC the record layer is encrypted, leaving only the initial
			// packet size — hence the paper's 11.3% on YouTube QUIC.
			build: subsetBuilder(
				[]string{"t1", "m1", "m5"},
				[]string{"t1"}),
		},
		{
			Name: "Marzani et al.", Ref: "[40]",
			Objective: "Soft. agent", Adaptable: false,
			Adaptations: "not adaptable (learns automata over per-host flow sequences)",
		},
	}
}

// ByRef returns the technique with the given bracketed reference.
func ByRef(ref string) *Technique {
	for _, t := range All() {
		if t.Ref == ref {
			return t
		}
	}
	return nil
}
