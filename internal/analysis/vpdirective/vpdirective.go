// Package vpdirective parses the //vp: comment directives that declare the
// serving spine's hot-path contracts in source, where the analyzers in
// sibling packages (borrowck, hotpath, nilguard) can enforce them at go vet
// time.
//
// The grammar deliberately mirrors the //go: pragma family: a directive is a
// line comment whose text starts with "vp:" immediately after the slashes
// (no space), followed by the directive name and space-separated arguments.
// Directives attach to the declaration whose doc comment they appear in:
//
//	//vp:hotpath
//	//  on a function or method: the function and everything it statically
//	//  calls inside this module must not contain allocating constructs.
//
//	//vp:borrowed param [param...]
//	//  on a function or method: the named pointer-typed parameters are
//	//  borrowed for the duration of the call and must not be stored,
//	//  captured, sent, appended or returned.
//
//	//vp:nilsafe
//	//  on a type declaration: every exported pointer-receiver method must
//	//  begin with a nil-receiver guard.
//
//	//vp:allocok reason
//	//  on (or immediately above) an allocating line inside a hot-path
//	//  function: waives that one allocation site. The reason is mandatory
//	//  by convention — it documents why the allocation is amortized or
//	//  unreachable on the serving path (cold error path, warm-scratch
//	//  growth, lazy one-time init).
package vpdirective

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment marker shared by all directives.
const Prefix = "vp:"

// Func holds the directives attached to one function declaration.
type Func struct {
	// Hotpath reports a //vp:hotpath directive.
	Hotpath bool
	// Borrowed lists parameter names from //vp:borrowed directives, in
	// source order across all such lines.
	Borrowed []string
	// BorrowedPos is the position of the first //vp:borrowed directive
	// (for diagnostics about the directive itself).
	BorrowedPos token.Pos
}

// parse splits one comment's text into a directive name and its arguments,
// or returns ok=false for ordinary comments. Directives are line comments of
// the form "//vp:name arg arg" with no space between // and vp:.
func parse(c *ast.Comment) (name string, args []string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//"+Prefix) {
		return "", nil, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, "//"+Prefix))
	if len(fields) == 0 {
		return "", nil, false
	}
	return fields[0], fields[1:], true
}

// ForFunc extracts the directives in a function declaration's doc comment.
func ForFunc(fd *ast.FuncDecl) Func {
	var out Func
	if fd.Doc == nil {
		return out
	}
	for _, c := range fd.Doc.List {
		name, args, ok := parse(c)
		if !ok {
			continue
		}
		switch name {
		case "hotpath":
			out.Hotpath = true
		case "borrowed":
			if out.BorrowedPos == token.NoPos {
				out.BorrowedPos = c.Pos()
			}
			out.Borrowed = append(out.Borrowed, args...)
		}
	}
	return out
}

// NilSafe reports whether a type declaration carries //vp:nilsafe in either
// the GenDecl doc (the usual single-spec form) or the TypeSpec's own doc
// (grouped type blocks).
func NilSafe(decl *ast.GenDecl, spec *ast.TypeSpec) bool {
	for _, g := range []*ast.CommentGroup{decl.Doc, spec.Doc, spec.Comment} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if name, _, ok := parse(c); ok && name == "nilsafe" {
				return true
			}
		}
	}
	return false
}

// AllocWaivers returns the set of line numbers in f (1-based, in f's file)
// carrying a //vp:allocok waiver. A waiver on line N suppresses hot-path
// allocation diagnostics on lines N and N+1, so both trailing and preceding
// placements work:
//
//	buf = grow(buf) //vp:allocok warm-scratch growth, amortized
//
//	//vp:allocok lazy one-time init, pinned by TestFoldZeroAlloc
//	m = make(map[string]int)
func AllocWaivers(fset *token.FileSet, f *ast.File) map[int]bool {
	var lines map[int]bool
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, _, ok := parse(c)
			if !ok || name != "allocok" {
				continue
			}
			if lines == nil {
				lines = make(map[int]bool)
			}
			lines[fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}

// Waived reports whether pos falls on a line covered by a waiver set from
// AllocWaivers (the waiver's own line or the line after it).
func Waived(waivers map[int]bool, fset *token.FileSet, pos token.Pos) bool {
	if len(waivers) == 0 {
		return false
	}
	line := fset.Position(pos).Line
	return waivers[line] || waivers[line-1]
}
