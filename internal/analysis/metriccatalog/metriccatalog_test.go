package metriccatalog_test

import (
	"testing"

	"videoplat/internal/analysis/metriccatalog"
	"videoplat/internal/analysis/vptest"
)

func TestMetricCatalog(t *testing.T) {
	vptest.Run(t, "testdata", metriccatalog.Analyzer, "metrics")
}
