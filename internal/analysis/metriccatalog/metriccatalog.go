// Package metriccatalog is the static mirror of the server's runtime
// metric-drift test: every videoplat_* series the /metrics handler can emit
// must be declared in the metricsCatalog table (whose names MetricNames()
// exposes to the documentation drift test), and every catalog entry must
// actually emit the series it declares.
//
// The analyzer activates only in packages that define the catalog variable.
// There it checks, over non-test files:
//
//   - each catalog entry's name is unique
//   - each entry's sampler emits at least one literal carrying the entry's
//     own name, and no literal carrying a different series name (the
//     copy-paste hazard the runtime test cannot see until the series is
//     scraped)
//   - every prefixed string literal outside the catalog resolves to a
//     declared entry
//
// Series names assembled by string concatenation or %s-formatting of the
// name itself are invisible to this pass — the runtime drift test remains
// the backstop for those.
package metriccatalog

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzer is the metriccatalog pass.
var Analyzer = &analysis.Analyzer{
	Name: "metriccatalog",
	Doc:  "check that emitted videoplat_* metric literals and the metricsCatalog table agree",
	Run:  run,
}

var (
	prefix     = "videoplat_"
	catalogVar = "metricsCatalog"
)

func init() {
	Analyzer.Flags.StringVar(&prefix, "prefix", prefix, "metric name prefix the catalog owns")
	Analyzer.Flags.StringVar(&catalogVar, "catalog", catalogVar, "package-level catalog variable name")
}

func run(pass *analysis.Pass) (interface{}, error) {
	catalog := findCatalog(pass)
	if catalog == nil {
		return nil, nil // not the metrics-owning package
	}

	// Pass 1: catalog entries — name uniqueness and per-entry emission
	// consistency.
	names := map[string]token.Pos{}
	for _, elt := range catalog.Elts {
		entry, ok := elt.(*ast.CompositeLit)
		if !ok {
			continue
		}
		name, pos, ok := entryName(entry)
		if !ok {
			pass.Reportf(elt.Pos(), "%s entry has no literal name field; the catalog must name every series statically", catalogVar)
			continue
		}
		if prev, dup := names[name]; dup {
			pass.Reportf(pos, "duplicate catalog entry %q (previously declared at %s)", name, pass.Fset.Position(prev))
			continue
		}
		names[name] = pos

		emitted := literalSeries(pass, entry)
		sawOwn := false
		for _, lit := range emitted {
			if lit.name == name {
				sawOwn = true
			} else {
				pass.Reportf(lit.pos, "catalog entry %q emits series %q; a sampler must only emit its own series", name, lit.name)
			}
		}
		if !sawOwn {
			pass.Reportf(pos, "catalog entry %q never emits its own series by literal; the sampler and the name have drifted", name)
		}
	}

	// Pass 2: prefixed literals outside the catalog must resolve to an
	// entry.
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if cl, ok := n.(*ast.CompositeLit); ok && cl == catalog {
				return false // pass 1 covered the catalog subtree
			}
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			for _, s := range seriesInLiteral(lit) {
				if _, ok := names[s.name]; !ok {
					pass.Reportf(s.pos, "series %q is not declared in %s; add a catalog entry so MetricNames() and the docs drift test see it", s.name, catalogVar)
				}
			}
			return true
		})
	}
	return nil, nil
}

// findCatalog locates the package-level catalog composite literal.
func findCatalog(pass *analysis.Pass) *ast.CompositeLit {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != catalogVar || i >= len(vs.Values) {
						continue
					}
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						return cl
					}
				}
			}
		}
	}
	return nil
}

// entryName extracts a catalog entry's declared series name: the first
// positional field, or a field keyed "name".
func entryName(entry *ast.CompositeLit) (string, token.Pos, bool) {
	if len(entry.Elts) == 0 {
		return "", token.NoPos, false
	}
	field := entry.Elts[0]
	for _, elt := range entry.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "name" {
			field = kv.Value
			break
		}
	}
	lit, ok := field.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", token.NoPos, false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil || !strings.HasPrefix(s, prefix) {
		return "", token.NoPos, false
	}
	return seriesName(s), lit.Pos(), true
}

type seriesLit struct {
	name string
	pos  token.Pos
}

// literalSeries collects every prefixed series literal in a subtree,
// excluding the entry's own name field (handled by entryName).
func literalSeries(pass *analysis.Pass, entry *ast.CompositeLit) []seriesLit {
	var out []seriesLit
	first := true
	ast.Inspect(entry, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if first {
			// The first string literal in the entry is the name field
			// itself; everything after it is sampler territory.
			if s, err := strconv.Unquote(lit.Value); err == nil && strings.HasPrefix(s, prefix) {
				first = false
				return true
			}
		}
		out = append(out, seriesInLiteral(lit)...)
		return true
	})
	return out
}

// seriesInLiteral extracts every prefixed series name occurring in one
// string literal (a literal may embed the name inside a larger format
// string, e.g. `videoplat_x{shard="%d"} %d`).
func seriesInLiteral(lit *ast.BasicLit) []seriesLit {
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil
	}
	var out []seriesLit
	for off := 0; ; {
		i := strings.Index(s[off:], prefix)
		if i < 0 {
			break
		}
		start := off + i
		out = append(out, seriesLit{name: seriesName(s[start:]), pos: lit.Pos()})
		off = start + len(prefix)
	}
	return out
}

// seriesName truncates a prefixed string at the first character that cannot
// be part of a Prometheus series name.
func seriesName(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':' {
			continue
		}
		return s[:i]
	}
	return s
}

// isTestFile reports whether f is a _test.go file.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
