// Package metrics mirrors internal/server's metricsCatalog shape for the
// metriccatalog analyzer: a table of metricDef entries whose samplers write
// exposition lines, plus emission sites outside the table.
package metrics

import "strings"

type metricDef struct {
	name   string
	help   string
	sample func(w *strings.Builder)
}

func dynName() string { return "videoplat" + "_dyn_total" }

var metricsCatalog = []metricDef{
	{
		"videoplat_requests_total",
		"requests served",
		func(w *strings.Builder) {
			w.WriteString("videoplat_requests_total 42\n")
		},
	},
	{
		"videoplat_latency_seconds",
		"stage latency",
		func(w *strings.Builder) {
			w.WriteString(`videoplat_latency_seconds{stage="parse"} 0.1` + "\n")
		},
	},
	{
		"videoplat_copypaste_total", // want `catalog entry "videoplat_copypaste_total" never emits its own series by literal`
		"sampler pasted from another entry",
		func(w *strings.Builder) {
			w.WriteString("videoplat_requests_total 7\n") // want `catalog entry "videoplat_copypaste_total" emits series "videoplat_requests_total"; a sampler must only emit its own series`
		},
	},
	{
		"videoplat_ghost_total", // want `catalog entry "videoplat_ghost_total" never emits its own series by literal; the sampler and the name have drifted`
		"declared but never emitted",
		func(w *strings.Builder) {
			w.WriteString("# nothing prefixed here\n")
		},
	},
	{
		"videoplat_requests_total", // want `duplicate catalog entry "videoplat_requests_total"`
		"second declaration of the same series",
		func(w *strings.Builder) {
			w.WriteString("videoplat_requests_total 1\n")
		},
	},
	{ // want `metricsCatalog entry has no literal name field; the catalog must name every series statically`
		dynName(),
		"name assembled at runtime",
		func(w *strings.Builder) {},
	},
}

// MetricNames is the documentation-drift hook, as in internal/server.
func MetricNames() []string {
	out := make([]string, 0, len(metricsCatalog))
	for _, d := range metricsCatalog {
		out = append(out, d.name)
	}
	return out
}

// emitExtra writes series outside the catalog: declared names resolve,
// undeclared ones are flagged.
func emitExtra(w *strings.Builder) {
	w.WriteString("videoplat_requests_total 1\n")
	w.WriteString("videoplat_latency_seconds{stage=\"fold\"} 0.2\n")
	w.WriteString("videoplat_rogue_total 9\n") // want `series "videoplat_rogue_total" is not declared in metricsCatalog; add a catalog entry so MetricNames\(\) and the docs drift test see it`
}

var _ = emitExtra
