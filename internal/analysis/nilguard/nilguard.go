// Package nilguard enforces the observability layer's nil-safety contract:
// a type annotated //vp:nilsafe promises that every exported pointer-receiver
// method is a no-op (or returns a zero value) on a nil receiver, so
// instrumented code paths need exactly one pointer check — or none at all
// when the callee guards itself. The pipeline leans on this: an
// un-instrumented deployment passes nil Observer/Tracer/Journal pointers
// straight through and the hot path must survive every method hit.
//
// The rule is syntactic and strict on purpose: the method's first statement
// must be an if whose condition tests the receiver against nil (possibly as
// one operand of an || chain) and whose body returns. Anything else — a
// guard after other work, a guard hidden in a helper — fails, because the
// contract is "a single predictable branch before anything dereferences".
package nilguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"videoplat/internal/analysis/vpdirective"
)

// Analyzer is the nilguard pass.
var Analyzer = &analysis.Analyzer{
	Name:     "nilguard",
	Doc:      "check that exported methods on //vp:nilsafe types begin with a nil-receiver guard",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Collect the annotated type names.
	nilsafe := map[types.Object]bool{}
	ins.Preorder([]ast.Node{(*ast.GenDecl)(nil)}, func(n ast.Node) {
		gd := n.(*ast.GenDecl)
		if gd.Tok != token.TYPE {
			return
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !vpdirective.NilSafe(gd, ts) {
				continue
			}
			if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
				nilsafe[obj] = true
			}
		}
	})
	if len(nilsafe) == 0 {
		return nil, nil
	}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() || fd.Body == nil {
			return
		}
		// Pointer receiver on an annotated type?
		recvField := fd.Recv.List[0]
		star, ok := recvField.Type.(*ast.StarExpr)
		if !ok {
			return // value receivers cannot observe a nil pointer
		}
		base := ast.Unparen(star.X)
		if ix, ok := base.(*ast.IndexExpr); ok { // generic receiver T[P]
			base = ix.X
		}
		id, ok := base.(*ast.Ident)
		if !ok || !nilsafe[pass.TypesInfo.Uses[id]] {
			return
		}
		if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
			pass.Reportf(fd.Pos(), "method %s.%s on //vp:nilsafe type must name its receiver and begin with a nil-receiver guard",
				id.Name, fd.Name.Name)
			return
		}
		recv := pass.TypesInfo.Defs[recvField.Names[0]]
		if guardsNil(pass, fd.Body, recv) {
			return
		}
		pass.Reportf(fd.Pos(), "method %s.%s on //vp:nilsafe type %s must begin with a nil-receiver guard (if %s == nil { return ... })",
			id.Name, fd.Name.Name, id.Name, recvField.Names[0].Name)
	})
	return nil, nil
}

// guardsNil reports whether the body's first statement is an if whose
// condition tests the receiver against nil in a position that short-circuits
// (the condition itself, or any operand of a top-level || chain) and whose
// body terminates with a return.
func guardsNil(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !condTestsNil(pass, ifs.Cond, recv) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, ok = ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return ok
}

// condTestsNil matches `recv == nil` (either operand order) anywhere in a
// top-level || chain.
func condTestsNil(pass *analysis.Pass, cond ast.Expr, recv types.Object) bool {
	cond = ast.Unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op == token.LOR {
		return condTestsNil(pass, be.X, recv) || condTestsNil(pass, be.Y, recv)
	}
	if be.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
	}
	return (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y))
}
