// Package nilsafe exercises the nilguard analyzer with an obs-shaped
// observer type whose methods must all be nil-receiver safe.
package nilsafe

// Observer is nil-safe: all exported pointer-receiver methods must begin
// with a nil-receiver guard.
//
//vp:nilsafe
type Observer struct {
	count uint64
}

// Record is the canonical guarded form.
func (o *Observer) Record(v uint64) {
	if o == nil {
		return
	}
	o.count += v
}

// RecordBounded guards with the receiver as one || operand.
func (o *Observer) RecordBounded(v uint64, max uint64) {
	if o == nil || v > max {
		return
	}
	o.count += v
}

// Count guards and returns a zero value.
func (o *Observer) Count() uint64 {
	if nil == o {
		return 0
	}
	return o.count
}

// Unguarded dereferences a possibly-nil receiver.
func (o *Observer) Unguarded(v uint64) { // want `method Observer\.Unguarded on //vp:nilsafe type Observer must begin with a nil-receiver guard`
	o.count += v
	if o == nil { // too late: the dereference above already faulted
		return
	}
}

// GuardedSecond does work before the guard.
func (o *Observer) GuardedSecond(v uint64) { // want `method Observer\.GuardedSecond on //vp:nilsafe type Observer must begin with a nil-receiver guard`
	_ = v
	if o == nil {
		return
	}
	o.count += v
}

// GuardNoReturn tests but does not return.
func (o *Observer) GuardNoReturn(v uint64) { // want `method Observer\.GuardNoReturn on //vp:nilsafe type Observer must begin with a nil-receiver guard`
	if o == nil {
		v = 0
	}
	o.count += v
}

// Reset cannot guard a receiver it never names.
func (*Observer) Reset() {} // want `method Observer\.Reset on //vp:nilsafe type must name its receiver`

// reset is unexported: internal callers already hold a non-nil receiver.
func (o *Observer) reset() { o.count = 0 }

// Snapshot is a value-receiver method: a nil pointer cannot reach it
// without faulting at the call site, so no guard is required.
func (o Observer) Snapshot() uint64 { return o.count }

// Plain is not annotated; nothing is required of it.
type Plain struct{ n int }

// Bump needs no guard.
func (p *Plain) Bump() { p.n++ }
