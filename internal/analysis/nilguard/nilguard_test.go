package nilguard_test

import (
	"testing"

	"videoplat/internal/analysis/nilguard"
	"videoplat/internal/analysis/vptest"
)

func TestNilguard(t *testing.T) {
	vptest.Run(t, "testdata", nilguard.Analyzer, "nilsafe")
}
