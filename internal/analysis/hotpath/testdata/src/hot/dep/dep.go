// Package dep is the cross-package callee for the hotpath analyzer test:
// it carries no //vp:hotpath annotation itself, so nothing here is reported
// directly, but the analyzer exports allocFacts for its allocating
// functions and the importing hot package is held to account at its call
// sites.
package dep

// Grow allocates a fresh backing array on every call.
func Grow() []int {
	return make([]int, 16)
}

// Indirect reaches an allocation only through Grow.
func Indirect() int {
	return len(Grow())
}

// Fine performs no allocation at all.
func Fine(x int) int { return x + 1 }
