// Package hot exercises the hotpath analyzer: direct allocating constructs,
// same-package and cross-package transitive callees, the self-append
// warm-scratch exemption, and //vp:allocok waivers.
package hot

import (
	"fmt"

	"hot/dep"
)

// Stats is a plain value type used as an allocation target.
type Stats struct{ n int }

func sinkPtr(v interface{})  { _ = v }
func sinkAny(v interface{})  { _ = v }
func useBytes(b []byte) int  { return len(b) }
func useString(s string) int { return len(s) }

// DirectAllocs piles up one flagged construct per line.
//
//vp:hotpath
func DirectAllocs(b []byte, name string) {
	s := []int{1, 2, 3} // want `//vp:hotpath function DirectAllocs: slice literal allocates`
	m := map[string]int{} // want `//vp:hotpath function DirectAllocs: map literal allocates`
	p := &Stats{} // want `//vp:hotpath function DirectAllocs: &Stats composite literal allocates`
	buf := make([]byte, 8) // want `//vp:hotpath function DirectAllocs: make allocates`
	q := new(Stats) // want `//vp:hotpath function DirectAllocs: new allocates`
	msg := name + "!" // want `//vp:hotpath function DirectAllocs: string concatenation allocates`
	_ = useString(string(b)) // want `//vp:hotpath function DirectAllocs: \[\]byte/\[\]rune to string conversion allocates`
	_ = useBytes([]byte(name)) // want `//vp:hotpath function DirectAllocs: string to \[\]byte/\[\]rune conversion allocates`
	fmt.Println(name) // want `//vp:hotpath function DirectAllocs: call to fmt\.Println allocates`
	f := func() {} // want `//vp:hotpath function DirectAllocs: function literal allocates a closure`
	go dep.Fine(1) // want `//vp:hotpath function DirectAllocs: go statement allocates a goroutine`
	sinkAny(len(s) + len(m) + p.n + len(buf) + q.n + len(msg)) // want `//vp:hotpath function DirectAllocs: passing int by value to interface parameter boxes it on the heap`
	f()
}

// GrowForeign appends to a destination other than the slice being grown.
//
//vp:hotpath
func GrowForeign(dst, src []int) []int {
	out := append(dst, src...) // want `//vp:hotpath function GrowForeign: append to a destination other than the grown slice may allocate a new backing array`
	return out
}

// UseHelper only allocates transitively, through a same-package helper.
//
//vp:hotpath
func UseHelper() {
	helper() // want `//vp:hotpath function UseHelper calls hot\.helper, which reaches an allocating construct`
}

func helper() {
	_ = make([]int, 4)
}

// DeepChain reaches an allocation two same-package hops away.
//
//vp:hotpath
func DeepChain() {
	hop1() // want `//vp:hotpath function DeepChain calls hot\.hop1, which reaches an allocating construct`
}

func hop1() { hop2() }
func hop2() { _ = []string{"x"} }

// UseDep reaches allocations only through the imported dep package; the
// diagnostics ride in on dep's exported allocFacts.
//
//vp:hotpath
func UseDep() {
	_ = dep.Grow() // want `//vp:hotpath function UseDep calls hot/dep\.Grow, which reaches an allocating construct`
	_ = dep.Indirect() // want `//vp:hotpath function UseDep calls hot/dep\.Indirect, which reaches an allocating construct`
}

// CleanFold is the contract-respecting shape: index writes into provided
// buffers, self-append growth, pointer arguments to interface parameters,
// and non-allocating callees.
//
//vp:hotpath
func CleanFold(dst, src []float64, s *Stats) float64 {
	var acc float64
	for i, v := range src {
		if i < len(dst) {
			dst[i] = v
		}
		acc += v
	}
	dst = append(dst, acc)    // self-append: legal warm-scratch growth
	dst = append(dst[:0], 0)  // reslice-to-zero refill: also legal
	_ = dst
	sinkPtr(s) // pointers box without heap allocation
	s.n = dep.Fine(s.n)
	return acc
}

// Waived allocates on a line blessed by //vp:allocok, so nothing fires.
//
//vp:hotpath
func Waived() *Stats {
	//vp:allocok cold construction path, pinned by the package benchmarks
	return &Stats{}
}

// WaivedEdge calls allocating functions on waived lines: the waiver blesses
// the callee's transitive allocations along with the line's own.
//
//vp:hotpath
func WaivedEdge() {
	helper()     //vp:allocok amortized warm-up, pinned by the package benchmarks
	_ = dep.Grow() //vp:allocok cold first-call growth, pinned by the package benchmarks
}
