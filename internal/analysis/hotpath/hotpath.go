// Package hotpath statically enforces the zero-allocation contract on
// functions annotated //vp:hotpath: neither the function nor anything it
// statically calls within this module may contain an allocating construct.
// The runtime ground truth is the AllocsPerRun pins (TestRecordZeroAlloc,
// TestQualityFoldZeroAlloc, TestClassifyHandshakeZeroAlloc, ...); this
// analyzer is the merge-time tripwire that fires before a benchmark has to.
//
// Flagged constructs:
//
//   - slice and map composite literals, &T{...}, make, new
//   - append whose destination is not the slice being grown in place
//     (x = append(x, ...) and x = append(x[:0], ...) are the legal
//     warm-scratch patterns; anything else may allocate a fresh backing
//     array on every call)
//   - string concatenation, string<->[]byte/[]rune conversions
//   - conversions of non-pointer concrete values to interface types
//   - function literals (closures) and go statements
//   - calls into fmt and the allocating parts of strings/strconv
//   - calls to module functions whose own (transitive) analysis found any
//     of the above, propagated across packages via analysis facts
//
// Amortized or cold allocation sites that the runtime pins have already
// blessed are waived line-by-line with //vp:allocok <reason> — the waiver
// forces the amortization argument into the source where reviewers see it.
// A waiver on a call line also blesses the callee's transitive allocations
// (needed when the allocating site lives in the standard library, which
// cannot carry annotations — e.g. an amortized strconv.AppendUint).
//
// Known soft spots, by design: dynamic dispatch (interface method calls and
// func values) is not followed, map growth on insert is treated as
// amortized, and sync.Pool.Get's New path is trusted. The AllocsPerRun pins
// remain authoritative for those.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"videoplat/internal/analysis/vpdirective"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name:      "hotpath",
	Doc:       "check that //vp:hotpath functions and their module callees do not allocate",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*allocFact)(nil)},
	Run:       run,
}

// allocFact records, for one function, the formatted transitive allocation
// sites its body can reach (capped at factSiteCap). Exported for every
// function that has any, so downstream packages can hold their own hot-path
// roots to account for what they call here.
type allocFact struct {
	Sites []string
}

func (*allocFact) AFact() {}

func (f *allocFact) String() string { return "allocates(" + strings.Join(f.Sites, "; ") + ")" }

// factSiteCap bounds the exemplar sites carried per function fact.
const factSiteCap = 3

// maxEdgeDepth caps chain expansion through local call graphs (defensive;
// real chains are short).
const maxEdgeDepth = 32

type ownSite struct {
	pos token.Pos
	msg string
}

type callEdge struct {
	pos    token.Pos
	callee *types.Func
}

type funcInfo struct {
	fn    *types.Func
	hot   bool
	own   []ownSite
	edges []callEdge
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	waivers := map[*ast.File]map[int]bool{}
	for _, f := range pass.Files {
		waivers[f] = vpdirective.AllocWaivers(pass.Fset, f)
	}
	fileOf := func(pos token.Pos) *ast.File {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f
			}
		}
		return nil
	}

	infos := map[*types.Func]*funcInfo{}
	var order []*funcInfo
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil || fd.Body == nil {
			return
		}
		info := &funcInfo{fn: fn, hot: vpdirective.ForFunc(fd).Hotpath}
		w := waivers[fileOf(fd.Pos())]
		collectBody(pass, fd.Body, w, info)
		infos[fn] = info
		order = append(order, info)
	})

	// summarize computes a function's transitive allocation exemplars
	// (formatted strings with positions), memoized, cycle-safe.
	summaries := map[*types.Func][]string{}
	visiting := map[*types.Func]bool{}
	var summarize func(fn *types.Func, depth int) []string
	summarize = func(fn *types.Func, depth int) []string {
		if s, ok := summaries[fn]; ok {
			return s
		}
		if visiting[fn] || depth > maxEdgeDepth {
			return nil
		}
		info, ok := infos[fn]
		if !ok {
			// Not declared in this package: a module package's fact, a
			// denylisted stdlib call (handled at the edge), or trusted.
			var imported allocFact
			if fn.Pkg() != nil && pass.ImportObjectFact(fn, &imported) {
				summaries[fn] = imported.Sites
				return imported.Sites
			}
			if msg, bad := stdlibAllocates(fn); bad {
				s := []string{msg}
				summaries[fn] = s
				return s
			}
			summaries[fn] = nil
			return nil
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		var sites []string
		for _, s := range info.own {
			if len(sites) >= factSiteCap {
				break
			}
			sites = append(sites, fmt.Sprintf("%s: %s", pass.Fset.Position(s.pos), s.msg))
		}
		for _, e := range info.edges {
			if len(sites) >= factSiteCap {
				break
			}
			if callee := summarize(e.callee, depth+1); len(callee) > 0 {
				sites = append(sites, fmt.Sprintf("%s: call to %s reaches %s",
					pass.Fset.Position(e.pos), e.callee.FullName(), callee[0]))
			}
		}
		summaries[fn] = sites
		return sites
	}

	for _, info := range order {
		sites := summarize(info.fn, 0)
		if len(sites) > 0 {
			pass.ExportObjectFact(info.fn, &allocFact{Sites: sites})
		}
		if !info.hot {
			continue
		}
		for _, s := range info.own {
			pass.Reportf(s.pos, "//vp:hotpath function %s: %s", info.fn.Name(), s.msg)
		}
		for _, e := range info.edges {
			if callee := summarize(e.callee, 0); len(callee) > 0 {
				pass.Reportf(e.pos, "//vp:hotpath function %s calls %s, which reaches an allocating construct: %s",
					info.fn.Name(), e.callee.FullName(), callee[0])
			}
		}
	}
	return nil, nil
}

// collectBody walks one function body, recording allocating constructs and
// static call edges. Closure bodies are not descended into — the closure
// itself is the allocation.
func collectBody(pass *analysis.Pass, body *ast.BlockStmt, waivers map[int]bool, info *funcInfo) {
	waived := func(pos token.Pos) bool {
		return vpdirective.Waived(waivers, pass.Fset, pos)
	}
	flag := func(pos token.Pos, msg string) {
		if waived(pos) {
			return
		}
		info.own = append(info.own, ownSite{pos, msg})
	}

	// Pre-pass: mark append calls that grow their own destination in place
	// (x = append(x, ...), x = append(x[:0], ...)) — the legal warm-scratch
	// pattern.
	selfAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(sliceBase(call.Args[0])) {
				selfAppend[call] = true
			}
		}
		return true
	})

	handledLits := map[*ast.CompositeLit]bool{}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			flag(e.Pos(), "function literal allocates a closure")
			return false // body belongs to the closure, not this frame
		case *ast.GoStmt:
			flag(e.Pos(), "go statement allocates a goroutine")
			return true
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if lit, ok := e.X.(*ast.CompositeLit); ok {
					handledLits[lit] = true
					flag(e.Pos(), fmt.Sprintf("&%s composite literal allocates", types.ExprString(lit.Type)))
				}
			}
		case *ast.CompositeLit:
			if handledLits[e] {
				return true
			}
			switch pass.TypesInfo.TypeOf(e).Underlying().(type) {
			case *types.Slice:
				flag(e.Pos(), "slice literal allocates")
			case *types.Map:
				flag(e.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						flag(e.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			collectCall(pass, e, flag, waived, selfAppend, info)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// collectCall classifies one call expression: builtin allocators,
// conversions, static callees and implicit interface-boxing arguments. A
// //vp:allocok waiver covering the call line suppresses the call edge too,
// blessing the callee's transitive allocations along with the line's own.
func collectCall(pass *analysis.Pass, call *ast.CallExpr, flag func(token.Pos, string), waived func(token.Pos) bool, selfAppend map[*ast.CallExpr]bool, info *funcInfo) {
	// Conversions: T(x).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		flagConversion(pass, call, tv.Type, flag)
		return
	}

	switch {
	case isBuiltin(pass, call.Fun, "make"):
		flag(call.Pos(), "make allocates")
		return
	case isBuiltin(pass, call.Fun, "new"):
		flag(call.Pos(), "new allocates")
		return
	case isBuiltin(pass, call.Fun, "append"):
		if !selfAppend[call] {
			flag(call.Pos(), "append to a destination other than the grown slice may allocate a new backing array")
		}
		return
	}

	fn := staticCallee(pass, call)
	if fn == nil {
		return // dynamic dispatch: interface method or func value
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		if msg, bad := stdlibAllocates(fn); bad {
			flag(call.Pos(), msg)
			return
		}
	}
	if !waived(call.Pos()) {
		info.edges = append(info.edges, callEdge{pos: call.Pos(), callee: fn})
	}

	// Implicit interface boxing: a non-pointer concrete argument passed to
	// an interface parameter is heap-allocated by the conversion.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if boxingAllocates(at) {
			flag(arg.Pos(), fmt.Sprintf("passing %s by value to interface parameter boxes it on the heap", at))
		}
	}
}

// flagConversion flags allocating type conversions.
func flagConversion(pass *analysis.Pass, call *ast.CallExpr, to types.Type, flag func(token.Pos, string)) {
	from := pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isString(toU) && isByteOrRuneSlice(fromU) {
		flag(call.Pos(), "[]byte/[]rune to string conversion allocates")
		return
	}
	if isByteOrRuneSlice(toU) && isString(fromU) {
		flag(call.Pos(), "string to []byte/[]rune conversion allocates")
		return
	}
	if types.IsInterface(toU) && !types.IsInterface(fromU) && boxingAllocates(from) {
		flag(call.Pos(), fmt.Sprintf("conversion of %s to interface boxes it on the heap", from))
	}
}

// boxingAllocates reports whether converting a value of concrete type t to
// an interface heap-allocates: true for everything except pointers, maps,
// channels, funcs and unsafe pointers (whose interface representation is the
// word itself).
func boxingAllocates(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isBuiltin reports whether fun is a use of the named universe builtin.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// sliceBase strips parens and slicing (x[a:b] -> x) so append(x[:0], ...)
// matches destination x.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}

// staticCallee resolves a call to a statically-known *types.Func, or nil
// for dynamic calls (func values, interface methods).
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil // dynamic dispatch
		}
	}
	return fn
}

// stdlibAllocates is the denylist of standard-library calls that always
// allocate: all of fmt, plus the string-building parts of strings and
// strconv. Everything else outside the module is trusted (the AllocsPerRun
// pins are the ground truth there).
func stdlibAllocates(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "fmt":
		return "call to fmt." + name + " allocates", true
	case "strings":
		switch name {
		case "Join", "Repeat", "Replace", "ReplaceAll", "Split", "SplitN",
			"SplitAfter", "SplitAfterN", "Fields", "FieldsFunc", "Map",
			"ToLower", "ToUpper", "ToTitle", "Title", "Clone", "Concat":
			return "call to strings." + name + " allocates", true
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool",
			"FormatComplex", "Quote", "QuoteToASCII", "QuoteRune", "Unquote":
			return "call to strconv." + name + " allocates", true
		}
	case "sort":
		switch name {
		case "Slice", "SliceStable", "SliceIsSorted", "Sort", "Stable":
			// sort.Slice boxes its arguments in interfaces internally.
			return "call to sort." + name + " allocates", true
		}
	}
	return "", false
}
