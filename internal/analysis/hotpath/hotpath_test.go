package hotpath_test

import (
	"testing"

	"videoplat/internal/analysis/hotpath"
	"videoplat/internal/analysis/vptest"
)

func TestHotpath(t *testing.T) {
	// dep is listed first so its allocFacts are exported before the hot
	// package asks for them — the same dependency order the unitchecker
	// guarantees under go vet.
	vptest.Run(t, "testdata", hotpath.Analyzer, "hot/dep", "hot")
}
