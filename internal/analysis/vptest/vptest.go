// Package vptest is a self-contained analysistest substitute: it loads
// GOPATH-layout packages from an analyzer's testdata/src tree, runs an
// analyzer (and its Requires closure) over them with an in-memory fact
// store shared across packages, and compares reported diagnostics against
// // want "regexp" comments, analysistest-style.
//
// It exists because the repo vendors only the go/analysis core from the
// toolchain's own vendored x/tools (the module proxy is unreachable in this
// build environment), and the real analysistest drags in go/packages and a
// process-spawning loader. The harness supports exactly what the vpvet
// analyzers need: multiple packages analyzed in dependency order (so
// hotpath's cross-package facts flow), std imports resolved from GOROOT
// source, and per-line want assertions.
package vptest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes the listed packages (GOPATH layout under testdata/src, in
// the given order — dependencies first so facts flow) with a and reports
// any mismatch between diagnostics and // want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		fset:     token.NewFileSet(),
		srcRoot:  filepath.Join(testdata, "src"),
		loaded:   map[string]*loadedPkg{},
		objFacts: map[types.Object][]analysis.Fact{},
		pkgFacts: map[*types.Package][]analysis.Fact{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	wants := map[string][]*want{} // "file:line" -> pending expectations
	var diags []posDiag
	for _, path := range pkgPaths {
		lp, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, f := range lp.files {
			collectWants(t, l.fset, f, wants)
		}
		ds, err := l.analyze(lp, a)
		if err != nil {
			t.Fatalf("analyzing %s: %v", path, err)
		}
		diags = append(diags, ds...)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.pos.Filename), d.pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.msg) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.msg)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants parses `// want "re" "re"` comments.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[string][]*want) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
			rest := strings.TrimPrefix(text, "want ")
			for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
				if rest[0] != '"' && rest[0] != '`' {
					t.Fatalf("%s: malformed want comment: %s", key, c.Text)
				}
				var q string
				if rest[0] == '`' {
					end := strings.IndexByte(rest[1:], '`')
					if end < 0 {
						t.Fatalf("%s: malformed want comment: %s", key, c.Text)
					}
					q = rest[:end+2]
				} else {
					var err error
					q, err = strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment: %s", key, c.Text)
					}
				}
				unq, _ := strconv.Unquote(q)
				re, err := regexp.Compile(unq)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", key, unq, err)
				}
				wants[key] = append(wants[key], &want{re: re})
				rest = rest[len(q):]
			}
		}
	}
}

type posDiag struct {
	pos token.Position
	msg string
}

type loadedPkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	// results memoizes per-analyzer results so Requires closures are run
	// once per package.
	results map[*analysis.Analyzer]interface{}
}

type loader struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	loaded  map[string]*loadedPkg

	objFacts map[types.Object][]analysis.Fact
	pkgFacts map[*types.Package][]analysis.Fact
}

// Import implements types.Importer: testdata packages by directory, std
// packages from GOROOT source.
func (l *loader) Import(path string) (*types.Package, error) {
	if lp, ok := l.loaded[path]; ok {
		return lp.pkg, nil
	}
	if _, err := os.Stat(filepath.Join(l.srcRoot, path)); err == nil {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

// load parses and typechecks one testdata package.
func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.loaded[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		Instances:    map[*ast.Ident]types.Instance{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{
		path:    path,
		files:   files,
		pkg:     pkg,
		info:    info,
		results: map[*analysis.Analyzer]interface{}{},
	}
	l.loaded[path] = lp
	return lp, nil
}

// analyze runs a (and, first, its Requires closure) over lp, returning the
// diagnostics a itself reported.
func (l *loader) analyze(lp *loadedPkg, a *analysis.Analyzer) ([]posDiag, error) {
	for _, req := range a.Requires {
		if _, ok := lp.results[req]; ok {
			continue
		}
		if _, err := l.analyze(lp, req); err != nil {
			return nil, err
		}
	}
	var diags []posDiag
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       l.fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		Report: func(d analysis.Diagnostic) {
			diags = append(diags, posDiag{pos: l.fset.Position(d.Pos), msg: d.Message})
		},
		ReadFile: os.ReadFile,
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return copyFact(l.objFacts[obj], fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			l.objFacts[obj] = storeFact(l.objFacts[obj], fact)
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			return copyFact(l.pkgFacts[pkg], fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			l.pkgFacts[lp.pkg] = storeFact(l.pkgFacts[lp.pkg], fact)
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for obj, facts := range l.objFacts {
				for _, f := range facts {
					out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
				}
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for pkg, facts := range l.pkgFacts {
				for _, f := range facts {
					out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
				}
			}
			return out
		},
	}
	for _, req := range a.Requires {
		pass.ResultOf[req] = lp.results[req]
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	lp.results[a] = res
	return diags, nil
}

// storeFact appends or replaces the stored fact of fact's concrete type.
func storeFact(facts []analysis.Fact, fact analysis.Fact) []analysis.Fact {
	for i, f := range facts {
		if fmt.Sprintf("%T", f) == fmt.Sprintf("%T", fact) {
			facts[i] = fact
			return facts
		}
	}
	return append(facts, fact)
}

// copyFact copies a stored fact of the requested concrete type into fact,
// reporting whether one existed. Facts are small structs of plain data, so
// a shallow reflect-free copy through the stored pointer suffices.
func copyFact(facts []analysis.Fact, fact analysis.Fact) bool {
	for _, f := range facts {
		if fmt.Sprintf("%T", f) == fmt.Sprintf("%T", fact) {
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}
