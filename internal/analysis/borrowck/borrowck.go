// Package borrowck enforces the pipeline's aliasing contract: a parameter
// annotated //vp:borrowed is only valid for the duration of the call. The
// arena frames handed to batch callbacks and the *features.HandshakeInfo
// passed to OnClassify hooks are recycled the moment the callback returns,
// so any store that could outlive the call is a use-after-recycle bug even
// though the race detector and unit tests will rarely catch it.
//
// For each annotated parameter (and every local variable directly aliased
// from it) the analyzer rejects:
//
//   - stores to struct fields, map/slice elements, or package-level
//     variables
//   - sends on channels
//   - returning the borrowed pointer
//   - placing it in a composite literal or appending it to a slice
//   - passing it to a goroutine
//   - capture by a closure that is not immediately invoked
//
// One append form is exempt: spread-appending a borrowed slice whose element
// type is pointer-free (append(dst, data...) with data []byte) copies the
// contents without retaining the slice header — the arena-packing idiom.
//
// Passing a borrowed pointer onward as a plain call argument stays legal:
// that is re-lending under the same contract, which is exactly how
// Shadow.Observe hands the handshake to the candidate bank.
package borrowck

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"videoplat/internal/analysis/vpdirective"
)

// Analyzer is the borrowck pass.
var Analyzer = &analysis.Analyzer{
	Name:     "borrowck",
	Doc:      "check that //vp:borrowed parameters do not escape the call",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		dir := vpdirective.ForFunc(fd)
		if len(dir.Borrowed) == 0 || fd.Body == nil {
			return
		}
		checkFunc(pass, fd, dir)
	})
	return nil, nil
}

// checkFunc verifies one annotated function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, dir vpdirective.Func) {
	// Resolve the named parameters to their objects.
	params := map[string]types.Object{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[name.Name] = obj
				}
			}
		}
	}
	borrowed := map[types.Object]string{} // object -> annotated root param name
	for _, name := range dir.Borrowed {
		obj, ok := params[name]
		if !ok {
			pass.Reportf(dir.BorrowedPos, "//vp:borrowed names %q, which is not a parameter of %s", name, fd.Name.Name)
			continue
		}
		borrowed[obj] = name
	}
	if len(borrowed) == 0 {
		return
	}

	// Propagate the borrow through direct local aliases (x := p, x = p,
	// var x = p) to a fixed point, so `info := hs; s.saved = info` is still
	// caught. Only whole-pointer aliases taint; copying the pointee
	// (rec := *hs) is explicitly legal.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, rhs := range st.Rhs {
					root, ok := borrowedIdent(pass, borrowed, rhs)
					if !ok {
						continue
					}
					lhs, ok := st.Lhs[i].(*ast.Ident)
					if !ok || lhs.Name == "_" {
						continue
					}
					obj := pass.TypesInfo.Defs[lhs]
					if obj == nil {
						obj = pass.TypesInfo.Uses[lhs]
					}
					if obj != nil && borrowed[obj] == "" && isLocalVar(obj) {
						borrowed[obj] = root
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, rhs := range st.Values {
					root, ok := borrowedIdent(pass, borrowed, rhs)
					if !ok || i >= len(st.Names) {
						continue
					}
					obj := pass.TypesInfo.Defs[st.Names[i]]
					if obj != nil && borrowed[obj] == "" {
						borrowed[obj] = root
						changed = true
					}
				}
			}
			return true
		})
	}

	report := func(pos ast.Node, root, what string) {
		pass.Reportf(pos.Pos(), "%s: parameter %q is //vp:borrowed and must not outlive the call", what, root)
	}

	// enclosing tracks the closure nesting while walking, so goroutine and
	// closure rules see context. We do a manual recursive walk to know each
	// node's parent.
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				root, ok := borrowedIdent(pass, borrowed, rhs)
				if !ok {
					continue
				}
				if i >= len(st.Lhs) {
					continue
				}
				switch lhs := st.Lhs[i].(type) {
				case *ast.Ident:
					obj := pass.TypesInfo.Defs[lhs]
					if obj == nil {
						obj = pass.TypesInfo.Uses[lhs]
					}
					if obj != nil && !isLocalVar(obj) {
						report(st, root, fmt.Sprintf("stored to package-level variable %s", lhs.Name))
					}
				case *ast.SelectorExpr:
					report(st, root, fmt.Sprintf("stored to field %s", types.ExprString(lhs)))
				case *ast.IndexExpr:
					report(st, root, fmt.Sprintf("stored to element %s", types.ExprString(lhs)))
				case *ast.StarExpr:
					report(st, root, fmt.Sprintf("stored through pointer %s", types.ExprString(lhs)))
				}
			}
		case *ast.SendStmt:
			if root, ok := borrowedIdent(pass, borrowed, st.Value); ok {
				report(st, root, "sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if root, ok := borrowedIdent(pass, borrowed, res); ok {
					report(res, root, "returned")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range st.Elts {
				e := elt
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if root, ok := borrowedIdent(pass, borrowed, e); ok {
					report(elt, root, "placed in a composite literal")
				}
			}
		case *ast.GoStmt:
			ast.Inspect(st.Call, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					if root, ok := borrowedIdent(pass, borrowed, e); ok {
						report(n, root, "passed to a goroutine")
						return false
					}
				}
				return true
			})
			return // the inner call is fully handled above
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "append" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("append") {
				for i, arg := range st.Args[1:] {
					root, ok := borrowedIdent(pass, borrowed, arg)
					if !ok {
						continue
					}
					if i == len(st.Args)-2 && st.Ellipsis.IsValid() && pointerFreeSlice(pass.TypesInfo.TypeOf(arg)) {
						continue // spread of a pointer-free slice copies contents, not the header
					}
					report(arg, root, "appended to a slice")
				}
			}
			// An immediately-invoked closure body is part of this call
			// frame: walk it under the normal rules rather than the
			// capture rule.
			if fl, ok := st.Fun.(*ast.FuncLit); ok {
				for _, arg := range st.Args {
					walk(arg)
				}
				walk(fl.Body)
				return
			}
		case *ast.FuncLit:
			// Any other closure mentioning a borrowed pointer may escape
			// (stored, returned, passed to an API that retains it): flag
			// the capture itself.
			captured := ""
			ast.Inspect(st.Body, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					if root, ok := borrowedIdent(pass, borrowed, e); ok {
						captured = root
						return false
					}
				}
				return true
			})
			if captured != "" {
				report(st, captured, "captured by a closure that may outlive the call")
			}
			return // don't double-report stores inside the closure
		}
		walkChildren(n, walk)
	}
	walkChildren(fd.Body, walk)
}

// walkChildren applies walk to each direct child of n.
func walkChildren(n ast.Node, walk func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			walk(c)
		}
		return false
	})
}

// borrowedIdent reports whether expr is (after stripping parens) an
// identifier bound to a borrowed object, returning the annotated root
// parameter's name.
func borrowedIdent(pass *analysis.Pass, borrowed map[types.Object]string, expr ast.Expr) (string, bool) {
	for {
		if p, ok := expr.(*ast.ParenExpr); ok {
			expr = p.X
			continue
		}
		break
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return "", false
	}
	root, ok := borrowed[obj]
	return root, ok
}

// pointerFreeSlice reports whether t is a slice (or string) whose element
// type carries no pointers, so spreading it into append copies values the
// borrowed backing array can be recycled behind.
func pointerFreeSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		switch e := u.Elem().Underlying().(type) {
		case *types.Basic:
			// Strings are excluded: a string header points into backing
			// bytes that may live in the borrowed arena.
			return e.Info()&(types.IsBoolean|types.IsNumeric) != 0
		}
	}
	return false
}

// isLocalVar reports whether obj is a function-scoped variable (as opposed
// to a package-level one).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}
