package borrowck_test

import (
	"testing"

	"videoplat/internal/analysis/borrowck"
	"videoplat/internal/analysis/vptest"
)

func TestBorrowck(t *testing.T) {
	vptest.Run(t, "testdata", borrowck.Analyzer, "borrow")
}
