// Package borrow exercises the borrowck analyzer: Handshake stands in for
// features.HandshakeInfo, whose pointer is only valid for the duration of
// an OnClassify-style callback.
package borrow

// Handshake is the borrowed payload type.
type Handshake struct {
	SNI string
	Raw []byte
}

// Sink models a struct that could illegally retain the borrow.
type Sink struct {
	last    *Handshake
	history []*Handshake
	byName  map[string]*Handshake
	ch      chan *Handshake
	hook    func()
}

var global *Handshake

// StoreField illegally stores the borrowed pointer in a field.
//
//vp:borrowed hs
func (s *Sink) StoreField(hs *Handshake) {
	s.last = hs // want `stored to field s\.last: parameter "hs" is //vp:borrowed`
}

// StoreGlobal illegally stores the borrowed pointer in a package variable.
//
//vp:borrowed hs
func StoreGlobal(hs *Handshake) {
	global = hs // want `stored to package-level variable global: parameter "hs" is //vp:borrowed`
}

// StoreViaAlias launders the borrow through a local alias first.
//
//vp:borrowed hs
func (s *Sink) StoreViaAlias(hs *Handshake) {
	alias := hs
	s.last = alias // want `stored to field s\.last: parameter "hs" is //vp:borrowed`
}

// StoreElement illegally stores into a map element.
//
//vp:borrowed hs
func (s *Sink) StoreElement(hs *Handshake) {
	s.byName[hs.SNI] = hs // want `stored to element s\.byName\[hs\.SNI\]: parameter "hs" is //vp:borrowed`
}

// Send illegally ships the borrow across a channel.
//
//vp:borrowed hs
func (s *Sink) Send(hs *Handshake) {
	s.ch <- hs // want `sent on a channel: parameter "hs" is //vp:borrowed`
}

// Return illegally returns the borrow to a caller that may retain it.
//
//vp:borrowed hs
func Return(hs *Handshake) *Handshake {
	return hs // want `returned: parameter "hs" is //vp:borrowed`
}

// AppendTo illegally appends the borrow to a slice.
//
//vp:borrowed hs
func (s *Sink) AppendTo(hs *Handshake) {
	s.history = append(s.history, hs) // want `appended to a slice: parameter "hs" is //vp:borrowed`
}

// Compose illegally embeds the borrow in a composite literal.
//
//vp:borrowed hs
func Compose(hs *Handshake) {
	pair := []*Handshake{hs, nil} // want `placed in a composite literal: parameter "hs" is //vp:borrowed`
	_ = pair
}

// CaptureEscaping illegally captures the borrow in a closure stored past
// the call.
//
//vp:borrowed hs
func (s *Sink) CaptureEscaping(hs *Handshake) {
	s.hook = func() { // want `captured by a closure that may outlive the call: parameter "hs" is //vp:borrowed`
		_ = hs.SNI
	}
}

// Spawn illegally hands the borrow to a goroutine.
//
//vp:borrowed hs
func Spawn(hs *Handshake) {
	go consume(hs) // want `passed to a goroutine: parameter "hs" is //vp:borrowed`
}

func consume(hs *Handshake) { _ = hs }

// AppendSpreadPtrs spreads a borrowed pointer-slice: the pointers are
// retained, so the exemption for pointer-free elements does not apply.
//
//vp:borrowed batch
func (s *Sink) AppendSpreadPtrs(batch []*Handshake) {
	s.history = append(s.history, batch...) // want `appended to a slice: parameter "batch" is //vp:borrowed`
}

// PackArena spread-appends borrowed bytes: a contents copy, which the
// arena-recycling contract explicitly allows.
//
//vp:borrowed data
func (s *Sink) PackArena(arena []byte, data []byte) []byte {
	arena = append(arena, data...) // legal: copies bytes, not the header
	return arena
}

// Legal is the contract-respecting shape: read fields, copy the pointee,
// re-lend to a callee, and use an immediately-invoked closure.
//
//vp:borrowed hs
func (s *Sink) Legal(hs *Handshake) string {
	copyOf := *hs // copying the pointee is fine; only the pointer is borrowed
	consume(hs)   // re-lending under the same contract is fine
	name := func() string { return hs.SNI }()
	if len(hs.Raw) > 0 {
		return copyOf.SNI + name
	}
	return name
}
