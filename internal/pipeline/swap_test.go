package pipeline

import (
	"sync"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/tracegen"
)

// TestConcurrentHotSwapUnderLoad hammers SwapBank from two goroutines while
// the sharded pipeline classifies a live packet stream. Run under -race
// (CI does): the swap path must be free of data races, classification must
// never error or observe a torn bank, and every classified flow must be
// attributed to exactly one of the two bank versions — i.e. in-flight
// classifications complete coherently against the bank they loaded.
func TestConcurrentHotSwapUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bankA, _ := trainSmallBank(t, 31, 0.02)
	bankA.Version = "vA"
	bankB, err := TrainBank(mustLab(t, 32, 0.02), TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	bankB.Version = "vB"

	s := NewSharded(bankA, 4)

	// Collect results concurrently; every record must carry a coherent
	// version stamp.
	versions := map[string]int{}
	var errRecs int
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for rec := range s.Results() {
			if !rec.Classified {
				errRecs++
				continue
			}
			versions[rec.ModelVersion]++
		}
	}()

	// Swappers: flip the bank both ways as fast as possible for the whole
	// replay, from two goroutines to also race SwapBank against itself.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			banks := [2]*Bank{bankA, bankB}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.SwapBank(banks[(i+g)%2])
			}
		}(g)
	}

	// Load: many interleaved flows across all shards.
	gen := tracegen.New(77)
	sessions := 0
	start := time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC)
	provs := fingerprint.AllProviders()
	for i := 0; i < 60; i++ {
		label := "windows_chrome"
		prov := provs[i%len(provs)]
		flows, err := gen.Session(label, prov, fingerprint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sessions++
		for _, ft := range flows {
			base := start.Add(time.Duration(i) * time.Second)
			for _, fr := range ft.Frames {
				s.HandlePacket(base.Add(fr.Offset), fr.Data)
			}
		}
	}

	close(stop)
	wg.Wait()
	s.Close()
	<-collected

	if errRecs > 0 {
		t.Errorf("%d unclassified records delivered", errRecs)
	}
	total := 0
	for v, n := range versions {
		if v != "vA" && v != "vB" {
			t.Errorf("record carries unknown bank version %q (%d records)", v, n)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("no flows classified during the swap storm")
	}
	// (Results delivery is best-effort by contract — drops under a slow
	// consumer are legal — so the coherence checks cover both delivery
	// paths rather than asserting zero drops.)
	// Flow records from the final drain must also be coherently stamped.
	for _, rec := range s.Flows() {
		if rec.Classified && rec.ModelVersion != "vA" && rec.ModelVersion != "vB" {
			t.Errorf("drained record has version %q", rec.ModelVersion)
		}
	}
}

// TestSwapBankVisibleToSubsequentPackets pins the single-pipeline swap
// contract: the next HandlePacket after SwapBank classifies with the new
// bank.
func TestSwapBankVisibleToSubsequentPackets(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bankA, _ := trainSmallBank(t, 31, 0.02)
	bankA.Version = "vA"
	bankB, err := TrainBank(mustLab(t, 32, 0.02), TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	bankB.Version = "vB"

	p := New(bankA)
	if p.Bank() != bankA {
		t.Fatal("Bank() does not return the constructor bank")
	}
	classify := func(seed uint64) string {
		g := tracegen.New(seed)
		ft, err := g.Flow("windows_chrome", fingerprint.Netflix, fingerprint.TCP, tracegen.FlowSpec{PayloadFrames: 1})
		if err != nil {
			t.Fatal(err)
		}
		var got string
		for _, fr := range ft.Frames {
			rec, err := p.HandlePacket(ft.Start.Add(fr.Offset), fr.Data)
			if err != nil {
				t.Fatal(err)
			}
			if rec != nil {
				got = rec.ModelVersion
			}
		}
		return got
	}
	if v := classify(101); v != "vA" {
		t.Fatalf("pre-swap version = %q", v)
	}
	p.SwapBank(bankB)
	if v := classify(102); v != "vB" {
		t.Fatalf("post-swap version = %q", v)
	}
}

func mustLab(t testing.TB, seed uint64, scale float64) *tracegen.Dataset {
	t.Helper()
	ds, err := tracegen.New(seed).LabDataset(scale, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}
