package pipeline

import (
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/tracegen"
)

func TestShardedPipelineClassifiesAllFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, _ := trainSmallBank(t, 31, 0.02)
	s := NewSharded(bank, 4)

	g := tracegen.New(77)
	want := map[string]string{}
	var all []*tracegen.FlowTrace
	specs := []struct {
		label string
		prov  fingerprint.Provider
		tr    fingerprint.Transport
	}{
		{"windows_chrome", fingerprint.YouTube, fingerprint.QUIC},
		{"windows_firefox", fingerprint.Netflix, fingerprint.TCP},
		{"iOS_nativeApp", fingerprint.Disney, fingerprint.TCP},
		{"androidTV_nativeApp", fingerprint.Amazon, fingerprint.TCP},
		{"macOS_safari", fingerprint.Amazon, fingerprint.TCP},
		{"ps5_nativeApp", fingerprint.Netflix, fingerprint.TCP},
	}
	for _, sp := range specs {
		ft, err := g.Flow(sp.label, sp.prov, sp.tr, tracegen.FlowSpec{PayloadFrames: 2})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ft)
		want[ft.SNI] = sp.label
	}

	// Interleave packets across flows to force cross-shard concurrency.
	for j := 0; ; j++ {
		any := false
		for _, ft := range all {
			if j < len(ft.Frames) {
				s.HandlePacket(ft.Start.Add(ft.Frames[j].Offset), ft.Frames[j].Data)
				any = true
			}
		}
		if !any {
			break
		}
	}

	done := make(chan map[string]Prediction)
	go func() {
		got := map[string]Prediction{}
		for rec := range s.Results() {
			got[rec.SNI] = rec.Prediction
		}
		done <- got
	}()
	s.Close()
	got := <-done

	if len(got) != len(want) {
		t.Fatalf("classified %d flows, want %d", len(got), len(want))
	}
	correct := 0
	for sni, truth := range want {
		if got[sni].Platform == truth {
			correct++
		}
	}
	if correct < len(want)-1 {
		t.Errorf("correct = %d/%d", correct, len(want))
	}
	if n := len(s.Flows()); n != len(want) {
		t.Errorf("flow records = %d", n)
	}
}

func TestHashKeySymmetric(t *testing.T) {
	g := tracegen.New(5)
	ft, err := g.Flow("ps5_nativeApp", fingerprint.Amazon, fingerprint.TCP, tracegen.FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	k := ft.Key()
	if hashKey(k.Canonical()) != hashKey(k.Reverse().Canonical()) {
		t.Error("hash not symmetric across directions")
	}
}

func TestShardedSingleShard(t *testing.T) {
	bank := &Bank{models: map[bankKey]*Model{}}
	s := NewSharded(bank, 0) // clamps to 1
	if len(s.shards) != 1 {
		t.Fatalf("shards = %d", len(s.shards))
	}
	s.HandlePacket(time.Now(), []byte{1, 2, 3}) // garbage is fine
	s.Close()
	if got := len(s.Flows()); got != 0 {
		t.Errorf("flows = %d", got)
	}
}
