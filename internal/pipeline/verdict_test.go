package pipeline

import (
	"testing"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/tracegen"
)

// TestVerdictTaxonomy pins the verdict vocabulary: stable strings, no
// duplicates, and the zero value reading as pending.
func TestVerdictTaxonomy(t *testing.T) {
	var zero Verdict
	if zero.String() != "pending" {
		t.Errorf("zero verdict = %q, want pending", zero.String())
	}
	names := VerdictNames()
	if len(names) != NumVerdicts {
		t.Fatalf("VerdictNames length = %d, want %d", len(names), NumVerdicts)
	}
	seen := map[string]bool{}
	for i, name := range names {
		if name == "" {
			t.Errorf("verdict %d has no name", i)
		}
		if seen[name] {
			t.Errorf("duplicate verdict name %q", name)
		}
		seen[name] = true
		if got := Verdict(i).String(); got != name {
			t.Errorf("Verdict(%d).String() = %q, VerdictNames()[%d] = %q", i, got, i, name)
		}
	}
	for v, want := range map[Verdict]string{
		VerdictClassified:  "classified",
		VerdictAbstained:   "abstained",
		VerdictNoHandshake: "no-handshake",
		VerdictError:       "error",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

// TestPredictionMarginBounds checks the decisiveness margin both
// classification paths stamp: never negative, never above the top
// probability, and equal to it when only one class holds probability mass.
func TestPredictionMarginBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, ds := trainSmallBank(t, 2, 0.04)
	for _, ft := range ds.Flows[:60] {
		info, err := ExtractTrace(ft)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := bank.Classify(ft.Provider, ft.Transport, features.Extract(info))
		if err != nil {
			t.Fatal(err)
		}
		if pred.PlatformMargin < 0 || pred.PlatformMargin > pred.PlatformConf+1e-12 {
			t.Fatalf("margin %v outside [0, conf=%v]", pred.PlatformMargin, pred.PlatformConf)
		}
	}
}

// TestPipelineAssignsVerdicts runs full flows through the streaming pipeline
// and checks every finalized record carries a verdict consistent with its
// classification outcome.
func TestPipelineAssignsVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, _ := trainSmallBank(t, 4, 0.03)
	p := New(bank)

	g := tracegen.New(99)
	for _, spec := range []struct {
		label string
		prov  fingerprint.Provider
		tr    fingerprint.Transport
	}{
		{"windows_chrome", fingerprint.YouTube, fingerprint.QUIC},
		{"iOS_nativeApp", fingerprint.Disney, fingerprint.TCP},
		{"ps5_nativeApp", fingerprint.Amazon, fingerprint.TCP},
	} {
		ft, err := g.Flow(spec.label, spec.prov, spec.tr, tracegen.FlowSpec{})
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range ft.Frames {
			if _, err := p.HandlePacket(ft.Start.Add(fr.Offset), fr.Data); err != nil {
				t.Fatal(err)
			}
		}
	}

	final := p.Flows()
	if len(final) != 3 {
		t.Fatalf("flow records = %d, want 3", len(final))
	}
	for _, rec := range final {
		switch {
		case rec.Classified && rec.Prediction.Status != Unknown:
			if rec.Verdict != VerdictClassified {
				t.Errorf("%s: classified flow verdict = %s", rec.SNI, rec.Verdict)
			}
			if rec.Prediction.PlatformMargin <= 0 {
				t.Errorf("%s: classified flow margin = %v, want > 0", rec.SNI, rec.Prediction.PlatformMargin)
			}
		case rec.Classified:
			if rec.Verdict != VerdictAbstained {
				t.Errorf("%s: abstained flow verdict = %s", rec.SNI, rec.Verdict)
			}
		default:
			if rec.Verdict == VerdictPending || rec.Verdict == VerdictClassified {
				t.Errorf("%s: unclassified flow verdict = %s", rec.SNI, rec.Verdict)
			}
		}
	}
}
