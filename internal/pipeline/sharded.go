package pipeline

import (
	"sync"
	"sync/atomic"
	"time"

	"videoplat/internal/flowtable"
	"videoplat/internal/obs"
	"videoplat/internal/packet"
	"videoplat/internal/quicproto"
)

// Default queue depths for Sharded, used when the corresponding Config
// fields are zero.
const (
	// DefaultShardQueueDepth is the per-shard inbox capacity in batch
	// messages. Worst-case queued frame memory per shard is roughly
	// depth × the largest batch's bytes (a 64-frame batch of 1.5KB frames
	// is ~96KB, so 64 messages bound a shard at a few MB even if every
	// frame of every batch hashes to it); in the common case a shard only
	// queues its hash-share of each batch, far less.
	DefaultShardQueueDepth = 64
	// DefaultResultsBufferPerShard scales the Results channel with the shard
	// count: every shard worker gets this much burst headroom before
	// best-effort delivery starts dropping.
	DefaultResultsBufferPerShard = 64
)

// IngestPacket is one timestamped frame handed to the batched ingest path.
// The Data bytes are copied into a pooled arena on ingest, so the caller
// may reuse them as soon as HandlePacketBatch returns.
type IngestPacket struct {
	TS   time.Time
	Data []byte
}

// Sharded fans packets out to per-shard Pipelines by flow hash, the
// multi-queue arrangement the paper's DPDK prototype uses to keep up with a
// 20 Gbps tap. Hashing is symmetric (both directions of a flow land on the
// same shard), and each shard owns its flow table, so shards never contend.
//
// Ingest contract: each frame is parsed exactly once, on the ingest
// goroutine, and the decode is summarized into the flow key, canonical key
// and payload length that travel with the frame — shard workers never
// re-parse (Pipeline.handleKeyed). Frames that do not decode to a TCP/UDP
// 5-tuple are dropped at ingest and counted in Ignored() — they carry no
// flow, so copying them and occupying a shard queue slot (formerly always
// shard 0's, skewing its load) bought nothing — and decodable flows off
// port 443 are likewise dropped and counted in Filtered(), since the
// pipeline's video filter would discard them anyway. Frame bytes are packed
// back-to-back into per-batch arenas drawn from a sync.Pool and recycled
// once the owning shard's pipeline has consumed the batch; the pipeline
// copies anything it retains, so recycled arenas never alias live flow
// state.
//
// HandlePacket and HandlePacketBatch are intended for a single ingest
// goroutine (the shard workers provide the parallelism) and must not be
// called concurrently with each other. When a shard's inbox fills, ingest
// blocks until the worker catches up — backpressure, not loss — and the
// stall is counted in Stalls().
//
// Results delivery contract: classified-flow records are delivered on
// Results() on a best-effort basis. A consumer that stops draining does not
// block the shard workers — once the buffer fills, further records are
// counted in Dropped() and discarded, so Close never deadlocks on a stalled
// consumer. The buffer defaults to DefaultResultsBufferPerShard per shard
// (Config.ResultsBuffer overrides), so a consumer that is actively draining
// rides out bursts proportional to the fan-out width. Complete final state
// is always available from Flows() (plus the Config.OnEvict hook for flows
// evicted from a bounded table).
type Sharded struct {
	shards   []*shard
	results  chan *FlowRecord
	dropped  atomic.Uint64
	ignored  atomic.Uint64
	filtered atomic.Uint64
	stalls   atomic.Uint64

	batchPool sync.Pool // *ingestBatch
	wg        sync.WaitGroup

	// pending holds each shard's batch under construction during a
	// HandlePacketBatch call; a persistent field (legal under the
	// single-ingest-goroutine contract) so the hot path never allocates it.
	pending []*ingestBatch

	// Scratch decode state for the ingest goroutine — HandlePacket and
	// HandlePacketBatch are single-goroutine by contract, so one parser and
	// one Parsed serve every frame and the hot layer structs stay resident.
	parser  packet.Parser
	scratch packet.Parsed

	// obsv/tracer mirror Config.Observer/Config.Tracer. When both are nil
	// the instrumentation collapses to one nil check per frame and shard
	// messages carry no enqueue timestamps.
	obsv   *obs.PipelineObserver
	tracer *obs.Tracer

	// cidRoute maps observed QUIC connection IDs to the shard that owns
	// their flow. Shard placement hashes the 5-tuple, so a migrated flow's
	// packets would otherwise hash to the wrong shard and the owning
	// shard's CID index would never see them; this ingest-side cache (owned
	// by the single ingest goroutine, like the parser scratch) routes by
	// CID first. It is a routing cache, not authoritative state: entries go
	// stale when flows evict, a stale hit merely routes the packet to a
	// shard that treats it as a new flow — exactly what no cache would do.
	// Learning stops at maxCIDRoutes; a long-running deployment sheds the
	// cache by Close/restart (documented in OPERATIONS.md).
	cidRoute map[cidKey]int
	// cidRouteLens mirrors Pipeline.cidLens at ingest: the CID lengths
	// present in cidRoute, for probing short headers that do not carry a
	// DCID length on the wire.
	cidRouteLens uint32
	// tupleRoute pins a canonical 5-tuple to the shard its flow lives on,
	// learned whenever CID routing overrides the tuple hash. It exists for
	// frames CID routing cannot see: a client with a zero-length connection
	// ID (Chrome) receives post-migration short headers carrying no CID at
	// all, and only the migrated tuple links them to the owning shard. Same
	// ownership and staleness story as cidRoute; shares its size cap.
	tupleRoute map[packet.FlowKey]int
}

// maxCIDRoutes bounds the ingest routing cache: 64K entries (~1.5 MB) covers
// tens of thousands of concurrent QUIC flows before learning stops.
const maxCIDRoutes = 1 << 16

type shard struct {
	in chan shardMsg
	p  *Pipeline
}

// shardMsg carries a batch of pre-parsed frames or, when snap is non-nil, a
// request for the shard's current flow records (answered from the worker
// goroutine, so snapshots never race packet processing).
type shardMsg struct {
	batch *ingestBatch
	snap  chan []*FlowRecord
	// enq stamps when the message entered the inbox, set only when latency
	// observation is on; the worker turns it into a queue-wait sample.
	enq time.Time
}

// ingestBatch is the unit shipped to a shard: one or more frames decoded at
// ingest, their bytes packed back-to-back into a single arena. Packing
// keeps the copy path sequential (a streamed append instead of scattered
// per-frame buffers) and makes recycling one pool op per batch. Frames
// reference their bytes by arena offset, so arena growth during packing
// never invalidates them.
type ingestBatch struct {
	arena  []byte
	frames []ingestFrame
}

// ingestFrame is the per-frame summary of the single ingest-time decode:
// where the bytes live in the batch arena, the flow key (plus its canonical
// form, so workers never recompute it) and the transport payload length —
// everything the flow stage needs without dragging the full layer structs
// through the queue.
type ingestFrame struct {
	ts         time.Time
	off, end   int // frame bytes are arena[off:end]
	key, canon packet.FlowKey
	payloadLen int
}

// add packs one decoded frame and its bytes into the batch. data is only
// borrowed: its bytes are copied into the arena and the caller may recycle
// the buffer as soon as add returns.
//
//vp:borrowed data
func (b *ingestBatch) add(f ingestFrame, data []byte) {
	f.off = len(b.arena)
	b.arena = append(b.arena, data...)
	f.end = len(b.arena)
	b.frames = append(b.frames, f)
}

// NewSharded starts n shard workers over a shared trained bank with
// unbounded per-shard flow tables and default queue depths.
func NewSharded(bank *Bank, n int) *Sharded { return NewShardedWithConfig(bank, n, Config{}) }

// NewShardedWithConfig starts n shard workers whose pipelines are each
// bounded by cfg. cfg.MaxFlows applies per shard; cfg.OnEvict is invoked
// from shard goroutines and must be safe for concurrent use.
// cfg.ShardQueueDepth and cfg.ResultsBuffer size the per-shard inboxes and
// the Results channel (zero selects the shard-count-scaled defaults). Call
// Close to drain and stop.
func NewShardedWithConfig(bank *Bank, n int, cfg Config) *Sharded {
	if n < 1 {
		n = 1
	}
	depth := cfg.ShardQueueDepth
	if depth <= 0 {
		depth = DefaultShardQueueDepth
	}
	rbuf := cfg.ResultsBuffer
	if rbuf <= 0 {
		rbuf = DefaultResultsBufferPerShard * n
	}
	s := &Sharded{
		results: make(chan *FlowRecord, rbuf),
		pending: make([]*ingestBatch, n),
		obsv:    cfg.Observer,
		tracer:  cfg.Tracer,
	}
	for i := 0; i < n; i++ {
		in := make(chan shardMsg, depth)
		// Each shard's pipeline gets a private Config copy carrying its
		// identity and a live inbox-depth probe for sampled spans.
		shCfg := cfg
		shCfg.shardID = i
		shCfg.queueDepth = func() int { return len(in) }
		// Shard workers classify in batch mode: completed handshakes are
		// deferred during frame replay and flushed through one compiled
		// ClassifyBatch sweep per (provider, transport) at batch end.
		shCfg.batched = true
		sh := &shard{in: in, p: NewWithConfig(bank, shCfg)}
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			deliver := s.deliver // one method-value closure per worker, not per batch
			for msg := range sh.in {
				if msg.snap != nil {
					msg.snap <- sh.p.Flows()
					continue
				}
				if !msg.enq.IsZero() {
					wait := time.Since(msg.enq)
					s.obsv.Record(obs.StageQueueWait, wait)
					sh.p.noteQueueWait(wait)
				}
				b := msg.batch
				for i := range b.frames {
					f := &b.frames[i]
					rec, err := sh.p.handleKeyed(f.ts, b.arena[f.off:f.end], f.key, f.canon, f.payloadLen, nil)
					if err == nil && rec != nil {
						s.deliver(rec)
					}
				}
				// Classify the batch's deferred handshakes before the arena
				// recycles, one compiled sweep per (provider, transport).
				sh.p.flushBatch(deliver)
				// The pipeline copies anything it retains, so the arena is
				// dead here and the whole batch recycles in one pool op.
				s.batchPool.Put(b)
			}
		}()
	}
	return s
}

// getBatch returns an empty batch, recycling arena and frame capacity from
// the pool when available.
func (s *Sharded) getBatch() *ingestBatch {
	if b, ok := s.batchPool.Get().(*ingestBatch); ok {
		b.arena = b.arena[:0]
		b.frames = b.frames[:0]
		return b
	}
	return new(ingestBatch)
}

// decode parses one frame — the single parse of the ingest path — into the
// ingest goroutine's scratch state and summarizes it. ok is false when the
// frame carries no TCP/UDP 5-tuple (counted in Ignored) or is not port-443
// traffic (counted in Filtered): neither can become a video flow, so
// neither is worth an arena copy and a shard hop.
func (s *Sharded) decode(ts time.Time, data []byte) (ingestFrame, int, bool) {
	if err := s.parser.Parse(data, &s.scratch); err != nil {
		s.ignored.Add(1)
		return ingestFrame{}, 0, false
	}
	key, ok := s.scratch.Flow()
	if !ok {
		s.ignored.Add(1)
		return ingestFrame{}, 0, false
	}
	if !isVideoPort(key) {
		s.filtered.Add(1)
		return ingestFrame{}, 0, false
	}
	canon := key.Canonical()
	f := ingestFrame{ts: ts, key: key, canon: canon, payloadLen: len(s.scratch.Payload)}
	idx := int(hashKey(canon) % uint64(len(s.shards)))
	if key.Proto == packet.ProtoUDP && len(s.scratch.Payload) > 0 {
		if own, hit := s.tupleRoute[canon]; hit {
			idx = own
		} else if routed := s.routeQUIC(s.scratch.Payload, idx); routed != idx {
			// CID routing overrode the hash: a migrated tuple. Pin it so
			// CID-less frames on this tuple follow the flow too.
			idx = routed
			if len(s.tupleRoute) < maxCIDRoutes {
				if s.tupleRoute == nil {
					s.tupleRoute = make(map[packet.FlowKey]int)
				}
				s.tupleRoute[canon] = idx
			}
		}
	}
	return f, idx, true
}

// routeQUIC overrides the hash-based shard of a QUIC frame when its
// connection ID is already owned by a shard: after a connection migration
// the new 5-tuple hashes elsewhere, and only CID routing lands the packet
// on the shard holding the flow's state. Long-header frames also teach the
// cache their IDs (both directions — the server flight announces the
// server's CID).
func (s *Sharded) routeQUIC(payload []byte, hashIdx int) int {
	if !quicproto.IsLongHeader(payload) {
		// Short header: no CID length on the wire, probe each length seen.
		for l := 1; l <= 20; l++ {
			if s.cidRouteLens&(1<<uint(l)) == 0 || 1+l > len(payload) {
				continue
			}
			if ck, ok := mkCIDKey(payload[1 : 1+l]); ok {
				if idx, hit := s.cidRoute[ck]; hit {
					return idx
				}
			}
		}
		return hashIdx
	}
	ids, err := quicproto.ParseLongHeaderCIDs(payload)
	if err != nil {
		return hashIdx
	}
	// Resolve the owning shard from either ID first, then teach both under
	// it, so a frame pairing a known ID with a fresh one (the server flight
	// echoing the client's SCID while announcing its own CID) registers the
	// fresh ID to the flow's shard, not the tuple hash.
	var keys [2]cidKey
	var valid [2]bool
	idx, routed := hashIdx, false
	for i, cid := range [2][]byte{ids.DCID, ids.SCID} {
		if ck, ok := mkCIDKey(cid); ok {
			keys[i], valid[i] = ck, true
			if got, hit := s.cidRoute[ck]; hit && !routed {
				idx, routed = got, true
			}
		}
	}
	for i := range keys {
		if !valid[i] {
			continue
		}
		if _, hit := s.cidRoute[keys[i]]; hit || len(s.cidRoute) >= maxCIDRoutes {
			continue
		}
		if s.cidRoute == nil {
			s.cidRoute = make(map[cidKey]int)
		}
		s.cidRoute[keys[i]] = idx
		s.cidRouteLens |= 1 << uint(keys[i].n)
	}
	return idx
}

// send enqueues a shard message, counting the stall when the inbox is full
// before blocking until the worker catches up (backpressure, not loss).
// With observation on, the message is stamped so the worker can measure how
// long it sat in the inbox.
func (s *Sharded) send(sh *shard, msg shardMsg) {
	if s.obsv != nil || s.tracer != nil {
		msg.enq = time.Now()
	}
	select {
	case sh.in <- msg:
	default:
		s.stalls.Add(1)
		sh.in <- msg
	}
}

// HandlePacket routes one frame to its flow's shard as a batch of one. The
// frame is copied, so the caller may reuse it immediately. See the type
// comment for the ingest contract (single ingest goroutine; frames without
// a TCP/UDP 5-tuple are dropped and counted in Ignored).
//
//vp:borrowed frame
func (s *Sharded) HandlePacket(ts time.Time, frame []byte) {
	var t0 time.Time
	if s.obsv != nil {
		t0 = time.Now()
	}
	f, idx, ok := s.decode(ts, frame)
	if s.obsv != nil {
		s.obsv.Record(obs.StageDecode, time.Since(t0))
	}
	if !ok {
		return
	}
	b := s.getBatch()
	b.add(f, frame)
	s.send(s.shards[idx], shardMsg{batch: b})
}

// HandlePacketBatch routes a batch of frames with one decode per frame and
// at most one channel send per shard, amortizing the per-packet channel
// cost that dominates the single-packet path at high rates. Every pkt.Data
// is copied into a pooled arena, so callers may reuse the batch and its
// buffers immediately. See the type comment for the ingest contract.
func (s *Sharded) HandlePacketBatch(pkts []IngestPacket) {
	// Rolling clock: one time.Now per frame when observed, attributing the
	// full per-frame ingest cost (decode + arena pack) to StageDecode.
	var t0 time.Time
	if s.obsv != nil {
		t0 = time.Now()
	}
	for _, pkt := range pkts {
		f, idx, ok := s.decode(pkt.TS, pkt.Data)
		if ok {
			b := s.pending[idx]
			if b == nil {
				b = s.getBatch()
				s.pending[idx] = b
			}
			b.add(f, pkt.Data)
		}
		if s.obsv != nil {
			t1 := time.Now()
			s.obsv.Record(obs.StageDecode, t1.Sub(t0))
			t0 = t1
		}
	}
	for idx, b := range s.pending {
		if b != nil {
			s.pending[idx] = nil // the shard owns it from here
			s.send(s.shards[idx], shardMsg{batch: b})
		}
	}
}

// deliver offers a record to the results channel without ever blocking a
// shard worker; records nobody is draining are dropped and counted.
func (s *Sharded) deliver(rec *FlowRecord) {
	select {
	case s.results <- rec:
	default:
		s.dropped.Add(1)
	}
}

// Results delivers classified flow records as they complete. See the type
// comment for the best-effort delivery contract.
func (s *Sharded) Results() <-chan *FlowRecord { return s.results }

// Bank returns the classifier bank currently serving classifications.
func (s *Sharded) Bank() *Bank { return s.shards[0].p.Bank() }

// SwapBank hot-swaps the classifier bank on every shard without pausing
// packet processing: each shard's pipeline loads its bank pointer once per
// packet, so flows classifying during the swap complete coherently against
// whichever bank they loaded and later packets see the new one. Shards
// switch independently (not as one transaction), so during the swap some
// shards may still classify against the old bank — records carry
// ModelVersion so every classification stays attributable. Safe from any
// goroutine, including concurrently with HandlePacket and SnapshotFlows.
func (s *Sharded) SwapBank(bank *Bank) {
	for _, sh := range s.shards {
		sh.p.SwapBank(bank)
	}
}

// IngestStats is a point-in-time snapshot of the ingest-path counters — the
// TableStats analogue for the batched entry point. All fields are monotonic
// and safe to read from any goroutine via Sharded.IngestStats.
type IngestStats struct {
	// Ignored counts frames dropped at ingest: they failed to parse or were
	// not TCP/UDP, so they carry no flow to route.
	Ignored uint64 `json:"ignored_frames"`
	// Filtered counts decodable flows dropped at ingest by the port-443
	// video filter — on a general tap, the bulk of the traffic — before
	// they cost a copy or a shard hop.
	Filtered uint64 `json:"filtered_frames"`
	// DroppedResults counts classified records discarded because the
	// Results consumer was not draining (best-effort delivery).
	DroppedResults uint64 `json:"dropped_results"`
	// Stalls counts ingest submissions that found a shard inbox full and
	// had to wait — sustained growth means the shard workers can't keep up
	// with the offered rate (deepen ShardQueueDepth, add shards, or accept
	// the backpressure).
	Stalls uint64 `json:"stalls"`
	// OversizedHandshakes counts flows abandoned on the shard workers
	// because their buffered handshake bytes exceeded Config.MaxHelloBytes
	// (summed across shards).
	OversizedHandshakes uint64 `json:"oversized_handshakes"`
	// Migrations counts flows re-keyed onto a new 5-tuple by QUIC
	// connection migration (summed across shards).
	Migrations uint64 `json:"migrations"`
	// EarlyClassified counts degraded (partial-feature) classifications
	// accepted by the EarlyMinMargin gate (summed across shards).
	EarlyClassified uint64 `json:"early_classified"`
}

// IngestStats snapshots the ingest counters. Safe from any goroutine.
func (s *Sharded) IngestStats() IngestStats {
	return IngestStats{
		Ignored:             s.ignored.Load(),
		Filtered:            s.filtered.Load(),
		DroppedResults:      s.dropped.Load(),
		Stalls:              s.stalls.Load(),
		OversizedHandshakes: s.OversizedHandshakes(),
		Migrations:          s.Migrations(),
		EarlyClassified:     s.EarlyClassified(),
	}
}

// Migrations sums the per-shard count of flows re-keyed by connection
// migration. Safe from any goroutine.
func (s *Sharded) Migrations() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.p.Migrations()
	}
	return n
}

// EarlyClassified sums the per-shard count of accepted degraded
// classifications. Safe from any goroutine.
func (s *Sharded) EarlyClassified() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.p.EarlyClassified()
	}
	return n
}

// OversizedHandshakes sums the per-shard count of flows abandoned because
// their buffered handshake bytes exceeded Config.MaxHelloBytes. Safe from
// any goroutine.
func (s *Sharded) OversizedHandshakes() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.p.OversizedHandshakes()
	}
	return n
}

// QueueDepths reports each shard's current inbox occupancy in messages —
// the live back-pressure picture (Stalls only counts after the fact). Safe
// from any goroutine; values are instantaneous and independently sampled.
func (s *Sharded) QueueDepths() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		out[i] = len(sh.in)
	}
	return out
}

// QueueCapacity reports the per-shard inbox capacity in messages.
func (s *Sharded) QueueCapacity() int { return cap(s.shards[0].in) }

// ResultsBuffered reports how many classified records are currently queued
// in the Results channel awaiting the consumer. Safe from any goroutine.
func (s *Sharded) ResultsBuffered() int { return len(s.results) }

// ResultsCapacity reports the Results channel capacity.
func (s *Sharded) ResultsCapacity() int { return cap(s.results) }

// Dropped reports how many results were discarded because the consumer was
// not draining Results. Safe from any goroutine.
func (s *Sharded) Dropped() uint64 { return s.dropped.Load() }

// Ignored reports how many frames were dropped at ingest because they
// failed to parse or were not TCP/UDP. Safe from any goroutine.
func (s *Sharded) Ignored() uint64 { return s.ignored.Load() }

// Filtered reports how many decodable flows were dropped at ingest by the
// port-443 video filter. Safe from any goroutine.
func (s *Sharded) Filtered() uint64 { return s.filtered.Load() }

// Stalls reports how many ingest submissions blocked on a full shard inbox.
// Safe from any goroutine.
func (s *Sharded) Stalls() uint64 { return s.stalls.Load() }

// Close stops the workers after draining queued packets and closes Results.
func (s *Sharded) Close() {
	for _, sh := range s.shards {
		close(sh.in)
	}
	s.wg.Wait()
	close(s.results)
}

// Flows gathers the per-flow records of every shard. Call after Close.
func (s *Sharded) Flows() []*FlowRecord {
	var out []*FlowRecord
	for _, sh := range s.shards {
		out = append(out, sh.p.Flows()...)
	}
	return out
}

// SnapshotFlows gathers every shard's current flow records while the
// workers are running, by queueing a snapshot request behind each shard's
// pending packets. Must not be called after (or concurrently with) Close.
func (s *Sharded) SnapshotFlows() []*FlowRecord {
	chans := make([]chan []*FlowRecord, len(s.shards))
	for i, sh := range s.shards {
		chans[i] = make(chan []*FlowRecord, 1)
		sh.in <- shardMsg{snap: chans[i]}
	}
	var out []*FlowRecord
	for _, c := range chans {
		out = append(out, <-c...)
	}
	return out
}

// TableStats sums the flow-table counters across shards. Safe from any
// goroutine while the workers run.
func (s *Sharded) TableStats() flowtable.Stats {
	var st flowtable.Stats
	for _, sh := range s.shards {
		t := sh.p.TableStats()
		st.Active += t.Active
		st.Inserted += t.Inserted
		st.EvictedIdle += t.EvictedIdle
		st.EvictedCap += t.EvictedCap
		st.Rekeyed += t.Rekeyed
	}
	return st
}

// hashKey is an FNV-1a over the canonical 5-tuple; symmetric because the
// key is canonicalized first.
func hashKey(k packet.FlowKey) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	src, dst := k.Src.As16(), k.Dst.As16()
	for _, b := range src {
		mix(b)
	}
	for _, b := range dst {
		mix(b)
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(k.Proto)
	return h
}
