package pipeline

import (
	"sync"
	"sync/atomic"
	"time"

	"videoplat/internal/flowtable"
	"videoplat/internal/packet"
)

// Sharded fans packets out to per-shard Pipelines by flow hash, the
// multi-queue arrangement the paper's DPDK prototype uses to keep up with a
// 20 Gbps tap. Hashing is symmetric (both directions of a flow land on the
// same shard), and each shard owns its flow table, so shards never contend.
//
// Results delivery contract: classified-flow records are delivered on
// Results() on a best-effort basis. A consumer that stops draining does not
// block the shard workers — once the buffer fills, further records are
// counted in Dropped() and discarded, so Close never deadlocks on a stalled
// consumer. Complete final state is always available from Flows() (plus the
// Config.OnEvict hook for flows evicted from a bounded table).
type Sharded struct {
	shards  []*shard
	results chan *FlowRecord
	dropped atomic.Uint64
	wg      sync.WaitGroup
}

type shard struct {
	in chan shardMsg
	p  *Pipeline
}

// shardMsg is either a packet or, when snap is non-nil, a request for the
// shard's current flow records (answered from the worker goroutine, so
// snapshots never race packet processing).
type shardMsg struct {
	ts    time.Time
	frame []byte
	snap  chan []*FlowRecord
}

// NewSharded starts n shard workers over a shared trained bank with
// unbounded per-shard flow tables.
func NewSharded(bank *Bank, n int) *Sharded { return NewShardedWithConfig(bank, n, Config{}) }

// NewShardedWithConfig starts n shard workers whose pipelines are each
// bounded by cfg. cfg.MaxFlows applies per shard; cfg.OnEvict is invoked
// from shard goroutines and must be safe for concurrent use. Call Close to
// drain and stop.
func NewShardedWithConfig(bank *Bank, n int, cfg Config) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{results: make(chan *FlowRecord, 64)}
	for i := 0; i < n; i++ {
		sh := &shard{in: make(chan shardMsg, 256), p: NewWithConfig(bank, cfg)}
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for msg := range sh.in {
				if msg.snap != nil {
					msg.snap <- sh.p.Flows()
					continue
				}
				rec, err := sh.p.HandlePacket(msg.ts, msg.frame)
				if err == nil && rec != nil {
					s.deliver(rec)
				}
			}
		}()
	}
	return s
}

// deliver offers a record to the results channel without ever blocking a
// shard worker; records nobody is draining are dropped and counted.
func (s *Sharded) deliver(rec *FlowRecord) {
	select {
	case s.results <- rec:
	default:
		s.dropped.Add(1)
	}
}

// Results delivers classified flow records as they complete. See the type
// comment for the best-effort delivery contract.
func (s *Sharded) Results() <-chan *FlowRecord { return s.results }

// Bank returns the classifier bank currently serving classifications.
func (s *Sharded) Bank() *Bank { return s.shards[0].p.Bank() }

// SwapBank hot-swaps the classifier bank on every shard without pausing
// packet processing: each shard's pipeline loads its bank pointer once per
// packet, so flows classifying during the swap complete coherently against
// whichever bank they loaded and later packets see the new one. Shards
// switch independently (not as one transaction), so during the swap some
// shards may still classify against the old bank — records carry
// ModelVersion so every classification stays attributable. Safe from any
// goroutine, including concurrently with HandlePacket and SnapshotFlows.
func (s *Sharded) SwapBank(bank *Bank) {
	for _, sh := range s.shards {
		sh.p.SwapBank(bank)
	}
}

// Dropped reports how many results were discarded because the consumer was
// not draining Results. Safe from any goroutine.
func (s *Sharded) Dropped() uint64 { return s.dropped.Load() }

// HandlePacket routes one frame to its flow's shard. The frame is copied, so
// callers may reuse the buffer.
func (s *Sharded) HandlePacket(ts time.Time, frame []byte) {
	var parser packet.Parser
	var parsed packet.Parsed
	idx := 0
	if parser.Parse(frame, &parsed) == nil {
		if key, ok := parsed.Flow(); ok {
			idx = int(hashKey(key.Canonical()) % uint64(len(s.shards)))
		}
	}
	buf := make([]byte, len(frame))
	copy(buf, frame)
	s.shards[idx].in <- shardMsg{ts: ts, frame: buf}
}

// Close stops the workers after draining queued packets and closes Results.
func (s *Sharded) Close() {
	for _, sh := range s.shards {
		close(sh.in)
	}
	s.wg.Wait()
	close(s.results)
}

// Flows gathers the per-flow records of every shard. Call after Close.
func (s *Sharded) Flows() []*FlowRecord {
	var out []*FlowRecord
	for _, sh := range s.shards {
		out = append(out, sh.p.Flows()...)
	}
	return out
}

// SnapshotFlows gathers every shard's current flow records while the
// workers are running, by queueing a snapshot request behind each shard's
// pending packets. Must not be called after (or concurrently with) Close.
func (s *Sharded) SnapshotFlows() []*FlowRecord {
	chans := make([]chan []*FlowRecord, len(s.shards))
	for i, sh := range s.shards {
		chans[i] = make(chan []*FlowRecord, 1)
		sh.in <- shardMsg{snap: chans[i]}
	}
	var out []*FlowRecord
	for _, c := range chans {
		out = append(out, <-c...)
	}
	return out
}

// TableStats sums the flow-table counters across shards. Safe from any
// goroutine while the workers run.
func (s *Sharded) TableStats() flowtable.Stats {
	var st flowtable.Stats
	for _, sh := range s.shards {
		t := sh.p.TableStats()
		st.Active += t.Active
		st.Inserted += t.Inserted
		st.EvictedIdle += t.EvictedIdle
		st.EvictedCap += t.EvictedCap
	}
	return st
}

// hashKey is an FNV-1a over the canonical 5-tuple; symmetric because the
// key is canonicalized first.
func hashKey(k packet.FlowKey) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	src, dst := k.Src.As16(), k.Dst.As16()
	for _, b := range src {
		mix(b)
	}
	for _, b := range dst {
		mix(b)
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(k.Proto)
	return h
}
