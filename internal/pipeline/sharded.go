package pipeline

import (
	"sync"
	"time"

	"videoplat/internal/packet"
)

// Sharded fans packets out to per-shard Pipelines by flow hash, the
// multi-queue arrangement the paper's DPDK prototype uses to keep up with a
// 20 Gbps tap. Hashing is symmetric (both directions of a flow land on the
// same shard), and each shard owns its flow table, so shards never contend.
type Sharded struct {
	shards  []*shard
	results chan *FlowRecord
	wg      sync.WaitGroup
}

type shard struct {
	in chan shardPacket
	p  *Pipeline
}

type shardPacket struct {
	ts    time.Time
	frame []byte
}

// NewSharded starts n shard workers over a shared trained bank. Results
// (classified flows) are delivered on Results; call Close to drain and stop.
func NewSharded(bank *Bank, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{results: make(chan *FlowRecord, 64)}
	for i := 0; i < n; i++ {
		sh := &shard{in: make(chan shardPacket, 256), p: New(bank)}
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for pkt := range sh.in {
				rec, err := sh.p.HandlePacket(pkt.ts, pkt.frame)
				if err == nil && rec != nil {
					s.results <- rec
				}
			}
		}()
	}
	return s
}

// Results delivers classified flow records as they complete.
func (s *Sharded) Results() <-chan *FlowRecord { return s.results }

// HandlePacket routes one frame to its flow's shard. The frame is copied, so
// callers may reuse the buffer.
func (s *Sharded) HandlePacket(ts time.Time, frame []byte) {
	var parser packet.Parser
	var parsed packet.Parsed
	idx := 0
	if parser.Parse(frame, &parsed) == nil {
		if key, ok := parsed.Flow(); ok {
			idx = int(hashKey(key.Canonical()) % uint64(len(s.shards)))
		}
	}
	buf := make([]byte, len(frame))
	copy(buf, frame)
	s.shards[idx].in <- shardPacket{ts: ts, frame: buf}
}

// Close stops the workers after draining queued packets and closes Results.
func (s *Sharded) Close() {
	for _, sh := range s.shards {
		close(sh.in)
	}
	s.wg.Wait()
	close(s.results)
}

// Flows gathers the per-flow records of every shard. Call after Close.
func (s *Sharded) Flows() []*FlowRecord {
	var out []*FlowRecord
	for _, sh := range s.shards {
		out = append(out, sh.p.Flows()...)
	}
	return out
}

// hashKey is an FNV-1a over the canonical 5-tuple; symmetric because the
// key is canonicalized first.
func hashKey(k packet.FlowKey) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	src, dst := k.Src.As16(), k.Dst.As16()
	for _, b := range src {
		mix(b)
	}
	for _, b := range dst {
		mix(b)
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(k.Proto)
	return h
}
