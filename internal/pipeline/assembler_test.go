package pipeline

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/packet"
)

// tcpFlowFrames builds handcrafted frames for one TCP flow. Client frames
// originate from src:50000 -> dst:443; server frames are the reverse.
type tcpFlowFrames struct {
	src, dst netip.Addr
}

func newTCPFlowFrames() tcpFlowFrames {
	return tcpFlowFrames{
		src: netip.MustParseAddr("192.168.1.2"),
		dst: netip.MustParseAddr("203.0.113.40"),
	}
}

func (ff tcpFlowFrames) client(payload []byte, flags uint8) []byte {
	tcp := packet.TCP{SrcPort: 50000, DstPort: 443, Flags: flags, Window: 65535}
	seg := tcp.Append(nil, payload, ff.src, ff.dst)
	ip := packet.IPv4{TTL: 62, Protocol: packet.ProtoTCP, Src: ff.src, Dst: ff.dst}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	return eth.Append(nil, ip.Append(nil, seg))
}

func (ff tcpFlowFrames) server(payload []byte, flags uint8) []byte {
	tcp := packet.TCP{SrcPort: 443, DstPort: 50000, Flags: flags, Window: 65535}
	seg := tcp.Append(nil, payload, ff.dst, ff.src)
	ip := packet.IPv4{TTL: 57, Protocol: packet.ProtoTCP, Src: ff.dst, Dst: ff.src}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	return eth.Append(nil, ip.Append(nil, seg))
}

// TestStreamingSplitHelloWithServerInterleave pins the incremental
// assembler's streaming behaviour: a ClientHello split across three client
// segments with server packets interleaved classifies exactly once, on the
// client frame that completes the record — and the interleaved server
// packets neither advance nor disturb assembly.
func TestStreamingSplitHelloWithServerInterleave(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	rng := rand.New(rand.NewPCG(1, 1))
	f, err := fingerprint.Generate(rng, "macOS_safari", fingerprint.Amazon, fingerprint.TCP, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	record := f.Hello.MarshalRecord()
	cut1, cut2 := len(record)/3, 2*len(record)/3

	ff := newTCPFlowFrames()
	type step struct {
		frame    []byte
		classify bool
	}
	steps := []step{
		{ff.client(nil, packet.FlagSYN), false},
		{ff.server(nil, packet.FlagSYN|packet.FlagACK), false},
		{ff.client(record[:cut1], packet.FlagACK|packet.FlagPSH), false},
		{ff.server([]byte{0xde, 0xad}, packet.FlagACK), false}, // server bytes mid-handshake
		{ff.client(record[cut1:cut2], packet.FlagACK|packet.FlagPSH), false},
		{ff.server(nil, packet.FlagACK), false},
		{ff.client(record[cut2:], packet.FlagACK|packet.FlagPSH), true},
		{ff.server([]byte{1, 2, 3}, packet.FlagACK), false}, // post-classification traffic
	}

	p := New(bank)
	ts := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	for i, s := range steps {
		rec, err := p.HandlePacket(ts, s.frame)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got := rec != nil; got != s.classify {
			t.Fatalf("step %d: classified=%v, want %v", i, got, s.classify)
		}
		if rec != nil && rec.SNI != f.SNI {
			t.Fatalf("step %d: SNI %q, want %q", i, rec.SNI, f.SNI)
		}
	}
	flows := p.Flows()
	if len(flows) != 1 || !flows[0].Classified {
		t.Fatalf("want 1 classified flow, got %+v", flows)
	}
	if flows[0].PacketsDown != 4 || flows[0].PacketsUp != 4 {
		t.Errorf("telemetry split wrong: up=%d down=%d", flows[0].PacketsUp, flows[0].PacketsDown)
	}
}

// endlessRecordChunk returns TCP payload bytes that look like the start of
// a huge handshake record: ParseRecord keeps reporting a truncated body, so
// the assembler keeps buffering — the scenario MaxHelloBytes bounds.
func endlessRecordChunk(first bool, n int) []byte {
	chunk := make([]byte, n)
	if first {
		chunk[0] = 22                   // handshake record
		chunk[1], chunk[2] = 0x03, 0x01 // legacy version
		chunk[3], chunk[4] = 0x3f, 0xff // record length far beyond what we send
	}
	return chunk
}

func TestMaxHelloBytesAbandonsOversizedFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	p := NewWithConfig(bank, Config{MaxHelloBytes: 1024})
	ff := newTCPFlowFrames()
	ts := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)

	feed := func(frame []byte) {
		t.Helper()
		if rec, err := p.HandlePacket(ts, frame); err != nil || rec != nil {
			t.Fatalf("unexpected classification/err: %v %v", rec, err)
		}
	}
	feed(ff.client(nil, packet.FlagSYN))
	feed(ff.client(endlessRecordChunk(true, 600), packet.FlagACK|packet.FlagPSH))
	if got := p.OversizedHandshakes(); got != 0 {
		t.Fatalf("oversized after 600 buffered bytes = %d, want 0", got)
	}
	feed(ff.client(endlessRecordChunk(false, 600), packet.FlagACK|packet.FlagPSH))
	if got := p.OversizedHandshakes(); got != 1 {
		t.Fatalf("oversized after 1200 buffered bytes = %d, want 1", got)
	}
	// The flow is abandoned: more client bytes neither re-trigger assembly
	// nor bump the counter again.
	feed(ff.client(endlessRecordChunk(false, 600), packet.FlagACK|packet.FlagPSH))
	if got := p.OversizedHandshakes(); got != 1 {
		t.Fatalf("oversized counted twice: %d", got)
	}
	flows := p.Flows()
	if len(flows) != 1 || flows[0].Classified {
		t.Fatalf("oversized flow should be tracked but unclassified: %+v", flows)
	}
	// Telemetry still accumulates for the abandoned flow.
	if flows[0].PacketsUp != 4 {
		t.Errorf("telemetry stopped: packetsUp=%d, want 4", flows[0].PacketsUp)
	}
}

func TestMaxHelloBytesDisabledBuffersOn(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	p := NewWithConfig(bank, Config{MaxHelloBytes: -1})
	ff := newTCPFlowFrames()
	ts := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	p.HandlePacket(ts, ff.client(nil, packet.FlagSYN))
	p.HandlePacket(ts, ff.client(endlessRecordChunk(true, 60000), packet.FlagACK|packet.FlagPSH))
	p.HandlePacket(ts, ff.client(endlessRecordChunk(false, 60000), packet.FlagACK|packet.FlagPSH))
	if got := p.OversizedHandshakes(); got != 0 {
		t.Fatalf("unbounded config still abandoned the flow: %d", got)
	}
}

// TestShardedOversizedCounter pins the counter's aggregation across shards
// and its surfacing through IngestStats.
func TestShardedOversizedCounter(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	s := NewShardedWithConfig(bank, 2, Config{MaxHelloBytes: 512})
	ff := newTCPFlowFrames()
	ts := time.Date(2023, 7, 7, 0, 0, 0, 0, time.UTC)
	s.HandlePacket(ts, ff.client(nil, packet.FlagSYN))
	s.HandlePacket(ts, ff.client(endlessRecordChunk(true, 600), packet.FlagACK|packet.FlagPSH))
	s.Close()
	if got := s.IngestStats().OversizedHandshakes; got != 1 {
		t.Fatalf("sharded oversized_handshakes = %d, want 1", got)
	}
}
