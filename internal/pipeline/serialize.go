package pipeline

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
)

type modelDTO struct {
	Provider  uint8
	Transport uint8
	Objective uint8
	Encoder   []byte
	Forest    []byte
	Classes   []string
}

// bankFormat is the on-wire format generation of serialized banks. Format 0
// is the pre-versioning layout (identical fields minus Format/Version), so
// decoding accepts 0..bankFormat and rejects only formats from the future.
const bankFormat = 1

type bankDTO struct {
	Format  uint32
	Version string
	Config  ml.ForestConfig
	Models  []modelDTO
}

// MarshalBinary serializes the trained bank with encoding/gob, so a model
// trained by cmd/vptrain can be deployed by cmd/vpclassify.
func (b *Bank) MarshalBinary() ([]byte, error) {
	dto := bankDTO{Format: bankFormat, Version: b.Version, Config: b.Config}
	for key, m := range b.models {
		encBlob, err := m.Encoder.MarshalBinary()
		if err != nil {
			return nil, err
		}
		forestBlob, err := m.Forest.MarshalBinary()
		if err != nil {
			return nil, err
		}
		dto.Models = append(dto.Models, modelDTO{
			Provider:  uint8(key.Provider),
			Transport: uint8(key.Transport),
			Objective: uint8(key.Objective),
			Encoder:   encBlob,
			Forest:    forestBlob,
			Classes:   m.Classes,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return nil, fmt.Errorf("pipeline: encoding bank: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a bank serialized by MarshalBinary.
func (b *Bank) UnmarshalBinary(data []byte) error {
	var dto bankDTO
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dto); err != nil {
		return fmt.Errorf("pipeline: decoding bank: %w", err)
	}
	if dto.Format > bankFormat {
		return fmt.Errorf("pipeline: bank format v%d was written by a newer build (this build reads up to v%d)",
			dto.Format, bankFormat)
	}
	b.Version = dto.Version
	b.Config = dto.Config
	b.models = map[bankKey]*Model{}
	// Reset the lazily built serving index: a Bank reloaded in place must
	// not keep dispatching through entries that point at the old models.
	b.entriesOnce = sync.Once{}
	b.entries = nil
	for _, md := range dto.Models {
		enc := &features.Encoder{}
		if err := enc.UnmarshalBinary(md.Encoder); err != nil {
			return err
		}
		forest := &ml.RandomForest{}
		if err := forest.UnmarshalBinary(md.Forest); err != nil {
			return err
		}
		b.models[bankKey{
			Provider:  fingerprint.Provider(md.Provider),
			Transport: fingerprint.Transport(md.Transport),
			Objective: Objective(md.Objective),
		}] = &Model{Encoder: enc, Forest: forest, Classes: md.Classes}
	}
	return nil
}
