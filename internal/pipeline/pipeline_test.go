package pipeline

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
	"time"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/tracegen"
)

func trainSmallBank(t testing.TB, seed uint64, scale float64) (*Bank, *tracegen.Dataset) {
	t.Helper()
	g := tracegen.New(seed)
	ds, err := g.LabDataset(scale, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bank, err := TrainBank(ds, TrainConfig{Forest: ml.ForestConfig{
		NumTrees: 15, MaxDepth: 20, MaxFeatures: 34, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	return bank, ds
}

func TestMatchProvider(t *testing.T) {
	cases := []struct {
		sni     string
		prov    fingerprint.Provider
		content bool
		ok      bool
	}{
		{"rr4---sn-abc.googlevideo.com", fingerprint.YouTube, true, true},
		{"www.youtube.com", fingerprint.YouTube, false, true},
		{"ipv4-c001-syd001-ix.1.oca.nflxvideo.net", fingerprint.Netflix, true, true},
		{"www.netflix.com", fingerprint.Netflix, false, true},
		{"vod-bgc-na-west-1.media.dssott.com", fingerprint.Disney, true, true},
		{"www.disneyplus.com", fingerprint.Disney, false, true},
		{"s3-dub-w9.cf.dash.row.aiv-cdn.net", fingerprint.Amazon, true, true},
		{"www.primevideo.com", fingerprint.Amazon, false, true},
		{"example.com", 0, false, false},
		{"", 0, false, false},
	}
	for _, c := range cases {
		prov, content, ok := MatchProvider(c.sni)
		if ok != c.ok || (ok && (prov != c.prov || content != c.content)) {
			t.Errorf("MatchProvider(%q) = %v/%v/%v", c.sni, prov, content, ok)
		}
	}
}

func TestDeviceAgentOf(t *testing.T) {
	if DeviceOf("windows_chrome") != "windows" || AgentOf("windows_chrome") != "chrome" {
		t.Error("windows_chrome mapping wrong")
	}
	if DeviceOf("androidTV_nativeApp") != "TV" || DeviceOf("ps5_nativeApp") != "TV" {
		t.Error("TV mapping wrong")
	}
	if AgentOf("ps5_nativeApp") != "nativeApp" {
		t.Error("agent mapping wrong")
	}
}

func TestExtractTraceTCPandQUIC(t *testing.T) {
	g := tracegen.New(1)
	tcp, err := g.Flow("windows_firefox", fingerprint.Netflix, fingerprint.TCP, tracegen.FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ExtractTrace(tcp)
	if err != nil {
		t.Fatal(err)
	}
	if info.QUIC {
		t.Error("TCP flow marked QUIC")
	}
	if info.TCPMSS != 1460 || info.TCPWScale != 8 {
		t.Errorf("TCP opts: mss=%d wscale=%d", info.TCPMSS, info.TCPWScale)
	}
	if info.Hello == nil || info.Hello.RecordSizeLimit() != 16385 {
		t.Error("firefox record_size_limit not recovered from packets")
	}

	quic, err := g.Flow("macOS_chrome", fingerprint.YouTube, fingerprint.QUIC, tracegen.FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	qinfo, err := ExtractTrace(quic)
	if err != nil {
		t.Fatal(err)
	}
	if !qinfo.QUIC || qinfo.InitPacketSize < 1200 {
		t.Errorf("QUIC extract: quic=%v size=%d", qinfo.QUIC, qinfo.InitPacketSize)
	}
	v := features.Extract(qinfo)
	if v.Nums["q2"] != 30000 {
		t.Errorf("q2 from packets = %v", v.Nums["q2"])
	}
}

func TestBankTrainsAndClassifiesClosedSet(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, ds := trainSmallBank(t, 2, 0.04)
	correct, composite, total := 0, 0, 0
	for i, ft := range ds.Flows {
		if i%3 != 0 { // evaluate a third for speed; training set recall
			continue
		}
		info, err := ExtractTrace(ft)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := bank.Classify(ft.Provider, ft.Transport, features.Extract(info))
		if err != nil {
			t.Fatal(err)
		}
		total++
		if pred.Platform == ft.Label {
			correct++
		}
		if pred.Status == Composite {
			composite++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Errorf("train-set platform accuracy = %.3f, want >= 0.85", acc)
	}
	if rate := float64(composite) / float64(total); rate < 0.6 {
		t.Errorf("composite-confidence rate = %.3f, want >= 0.6", rate)
	}
}

func TestConfidenceSelectorFallback(t *testing.T) {
	// A prediction with low composite confidence must degrade to Partial or
	// Unknown, never stay Composite. Build a synthetic low-confidence case
	// by classifying a Netflix hello with a YouTube model bank trained on
	// few samples. We assert only on selector semantics.
	bank, ds := trainSmallBank(t, 3, 0.02)
	for _, ft := range ds.Flows[:50] {
		info, err := ExtractTrace(ft)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := bank.Classify(ft.Provider, ft.Transport, features.Extract(info))
		if err != nil {
			t.Fatal(err)
		}
		switch pred.Status {
		case Composite:
			if pred.PlatformConf < ConfidenceThreshold {
				t.Fatalf("composite with conf %.2f", pred.PlatformConf)
			}
			if pred.Device != DeviceOf(pred.Platform) || pred.Agent != AgentOf(pred.Platform) {
				t.Fatal("composite prediction not internally consistent")
			}
		case Partial:
			if pred.DeviceConf < ConfidenceThreshold && pred.AgentConf < ConfidenceThreshold {
				t.Fatal("partial without any confident objective")
			}
		case Unknown:
			if pred.PlatformConf >= ConfidenceThreshold {
				t.Fatal("unknown with confident composite")
			}
		}
	}
}

func TestStreamingPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, _ := trainSmallBank(t, 4, 0.03)
	p := New(bank)

	g := tracegen.New(99)
	flows := []*tracegen.FlowTrace{}
	for _, spec := range []struct {
		label string
		prov  fingerprint.Provider
		tr    fingerprint.Transport
	}{
		{"windows_chrome", fingerprint.YouTube, fingerprint.QUIC},
		{"iOS_nativeApp", fingerprint.Disney, fingerprint.TCP},
		{"ps5_nativeApp", fingerprint.Amazon, fingerprint.TCP},
	} {
		ft, err := g.Flow(spec.label, spec.prov, spec.tr, tracegen.FlowSpec{})
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, ft)
	}

	classified := map[string]*FlowRecord{}
	for _, ft := range flows {
		for _, fr := range ft.Frames {
			rec, err := p.HandlePacket(ft.Start.Add(fr.Offset), fr.Data)
			if err != nil {
				t.Fatal(err)
			}
			if rec != nil {
				classified[rec.SNI] = rec
			}
		}
	}
	if len(classified) != 3 {
		t.Fatalf("classified %d flows, want 3", len(classified))
	}
	for sni, rec := range classified {
		if !rec.Classified {
			t.Errorf("%s not classified", sni)
		}
		if rec.Provider == fingerprint.YouTube && rec.Transport != fingerprint.QUIC {
			t.Errorf("%s transport = %v", sni, rec.Transport)
		}
	}
	// Telemetry accumulates beyond classification.
	final := p.Flows()
	if len(final) != 3 {
		t.Fatalf("flow records = %d", len(final))
	}
	for _, rec := range final {
		if rec.BytesDown == 0 {
			t.Errorf("%s: no downstream bytes", rec.SNI)
		}
		if rec.Duration() <= 0 {
			t.Errorf("%s: non-positive duration", rec.SNI)
		}
	}
}

func TestPipelineIgnoresNonVideoTraffic(t *testing.T) {
	bank := &Bank{models: nil}
	p := New(bank)
	// Garbage frame and a non-443 frame must be ignored without error.
	if _, err := p.HandlePacket(time.Now(), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if p.Packets != 1 {
		t.Errorf("packets = %d", p.Packets)
	}
}

func BenchmarkPipelineHandshakePath(b *testing.B) {
	bank, _ := trainSmallBank(b, 5, 0.02)
	g := tracegen.New(123)
	ft, err := g.Flow("windows_chrome", fingerprint.YouTube, fingerprint.QUIC, tracegen.FlowSpec{PayloadFrames: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(bank)
		for _, fr := range ft.Frames {
			if _, err := p.HandlePacket(ft.Start.Add(fr.Offset), fr.Data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestBankSerializationRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, ds := trainSmallBank(t, 6, 0.02)
	blob, err := bank.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Bank
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, ft := range ds.Flows[:30] {
		info, err := ExtractTrace(ft)
		if err != nil {
			t.Fatal(err)
		}
		v := features.Extract(info)
		a, err := bank.Classify(ft.Provider, ft.Transport, v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Classify(ft.Provider, ft.Transport, v)
		if err != nil {
			t.Fatal(err)
		}
		if a.Platform != b.Platform || a.PlatformConf != b.PlatformConf {
			t.Fatalf("prediction differs after round trip: %+v vs %+v", a, b)
		}
	}
	if err := restored.UnmarshalBinary([]byte("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestBankSerializationVersionAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, _ := trainSmallBank(t, 6, 0.02)
	bank.Version = "v0042"
	blob, err := bank.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Bank
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Version != "v0042" {
		t.Errorf("version after round trip = %q", restored.Version)
	}

	// A blob from a future format must be refused with a clear error, not
	// half-decoded.
	var buf bytes.Buffer
	future := bankDTO{Format: bankFormat + 1}
	if err := gob.NewEncoder(&buf).Encode(future); err != nil {
		t.Fatal(err)
	}
	err = restored.UnmarshalBinary(buf.Bytes())
	if err == nil || !strings.Contains(err.Error(), "newer build") {
		t.Errorf("future format error = %v", err)
	}
}
