package pipeline

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/obs"
	"videoplat/internal/packet"
	"videoplat/internal/tracegen"
)

// tcpFrame builds a minimal decodable Ethernet/IPv4/TCP frame for the given
// ports — enough for the ingest path to extract a 5-tuple and route it.
func tcpFrame(t *testing.T, srcPort, dstPort uint16) []byte {
	t.Helper()
	src := netip.MustParseAddr("10.1.2.3")
	dst := netip.MustParseAddr("93.184.216.34")
	tcp := packet.TCP{SrcPort: srcPort, DstPort: dstPort, Flags: packet.FlagACK, Window: 64240}
	ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: src, Dst: dst}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	return eth.Append(nil, ip.Append(nil, tcp.Append(nil, nil, src, dst)))
}

// icmpFrame builds a decodable IPv4 frame that is neither TCP nor UDP.
func icmpFrame(t *testing.T) []byte {
	t.Helper()
	ip := packet.IPv4{TTL: 64, Protocol: 1, // ICMP
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	return eth.Append(nil, ip.Append(nil, []byte{8, 0, 0, 0}))
}

// TestIngestDropsUndecodableFrames pins the satellite bugfix: frames that
// fail to parse or are non-TCP/UDP used to land on shard 0 (idx=0
// fallback), skewing its load and wasting a copy + channel send each. They
// must now be dropped at ingest, counted in Ignored, and reach no shard.
func TestIngestDropsUndecodableFrames(t *testing.T) {
	bank := &Bank{models: map[bankKey]*Model{}}
	s := NewSharded(bank, 4)
	now := time.Now()

	garbage := [][]byte{
		{1, 2, 3},        // truncated ethernet
		make([]byte, 14), // ethernet with unsupported EtherType 0 — no flow
		icmpFrame(t),     // decodes, but no TCP/UDP 5-tuple
	}
	for _, fr := range garbage {
		s.HandlePacket(now, fr)
	}
	s.HandlePacketBatch([]IngestPacket{
		{TS: now, Data: garbage[0]},
		{TS: now, Data: icmpFrame(t)},
	})

	// Decodable flows off port 443 are dropped by the ingest-time video
	// filter and counted separately from undecodable frames.
	s.HandlePacket(now, tcpFrame(t, 51000, 8080))
	s.HandlePacketBatch([]IngestPacket{{TS: now, Data: tcpFrame(t, 51001, 22)}})

	// Decodable TCP frames across many distinct flows: these must spread
	// over the shards rather than pile onto shard 0.
	const flows = 64
	for i := 0; i < flows; i++ {
		s.HandlePacket(now, tcpFrame(t, uint16(10000+i), 443))
	}
	s.Close()

	if got := s.Ignored(); got != 5 {
		t.Errorf("Ignored() = %d, want 5", got)
	}
	if got := s.Filtered(); got != 2 {
		t.Errorf("Filtered() = %d, want 2", got)
	}
	var total int
	for i, sh := range s.shards {
		if sh.p.Packets == 0 {
			t.Errorf("shard %d saw no packets: undecodable-drop must not starve shards", i)
		}
		total += sh.p.Packets
	}
	if total != flows {
		t.Errorf("shards saw %d packets, want %d (ignored frames must reach none)", total, flows)
	}
	if s.shards[0].p.Packets == flows {
		t.Error("all packets on shard 0: ingest still skews")
	}
}

// TestBatchedMatchesSinglePacket is the parse-once equivalence check: the
// batched entry point must produce exactly the flows and classifications of
// the per-packet path — same SNIs, predictions, byte and packet telemetry.
func TestBatchedMatchesSinglePacket(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, _ := trainSmallBank(t, 31, 0.02)

	g := tracegen.New(77)
	var all []*tracegen.FlowTrace
	specs := []struct {
		label string
		prov  fingerprint.Provider
		tr    fingerprint.Transport
	}{
		{"windows_chrome", fingerprint.YouTube, fingerprint.QUIC},
		{"windows_firefox", fingerprint.Netflix, fingerprint.TCP},
		{"iOS_nativeApp", fingerprint.Disney, fingerprint.TCP},
		{"androidTV_nativeApp", fingerprint.Amazon, fingerprint.TCP},
		{"macOS_safari", fingerprint.Amazon, fingerprint.TCP},
		{"ps5_nativeApp", fingerprint.Netflix, fingerprint.TCP},
	}
	for _, sp := range specs {
		ft, err := g.Flow(sp.label, sp.prov, sp.tr, tracegen.FlowSpec{PayloadFrames: 3})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ft)
	}
	// Interleave packets across flows, as a tap would deliver them.
	var pkts []IngestPacket
	for j := 0; ; j++ {
		any := false
		for _, ft := range all {
			if j < len(ft.Frames) {
				pkts = append(pkts, IngestPacket{TS: ft.Start.Add(ft.Frames[j].Offset), Data: ft.Frames[j].Data})
				any = true
			}
		}
		if !any {
			break
		}
	}

	type summary struct {
		platform   string
		status     Status
		classified bool
		bytesDown  int64
		bytesUp    int64
		pktsDown   int
		pktsUp     int
	}
	run := func(batchSize int) map[string]summary {
		s := NewSharded(bank, 4)
		go func() {
			for range s.Results() {
			}
		}()
		if batchSize <= 1 {
			for _, p := range pkts {
				s.HandlePacket(p.TS, p.Data)
			}
		} else {
			for off := 0; off < len(pkts); off += batchSize {
				end := min(off+batchSize, len(pkts))
				s.HandlePacketBatch(pkts[off:end])
			}
		}
		s.Close()
		out := map[string]summary{}
		for _, rec := range s.Flows() {
			out[rec.SNI] = summary{
				platform:   rec.Prediction.Platform,
				status:     rec.Prediction.Status,
				classified: rec.Classified,
				bytesDown:  rec.BytesDown,
				bytesUp:    rec.BytesUp,
				pktsDown:   rec.PacketsDown,
				pktsUp:     rec.PacketsUp,
			}
		}
		return out
	}

	single := run(1)
	if len(single) != len(specs) {
		t.Fatalf("single-packet path tracked %d flows, want %d", len(single), len(specs))
	}
	for _, batchSize := range []int{7, 64, len(pkts)} {
		batched := run(batchSize)
		if len(batched) != len(single) {
			t.Fatalf("batch=%d tracked %d flows, single tracked %d", batchSize, len(batched), len(single))
		}
		for sni, want := range single {
			if got, ok := batched[sni]; !ok || got != want {
				t.Errorf("batch=%d flow %s = %+v, single-packet = %+v", batchSize, sni, got, want)
			}
		}
	}
}

// TestResultsDropUnderStalledConsumer pins the revised best-effort
// contract: the results buffer is configurable (and shard-count-scaled by
// default), and a consumer that stops draining costs exactly the overflow,
// counted in Dropped, while Close still never deadlocks.
func TestResultsDropUnderStalledConsumer(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, _ := trainSmallBank(t, 31, 0.02)

	const buffer = 2
	s := NewShardedWithConfig(bank, 1, Config{ResultsBuffer: buffer})
	g := tracegen.New(99)
	labels := []string{"windows_chrome", "windows_firefox", "iOS_nativeApp",
		"macOS_safari", "ps5_nativeApp", "androidTV_nativeApp"}
	for i, label := range labels {
		prov := fingerprint.AllProviders()[i%4]
		if !fingerprint.SupportMatrix(label, prov) {
			prov = fingerprint.Netflix
		}
		tr := fingerprint.TCP
		if !fingerprint.SupportsTCP(label, prov) {
			tr = fingerprint.QUIC
		}
		ft, err := g.Flow(label, prov, tr, tracegen.FlowSpec{PayloadFrames: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range ft.Frames {
			s.HandlePacket(ft.Start.Add(fr.Offset), fr.Data)
		}
	}
	s.Close() // nobody drained Results; Close must not deadlock

	buffered := len(s.results)
	if buffered != buffer {
		t.Errorf("buffered results = %d, want full buffer %d", buffered, buffer)
	}
	want := uint64(len(labels) - buffer)
	if got := s.Dropped(); got != want {
		t.Errorf("Dropped() = %d, want %d (%d flows, buffer %d)", got, want, len(labels), buffer)
	}
	if got := s.IngestStats(); got.DroppedResults != s.Dropped() || got.Ignored != 0 {
		t.Errorf("IngestStats() = %+v inconsistent with counters", got)
	}
}

// TestShardedDefaultQueueDepths pins the shard-count-scaled defaults.
func TestShardedDefaultQueueDepths(t *testing.T) {
	bank := &Bank{models: map[bankKey]*Model{}}
	for _, n := range []int{1, 4} {
		s := NewSharded(bank, n)
		if got, want := cap(s.results), DefaultResultsBufferPerShard*n; got != want {
			t.Errorf("n=%d: results buffer = %d, want %d", n, got, want)
		}
		for _, sh := range s.shards {
			if got := cap(sh.in); got != DefaultShardQueueDepth {
				t.Errorf("n=%d: shard inbox depth = %d, want %d", n, got, DefaultShardQueueDepth)
			}
		}
		s.Close()
	}
	s := NewShardedWithConfig(bank, 2, Config{ShardQueueDepth: 8, ResultsBuffer: 5})
	if cap(s.results) != 5 || cap(s.shards[0].in) != 8 {
		t.Errorf("explicit depths not honoured: results=%d inbox=%d",
			cap(s.results), cap(s.shards[0].in))
	}
	s.Close()
}

// TestIngestStallCounter drives more batches than a one-slot inbox can hold
// so ingest must block at least once, and the stall is counted.
func TestIngestStallCounter(t *testing.T) {
	bank := &Bank{models: map[bankKey]*Model{}}
	s := NewShardedWithConfig(bank, 1, Config{ShardQueueDepth: 1})
	now := time.Now()
	for i := 0; i < 2000; i++ {
		s.HandlePacket(now, tcpFrame(t, uint16(1000+i%512), 443))
	}
	s.Close()
	if s.Stalls() == 0 {
		t.Error("no stalls recorded while flooding a depth-1 inbox")
	}
}

// BenchmarkIngest isolates the ingest layer itself — steady-state frames of
// established (done) flows through a warm Sharded, no classification — so
// the per-frame cost of routing (copy, parse, hash, queue) is measurable
// apart from the classifier. Compares the per-packet and batched entry
// points.
func BenchmarkIngest(b *testing.B) {
	for _, shards := range []int{1, 4} {
		name := func(v string) string { return fmt.Sprintf("shards=%d-%s", shards, v) }
		b.Run(name("single"), func(b *testing.B) { benchIngest(b, shards, 0, Config{}) })
		b.Run(name("batch64"), func(b *testing.B) { benchIngest(b, shards, 64, Config{}) })
	}
}

// BenchmarkIngestInstrumented is BenchmarkIngest with the full latency
// observability attached (per-stage histograms plus a sampling tracer) —
// the CI-pinned proof that instrumentation keeps the steady-state ingest
// path at 0 allocs/pkt. Spans are admitted only at flow creation, which the
// warm-up performs outside the timed region.
func BenchmarkIngestInstrumented(b *testing.B) {
	cfg := Config{
		Observer: obs.NewPipelineObserver(),
		Tracer:   obs.NewTracer(obs.TracerConfig{SampleEvery: 64}),
	}
	for _, shards := range []int{1, 4} {
		name := func(v string) string { return fmt.Sprintf("shards=%d-%s", shards, v) }
		b.Run(name("single"), func(b *testing.B) { benchIngest(b, shards, 0, cfg) })
		b.Run(name("batch64"), func(b *testing.B) { benchIngest(b, shards, 64, cfg) })
	}
}

// benchIngest isolates the ingest layer: steady-state frames of established
// (done) flows through a warm Sharded under cfg's instrumentation.
func benchIngest(b *testing.B, shards, batchSize int, cfg Config) {
	const flows = 256
	frames := make([][]byte, flows)
	src := netip.MustParseAddr("10.1.2.3")
	dst := netip.MustParseAddr("93.184.216.34")
	for i := range frames {
		tcp := packet.TCP{SrcPort: uint16(10000 + i), DstPort: 443, Flags: packet.FlagACK, Window: 64240}
		ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: src, Dst: dst}
		eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
		payload := make([]byte, 1200)
		frames[i] = eth.Append(nil, ip.Append(nil, tcp.Append(nil, payload, src, dst)))
	}
	now := time.Now()
	bank := &Bank{models: map[bankKey]*Model{}}

	s := NewShardedWithConfig(bank, shards, cfg)
	go func() {
		for range s.Results() {
		}
	}()
	var pkts []IngestPacket
	for _, fr := range frames {
		pkts = append(pkts, IngestPacket{TS: now, Data: fr})
	}
	feed := func() {
		if batchSize <= 1 {
			for _, p := range pkts {
				s.HandlePacket(p.TS, p.Data)
			}
		} else {
			for off := 0; off < len(pkts); off += batchSize {
				s.HandlePacketBatch(pkts[off:min(off+batchSize, len(pkts))])
			}
		}
	}
	for i := 0; i < 12; i++ {
		feed() // mark every flow done, warm the pools
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed()
	}
	b.StopTimer()
	s.Close()
	b.ReportMetric(float64(b.N*len(frames))/b.Elapsed().Seconds(), "pkts/s")
}
