package pipeline

import (
	"fmt"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/tracegen"
)

// Objective selects what a classifier predicts (§4.1: composite user
// platform, device type only, or software agent only).
type Objective uint8

// Prediction objectives.
const (
	PlatformObjective Objective = iota
	DeviceObjective
	AgentObjective
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case PlatformObjective:
		return "user platform"
	case DeviceObjective:
		return "device type"
	default:
		return "software agent"
	}
}

// Model is one trained classifier: its fitted encoder, forest and class
// universe.
type Model struct {
	Encoder *features.Encoder
	Forest  *ml.RandomForest
	Classes []string
}

// Predict classifies one handshake.
func (m *Model) Predict(v *features.FieldValues) (string, float64) {
	x := m.Encoder.Transform(v)
	ci, conf := ml.Predict(m.Forest, x)
	return m.Classes[ci], conf
}

// bankKey identifies a model in the bank.
type bankKey struct {
	Provider  fingerprint.Provider
	Transport fingerprint.Transport
	Objective Objective
}

// Bank is the classifier bank of Fig 4: three objectives per provider, with
// separate models per transport (YouTube has both TCP and QUIC models, so a
// full bank holds 15 models; the paper counts 12 classifiers by provider ×
// objective).
type Bank struct {
	models map[bankKey]*Model
	Config ml.ForestConfig
	// Version is the registry identity of this bank (e.g. "v0003"), stamped
	// by internal/registry when the bank is stored and carried through
	// serialization, so classifications and exports stay attributable.
	// Empty for ad-hoc banks that never went through a registry.
	Version string
}

// TrainConfig controls bank training.
type TrainConfig struct {
	Forest ml.ForestConfig
	// Subset restricts the attribute set by Table 2 labels (nil = all
	// applicable attributes, the deployed configuration).
	Subset []string
}

// DefaultForestConfig mirrors the paper's selected hyperparameters:
// depth 20 with 34 candidate attributes per split performed best in Fig 6(a).
func DefaultForestConfig() ml.ForestConfig {
	return ml.ForestConfig{NumTrees: 40, MaxDepth: 20, MaxFeatures: 34, Seed: 1}
}

// TrainBank trains models for every (provider, transport, objective) with
// data in the dataset.
func TrainBank(ds *tracegen.Dataset, cfg TrainConfig) (*Bank, error) {
	if cfg.Forest.NumTrees == 0 {
		cfg.Forest = DefaultForestConfig()
	}
	b := &Bank{models: map[bankKey]*Model{}, Config: cfg.Forest}

	type group struct {
		values []*features.FieldValues
		labels []string
	}
	groups := map[[2]int]*group{}
	for _, ft := range ds.Flows {
		info, err := ExtractTrace(ft)
		if err != nil {
			return nil, err
		}
		v := features.Extract(info)
		k := [2]int{int(ft.Provider), int(ft.Transport)}
		g := groups[k]
		if g == nil {
			g = &group{}
			groups[k] = g
		}
		g.values = append(g.values, v)
		g.labels = append(g.labels, ft.Label)
	}

	for k, g := range groups {
		prov := fingerprint.Provider(k[0])
		tr := fingerprint.Transport(k[1])
		for _, obj := range []Objective{PlatformObjective, DeviceObjective, AgentObjective} {
			m, err := trainOne(g.values, g.labels, tr == fingerprint.QUIC, obj, cfg)
			if err != nil {
				return nil, fmt.Errorf("pipeline: training %s/%s/%s: %w", prov, tr, obj, err)
			}
			b.models[bankKey{prov, tr, obj}] = m
		}
	}
	return b, nil
}

func trainOne(values []*features.FieldValues, labels []string, quic bool, obj Objective, cfg TrainConfig) (*Model, error) {
	enc, err := features.NewEncoder(quic, cfg.Subset)
	if err != nil {
		return nil, err
	}
	enc.Fit(values)
	x := enc.TransformAll(values)

	objLabels := make([]string, len(labels))
	for i, l := range labels {
		objLabels[i] = objectiveLabel(l, obj)
	}
	d, err := ml.NewDataset(x, objLabels)
	if err != nil {
		return nil, err
	}
	forest := &ml.RandomForest{Config: cfg.Forest}
	forest.Fit(d)
	return &Model{Encoder: enc, Forest: forest, Classes: d.Classes}, nil
}

func objectiveLabel(label string, obj Objective) string {
	switch obj {
	case DeviceObjective:
		return DeviceOf(label)
	case AgentObjective:
		return AgentOf(label)
	default:
		return label
	}
}

// Model returns the trained model for a key, or nil.
func (b *Bank) Model(prov fingerprint.Provider, tr fingerprint.Transport, obj Objective) *Model {
	return b.models[bankKey{prov, tr, obj}]
}

// ConfidenceThreshold is the §4.1 cutoff below which the composite
// prediction is not trusted.
const ConfidenceThreshold = 0.8

// Status describes how much of the user platform was confidently predicted.
type Status uint8

// Prediction statuses.
const (
	Composite Status = iota // full platform predicted with high confidence
	Partial                 // only device and/or agent predicted confidently
	Unknown                 // nothing confident: rejected
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Composite:
		return "composite"
	case Partial:
		return "partial"
	default:
		return "unknown"
	}
}

// Prediction is the confidence-selected output for one video flow (§4.1).
type Prediction struct {
	Status Status

	Platform     string
	PlatformConf float64
	Device       string
	DeviceConf   float64
	Agent        string
	AgentConf    float64
}

// Classify runs the three objectives for a flow and applies the confidence
// selector: composite first; below threshold, fall back to the individual
// device/agent models; if none clears the threshold the flow is Unknown.
func (b *Bank) Classify(prov fingerprint.Provider, tr fingerprint.Transport, v *features.FieldValues) (Prediction, error) {
	var p Prediction
	pm := b.Model(prov, tr, PlatformObjective)
	dm := b.Model(prov, tr, DeviceObjective)
	am := b.Model(prov, tr, AgentObjective)
	if pm == nil || dm == nil || am == nil {
		return p, fmt.Errorf("pipeline: no models for %s/%s", prov, tr)
	}
	p.Platform, p.PlatformConf = pm.Predict(v)
	p.Device, p.DeviceConf = dm.Predict(v)
	p.Agent, p.AgentConf = am.Predict(v)

	switch {
	case p.PlatformConf >= ConfidenceThreshold:
		p.Status = Composite
		// Keep composite-consistent device/agent for downstream grouping.
		p.Device = DeviceOf(p.Platform)
		p.Agent = AgentOf(p.Platform)
	case p.DeviceConf >= ConfidenceThreshold || p.AgentConf >= ConfidenceThreshold:
		p.Status = Partial
		if p.DeviceConf < ConfidenceThreshold {
			p.Device = ""
		}
		if p.AgentConf < ConfidenceThreshold {
			p.Agent = ""
		}
	default:
		p.Status = Unknown
	}
	return p, nil
}
