package pipeline

import (
	"fmt"
	"sync"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/ml"
	"videoplat/internal/tracegen"
)

// Objective selects what a classifier predicts (§4.1: composite user
// platform, device type only, or software agent only).
type Objective uint8

// Prediction objectives.
const (
	PlatformObjective Objective = iota
	DeviceObjective
	AgentObjective
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case PlatformObjective:
		return "user platform"
	case DeviceObjective:
		return "device type"
	default:
		return "software agent"
	}
}

// Model is one trained classifier: its fitted encoder, forest and class
// universe.
type Model struct {
	Encoder *features.Encoder
	Forest  *ml.RandomForest
	Classes []string

	compileOnce sync.Once
	compiled    *features.CompiledEncoder
	forestOnce  sync.Once
	cforest     *ml.CompiledForest
}

// Predict classifies one handshake's field values (the training/experiments
// representation). The serving path uses Bank.ClassifyHandshake instead.
func (m *Model) Predict(v *features.FieldValues) (string, float64) {
	x := m.Encoder.Transform(v)
	ci, conf := ml.Predict(m.Forest, x)
	return m.Classes[ci], conf
}

// Compiled returns the model's serving-path compiled encoder, lowering the
// fitted encoder on first use. It returns nil when the encoder cannot be
// compiled (an attribute schema this build does not know), in which case
// callers fall back to Extract+Transform.
func (m *Model) Compiled() *features.CompiledEncoder {
	m.compileOnce.Do(func() {
		m.compiled, _ = features.Compile(m.Encoder)
	})
	return m.compiled
}

// CompiledForest returns the model's serving-path compiled forest, lowering
// the fitted ensemble into flat node arrays on first use. It returns nil
// when the forest cannot be compiled (empty or malformed ensembles), in
// which case callers fall back to the pointer-walking reference path.
func (m *Model) CompiledForest() *ml.CompiledForest {
	m.forestOnce.Do(func() {
		m.cforest, _ = ml.CompileForest(m.Forest)
	})
	return m.cforest
}

// bankKey identifies a model in the bank.
type bankKey struct {
	Provider  fingerprint.Provider
	Transport fingerprint.Transport
	Objective Objective
}

// Bank is the classifier bank of Fig 4: three objectives per provider, with
// separate models per transport (YouTube has both TCP and QUIC models, so a
// full bank holds 15 models; the paper counts 12 classifiers by provider ×
// objective).
type Bank struct {
	models map[bankKey]*Model
	Config ml.ForestConfig
	// Version is the registry identity of this bank (e.g. "v0003"), stamped
	// by internal/registry when the bank is stored and carried through
	// serialization, so classifications and exports stay attributable.
	// Empty for ad-hoc banks that never went through a registry.
	Version string

	// entries is the serving-path index: per (provider, transport), the
	// three objective models plus — when their fitted encoders are
	// equivalent, which TrainBank guarantees — one shared compiled encoder
	// so a flow is encoded once for all three predictions. Built lazily
	// (the model set is immutable after TrainBank/UnmarshalBinary).
	entriesOnce sync.Once
	entries     map[entryKey]*bankEntry
}

type entryKey struct {
	Provider  fingerprint.Provider
	Transport fingerprint.Transport
}

type bankEntry struct {
	platform, device, agent *Model
	// shared is the single compiled encoder serving all three objectives,
	// nil when the per-objective encoders differ (hand-assembled banks) or
	// cannot be compiled — Classify's Extract+Transform path is the
	// fallback.
	shared *features.CompiledEncoder
	// cplatform/cdevice/cagent are the objectives' compiled serving
	// forests (flat node arrays); nil when an ensemble did not compile, in
	// which case prediction falls back to the pointer walk.
	cplatform, cdevice, cagent *ml.CompiledForest
}

// batchable reports whether this entry carries every compiled serving form
// the batched classify pass needs: one shared encode pass plus flat-array
// forests for all three objectives.
func (e *bankEntry) batchable() bool {
	return e.shared != nil && e.cplatform != nil && e.cdevice != nil && e.cagent != nil
}

// entry returns the serving index entry for a (provider, transport), or nil
// when any objective model is missing.
func (b *Bank) entry(prov fingerprint.Provider, tr fingerprint.Transport) *bankEntry {
	b.entriesOnce.Do(func() { //vp:allocok one-time lazy serving-index build under sync.Once
		b.entries = map[entryKey]*bankEntry{}
		for key := range b.models {
			ek := entryKey{key.Provider, key.Transport}
			if _, done := b.entries[ek]; done {
				continue
			}
			e := &bankEntry{
				platform: b.models[bankKey{ek.Provider, ek.Transport, PlatformObjective}],
				device:   b.models[bankKey{ek.Provider, ek.Transport, DeviceObjective}],
				agent:    b.models[bankKey{ek.Provider, ek.Transport, AgentObjective}],
			}
			if e.platform == nil || e.device == nil || e.agent == nil {
				continue
			}
			if e.platform.Encoder.EquivalentTo(e.device.Encoder) &&
				e.platform.Encoder.EquivalentTo(e.agent.Encoder) {
				e.shared = e.platform.Compiled()
			}
			e.cplatform = e.platform.CompiledForest()
			e.cdevice = e.device.CompiledForest()
			e.cagent = e.agent.CompiledForest()
			b.entries[ek] = e
		}
	})
	return b.entries[entryKey{prov, tr}]
}

// TrainConfig controls bank training.
type TrainConfig struct {
	Forest ml.ForestConfig
	// Subset restricts the attribute set by Table 2 labels (nil = all
	// applicable attributes, the deployed configuration).
	Subset []string
}

// DefaultForestConfig mirrors the paper's selected hyperparameters:
// depth 20 with 34 candidate attributes per split performed best in Fig 6(a).
func DefaultForestConfig() ml.ForestConfig {
	return ml.ForestConfig{NumTrees: 40, MaxDepth: 20, MaxFeatures: 34, Seed: 1}
}

// TrainBank trains models for every (provider, transport, objective) with
// data in the dataset.
func TrainBank(ds *tracegen.Dataset, cfg TrainConfig) (*Bank, error) {
	if cfg.Forest.NumTrees == 0 {
		cfg.Forest = DefaultForestConfig()
	}
	b := &Bank{models: map[bankKey]*Model{}, Config: cfg.Forest}

	type group struct {
		values []*features.FieldValues
		labels []string
	}
	groups := map[[2]int]*group{}
	for _, ft := range ds.Flows {
		info, err := ExtractTrace(ft)
		if err != nil {
			return nil, err
		}
		v := features.Extract(info)
		k := [2]int{int(ft.Provider), int(ft.Transport)}
		g := groups[k]
		if g == nil {
			g = &group{}
			groups[k] = g
		}
		g.values = append(g.values, v)
		g.labels = append(g.labels, ft.Label)
	}

	for k, g := range groups {
		prov := fingerprint.Provider(k[0])
		tr := fingerprint.Transport(k[1])
		for _, obj := range []Objective{PlatformObjective, DeviceObjective, AgentObjective} {
			m, err := trainOne(g.values, g.labels, tr == fingerprint.QUIC, obj, cfg)
			if err != nil {
				return nil, fmt.Errorf("pipeline: training %s/%s/%s: %w", prov, tr, obj, err)
			}
			b.models[bankKey{prov, tr, obj}] = m
		}
	}
	return b, nil
}

func trainOne(values []*features.FieldValues, labels []string, quic bool, obj Objective, cfg TrainConfig) (*Model, error) {
	enc, err := features.NewEncoder(quic, cfg.Subset)
	if err != nil {
		return nil, err
	}
	enc.Fit(values)
	x := enc.TransformAll(values)

	objLabels := make([]string, len(labels))
	for i, l := range labels {
		objLabels[i] = objectiveLabel(l, obj)
	}
	d, err := ml.NewDataset(x, objLabels)
	if err != nil {
		return nil, err
	}
	forest := &ml.RandomForest{Config: cfg.Forest}
	forest.Fit(d)
	return &Model{Encoder: enc, Forest: forest, Classes: d.Classes}, nil
}

func objectiveLabel(label string, obj Objective) string {
	switch obj {
	case DeviceObjective:
		return DeviceOf(label)
	case AgentObjective:
		return AgentOf(label)
	default:
		return label
	}
}

// Model returns the trained model for a key, or nil.
func (b *Bank) Model(prov fingerprint.Provider, tr fingerprint.Transport, obj Objective) *Model {
	return b.models[bankKey{prov, tr, obj}]
}

// CompiledFootprint summarizes the bank's compiled serving index: how many
// of its models compiled into flat node arrays, their total flattened node
// count, and the resident bytes those arrays pin. Surfaced through the ops
// endpoints so operators can see what the compiled fast path costs in
// memory. Calling it lowers any not-yet-compiled models (cached, so the
// serving path is unaffected).
type CompiledFootprint struct {
	// Models counts the bank's trained models; CompiledModels those whose
	// forests lowered into the flat serving form (the rest serve through the
	// pointer-walk fallback).
	Models         int   `json:"models"`
	CompiledModels int   `json:"compiled_models"`
	Nodes          int   `json:"nodes"`
	Bytes          int64 `json:"bytes"`
}

// CompiledFootprint reports the bank's compiled serving-index footprint.
func (b *Bank) CompiledFootprint() CompiledFootprint {
	var fp CompiledFootprint
	for _, m := range b.models {
		fp.Models++
		cf := m.CompiledForest()
		if cf == nil {
			continue
		}
		fp.CompiledModels++
		fp.Nodes += cf.NumNodes()
		fp.Bytes += cf.Bytes()
	}
	return fp
}

// ConfidenceThreshold is the §4.1 cutoff below which the composite
// prediction is not trusted.
const ConfidenceThreshold = 0.8

// Status describes how much of the user platform was confidently predicted.
type Status uint8

// Prediction statuses.
const (
	Composite Status = iota // full platform predicted with high confidence
	Partial                 // only device and/or agent predicted confidently
	Unknown                 // nothing confident: rejected
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Composite:
		return "composite"
	case Partial:
		return "partial"
	default:
		return "unknown"
	}
}

// Prediction is the confidence-selected output for one video flow (§4.1).
type Prediction struct {
	Status Status

	Platform     string
	PlatformConf float64
	// PlatformMargin is the probability gap between the platform model's top
	// class and its runner-up — how decisively the forest separated the
	// winner, lifted from the same PredictProbaInto pass that produced
	// PlatformConf. A high-confidence, low-margin prediction means two
	// platforms looked almost equally likely; telemetry folds it alongside
	// the confidence so operators can see decisiveness decay before the
	// selector starts abstaining. Equal to PlatformConf when the model knows
	// only one class.
	PlatformMargin float64
	Device         string
	DeviceConf     float64
	Agent          string
	AgentConf      float64
}

// Classify runs the three objectives for a flow and applies the confidence
// selector: composite first; below threshold, fall back to the individual
// device/agent models; if none clears the threshold the flow is Unknown.
// This is the training/experiments entry point over extracted FieldValues;
// the serving path is ClassifyHandshake.
func (b *Bank) Classify(prov fingerprint.Provider, tr fingerprint.Transport, v *features.FieldValues) (Prediction, error) {
	var p Prediction
	e := b.entry(prov, tr)
	if e == nil {
		return p, fmt.Errorf("pipeline: no models for %s/%s", prov, tr)
	}
	p.Platform, p.PlatformConf, p.PlatformMargin = e.platform.predictMargin(v)
	p.Device, p.DeviceConf = e.device.Predict(v)
	p.Agent, p.AgentConf = e.agent.Predict(v)
	p.applySelector()
	return p, nil
}

// ClassifyScratch holds one worker's reusable classification buffers: the
// encoded feature vector, the forest probability accumulator, the compiled
// encoder's extension-walking scratch, and the batched path's row and
// probability matrices. Each pipeline (and thus each shard) owns one, so the
// steady-state encode+predict path performs no allocations. The zero value
// is ready to use; not safe for concurrent use.
type ClassifyScratch struct {
	vec   []float64
	proba []float64
	enc   features.EncodeScratch
	// rows is ClassifyBatch's encoded-row matrix (flows × encoder width,
	// packed back-to-back); bproba is the per-objective batched probability
	// matrix (flows × class count). Both are reused via their capacity.
	rows   []float64
	bproba []float64
}

// growFloats resizes a scratch buffer to n elements, growing its capacity
// amortized and zeroing the visible window.
//
//vp:hotpath
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]float64, n-cap(s))...) //vp:allocok amortized scratch growth, pinned by TestClassifyBatchZeroAlloc
	}
	s = s[:n]
	clear(s)
	return s
}

// ClassifyHandshake classifies an assembled handshake directly — the
// serving-path fast variant of Classify. With a TrainBank-built (or
// deserialized) bank the three objectives share one compiled encode pass:
// raw wire values resolve through interned tables into sc's pooled vector,
// with no FieldValues maps and no string formatting. Predictions are
// byte-identical to Classify(prov, tr, features.Extract(info)) — pinned by
// the golden-equivalence tests. A nil sc allocates temporaries (used by
// off-path callers like the shadow evaluator). Zero-allocation with a warm
// scratch, pinned by TestClassifyHandshakeZeroAlloc.
//
//vp:hotpath
func (b *Bank) ClassifyHandshake(prov fingerprint.Provider, tr fingerprint.Transport, info *features.HandshakeInfo, sc *ClassifyScratch) (Prediction, error) {
	var p Prediction
	e := b.entry(prov, tr)
	if e == nil {
		return p, fmt.Errorf("pipeline: no models for %s/%s", prov, tr) //vp:allocok cold no-models error path
	}
	if e.shared == nil {
		// Encoders differ or did not compile: fall back to the reference
		// extraction path.
		return b.Classify(prov, tr, features.Extract(info)) //vp:allocok cold fallback when encoders did not compile
	}
	if sc == nil {
		sc = &ClassifyScratch{} //vp:allocok cold nil-scratch path for off-path callers
	}
	sc.vec = e.shared.EncodeInto(sc.vec, info, &sc.enc)
	p.Platform, p.PlatformConf, p.PlatformMargin = e.platform.predictCompiledMargin(e.cplatform, sc.vec, &sc.proba)
	p.Device, p.DeviceConf = e.device.predictCompiled(e.cdevice, sc.vec, &sc.proba)
	p.Agent, p.AgentConf = e.agent.predictCompiled(e.cagent, sc.vec, &sc.proba)
	p.applySelector()
	return p, nil
}

// ClassifyBatch classifies every handshake of one (provider, transport) in a
// single pass — the batch spine of the compiled serving path. All flows are
// encoded back-to-back into sc's row matrix, then each objective's compiled
// forest sweeps the whole matrix with trees as the outer loop, so a tree's
// flat nodes stay cache-resident while every row traverses them.
// Per-flow predictions are byte-identical to ClassifyHandshake (pinned by the
// golden-equivalence tests). out must have len(infos) capacity-visible slots
// (out[i] receives infos[i]'s prediction). Entries without a full compiled
// serving form fall back to per-flow ClassifyHandshake. Zero-allocation with
// a warm scratch, pinned by TestClassifyBatchZeroAlloc.
//
//vp:hotpath
func (b *Bank) ClassifyBatch(prov fingerprint.Provider, tr fingerprint.Transport, infos []*features.HandshakeInfo, sc *ClassifyScratch, out []Prediction) error {
	if len(infos) == 0 {
		return nil
	}
	e := b.entry(prov, tr)
	if e == nil {
		return fmt.Errorf("pipeline: no models for %s/%s", prov, tr) //vp:allocok cold no-models error path
	}
	if sc == nil {
		sc = &ClassifyScratch{} //vp:allocok cold nil-scratch path for off-path callers
	}
	if !e.batchable() {
		// Missing a compiled encoder or forest: serve each flow through the
		// per-flow path, which applies its own fallbacks.
		for i, info := range infos {
			p, err := b.ClassifyHandshake(prov, tr, info, sc)
			if err != nil {
				return err
			}
			out[i] = p
		}
		return nil
	}
	stride := e.shared.Width()
	sc.rows = growFloats(sc.rows, len(infos)*stride)
	for i, info := range infos {
		e.shared.EncodeInto(sc.rows[i*stride:i*stride:(i+1)*stride], info, &sc.enc)
	}
	e.classifyRows(sc, len(infos), stride, out)
	return nil
}

// classifyRows runs the three batched objective passes over an encoded row
// matrix and fills out[:n] with selector-applied predictions.
//
//vp:hotpath
func (e *bankEntry) classifyRows(sc *ClassifyScratch, n, stride int, out []Prediction) {
	rows := sc.rows[:n*stride]

	sc.bproba = e.cplatform.PredictBatchInto(rows, stride, sc.bproba)
	w := e.cplatform.NumClasses()
	for i := 0; i < n; i++ {
		proba := sc.bproba[i*w : (i+1)*w]
		ci, conf := argmaxProba(proba)
		out[i] = Prediction{
			Platform:       e.platform.Classes[ci],
			PlatformConf:   conf,
			PlatformMargin: probaMargin(proba, ci, conf),
		}
	}

	sc.bproba = e.cdevice.PredictBatchInto(rows, stride, sc.bproba)
	w = e.cdevice.NumClasses()
	for i := 0; i < n; i++ {
		ci, conf := argmaxProba(sc.bproba[i*w : (i+1)*w])
		out[i].Device = e.device.Classes[ci]
		out[i].DeviceConf = conf
	}

	sc.bproba = e.cagent.PredictBatchInto(rows, stride, sc.bproba)
	w = e.cagent.NumClasses()
	for i := 0; i < n; i++ {
		ci, conf := argmaxProba(sc.bproba[i*w : (i+1)*w])
		out[i].Agent = e.agent.Classes[ci]
		out[i].AgentConf = conf
		out[i].applySelector()
	}
}

// argmaxProba returns the winning class index and probability with the same
// tie-breaking as RandomForest.PredictInto (first strict maximum wins).
//
//vp:hotpath
func argmaxProba(proba []float64) (int, float64) {
	best, bestP := 0, -1.0
	for i, v := range proba {
		if v > bestP {
			best, bestP = i, v
		}
	}
	return best, bestP
}

// predictCompiled predicts over an already-encoded vector through the
// compiled forest, falling back to the pointer walk when the ensemble did
// not compile. Both paths are byte-identical.
//
//vp:hotpath
func (m *Model) predictCompiled(cf *ml.CompiledForest, x []float64, proba *[]float64) (string, float64) {
	if cf == nil {
		return m.predictInto(x, proba) //vp:allocok cold fallback when forest did not compile
	}
	ci, conf := cf.PredictInto(x, proba)
	return m.Classes[ci], conf
}

// predictCompiledMargin is predictCompiled plus the top-1/top-2 margin.
//
//vp:hotpath
func (m *Model) predictCompiledMargin(cf *ml.CompiledForest, x []float64, proba *[]float64) (string, float64, float64) {
	if cf == nil {
		return m.predictIntoMargin(x, proba) //vp:allocok cold fallback when forest did not compile
	}
	ci, conf := cf.PredictInto(x, proba)
	return m.Classes[ci], conf, probaMargin(*proba, ci, conf)
}

// predictInto is Predict over an already-encoded vector with caller-owned
// probability scratch.
func (m *Model) predictInto(x []float64, proba *[]float64) (string, float64) {
	ci, conf := m.Forest.PredictInto(x, proba)
	return m.Classes[ci], conf
}

// predictIntoMargin is predictInto plus the top-1/top-2 probability margin,
// read from the probability vector the forest already filled — no extra
// inference pass and no allocations.
func (m *Model) predictIntoMargin(x []float64, proba *[]float64) (string, float64, float64) {
	ci, conf := m.Forest.PredictInto(x, proba)
	return m.Classes[ci], conf, probaMargin(*proba, ci, conf)
}

// predictMargin is the reference-path twin of predictIntoMargin, used by
// Classify so both classification paths compute the margin from the same
// PredictProbaInto output and stay bitwise identical (golden equivalence).
func (m *Model) predictMargin(v *features.FieldValues) (string, float64, float64) {
	x := m.Encoder.Transform(v)
	var proba []float64
	ci, conf := m.Forest.PredictInto(x, &proba)
	return m.Classes[ci], conf, probaMargin(proba, ci, conf)
}

// probaMargin is the gap between the winning class probability and the best
// runner-up. With a single-class model there is no runner-up and the margin
// equals the confidence (maximally decisive).
func probaMargin(proba []float64, best int, conf float64) float64 {
	second := -1.0
	for i, v := range proba {
		if i != best && v > second {
			second = v
		}
	}
	if second < 0 {
		return conf
	}
	return conf - second
}

// applySelector applies the §4.1 confidence selector to raw per-objective
// predictions, shared by Classify and ClassifyHandshake.
func (p *Prediction) applySelector() {
	switch {
	case p.PlatformConf >= ConfidenceThreshold:
		p.Status = Composite
		// Keep composite-consistent device/agent for downstream grouping.
		p.Device = DeviceOf(p.Platform)
		p.Agent = AgentOf(p.Platform)
	case p.DeviceConf >= ConfidenceThreshold || p.AgentConf >= ConfidenceThreshold:
		p.Status = Partial
		if p.DeviceConf < ConfidenceThreshold {
			p.Device = ""
		}
		if p.AgentConf < ConfidenceThreshold {
			p.Agent = ""
		}
	default:
		p.Status = Unknown
	}
}
