package pipeline

import (
	"math/rand/v2"
	"net/netip"
	"reflect"
	"testing"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/packet"
)

// TestExtractFramesSplitClientHello feeds a ClientHello split across two TCP
// segments, exercising the stream-reassembly path of ExtractFrames.
func TestExtractFramesSplitClientHello(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	f, err := fingerprint.Generate(rng, "macOS_safari", fingerprint.Amazon, fingerprint.TCP, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	record := f.Hello.MarshalRecord()
	cut := len(record) / 3

	src := netip.MustParseAddr("192.168.1.2")
	dst := netip.MustParseAddr("203.0.113.40")
	mkFrame := func(payload []byte, flags uint8, withOpts bool) []byte {
		tcp := packet.TCP{SrcPort: 50000, DstPort: 443, Flags: flags, Window: f.Window}
		if withOpts {
			tcp.Options = []packet.TCPOption{
				{Kind: packet.OptMSS, Data: []byte{byte(f.MSS >> 8), byte(f.MSS)}},
				{Kind: packet.OptNOP}, {Kind: packet.OptNOP},
				{Kind: packet.OptSACKPermitted},
				{Kind: packet.OptNOP},
				{Kind: packet.OptWindowScale, Data: []byte{byte(f.WScale)}},
			}
		}
		seg := tcp.Append(nil, payload, src, dst)
		ip := packet.IPv4{TTL: f.TTL - 2, Protocol: packet.ProtoTCP, Src: src, Dst: dst}
		eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
		return eth.Append(nil, ip.Append(nil, seg))
	}

	frames := [][]byte{
		mkFrame(nil, packet.FlagSYN|packet.FlagECE|packet.FlagCWR, true),
		mkFrame(record[:cut], packet.FlagACK|packet.FlagPSH, false),
		mkFrame(record[cut:], packet.FlagACK|packet.FlagPSH, false),
	}
	info, err := ExtractFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if info.Hello.ServerName() != f.SNI {
		t.Errorf("SNI = %q, want %q", info.Hello.ServerName(), f.SNI)
	}
	if info.TCPMSS != f.MSS || info.TCPWScale != f.WScale {
		t.Errorf("TCP opts not recovered: mss=%d wscale=%d", info.TCPMSS, info.TCPWScale)
	}
	if info.TCPFlags&packet.FlagECE == 0 {
		t.Error("ECN flags lost")
	}
}

func TestExtractFramesNoHello(t *testing.T) {
	if _, err := ExtractFrames(nil); err == nil {
		t.Error("empty frames accepted")
	}
	// Frames with only a SYN and application noise must fail with
	// ErrNoHandshake.
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	tcp := packet.TCP{SrcPort: 1234, DstPort: 443, Flags: packet.FlagSYN}
	seg := tcp.Append(nil, nil, src, dst)
	ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: src, Dst: dst}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	frame := eth.Append(nil, ip.Append(nil, seg))
	if _, err := ExtractFrames([][]byte{frame}); err == nil {
		t.Error("SYN-only flow should have no hello")
	}
}

// TestFromFlowMatchesPacketPath verifies the campus fast path
// (features.FromFlow) and the packet path (ExtractFrames over rendered
// frames) agree on every Table 2 attribute for the same underlying flow.
func TestFromFlowMatchesPacketPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, c := range []struct {
		label string
		prov  fingerprint.Provider
		tr    fingerprint.Transport
	}{
		{"windows_chrome", fingerprint.Netflix, fingerprint.TCP},
		{"macOS_firefox", fingerprint.Disney, fingerprint.TCP},
		{"ps5_nativeApp", fingerprint.Amazon, fingerprint.TCP},
	} {
		f, err := fingerprint.Generate(rng, c.label, c.prov, c.tr, fingerprint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		const hops = 2
		fast := features.Extract(features.FromFlow(f, hops))

		// Render the same flow by hand, mirroring tracegen's SYN layout.
		src := netip.MustParseAddr("192.168.1.9")
		dst := netip.MustParseAddr("203.0.113.9")
		var opts []packet.TCPOption
		opts = append(opts, packet.TCPOption{Kind: packet.OptMSS,
			Data: []byte{byte(f.MSS >> 8), byte(f.MSS)}})
		if f.SACK {
			opts = append(opts, packet.TCPOption{Kind: packet.OptNOP},
				packet.TCPOption{Kind: packet.OptNOP},
				packet.TCPOption{Kind: packet.OptSACKPermitted})
		}
		if f.Timestamps {
			opts = append(opts, packet.TCPOption{Kind: packet.OptTimestamps, Data: make([]byte, 8)})
		}
		if f.WScale >= 0 {
			opts = append(opts, packet.TCPOption{Kind: packet.OptNOP},
				packet.TCPOption{Kind: packet.OptWindowScale, Data: []byte{byte(f.WScale)}})
		}
		flags := packet.FlagSYN
		if f.ECN {
			flags |= packet.FlagECE | packet.FlagCWR
		}
		syn := packet.TCP{SrcPort: 40000, DstPort: 443, Flags: flags, Window: f.Window, Options: opts}
		ip := packet.IPv4{TTL: f.TTL - hops, Protocol: packet.ProtoTCP, Src: src, Dst: dst}
		eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
		synFrame := eth.Append(nil, ip.Append(nil, syn.Append(nil, nil, src, dst)))

		chlo := packet.TCP{SrcPort: 40000, DstPort: 443, Flags: packet.FlagACK | packet.FlagPSH, Window: f.Window}
		chloFrame := eth.Append(nil, ip.Append(nil, chlo.Append(nil, f.Hello.MarshalRecord(), src, dst)))

		info, err := ExtractFrames([][]byte{synFrame, chloFrame})
		if err != nil {
			t.Fatal(err)
		}
		slow := features.Extract(info)

		if !reflect.DeepEqual(fast.Nums, slow.Nums) {
			t.Errorf("%s: numeric attributes diverge:\nfast: %v\nslow: %v", c.label, fast.Nums, slow.Nums)
		}
		if !reflect.DeepEqual(fast.Cats, slow.Cats) {
			t.Errorf("%s: categorical attributes diverge", c.label)
		}
		if !reflect.DeepEqual(fast.Lists, slow.Lists) {
			t.Errorf("%s: list attributes diverge", c.label)
		}
	}
}

func TestExtractFramesSkipsNonHandshakeTCPPayload(t *testing.T) {
	// A flow whose first payload is HTTP (not TLS) must not yield a hello.
	src := netip.MustParseAddr("10.1.1.1")
	dst := netip.MustParseAddr("10.1.1.2")
	tcp := packet.TCP{SrcPort: 1, DstPort: 443, Flags: packet.FlagACK}
	seg := tcp.Append(nil, []byte("GET / HTTP/1.1\r\n"), src, dst)
	ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: src, Dst: dst}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	frame := eth.Append(nil, ip.Append(nil, seg))
	if _, err := ExtractFrames([][]byte{frame}); err == nil {
		t.Error("HTTP payload misparsed as hello")
	}
}

func TestExtractFramesQUICShortHeaderIgnored(t *testing.T) {
	src := netip.MustParseAddr("10.2.2.1")
	dst := netip.MustParseAddr("10.2.2.2")
	udp := packet.UDP{SrcPort: 9999, DstPort: 443}
	short := make([]byte, 100)
	short[0] = 0x41 // short header
	seg := udp.Append(nil, short, src, dst)
	ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: src, Dst: dst}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	frame := eth.Append(nil, ip.Append(nil, seg))
	if _, err := ExtractFrames([][]byte{frame}); err != ErrNoHandshake {
		t.Errorf("err = %v, want ErrNoHandshake", err)
	}
}
