package pipeline

import (
	"sync"
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/flowtable"
	"videoplat/internal/tracegen"
)

// emptyBank classifies nothing (every classification attempt errors), which
// is enough to exercise flow tracking, telemetry and eviction without the
// cost of training.
func emptyBank() *Bank { return &Bank{models: map[bankKey]*Model{}} }

func renderFlow(t *testing.T, g *tracegen.Generator, label string, prov fingerprint.Provider) *tracegen.FlowTrace {
	t.Helper()
	ft, err := g.Flow(label, prov, fingerprint.TCP, tracegen.FlowSpec{
		Duration: 10 * time.Second, TotalBytes: 1 << 20, PayloadFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func feedFlow(p *Pipeline, ft *tracegen.FlowTrace, start time.Time) {
	for _, fr := range ft.Frames {
		// The empty bank makes classification error; that is expected and
		// leaves the flow tracked with telemetry only.
		p.HandlePacket(start.Add(fr.Offset), fr.Data)
	}
}

func findBySNI(recs []*FlowRecord, sni string) *FlowRecord {
	for _, rec := range recs {
		if rec.SNI == sni {
			return rec
		}
	}
	return nil
}

// TestIdleEvictionDeliversFinalTelemetry checks that a flow idle past the
// timeout is evicted and that the record handed to OnEvict carries the same
// final telemetry Flows() reported while the flow was live.
func TestIdleEvictionDeliversFinalTelemetry(t *testing.T) {
	var evicted []*FlowRecord
	var reasons []flowtable.Reason
	p := NewWithConfig(emptyBank(), Config{
		IdleTimeout: time.Minute,
		OnEvict: func(rec *FlowRecord, reason flowtable.Reason) {
			evicted = append(evicted, rec)
			reasons = append(reasons, reason)
		},
	})
	g := tracegen.New(41)
	a := renderFlow(t, g, "windows_chrome", fingerprint.YouTube)
	b := renderFlow(t, g, "macOS_safari", fingerprint.Netflix)

	t0 := time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC)
	feedFlow(p, a, t0)
	want := findBySNI(p.Flows(), a.SNI)
	if want == nil {
		t.Fatalf("flow %s not tracked", a.SNI)
	}
	if want.BytesDown == 0 || want.PacketsUp == 0 {
		t.Fatalf("no telemetry accumulated: %+v", want)
	}

	// Two trace-minutes later flow A (last packet ~t0+10s) is idle.
	feedFlow(p, b, t0.Add(2*time.Minute))

	if len(evicted) != 1 || reasons[0] != flowtable.ReasonIdle {
		t.Fatalf("evictions = %d (%v), want 1 idle", len(evicted), reasons)
	}
	if *evicted[0] != *want {
		t.Errorf("evicted record diverges from live Flows() record:\n got %+v\nwant %+v", *evicted[0], *want)
	}
	if st := p.TableStats(); st.Active != 1 || st.EvictedIdle != 1 {
		t.Errorf("table stats = %+v", st)
	}
	if findBySNI(p.Flows(), a.SNI) != nil {
		t.Error("evicted flow still reported by Flows()")
	}
}

// TestCapEvictionUnionMatchesFlowsSemantics checks that MaxFlows is
// enforced and that OnEvict output plus Flows() covers every flow exactly
// once — the sink-side contract.
func TestCapEvictionUnionMatchesFlowsSemantics(t *testing.T) {
	var evicted []*FlowRecord
	p := NewWithConfig(emptyBank(), Config{
		MaxFlows: 2,
		OnEvict: func(rec *FlowRecord, reason flowtable.Reason) {
			if reason != flowtable.ReasonCap {
				t.Errorf("reason = %v, want cap", reason)
			}
			evicted = append(evicted, rec)
		},
	})
	g := tracegen.New(43)
	flows := []*tracegen.FlowTrace{
		renderFlow(t, g, "windows_chrome", fingerprint.YouTube),
		renderFlow(t, g, "iOS_nativeApp", fingerprint.Disney),
		renderFlow(t, g, "ps5_nativeApp", fingerprint.Amazon),
	}
	t0 := time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC)
	for i, ft := range flows {
		feedFlow(p, ft, t0.Add(time.Duration(i)*20*time.Second))
	}

	live := p.Flows()
	if len(live) != 2 {
		t.Fatalf("live flows = %d, want cap of 2", len(live))
	}
	if len(evicted) != 1 || evicted[0].SNI != flows[0].SNI {
		t.Fatalf("evicted = %+v, want oldest flow %s", evicted, flows[0].SNI)
	}
	seen := map[string]int{}
	for _, rec := range append(append([]*FlowRecord{}, live...), evicted...) {
		seen[rec.SNI]++
	}
	for _, ft := range flows {
		if seen[ft.SNI] != 1 {
			t.Errorf("flow %s covered %d times across Flows()+evictions, want exactly 1", ft.SNI, seen[ft.SNI])
		}
	}
	if st := p.TableStats(); st.Inserted != 3 || st.EvictedCap != 1 || st.Active != 2 {
		t.Errorf("table stats = %+v", st)
	}
}

// TestShardedEvictionHook checks the bounded config reaches every shard and
// that OnEvict fires from worker goroutines with the evictions counted.
func TestShardedEvictionHook(t *testing.T) {
	var mu sync.Mutex
	var evicted []*FlowRecord
	s := NewShardedWithConfig(emptyBank(), 2, Config{
		MaxFlows: 1,
		OnEvict: func(rec *FlowRecord, _ flowtable.Reason) {
			mu.Lock()
			evicted = append(evicted, rec)
			mu.Unlock()
		},
	})
	g := tracegen.New(47)
	t0 := time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC)
	const n = 12
	for i := 0; i < n; i++ {
		ft := renderFlow(t, g, "android_nativeApp", fingerprint.Netflix)
		for _, fr := range ft.Frames {
			s.HandlePacket(t0.Add(fr.Offset), fr.Data)
		}
	}
	go func() {
		for range s.Results() {
		}
	}()
	s.Close()

	st := s.TableStats()
	if st.Active > 2 {
		t.Errorf("active flows = %d, want <= 1 per shard", st.Active)
	}
	mu.Lock()
	defer mu.Unlock()
	if uint64(len(evicted)) != st.EvictedCap {
		t.Errorf("OnEvict calls = %d, counter = %d", len(evicted), st.EvictedCap)
	}
	if got := uint64(len(evicted)) + st.Active; got != st.Inserted {
		t.Errorf("evicted(%d) + active(%d) != inserted(%d)", len(evicted), st.Active, st.Inserted)
	}
}

// TestShardedDeliverNeverBlocks pins the Results() contract: with a full
// buffer and no consumer, delivery drops and counts instead of blocking the
// shard worker (the deadlock the old unconditional send could hit).
func TestShardedDeliverNeverBlocks(t *testing.T) {
	s := &Sharded{results: make(chan *FlowRecord, 1)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.deliver(&FlowRecord{SNI: "a"})
		s.deliver(&FlowRecord{SNI: "b"})
		s.deliver(&FlowRecord{SNI: "c"})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deliver blocked on a full results buffer")
	}
	if s.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", s.Dropped())
	}
	if rec := <-s.results; rec.SNI != "a" {
		t.Errorf("buffered record = %q, want first delivery", rec.SNI)
	}
}
