package pipeline

import (
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/flowtable"
	"videoplat/internal/tracegen"
)

// renderAdversarial renders one flow with the given scenario options.
func renderAdversarial(t *testing.T, seed uint64, label string, prov fingerprint.Provider, tr fingerprint.Transport, opts fingerprint.Options) *tracegen.FlowTrace {
	t.Helper()
	ft, err := tracegen.New(seed).Flow(label, prov, tr, tracegen.FlowSpec{Options: opts, PayloadFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// TestECHAbstainsWithoutHint pins the ECH terminal verdict: the outer hello's
// fronted SNI matches no video provider, and with no provider hint the flow
// must finalize as an explicit abstained-ech — not not-video, not pending —
// with the observable (outer) name on the record.
func TestECHAbstainsWithoutHint(t *testing.T) {
	ft := renderAdversarial(t, 11, "windows_chrome", fingerprint.Netflix, fingerprint.TCP, fingerprint.Options{ECH: true})
	p := New(emptyBank())
	feedTrace(p, ft)

	recs := p.Flows()
	if len(recs) != 1 {
		t.Fatalf("tracked %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Verdict != VerdictAbstainedECH {
		t.Fatalf("verdict = %s, want %s", rec.Verdict, VerdictAbstainedECH)
	}
	if rec.Classified {
		t.Error("ECH flow marked classified without a hint")
	}
	if rec.SNI == "" {
		t.Error("record lost the outer SNI — the fronted name is observable truth")
	}
	if _, _, ok := MatchProvider(rec.SNI); ok {
		t.Errorf("outer SNI %q matches a video provider — the ECH front leaks", rec.SNI)
	}
	if p.UnknownFlows != 1 {
		t.Errorf("UnknownFlows = %d, want 1", p.UnknownFlows)
	}
	if p.EarlyClassified() != 0 {
		t.Errorf("EarlyClassified = %d, want 0", p.EarlyClassified())
	}
}

// TestZeroRTTAbstainsWithoutHint pins the 0-RTT terminal verdict: no
// ClientHello ever crosses the tap, and the client's switch to short headers
// confirms none is coming — the flow must finalize as abstained-0rtt.
func TestZeroRTTAbstainsWithoutHint(t *testing.T) {
	ft := renderAdversarial(t, 13, "android_chrome", fingerprint.YouTube, fingerprint.QUIC, fingerprint.Options{ZeroRTT: true})
	p := New(emptyBank())
	feedTrace(p, ft)

	recs := p.Flows()
	if len(recs) != 1 {
		t.Fatalf("tracked %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Verdict != VerdictAbstainedZeroRTT {
		t.Fatalf("verdict = %s, want %s", rec.Verdict, VerdictAbstainedZeroRTT)
	}
	if rec.Transport != fingerprint.QUIC {
		t.Errorf("transport = %v, want QUIC", rec.Transport)
	}
	if rec.Classified || rec.SNI != "" {
		t.Errorf("0-RTT flow leaked classification state: classified=%v sni=%q", rec.Classified, rec.SNI)
	}
	if p.UnknownFlows != 1 {
		t.Errorf("UnknownFlows = %d, want 1", p.UnknownFlows)
	}
}

// TestZeroRTTAbstainsOnIdleEviction pins the eviction path for opaque flows:
// a 0-RTT flow whose short-header confirmation never arrives sits pending
// until idle eviction, which must still finalize it with the explicit
// abstained-0rtt verdict rather than a generic no-handshake.
func TestZeroRTTAbstainsOnIdleEviction(t *testing.T) {
	ft := renderAdversarial(t, 17, "android_chrome", fingerprint.YouTube, fingerprint.QUIC, fingerprint.Options{ZeroRTT: true})
	var evicted []*FlowRecord
	p := NewWithConfig(emptyBank(), Config{
		IdleTimeout: 30 * time.Second,
		OnEvict:     func(rec *FlowRecord, _ flowtable.Reason) { evicted = append(evicted, rec) },
	})
	// Feed only the two client 0-RTT packets — the confirmation never comes.
	for _, fr := range ft.Frames[:2] {
		p.HandlePacket(ft.Start.Add(fr.Offset), fr.Data)
	}
	// An unrelated flow far in the future sweeps the idle table.
	tcp, err := tracegen.New(18).Flow("windows_chrome", fingerprint.Netflix, fingerprint.TCP, tracegen.FlowSpec{})
	if err != nil {
		t.Fatal(err)
	}
	p.HandlePacket(ft.Start.Add(time.Hour), tcp.Frames[0].Data)

	if len(evicted) != 1 {
		t.Fatalf("evicted %d records, want 1", len(evicted))
	}
	if evicted[0].Verdict != VerdictAbstainedZeroRTT {
		t.Fatalf("evicted verdict = %s, want %s", evicted[0].Verdict, VerdictAbstainedZeroRTT)
	}
}

// TestECHDegradedGateRejects pins the negative gate: even with a trained
// bank and a correct provider hint, a margin bar the prediction cannot clear
// must leave the flow on the explicit abstain verdict. Deterministic: no
// platform margin reaches 2.0.
func TestECHDegradedGateRejects(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank, _ := trainSmallBank(t, 31, 0.02)
	ft := renderAdversarial(t, 19, "windows_chrome", fingerprint.Netflix, fingerprint.TCP, fingerprint.Options{ECH: true})
	p := NewWithConfig(bank, Config{
		ProviderHint:   tracegen.ProviderOfAddr,
		EarlyMinMargin: 2.0,
	})
	feedTrace(p, ft)

	recs := p.Flows()
	if len(recs) != 1 {
		t.Fatalf("tracked %d records, want 1", len(recs))
	}
	if recs[0].Verdict != VerdictAbstainedECH {
		t.Fatalf("verdict = %s, want %s (margin gate must reject)", recs[0].Verdict, VerdictAbstainedECH)
	}
	if p.EarlyClassified() != 0 {
		t.Errorf("EarlyClassified = %d, want 0", p.EarlyClassified())
	}
}

// TestECHDegradedClassification pins the accept path: a trained bank, the
// synthetic IP-to-CDN hint and a zero margin bar. The outer hello is a full
// client fingerprint minus the SNI, so the flow either classifies (counted
// as early) or the confidence selector abstains — but the verdict must be
// one of the two explicit terminals and the counters must agree with it.
func TestECHDegradedClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank, _ := trainSmallBank(t, 31, 0.02)
	ft := renderAdversarial(t, 23, "windows_chrome", fingerprint.Netflix, fingerprint.TCP, fingerprint.Options{ECH: true})
	p := NewWithConfig(bank, Config{
		ProviderHint:   tracegen.ProviderOfAddr,
		EarlyMinMargin: -1, // accept any margin: only the selector can abstain
	})
	feedTrace(p, ft)

	recs := p.Flows()
	if len(recs) != 1 {
		t.Fatalf("tracked %d records, want 1", len(recs))
	}
	rec := recs[0]
	switch rec.Verdict {
	case VerdictClassified:
		if !rec.Classified || rec.Provider != fingerprint.Netflix {
			t.Errorf("classified record inconsistent: classified=%v provider=%v", rec.Classified, rec.Provider)
		}
		if p.EarlyClassified() != 1 || p.ClassifiedFlows != 1 || p.UnknownFlows != 0 {
			t.Errorf("counters = early %d / classified %d / unknown %d, want 1/1/0",
				p.EarlyClassified(), p.ClassifiedFlows, p.UnknownFlows)
		}
	case VerdictAbstainedECH:
		if rec.Classified {
			t.Error("abstained record marked classified")
		}
		if p.EarlyClassified() != 0 || p.UnknownFlows != 1 {
			t.Errorf("counters = early %d / unknown %d, want 0/1",
				p.EarlyClassified(), p.UnknownFlows)
		}
	default:
		t.Fatalf("verdict = %s, want %s or %s", rec.Verdict, VerdictClassified, VerdictAbstainedECH)
	}
}

// TestZeroRTTDegradedEscalation pins confidence escalation on opaque flows:
// with a hint available the pipeline classifies on the partial features seen
// so far, keeps the best margin, and the terminal decision is one of the two
// explicit outcomes with matching counters.
func TestZeroRTTDegradedEscalation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank, _ := trainSmallBank(t, 31, 0.02)
	ft := renderAdversarial(t, 29, "android_chrome", fingerprint.YouTube, fingerprint.QUIC, fingerprint.Options{ZeroRTT: true})
	p := NewWithConfig(bank, Config{
		ProviderHint:   tracegen.ProviderOfAddr,
		EarlyMinMargin: -1,
	})
	feedTrace(p, ft)

	recs := p.Flows()
	if len(recs) != 1 {
		t.Fatalf("tracked %d records, want 1", len(recs))
	}
	rec := recs[0]
	switch rec.Verdict {
	case VerdictClassified:
		if rec.Provider != fingerprint.YouTube {
			t.Errorf("provider = %v, want YouTube (from the hint)", rec.Provider)
		}
		if p.EarlyClassified() != 1 {
			t.Errorf("EarlyClassified = %d, want 1", p.EarlyClassified())
		}
	case VerdictAbstainedZeroRTT:
		if p.UnknownFlows != 1 {
			t.Errorf("UnknownFlows = %d, want 1", p.UnknownFlows)
		}
	default:
		t.Fatalf("verdict = %s, want %s or %s", rec.Verdict, VerdictClassified, VerdictAbstainedZeroRTT)
	}
}

// TestMigrationClassifiedVerdict completes the scenario-verdict matrix: a
// migrated flow is not degraded — its hello crossed the tap — so with a
// trained bank it must finalize through the ordinary classification path
// with an explicit terminal verdict and no early-classification counting.
func TestMigrationClassifiedVerdict(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank, _ := trainSmallBank(t, 31, 0.02)
	p := New(bank)
	ft := renderScenarioFlow(t, 37, fingerprint.Options{Migration: true}, true)
	feedTrace(p, ft)

	recs := p.Flows()
	if len(recs) != 1 {
		t.Fatalf("tracked %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Verdict != VerdictClassified && rec.Verdict != VerdictAbstained {
		t.Fatalf("verdict = %s, want %s or %s", rec.Verdict, VerdictClassified, VerdictAbstained)
	}
	if rec.SNI != ft.SNI || rec.Provider != fingerprint.YouTube {
		t.Errorf("record identity = %q/%v, want %q/YouTube", rec.SNI, rec.Provider, ft.SNI)
	}
	if p.EarlyClassified() != 0 {
		t.Errorf("EarlyClassified = %d, want 0 — migration is not a degraded path", p.EarlyClassified())
	}
	if p.Migrations() != 1 {
		t.Errorf("Migrations() = %d, want 1", p.Migrations())
	}
}
