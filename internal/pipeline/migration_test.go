package pipeline

import (
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/flowtable"
	"videoplat/internal/tracegen"
)

// renderScenarioFlow renders one QUIC YouTube flow with the given options.
func renderScenarioFlow(t *testing.T, seed uint64, opts fingerprint.Options, midHandshake bool) *tracegen.FlowTrace {
	t.Helper()
	ft, err := tracegen.New(seed).Flow("android_chrome", fingerprint.YouTube, fingerprint.QUIC,
		tracegen.FlowSpec{Options: opts, MigrateMidHandshake: midHandshake, PayloadFrames: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func feedTrace(p *Pipeline, ft *tracegen.FlowTrace) {
	for _, fr := range ft.Frames {
		p.HandlePacket(ft.Start.Add(fr.Offset), fr.Data)
	}
}

// TestMigrationMidStreamSingleRecord pins the tentpole re-keying contract:
// a QUIC flow whose client tuple changes after the handshake stays ONE
// logical flow — one FlowRecord, its packets counted together, the
// migration visible in the counters, and no ghost flow under the new tuple.
func TestMigrationMidStreamSingleRecord(t *testing.T) {
	ft := renderScenarioFlow(t, 41, fingerprint.Options{Migration: true}, false)
	if !ft.Migrated {
		t.Fatal("trace did not migrate")
	}
	p := New(emptyBank())
	feedTrace(p, ft)

	recs := p.Flows()
	if len(recs) != 1 {
		t.Fatalf("tracked %d flow records, want 1 (migration must not spawn a ghost flow)", len(recs))
	}
	rec := recs[0]
	if rec.Key != ft.Key() {
		t.Errorf("record key = %v, want the original tuple %v", rec.Key, ft.Key())
	}
	if got := rec.PacketsUp + rec.PacketsDown; got != len(ft.Frames) {
		t.Errorf("record counted %d packets, want all %d (pre- and post-migration)", got, len(ft.Frames))
	}
	if p.Migrations() != 1 {
		t.Errorf("Migrations() = %d, want 1", p.Migrations())
	}
	if st := p.TableStats(); st.Rekeyed != 1 || st.Inserted != 1 || st.Active != 1 {
		t.Errorf("table stats = %+v, want 1 rekey of 1 inserted flow", st)
	}
}

// TestMigrationMidHandshakeAssemblerSurvives pins the harder variant: the
// ClientHello is split across two Initials and the client migrates between
// them. The assembler state must survive the re-key so the hello still
// reassembles — the flow finalizes with its real SNI on ONE record.
func TestMigrationMidHandshakeAssemblerSurvives(t *testing.T) {
	ft := renderScenarioFlow(t, 43, fingerprint.Options{Migration: true}, true)
	if !ft.Migrated {
		t.Fatal("trace did not migrate")
	}
	p := New(emptyBank())
	feedTrace(p, ft)

	recs := p.Flows()
	if len(recs) != 1 {
		t.Fatalf("tracked %d flow records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.SNI != ft.SNI {
		t.Errorf("record SNI = %q, want %q (hello reassembled across the migration)", rec.SNI, ft.SNI)
	}
	if rec.Provider != fingerprint.YouTube {
		t.Errorf("record provider = %v, want YouTube", rec.Provider)
	}
	if p.Migrations() != 1 {
		t.Errorf("Migrations() = %d, want 1", p.Migrations())
	}
}

// TestMigrationUnderCapPressure pins the /stats consistency contract under
// LRU eviction: flows that migrate and are then evicted produce exactly one
// record each — nothing double-counted, nothing orphaned — and eviction
// cleans the CID index behind them.
func TestMigrationUnderCapPressure(t *testing.T) {
	const flows = 5
	var evicted []*FlowRecord
	p := NewWithConfig(emptyBank(), Config{
		MaxFlows: 2,
		OnEvict:  func(rec *FlowRecord, _ flowtable.Reason) { evicted = append(evicted, rec) },
	})
	var want []string
	for i := 0; i < flows; i++ {
		ft := renderScenarioFlow(t, uint64(100+i), fingerprint.Options{Migration: true}, i%2 == 1)
		want = append(want, ft.Key().String())
		feedTrace(p, ft)
	}
	total := map[string]int{}
	for _, rec := range evicted {
		total[rec.Key.String()]++
	}
	for _, rec := range p.Flows() {
		total[rec.Key.String()]++
	}
	for _, k := range want {
		if total[k] != 1 {
			t.Errorf("flow %s produced %d records, want exactly 1", k, total[k])
		}
	}
	if p.Migrations() != flows {
		t.Errorf("Migrations() = %d, want %d", p.Migrations(), flows)
	}
	if st := p.TableStats(); st.Rekeyed != flows {
		t.Errorf("table rekeyed = %d, want %d", st.Rekeyed, flows)
	}
	if len(p.cids) > maxFlowCIDs*2 {
		t.Errorf("CID index holds %d entries for 2 live flows — eviction is leaking entries", len(p.cids))
	}
}

// TestMigrationIdleEvictionCleansCIDs pins idle-eviction cleanup: once every
// flow ages out, the CID index must be empty — stale entries would route a
// recycled CID into a dead flow's key and Rekey would fail forever after.
func TestMigrationIdleEvictionCleansCIDs(t *testing.T) {
	p := NewWithConfig(emptyBank(), Config{IdleTimeout: 30 * time.Second})
	ft := renderScenarioFlow(t, 71, fingerprint.Options{Migration: true}, false)
	feedTrace(p, ft)
	if len(p.cids) == 0 {
		t.Fatal("no CIDs learned from a QUIC flow")
	}
	// An unrelated TCP packet far in the future sweeps the idle table.
	g := tracegen.New(72)
	tcp, err := g.Flow("windows_chrome", fingerprint.Netflix, fingerprint.TCP, tracegen.FlowSpec{PayloadFrames: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.HandlePacket(ft.Start.Add(time.Hour), tcp.Frames[0].Data)
	if st := p.TableStats(); st.EvictedIdle == 0 {
		t.Fatal("idle sweep did not run")
	}
	// Only the fresh TCP flow may still hold index entries (it holds none:
	// TCP flows never learn CIDs), so the index must be empty.
	if len(p.cids) != 0 {
		t.Errorf("CID index holds %d entries after idle eviction, want 0", len(p.cids))
	}
}

// TestShardedMigrationRouting pins the ingest layer: shard placement hashes
// the 5-tuple, so a migrated tuple would hash to the wrong shard — the
// CID routing cache must override it and deliver post-migration frames to
// the owning shard. One record per logical flow across the whole Sharded.
func TestShardedMigrationRouting(t *testing.T) {
	const flows = 6
	s := NewSharded(emptyBank(), 4)
	go func() {
		for range s.Results() {
		}
	}()
	var traces []*tracegen.FlowTrace
	for i := 0; i < flows; i++ {
		traces = append(traces, renderScenarioFlow(t, uint64(200+i), fingerprint.Options{Migration: true}, i%2 == 0))
	}
	// Interleave frames across flows in timestamp order, as a tap would.
	for j := 0; ; j++ {
		any := false
		for _, ft := range traces {
			if j < len(ft.Frames) {
				s.HandlePacket(ft.Start.Add(ft.Frames[j].Offset), ft.Frames[j].Data)
				any = true
			}
		}
		if !any {
			break
		}
	}
	s.Close()

	recs := s.Flows()
	if len(recs) != flows {
		t.Fatalf("tracked %d flow records, want %d (one per logical flow)", len(recs), flows)
	}
	byKey := map[string]int{}
	for _, rec := range recs {
		byKey[rec.Key.String()]++
	}
	for _, ft := range traces {
		if byKey[ft.Key().String()] != 1 {
			t.Errorf("flow %v has %d records, want 1", ft.Key(), byKey[ft.Key().String()])
		}
	}
	if got := s.Migrations(); got != flows {
		t.Errorf("Migrations() = %d, want %d", got, flows)
	}
	if st := s.TableStats(); st.Rekeyed != flows {
		t.Errorf("table rekeyed = %d, want %d", st.Rekeyed, flows)
	}
	ing := s.IngestStats()
	if ing.Migrations != uint64(flows) {
		t.Errorf("IngestStats().Migrations = %d, want %d", ing.Migrations, flows)
	}
}
