package pipeline

import (
	"time"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/packet"
)

// FlowRecord is the pipeline's per-flow output: provider, classified user
// platform and volumetric telemetry — the rows stored in the paper's
// PostgreSQL database.
type FlowRecord struct {
	Key       packet.FlowKey
	Provider  fingerprint.Provider
	Transport fingerprint.Transport
	SNI       string
	Content   bool // content server (video bytes) vs management front-end

	Prediction Prediction
	Classified bool

	FirstSeen, LastSeen    time.Time
	BytesDown, BytesUp     int64
	PacketsDown, PacketsUp int
}

// Duration is the observed flow duration.
func (r *FlowRecord) Duration() time.Duration { return r.LastSeen.Sub(r.FirstSeen) }

// MbpsDown is the mean downstream bandwidth in Mbit/s.
func (r *FlowRecord) MbpsDown() float64 {
	d := r.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(r.BytesDown) * 8 / 1e6 / d
}

type flowState struct {
	rec          FlowRecord
	clientFrames [][]byte
	clientKey    packet.FlowKey // direction of the initiating packet
	done         bool           // classification finished (or rejected)
}

// Pipeline is the streaming packet processor of Fig 4. Feed packets with
// HandlePacket; classified flows are returned as events and accumulated for
// Flows(). Not safe for concurrent use; shard by flow hash across instances
// for multi-core deployments, as the DPDK prototype does.
type Pipeline struct {
	Bank  *Bank
	flows map[packet.FlowKey]*flowState

	parser packet.Parser
	parsed packet.Parsed

	// Stats counters.
	Packets, VideoPackets, ClassifiedFlows, UnknownFlows int
}

// New returns a Pipeline over a trained bank.
func New(bank *Bank) *Pipeline {
	return &Pipeline{Bank: bank, flows: map[packet.FlowKey]*flowState{}}
}

// HandlePacket processes one frame. It returns a non-nil FlowRecord exactly
// when the frame completed a flow's classification.
func (p *Pipeline) HandlePacket(ts time.Time, frame []byte) (*FlowRecord, error) {
	p.Packets++
	if err := p.parser.Parse(frame, &p.parsed); err != nil {
		return nil, nil // undecodable frames are not errors for the tap
	}
	key, ok := p.parsed.Flow()
	if !ok {
		return nil, nil
	}
	// Port filter: the providers' video flows ride 443.
	if key.SrcPort != 443 && key.DstPort != 443 {
		return nil, nil
	}
	canon := key.Canonical()
	st := p.flows[canon]
	if st == nil {
		st = &flowState{clientKey: key}
		st.rec.Key = key
		st.rec.FirstSeen = ts
		p.flows[canon] = st
	}

	// Telemetry split by direction.
	st.rec.LastSeen = ts
	payloadLen := int64(len(p.parsed.Payload))
	if key == st.clientKey {
		st.rec.BytesUp += payloadLen
		st.rec.PacketsUp++
	} else {
		st.rec.BytesDown += payloadLen
		st.rec.PacketsDown++
	}

	if st.done {
		return nil, nil
	}

	// Handshake splitter: buffer client-side frames until a ClientHello
	// parses out.
	if key == st.clientKey {
		st.clientFrames = append(st.clientFrames, append([]byte{}, frame...))
	}
	info, err := ExtractFrames(st.clientFrames)
	if err != nil {
		if len(st.clientFrames) > 8 {
			st.done = true // no hello in the first packets: not a video flow
		}
		return nil, nil
	}

	sni := info.Hello.ServerName()
	prov, content, ok := MatchProvider(sni)
	if !ok {
		st.done = true
		return nil, nil
	}
	p.VideoPackets++
	st.rec.SNI = sni
	st.rec.Provider = prov
	st.rec.Content = content
	st.rec.Transport = fingerprint.TCP
	if info.QUIC {
		st.rec.Transport = fingerprint.QUIC
	}

	v := features.Extract(info)
	pred, err := p.Bank.Classify(prov, st.rec.Transport, v)
	if err != nil {
		st.done = true
		return nil, err
	}
	st.rec.Prediction = pred
	st.rec.Classified = true
	st.done = true
	st.clientFrames = nil
	if pred.Status == Unknown {
		p.UnknownFlows++
	} else {
		p.ClassifiedFlows++
	}
	out := st.rec // copy at classification time
	return &out, nil
}

// Flows returns the accumulated per-flow records (classified or not), with
// final telemetry.
func (p *Pipeline) Flows() []*FlowRecord {
	out := make([]*FlowRecord, 0, len(p.flows))
	for _, st := range p.flows {
		rec := st.rec
		out = append(out, &rec)
	}
	return out
}

// Reset drops all flow state (e.g. between measurement windows).
func (p *Pipeline) Reset() { p.flows = map[packet.FlowKey]*flowState{} }
