package pipeline

import (
	"net/netip"
	"sync/atomic"
	"time"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/flowtable"
	"videoplat/internal/obs"
	"videoplat/internal/packet"
	"videoplat/internal/quicproto"
	"videoplat/internal/tlsproto"
)

// Verdict is the pipeline's terminal decision taxonomy for a flow: not just
// whether classification succeeded, but why it did not. Every flow that
// reaches a terminal state carries exactly one verdict; telemetry folds the
// counts per window so operators can distinguish "the classifier is
// abstaining" (model problem) from "flows never present a handshake"
// (traffic problem).
type Verdict uint8

// Flow verdicts.
const (
	// VerdictPending marks a flow still awaiting a terminal decision (or
	// evicted before reaching one). The zero value, so untouched records are
	// honest about it.
	VerdictPending Verdict = iota
	// VerdictClassified: the confidence selector accepted a composite or
	// partial prediction.
	VerdictClassified
	// VerdictAbstained: classification ran but no objective cleared the
	// confidence threshold — the §4.1 open-set rejection.
	VerdictAbstained
	// VerdictBaselineOnly is reserved for the degradation ladder (ROADMAP):
	// the flow was labeled by the cheap JA3 baseline because the full
	// classifier was shed under overload. Nothing emits it yet; it exists so
	// the telemetry schema does not change when the ladder lands.
	VerdictBaselineOnly
	// VerdictNoHandshake: no ClientHello surfaced in the first packets.
	VerdictNoHandshake
	// VerdictOversized: buffered handshake bytes exceeded MaxHelloBytes and
	// the flow was abandoned unclassified.
	VerdictOversized
	// VerdictNotVideo: a handshake parsed but its SNI matched no video
	// provider.
	VerdictNotVideo
	// VerdictError: the classifier bank returned an error (e.g. no models
	// for the provider/transport).
	VerdictError
	// VerdictAbstainedECH: the hello parsed but carried an Encrypted
	// ClientHello extension, so the visible SNI is a fronting public name
	// and the real provider hostname never crossed the tap. The flow joins
	// the open-set bucket unless degraded classification (server-address
	// hint + PlatformMargin gate) accepted it.
	VerdictAbstainedECH
	// VerdictAbstainedZeroRTT: a QUIC flow resumed with 0-RTT early data —
	// no fresh Initial, no observable ClientHello, features never
	// materialized. Open-set unless degraded classification accepted it.
	VerdictAbstainedZeroRTT

	// NumVerdicts is the number of Verdict values, for fixed-size counter
	// arrays.
	NumVerdicts = int(VerdictAbstainedZeroRTT) + 1
)

// String names the verdict; these strings are the stable vocabulary used in
// telemetry windows, /query series and /metrics labels.
func (v Verdict) String() string {
	switch v {
	case VerdictClassified:
		return "classified"
	case VerdictAbstained:
		return "abstained"
	case VerdictBaselineOnly:
		return "baseline-only"
	case VerdictNoHandshake:
		return "no-handshake"
	case VerdictOversized:
		return "oversized"
	case VerdictNotVideo:
		return "not-video"
	case VerdictError:
		return "error"
	case VerdictAbstainedECH:
		return "abstained-ech"
	case VerdictAbstainedZeroRTT:
		return "abstained-0rtt"
	default:
		return "pending"
	}
}

// VerdictNames lists every verdict's stable string, indexed by Verdict
// value, for emitters that enumerate the taxonomy (metrics, docs).
func VerdictNames() [NumVerdicts]string {
	var out [NumVerdicts]string
	for i := range out {
		out[i] = Verdict(i).String()
	}
	return out
}

// FlowRecord is the pipeline's per-flow output: provider, classified user
// platform and volumetric telemetry — the rows stored in the paper's
// PostgreSQL database.
type FlowRecord struct {
	Key       packet.FlowKey
	Provider  fingerprint.Provider
	Transport fingerprint.Transport
	SNI       string
	Content   bool // content server (video bytes) vs management front-end

	Prediction Prediction
	Classified bool
	// Verdict records why the flow reached its terminal state — classified,
	// abstained, or one of the never-classified outcomes. VerdictPending for
	// flows evicted before a decision.
	Verdict Verdict
	// ModelVersion is the registry version of the bank that classified the
	// flow (empty for unversioned banks), so downstream telemetry remains
	// attributable to the exact model that produced it across hot-swaps.
	ModelVersion string

	FirstSeen, LastSeen    time.Time
	BytesDown, BytesUp     int64
	PacketsDown, PacketsUp int

	// ClassifyNanos is how long the flow's classification took (encode +
	// inference), zero for flows never classified. It travels with the
	// record so telemetry rollups can fold per-window latency summaries.
	ClassifyNanos int64
}

// Duration is the observed flow duration.
func (r *FlowRecord) Duration() time.Duration { return r.LastSeen.Sub(r.FirstSeen) }

// MbpsDown is the mean downstream bandwidth in Mbit/s.
func (r *FlowRecord) MbpsDown() float64 {
	d := r.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(r.BytesDown) * 8 / 1e6 / d
}

type flowState struct {
	rec       FlowRecord
	asm       hsAssembler    // incremental handshake assembly state
	clientKey packet.FlowKey // direction of the initiating packet
	done      bool           // classification finished (or rejected)
	// pendingClassify marks a flow whose completed handshake sits in the
	// batch-mode deferred-classification queue awaiting flushBatch. Cleared
	// by the flush, or by the eviction hook for flows evicted mid-batch (the
	// flush then skips them; their record was already delivered to OnEvict
	// with an honest VerdictPending).
	pendingClassify bool
	span            *obs.Span // lifecycle trace, non-nil only for sampled flows

	// early is the best degraded prediction so far for a flow whose hello
	// may never surface (0-RTT): each client frame re-classifies on what is
	// visible and the highest-margin attempt is kept, so the terminal
	// decision escalates with confidence instead of betting on one look.
	early    Prediction
	hasEarly bool
	// cids lists this flow's registrations in the pipeline's CID index so
	// eviction can unregister them.
	cids []cidKey
}

// Config bounds a Pipeline's flow table for long-running deployments.
// The zero value reproduces the batch behaviour: every flow is kept until
// Reset, which is fine for finite traces but leaks under a live tap.
type Config struct {
	// MaxFlows caps tracked flows (LRU eviction on overflow). 0 = unbounded.
	MaxFlows int
	// ShardQueueDepth is the per-shard inbox capacity of a Sharded pipeline,
	// in batch messages. Deeper queues absorb ingest bursts at the cost of
	// memory (each queued batch pins its pooled arena); a full inbox
	// applies backpressure to the ingest goroutine, counted in
	// Sharded.Stalls. 0 selects DefaultShardQueueDepth. Ignored by a plain
	// Pipeline.
	ShardQueueDepth int
	// ResultsBuffer is the capacity of a Sharded pipeline's Results channel.
	// 0 selects DefaultResultsBufferPerShard per shard, so wider deployments
	// get proportionally more burst headroom before best-effort delivery
	// starts dropping (see Sharded.Dropped). Ignored by a plain Pipeline.
	ResultsBuffer int
	// IdleTimeout retires flows with no packet for this long, measured in
	// packet time so trace replay and live capture behave identically.
	// 0 = never.
	IdleTimeout time.Duration
	// OnEvict, if non-nil, receives a copy of each evicted flow's final
	// record — identical to what Flows() would have reported — so evicted
	// telemetry can reach a sink instead of vanishing. Called synchronously
	// from HandlePacket (for Sharded, from the owning shard's goroutine).
	OnEvict func(rec *FlowRecord, reason flowtable.Reason)
	// MaxHelloBytes caps the client handshake bytes buffered per flow while
	// waiting for a complete ClientHello. A flow whose buffered bytes
	// exceed the cap is abandoned (never classified) and counted in
	// OversizedHandshakes — without it, a peer streaming endless handshake
	// records down one flow grows that flow's buffer without bound until
	// the 8-frame heuristic trips, and frames can be arbitrarily large.
	// 0 selects DefaultMaxHelloBytes; negative disables the cap.
	MaxHelloBytes int
	// OnClassify, if non-nil, is invoked once per classification attempt
	// with a copy of the flow record (after the confidence selector ran)
	// and the assembled handshake, letting a shadow evaluator re-classify
	// the same flow with a candidate bank. The HandshakeInfo is only valid
	// for the duration of the call — its buffers are recycled when the
	// hook returns. Called synchronously from HandlePacket; for Sharded it
	// runs on shard goroutines and must be safe for concurrent use.
	OnClassify func(rec *FlowRecord, hs *features.HandshakeInfo)
	// Observer, if non-nil, receives per-stage latency samples (handshake
	// assembly, classification; for Sharded also ingest decode and shard
	// queue wait). Recording is lock-free and allocation-free, so leaving
	// an observer attached in production costs only the clock reads; a nil
	// observer reduces the instrumentation to one pointer check per frame.
	Observer *obs.PipelineObserver
	// Tracer, if non-nil, samples flow lifecycles: every Nth new flow
	// carries a span recording stage timings, shard placement and its
	// terminal verdict, retained in the tracer's ring and slowest-K set.
	// Must be safe for concurrent use when shared across shards (obs.Tracer
	// is).
	Tracer *obs.Tracer
	// ProviderHint, if non-nil, maps a server address to a provider — the
	// IP-to-CDN knowledge an ISP derives from BGP/prefix lists. It enables
	// degraded classification of flows whose hello is encrypted (ECH) or
	// absent (0-RTT resumption): the pipeline classifies on the transport
	// features it did see, under the hinted provider's models. nil disables
	// degraded classification; such flows abstain into the open-set bucket.
	// For Sharded it runs on shard goroutines and must be safe for
	// concurrent use.
	ProviderHint func(addr netip.Addr) (fingerprint.Provider, bool)
	// EarlyMinMargin gates degraded (partial-feature) classifications: the
	// prediction's PlatformMargin (top-1/top-2 probability gap) must reach
	// this floor or the flow abstains. 0 selects DefaultEarlyMinMargin;
	// negative accepts any margin the confidence selector passes.
	EarlyMinMargin float64

	// shardID and queueDepth are set by NewShardedWithConfig on each
	// shard's private Config copy so sampled spans can record where the
	// flow ran and how deep its shard's inbox was at admission.
	shardID    int
	queueDepth func() int
	// batched, set by NewShardedWithConfig, defers each completed
	// handshake's classification to the end of its ingest batch so one
	// Bank.ClassifyBatch call sweeps every completed flow of the batch
	// through the compiled forests (trees outer, rows inner — see
	// ml.CompiledForest.PredictBatchInto). The shard worker calls flushBatch
	// after replaying each batch's frames, before the batch arena recycles.
	batched bool
}

// DefaultMaxHelloBytes bounds per-flow buffered handshake bytes when
// Config.MaxHelloBytes is zero: generous enough for any real multi-record
// ClientHello (TLS records cap at 16 KB and hellos are a fraction of that),
// tight enough that a million tracked flows cannot pin gigabytes.
const DefaultMaxHelloBytes = 64 << 10

// DefaultEarlyMinMargin is the PlatformMargin floor for degraded
// classifications when Config.EarlyMinMargin is zero. Partial-feature
// predictions run on a handful of transport attributes, so a near-tie
// between the top two platforms is noise, not signal; requiring a 10-point
// probability gap keeps the degraded path from laundering coin flips into
// VerdictClassified.
const DefaultEarlyMinMargin = 0.10

// cidKey is a QUIC connection ID as a map key: fixed array plus length, so
// indexing allocates nothing.
type cidKey struct {
	n uint8
	b [20]byte
}

// mkCIDKey converts a wire CID. ok is false for empty or oversized IDs,
// which are never worth indexing.
func mkCIDKey(cid []byte) (cidKey, bool) {
	if len(cid) == 0 || len(cid) > 20 {
		return cidKey{}, false
	}
	k := cidKey{n: uint8(len(cid))}
	copy(k.b[:], cid)
	return k, true
}

// maxFlowCIDs caps per-flow CID registrations. A handshake exposes at most
// a few IDs (client DCID/SCID, the server's chosen CID); anything past that
// is a peer churning IDs to bloat the index.
const maxFlowCIDs = 8

// Pipeline is the streaming packet processor of Fig 4. Feed packets with
// HandlePacket; classified flows are returned as events and accumulated for
// Flows(). Not safe for concurrent use — shard by flow hash across instances
// for multi-core deployments, as the DPDK prototype does — with one
// exception: SwapBank may be called from any goroutine to hot-swap the
// classifier bank without pausing packet processing.
type Pipeline struct {
	bank atomic.Pointer[Bank]

	cfg       Config
	flows     *flowtable.Table[*flowState]
	lastSweep time.Time

	parser packet.Parser
	parsed packet.Parsed
	// scratch holds the classification path's reusable buffers (encoded
	// vector, forest probabilities, extension-walk scratch). One per
	// pipeline is safe: HandlePacket is single-goroutine by contract, and
	// each shard of a Sharded owns its own Pipeline.
	scratch ClassifyScratch

	// oversized counts flows abandoned because their buffered handshake
	// bytes exceeded Config.MaxHelloBytes. Atomic so Sharded can aggregate
	// it across running shards.
	oversized atomic.Uint64

	// cids indexes the QUIC connection IDs observed on live flows back to
	// their canonical flow key, so a packet arriving on an unknown 5-tuple
	// whose CID is known re-keys the existing flow (connection migration)
	// instead of spawning a ghost. Owned by the HandlePacket goroutine;
	// allocated lazily on the first long-header frame.
	cids map[cidKey]packet.FlowKey
	// cidLens is a bitmask of CID lengths present in cids. Short headers do
	// not carry their DCID length on the wire, so a migration probe tries
	// each length the tap has actually seen (a real deployment pins its
	// own CID length; here clients draw theirs per profile).
	cidLens uint32

	// migrations counts flows re-keyed onto a new 5-tuple; earlyClassified
	// counts degraded (partial-feature) classifications accepted by the
	// margin gate. Atomics so Sharded can aggregate across running shards.
	migrations      atomic.Uint64
	earlyClassified atomic.Uint64

	// batchQueueWait is the shard-queue wait of the batch currently being
	// processed, set by the shard worker before it replays the batch's
	// frames so sampled spans can attribute the wait to each frame. Owned
	// by the single goroutine calling HandlePacket/handleKeyed; always zero
	// for a plain (unsharded) pipeline.
	batchQueueWait int64

	// pending holds batch mode's deferred classifications, grouped per
	// (provider, transport) so each group flushes through one
	// Bank.ClassifyBatch call. Owned by the single goroutine calling
	// handleKeyed/flushBatch; group capacity is reused across batches so the
	// steady state never allocates.
	pending []pendingGroup

	// Stats counters.
	Packets, VideoPackets, ClassifiedFlows, UnknownFlows int
}

// New returns a Pipeline over a trained bank with an unbounded flow table.
func New(bank *Bank) *Pipeline { return NewWithConfig(bank, Config{}) }

// NewWithConfig returns a Pipeline whose flow table is bounded by cfg.
func NewWithConfig(bank *Bank, cfg Config) *Pipeline {
	p := &Pipeline{cfg: cfg}
	p.bank.Store(bank)
	p.flows = flowtable.New[*flowState](
		flowtable.Config{MaxFlows: cfg.MaxFlows, IdleTimeout: cfg.IdleTimeout},
		func(_ packet.FlowKey, st *flowState, reason flowtable.Reason) {
			p.finishSpan(st, "evicted")
			p.unregisterCIDs(st)
			switch {
			case st.pendingClassify:
				// Evicted between batch-mode deferral and flushBatch: the
				// handshake completed but was never classified. Clearing the
				// mark tells the flush to skip this flow; the record leaves
				// with an honest VerdictPending.
				st.pendingClassify = false
			case st.rec.Verdict == VerdictPending && st.asm.zeroRTT:
				// Evicted mid-flow with only 0-RTT early data seen: the
				// hello was never coming, so the flow leaves as an explicit
				// resumption abstain rather than a generic no-handshake.
				st.rec.Verdict = VerdictAbstainedZeroRTT
			case st.rec.Verdict == VerdictPending:
				// Evicted before the handshake resolved: the classifier
				// never saw this flow.
				st.rec.Verdict = VerdictNoHandshake
			}
			if cfg.OnEvict != nil {
				rec := st.rec
				cfg.OnEvict(&rec, reason)
			}
		})
	return p
}

// finishSpan completes a sampled flow's span with its terminal verdict and
// hands it back to the tracer. No-op for unsampled flows.
func (p *Pipeline) finishSpan(st *flowState, verdict string) {
	if st.span == nil {
		return
	}
	sp := st.span
	st.span = nil
	if sp.SNI == "" {
		sp.SNI = st.rec.SNI
	}
	if sp.ModelVersion == "" {
		sp.ModelVersion = st.rec.ModelVersion
	}
	sp.Verdict = verdict
	p.cfg.Tracer.Finish(sp)
}

// TableStats reports the flow table's occupancy and eviction counters.
// Safe to call from any goroutine while the pipeline is running.
func (p *Pipeline) TableStats() flowtable.Stats { return p.flows.Stats() }

// Bank returns the classifier bank currently serving classifications. Safe
// from any goroutine.
func (p *Pipeline) Bank() *Bank { return p.bank.Load() }

// SwapBank atomically replaces the classifier bank. Classification never
// blocks on a swap: HandlePacket loads the bank pointer once per packet, so
// a flow classifying when the swap lands completes coherently against the
// bank it started with and the next packet sees the new one. Safe from any
// goroutine.
func (p *Pipeline) SwapBank(bank *Bank) { p.bank.Store(bank) }

// HandlePacket processes one frame. It returns a non-nil FlowRecord exactly
// when the frame completed a flow's classification.
func (p *Pipeline) HandlePacket(ts time.Time, frame []byte) (*FlowRecord, error) {
	if err := p.parser.Parse(frame, &p.parsed); err != nil {
		p.Packets++
		return nil, nil // undecodable frames are not errors for the tap
	}
	return p.handleParsed(ts, frame, &p.parsed)
}

// handleParsed is HandlePacket after its decode — the parse-once seam: the
// one decode is summarized into the flow key and payload length for
// handleKeyed, so nothing downstream re-parses. parsed must be the result
// of Parser.Parse(frame, parsed); its slices may alias frame. The pipeline
// copies anything it retains past the call, so the caller may recycle both
// frame and parsed as soon as it returns.
func (p *Pipeline) handleParsed(ts time.Time, frame []byte, parsed *packet.Parsed) (*FlowRecord, error) {
	key, ok := parsed.Flow()
	if !ok {
		p.Packets++
		return nil, nil
	}
	return p.handleKeyed(ts, frame, key, key.Canonical(), len(parsed.Payload), parsed)
}

// handleKeyed is the post-decode flow path. key, canon and payloadLen are
// the ingest-time decode's summary — everything the flow stage needs, small
// enough to travel through a shard queue without dragging the full layer
// structs along. frame is still required for handshake assembly (client
// payload bytes are copied into flow state until a ClientHello parses out).
// parsed, when non-nil, is the caller's decode of frame, letting the
// assembler skip its own parse; shard workers pass nil (only the summary
// crosses the queue) and the assembler re-decodes the few client
// handshake-phase frames it actually consumes.
func (p *Pipeline) handleKeyed(ts time.Time, frame []byte, key, canon packet.FlowKey, payloadLen int, parsed *packet.Parsed) (*FlowRecord, error) {
	p.Packets++
	if !isVideoPort(key) {
		return nil, nil
	}
	p.maybeSweep(ts)
	st, ok := p.flows.Touch(canon, ts)
	if !ok {
		st, ok = p.migrateFlow(key, canon, frame, payloadLen, ts)
	}
	if !ok {
		st = &flowState{clientKey: key}
		st.rec.Key = key
		st.rec.FirstSeen = ts
		st.asm.init()
		if p.cfg.Tracer != nil {
			if sp := p.cfg.Tracer.Admit(); sp != nil {
				sp.Flow = canon.String()
				sp.Shard = p.cfg.shardID
				if p.cfg.queueDepth != nil {
					sp.QueueDepth = p.cfg.queueDepth()
				}
				sp.FirstPacket = ts
				st.span = sp
			}
		}
		p.flows.Put(canon, st, ts)
	}
	if st.span != nil {
		st.span.Frames++
		st.span.QueueWaitNS += p.batchQueueWait
	}

	// Register QUIC connection IDs from long-header frames — both
	// directions, since the server's flight is what announces the server's
	// chosen CID — so a later 5-tuple change is recognized as migration
	// instead of spawning a ghost flow. Runs even for flows already
	// classified: migration happens mid-stream, long after the verdict.
	if key.Proto == packet.ProtoUDP && payloadLen > 0 && payloadLen <= len(frame) {
		if pl := frame[len(frame)-payloadLen:]; quicproto.IsLongHeader(pl) {
			p.learnCIDs(st, canon, pl)
		}
	}

	// Telemetry split by direction.
	st.rec.LastSeen = ts
	if key == st.clientKey {
		st.rec.BytesUp += int64(payloadLen)
		st.rec.PacketsUp++
	} else {
		st.rec.BytesDown += int64(payloadLen)
		st.rec.PacketsDown++
	}

	if st.done {
		return nil, nil
	}

	// Handshake splitter: only client-direction bytes can advance handshake
	// assembly (the ClientHello rides the client side), so server packets on
	// a still-unclassified flow cost nothing beyond the telemetry above.
	if key != st.clientKey {
		return nil, nil
	}
	var asmStart time.Time
	timed := p.cfg.Observer != nil || st.span != nil
	if timed {
		asmStart = time.Now()
	}
	var complete bool
	if parsed != nil {
		complete = st.asm.consumeParsed(parsed, frame)
	} else {
		complete = st.asm.consume(&p.parser, &p.parsed, frame)
	}
	if timed {
		d := time.Since(asmStart)
		p.cfg.Observer.Record(obs.StageAssembly, d)
		if st.span != nil {
			st.span.AssemblyNS += int64(d)
		}
	}
	if !complete {
		if st.asm.zeroRTT && !st.asm.giveUp {
			// Confidence escalation: classify on what is visible so far and
			// keep the highest-margin attempt for the terminal decision.
			p.escalateEarly(st)
		}
		switch {
		case st.asm.giveUp, st.asm.zeroRTT && st.asm.frames > 8:
			// 0-RTT resumption: the hello is not coming. Decide on partial
			// features or abstain explicitly into the open-set bucket.
			return p.finishDegraded(st, &st.asm.info, VerdictAbstainedZeroRTT)
		case st.asm.frames > 8:
			st.done = true // no hello in the first packets: not a video flow
			st.rec.Verdict = VerdictNoHandshake
			p.finishSpan(st, "no-handshake")
		case p.maxHelloBytes() > 0 && st.asm.buffered() > p.maxHelloBytes():
			st.done = true // oversized handshake: abandon, don't buffer more
			st.rec.Verdict = VerdictOversized
			p.oversized.Add(1)
			p.finishSpan(st, "oversized")
		}
		if st.done {
			st.asm = hsAssembler{} // release buffered handshake bytes
		}
		return nil, nil
	}
	info := st.asm.finish()

	sni := info.Hello.ServerName()
	prov, content, ok := MatchProvider(sni)
	if !ok {
		if info.Hello.HasExtension(tlsproto.ExtEncryptedClientHello) {
			// ECH: the visible SNI is a fronting public name; the real
			// hostname rides encrypted in the hello. The outer hello is
			// still a full client fingerprint, so degraded classification
			// under a hinted provider sees everything but the SNI.
			st.rec.SNI = sni // the fronted (outer) name — observable truth
			return p.finishDegraded(st, info, VerdictAbstainedECH)
		}
		st.done = true
		st.rec.Verdict = VerdictNotVideo
		if st.span != nil {
			st.span.SNI = sni // the record stays SNI-less for non-video flows
		}
		p.finishSpan(st, "not-video")
		st.asm = hsAssembler{}
		return nil, nil
	}
	p.VideoPackets++
	st.rec.SNI = sni
	st.rec.Provider = prov
	st.rec.Content = content
	st.rec.Transport = fingerprint.TCP
	if info.QUIC {
		st.rec.Transport = fingerprint.QUIC
	}

	if p.cfg.batched {
		// Batch mode: park the completed handshake until the shard worker
		// flushes the batch, so one compiled-forest sweep classifies every
		// completed flow of the batch together. st.asm keeps owning the
		// handshake bytes (info aliases them) until finishClassification.
		p.deferClassify(st, prov, info)
		return nil, nil
	}

	bank := p.bank.Load() // one load: the whole classification uses one bank
	var clStart time.Time
	if timed {
		clStart = time.Now()
	}
	pred, err := bank.ClassifyHandshake(prov, st.rec.Transport, info, &p.scratch)
	var nanos int64
	if timed {
		nanos = int64(time.Since(clStart))
	}
	return p.finishClassification(st, info, pred, err, bank, nanos)
}

// finishClassification applies one flow's classification outcome: latency
// attribution, verdict accounting, span completion, the OnClassify hook, and
// the release of the flow's buffered handshake bytes. Shared by the
// immediate (per-flow) path and flushBatch, so the two modes cannot drift.
// nanos is the flow's attributed classification time (zero when latency
// observation is off). Returns the completed record exactly when the flow
// classified without error.
func (p *Pipeline) finishClassification(st *flowState, info *features.HandshakeInfo, pred Prediction, err error, bank *Bank, nanos int64) (*FlowRecord, error) {
	if nanos > 0 {
		p.cfg.Observer.Record(obs.StageClassify, time.Duration(nanos))
		st.rec.ClassifyNanos = nanos
		if st.span != nil {
			st.span.ClassifyNS += nanos
		}
	}
	st.done = true
	if err != nil {
		st.rec.Verdict = VerdictError
		if st.span != nil {
			st.span.ModelVersion = bank.Version
		}
		p.finishSpan(st, "error")
		st.asm = hsAssembler{}
		return nil, err
	}
	st.rec.Prediction = pred
	st.rec.Classified = true
	st.rec.ModelVersion = bank.Version
	if pred.Status == Unknown {
		st.rec.Verdict = VerdictAbstained
		p.UnknownFlows++
	} else {
		st.rec.Verdict = VerdictClassified
		p.ClassifiedFlows++
	}
	if st.span != nil {
		verdict := "unknown"
		if pred.Status != Unknown {
			verdict = pred.Device + "/" + pred.Agent
		}
		p.finishSpan(st, verdict)
	}
	out := st.rec // copy at classification time
	if p.cfg.OnClassify != nil {
		hookRec := st.rec
		p.cfg.OnClassify(&hookRec, info)
	}
	st.asm = hsAssembler{} // release only after the hook: info aliases it
	return &out, nil
}

// hintFor resolves the provider hint for a flow's server side (the 443
// endpoint of the initiating packet).
func (p *Pipeline) hintFor(st *flowState) (fingerprint.Provider, bool) {
	if p.cfg.ProviderHint == nil {
		return 0, false
	}
	addr := st.clientKey.Dst
	if st.clientKey.DstPort != 443 {
		addr = st.clientKey.Src
	}
	return p.cfg.ProviderHint(addr)
}

// earlyMinMargin resolves the Config.EarlyMinMargin default.
func (p *Pipeline) earlyMinMargin() float64 {
	switch {
	case p.cfg.EarlyMinMargin == 0:
		return DefaultEarlyMinMargin
	case p.cfg.EarlyMinMargin < 0:
		return 0
	}
	return p.cfg.EarlyMinMargin
}

// escalateEarly runs one degraded classification attempt on the features
// visible so far, keeping the highest-margin prediction — the confidence
// escalation of a flow whose hello may never surface. Bounded by the
// 8-frame handshake heuristic, so an opaque flow costs at most a handful of
// attempts before its terminal decision.
func (p *Pipeline) escalateEarly(st *flowState) {
	prov, ok := p.hintFor(st)
	if !ok {
		return
	}
	tr := fingerprint.TCP
	if st.asm.info.QUIC {
		tr = fingerprint.QUIC
	}
	pred, err := p.bank.Load().ClassifyHandshake(prov, tr, &st.asm.info, &p.scratch)
	if err != nil || pred.Status == Unknown {
		return
	}
	if !st.hasEarly || pred.PlatformMargin > st.early.PlatformMargin {
		st.early, st.hasEarly = pred, true
	}
}

// finishDegraded terminates a flow whose decisive features never surfaced —
// an ECH hello with no real SNI, or a 0-RTT resumption with no hello at
// all. With a provider hint available the flow is classified on whatever
// features did materialize, accepted only when the prediction clears both
// the confidence selector and the EarlyMinMargin gate; otherwise the flow
// abstains into the open-set bucket with the explicit fallback verdict.
// Config.OnClassify is deliberately not invoked: drift monitors and shadow
// evaluators compare full-feature classifications, and feeding them
// partial-feature records would poison both baselines. Runs immediately
// even in batch mode — degraded flows never join a ClassifyBatch sweep.
func (p *Pipeline) finishDegraded(st *flowState, info *features.HandshakeInfo, fallback Verdict) (*FlowRecord, error) {
	st.done = true
	st.rec.Transport = fingerprint.TCP
	if info.QUIC {
		st.rec.Transport = fingerprint.QUIC
	}
	bank := p.bank.Load()
	best, have := st.early, st.hasEarly
	prov, hinted := p.hintFor(st)
	if hinted && !have {
		if pred, err := bank.ClassifyHandshake(prov, st.rec.Transport, info, &p.scratch); err == nil {
			best, have = pred, true
		}
	}
	if hinted && have && best.Status != Unknown && best.PlatformMargin >= p.earlyMinMargin() {
		st.rec.Provider = prov
		st.rec.Prediction = best
		st.rec.Classified = true
		st.rec.Verdict = VerdictClassified
		st.rec.ModelVersion = bank.Version
		p.ClassifiedFlows++
		p.earlyClassified.Add(1)
		p.finishSpan(st, best.Device+"/"+best.Agent)
		out := st.rec
		st.asm = hsAssembler{}
		return &out, nil
	}
	st.rec.Verdict = fallback
	p.UnknownFlows++
	p.finishSpan(st, fallback.String())
	st.asm = hsAssembler{}
	return nil, nil
}

// migrateFlow resolves a flow-table miss against the CID index: when the
// frame's QUIC connection ID belongs to a live flow, that flow is re-keyed
// onto the new 5-tuple (connection migration) and keeps its assembler
// state, record and telemetry — one FlowRecord per logical flow, not a
// ghost per path. ok is false when the frame matches no known CID.
func (p *Pipeline) migrateFlow(key, canon packet.FlowKey, frame []byte, payloadLen int, ts time.Time) (*flowState, bool) {
	if len(p.cids) == 0 || key.Proto != packet.ProtoUDP || payloadLen <= 0 || payloadLen > len(frame) {
		return nil, false
	}
	oldCanon, ok := p.lookupCID(frame[len(frame)-payloadLen:])
	if !ok || !p.flows.Rekey(oldCanon, canon) {
		return nil, false
	}
	st, ok := p.flows.Touch(canon, ts)
	if !ok {
		return nil, false // unreachable: Rekey just installed canon
	}
	p.migrations.Add(1)
	// The client now speaks from the migrated tuple (the 443 side stays the
	// server); re-pointing clientKey keeps the direction split and any
	// still-running handshake assembly correct for everything that follows.
	if key.DstPort == 443 {
		st.clientKey = key
	} else {
		st.clientKey = key.Reverse()
	}
	// Follow the flow in the CID index so a second migration re-keys again
	// and eviction cleans up under the current key.
	for _, ck := range st.cids {
		p.cids[ck] = canon
	}
	return st, true
}

// lookupCID maps a QUIC payload to the canonical key of the live flow that
// registered one of its connection IDs. Long headers carry explicit IDs;
// short headers carry only DCID bytes with no on-wire length, so each
// length the tap has registered is probed shortest-first.
func (p *Pipeline) lookupCID(payload []byte) (packet.FlowKey, bool) {
	if quicproto.IsLongHeader(payload) {
		ids, err := quicproto.ParseLongHeaderCIDs(payload)
		if err != nil {
			return packet.FlowKey{}, false
		}
		for _, cid := range [2][]byte{ids.DCID, ids.SCID} {
			if ck, ok := mkCIDKey(cid); ok {
				if canon, hit := p.cids[ck]; hit {
					return canon, true
				}
			}
		}
		return packet.FlowKey{}, false
	}
	for l := 1; l <= 20; l++ {
		if p.cidLens&(1<<uint(l)) == 0 || 1+l > len(payload) {
			continue
		}
		if ck, ok := mkCIDKey(payload[1 : 1+l]); ok {
			if canon, hit := p.cids[ck]; hit {
				return canon, true
			}
		}
	}
	return packet.FlowKey{}, false
}

// learnCIDs registers a long-header frame's connection IDs for the flow.
func (p *Pipeline) learnCIDs(st *flowState, canon packet.FlowKey, payload []byte) {
	ids, err := quicproto.ParseLongHeaderCIDs(payload)
	if err != nil {
		return
	}
	p.learnCID(st, canon, ids.DCID)
	p.learnCID(st, canon, ids.SCID)
}

func (p *Pipeline) learnCID(st *flowState, canon packet.FlowKey, cid []byte) {
	ck, ok := mkCIDKey(cid)
	if !ok || len(st.cids) >= maxFlowCIDs {
		return
	}
	if existing, hit := p.cids[ck]; hit && existing == canon {
		return
	}
	if p.cids == nil {
		p.cids = make(map[cidKey]packet.FlowKey)
	}
	p.cids[ck] = canon
	p.cidLens |= 1 << uint(ck.n)
	st.cids = append(st.cids, ck)
}

// unregisterCIDs removes a flow's CID index entries (eviction cleanup).
func (p *Pipeline) unregisterCIDs(st *flowState) {
	for _, ck := range st.cids {
		delete(p.cids, ck)
	}
	st.cids = nil
}

// Migrations reports flows re-keyed onto a new 5-tuple by connection
// migration. Safe from any goroutine.
func (p *Pipeline) Migrations() uint64 { return p.migrations.Load() }

// EarlyClassified reports degraded (partial-feature) classifications
// accepted by the EarlyMinMargin gate. Safe from any goroutine.
func (p *Pipeline) EarlyClassified() uint64 { return p.earlyClassified.Load() }

// pendingGroup accumulates one (provider, transport)'s deferred
// classifications within the current ingest batch. flows and infos are
// parallel; preds is the ClassifyBatch output matrix. All slices keep their
// capacity across batches.
type pendingGroup struct {
	prov  fingerprint.Provider
	tr    fingerprint.Transport
	flows []*flowState
	infos []*features.HandshakeInfo
	preds []Prediction
}

// deferClassify parks a completed handshake in its (provider, transport)
// group for the end-of-batch flush. The flow is marked done so later frames
// of the same batch skip handshake work, exactly as after an immediate
// classification.
func (p *Pipeline) deferClassify(st *flowState, prov fingerprint.Provider, info *features.HandshakeInfo) {
	g := p.pendingFor(prov, st.rec.Transport)
	g.flows = append(g.flows, st)
	g.infos = append(g.infos, info)
	st.done = true
	st.pendingClassify = true
}

// pendingFor returns the current batch's group for a (provider, transport),
// reviving retired group capacity before growing the slice. The group count
// is bounded by providers × transports, so the linear scan stays trivial.
func (p *Pipeline) pendingFor(prov fingerprint.Provider, tr fingerprint.Transport) *pendingGroup {
	for i := range p.pending {
		g := &p.pending[i]
		if g.prov == prov && g.tr == tr {
			return g
		}
	}
	if len(p.pending) < cap(p.pending) {
		p.pending = p.pending[:len(p.pending)+1]
	} else {
		p.pending = append(p.pending, pendingGroup{})
	}
	g := &p.pending[len(p.pending)-1]
	g.prov, g.tr = prov, tr
	g.flows = g.flows[:0]
	g.infos = g.infos[:0]
	return g
}

// growPreds resizes a prediction matrix to n rows, reusing capacity.
func growPreds(s []Prediction, n int) []Prediction {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]Prediction, n-cap(s))...)
	}
	return s[:n]
}

// flushBatch classifies every deferred handshake of the just-replayed ingest
// batch, one Bank.ClassifyBatch sweep per (provider, transport) group, and
// hands completed records to deliver. Called by the owning shard worker
// after a batch's frames and before the batch arena recycles (the deferred
// HandshakeInfos alias flow-owned buffers, not the arena, but flushing per
// batch keeps deferral latency at one batch). The batch's classify time is
// attributed evenly across its flows. No-op when nothing was deferred.
func (p *Pipeline) flushBatch(deliver func(*FlowRecord)) {
	if len(p.pending) == 0 {
		return
	}
	bank := p.bank.Load() // one load: the whole flush uses one bank
	timed := p.cfg.Observer != nil || p.cfg.Tracer != nil
	for gi := range p.pending {
		g := &p.pending[gi]
		n := len(g.flows)
		if n == 0 {
			continue
		}
		g.preds = growPreds(g.preds, n)
		var start time.Time
		if timed {
			start = time.Now()
		}
		err := bank.ClassifyBatch(g.prov, g.tr, g.infos, &p.scratch, g.preds)
		var per int64
		if timed {
			per = int64(time.Since(start)) / int64(n)
		}
		for i, st := range g.flows {
			if !st.pendingClassify {
				continue // evicted between deferral and flush
			}
			st.pendingClassify = false
			rec, ferr := p.finishClassification(st, g.infos[i], g.preds[i], err, bank, per)
			if ferr == nil && rec != nil && deliver != nil {
				deliver(rec)
			}
		}
		// Release the flow-state and handshake pointers so retired groups
		// never pin evicted flows past the flush.
		clear(g.flows)
		g.flows = g.flows[:0]
		clear(g.infos)
		g.infos = g.infos[:0]
	}
	p.pending = p.pending[:0]
}

// noteQueueWait records how long the batch about to be replayed waited in
// its shard's inbox, so sampled spans can attribute the wait per frame.
// Called by the owning shard worker only (same goroutine as handleKeyed).
func (p *Pipeline) noteQueueWait(d time.Duration) { p.batchQueueWait = int64(d) }

// maxHelloBytes resolves the Config.MaxHelloBytes default.
func (p *Pipeline) maxHelloBytes() int {
	if p.cfg.MaxHelloBytes == 0 {
		return DefaultMaxHelloBytes
	}
	return p.cfg.MaxHelloBytes
}

// OversizedHandshakes reports how many flows were abandoned because their
// buffered handshake bytes exceeded Config.MaxHelloBytes. Safe from any
// goroutine.
func (p *Pipeline) OversizedHandshakes() uint64 { return p.oversized.Load() }

// isVideoPort is the port filter of the paper's tap: the providers' video
// flows all ride 443. One predicate serves both the per-pipeline filter and
// Sharded's ingest-time drop, so the policy cannot drift between them.
func isVideoPort(key packet.FlowKey) bool {
	return key.SrcPort == 443 || key.DstPort == 443
}

// maybeSweep runs idle expiry at most once per quarter idle-timeout,
// driven by packet timestamps. Evictions therefore lag idleness by at most
// a quarter timeout of trace time.
func (p *Pipeline) maybeSweep(ts time.Time) {
	if p.cfg.IdleTimeout <= 0 {
		return
	}
	if p.lastSweep.IsZero() {
		p.lastSweep = ts
		return
	}
	if ts.Sub(p.lastSweep) >= p.cfg.IdleTimeout/4 {
		p.flows.ExpireIdle(ts)
		p.lastSweep = ts
	}
}

// Flows returns the tracked per-flow records (classified or not), with
// final telemetry. Flows already evicted from a bounded table are not
// included — they were delivered to Config.OnEvict with the same record
// contents at eviction time, so OnEvict output plus Flows() covers every
// flow exactly once.
func (p *Pipeline) Flows() []*FlowRecord {
	out := make([]*FlowRecord, 0, p.flows.Len())
	p.flows.Range(func(_ packet.FlowKey, st *flowState) bool {
		rec := st.rec
		out = append(out, &rec)
		return true
	})
	return out
}

// Reset drops all flow state (e.g. between measurement windows) without
// invoking the eviction hook.
func (p *Pipeline) Reset() {
	p.flows.Clear()
	p.cids = nil
	p.cidLens = 0
	p.lastSweep = time.Time{}
}
