// Package pipeline implements the paper's Fig 4 packet-processing pipeline:
// packets are parsed, filtered to the four providers' video flows by SNI,
// split into handshake and payload packets, formalized into the Table 2
// attributes, and classified by a per-provider bank of random-forest models
// with the 80% confidence selector of §4.1. Classified flows are joined with
// volumetric telemetry for the §5 analyses.
//
// # Parse-once batched ingest
//
// Two entry points feed the pipeline. Pipeline.HandlePacket is the
// single-core batch path. Sharded is the deployment shape of the paper's
// multi-queue DPDK prototype: an ingest goroutine parses each frame exactly
// once (the same decode that picks the shard) and summarizes it into the
// flow key, canonical key and payload length that travel with the frame's
// bytes — packed back-to-back into a pooled per-batch arena, one channel
// send per shard per batch (HandlePacketBatch; HandlePacket ships a batch
// of one). Shard workers never re-parse.
//
// Buffer-reuse rules: a batch's arena is recycled as soon as the shard
// worker has run every frame through the pipeline, which is safe because
// the pipeline copies anything it retains past the call (client-side
// handshake frames are duplicated into flow state; flow keys and telemetry
// are values). Code that adds retention to the flow path must keep that
// copy-on-retain invariant or the arena recycle in Sharded becomes a
// use-after-free. Frames with no TCP/UDP 5-tuple are dropped at ingest
// (counted in Sharded.Ignored); queue depths and the best-effort results
// buffer are Config knobs with shard-count-scaled defaults.
package pipeline

import (
	"errors"
	"fmt"
	"strings"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/packet"
	"videoplat/internal/quicproto"
	"videoplat/internal/tlsproto"
	"videoplat/internal/tracegen"
)

// ErrNoHandshake is returned when a flow's frames contain no ClientHello.
var ErrNoHandshake = errors.New("pipeline: no ClientHello in flow")

// MatchProvider maps an SNI to a video provider, reproducing the paper's
// SNI-based traffic detection (content and management hostnames).
// The boolean reports whether the SNI matched at all; content reports
// whether it is a content (video-carrying) server rather than a management
// front-end.
func MatchProvider(sni string) (prov fingerprint.Provider, content, ok bool) {
	s := strings.ToLower(sni)
	switch {
	case strings.HasSuffix(s, ".googlevideo.com"):
		return fingerprint.YouTube, true, true
	case strings.HasSuffix(s, "youtube.com"):
		return fingerprint.YouTube, false, true
	case strings.HasSuffix(s, ".nflxvideo.net"):
		return fingerprint.Netflix, true, true
	case strings.HasSuffix(s, "netflix.com"):
		return fingerprint.Netflix, false, true
	case strings.HasSuffix(s, ".media.dssott.com"), strings.HasSuffix(s, ".dssott.com"):
		return fingerprint.Disney, true, true
	case strings.HasSuffix(s, "disneyplus.com"):
		return fingerprint.Disney, false, true
	case strings.HasSuffix(s, ".aiv-cdn.net"), strings.HasSuffix(s, ".cloudfront.net"):
		return fingerprint.Amazon, true, true
	case strings.HasSuffix(s, "primevideo.com"), strings.HasSuffix(s, "amazonvideo.com"):
		return fingerprint.Amazon, false, true
	}
	return 0, false, false
}

// ExtractFrames assembles a flow's HandshakeInfo from its client-side
// frames: the TCP SYN + ClientHello record, or the QUIC Initial. This is the
// handshake-attribute path of Fig 4's preprocessing stage.
func ExtractFrames(frames [][]byte) (*features.HandshakeInfo, error) {
	var parser packet.Parser
	var parsed packet.Parsed
	info := &features.HandshakeInfo{TCPWScale: -1}
	var sawSYN bool
	var tcpStream []byte

	for _, frame := range frames {
		if err := parser.Parse(frame, &parsed); err != nil {
			continue // non-IP noise is skipped, as a tap would
		}
		switch {
		case parsed.Has(packet.LayerTCP):
			t := &parsed.TCP
			if t.Flags&packet.FlagSYN != 0 && t.Flags&packet.FlagACK == 0 && !sawSYN {
				sawSYN = true
				info.QUIC = false
				info.TTL = parsed.TTL()
				info.InitPacketSize = len(frame) - 14 // IP packet size
				info.TCPFlags = t.Flags
				info.TCPWindow = t.Window
				info.TCPMSS = t.MSS()
				info.TCPWScale = t.WindowScale()
				info.TCPSACK = t.SACKPermitted()
			}
			if len(parsed.Payload) > 0 && info.Hello == nil {
				tcpStream = append(tcpStream, parsed.Payload...)
				ch, err := tlsproto.ParseRecord(tcpStream)
				if err == nil {
					info.Hello = ch
					return info, nil
				}
				if !errors.Is(err, tlsproto.ErrMalformed) {
					// Not a handshake record at all: wrong flow start.
					tcpStream = nil
				}
			}
		case parsed.Has(packet.LayerUDP):
			if !quicproto.IsLongHeader(parsed.Payload) {
				continue
			}
			init, err := quicproto.ParseInitial(parsed.Payload)
			if err != nil {
				continue
			}
			ch, err := tlsproto.Parse(init.CryptoData)
			if err != nil {
				continue
			}
			info.QUIC = true
			info.TTL = parsed.TTL()
			info.InitPacketSize = init.WireSize
			info.Hello = ch
			return info, nil
		}
	}
	if info.Hello == nil {
		return nil, ErrNoHandshake
	}
	return info, nil
}

// ExtractTrace assembles HandshakeInfo from a generated FlowTrace's
// client-side frames.
func ExtractTrace(ft *tracegen.FlowTrace) (*features.HandshakeInfo, error) {
	var frames [][]byte
	for _, fr := range ft.Frames {
		if fr.ClientToServer {
			frames = append(frames, fr.Data)
		}
	}
	info, err := ExtractFrames(frames)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", ft.Label, ft.Provider, err)
	}
	return info, nil
}

// DeviceOf maps a composite platform label to its device-type class
// (windows/macOS/android/iOS/TV), the paper's device-type objective.
func DeviceOf(label string) string {
	i := strings.IndexByte(label, '_')
	if i < 0 {
		return label
	}
	dev := label[:i]
	switch dev {
	case "androidTV", "ps5":
		return "TV"
	}
	return dev
}

// AgentOf maps a composite platform label to its software-agent class.
func AgentOf(label string) string {
	i := strings.IndexByte(label, '_')
	if i < 0 {
		return label
	}
	return label[i+1:]
}
