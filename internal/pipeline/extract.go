// Package pipeline implements the paper's Fig 4 packet-processing pipeline:
// packets are parsed, filtered to the four providers' video flows by SNI,
// split into handshake and payload packets, formalized into the Table 2
// attributes, and classified by a per-provider bank of random-forest models
// with the 80% confidence selector of §4.1. Classified flows are joined with
// volumetric telemetry for the §5 analyses.
//
// # Parse-once batched ingest
//
// Two entry points feed the pipeline. Pipeline.HandlePacket is the
// single-core batch path. Sharded is the deployment shape of the paper's
// multi-queue DPDK prototype: an ingest goroutine parses each frame exactly
// once (the same decode that picks the shard) and summarizes it into the
// flow key, canonical key and payload length that travel with the frame's
// bytes — packed back-to-back into a pooled per-batch arena, one channel
// send per shard per batch (HandlePacketBatch; HandlePacket ships a batch
// of one). Shard workers never re-parse.
//
// Buffer-reuse rules: a batch's arena is recycled as soon as the shard
// worker has run every frame through the pipeline, which is safe because
// the pipeline copies anything it retains past the call (client handshake
// payload bytes are copied into the flow's assembler; flow keys and
// telemetry are values). Code that adds retention to the flow path must
// keep that copy-on-retain invariant or the arena recycle in Sharded
// becomes a use-after-free. Frames with no TCP/UDP 5-tuple are dropped at
// ingest (counted in Sharded.Ignored); queue depths and the best-effort
// results buffer are Config knobs with shard-count-scaled defaults.
//
// # Zero-allocation classification fast path
//
// Classification — the per-flow cost once ingest is parse-once — is built
// around two pieces:
//
//   - Incremental handshake assembly. Each flow owns an hsAssembler, a
//     small state machine that consumes client-direction bytes as they
//     arrive and remembers parse progress (SYN fields, buffered TCP payload
//     bytes), so a flow is reassembled once in O(client handshake bytes)
//     instead of re-running full reassembly over every buffered frame on
//     every packet. Server-direction packets never touch assembly, and
//     buffered bytes are bounded by Config.MaxHelloBytes (oversized flows
//     are abandoned and counted in OversizedHandshakes).
//
//   - Compiled encoding and pooled prediction. Bank.ClassifyHandshake
//     encodes the assembled handshake once through the models' shared
//     features.CompiledEncoder — raw wire values resolved through interned
//     tables, no FieldValues maps, no string formatting — and runs the
//     three objectives' forests through ml's PredictInto over the
//     pipeline-owned ClassifyScratch. The encode+predict stage performs
//     zero steady-state allocations, and its output is byte-identical to
//     the reference Extract+Transform+Classify path (pinned by the
//     golden-equivalence tests).
//
// Scratch-reuse rules: each Pipeline owns one ClassifyScratch (and each
// Sharded shard owns its Pipeline), so scratch state is single-goroutine by
// construction. The HandshakeInfo passed to Config.OnClassify aliases the
// flow's assembler buffers and is only valid for the duration of the hook
// call; the shadow evaluator classifies synchronously within it.
// Serialized banks carry only encoders and forests — compiled tables and
// the shared-encoder index rebuild lazily after UnmarshalBinary — so the
// gob format is unchanged and older banks load into the fast path.
package pipeline

import (
	"errors"
	"fmt"
	"strings"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/packet"
	"videoplat/internal/quicproto"
	"videoplat/internal/tlsproto"
	"videoplat/internal/tracegen"
)

// ErrNoHandshake is returned when a flow's frames contain no ClientHello.
var ErrNoHandshake = errors.New("pipeline: no ClientHello in flow")

// MatchProvider maps an SNI to a video provider, reproducing the paper's
// SNI-based traffic detection (content and management hostnames).
// The boolean reports whether the SNI matched at all; content reports
// whether it is a content (video-carrying) server rather than a management
// front-end.
func MatchProvider(sni string) (prov fingerprint.Provider, content, ok bool) {
	s := strings.ToLower(sni)
	switch {
	case strings.HasSuffix(s, ".googlevideo.com"):
		return fingerprint.YouTube, true, true
	case strings.HasSuffix(s, "youtube.com"):
		return fingerprint.YouTube, false, true
	case strings.HasSuffix(s, ".nflxvideo.net"):
		return fingerprint.Netflix, true, true
	case strings.HasSuffix(s, "netflix.com"):
		return fingerprint.Netflix, false, true
	case strings.HasSuffix(s, ".media.dssott.com"), strings.HasSuffix(s, ".dssott.com"):
		return fingerprint.Disney, true, true
	case strings.HasSuffix(s, "disneyplus.com"):
		return fingerprint.Disney, false, true
	case strings.HasSuffix(s, ".aiv-cdn.net"), strings.HasSuffix(s, ".cloudfront.net"):
		return fingerprint.Amazon, true, true
	case strings.HasSuffix(s, "primevideo.com"), strings.HasSuffix(s, "amazonvideo.com"):
		return fingerprint.Amazon, false, true
	}
	return 0, false, false
}

// hsAssembler is the incremental per-flow handshake assembler: a small
// state machine that consumes client-direction frames one at a time,
// remembering parse progress (SYN fields seen, TCP payload bytes buffered),
// so a flow's handshake is reassembled in O(total client bytes) instead of
// re-running full reassembly over every buffered frame on every packet.
// Consuming a flow's client frames in order leaves the assembler in exactly
// the state ExtractFrames' batch fold would have reached — ExtractFrames is
// implemented on top of it.
//
// The assembler owns every byte it retains: TCP payloads are copied into
// tcpStream, and the Hello produced by the record/Initial parsers is backed
// by freshly assembled buffers — never by the input frame — so callers may
// recycle frame buffers (e.g. Sharded's batch arenas) as soon as consume
// returns.
type hsAssembler struct {
	info      features.HandshakeInfo
	sawSYN    bool
	tcpStream []byte // buffered client-direction TCP payload bytes
	frames    int    // client frames consumed so far

	// cryptoStream buffers a QUIC CRYPTO stream split across Initials
	// (e.g. a hello fragmented around a mid-handshake migration). Only a
	// contiguous prefix is kept; out-of-order fragments end the flow as
	// no-handshake rather than buying an unbounded reorder buffer.
	cryptoStream []byte
	// sawInit records that the transport attributes (TTL, initial packet
	// size) were captured from the flow's first QUIC packet, so later
	// packets never overwrite them.
	sawInit bool
	// zeroRTT marks that the client sent 0-RTT early data: the handshake
	// rides resumed keys and no fresh ClientHello may ever appear.
	zeroRTT bool
	// giveUp marks that the assembler has proof no hello is coming — the
	// client moved to short-header (1-RTT) packets after 0-RTT early data
	// without ever showing a ClientHello.
	giveUp bool
}

func (a *hsAssembler) init() { a.info.TCPWScale = -1 }

// buffered reports the client handshake bytes currently held for this flow
// (the quantity Config.MaxHelloBytes bounds).
func (a *hsAssembler) buffered() int { return len(a.tcpStream) + len(a.cryptoStream) }

// consume feeds one client-direction frame to the state machine, parsing it
// with the caller's scratch parser state. It returns true once the flow's
// ClientHello has been fully assembled, after which a.info is complete
// (including pre-parsed QUIC transport parameters) and no further frames
// should be offered. Callers that already decoded the frame (the plain
// HandlePacket path) use consumeParsed instead, keeping the parse-once
// contract.
func (a *hsAssembler) consume(parser *packet.Parser, parsed *packet.Parsed, frame []byte) bool {
	if err := parser.Parse(frame, parsed); err != nil {
		a.frames++
		return false // non-IP noise is skipped, as a tap would
	}
	return a.consumeParsed(parsed, frame)
}

// consumeParsed is consume after its decode. parsed must be the result of
// Parser.Parse(frame, parsed).
func (a *hsAssembler) consumeParsed(parsed *packet.Parsed, frame []byte) bool {
	a.frames++
	info := &a.info
	switch {
	case parsed.Has(packet.LayerTCP):
		t := &parsed.TCP
		if t.Flags&packet.FlagSYN != 0 && t.Flags&packet.FlagACK == 0 && !a.sawSYN {
			a.sawSYN = true
			info.QUIC = false
			info.TTL = parsed.TTL()
			info.InitPacketSize = len(frame) - 14 // IP packet size
			info.TCPFlags = t.Flags
			info.TCPWindow = t.Window
			info.TCPMSS = t.MSS()
			info.TCPWScale = t.WindowScale()
			info.TCPSACK = t.SACKPermitted()
		}
		if len(parsed.Payload) > 0 && info.Hello == nil {
			a.tcpStream = append(a.tcpStream, parsed.Payload...)
			ch, err := tlsproto.ParseRecord(a.tcpStream)
			if err == nil {
				info.Hello = ch
				return true
			}
			if !errors.Is(err, tlsproto.ErrMalformed) {
				// Not a handshake record at all: wrong flow start.
				a.tcpStream = a.tcpStream[:0]
			}
		}
	case parsed.Has(packet.LayerUDP):
		if !quicproto.IsLongHeader(parsed.Payload) {
			// A short header before any hello: the client is in 1-RTT. If
			// early data preceded it, the handshake rode resumed keys and
			// no ClientHello is coming — proof, not a heuristic.
			if a.zeroRTT && info.Hello == nil {
				a.giveUp = true
			}
			return false
		}
		if quicproto.LongHeaderType(parsed.Payload) == quicproto.Type0RTT {
			// 0-RTT early data: opaque under resumed keys, and evidence the
			// flow is a session resumption. Its envelope still carries the
			// transport attributes the degraded path classifies on.
			a.zeroRTT = true
			if !a.sawInit {
				a.sawInit = true
				info.QUIC = true
				info.TTL = parsed.TTL()
				info.InitPacketSize = len(parsed.Payload)
			}
			return false
		}
		init, err := quicproto.ParseInitial(parsed.Payload)
		if err != nil {
			return false
		}
		if !a.sawInit {
			a.sawInit = true
			info.QUIC = true
			info.TTL = parsed.TTL()
			info.InitPacketSize = init.WireSize
		}
		// Fast path: the whole hello in one Initial — no buffering, the
		// parsed Hello is backed by the Initial's own assembly buffer.
		if init.CryptoOffset == 0 && len(a.cryptoStream) == 0 {
			if ch, err := tlsproto.Parse(init.CryptoData); err == nil {
				info.Hello = ch
				return true
			}
		}
		// Cross-packet CRYPTO accumulation: a hello split across Initials
		// (a client that migrated mid-handshake fragments its flight).
		// Fragments must arrive contiguously; a gap means the flow ends as
		// no-handshake via the frame-count heuristic.
		if int(init.CryptoOffset) == len(a.cryptoStream) && len(init.CryptoData) > 0 {
			a.cryptoStream = append(a.cryptoStream, init.CryptoData...)
			if ch, err := tlsproto.Parse(a.cryptoStream); err == nil {
				info.Hello = ch
				return true
			}
		}
		return false
	}
	return false
}

// finish completes an assembled handshake: for QUIC it pre-parses the
// transport parameters once, so the serving path's compiled encoders never
// re-parse extension 57. Call only after consume returned true.
func (a *hsAssembler) finish() *features.HandshakeInfo {
	info := &a.info
	if info.QUIC && info.Params == nil && info.Hello != nil {
		if e, ok := info.Hello.Extension(tlsproto.ExtQUICTransportParams); ok {
			info.Params, _ = quicproto.ParseTransportParameters(e.Data)
		}
	}
	return info
}

// ExtractFrames assembles a flow's HandshakeInfo from its client-side
// frames: the TCP SYN + ClientHello record, or the QUIC Initial. This is the
// handshake-attribute path of Fig 4's preprocessing stage, expressed as a
// batch fold over the incremental assembler the streaming pipeline uses.
func ExtractFrames(frames [][]byte) (*features.HandshakeInfo, error) {
	var parser packet.Parser
	var parsed packet.Parsed
	var a hsAssembler
	a.init()
	for _, frame := range frames {
		if a.consume(&parser, &parsed, frame) {
			return a.finish(), nil
		}
	}
	return nil, ErrNoHandshake
}

// ExtractTrace assembles HandshakeInfo from a generated FlowTrace's
// client-side frames.
func ExtractTrace(ft *tracegen.FlowTrace) (*features.HandshakeInfo, error) {
	var frames [][]byte
	for _, fr := range ft.Frames {
		if fr.ClientToServer {
			frames = append(frames, fr.Data)
		}
	}
	info, err := ExtractFrames(frames)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", ft.Label, ft.Provider, err)
	}
	return info, nil
}

// DeviceOf maps a composite platform label to its device-type class
// (windows/macOS/android/iOS/TV), the paper's device-type objective.
func DeviceOf(label string) string {
	i := strings.IndexByte(label, '_')
	if i < 0 {
		return label
	}
	dev := label[:i]
	switch dev {
	case "androidTV", "ps5":
		return "TV"
	}
	return dev
}

// AgentOf maps a composite platform label to its software-agent class.
func AgentOf(label string) string {
	i := strings.IndexByte(label, '_')
	if i < 0 {
		return label
	}
	return label[i+1:]
}
