package pipeline

import (
	"testing"
	"time"

	"videoplat/internal/fingerprint"
	"videoplat/internal/obs"
	"videoplat/internal/tracegen"
)

// observedSharded builds a 2-shard pipeline with full latency observability
// and a sample-everything tracer over the given bank.
func observedSharded(bank *Bank, every int) (*Sharded, *obs.PipelineObserver, *obs.Tracer) {
	o := obs.NewPipelineObserver()
	tr := obs.NewTracer(obs.TracerConfig{SampleEvery: every, Ring: 64, Slowest: 8})
	s := NewShardedWithConfig(bank, 2, Config{Observer: o, Tracer: tr})
	return s, o, tr
}

// feedFlow replays one synthetic video flow's frames through the sharded
// ingest path.
func feedShardedFlow(t *testing.T, s *Sharded, g *tracegen.Generator, label string) {
	t.Helper()
	prov := fingerprint.Netflix
	tr := fingerprint.TCP
	if !fingerprint.SupportsTCP(label, prov) {
		tr = fingerprint.QUIC
	}
	ft, err := g.Flow(label, prov, tr, tracegen.FlowSpec{PayloadFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range ft.Frames {
		s.HandlePacket(ft.Start.Add(fr.Offset), fr.Data)
	}
}

// TestObserverRecordsStages drives real flows through an observed Sharded
// (empty bank, so classification errors — the stage still times) and checks
// every ingest-side stage collected samples.
func TestObserverRecordsStages(t *testing.T) {
	bank := &Bank{models: map[bankKey]*Model{}}
	s, o, tr := observedSharded(bank, 1)
	g := tracegen.New(7)
	for _, label := range []string{"windows_chrome", "iOS_nativeApp", "macOS_safari"} {
		feedShardedFlow(t, s, g, label)
	}
	s.Close()

	byStage := map[string]obs.StageStats{}
	for _, st := range o.StageStats() {
		byStage[st.Stage] = st
	}
	for _, stage := range []string{"decode", "queue_wait", "assembly", "classify"} {
		if byStage[stage].Count == 0 {
			t.Errorf("stage %q recorded no samples", stage)
		}
	}
	if byStage["decode"].MaxMs <= 0 {
		t.Error("decode max latency is zero")
	}

	snap := tr.Snapshot(0)
	if snap.Admitted == 0 || snap.Finished == 0 {
		t.Fatalf("tracer admitted/finished = %d/%d, want >0/>0", snap.Admitted, snap.Finished)
	}
	// Every flow classifies against an empty bank → every span ends in
	// "error" with the handshake's SNI and some assembly time attached.
	var sawError bool
	for _, sp := range snap.Recent {
		if sp.Verdict == "error" {
			sawError = true
			if sp.SNI == "" {
				t.Errorf("span %d: error verdict without SNI", sp.ID)
			}
			if sp.AssemblyNS <= 0 {
				t.Errorf("span %d: no assembly time", sp.ID)
			}
			if sp.ClassifyNS <= 0 {
				t.Errorf("span %d: no classify time", sp.ID)
			}
			if sp.Frames == 0 {
				t.Errorf("span %d: no frames counted", sp.ID)
			}
			if sp.Shard < 0 || sp.Shard > 1 {
				t.Errorf("span %d: shard = %d out of range", sp.ID, sp.Shard)
			}
			if sp.Flow == "" {
				t.Errorf("span %d: empty flow key", sp.ID)
			}
		}
	}
	if !sawError {
		t.Fatalf("no error-verdict span among %d recent spans", len(snap.Recent))
	}
}

// TestObserverOffIsInert pins that a pipeline without observer or tracer
// records nothing and spans never exist — the nil checks must keep the
// un-instrumented path identical to before this layer existed.
func TestObserverOffIsInert(t *testing.T) {
	bank := &Bank{models: map[bankKey]*Model{}}
	s := NewShardedWithConfig(bank, 2, Config{})
	g := tracegen.New(7)
	feedShardedFlow(t, s, g, "windows_chrome")
	s.Close()
	for _, rec := range s.Flows() {
		if rec.ClassifyNanos != 0 {
			t.Errorf("ClassifyNanos = %d without an observer, want 0", rec.ClassifyNanos)
		}
	}
}

// TestSpanVerdicts checks the terminal verdicts a span can carry: a
// classified flow's platform label (trained bank) and the evicted path.
func TestSpanVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("bank training is slow")
	}
	bank, _ := trainSmallBank(t, 31, 0.02)
	s, _, tr := observedSharded(bank, 1)
	g := tracegen.New(21)
	feedShardedFlow(t, s, g, "windows_chrome")
	s.Close()

	snap := tr.Snapshot(0)
	var classified *obs.Span
	for i := range snap.Recent {
		if snap.Recent[i].ClassifyNS > 0 {
			classified = &snap.Recent[i]
		}
	}
	if classified == nil {
		t.Fatal("no classified span recorded")
	}
	if classified.Verdict == "" || classified.Verdict == "error" {
		t.Fatalf("classified span verdict = %q", classified.Verdict)
	}
	if classified.ModelVersion != bank.Version {
		t.Errorf("span model version = %q, want %q", classified.ModelVersion, bank.Version)
	}
	if classified.SNI == "" {
		t.Error("classified span has no SNI")
	}

	// Classified flows carry their classification latency on the record.
	var sawNanos bool
	for _, rec := range s.Flows() {
		if rec.Classified && rec.ClassifyNanos > 0 {
			sawNanos = true
		}
	}
	if !sawNanos {
		t.Error("no classified record carries ClassifyNanos")
	}
}

// TestSpanEvictedVerdict forces cap eviction of a flow mid-handshake and
// checks its span finishes with the "evicted" verdict.
func TestSpanEvictedVerdict(t *testing.T) {
	bank := &Bank{models: map[bankKey]*Model{}}
	o := obs.NewPipelineObserver()
	tr := obs.NewTracer(obs.TracerConfig{SampleEvery: 1})
	p := NewWithConfig(bank, Config{MaxFlows: 1, Observer: o, Tracer: tr})
	g := tracegen.New(9)
	now := time.Now()
	for i, label := range []string{"windows_chrome", "macOS_safari"} {
		ft, err := g.Flow(label, fingerprint.Netflix, fingerprint.TCP, tracegen.FlowSpec{})
		if err != nil {
			t.Fatal(err)
		}
		// Feed only the first client frame so the flow stays mid-handshake,
		// then let the next flow's arrival evict it (MaxFlows: 1).
		if _, err := p.HandlePacket(now.Add(time.Duration(i)*time.Second), ft.Frames[0].Data); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Snapshot(0)
	var evicted bool
	for _, sp := range snap.Recent {
		if sp.Verdict == "evicted" {
			evicted = true
		}
	}
	if !evicted {
		t.Fatalf("no evicted-verdict span; recent = %+v", snap.Recent)
	}
}
