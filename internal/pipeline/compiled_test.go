package pipeline

import (
	"reflect"
	"testing"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/tracegen"
)

// goldenBank trains a small bank whose vocabularies deliberately do NOT
// cover the evaluation traffic (different generator seed, plus open-set
// drifted profiles), so unseen tokens exercise the miss-to-zero path.
func goldenBank(t *testing.T) *Bank {
	t.Helper()
	ds, err := tracegen.New(1).LabDataset(0.04, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bank, err := TrainBank(ds, TrainConfig{Forest: DefaultForestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return bank
}

func goldenEvalFlows(t *testing.T) []*tracegen.FlowTrace {
	t.Helper()
	fresh, err := tracegen.New(99).LabDataset(0.03, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Open-set flows carry version-drifted profiles: tokens the fitted
	// vocabularies have never seen.
	drifted, err := tracegen.New(42).OpenSetDataset(1)
	if err != nil {
		t.Fatal(err)
	}
	return append(fresh.Flows, drifted.Flows...)
}

// checkBankEquivalence pins, for every evaluation flow and every model in
// the bank, that the compiled fast path is element-identical to
// Encoder.Transform over extracted field values, and that ClassifyHandshake
// reproduces Classify byte for byte.
func checkBankEquivalence(t *testing.T, bank *Bank, flows []*tracegen.FlowTrace, tag string) {
	t.Helper()
	var sc ClassifyScratch
	for fi, ft := range flows {
		info, err := ExtractTrace(ft)
		if err != nil {
			t.Fatal(err)
		}
		v := features.Extract(info)
		for _, obj := range []Objective{PlatformObjective, DeviceObjective, AgentObjective} {
			m := bank.Model(ft.Provider, ft.Transport, obj)
			if m == nil {
				t.Fatalf("%s: no %s model for %s/%s", tag, obj, ft.Provider, ft.Transport)
			}
			ce := m.Compiled()
			if ce == nil {
				t.Fatalf("%s: encoder for %s/%s/%s did not compile", tag, ft.Provider, ft.Transport, obj)
			}
			want := m.Encoder.Transform(v)
			got := ce.Encode(info)
			if !reflect.DeepEqual(want, got) {
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s: flow %d (%s/%s/%s) column %d (%s): compiled %v, reference %v",
							tag, fi, ft.Provider, ft.Transport, obj, i, m.Encoder.Columns()[i].Name, got[i], want[i])
					}
				}
			}
		}

		ref, err := bank.Classify(ft.Provider, ft.Transport, v)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := bank.ClassifyHandshake(ft.Provider, ft.Transport, info, &sc)
		if err != nil {
			t.Fatal(err)
		}
		if fast != ref {
			t.Fatalf("%s: flow %d (%s): predictions diverge:\nfast: %+v\nref:  %+v",
				tag, fi, ft.Label, fast, ref)
		}
	}

	checkBatchEquivalence(t, bank, flows, tag)
}

// checkBatchEquivalence groups the evaluation flows per (provider,
// transport) and pins that one ClassifyBatch sweep reproduces every per-flow
// ClassifyHandshake prediction byte for byte — including PlatformMargin,
// which rides the same probability vector.
func checkBatchEquivalence(t *testing.T, bank *Bank, flows []*tracegen.FlowTrace, tag string) {
	t.Helper()
	type group struct {
		infos []*features.HandshakeInfo
		want  []Prediction
	}
	groups := map[entryKey]*group{}
	var sc ClassifyScratch
	for _, ft := range flows {
		info, err := ExtractTrace(ft)
		if err != nil {
			t.Fatal(err)
		}
		want, err := bank.ClassifyHandshake(ft.Provider, ft.Transport, info, &sc)
		if err != nil {
			t.Fatal(err)
		}
		k := entryKey{ft.Provider, ft.Transport}
		g := groups[k]
		if g == nil {
			g = &group{}
			groups[k] = g
		}
		g.infos = append(g.infos, info)
		g.want = append(g.want, want)
	}
	for k, g := range groups {
		if e := bank.entry(k.Provider, k.Transport); e == nil || !e.batchable() {
			t.Fatalf("%s: %s/%s entry is not batchable", tag, k.Provider, k.Transport)
		}
		out := make([]Prediction, len(g.infos))
		if err := bank.ClassifyBatch(k.Provider, k.Transport, g.infos, &sc, out); err != nil {
			t.Fatal(err)
		}
		for i, want := range g.want {
			if out[i] != want {
				t.Fatalf("%s: %s/%s batch flow %d diverges:\nbatch:    %+v\nper-flow: %+v",
					tag, k.Provider, k.Transport, i, out[i], want)
			}
		}
	}
}

func TestCompiledBankGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	flows := goldenEvalFlows(t)
	checkBankEquivalence(t, bank, flows, "fresh")

	// The three per-objective encoders are fitted on the same samples, so
	// the serving path must be sharing one compiled encode pass.
	for _, prov := range fingerprint.AllProviders() {
		for _, tr := range []fingerprint.Transport{fingerprint.TCP, fingerprint.QUIC} {
			e := bank.entry(prov, tr)
			if e == nil {
				continue
			}
			if e.shared == nil {
				t.Errorf("%s/%s: objectives do not share an encode pass", prov, tr)
			}
		}
	}

	// The contract must survive deployment: gob round-trip the bank (the
	// vptrain -> registry -> vpserve path) and re-pin everything.
	blob, err := bank.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Bank{}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	checkBankEquivalence(t, restored, flows, "gob-roundtrip")

	// And the two banks agree with each other.
	for _, ft := range flows[:20] {
		info, err := ExtractTrace(ft)
		if err != nil {
			t.Fatal(err)
		}
		a, err := bank.ClassifyHandshake(ft.Provider, ft.Transport, info, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.ClassifyHandshake(ft.Provider, ft.Transport, info, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("restored bank diverges on %s: %+v vs %+v", ft.Label, a, b)
		}
	}
}

// TestBankReloadRebuildsServingIndex pins that UnmarshalBinary into a Bank
// that has already classified (and so has a built entry index) rebuilds the
// index around the freshly decoded models instead of serving stale ones.
func TestBankReloadRebuildsServingIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	blob, err := goldenBank(t).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b := &Bank{}
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	ft, err := tracegen.New(7).Flow("windows_chrome", fingerprint.YouTube, fingerprint.TCP, tracegen.FlowSpec{PayloadFrames: 1})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ExtractTrace(ft)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ClassifyHandshake(fingerprint.YouTube, fingerprint.TCP, info, nil); err != nil {
		t.Fatal(err) // builds the lazy entry index
	}
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err) // in-place reload: new *Model instances
	}
	if _, err := b.ClassifyHandshake(fingerprint.YouTube, fingerprint.TCP, info, nil); err != nil {
		t.Fatal(err)
	}
	e := b.entry(fingerprint.YouTube, fingerprint.TCP)
	if e == nil || e.platform != b.Model(fingerprint.YouTube, fingerprint.TCP, PlatformObjective) {
		t.Fatal("serving index still points at the pre-reload models")
	}
}

// TestBankReloadRebuildsCompiledForests pins that an in-place reload (the
// hot-swap UnmarshalBinary path) rebuilds the compiled serving forests
// around the freshly decoded models: the entry's flat-array forests must
// belong to the post-reload models, not the pre-reload ones.
func TestBankReloadRebuildsCompiledForests(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	blob, err := goldenBank(t).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b := &Bank{}
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	old := b.entry(fingerprint.YouTube, fingerprint.TCP)
	if old == nil || !old.batchable() {
		t.Fatal("pre-reload entry did not compile")
	}
	oldModel := b.Model(fingerprint.YouTube, fingerprint.TCP, PlatformObjective)
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err) // in-place reload: new *Model instances
	}
	e := b.entry(fingerprint.YouTube, fingerprint.TCP)
	if e == nil || !e.batchable() {
		t.Fatal("post-reload entry did not compile")
	}
	m := b.Model(fingerprint.YouTube, fingerprint.TCP, PlatformObjective)
	if m == oldModel {
		t.Fatal("reload did not replace the models")
	}
	if e.cplatform != m.CompiledForest() {
		t.Error("serving index still carries the pre-reload compiled platform forest")
	}
	if e.cplatform == old.cplatform {
		t.Error("compiled platform forest was not rebuilt for the reloaded model")
	}
	fp := b.CompiledFootprint()
	if fp.CompiledModels != fp.Models || fp.Nodes == 0 || fp.Bytes == 0 {
		t.Errorf("post-reload footprint looks wrong: %+v", fp)
	}
}

// TestClassifyBatchZeroAlloc pins the batched serving budget: with warm
// scratch matrices, a whole-group encode+classify sweep allocates nothing.
func TestClassifyBatchZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	for _, tr := range []fingerprint.Transport{fingerprint.TCP, fingerprint.QUIC} {
		infos := make([]*features.HandshakeInfo, 0, 8)
		for i := 0; i < 8; i++ {
			ft, err := tracegen.New(uint64(20+i)).Flow("windows_chrome", fingerprint.YouTube, tr, tracegen.FlowSpec{PayloadFrames: 1})
			if err != nil {
				t.Fatal(err)
			}
			info, err := ExtractTrace(ft)
			if err != nil {
				t.Fatal(err)
			}
			infos = append(infos, info)
		}
		var sc ClassifyScratch
		out := make([]Prediction, len(infos))
		if err := bank.ClassifyBatch(fingerprint.YouTube, tr, infos, &sc, out); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := bank.ClassifyBatch(fingerprint.YouTube, tr, infos, &sc, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: ClassifyBatch allocates %.1f per call, want 0", tr, allocs)
		}
	}
}

// TestClassifyHandshakeZeroAlloc pins the serving-path budget: with a warm
// per-worker scratch, encode+predict allocates nothing.
func TestClassifyHandshakeZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	for _, tr := range []fingerprint.Transport{fingerprint.TCP, fingerprint.QUIC} {
		label := "windows_chrome"
		ft, err := tracegen.New(7).Flow(label, fingerprint.YouTube, tr, tracegen.FlowSpec{PayloadFrames: 1})
		if err != nil {
			t.Fatal(err)
		}
		info, err := ExtractTrace(ft)
		if err != nil {
			t.Fatal(err)
		}
		var sc ClassifyScratch
		if _, err := bank.ClassifyHandshake(ft.Provider, tr, info, &sc); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := bank.ClassifyHandshake(ft.Provider, tr, info, &sc); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: ClassifyHandshake allocates %.1f per call, want 0", tr, allocs)
		}
	}
}

// TestClassifyPartialZeroAlloc pins the degraded serving path: a partial
// HandshakeInfo with no ClientHello — the input ECH and 0-RTT flows present
// to the early-classification gate — must classify with zero allocations,
// since escalateEarly runs once per opaque frame on the hot path.
func TestClassifyPartialZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	info := &features.HandshakeInfo{QUIC: true, TTL: 52, InitPacketSize: 1252}
	var sc ClassifyScratch
	if _, err := bank.ClassifyHandshake(fingerprint.YouTube, fingerprint.QUIC, info, &sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := bank.ClassifyHandshake(fingerprint.YouTube, fingerprint.QUIC, info, &sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("partial-info ClassifyHandshake allocates %.1f per call, want 0", allocs)
	}
}

// benchBankAndFlow trains a bench bank and one QUIC YouTube flow.
func benchBankAndFlow(b *testing.B) (*Bank, *features.HandshakeInfo) {
	b.Helper()
	ds, err := tracegen.New(1).LabDataset(0.04, fingerprint.Options{})
	if err != nil {
		b.Fatal(err)
	}
	bank, err := TrainBank(ds, TrainConfig{Forest: DefaultForestConfig()})
	if err != nil {
		b.Fatal(err)
	}
	ft, err := tracegen.New(7).Flow("windows_chrome", fingerprint.YouTube, fingerprint.QUIC, tracegen.FlowSpec{PayloadFrames: 1})
	if err != nil {
		b.Fatal(err)
	}
	info, err := ExtractTrace(ft)
	if err != nil {
		b.Fatal(err)
	}
	return bank, info
}

// BenchmarkClassifyHandshake measures the per-flow serving path in its three
// forms: compiled flat-array forests (the production path), the pointer-walk
// reference (compiled index stripped), and the batched sweep (amortized
// per-flow cost at batch size 64). All must report 0 allocs/op.
func BenchmarkClassifyHandshake(b *testing.B) {
	b.Run("compiled", func(b *testing.B) {
		bank, info := benchBankAndFlow(b)
		var sc ClassifyScratch
		// Warm the lazily built entry index, compiled tables and scratch so
		// the timed region measures the steady state (0 allocs/op).
		if _, err := bank.ClassifyHandshake(fingerprint.YouTube, fingerprint.QUIC, info, &sc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bank.ClassifyHandshake(fingerprint.YouTube, fingerprint.QUIC, info, &sc); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("pointer-walk", func(b *testing.B) {
		bank, info := benchBankAndFlow(b)
		var sc ClassifyScratch
		if _, err := bank.ClassifyHandshake(fingerprint.YouTube, fingerprint.QUIC, info, &sc); err != nil {
			b.Fatal(err)
		}
		// Strip the compiled forests so prediction takes the reference
		// pointer-walk fallback — the pre-compilation baseline.
		e := bank.entry(fingerprint.YouTube, fingerprint.QUIC)
		e.cplatform, e.cdevice, e.cagent = nil, nil, nil
		if _, err := bank.ClassifyHandshake(fingerprint.YouTube, fingerprint.QUIC, info, &sc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bank.ClassifyHandshake(fingerprint.YouTube, fingerprint.QUIC, info, &sc); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batch", func(b *testing.B) {
		bank, info := benchBankAndFlow(b)
		const batch = 64
		infos := make([]*features.HandshakeInfo, batch)
		for i := range infos {
			infos[i] = info
		}
		var sc ClassifyScratch
		out := make([]Prediction, batch)
		if err := bank.ClassifyBatch(fingerprint.YouTube, fingerprint.QUIC, infos, &sc, out); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bank.ClassifyBatch(fingerprint.YouTube, fingerprint.QUIC, infos, &sc, out); err != nil {
				b.Fatal(err)
			}
		}
		// ns/flow comparability with the per-flow variants.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/flow")
	})

	b.Run("partial", func(b *testing.B) {
		// The degraded tier: no ClientHello, only transport-visible features —
		// what ECH/0-RTT early classification pays per escalation attempt.
		bank, _ := benchBankAndFlow(b)
		info := &features.HandshakeInfo{QUIC: true, TTL: 52, InitPacketSize: 1252}
		var sc ClassifyScratch
		if _, err := bank.ClassifyHandshake(fingerprint.YouTube, fingerprint.QUIC, info, &sc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bank.ClassifyHandshake(fingerprint.YouTube, fingerprint.QUIC, info, &sc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
