package pipeline

import (
	"testing"

	"videoplat/internal/features"
	"videoplat/internal/fingerprint"
	"videoplat/internal/tracegen"
)

// scenarioEvalFlows renders the adversarial scenario families that still
// yield a parseable handshake: ECH hellos over both transports, mid-stream
// migration, and mid-handshake migration (the ClientHello split across two
// Initials, reassembled by the CRYPTO-offset path). 0-RTT flows have no
// hello at all and are covered by the partial-info sweep below.
func scenarioEvalFlows(t *testing.T) []*tracegen.FlowTrace {
	t.Helper()
	g := tracegen.New(1234)
	var out []*tracegen.FlowTrace
	add := func(label string, prov fingerprint.Provider, tr fingerprint.Transport, spec tracegen.FlowSpec) {
		ft, err := g.Flow(label, prov, tr, spec)
		if err != nil {
			t.Fatalf("rendering %s/%s: %v", label, prov, err)
		}
		out = append(out, ft)
	}
	for _, prov := range fingerprint.AllProviders() {
		add("windows_chrome", prov, fingerprint.TCP,
			tracegen.FlowSpec{Options: fingerprint.Options{ECH: true}, PayloadFrames: 1})
	}
	// QUIC carries video for YouTube only (Fig 12a), so the QUIC scenarios
	// sweep platforms instead of providers.
	for _, label := range []string{"android_chrome", "iOS_chrome", "windows_chrome"} {
		add(label, fingerprint.YouTube, fingerprint.QUIC,
			tracegen.FlowSpec{Options: fingerprint.Options{ECH: true}, PayloadFrames: 1})
		add(label, fingerprint.YouTube, fingerprint.QUIC,
			tracegen.FlowSpec{Options: fingerprint.Options{Migration: true}, PayloadFrames: 2})
		add(label, fingerprint.YouTube, fingerprint.QUIC,
			tracegen.FlowSpec{Options: fingerprint.Options{Migration: true}, MigrateMidHandshake: true, PayloadFrames: 2})
	}
	add("macOS_chrome", fingerprint.YouTube, fingerprint.QUIC,
		tracegen.FlowSpec{Options: fingerprint.Options{ECH: true, Migration: true}, PayloadFrames: 1})
	return out
}

// TestScenarioGoldenEquivalence extends the compiled-vs-reference golden
// sweep (encoders, forests, batch path) to the adversarial scenario
// families: the serving fast path must stay element-identical to the
// reference encode+classify on ECH and migrated flows, including hellos
// reassembled from split CRYPTO.
func TestScenarioGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	flows := scenarioEvalFlows(t)
	for _, ft := range flows {
		if info, err := ExtractTrace(ft); err != nil {
			t.Fatalf("%s/%s did not yield a handshake: %v", ft.Label, ft.Provider, err)
		} else if info.Hello == nil {
			t.Fatalf("%s/%s extracted without a hello", ft.Label, ft.Provider)
		}
	}
	checkBankEquivalence(t, bank, flows, "scenario")
}

// TestPartialInfoGoldenEquivalence pins the degraded-classification input:
// a 0-RTT flow yields a HandshakeInfo with no ClientHello at all, and the
// compiled encoder must agree with the reference Transform on that partial
// evidence for every provider and objective — the prediction the ECH/0-RTT
// margin gate judges.
func TestPartialInfoGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a bank")
	}
	bank := goldenBank(t)
	partials := []*features.HandshakeInfo{
		{QUIC: true, TTL: 52, InitPacketSize: 1252},
		{QUIC: true, TTL: 61, InitPacketSize: 1357},
		{TCPFlags: 0x02, TCPWindow: 64240, TCPMSS: 1460, TCPWScale: 8, TCPSACK: true, TTL: 118},
	}
	var sc ClassifyScratch
	for _, prov := range fingerprint.AllProviders() {
		for _, info := range partials {
			tr := fingerprint.TCP
			if info.QUIC {
				if prov != fingerprint.YouTube {
					continue // only YouTube serves video over QUIC
				}
				tr = fingerprint.QUIC
			}
			v := features.Extract(info)
			ref, err := bank.Classify(prov, tr, v)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := bank.ClassifyHandshake(prov, tr, info, &sc)
			if err != nil {
				t.Fatal(err)
			}
			if fast != ref {
				t.Fatalf("%s/%s: partial-info predictions diverge:\nfast: %+v\nref:  %+v", prov, tr, fast, ref)
			}
		}
	}
}
