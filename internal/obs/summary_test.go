package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// TestSummaryMergeEquivalence verifies that summarizing two halves and
// merging equals summarizing the whole — the property window downsampling
// (1m buckets folded into 10m) depends on.
func TestSummaryMergeEquivalence(t *testing.T) {
	var whole, a, b Summary
	for i := 1; i <= 2000; i++ {
		d := time.Duration(i) * time.Microsecond
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	var merged Summary
	merged.Merge(&a)
	merged.Merge(&b)
	if merged.Count != whole.Count || merged.SumNS != whole.SumNS || merged.MaxNS != whole.MaxNS {
		t.Fatalf("merged scalars %+v != whole %+v", merged, whole)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		if mq, wq := merged.Quantile(q), whole.Quantile(q); mq != wq {
			t.Fatalf("Quantile(%v): merged %v != whole %v", q, mq, wq)
		}
	}
}

// TestSummaryJSONRoundTrip confirms a summary survives the JSONL persistence
// path bit-exact: quantiles before and after marshalling agree.
func TestSummaryJSONRoundTrip(t *testing.T) {
	var s Summary
	for i := 1; i <= 500; i++ {
		s.Observe(time.Duration(i*i) * time.Microsecond)
	}
	raw, err := json.Marshal(&s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Count != s.Count || back.SumNS != s.SumNS || back.MaxNS != s.MaxNS {
		t.Fatalf("round trip scalars changed: %+v != %+v", back, s)
	}
	for _, q := range []float64{0.5, 0.99} {
		if back.Quantile(q) != s.Quantile(q) {
			t.Fatalf("Quantile(%v) changed across round trip", q)
		}
	}
}

func TestSummaryCloneIndependence(t *testing.T) {
	var s Summary
	s.Observe(time.Millisecond)
	c := s.Clone()
	c.Observe(2 * time.Millisecond)
	if s.Count != 1 || c.Count != 2 {
		t.Fatalf("clone not independent: orig %d, clone %d", s.Count, c.Count)
	}
	var nilSum *Summary
	if nilSum.Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
	if nilSum.Quantile(0.99) != 0 || nilSum.Mean() != 0 {
		t.Fatal("nil summary quantile/mean should be zero")
	}
}

func TestSummaryQuantileClampsToMax(t *testing.T) {
	var s Summary
	s.Observe(100 * time.Microsecond)
	// A single sample's p99 is that sample, not its bucket's upper bound.
	if got := s.Quantile(0.99); got != 100*time.Microsecond {
		t.Fatalf("Quantile(0.99) = %v, want 100us exactly (clamped to max)", got)
	}
}
