// Package obs is the pipeline's latency observability layer: lock-free
// log-linear latency histograms cheap enough to record inside the
// zero-allocation ingest and classification fast paths, sampled
// flow-lifecycle tracing with slow-flow exemplars, and runtime
// introspection snapshots (goroutines, GC, heap) for the operations API.
//
// The package sits below pipeline, telemetry and server and imports none of
// them, so every layer of the serving spine can record into it without
// cycles. Recording is wait-free (atomic adds on fixed arrays) and performs
// no allocation, pinned by TestRecordZeroAlloc and BenchmarkRecordLatency.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: log-linear, HDR-histogram style. Values below 2^subBits
// nanoseconds get exact one-nanosecond buckets; above that, every power-of-
// two octave is split into 2^subBits linear sub-buckets, giving a worst-case
// relative error of 2^-subBits (~3%) across the whole range. The top bucket
// absorbs everything at or above 2^(maxExp+1) ns (~18 minutes), far beyond
// any latency a packet pipeline stage can legitimately exhibit.
const (
	subBits = 5 // 32 sub-buckets per octave: ~3% worst-case resolution
	maxExp  = 39
	// NumBuckets is the fixed bucket count shared by Histogram and Summary.
	NumBuckets = (maxExp-subBits+1)<<subBits + (1 << subBits)
)

// bucketIndex maps a non-negative nanosecond value to its bucket. Values
// beyond the top bucket's range clamp into it.
func bucketIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	v := uint64(ns)
	if v < 1<<subBits {
		return int(v)
	}
	e := bits.Len64(v) - 1
	if e > maxExp {
		return NumBuckets - 1
	}
	return (e-subBits+1)<<subBits + int((v>>uint(e-subBits))&(1<<subBits-1))
}

// BucketUpperBound returns the largest nanosecond value bucket i holds —
// the value quantile estimation reports, so estimates always bound the true
// latency from above.
func BucketUpperBound(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	e := i>>subBits + subBits - 1
	sub := int64(i & (1<<subBits - 1))
	width := int64(1) << uint(e-subBits)
	return int64(1)<<uint(e) + (sub+1)*width - 1
}

// Histogram is a fixed-size, lock-free latency histogram: every bucket is
// an atomic counter, so Record is wait-free and allocation-free from any
// number of goroutines, and Snapshot reads a consistent-enough view without
// stopping writers (bucket sums are monotonic; a snapshot racing a Record
// may miss the in-flight sample but never sees torn state).
//
// The zero value is ready to use. All exported methods are nil-receiver
// safe, so call sites holding a possibly-nil *Histogram (e.g. from
// PipelineObserver.Stage) need no pointer check.
//
//vp:nilsafe
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// Record adds one latency sample. 0 allocs/op, safe from any goroutine,
// no-op on a nil receiver.
//
//vp:hotpath
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot captures the histogram's current contents. The total count is
// derived from the bucket counts themselves, so quantiles computed from a
// snapshot are always internally consistent even while writers race. A nil
// receiver yields an empty snapshot.
func (h *Histogram) Snapshot() *Snapshot {
	if h == nil {
		return &Snapshot{}
	}
	s := &Snapshot{counts: make([]uint64, NumBuckets)}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Snapshot is a point-in-time copy of a Histogram, safe to read at leisure.
type Snapshot struct {
	// Count is the number of recorded samples (the sum of all buckets).
	Count uint64
	// Sum is the total recorded nanoseconds (may transiently lag Count
	// while writers race; use Mean for the derived value).
	Sum int64
	// Max is the largest recorded sample in nanoseconds (exact, not
	// bucket-quantized).
	Max int64

	counts []uint64
}

// Quantile returns the q-quantile (0 < q <= 1) as a duration, estimated at
// the containing bucket's upper bound so it never under-reports. Zero
// samples yield zero.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			ub := BucketUpperBound(i)
			if ub > s.Max && s.Max > 0 {
				ub = s.Max // never report past the observed maximum
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(s.Max)
}

// Mean returns the mean recorded latency.
func (s *Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}
