package obs

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries checks the log-linear mapping is monotone, exact
// below 2^subBits, continuous across octave boundaries, and that every
// bucket's upper bound maps back to the same bucket.
func TestBucketBoundaries(t *testing.T) {
	// Exact region: one bucket per nanosecond.
	for v := int64(0); v < 1<<subBits; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
	}
	// Monotone non-decreasing over a dense sweep plus octave edges.
	prev := -1
	for v := int64(0); v < 1<<12; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
	for _, v := range []int64{31, 32, 33, 63, 64, 65, 127, 128, 1 << 20, 1<<20 + 1} {
		lo, hi := bucketIndex(v-1), bucketIndex(v)
		if hi-lo > 1 {
			t.Fatalf("bucket gap at %d: %d -> %d", v, lo, hi)
		}
	}
	// Round trip: upper bound of each bucket lands in that bucket, and the
	// next nanosecond lands in the next.
	for i := 0; i < NumBuckets-1; i++ {
		ub := BucketUpperBound(i)
		if got := bucketIndex(ub); got != i {
			t.Fatalf("bucketIndex(BucketUpperBound(%d)=%d) = %d", i, ub, got)
		}
		if got := bucketIndex(ub + 1); got != i+1 {
			t.Fatalf("bucketIndex(%d+1) = %d, want %d", ub, got, i+1)
		}
	}
	// Clamping: negative to bucket 0, beyond-range to the top bucket.
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0", got)
	}
	if got := bucketIndex(1 << 62); got != NumBuckets-1 {
		t.Fatalf("bucketIndex(1<<62) = %d, want %d", got, NumBuckets-1)
	}
}

// TestBucketResolution verifies the ~3% relative-error contract: each
// bucket's width is at most 2^-subBits of its lower bound.
func TestBucketResolution(t *testing.T) {
	for i := 1 << subBits; i < NumBuckets; i++ {
		lo := BucketUpperBound(i-1) + 1
		hi := BucketUpperBound(i)
		if width := hi - lo + 1; float64(width) > float64(lo)/float64(1<<subBits)+1 {
			t.Fatalf("bucket %d [%d,%d] wider than resolution contract", i, lo, hi)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 microseconds, one sample each.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if s.Max != int64(1000*time.Microsecond) {
		t.Fatalf("Max = %d, want %d", s.Max, int64(1000*time.Microsecond))
	}
	check := func(q, want float64) {
		got := s.Quantile(q).Seconds() * 1e6 // microseconds
		if got < want*0.97 || got > want*1.07 {
			t.Fatalf("Quantile(%v) = %.1fus, want ~%.0fus", q, got, want)
		}
	}
	check(0.50, 500)
	check(0.90, 900)
	check(0.99, 990)
	if mean := s.Mean().Seconds() * 1e6; mean < 480 || mean > 520 {
		t.Fatalf("Mean = %.1fus, want ~500us", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Max != 0 {
		t.Fatalf("empty histogram snapshot not zero: %+v", s)
	}
}

// TestHistogramConcurrent hammers Record from many goroutines (meaningful
// under -race) and checks no samples are lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*per+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	if s.Max != int64(workers*per-1) {
		t.Fatalf("Max = %d, want %d", s.Max, workers*per-1)
	}
}

// TestSnapshotRecordInterleaving snapshots continuously while a writer
// records; every snapshot must be internally consistent (count equals the
// bucket sum by construction, quantiles never exceed max-so-far bucket) and
// counts must be monotone across snapshots.
func TestSnapshotRecordInterleaving(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			h.Record(time.Duration(i%1000) * time.Microsecond)
		}
	}()
	var prev uint64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count < prev {
			t.Fatalf("snapshot count regressed: %d -> %d", prev, s.Count)
		}
		prev = s.Count
		if s.Count > 0 {
			if q := s.Quantile(1.0); int64(q) > BucketUpperBound(NumBuckets-1) {
				t.Fatalf("quantile out of range: %v", q)
			}
		}
	}
	<-done
	if s := h.Snapshot(); s.Count != 20000 {
		t.Fatalf("final count = %d, want 20000", s.Count)
	}
}

// TestRecordZeroAlloc pins the tentpole contract: recording into a
// histogram, and into every stage of a PipelineObserver, allocates nothing.
func TestRecordZeroAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(123 * time.Microsecond) }); n != 0 {
		t.Fatalf("Histogram.Record allocates %.1f/op, want 0", n)
	}
	o := NewPipelineObserver()
	if n := testing.AllocsPerRun(1000, func() {
		for s := 0; s < NumStages; s++ {
			o.Record(Stage(s), 42*time.Microsecond)
		}
	}); n != 0 {
		t.Fatalf("PipelineObserver.Record allocates %.1f/op, want 0", n)
	}
}

func TestStageStats(t *testing.T) {
	o := NewPipelineObserver()
	o.Record(StageClassify, 2*time.Millisecond)
	o.Record(StageClassify, 4*time.Millisecond)
	stats := o.StageStats()
	if len(stats) != NumStages {
		t.Fatalf("len(StageStats) = %d, want %d", len(stats), NumStages)
	}
	var cl StageStats
	for _, st := range stats {
		if st.Stage == "classify" {
			cl = st
		}
	}
	if cl.Count != 2 {
		t.Fatalf("classify count = %d, want 2", cl.Count)
	}
	if cl.MaxMs < 3.9 || cl.MaxMs > 4.1 {
		t.Fatalf("classify max = %.2fms, want ~4ms", cl.MaxMs)
	}
	if cl.P99Ms < cl.P50Ms {
		t.Fatalf("p99 (%.3f) < p50 (%.3f)", cl.P99Ms, cl.P50Ms)
	}
	// Nil observer: no-ops and nil stats.
	var nilObs *PipelineObserver
	nilObs.Record(StageDecode, time.Millisecond)
	if nilObs.StageStats() != nil {
		t.Fatal("nil observer StageStats should be nil")
	}
}

// BenchmarkRecordLatency is the CI-pinned hot-path benchmark: one histogram
// record per op, required to report 0 allocs/op.
func BenchmarkRecordLatency(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i&0xFFFFF) * time.Nanosecond)
	}
}

// BenchmarkRecordLatencyParallel exercises contended recording across
// goroutines, the shape shard workers produce.
func BenchmarkRecordLatencyParallel(b *testing.B) {
	o := NewPipelineObserver()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			o.Record(Stage(i%NumStages), time.Duration(i&0xFFFF)*time.Nanosecond)
			i++
		}
	})
}
