package obs

import (
	"runtime"
	"runtime/debug"
)

// RuntimeStats is a point-in-time snapshot of the Go runtime's health
// signals, surfaced in /stats and /metrics so operators can correlate
// latency shifts with GC pressure or goroutine leaks.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// GOMAXPROCS is the scheduler's processor limit.
	GOMAXPROCS int `json:"gomaxprocs"`
	// HeapAllocBytes/HeapSysBytes are live heap bytes and heap bytes
	// obtained from the OS.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	// HeapObjects is the live object count.
	HeapObjects uint64 `json:"heap_objects"`
	// NumGC is the completed GC cycle count; PauseTotalMs is cumulative
	// stop-the-world pause time; LastPauseMs is the most recent pause.
	NumGC        uint32  `json:"num_gc"`
	PauseTotalMs float64 `json:"gc_pause_total_ms"`
	LastPauseMs  float64 `json:"gc_last_pause_ms"`
	// NextGCBytes is the heap size target for the next GC cycle.
	NextGCBytes uint64 `json:"next_gc_bytes"`
}

// ReadRuntimeStats snapshots the runtime. It calls runtime.ReadMemStats,
// which briefly stops the world — fine at /stats scrape cadence, not for
// per-packet paths.
func ReadRuntimeStats() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	rs := RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		HeapAllocBytes: m.HeapAlloc,
		HeapSysBytes:   m.HeapSys,
		HeapObjects:    m.HeapObjects,
		NumGC:          m.NumGC,
		PauseTotalMs:   float64(m.PauseTotalNs) / 1e6,
		NextGCBytes:    m.NextGC,
	}
	if m.NumGC > 0 {
		rs.LastPauseMs = float64(m.PauseNs[(m.NumGC+255)%256]) / 1e6
	}
	return rs
}

// BuildInfo identifies the running binary for /stats config echo.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version,omitempty"`
	// VCSRevision/VCSTime/VCSModified are embedded VCS stamps when the
	// binary was built inside a checkout.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// ReadBuildInfo extracts build identification from the binary's embedded
// module info.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRevision = s.Value
		case "vcs.time":
			bi.VCSTime = s.Value
		case "vcs.modified":
			bi.VCSModified = s.Value == "true"
		}
	}
	return bi
}
