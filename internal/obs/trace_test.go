package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTracerSamplingDeterminism checks the 1-in-N contract: exactly the 1st,
// (N+1)th, (2N+1)th... offered flows are admitted.
func TestTracerSamplingDeterminism(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 4})
	var admitted []int
	for i := 0; i < 20; i++ {
		if sp := tr.Admit(); sp != nil {
			admitted = append(admitted, i)
			tr.Finish(sp)
		}
	}
	want := []int{0, 4, 8, 12, 16}
	if len(admitted) != len(want) {
		t.Fatalf("admitted %v, want %v", admitted, want)
	}
	for i := range want {
		if admitted[i] != want[i] {
			t.Fatalf("admitted %v, want %v", admitted, want)
		}
	}
	snap := tr.Snapshot(0)
	if snap.Offered != 20 || snap.Admitted != 5 || snap.Finished != 5 {
		t.Fatalf("counters offered=%d admitted=%d finished=%d, want 20/5/5",
			snap.Offered, snap.Admitted, snap.Finished)
	}
}

func TestTracerSampleEveryOne(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, Ring: 8})
	for i := 0; i < 5; i++ {
		sp := tr.Admit()
		if sp == nil {
			t.Fatalf("SampleEvery=1 must admit every flow (flow %d)", i)
		}
		tr.Finish(sp)
	}
}

func TestTracerDisabled(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: -1})
	if sp := tr.Admit(); sp != nil {
		t.Fatal("disabled tracer admitted a span")
	}
	var nilTr *Tracer
	if sp := nilTr.Admit(); sp != nil {
		t.Fatal("nil tracer admitted a span")
	}
	nilTr.Finish(nil) // must not panic
	if snap := nilTr.Snapshot(10); snap.Admitted != 0 {
		t.Fatal("nil tracer snapshot not zero")
	}
}

// TestTracerSlowestRetention finishes spans with controlled durations
// (Admitted back-dated, so TotalNS is deterministic without sleeping) and
// checks the slowest-K set keeps exactly the K largest, sorted descending,
// while the ring keeps the most recent regardless of duration.
func TestTracerSlowestRetention(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, Ring: 4, Slowest: 3})
	// Durations in ms: 5, 1, 9, 3, 7, 2, 8 → slowest 3 = 9, 8, 7.
	for _, ms := range []int64{5, 1, 9, 3, 7, 2, 8} {
		sp := tr.Admit()
		sp.Admitted = time.Now().Add(-time.Duration(ms) * time.Millisecond)
		tr.Finish(sp)
	}
	snap := tr.Snapshot(0)
	if len(snap.Slowest) != 3 {
		t.Fatalf("len(Slowest) = %d, want 3", len(snap.Slowest))
	}
	approxMs := func(ns int64) int64 { return (ns + int64(time.Millisecond)/2) / int64(time.Millisecond) }
	got := []int64{approxMs(snap.Slowest[0].TotalNS), approxMs(snap.Slowest[1].TotalNS), approxMs(snap.Slowest[2].TotalNS)}
	if got[0] != 9 || got[1] != 8 || got[2] != 7 {
		t.Fatalf("slowest = %v ms, want [9 8 7]", got)
	}
	// Ring keeps the last 4 finished, newest first: 8, 2, 7, 3.
	if len(snap.Recent) != 4 {
		t.Fatalf("len(Recent) = %d, want 4", len(snap.Recent))
	}
	recent := []int64{approxMs(snap.Recent[0].TotalNS), approxMs(snap.Recent[1].TotalNS),
		approxMs(snap.Recent[2].TotalNS), approxMs(snap.Recent[3].TotalNS)}
	if recent[0] != 8 || recent[1] != 2 || recent[2] != 7 || recent[3] != 3 {
		t.Fatalf("recent = %v ms, want [8 2 7 3]", recent)
	}
}

// TestTracerSpanReuse ensures pooled spans come back clean: a recycled span
// must not leak the previous flow's fields.
func TestTracerSpanReuse(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1})
	sp := tr.Admit()
	sp.SNI = "video.example.com"
	sp.Frames = 7
	sp.Verdict = "roku"
	tr.Finish(sp)
	sp2 := tr.Admit()
	if sp2.SNI != "" || sp2.Frames != 0 || sp2.Verdict != "" {
		t.Fatalf("recycled span not reset: %+v", sp2)
	}
	if sp2.ID != 2 {
		t.Fatalf("span ID = %d, want 2", sp2.ID)
	}
	tr.Finish(sp2)
}

// TestTracerConcurrent exercises Admit/Finish/Snapshot from many goroutines
// under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 2, Ring: 64, Slowest: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if sp := tr.Admit(); sp != nil {
					sp.Frames = i
					tr.Finish(sp)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Snapshot(16)
		}
	}()
	wg.Wait()
	<-done
	snap := tr.Snapshot(0)
	if snap.Offered != 16000 {
		t.Fatalf("offered = %d, want 16000", snap.Offered)
	}
	if snap.Admitted != 8000 || snap.Finished != 8000 {
		t.Fatalf("admitted/finished = %d/%d, want 8000/8000", snap.Admitted, snap.Finished)
	}
	if len(snap.Recent) != 64 || len(snap.Slowest) != 8 {
		t.Fatalf("recent/slowest lens = %d/%d, want 64/8", len(snap.Recent), len(snap.Slowest))
	}
}

func TestRuntimeAndBuildInfo(t *testing.T) {
	rs := ReadRuntimeStats()
	if rs.Goroutines < 1 || rs.GOMAXPROCS < 1 || rs.HeapAllocBytes == 0 {
		t.Fatalf("implausible runtime stats: %+v", rs)
	}
	bi := ReadBuildInfo()
	if bi.GoVersion == "" {
		t.Fatal("build info missing Go version")
	}
}
