package obs

import (
	"math"
	"time"
)

// Summary is a mergeable, JSON-serializable latency digest for embedding in
// telemetry windows: the same log-linear bucket layout as Histogram, stored
// sparsely so idle windows cost nothing on the wire. Unlike Histogram it is
// not safe for concurrent use — it lives inside structures that already
// serialize access (a rollup window behind its mutex).
type Summary struct {
	// Count is the number of observed samples.
	Count uint64 `json:"count"`
	// SumNS/MaxNS are total and maximum observed nanoseconds.
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
	// Buckets maps log-linear bucket index (see BucketUpperBound) to sample
	// count, holding only non-empty buckets.
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// Observe folds one latency sample into the summary.
//
//vp:hotpath
func (s *Summary) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	if s.Buckets == nil {
		s.Buckets = make(map[int]uint64) //vp:allocok lazy one-time init per window
	}
	s.Buckets[bucketIndex(ns)]++
	s.Count++
	s.SumNS += ns
	if ns > s.MaxNS {
		s.MaxNS = ns
	}
}

// Merge folds other into s. Bucket counts add, so quantiles of the merged
// summary equal quantiles of the union of samples (to bucket resolution).
func (s *Summary) Merge(other *Summary) {
	if other == nil || other.Count == 0 {
		return
	}
	if s.Buckets == nil {
		s.Buckets = make(map[int]uint64, len(other.Buckets))
	}
	for i, c := range other.Buckets {
		s.Buckets[i] += c
	}
	s.Count += other.Count
	s.SumNS += other.SumNS
	if other.MaxNS > s.MaxNS {
		s.MaxNS = other.MaxNS
	}
}

// Clone returns a deep copy (nil in, nil out).
func (s *Summary) Clone() *Summary {
	if s == nil {
		return nil
	}
	c := *s
	if s.Buckets != nil {
		c.Buckets = make(map[int]uint64, len(s.Buckets))
		for i, n := range s.Buckets {
			c.Buckets[i] = n
		}
	}
	return &c
}

// Quantile returns the q-quantile (0 < q <= 1) as a duration, reported at
// the containing bucket's upper bound, clamped to the observed maximum.
// Zero samples (or a nil summary) yield zero.
func (s *Summary) Quantile(q float64) time.Duration {
	if s == nil || s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		c, ok := s.Buckets[i]
		if !ok {
			continue
		}
		cum += c
		if cum >= rank {
			ub := BucketUpperBound(i)
			if ub > s.MaxNS && s.MaxNS > 0 {
				ub = s.MaxNS
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(s.MaxNS)
}

// Mean returns the mean observed latency (zero for an empty or nil summary).
func (s *Summary) Mean() time.Duration {
	if s == nil || s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}
