package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one sampled flow's lifecycle record: where it was processed, how
// long each stage took, and how it resolved. Stage durations are cumulative
// over the flow's whole life (a flow assembles its handshake across several
// frames), not per-frame.
type Span struct {
	// ID is the span's admission sequence number (1-based, monotonic).
	ID uint64 `json:"id"`
	// Flow is the canonical flow key in printable form.
	Flow string `json:"flow"`
	// Shard is the shard worker that owned the flow.
	Shard int `json:"shard"`
	// QueueDepth is the shard's inbox occupancy observed when the flow was
	// admitted on its shard — the back-pressure the flow was born into.
	QueueDepth int `json:"queue_depth"`
	// FirstPacket is the flow's first frame timestamp in trace time;
	// Admitted/Finished are wall-clock processing times.
	FirstPacket time.Time `json:"first_packet"`
	Admitted    time.Time `json:"admitted"`
	Finished    time.Time `json:"finished"`
	// Frames counts frames processed for the flow while the span was live.
	Frames int `json:"frames"`
	// QueueWaitNS/AssemblyNS/ClassifyNS are cumulative per-stage
	// nanoseconds; TotalNS is admission to finish, wall clock.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	AssemblyNS  int64 `json:"assembly_ns"`
	ClassifyNS  int64 `json:"classify_ns"`
	TotalNS     int64 `json:"total_ns"`
	// SNI is the flow's server name, once seen.
	SNI string `json:"sni,omitempty"`
	// ModelVersion is the registry version of the bank that classified the
	// flow (empty if never classified).
	ModelVersion string `json:"model_version,omitempty"`
	// Verdict is the terminal outcome: a platform label, "unknown",
	// "not-video", "no-handshake", "oversized", or "evicted".
	Verdict string `json:"verdict"`
}

// TracerConfig tunes a Tracer.
type TracerConfig struct {
	// SampleEvery admits every Nth flow (1 = every flow; default 256;
	// <0 disables sampling entirely).
	SampleEvery int
	// Ring is how many finished spans the recent-history ring retains
	// (default 256).
	Ring int
	// Slowest is how many slowest-by-total-duration spans are retained
	// separately as exemplars (default 16).
	Slowest int
}

// Tracer samples flow lifecycles deterministically (every Nth admitted
// flow), pools span records so steady-state tracing does not allocate, and
// retains finished spans in a bounded ring plus a separate slowest-K set.
// Admit/Finish are safe from concurrent shard workers and no-ops on a nil
// receiver, so an untraced deployment passes a nil *Tracer straight through.
//
//vp:nilsafe
type Tracer struct {
	every   int
	ringCap int
	slowCap int

	seq      atomic.Uint64 // flows offered (drives sampling)
	admitted atomic.Uint64
	finished atomic.Uint64
	pool     sync.Pool

	mu      sync.Mutex
	ring    []Span // most recent last, up to ringCap
	slowest []Span // sorted by TotalNS descending, up to slowCap
}

// NewTracer returns a tracer with cfg's sampling and retention. Zero-valued
// fields take the TracerConfig defaults.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 256
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.Slowest <= 0 {
		cfg.Slowest = 16
	}
	t := &Tracer{every: cfg.SampleEvery, ringCap: cfg.Ring, slowCap: cfg.Slowest}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Admit offers one new flow to the sampler and returns a span if the flow is
// selected, nil otherwise (including on a nil tracer or non-positive sample
// rate). Selection is deterministic: the 1st, (N+1)th, (2N+1)th... offered
// flows are sampled. The returned span is pooled; callers must hand it back
// through Finish exactly once.
func (t *Tracer) Admit() *Span {
	if t == nil || t.every < 0 {
		return nil
	}
	n := t.seq.Add(1)
	if (n-1)%uint64(t.every) != 0 {
		return nil
	}
	sp := t.pool.Get().(*Span)
	*sp = Span{ID: t.admitted.Add(1), Admitted: time.Now()}
	return sp
}

// Finish stamps the span's end time, copies it into the ring and (if slow
// enough) the slowest-K set, and returns it to the pool. The span must not
// be used after Finish. Nil tracer or span is a no-op.
func (t *Tracer) Finish(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	sp.Finished = time.Now()
	sp.TotalNS = sp.Finished.Sub(sp.Admitted).Nanoseconds()
	t.finished.Add(1)

	t.mu.Lock()
	if len(t.ring) == t.ringCap {
		copy(t.ring, t.ring[1:])
		t.ring[len(t.ring)-1] = *sp
	} else {
		t.ring = append(t.ring, *sp)
	}
	if len(t.slowest) < t.slowCap || sp.TotalNS > t.slowest[len(t.slowest)-1].TotalNS {
		if len(t.slowest) == t.slowCap {
			t.slowest = t.slowest[:len(t.slowest)-1]
		}
		i := sort.Search(len(t.slowest), func(i int) bool {
			return t.slowest[i].TotalNS < sp.TotalNS
		})
		t.slowest = append(t.slowest, Span{})
		copy(t.slowest[i+1:], t.slowest[i:])
		t.slowest[i] = *sp
	}
	t.mu.Unlock()

	*sp = Span{}
	t.pool.Put(sp)
}

// TraceSnapshot is the tracer's state as served by /trace.
type TraceSnapshot struct {
	// SampleEvery echoes the sampling rate (1-in-N).
	SampleEvery int `json:"sample_every"`
	// Offered/Admitted/Finished count flows seen by the sampler, spans
	// started, and spans completed.
	Offered  uint64 `json:"offered"`
	Admitted uint64 `json:"admitted"`
	Finished uint64 `json:"finished"`
	// Recent holds the most recently finished spans, newest first.
	Recent []Span `json:"recent"`
	// Slowest holds the slowest finished spans by total duration,
	// slowest first.
	Slowest []Span `json:"slowest"`
}

// Snapshot copies out tracer state. limit caps Recent (<=0 = the whole
// ring); Slowest is always complete. Nil tracer yields a zero snapshot.
func (t *Tracer) Snapshot(limit int) TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	snap := TraceSnapshot{
		SampleEvery: t.every,
		Offered:     t.seq.Load(),
		Admitted:    t.admitted.Load(),
		Finished:    t.finished.Load(),
	}
	t.mu.Lock()
	n := len(t.ring)
	if limit > 0 && limit < n {
		n = limit
	}
	snap.Recent = make([]Span, n)
	for i := 0; i < n; i++ { // newest first
		snap.Recent[i] = t.ring[len(t.ring)-1-i]
	}
	snap.Slowest = append([]Span(nil), t.slowest...)
	t.mu.Unlock()
	return snap
}
