package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

func TestJournalRecordAndFilter(t *testing.T) {
	j := NewJournal(16, nil)
	j.Record(EventModelPromote, "promoted", "version", "v1")
	j.Record(EventDriftTrigger, "drifting", "provider", "youtube")
	j.Record(EventModelPromote, "promoted", "version", "v2")

	all := j.Events(0, "", 0)
	if len(all) != 3 {
		t.Fatalf("events = %d, want 3", len(all))
	}
	for i, ev := range all {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	if all[0].Fields["version"] != "v1" || all[2].Fields["version"] != "v2" {
		t.Errorf("fields lost: %+v / %+v", all[0].Fields, all[2].Fields)
	}

	// since resumes after a seen sequence number.
	if got := j.Events(1, "", 0); len(got) != 2 || got[0].Seq != 2 {
		t.Errorf("since=1: %+v", got)
	}
	// type narrows to one vocabulary entry.
	if got := j.Events(0, EventModelPromote, 0); len(got) != 2 || got[1].Fields["version"] != "v2" {
		t.Errorf("type filter: %+v", got)
	}
	// limit keeps the newest matches, not the oldest.
	if got := j.Events(0, "", 2); len(got) != 2 || got[0].Seq != 2 {
		t.Errorf("limit=2: %+v", got)
	}
}

func TestJournalRingWrap(t *testing.T) {
	j := NewJournal(4, nil)
	for i := 0; i < 10; i++ {
		j.Record(EventSinkError, fmt.Sprintf("failure %d", i))
	}
	st := j.Stats()
	if st.Total != 10 || st.Retained != 4 || st.Dropped != 6 {
		t.Fatalf("stats = %+v, want total 10 retained 4 dropped 6", st)
	}
	if st.ByType[string(EventSinkError)] != 10 {
		t.Errorf("by-type count = %d, want 10 (dropped events stay counted)", st.ByType[string(EventSinkError)])
	}
	evs := j.Events(0, "", 0)
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("retained = %+v, want seqs 7..10 oldest-first", evs)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(EventModelSwap, "into the void")
	if got := j.Events(0, "", 0); got != nil {
		t.Errorf("nil journal events = %v", got)
	}
	if st := j.Stats(); st.Total != 0 {
		t.Errorf("nil journal stats = %+v", st)
	}
}

func TestJournalMirrorsToLogger(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(8, slog.New(slog.NewJSONHandler(&buf, nil)))
	j.Record(EventShadowVerdict, "candidate rejected", "version", "v3", "promoted", "false")
	line := buf.String()
	for _, want := range []string{`"event":"shadow_verdict"`, `"seq":1`, `"version":"v3"`, `"msg":"candidate rejected"`} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %s: %s", want, line)
		}
	}
}

func TestEventTypesStable(t *testing.T) {
	a, b := EventTypes(), EventTypes()
	if len(a) == 0 {
		t.Fatal("no event types")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("EventTypes order unstable at %d: %s vs %s", i, a[i], b[i])
		}
	}
	seen := make(map[EventType]bool, len(a))
	for _, typ := range a {
		if seen[typ] {
			t.Errorf("duplicate event type %s", typ)
		}
		seen[typ] = true
	}
}
