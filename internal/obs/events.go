package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// EventType classifies an ops journal entry. The values are a closed,
// documented vocabulary: /events filters on them, /metrics counts them, and
// docs/OPERATIONS.md lists them — add here and there together.
type EventType string

// Journal event types.
const (
	// EventModelPromote: an operator promoted a bank version via the API.
	EventModelPromote EventType = "model_promote"
	// EventModelRollback: an operator rolled the registry back one version.
	EventModelRollback EventType = "model_rollback"
	// EventModelSwap: the serving pipeline hot-swapped to a new bank (fires
	// for operator promotes, rollbacks and shadow-gate promotions alike).
	EventModelSwap EventType = "model_swap"
	// EventDriftTrigger: the drift monitor latched a drifting classifier.
	EventDriftTrigger EventType = "drift_trigger"
	// EventDriftRearm: the drift monitor re-armed after a rejected candidate
	// so it can trigger again.
	EventDriftRearm EventType = "drift_rearm"
	// EventShadowStart: a freshly retrained candidate bank entered shadow
	// evaluation against live flows.
	EventShadowStart EventType = "shadow_start"
	// EventShadowVerdict: a shadow evaluation completed (promoted or
	// rejected — the event's fields say which and why).
	EventShadowVerdict EventType = "shadow_verdict"
	// EventRetrainError: background retraining failed.
	EventRetrainError EventType = "retrain_error"
	// EventEvictionPressure: the flow table evicted flows at capacity (LRU
	// pressure, as opposed to benign idle expiry) since the last rollup
	// window sealed.
	EventEvictionPressure EventType = "eviction_pressure"
	// EventSinkError: telemetry window writes to a sink failed.
	EventSinkError EventType = "sink_error"
	// EventStoreCompaction: the telemetry store evicted retained windows to
	// honor its retention bounds.
	EventStoreCompaction EventType = "store_compaction"
)

// EventTypes lists every event type a Journal can record, in a stable order
// (for metrics emission and docs).
func EventTypes() []EventType {
	return []EventType{
		EventModelPromote,
		EventModelRollback,
		EventModelSwap,
		EventDriftTrigger,
		EventDriftRearm,
		EventShadowStart,
		EventShadowVerdict,
		EventRetrainError,
		EventEvictionPressure,
		EventSinkError,
		EventStoreCompaction,
	}
}

// Event is one ops journal entry: a typed, timestamped record of a
// model-lifecycle or pipeline-health state change, with small structured
// fields instead of a parsed-from-text payload.
type Event struct {
	// Seq is the journal-assigned monotonic sequence number (first event is
	// 1). Clients resume with GET /events?since=<last seen Seq>.
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Type    EventType `json:"type"`
	Message string    `json:"message"`
	// Fields carries event-specific attributes (model version, drift reason,
	// counts) as strings, mirroring the slog attributes emitted for the
	// event.
	Fields map[string]string `json:"fields,omitempty"`
}

// DefaultJournalCapacity bounds a Journal when the caller passes a
// non-positive capacity.
const DefaultJournalCapacity = 1024

// Journal is a bounded in-memory ring of typed ops events. Recording never
// blocks and never grows past the capacity — when full, the oldest events
// are dropped (and counted). All methods are safe for concurrent use, and
// safe on a nil *Journal (records are discarded), so instrumented code does
// not need journal-presence checks.
//
//vp:nilsafe
type Journal struct {
	mu     sync.Mutex
	ring   []Event // fixed capacity, filled circularly
	next   int     // ring index the next event lands in
	size   int     // events currently retained
	seq    uint64  // total events ever recorded
	counts map[EventType]uint64
	logger *slog.Logger
}

// NewJournal returns a Journal retaining up to capacity events
// (DefaultJournalCapacity when capacity <= 0). A non-nil logger mirrors
// every event as a structured log line, giving daemon logs and the journal
// one vocabulary.
func NewJournal(capacity int, logger *slog.Logger) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{
		ring:   make([]Event, capacity),
		counts: make(map[EventType]uint64),
		logger: logger,
	}
}

// Record appends one event. kv lists alternating field keys and values (a
// trailing key with no value is dropped). Nil-journal safe.
func (j *Journal) Record(typ EventType, msg string, kv ...string) {
	if j == nil {
		return
	}
	var fields map[string]string
	if len(kv) >= 2 {
		fields = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			fields[kv[i]] = kv[i+1]
		}
	}
	ev := Event{Time: time.Now(), Type: typ, Message: msg, Fields: fields}

	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	j.ring[j.next] = ev
	j.next = (j.next + 1) % len(j.ring)
	if j.size < len(j.ring) {
		j.size++
	}
	j.counts[typ]++
	logger := j.logger
	j.mu.Unlock()

	if logger != nil {
		attrs := make([]slog.Attr, 0, len(kv)/2+2)
		attrs = append(attrs,
			slog.String("event", string(typ)),
			slog.Uint64("seq", ev.Seq))
		for i := 0; i+1 < len(kv); i += 2 {
			attrs = append(attrs, slog.String(kv[i], kv[i+1]))
		}
		logger.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
	}
}

// Events returns retained events with Seq > since, oldest first. A non-empty
// typ keeps only that event type. limit > 0 keeps the newest limit matches
// (so a capped request still reports the most recent state changes).
// Nil-journal safe (returns nil).
func (j *Journal) Events(since uint64, typ EventType, limit int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.size)
	start := j.next - j.size
	if start < 0 {
		start += len(j.ring)
	}
	for i := 0; i < j.size; i++ {
		ev := j.ring[(start+i)%len(j.ring)]
		if ev.Seq <= since {
			continue
		}
		if typ != "" && ev.Type != typ {
			continue
		}
		out = append(out, ev)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// JournalStats summarizes the journal for /stats and /metrics.
type JournalStats struct {
	// Total is how many events have ever been recorded.
	Total uint64 `json:"total"`
	// Retained is how many are still in the ring; Dropped = Total − Retained
	// aged out of the bounded ring.
	Retained int    `json:"retained"`
	Dropped  uint64 `json:"dropped"`
	// ByType counts every recorded event by type (dropped events included —
	// the counters are monotonic even though the ring is not).
	ByType map[string]uint64 `json:"by_type,omitempty"`
}

// Stats snapshots the journal counters. Nil-journal safe (zero stats).
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{
		Total:    j.seq,
		Retained: j.size,
		Dropped:  j.seq - uint64(j.size),
	}
	if len(j.counts) > 0 {
		st.ByType = make(map[string]uint64, len(j.counts))
		for k, v := range j.counts {
			st.ByType[string(k)] = v
		}
	}
	return st
}
