package obs

import "time"

// Stage identifies one timed segment of a flow's path through the pipeline.
type Stage int

const (
	// StageDecode is ingest frame decoding: link/network/transport header
	// parsing plus flow-key canonicalization, on the single ingest goroutine.
	StageDecode Stage = iota
	// StageQueueWait is the time a batch spends in a shard's channel between
	// the ingest goroutine's send and the shard worker picking it up.
	StageQueueWait
	// StageAssembly is handshake reassembly: appending a frame's payload to
	// the flow's handshake buffer and scanning for a complete ClientHello.
	StageAssembly
	// StageClassify is feature encoding plus model inference for one
	// completed handshake (the Bank.ClassifyHandshake call).
	StageClassify
	// StageRollup is committing one finalized flow record into the
	// telemetry rollup on the server's aggregation goroutine.
	StageRollup

	// NumStages is the number of pipeline stages.
	NumStages = int(StageRollup) + 1
)

var stageNames = [NumStages]string{
	StageDecode:    "decode",
	StageQueueWait: "queue_wait",
	StageAssembly:  "assembly",
	StageClassify:  "classify",
	StageRollup:    "rollup",
}

// String returns the stage's snake_case name as used in /stats and /metrics.
func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists every stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// PipelineObserver holds one lock-free histogram per pipeline stage. All
// methods are nil-receiver safe, so instrumented code paths need only a
// single pointer check (or none: Record on a nil observer is a no-op).
//
//vp:nilsafe
type PipelineObserver struct {
	hists [NumStages]Histogram
}

// NewPipelineObserver returns an observer with empty per-stage histograms.
func NewPipelineObserver() *PipelineObserver { return &PipelineObserver{} }

// Record adds one latency sample to the stage's histogram. 0 allocs/op; a
// nil receiver or out-of-range stage is a no-op.
//
//vp:hotpath
func (o *PipelineObserver) Record(s Stage, d time.Duration) {
	if o == nil || s < 0 || int(s) >= NumStages {
		return
	}
	o.hists[s].Record(d)
}

// Stage exposes one stage's histogram (nil for a nil receiver or an
// out-of-range stage).
func (o *PipelineObserver) Stage(s Stage) *Histogram {
	if o == nil || s < 0 || int(s) >= NumStages {
		return nil
	}
	return &o.hists[s]
}

// StageStats is one stage's latency digest as served by /stats.
type StageStats struct {
	// Stage is the stage's snake_case name.
	Stage string `json:"stage"`
	// Count is how many samples the stage has recorded.
	Count uint64 `json:"count"`
	// MeanMs/P50Ms/P90Ms/P99Ms/MaxMs summarize the distribution in
	// milliseconds. Quantiles are log-linear bucket upper bounds (~3%
	// resolution); Max is exact.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// StageStats snapshots every stage's histogram into a digest slice in
// pipeline order. A nil receiver yields nil.
func (o *PipelineObserver) StageStats() []StageStats {
	if o == nil {
		return nil
	}
	out := make([]StageStats, 0, NumStages)
	for i := 0; i < NumStages; i++ {
		snap := o.hists[i].Snapshot()
		out = append(out, StageStats{
			Stage:  Stage(i).String(),
			Count:  snap.Count,
			MeanMs: durMs(snap.Mean()),
			P50Ms:  durMs(snap.Quantile(0.50)),
			P90Ms:  durMs(snap.Quantile(0.90)),
			P99Ms:  durMs(snap.Quantile(0.99)),
			MaxMs:  durMs(time.Duration(snap.Max)),
		})
	}
	return out
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
